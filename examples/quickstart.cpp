// Quickstart: the paper's running example end to end (Fig. 1, Examples
// 1.1–3.3).
//
// Builds the company database of Fig. 1 — Emp with three stale records of
// Mary and Dept with four records of R&D — declares the currency
// semantics ϕ1–ϕ4 as denial constraints, the copy function ρ of Example
// 2.2, and then answers the four motivating questions:
//
//   Q1  What is Mary's current salary?        → 80
//   Q2  What is Mary's current last name?     → Dupont
//   Q3  What is Mary's current address?       → 6 Main St
//   Q4  What is R&D's current budget?         → 6000
//
// without any timestamps, purely from the constraints and the copy
// relationship.  Also demonstrates CPS, COP and DCIP on the same data.

#include <cstdlib>
#include <iostream>

#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/consistency.h"
#include "src/core/deterministic.h"
#include "src/core/specification.h"
#include "src/query/parser.h"

namespace {

using namespace currency;        // NOLINT
using namespace currency::core;  // NOLINT

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

Specification BuildCompanyDatabase() {
  Specification spec;

  // --- Emp (Fig. 1a); s4/s5 are distinct persons per Example 2.3 ---
  Schema emp_schema = Unwrap(
      Schema::Make("Emp", {"FN", "LN", "address", "salary", "status"}));
  Relation emp(emp_schema);
  auto add_emp = [&](const char* eid, const char* fn, const char* ln,
                     const char* addr, int salary, const char* status) {
    Check(emp.AppendValues({Value(eid), Value(fn), Value(ln), Value(addr),
                            Value(salary), Value(status)})
              .status());
  };
  add_emp("Mary", "Mary", "Smith", "2 Small St", 50, "single");     // s1
  add_emp("Mary", "Mary", "Dupont", "10 Elm Ave", 50, "married");   // s2
  add_emp("Mary", "Mary", "Dupont", "6 Main St", 80, "married");    // s3
  add_emp("Bob", "Bob", "Luth", "8 Cowan St", 80, "married");       // s4
  add_emp("Robert", "Robert", "Luth", "8 Drum St", 55, "married");  // s5
  Check(spec.AddInstance(TemporalInstance(std::move(emp))));

  // --- Dept (Fig. 1b) ---
  Schema dept_schema = Unwrap(
      Schema::Make("Dept", {"mgrFN", "mgrLN", "mgrAddr", "budget"}, "dname"));
  Relation dept(dept_schema);
  auto add_dept = [&](const char* fn, const char* ln, const char* addr,
                      int budget) {
    Check(dept.AppendValues(
                  {Value("RnD"), Value(fn), Value(ln), Value(addr),
                   Value(budget)})
              .status());
  };
  add_dept("Mary", "Smith", "2 Small St", 6500);  // t1
  add_dept("Mary", "Smith", "2 Small St", 7000);  // t2
  add_dept("Mary", "Dupont", "6 Main St", 6000);  // t3
  add_dept("Ed", "Luth", "8 Cowan St", 6000);     // t4
  Check(spec.AddInstance(TemporalInstance(std::move(dept))));

  // --- Denial constraints ϕ1–ϕ4 (Example 2.1) ---
  // ϕ1: salaries do not decrease.
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s"));
  // ϕ2: married is later than single, and the later status carries the
  // later last name (plus the status attribute itself: see DESIGN.md §6).
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[LN] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[status] s"));
  // ϕ3: the row with the later salary has the later address.
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: t PREC[salary] s -> t PREC[address] s"));
  // ϕ4: the Dept row with the later manager address has the later budget.
  Check(spec.AddConstraintText(
      "FORALL s, t IN Dept: t PREC[mgrAddr] s -> t PREC[budget] s"));

  // --- Copy function ρ (Example 2.2): Dept.mgrAddr ⇐ Emp.address ---
  copy::CopySignature sig;
  sig.target_relation = "Dept";
  sig.target_attrs = {"mgrAddr"};
  sig.source_relation = "Emp";
  sig.source_attrs = {"address"};
  copy::CopyFunction rho(sig);
  Check(rho.Map(0, 0));  // t1 ⇐ s1
  Check(rho.Map(1, 0));  // t2 ⇐ s1
  Check(rho.Map(2, 2));  // t3 ⇐ s3
  Check(rho.Map(3, 3));  // t4 ⇐ s4
  Check(spec.AddCopyFunction(std::move(rho)));
  return spec;
}

void Answer(const Specification& spec, const std::string& text) {
  query::Query q = Unwrap(query::ParseQuery(text));
  auto answers = Unwrap(CertainCurrentAnswers(spec, q));
  std::cout << "  " << q.name << ": ";
  if (answers.empty()) {
    std::cout << "(no certain answer)";
  }
  for (const Tuple& t : answers) std::cout << t.ToString() << " ";
  std::cout << "\n";
}

}  // namespace

int main() {
  Specification spec = BuildCompanyDatabase();

  std::cout << "The company database (Fig. 1):\n";
  std::cout << spec.instance(0).relation().ToString() << "\n";
  std::cout << spec.instance(1).relation().ToString() << "\n";

  // CPS: does the specification make sense at all?
  CpsOutcome cps = Unwrap(DecideConsistency(spec));
  std::cout << "CPS: the specification is "
            << (cps.consistent ? "consistent" : "INCONSISTENT") << "\n\n";

  // The four motivating queries (Example 1.1), answered with certainty.
  std::cout << "Certain current answers (Example 2.5):\n";
  Answer(spec,
         "Q1(s) := EXISTS fn, ln, a, st: Emp('Mary', fn, ln, a, s, st)");
  Answer(spec,
         "Q2(ln) := EXISTS fn, a, s, st: Emp('Mary', fn, ln, a, s, st)");
  Answer(spec,
         "Q3(a) := EXISTS fn, ln, s, st: Emp('Mary', fn, ln, a, s, st)");
  Answer(spec, "Q4(b) := EXISTS fn, ln, a: Dept('RnD', fn, ln, a, b)");
  std::cout << "\n";

  // COP (Example 3.2): is s1 ≺_salary s3 certain?  Is t3 ≺_mgrFN t4?
  AttrIndex salary = Unwrap(spec.instance(0).schema().IndexOf("salary"));
  AttrIndex mgr_fn = Unwrap(spec.instance(1).schema().IndexOf("mgrFN"));
  CurrencyOrderQuery o1{"Emp", {{salary, 0, 2}}};
  CurrencyOrderQuery o2{"Dept", {{mgr_fn, 2, 3}}};
  std::cout << "COP: s1 PREC[salary] s3 certain?  "
            << (Unwrap(IsCertainOrder(spec, o1)) ? "yes" : "no") << "\n";
  std::cout << "COP: t3 PREC[mgrFN] t4 certain?   "
            << (Unwrap(IsCertainOrder(spec, o2)) ? "yes" : "no") << "\n\n";

  // DCIP (Example 3.3): Emp's current instance is determined; Dept's not.
  std::cout << "DCIP: Emp deterministic?  "
            << (Unwrap(IsDeterministicForRelation(spec, "Emp")) ? "yes" : "no")
            << "\n";
  std::cout << "DCIP: Dept deterministic? "
            << (Unwrap(IsDeterministicForRelation(spec, "Dept")) ? "yes"
                                                                 : "no")
            << "\n";
  return 0;
}
