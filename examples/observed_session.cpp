// Observability walkthrough: the Fig. 1 employee specification served
// by a SessionManager with request tracing on, ending in a Prometheus
// scrape.
//
// The manager owns one obs::Registry (every layer underneath — serve,
// exec admission, SAT sampling, chase, WAL when durable — binds its
// instruments there) and one obs::Tracer; ManagerOptions::trace turns
// the tracer on, and every request entering WithAdmission opens a root
// TraceSpan whose stages (admission wait, epoch pin, base solve, solve,
// epoch build) land in the trace ring when the request finishes.  The
// example runs the usual CPS/COP/CCQA batches plus a salary correction,
// then shows the three observability surfaces:
//
//   1. MetricsReport() — the Prometheus text exposition, grep-able for
//      the naming convention (currency_<module>_<noun>[_unit][_total],
//      dimensions as labels: tenant, procedure, routing);
//   2. tracer()->RecentTraces() — per-request stage timings with SAT/
//      chase counter deltas;
//   3. StatsFor() — the legacy TenantStats view, now a thin snapshot
//      over the very same instruments, so the two can never disagree.
//
// Runs under ctest as a smoke test and exits nonzero on any wrong
// answer or missing metric.

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "src/core/certain_order.h"
#include "src/query/parser.h"
#include "src/serve/session_manager.h"

namespace {

using namespace currency;        // NOLINT
using namespace currency::core;  // NOLINT

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

void Expect(bool condition, const char* what) {
  if (!condition) {
    std::cerr << "FAILED: " << what << "\n";
    std::exit(1);
  }
}

/// Fig. 1: Emp(LN, address, salary, status) with ϕ1–ϕ3.
Specification BuildSpec() {
  Specification spec;
  Relation emp(
      Unwrap(Schema::Make("Emp", {"LN", "address", "salary", "status"})));
  auto add = [&](const char* eid, const char* ln, const char* addr,
                 int salary, const char* status) {
    Check(emp.AppendValues({Value(eid), Value(ln), Value(addr),
                            Value(salary), Value(status)})
              .status());
  };
  add("Mary", "Smith", "2 Small St", 50, "single");    // s1 = 0
  add("Mary", "Dupont", "10 Elm Ave", 50, "married");  // s2 = 1
  add("Mary", "Dupont", "6 Main St", 80, "married");   // s3 = 2
  add("Bob", "Luth", "8 Cowan St", 80, "married");     // s4 = 3
  Check(spec.AddInstance(TemporalInstance(std::move(emp))));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[LN] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[status] s"));
  return spec;
}

/// True iff `text` contains a sample line for `series` with a nonzero
/// value (label order inside the braces is canonical: sorted by key).
bool HasNonzeroSeries(const std::string& text, const std::string& series) {
  size_t at = text.find(series);
  if (at == std::string::npos) return false;
  size_t eol = text.find('\n', at);
  std::string line = text.substr(at, eol - at);
  return line.find(" 0") != line.size() - 2;
}

}  // namespace

int main() {
  serve::ManagerOptions options;
  options.trace.enabled = true;
  options.trace.slow_threshold_ns = 0;  // log every request as "slow"
  auto manager = Unwrap(serve::SessionManager::Create(options));
  Check(manager->Register("hr", BuildSpec(), serve::TenantQuotas{}));

  // --- The usual batches, now all traced ---------------------------------
  Expect(Unwrap(manager->CpsCheck("hr")), "HR's records are consistent");
  CurrencyOrderQuery mary;
  mary.relation = "Emp";
  mary.pairs = {RequiredPair{3, 0, 2}};  // s1 ≺_salary s3
  Expect(Unwrap(manager->CopBatch("hr", {mary}))[0],
         "Mary's salary order is certain");
  query::Query q1 = Unwrap(query::ParseQuery(
      "Q1(s) := EXISTS ln, a, st: Emp('Mary', ln, a, s, st)"));
  auto answers = Unwrap(manager->CcqaBatch("hr", {{q1, std::nullopt}}));
  Expect(answers[0].answers == std::set<Tuple>{Tuple({Value(80)})},
         "Mary's current salary must certainly be 80");
  Check(manager->Mutate("hr", {TupleEdit{0, 3, 3, Value(95)}}));  // Bob
  Expect(Unwrap(manager->CpsCheck("hr")), "still consistent after the edit");

  // --- Surface 1: the Prometheus scrape ----------------------------------
  std::string scrape = manager->MetricsReport();
  for (const char* series :
       {"currency_serve_batches_total{procedure=\"cps\",tenant=\"hr\"}",
        "currency_serve_batches_total{procedure=\"cop\",tenant=\"hr\"}",
        "currency_serve_batches_total{procedure=\"ccqa\",tenant=\"hr\"}",
        "currency_serve_mutations_total{tenant=\"hr\"}",
        "currency_serve_component_base_solves_total{routing=\"sat\","
        "tenant=\"hr\"}",
        "currency_sat_propagations_total{tenant=\"hr\"}",
        "currency_exec_admission_admitted_total{tenant=\"hr\"}",
        "currency_serve_epoch_publishes_total{tenant=\"hr\"}"}) {
    Expect(HasNonzeroSeries(scrape, series), series);
  }
  Expect(scrape.find("currency_serve_batch_latency_ns_bucket") !=
             std::string::npos,
         "latency histograms must expose cumulative buckets");
  std::cout << "Scrape carries "
            << std::count(scrape.begin(), scrape.end(), '\n')
            << " exposition lines; a taste:\n";
  for (const char* name :
       {"currency_serve_mutations_total", "currency_serve_epoch_version"}) {
    size_t at = scrape.find(std::string(name) + "{");
    std::cout << "  " << scrape.substr(at, scrape.find('\n', at) - at)
              << "\n";
  }

  // --- Surface 2: request traces -----------------------------------------
  auto traces = manager->tracer()->RecentTraces();
  Expect(traces.size() == 5, "five requests, five traces");
  Expect(!manager->tracer()->SlowLog().empty(),
         "threshold 0 puts every request in the slow log");
  bool saw_base_solve = false;
  for (const auto& trace : traces) {
    for (const auto& stage : trace.stages) {
      if (std::string(stage.name) == "base_solve") saw_base_solve = true;
    }
  }
  Expect(saw_base_solve, "the cold CpsCheck must trace its base solves");
  std::cout << "Last trace: " << traces.back().Format() << "\n";

  // --- Surface 3: the legacy stats views ---------------------------------
  serve::TenantStats stats = Unwrap(manager->StatsFor("hr"));
  Expect(stats.session.mutations == 1, "one edit landed");
  Expect(stats.rejected_batches == 0, "nothing was rejected");
  Expect(stats.queue_depth_high_water == 0,
         "sequential requests never queue");
  std::cout << "TenantStats agrees: " << stats.session.mutations
            << " mutation, " << stats.session.base_solves
            << " SAT base solves, " << stats.session.last_invalidated
            << " component invalidated by the edit\n";
  return 0;
}
