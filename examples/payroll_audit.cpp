// Payroll audit — denial constraints in anger (Sections 2–3).
//
// An HR system holds multiple unstamped payroll rows per employee.
// Business rules supply currency semantics:
//   ρ1  salaries never decrease,
//   ρ2  the row with the newest salary carries the newest grade,
//   ρ3  grade changes are promotions: 'senior' rows are newer than
//       'junior' rows.
// The audit asks: is the rule set even satisfiable on this data (CPS)?
// Which employees' current salary is beyond doubt (COP / DCIP)?  And it
// demonstrates how a contradictory rule is caught as inconsistency.

#include <cstdlib>
#include <iostream>
#include <random>

#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/consistency.h"
#include "src/core/deterministic.h"
#include "src/core/specification.h"
#include "src/query/parser.h"

namespace {

using namespace currency;        // NOLINT
using namespace currency::core;  // NOLINT

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

Specification BuildPayroll(int employees, std::mt19937* rng) {
  Specification spec;
  Schema schema = Unwrap(Schema::Make("Payroll", {"salary", "grade"}));
  Relation payroll(schema);
  std::uniform_int_distribution<int> base(40, 70);
  std::uniform_int_distribution<int> raise(5, 20);
  for (int e = 0; e < employees; ++e) {
    Value eid("emp" + std::to_string(e));
    int start = base(*rng);
    int mid = start + raise(*rng);
    int top = mid + raise(*rng);
    Check(payroll.AppendValues({eid, Value(start), Value("junior")}).status());
    Check(payroll.AppendValues({eid, Value(mid), Value("junior")}).status());
    Check(payroll.AppendValues({eid, Value(top), Value("senior")}).status());
  }
  Check(spec.AddInstance(TemporalInstance(std::move(payroll))));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Payroll: s.salary > t.salary -> t PREC[salary] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Payroll: t PREC[salary] s -> t PREC[grade] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Payroll: s.grade = 'senior' AND t.grade = 'junior' "
      "-> t PREC[grade] s"));
  return spec;
}

}  // namespace

int main() {
  std::mt19937 rng(7);
  const int kEmployees = 40;
  Specification spec = BuildPayroll(kEmployees, &rng);

  CpsOutcome cps = Unwrap(DecideConsistency(spec));
  std::cout << "CPS: payroll rules are "
            << (cps.consistent ? "satisfiable on the data" : "CONTRADICTORY")
            << "\n";

  // DCIP: with monotone salaries and grade tracking, every employee's
  // current row is determined.
  std::cout << "DCIP: current payroll instance deterministic?  "
            << (Unwrap(IsDeterministicForRelation(spec, "Payroll")) ? "yes"
                                                                    : "no")
            << "\n";

  // COP: for employee 0, rows 0 ≺ 2 in salary must be certain.
  AttrIndex salary = Unwrap(spec.instance(0).schema().IndexOf("salary"));
  CurrencyOrderQuery cop{"Payroll", {{salary, 0, 2}}};
  std::cout << "COP: emp0's first row certainly older than its third?  "
            << (Unwrap(IsCertainOrder(spec, cop)) ? "yes" : "no") << "\n";

  // Certain current salary of employee 0 (SP query; constraints force the
  // general solver, Corollary 3.7's setting).
  query::Query q = Unwrap(query::ParseQuery(
      "Q(s) := EXISTS g: Payroll('emp0', s, g)"));
  auto answers = Unwrap(CertainCurrentAnswers(spec, q));
  std::cout << "Certain current salary of emp0: ";
  for (const Tuple& t : answers) std::cout << t.ToString();
  std::cout << "\n";

  // Now inject a contradictory rule — "junior rows are newest" — and show
  // CPS catching it (the interaction that motivates Theorem 3.1).
  Check(spec.AddConstraintText(
      "FORALL s, t IN Payroll: s.grade = 'junior' AND t.grade = 'senior' "
      "-> t PREC[grade] s"));
  CpsOutcome broken = Unwrap(DecideConsistency(spec));
  std::cout << "After adding the contradictory promotion rule: "
            << (broken.consistent ? "still consistent?!" : "inconsistent, "
                "as expected — the audit flags the rule set")
            << "\n";
  return 0;
}
