// Currency preservation walkthrough (Fig. 3, Example 4.1, Sections 4–5).
//
// The Emp relation imports Mary's newest record from a manager directory
// Mgr via a copy function ρ.  Asking for Mary's current last name (Q2)
// gives "Dupont" — but Mgr holds a newer, divorced record under "Smith"
// that ρ has not imported.  The example shows:
//   * CPP:  ρ is NOT currency preserving for Q2 (importing s'3 flips the
//           answer to "Smith"),
//   * ECP:  ρ can always be extended to a preserving collection
//           (Proposition 5.2), and a maximal extension is constructed,
//   * BCP:  one import suffices (k = 1).

#include <cstdlib>
#include <iostream>

#include "src/core/ccqa.h"
#include "src/core/consistency.h"
#include "src/core/preservation.h"
#include "src/core/specification.h"
#include "src/query/parser.h"

namespace {

using namespace currency;        // NOLINT
using namespace currency::core;  // NOLINT

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

Specification BuildS1() {
  Specification spec;
  Schema emp_schema = Unwrap(
      Schema::Make("Emp", {"FN", "LN", "address", "salary", "status"}));
  Relation emp(emp_schema);
  auto add_emp = [&](const char* eid, const char* fn, const char* ln,
                     const char* addr, int salary, const char* status) {
    Check(emp.AppendValues({Value(eid), Value(fn), Value(ln), Value(addr),
                            Value(salary), Value(status)})
              .status());
  };
  add_emp("Mary", "Mary", "Smith", "2 Small St", 50, "single");
  add_emp("Mary", "Mary", "Dupont", "10 Elm Ave", 50, "married");
  add_emp("Mary", "Mary", "Dupont", "6 Main St", 80, "married");
  add_emp("Bob", "Bob", "Luth", "8 Cowan St", 80, "married");
  add_emp("Robert", "Robert", "Luth", "8 Drum St", 55, "married");
  Check(spec.AddInstance(TemporalInstance(std::move(emp))));

  // Mgr (Fig. 3): all three records are Mary's.
  Schema mgr_schema = Unwrap(
      Schema::Make("Mgr", {"FN", "LN", "address", "salary", "status"}));
  Relation mgr(mgr_schema);
  auto add_mgr = [&](const char* fn, const char* ln, const char* addr,
                     int salary, const char* status) {
    Check(mgr.AppendValues({Value("Mary"), Value(fn), Value(ln), Value(addr),
                            Value(salary), Value(status)})
              .status());
  };
  add_mgr("Mary", "Dupont", "6 Main St", 60, "married");   // s'1
  add_mgr("Mary", "Dupont", "6 Main St", 80, "married");   // s'2
  add_mgr("Mary", "Smith", "2 Small St", 80, "divorced");  // s'3
  Check(spec.AddInstance(TemporalInstance(std::move(mgr))));

  // ϕ1–ϕ3 on Emp, ϕ5 on Mgr and Emp (Example 4.1; see DESIGN.md §6).
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[LN] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[status] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: t PREC[salary] s -> t PREC[address] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Mgr: s.status = 'divorced' AND t.status = 'married' "
      "-> t PREC[LN] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'divorced' AND t.status = 'married' "
      "-> t PREC[LN] s"));

  // ρ: Emp ⇐ Mgr over all attributes; s3 was imported from s'2.
  copy::CopySignature sig;
  sig.target_relation = "Emp";
  sig.target_attrs = {"FN", "LN", "address", "salary", "status"};
  sig.source_relation = "Mgr";
  sig.source_attrs = {"FN", "LN", "address", "salary", "status"};
  copy::CopyFunction rho(sig);
  Check(rho.Map(2, 1));
  Check(spec.AddCopyFunction(std::move(rho)));
  return spec;
}

}  // namespace

int main() {
  Specification s1 = BuildS1();
  query::Query q2 = Unwrap(query::ParseQuery(
      "Q2(ln) := EXISTS fn, a, s, st: Emp('Mary', fn, ln, a, s, st)"));

  std::cout << "Mgr (Fig. 3):\n"
            << s1.instance(1).relation().ToString() << "\n";

  auto base = Unwrap(CertainCurrentAnswers(s1, q2));
  std::cout << "Certain answer to Q2 under S1: ";
  for (const Tuple& t : base) std::cout << t.ToString();
  std::cout << "\n\n";

  // CPP: is ρ currency preserving for Q2?
  bool preserving = Unwrap(IsCurrencyPreserving(s1, q2));
  std::cout << "CPP: is ρ currency preserving for Q2?  "
            << (preserving ? "yes" : "no (more current data is reachable)")
            << "\n";

  // The witnessing import: Mgr s'3 (divorced, Smith) for entity Mary.
  ExtensionAtom import_s3;
  import_s3.copy_edge = 0;
  import_s3.source_tuple = 2;
  import_s3.target_eid = Value("Mary");
  Specification extended = Unwrap(ApplyExtension(s1, {import_s3}));
  auto flipped = Unwrap(CertainCurrentAnswers(extended, q2));
  std::cout << "After importing s'3, Q2's certain answer becomes: ";
  for (const Tuple& t : flipped) std::cout << t.ToString();
  std::cout << "\n";
  std::cout << "CPP on the extension ρ1: "
            << (Unwrap(IsCurrencyPreserving(extended, q2))
                    ? "currency preserving"
                    : "still not preserving")
            << "\n\n";

  // ECP (Proposition 5.2): a consistent specification can always be
  // extended to a currency-preserving one; build a maximal extension.
  std::cout << "ECP: extendable to currency preserving?  "
            << (Unwrap(CanExtendToCurrencyPreserving(s1, q2)) ? "yes" : "no")
            << "\n";
  auto maximal = Unwrap(MaximalConsistentExtension(s1));
  std::cout << "     maximal consistent extension imports " << maximal.size()
            << " tuples\n";

  // BCP: a single affordable import suffices.
  std::cout << "BCP: preserving extension with k = 1 import?  "
            << (Unwrap(HasBoundedCurrencyPreservingExtension(s1, q2, 1))
                    ? "yes"
                    : "no")
            << "\n";
  return 0;
}
