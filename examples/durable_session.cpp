// Durability walkthrough: the Fig. 1 employee specification served from
// a SessionManager whose every mutation goes through the write-ahead
// command log (docs/ARCHITECTURE.md §8), then "crashed" and reopened.
//
// Three acts:
//   1. Open a durable manager on an empty directory, register the HR
//      tenant and stream a few salary corrections — each Mutate is
//      applied, appended and fsynced before it returns.  A rejected edit
//      (bad attribute) leaves no trace in the log.
//   2. Drop the manager mid-flight (the "crash": in-memory state gone,
//      only the log directory survives) and Open the same directory.
//      Recovery replays the registration plus exactly the accepted
//      edits; the CCQA answer matches the pre-crash one.
//   3. Snapshot() the warm manager and reopen once more: this restart
//      restores spec bytes + solved component verdicts instead of
//      replaying, so the first consistency check performs zero base
//      solves.
//
// Runs under ctest as a smoke test and exits nonzero on any wrong
// answer.  The log directory lives under the current working directory
// and is removed at the end.

#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <set>
#include <vector>

#include "src/query/parser.h"
#include "src/serve/session_manager.h"

namespace {

using namespace currency;        // NOLINT
using namespace currency::core;  // NOLINT

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

void Expect(bool condition, const char* what) {
  if (!condition) {
    std::cerr << "FAILED: " << what << "\n";
    std::exit(1);
  }
}

/// The employee half of Fig. 1: Emp(LN, address, salary, status) with
/// ϕ1–ϕ3.
Specification BuildHrSpec() {
  Specification spec;
  Relation emp(
      Unwrap(Schema::Make("Emp", {"LN", "address", "salary", "status"})));
  auto add = [&](const char* eid, const char* ln, const char* addr,
                 int salary, const char* status) {
    Check(emp.AppendValues({Value(eid), Value(ln), Value(addr),
                            Value(salary), Value(status)})
              .status());
  };
  add("Mary", "Smith", "2 Small St", 50, "single");    // s1 = 0
  add("Mary", "Dupont", "10 Elm Ave", 50, "married");  // s2 = 1
  add("Mary", "Dupont", "6 Main St", 80, "married");   // s3 = 2
  add("Bob", "Luth", "8 Cowan St", 80, "married");     // s4 = 3
  Check(spec.AddInstance(TemporalInstance(std::move(emp))));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[LN] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[status] s"));
  return spec;
}

std::set<Tuple> MarysSalary(serve::SessionManager* manager) {
  query::Query q = Unwrap(query::ParseQuery(
      "Q1(s) := EXISTS ln, a, st: Emp('Mary', ln, a, s, st)"));
  auto answers = Unwrap(manager->CcqaBatch("hr", {{q, std::nullopt}}));
  Expect(answers[0].answers.has_value(), "answer-set request must answer");
  return *answers[0].answers;
}

}  // namespace

int main() {
  const std::string dir = "durable_session_example_log";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  // --- Act 1: a durable manager, accepted and rejected mutations ----------
  {
    auto manager = Unwrap(serve::SessionManager::Open(dir));
    Check(manager->Register("hr", BuildHrSpec()));

    // Bob's salary churns; every accepted Mutate is fsynced to the log
    // before it acknowledges.
    Check(manager->Mutate("hr", {TupleEdit{0, 3, 3, Value(95)}}));
    Check(manager->Mutate("hr", {TupleEdit{0, 3, 3, Value(90)}}));

    // A nonsense edit (attribute 9 of a 5-column relation) is rejected by
    // apply and therefore NEVER appended: the log stays exactly the
    // accepted history, so replay cannot fail.
    Status rejected = manager->Mutate("hr", {TupleEdit{0, 3, 9, Value(1)}});
    Expect(!rejected.ok(), "an out-of-range edit must be rejected");

    Expect(Unwrap(manager->CpsCheck("hr")), "HR stays consistent");
    Expect(MarysSalary(manager.get()) == std::set<Tuple>{Tuple({Value(80)})},
           "Mary's certain current salary is 80 before the crash");
    std::cout << "Logged 1 registration + 2 edits (1 rejected, unlogged)\n";
  }  // <- the "crash": the manager is destroyed, only `dir` survives

  // --- Act 2: reopen and replay -------------------------------------------
  {
    auto manager = Unwrap(serve::SessionManager::Open(dir));
    Expect(manager->Tenants() == std::vector<std::string>{"hr"},
           "recovery must re-register the tenant");
    const Relation& emp =
        Unwrap(manager->Lookup("hr"))->spec().instance(0).relation();
    Expect(emp.tuple(3).at(3) == Value(90),
           "Bob's last acknowledged salary must survive the crash");
    Expect(MarysSalary(manager.get()) == std::set<Tuple>{Tuple({Value(80)})},
           "Mary's answer is unchanged after replay");
    std::cout << "Replay recovered 1 tenant, answers intact\n";

    // --- Act 3: warm snapshot ---------------------------------------------
    // CpsCheck above solved every component; Snapshot() persists the spec
    // bytes AND those verdicts (keyed by component content fingerprint),
    // pruning the replay log.
    Check(manager->Snapshot());
  }
  {
    auto manager = Unwrap(serve::SessionManager::Open(dir));
    auto session = Unwrap(manager->Lookup("hr"));
    Expect(Unwrap(manager->CpsCheck("hr")), "still consistent");
    Expect(session->stats().base_solves == 0,
           "a snapshot-assisted restart answers CPS with zero base solves");
    std::cout << "Snapshot restart: first CpsCheck did 0 base solves\n";
  }

  std::filesystem::remove_all(dir, ec);
  return 0;
}
