// SessionManager walkthrough: one process serving two tenants' currency
// specifications from a shared thread pool, with per-tenant admission
// control and concurrent readers racing a live mutator.
//
// Two departments of the Fig. 1 company register independently: "hr"
// hosts the employee relation with ϕ1–ϕ3, "finance" hosts the department
// budgets with their own prec constraint.  The manager lends both one
// pool; each tenant's quotas bound how many of its batches may run or
// queue at once, so a chatty tenant is turned away (ResourceExhausted)
// instead of starving its neighbour or deadlocking.  The second half
// fires reader threads against "hr" while an editor thread streams salary
// corrections: every batch sees one immutable epoch snapshot, so each
// answer equals a fresh one-shot solve of some specification version the
// batch overlapped — asserted here for the before/after values.  Runs
// under ctest as a smoke test and exits nonzero on any wrong answer.

#include <cstdlib>
#include <iostream>
#include <set>
#include <thread>
#include <vector>

#include "src/core/certain_order.h"
#include "src/query/parser.h"
#include "src/serve/session_manager.h"

namespace {

using namespace currency;        // NOLINT
using namespace currency::core;  // NOLINT

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

void Expect(bool condition, const char* what) {
  if (!condition) {
    std::cerr << "FAILED: " << what << "\n";
    std::exit(1);
  }
}

/// The employee half of Fig. 1: Emp(LN, address, salary, status) with
/// ϕ1–ϕ3.  Mary's salary puzzle lives here.
Specification BuildHrSpec() {
  Specification spec;
  Relation emp(
      Unwrap(Schema::Make("Emp", {"LN", "address", "salary", "status"})));
  auto add = [&](const char* eid, const char* ln, const char* addr,
                 int salary, const char* status) {
    Check(emp.AppendValues({Value(eid), Value(ln), Value(addr),
                            Value(salary), Value(status)})
              .status());
  };
  add("Mary", "Smith", "2 Small St", 50, "single");    // s1 = 0
  add("Mary", "Dupont", "10 Elm Ave", 50, "married");  // s2 = 1
  add("Mary", "Dupont", "6 Main St", 80, "married");   // s3 = 2
  add("Bob", "Luth", "8 Cowan St", 80, "married");     // s4 = 3
  Check(spec.AddInstance(TemporalInstance(std::move(emp))));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[LN] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[status] s"));
  return spec;
}

/// The department half: Dept(mgrAddr, budget) with its prec constraint.
Specification BuildFinanceSpec() {
  Specification spec;
  Relation dept(Unwrap(Schema::Make("Dept", {"mgrAddr", "budget"}, "dname")));
  auto add = [&](const char* addr, int budget) {
    Check(dept.AppendValues({Value("RnD"), Value(addr), Value(budget)})
              .status());
  };
  add("2 Small St", 6500);
  add("2 Small St", 7000);
  add("6 Main St", 6000);
  Check(spec.AddInstance(TemporalInstance(std::move(dept))));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Dept: t PREC[mgrAddr] s -> t PREC[budget] s"));
  return spec;
}

}  // namespace

int main() {
  // --- Register two tenants on one shared pool ---------------------------
  serve::ManagerOptions options;
  options.num_threads = 2;
  auto manager = Unwrap(serve::SessionManager::Create(options));

  serve::TenantQuotas hr_quotas;
  hr_quotas.max_active_batches = 4;
  hr_quotas.max_queued_batches = 8;
  Check(manager->Register("hr", BuildHrSpec(), hr_quotas));

  serve::TenantQuotas finance_quotas;
  finance_quotas.max_active_batches = 1;  // finance is rate-limited hard
  finance_quotas.max_queued_batches = 0;
  Check(manager->Register("finance", BuildFinanceSpec(), finance_quotas));

  std::cout << "Serving " << manager->Tenants().size()
            << " tenants from one pool\n";
  Expect(manager->Tenants() == std::vector<std::string>({"finance", "hr"}),
         "both tenants must be registered");

  // Capacity quotas guard registration itself: a specification over the
  // component cap never gets a session.
  serve::TenantQuotas tiny;
  tiny.max_components = 1;
  Status oversized = manager->Register("hr2", BuildHrSpec(), tiny);
  Expect(oversized.code() == StatusCode::kResourceExhausted,
         "a 2-component spec must not fit a 1-component quota");

  // --- Batches against both tenants --------------------------------------
  Expect(Unwrap(manager->CpsCheck("hr")), "HR's records are consistent");
  Expect(Unwrap(manager->CpsCheck("finance")), "so are finance's");

  query::Query q1 = Unwrap(query::ParseQuery(
      "Q1(s) := EXISTS ln, a, st: Emp('Mary', ln, a, s, st)"));
  auto answers = Unwrap(manager->CcqaBatch("hr", {{q1, std::nullopt}}));
  Expect(answers[0].answers == std::set<Tuple>{Tuple({Value(80)})},
         "Mary's current salary must certainly be 80");
  std::cout << "CCQA(hr): Mary's certain current salary is 80\n";

  // --- Readers race a mutator on the HR tenant ----------------------------
  // The editor bumps Bob's salary past Mary's and back, so Mary's COP
  // pair (s1 ≺_salary s3) stays certain in every version while Bob's
  // record churns.  Each reader batch pins one epoch; whichever version
  // it lands on, the answer must be the same — which is exactly what
  // snapshot isolation promises for edits outside the queried entity.
  CurrencyOrderQuery mary;
  mary.relation = "Emp";
  mary.pairs = {RequiredPair{3, 0, 2}};  // s1 ≺_salary s3
  std::vector<std::thread> readers;
  std::vector<int> ok_counts(3, 0);
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < 8; ++i) {
        auto got = manager->CopBatch("hr", {mary});
        Check(got.status());
        Expect((*got)[0], "Mary's salary order is certain in every epoch");
        ++ok_counts[r];
      }
    });
  }
  std::thread editor([&] {
    for (int i = 0; i < 6; ++i) {
      Check(manager->Mutate("hr", {TupleEdit{0, 3, 3, Value(i % 2 ? 80 : 95)}}));
    }
  });
  for (std::thread& t : readers) t.join();
  editor.join();
  for (int r = 0; r < 3; ++r) {
    Expect(ok_counts[r] == 8, "every reader batch must complete");
  }
  serve::TenantStats hr_stats = Unwrap(manager->StatsFor("hr"));
  std::cout << "HR served 24 reader batches across "
            << hr_stats.session.mutations + 1 << " epochs ("
            << hr_stats.rejected_batches << " rejected)\n";
  Expect(hr_stats.session.mutations == 6, "all six edits must land");
  Expect(hr_stats.rejected_batches == 0,
         "HR's quota is wide enough for three readers");

  // --- Decommission a tenant ---------------------------------------------
  Check(manager->Drop("finance"));
  Expect(manager->CpsCheck("finance").status().code() == StatusCode::kNotFound,
         "a dropped tenant must answer NotFound");
  std::cout << "Dropped finance; hr keeps serving\n";
  Expect(Unwrap(manager->CpsCheck("hr")), "hr unaffected by the drop");
  return 0;
}
