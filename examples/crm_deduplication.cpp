// CRM deduplication at scale — the constraint-free PTIME pipeline
// (Section 6 / Theorem 6.1, Proposition 6.3).
//
// Scenario: a customer-360 system holds several records per customer
// (after entity resolution), with only *partial* recency knowledge:
// some pairs of records carry comparable audit sequence numbers, most do
// not.  A downstream marketing table copies addresses from the CRM.  The
// pipeline answers, in polynomial time:
//   * is the combined specification consistent (CPS via the chase)?
//   * which customers have a fully determined current profile (DCIP)?
//   * what are the certain current cities (SP query, Proposition 6.3)?

#include <cstdlib>
#include <iostream>
#include <random>

#include "src/core/chase.h"
#include "src/core/consistency.h"
#include "src/core/deterministic.h"
#include "src/core/sp_ccqa.h"
#include "src/core/specification.h"
#include "src/query/parser.h"

namespace {

using namespace currency;        // NOLINT
using namespace currency::core;  // NOLINT

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

constexpr int kCustomers = 500;
constexpr int kRecordsPerCustomer = 3;

const char* kCities[] = {"Edinburgh", "Antwerp", "Mons", "Paris", "Berlin"};

}  // namespace

int main() {
  std::mt19937 rng(2026);
  std::uniform_int_distribution<int> city(0, 4);
  std::uniform_int_distribution<int> coin(0, 1);

  // --- CRM: kRecordsPerCustomer records per customer ---
  Specification spec;
  Schema crm_schema = Unwrap(Schema::Make("Crm", {"city", "plan"}));
  Relation crm(crm_schema);
  for (int c = 0; c < kCustomers; ++c) {
    for (int r = 0; r < kRecordsPerCustomer; ++r) {
      Check(crm.AppendValues({Value("cust" + std::to_string(c)),
                              Value(kCities[city(rng)]),
                              Value(coin(rng) ? "gold" : "basic")})
                .status());
    }
  }
  TemporalInstance crm_inst(std::move(crm));
  // Partial recency knowledge: for roughly half the customers, audit data
  // orders record 0 before record 1 on both attributes.
  AttrIndex city_attr = Unwrap(crm_schema.IndexOf("city"));
  AttrIndex plan_attr = Unwrap(crm_schema.IndexOf("plan"));
  int known_pairs = 0;
  for (int c = 0; c < kCustomers; ++c) {
    if (coin(rng)) continue;
    TupleId first = c * kRecordsPerCustomer;
    Check(crm_inst.AddOrder(city_attr, first, first + 1));
    Check(crm_inst.AddOrder(plan_attr, first, first + 1));
    // For a third of those, record 2 is known newest.
    if (c % 3 == 0) {
      Check(crm_inst.AddOrder(city_attr, first + 1, first + 2));
      Check(crm_inst.AddOrder(plan_attr, first + 1, first + 2));
    }
    ++known_pairs;
  }
  const Relation crm_snapshot = crm_inst.relation();
  Check(spec.AddInstance(std::move(crm_inst)));

  // --- Marketing: one row per customer, address copied from record 0 ---
  Schema mkt_schema = Unwrap(Schema::Make("Marketing", {"city"}));
  Relation mkt(mkt_schema);
  copy::CopySignature sig;
  sig.target_relation = "Marketing";
  sig.target_attrs = {"city"};
  sig.source_relation = "Crm";
  sig.source_attrs = {"city"};
  copy::CopyFunction rho(sig);
  for (int c = 0; c < kCustomers; ++c) {
    TupleId src = c * kRecordsPerCustomer;
    auto id = Unwrap(mkt.AppendValues({Value("cust" + std::to_string(c)),
                                       crm_snapshot.tuple(src).at(city_attr)}));
    Check(rho.Map(id, src));
  }
  Check(spec.AddInstance(TemporalInstance(std::move(mkt))));
  Check(spec.AddCopyFunction(std::move(rho)));

  std::cout << "CRM records: " << spec.instance(0).relation().size()
            << " across " << kCustomers << " customers ("
            << known_pairs << " with audit-ordered records)\n";

  // CPS in PTIME: no denial constraints, so the chase decides.
  CpsOutcome cps = Unwrap(DecideConsistency(spec));
  std::cout << "CPS (chase): " << (cps.consistent ? "consistent" : "BROKEN")
            << ", PTIME path used: " << (cps.used_ptime_path ? "yes" : "no")
            << "\n";

  ChaseResult chase = Unwrap(ChaseCopyOrders(spec));
  std::cout << "Chase reached fixpoint in " << chase.passes << " passes\n";

  // DCIP in PTIME: which relations have a unique current instance?
  std::cout << "DCIP: Crm deterministic?       "
            << (Unwrap(IsDeterministicForRelation(spec, "Crm")) ? "yes" : "no")
            << "\n";
  std::cout << "DCIP: Marketing deterministic? "
            << (Unwrap(IsDeterministicForRelation(spec, "Marketing")) ? "yes"
                                                                      : "no")
            << "\n";

  // Proposition 6.3: certain current cities of a few customers via the
  // poss(S) construction — values are certain exactly when every possible
  // most-current record agrees.
  int determined = 0;
  for (int c = 0; c < kCustomers; ++c) {
    // SP form: the entity selection goes through an equality in ψ.
    query::Query q = Unwrap(query::ParseQuery(
        "Q(city) := EXISTS e, plan: Crm(e, city, plan) AND e = 'cust" +
        std::to_string(c) + "'"));
    auto answers = Unwrap(SpCertainCurrentAnswers(spec, q));
    if (!answers.empty()) ++determined;
  }
  std::cout << "Customers with a CERTAIN current city: " << determined << "/"
            << kCustomers << "\n";
  return 0;
}
