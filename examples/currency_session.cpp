// CurrencySession walkthrough: the serving layer on the paper's company
// database (Fig. 1, trimmed to the constrained attributes).
//
// A data-cleaning loop in the style the ROADMAP's serving north star
// targets: register the specification once, fire batched currency
// queries (CPS, COP, DCIP, CCQA) against cached per-component encoders,
// edit a tuple in place, and watch the session re-solve only the
// coupling component the edit touched — with every answer equal to a
// fresh one-shot solve, which this example asserts (it runs under ctest
// as a smoke test and exits nonzero on any mismatch).

#include <cstdlib>
#include <iostream>

#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/consistency.h"
#include "src/core/deterministic.h"
#include "src/query/parser.h"
#include "src/serve/session.h"

namespace {

using namespace currency;        // NOLINT
using namespace currency::core;  // NOLINT

void Check(const Status& status) {
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result) {
  Check(result.status());
  return std::move(result).value();
}

void Expect(bool condition, const char* what) {
  if (!condition) {
    std::cerr << "FAILED: " << what << "\n";
    std::exit(1);
  }
}

/// Fig. 1 trimmed to the constrained attributes (as in the test
/// fixtures): Emp(LN, address, salary, status), Dept(mgrAddr, budget),
/// ϕ1–ϕ4 (+ ϕ2b) and ρ: Dept[mgrAddr] ⇐ Emp[address].
Specification BuildCompanySpec() {
  Specification spec;
  Relation emp(Unwrap(
      Schema::Make("Emp", {"LN", "address", "salary", "status"})));
  auto adde = [&](const char* eid, const char* ln, const char* addr,
                  int salary, const char* status) {
    Check(emp.AppendValues({Value(eid), Value(ln), Value(addr),
                            Value(salary), Value(status)})
              .status());
  };
  adde("Mary", "Smith", "2 Small St", 50, "single");     // s1 = 0
  adde("Mary", "Dupont", "10 Elm Ave", 50, "married");   // s2 = 1
  adde("Mary", "Dupont", "6 Main St", 80, "married");    // s3 = 2
  adde("Bob", "Luth", "8 Cowan St", 80, "married");      // s4 = 3
  adde("Robert", "Luth", "8 Drum St", 55, "married");    // s5 = 4
  Check(spec.AddInstance(TemporalInstance(std::move(emp))));

  Relation dept(Unwrap(Schema::Make("Dept", {"mgrAddr", "budget"}, "dname")));
  auto addd = [&](const char* addr, int budget) {
    Check(dept.AppendValues({Value("RnD"), Value(addr), Value(budget)})
              .status());
  };
  addd("2 Small St", 6500);  // t1 = 0
  addd("2 Small St", 7000);  // t2 = 1
  addd("6 Main St", 6000);   // t3 = 2
  addd("8 Cowan St", 6000);  // t4 = 3
  Check(spec.AddInstance(TemporalInstance(std::move(dept))));

  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[LN] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[status] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Emp: t PREC[salary] s -> t PREC[address] s"));
  Check(spec.AddConstraintText(
      "FORALL s, t IN Dept: t PREC[mgrAddr] s -> t PREC[budget] s"));

  copy::CopySignature sig;
  sig.target_relation = "Dept";
  sig.target_attrs = {"mgrAddr"};
  sig.source_relation = "Emp";
  sig.source_attrs = {"address"};
  copy::CopyFunction rho(sig);
  Check(rho.Map(0, 0));
  Check(rho.Map(1, 0));
  Check(rho.Map(2, 2));
  Check(rho.Map(3, 3));
  Check(spec.AddCopyFunction(std::move(rho)));
  return spec;
}

}  // namespace

int main() {
  Specification spec = BuildCompanySpec();

  serve::SessionOptions options;
  options.num_threads = 2;
  auto session =
      Unwrap(serve::CurrencySession::Create(BuildCompanySpec(), options));
  std::cout << "Registered the company specification: "
            << session->num_components() << " coupling components\n";
  // ρ copies two distinct Mary addresses into Dept, so {Emp:Mary,
  // Dept:RnD} couple into one component; Bob and Robert stand alone.
  Expect(session->num_components() == 3, "expected 3 coupling components");

  // --- Batched queries against the warm session -------------------------
  Expect(Unwrap(session->CpsCheck()), "S0 must be consistent (Example 2.3)");

  query::Query q1 = Unwrap(
      query::ParseQuery("Q1(s) := EXISTS ln, a, st: Emp('Mary', ln, a, s, st)"));
  query::Query q4 =
      Unwrap(query::ParseQuery("Q4(b) := EXISTS a: Dept('RnD', a, b)"));
  auto ccqa = Unwrap(session->CcqaBatch({{q1, std::nullopt},
                                         {q4, std::nullopt},
                                         {q1, Tuple({Value(80)})}}));
  Expect(ccqa[0].answers == std::set<Tuple>{Tuple({Value(80)})},
         "Q1: Mary's current salary must certainly be 80 (Example 1.1)");
  Expect(ccqa[1].answers == std::set<Tuple>{Tuple({Value(6000)})},
         "Q4: R&D's current budget must certainly be 6000 (Example 1.1)");
  Expect(ccqa[2].is_certain == std::optional<bool>(true),
         "membership form of Q1 must agree");
  std::cout << "CCQA batch: Mary's salary -> 80, R&D budget -> 6000\n";

  CurrencyOrderQuery salary_order;  // s1 ≺_salary s3 certain via ϕ1
  salary_order.relation = "Emp";
  salary_order.pairs = {RequiredPair{3, 0, 2}};
  CurrencyOrderQuery reversed = salary_order;
  reversed.pairs = {RequiredPair{3, 2, 0}};
  auto cop = Unwrap(session->CopBatch({salary_order, reversed}));
  Expect(cop[0] && !cop[1], "COP: s1 ≺_salary s3 certain, reverse refuted");

  auto dcip = Unwrap(session->DcipBatch({"Emp", "Dept"}));
  Expect(dcip[0] == Unwrap(IsDeterministicForRelation(spec, "Emp")),
         "DCIP(Emp) must match the one-shot solver");
  Expect(dcip[1] == Unwrap(IsDeterministicForRelation(spec, "Dept")),
         "DCIP(Dept) must match the one-shot solver");
  std::cout << "COP/DCIP batches agree with the one-shot solvers\n";

  // --- A cleaning pass: edit one tuple, re-query ------------------------
  // HR fixes Robert's salary record (55 -> 60).  Robert's entity is its
  // own coupling component, so the session must invalidate exactly one
  // of the three components and keep the Mary/Dept answers cached.
  Check(session->Mutate({TupleEdit{0, 4, 3, Value(60)}}));
  std::cout << "Mutate: invalidated " << session->stats().last_invalidated
            << " component(s), reused " << session->stats().last_reused
            << "\n";
  Expect(session->stats().last_invalidated == 1 &&
             session->stats().last_reused == 2,
         "the edit must invalidate exactly Robert's component");

  Expect(Unwrap(session->CpsCheck()), "still consistent after the edit");
  auto ccqa2 = Unwrap(session->CcqaBatch({{q1, std::nullopt}}));
  Expect(ccqa2[0].answers == std::set<Tuple>{Tuple({Value(80)})},
         "Mary's certain salary is untouched by Robert's record");

  // The serving contract: warm answers equal fresh one-shot solves on
  // the mutated specification.
  Check(spec.ApplyTupleEdits({TupleEdit{0, 4, 3, Value(60)}}));
  CcqaOptions fresh;
  fresh.use_sp_fast_path = false;
  Expect(ccqa2[0].answers == Unwrap(CertainCurrentAnswers(spec, q1, fresh)),
         "session answers must equal a fresh build's answers");

  std::cout << "Cleaning pass done: answers identical to a fresh build, "
               "2 of 3 components served from cache\n";
  return 0;
}
