// Table II, COP and DCIP rows — empirical regeneration.
//
// Paper claims: both problems are coNP-complete in data complexity
// (3SAT-complement family, Theorem 3.4) and PTIME without denial
// constraints via PO∞ containment / sink agreement (Theorem 6.1,
// Lemma 6.2).

#include <benchmark/benchmark.h>

#include <random>

#include "src/core/certain_order.h"
#include "src/core/deterministic.h"
#include "src/reductions/to_cop.h"

namespace {

using namespace currency;  // NOLINT

sat::Qbf MakeSat3(int vars, int clauses, unsigned seed) {
  std::mt19937 rng(seed);
  return sat::RandomQbf({vars}, /*first_exists=*/true, clauses, /*cnf=*/true,
                        &rng);
}

// coNP-hard family: certain ordering on the 3SAT gadget.
void BM_Cop_Sat3(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  sat::Qbf qbf = MakeSat3(vars, 2 * vars, 11);
  auto gadget = reductions::Sat3ToCopDcip(qbf);
  for (auto _ : state) {
    auto certain = core::IsCertainOrder(gadget->spec, gadget->order);
    benchmark::DoNotOptimize(certain);
  }
  state.counters["rows"] = 6.0 * vars + 1;
  state.SetLabel("coNP-hard family (Thm 3.4)");
}
BENCHMARK(BM_Cop_Sat3)->DenseRange(2, 7)->Unit(benchmark::kMillisecond);

// Same gadget decides DCIP.
void BM_Dcip_Sat3(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  sat::Qbf qbf = MakeSat3(vars, 2 * vars, 13);
  auto gadget = reductions::Sat3ToCopDcip(qbf);
  for (auto _ : state) {
    auto det = core::IsDeterministicForRelation(gadget->spec, "RC");
    benchmark::DoNotOptimize(det);
  }
  state.SetLabel("coNP-hard family (Thm 3.4)");
}
BENCHMARK(BM_Dcip_Sat3)->DenseRange(2, 7)->Unit(benchmark::kMillisecond);

// Tractable case: COP via PO∞ on a constraint-free copy network.
core::Specification MakeCopyNetwork(int entities) {
  core::Specification spec;
  Schema rs = Schema::Make("R", {"A", "B"}).value();
  Relation r(rs);
  for (int e = 0; e < entities; ++e) {
    Value eid("e" + std::to_string(e));
    (void)r.AppendValues({eid, Value(0), Value(0)});
    (void)r.AppendValues({eid, Value(1), Value(1)});
    (void)r.AppendValues({eid, Value(2), Value(2)});
  }
  core::TemporalInstance rinst(std::move(r));
  for (int e = 0; e < entities; ++e) {
    (void)rinst.AddOrder(1, 3 * e, 3 * e + 1);
    (void)rinst.AddOrder(1, 3 * e + 1, 3 * e + 2);
    (void)rinst.AddOrder(2, 3 * e, 3 * e + 2);
  }
  (void)spec.AddInstance(std::move(rinst));
  return spec;
}

void BM_CopPtime_NoConstraints(benchmark::State& state) {
  const int entities = static_cast<int>(state.range(0));
  core::Specification spec = MakeCopyNetwork(entities);
  core::CurrencyOrderQuery query;
  query.relation = "R";
  for (int e = 0; e < entities; ++e) {
    query.pairs.push_back({1, 3 * e, 3 * e + 2});
  }
  for (auto _ : state) {
    auto certain = core::IsCertainOrder(spec, query);
    benchmark::DoNotOptimize(certain);
  }
  state.SetLabel("PTIME without constraints (Thm 6.1 / Lemma 6.2)");
}
BENCHMARK(BM_CopPtime_NoConstraints)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_DcipPtime_NoConstraints(benchmark::State& state) {
  const int entities = static_cast<int>(state.range(0));
  core::Specification spec = MakeCopyNetwork(entities);
  for (auto _ : state) {
    auto det = core::IsDeterministicForRelation(spec, "R");
    benchmark::DoNotOptimize(det);
  }
  state.SetLabel("PTIME without constraints (Thm 6.1, sink agreement)");
}
BENCHMARK(BM_DcipPtime_NoConstraints)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
