// Serving-layer benchmark: cold vs warm CurrencySession, batched COP vs a
// loop of one-shot rebuild-per-query solves, and mutate-then-requery —
// the amortization story of src/serve/session.h made measurable.
//
// Unlike the other bench binaries this one does not use Google Benchmark:
// it needs latency *percentiles* (p50/p95) and a machine-readable JSON
// report for scripts/bench.sh (BENCH_serve.json), and it must build even
// where the benchmark package is absent.  It also self-checks every
// session answer against the one-shot solver and (optionally, via
// --require-speedup=F) enforces the warm-batch-vs-rebuild speedup floor,
// so its ctest smoke registration doubles as a correctness test.
//
// Workload: the sharded master/replica shape of
// bench_scale_decomposition, lightly parameterized — relation R holds
// `entities` four-tuple entities, each carrying a small planted-
// satisfiable order puzzle (ternary denial clauses over A-order literals,
// pinned to tuples through the P selector attribute), and R2 copies A
// from two distinct R tuples per entity, so every coupling component is
// one {R-entity, R2-entity} pair.  COP queries spread over the entities.
//
// Flags: --entities=N --queries=Q --iters=K --require-speedup=F
//        --threads=T --out=FILE

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/core/certain_order.h"
#include "src/core/consistency.h"
#include "src/serve/session.h"

namespace {

using namespace currency;  // NOLINT

constexpr int kGroup = 4;     // tuples per R entity
constexpr int kClauses = 10;  // puzzle clauses per entity

/// Zero-padded ids keep Value order aligned with creation order.
std::string PadId(const char* prefix, int e) {
  std::string digits = std::to_string(e);
  return std::string(prefix) + std::string(6 - digits.size(), '0') + digits;
}

/// Planted-satisfiable ternary clauses over the A-order literals of a
/// four-tuple entity (satisfied by the identity order), pinned to
/// concrete tuples through the P attribute — each grounds to exactly one
/// clause per entity group, giving every component a few genuine CDCL
/// conflicts.  Same scheme as bench_scale_decomposition, sized down.
std::vector<std::string> MakePuzzleConstraints(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> tup(0, kGroup - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  const char* vars[] = {"a", "b", "c", "d", "e", "f"};
  std::vector<std::string> out;
  while (static_cast<int>(out.size()) < kClauses) {
    struct Literal {
      int lo, hi;
      bool identity;
    };
    std::vector<Literal> lits;
    bool any_identity = false;
    for (int k = 0; k < 3; ++k) {
      int lo = tup(rng), hi = tup(rng);
      while (hi == lo) hi = tup(rng);
      if (lo > hi) std::swap(lo, hi);
      bool identity = coin(rng) == 1;
      if (k == 2 && !any_identity) identity = true;  // plant satisfiability
      any_identity |= identity;
      lits.push_back({lo, hi, identity});
    }
    std::string text = "FORALL a, b, c, d, e, f IN R: ";
    for (int k = 0; k < 3; ++k) {
      text += std::string(vars[2 * k]) + ".P = " + std::to_string(lits[k].lo) +
              " AND " + vars[2 * k + 1] + ".P = " +
              std::to_string(lits[k].hi) + " AND ";
    }
    for (int k = 0; k < 3; ++k) {
      std::string lo = vars[2 * k], hi = vars[2 * k + 1];
      text += lits[k].identity ? hi + " PREC[A] " + lo
                               : lo + " PREC[A] " + hi;
      text += (k < 2) ? " AND " : " -> a PREC[A] a";  // pure denial
    }
    out.push_back(std::move(text));
  }
  return out;
}

core::Specification MakeShardedSpec(int entities) {
  core::Specification spec;
  Schema rs = Schema::Make("R", {"P", "A", "B"}).value();
  Relation r(rs);
  for (int e = 0; e < entities; ++e) {
    Value eid(PadId("e", e));
    for (int k = 0; k < kGroup; ++k) {
      (void)r.AppendValues({eid, Value(k), Value(k), Value(k % 2)});
    }
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(r)));
  for (const std::string& text : MakePuzzleConstraints(/*seed=*/11)) {
    (void)spec.AddConstraintText(text);
  }
  Schema r2s = Schema::Make("R2", {"C"}).value();
  Relation r2(r2s);
  copy::CopySignature sig;
  sig.target_relation = "R2";
  sig.target_attrs = {"C"};
  sig.source_relation = "R";
  sig.source_attrs = {"A"};
  copy::CopyFunction fn(sig);
  for (int e = 0; e < entities; ++e) {
    Value eid(PadId("f", e));
    TupleId src0 = e * kGroup;      // carries A = 0
    TupleId src1 = e * kGroup + 2;  // carries A = 2
    auto t0 = r2.AppendValues({eid, Value(0)});
    auto t1 = r2.AppendValues({eid, Value(2)});
    (void)fn.Map(*t0, src0);
    (void)fn.Map(*t1, src1);
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(r2)));
  (void)spec.AddCopyFunction(std::move(fn));
  return spec;
}

/// COP queries spread over the entities, two pairs each: one planted
/// certain-looking pair and one reversed pair.
std::vector<core::CurrencyOrderQuery> MakeQueries(int entities, int queries) {
  std::vector<core::CurrencyOrderQuery> out;
  for (int k = 0; k < queries; ++k) {
    int e = (static_cast<int64_t>(k) * entities) / queries;
    core::CurrencyOrderQuery q;
    q.relation = "R";
    q.pairs = {core::RequiredPair{2, e * kGroup, e * kGroup + 1},
               core::RequiredPair{2, e * kGroup + 3, e * kGroup + 2}};
    out.push_back(std::move(q));
  }
  return out;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Series {
  std::string name;
  std::vector<double> samples_ms;

  double Total() const {
    double t = 0;
    for (double s : samples_ms) t += s;
    return t;
  }
  double Percentile(double q) const {
    if (samples_ms.empty()) return 0;
    std::vector<double> sorted = samples_ms;
    std::sort(sorted.begin(), sorted.end());
    size_t rank = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }
  std::string ToJson() const {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\": \"%s\", \"n\": %zu, \"ops_per_sec\": %.3f, "
                  "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"mean_ms\": %.4f}",
                  name.c_str(), samples_ms.size(),
                  samples_ms.empty() || Total() <= 0
                      ? 0.0
                      : 1000.0 * samples_ms.size() / Total(),
                  Percentile(0.50), Percentile(0.95),
                  samples_ms.empty() ? 0.0 : Total() / samples_ms.size());
    return buf;
  }
};

int Fail(const char* what) {
  std::fprintf(stderr, "bench_serve: FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int entities = 64;
  int queries = 16;
  int iters = 5;
  int threads = 1;
  double require_speedup = 0.0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--entities=", 11) == 0) {
      entities = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      queries = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--require-speedup=", 18) == 0) {
      require_speedup = std::atof(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "bench_serve: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (entities < queries) queries = entities;

  core::Specification spec = MakeShardedSpec(entities);
  std::vector<core::CurrencyOrderQuery> cop_queries =
      MakeQueries(entities, queries);

  // Reference answers from the one-shot solver (each call a full rebuild;
  // its per-query latency is the rebuild-per-query series).
  Series rebuild{"rebuild_per_query_cop", {}};
  std::vector<bool> reference;
  for (const core::CurrencyOrderQuery& q : cop_queries) {
    double t0 = NowMs();
    auto fresh = core::IsCertainOrder(spec, q);
    rebuild.samples_ms.push_back(NowMs() - t0);
    if (!fresh.ok()) return Fail(fresh.status().ToString().c_str());
    reference.push_back(*fresh);
  }

  // Cold session: registration (coupling graph + fingerprints) plus the
  // first CpsCheck, which builds and base-solves every component.
  serve::SessionOptions options;
  options.num_threads = threads;
  Series cold{"cold_session_create_plus_cps", {}};
  double t0 = NowMs();
  auto session = serve::CurrencySession::Create(spec, options);
  if (!session.ok()) return Fail(session.status().ToString().c_str());
  auto consistent = (*session)->CpsCheck();
  cold.samples_ms.push_back(NowMs() - t0);
  if (!consistent.ok() || !*consistent) return Fail("workload must be SAT");

  // Warm batch: all queries in one CopBatch (per-query latency reported).
  Series warm_batch{"warm_batch_cop_per_query", {}};
  for (int it = 0; it < iters; ++it) {
    t0 = NowMs();
    auto batch = (*session)->CopBatch(cop_queries);
    double per_query = (NowMs() - t0) / queries;
    if (!batch.ok()) return Fail(batch.status().ToString().c_str());
    for (int k = 0; k < queries; ++k) {
      if ((*batch)[k] != reference[k]) {
        return Fail("warm batch answer differs from one-shot solver");
      }
      warm_batch.samples_ms.push_back(per_query);
    }
  }

  // Warm loop-of-singles: one CopBatch call per query.
  Series warm_single{"warm_single_cop", {}};
  for (int it = 0; it < iters; ++it) {
    for (int k = 0; k < queries; ++k) {
      t0 = NowMs();
      auto one = (*session)->CopBatch({cop_queries[k]});
      warm_single.samples_ms.push_back(NowMs() - t0);
      if (!one.ok()) return Fail(one.status().ToString().c_str());
      if ((*one)[0] != reference[k]) {
        return Fail("warm single answer differs from one-shot solver");
      }
    }
  }

  // Mutate one tuple (rotating entity; B is constraint-free so answers
  // are unaffected) then run the full batch: the incremental path should
  // re-solve exactly one component and keep every answer.
  Series mutate{"mutate_one_tuple_plus_batch", {}};
  for (int it = 0; it < iters; ++it) {
    int e = it % entities;
    core::TupleEdit edit{0, e * kGroup + 1, 3, Value(100 + it)};
    t0 = NowMs();
    Status st = (*session)->Mutate({edit});
    auto batch = (*session)->CopBatch(cop_queries);
    mutate.samples_ms.push_back(NowMs() - t0);
    if (!st.ok()) return Fail(st.ToString().c_str());
    if (!batch.ok()) return Fail(batch.status().ToString().c_str());
    if ((*session)->stats().last_invalidated != 1) {
      return Fail("a one-tuple edit must invalidate exactly one component");
    }
    for (int k = 0; k < queries; ++k) {
      if ((*batch)[k] != reference[k]) {
        return Fail("post-mutate answer differs from one-shot solver");
      }
    }
  }

  double speedup = warm_batch.Percentile(0.5) > 0
                       ? rebuild.Percentile(0.5) / warm_batch.Percentile(0.5)
                       : 0.0;
  std::string json = "{\n  \"bench\": \"bench_serve\",\n  \"workload\": {";
  json += "\"entities\": " + std::to_string(entities) +
          ", \"components\": " + std::to_string((*session)->num_components()) +
          ", \"queries\": " + std::to_string(queries) +
          ", \"iters\": " + std::to_string(iters) +
          ", \"threads\": " + std::to_string(threads) + "},\n  \"results\": [";
  const Series* all[] = {&cold, &rebuild, &warm_single, &warm_batch, &mutate};
  for (size_t k = 0; k < 5; ++k) {
    json += std::string(k ? "," : "") + "\n    " + all[k]->ToJson();
  }
  char tail[128];
  std::snprintf(tail, sizeof tail,
                "\n  ],\n  \"speedup_warm_batch_vs_rebuild_p50\": %.2f\n}\n",
                speedup);
  json += tail;
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) return Fail("cannot open --out file");
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("bench_serve: wrote %s (speedup %.2fx)\n", out_path.c_str(),
                speedup);
  }
  if (require_speedup > 0 && speedup < require_speedup) {
    std::fprintf(stderr,
                 "bench_serve: FAILED: warm-batch speedup %.2fx below the "
                 "required %.2fx\n",
                 speedup, require_speedup);
    return 1;
  }
  return 0;
}
