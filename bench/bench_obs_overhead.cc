// Observability overhead benchmark: what the metrics + tracing layer
// (src/obs) costs on the warm serving path.
//
// Like bench_serve this is a plain binary (no Google Benchmark): it
// reports warm-query latency percentiles and machine-readable JSON for
// scripts/bench.sh (BENCH_obs.json), and self-checks every answer
// against the one-shot solver.
//
// The A/B runs across two build trees: scripts/bench.sh first runs the
// binary from a -DCURRENCY_OBS_OFF=ON tree (mode "compiled_out" — every
// TraceSpan/Stage/ScopedTimer is an empty type, zero clock reads) to get
// the baseline warm p50, then runs the instrumented tree's binary with
// --baseline-p50-ms=F --max-overhead=R, which enforces the overhead
// ceiling (traced p50 <= R x baseline p50; the committed floor is 1.05,
// i.e. <= 5%).  In-process the binary additionally A/Bs tracer-enabled
// vs tracer-absent sessions, so the report separates "counters +
// histograms" cost from "live trace spans" cost.
//
// Workload: the sharded shape of bench_serve without the copy instance —
// R holds `entities` four-tuple entities, each with a planted-
// satisfiable order puzzle, so warm COP queries pay cache lookups and
// answer decoding but no re-solves: exactly the path where per-request
// instrumentation (span open/close, stage attach, histogram observe)
// could show up.
//
// The enforced series is the warm BATCH per-query p50 (all queries in
// one CopBatch, divided by the batch size) — the same shape bench_serve
// headlines, and the serving workload's actual warm-query path.  The
// loop-of-single-query series are reported alongside but not enforced:
// a warm single query completes in ~2 µs, where the fixed ~0.5 µs
// per-REQUEST trace cost (a handful of clock reads plus ring insertion)
// is a double-digit ratio by construction; per QUERY that fixed cost
// amortizes across the batch, which is what a p50 ceiling can
// meaningfully bound on a 1-CPU container.
//
// Flags: --entities=N --queries=Q --iters=K --threads=T
//        --baseline-p50-ms=F --max-overhead=R --out=FILE

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/core/certain_order.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/session.h"

namespace {

using namespace currency;  // NOLINT

constexpr int kGroup = 4;    // tuples per R entity
constexpr int kClauses = 8;  // puzzle clauses per entity

std::string PadId(const char* prefix, int e) {
  std::string digits = std::to_string(e);
  return std::string(prefix) + std::string(6 - digits.size(), '0') + digits;
}

/// Planted-satisfiable ternary denial clauses over A-order literals,
/// pinned through the P selector — the bench_serve scheme, sized down.
std::vector<std::string> MakePuzzleConstraints(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> tup(0, kGroup - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  const char* vars[] = {"a", "b", "c", "d", "e", "f"};
  std::vector<std::string> out;
  while (static_cast<int>(out.size()) < kClauses) {
    struct Literal {
      int lo, hi;
      bool identity;
    };
    std::vector<Literal> lits;
    bool any_identity = false;
    for (int k = 0; k < 3; ++k) {
      int lo = tup(rng), hi = tup(rng);
      while (hi == lo) hi = tup(rng);
      if (lo > hi) std::swap(lo, hi);
      bool identity = coin(rng) == 1;
      if (k == 2 && !any_identity) identity = true;  // plant satisfiability
      any_identity |= identity;
      lits.push_back({lo, hi, identity});
    }
    std::string text = "FORALL a, b, c, d, e, f IN R: ";
    for (int k = 0; k < 3; ++k) {
      text += std::string(vars[2 * k]) + ".P = " + std::to_string(lits[k].lo) +
              " AND " + vars[2 * k + 1] + ".P = " +
              std::to_string(lits[k].hi) + " AND ";
    }
    for (int k = 0; k < 3; ++k) {
      std::string lo = vars[2 * k], hi = vars[2 * k + 1];
      text += lits[k].identity ? hi + " PREC[A] " + lo
                               : lo + " PREC[A] " + hi;
      text += (k < 2) ? " AND " : " -> a PREC[A] a";  // pure denial
    }
    out.push_back(std::move(text));
  }
  return out;
}

core::Specification MakeShardedSpec(int entities) {
  core::Specification spec;
  Schema rs = Schema::Make("R", {"P", "A", "B"}).value();
  Relation r(rs);
  for (int e = 0; e < entities; ++e) {
    Value eid(PadId("e", e));
    for (int k = 0; k < kGroup; ++k) {
      (void)r.AppendValues({eid, Value(k), Value(k), Value(k % 2)});
    }
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(r)));
  for (const std::string& text : MakePuzzleConstraints(/*seed=*/17)) {
    (void)spec.AddConstraintText(text);
  }
  return spec;
}

std::vector<core::CurrencyOrderQuery> MakeQueries(int entities, int queries) {
  std::vector<core::CurrencyOrderQuery> out;
  for (int k = 0; k < queries; ++k) {
    int e = (static_cast<int64_t>(k) * entities) / queries;
    core::CurrencyOrderQuery q;
    q.relation = "R";
    q.pairs = {core::RequiredPair{2, e * kGroup, e * kGroup + 1},
               core::RequiredPair{2, e * kGroup + 3, e * kGroup + 2}};
    out.push_back(std::move(q));
  }
  return out;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Series {
  std::string name;
  std::vector<double> samples_ms;

  double Total() const {
    double t = 0;
    for (double s : samples_ms) t += s;
    return t;
  }
  double Percentile(double q) const {
    if (samples_ms.empty()) return 0;
    std::vector<double> sorted = samples_ms;
    std::sort(sorted.begin(), sorted.end());
    size_t rank = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }
  std::string ToJson() const {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\": \"%s\", \"n\": %zu, \"ops_per_sec\": %.3f, "
                  "\"p50_ms\": %.6f, \"p95_ms\": %.6f, \"mean_ms\": %.6f}",
                  name.c_str(), samples_ms.size(),
                  samples_ms.empty() || Total() <= 0
                      ? 0.0
                      : 1000.0 * samples_ms.size() / Total(),
                  Percentile(0.50), Percentile(0.95),
                  samples_ms.empty() ? 0.0 : Total() / samples_ms.size());
    return buf;
  }
};

int Fail(const char* what) {
  std::fprintf(stderr, "bench_obs_overhead: FAILED: %s\n", what);
  return 1;
}

/// Warm single-query loop against an already-warmed session; answers are
/// checked against the one-shot references on every iteration.
bool RunWarmLoop(serve::CurrencySession* session,
                 const std::vector<core::CurrencyOrderQuery>& queries,
                 const std::vector<bool>& reference, int iters,
                 Series* series) {
  for (int it = 0; it < iters; ++it) {
    for (size_t k = 0; k < queries.size(); ++k) {
      double t0 = NowMs();
      auto one = session->CopBatch({queries[k]});
      series->samples_ms.push_back(NowMs() - t0);
      if (!one.ok() || (*one)[0] != reference[k]) return false;
    }
  }
  return true;
}

/// Warm batch loop: all queries in one CopBatch per iteration, sampled
/// as per-query latency — the enforced series.
bool RunBatchLoop(serve::CurrencySession* session,
                  const std::vector<core::CurrencyOrderQuery>& queries,
                  const std::vector<bool>& reference, int iters,
                  Series* series) {
  for (int it = 0; it < iters; ++it) {
    double t0 = NowMs();
    auto batch = session->CopBatch(queries);
    double per_query = (NowMs() - t0) / static_cast<double>(queries.size());
    if (!batch.ok()) return false;
    for (size_t k = 0; k < queries.size(); ++k) {
      if ((*batch)[k] != reference[k]) return false;
    }
    series->samples_ms.push_back(per_query);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int entities = 256;
  int queries = 32;
  int iters = 5;
  int threads = 1;
  double baseline_p50_ms = 0.0;
  double max_overhead = 0.0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--entities=", 11) == 0) {
      entities = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      queries = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--baseline-p50-ms=", 18) == 0) {
      baseline_p50_ms = std::atof(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--max-overhead=", 15) == 0) {
      max_overhead = std::atof(argv[i] + 15);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "bench_obs_overhead: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (entities < queries) queries = entities;

#ifdef CURRENCY_OBS_OFF
  const char* mode = "compiled_out";
#else
  const char* mode = "instrumented";
#endif

  core::Specification spec = MakeShardedSpec(entities);
  std::vector<core::CurrencyOrderQuery> cop_queries =
      MakeQueries(entities, queries);
  std::vector<bool> reference;
  for (const core::CurrencyOrderQuery& q : cop_queries) {
    auto fresh = core::IsCertainOrder(spec, q);
    if (!fresh.ok()) return Fail(fresh.status().ToString().c_str());
    reference.push_back(*fresh);
  }

  // A: no tracer (metrics counters/histograms still live unless the
  // whole layer is compiled out).
  Series untraced_batch{"warm_batch_cop_per_query_untraced", {}};
  Series untraced_single{"warm_single_cop_untraced", {}};
  {
    serve::SessionOptions options;
    options.num_threads = threads;
    auto session = serve::CurrencySession::Create(spec, options);
    if (!session.ok()) return Fail(session.status().ToString().c_str());
    auto consistent = (*session)->CpsCheck();
    if (!consistent.ok() || !*consistent) return Fail("workload must be SAT");
    if (!RunBatchLoop(session->get(), cop_queries, reference, iters,
                      &untraced_batch) ||
        !RunWarmLoop(session->get(), cop_queries, reference, iters,
                     &untraced_single)) {
      return Fail("untraced answer differs from one-shot solver");
    }
  }

  // B: full request tracing — every batch opens a root span with stages
  // and counter-delta snapshots landing in the ring.
  obs::TraceOptions trace_options;
  trace_options.enabled = true;
  obs::Tracer tracer(trace_options);
  Series traced_batch{"warm_batch_cop_per_query_traced", {}};
  Series traced_single{"warm_single_cop_traced", {}};
  {
    serve::SessionOptions options;
    options.num_threads = threads;
    options.tracer = &tracer;
    auto session = serve::CurrencySession::Create(spec, options);
    if (!session.ok()) return Fail(session.status().ToString().c_str());
    auto consistent = (*session)->CpsCheck();
    if (!consistent.ok() || !*consistent) return Fail("workload must be SAT");
    if (!RunBatchLoop(session->get(), cop_queries, reference, iters,
                      &traced_batch) ||
        !RunWarmLoop(session->get(), cop_queries, reference, iters,
                     &traced_single)) {
      return Fail("traced answer differs from one-shot solver");
    }
  }
#ifndef CURRENCY_OBS_OFF
  if (tracer.recorded_traces() == 0) {
    return Fail("tracer recorded no spans in the traced run");
  }
#endif

  double in_process_ratio =
      untraced_batch.Percentile(0.5) > 0
          ? traced_batch.Percentile(0.5) / untraced_batch.Percentile(0.5)
          : 0.0;
  double vs_baseline_ratio =
      baseline_p50_ms > 0 ? traced_batch.Percentile(0.5) / baseline_p50_ms
                          : 0.0;

  std::string json = "{\n  \"bench\": \"bench_obs_overhead\",\n";
  json += "  \"mode\": \"" + std::string(mode) + "\",\n";
  json += "  \"workload\": {";
  json += "\"entities\": " + std::to_string(entities) +
          ", \"queries\": " + std::to_string(queries) +
          ", \"iters\": " + std::to_string(iters) +
          ", \"threads\": " + std::to_string(threads) + "},\n  \"results\": [";
  const Series* all[] = {&untraced_batch, &traced_batch, &untraced_single,
                         &traced_single};
  for (size_t k = 0; k < 4; ++k) {
    json += std::string(k ? "," : "") + "\n    " + all[k]->ToJson();
  }
  char tail[256];
  std::snprintf(tail, sizeof tail,
                "\n  ],\n  \"traced_vs_untraced_p50\": %.4f,\n"
                "  \"baseline_p50_ms\": %.6f,\n"
                "  \"traced_vs_baseline_p50\": %.4f\n}\n",
                in_process_ratio, baseline_p50_ms, vs_baseline_ratio);
  json += tail;
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) return Fail("cannot open --out file");
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf(
        "bench_obs_overhead: wrote %s (mode %s, traced/untraced %.3fx%s)\n",
        out_path.c_str(), mode, in_process_ratio,
        baseline_p50_ms > 0
            ? (", vs compiled-out baseline " +
               std::to_string(vs_baseline_ratio) + "x")
                  .c_str()
            : "");
  }
  if (max_overhead > 0 && baseline_p50_ms > 0 &&
      vs_baseline_ratio > max_overhead) {
    std::fprintf(stderr,
                 "bench_obs_overhead: FAILED: traced warm per-query p50 "
                 "%.6f ms is %.3fx the compiled-out baseline %.6f ms "
                 "(ceiling %.3fx)\n",
                 traced_batch.Percentile(0.5), vs_baseline_ratio,
                 baseline_p50_ms, max_overhead);
    return 1;
  }
  return 0;
}
