// Concurrent serving-layer benchmark: reader batches against a live
// mutator on one snapshot-isolated CurrencySession — the epoch layer of
// src/serve/epoch.h made measurable.
//
// Like bench_serve this is a plain binary (no Google Benchmark): it
// reports latency percentiles and machine-readable JSON for
// scripts/bench.sh (BENCH_mt.json), and it self-checks every concurrent
// answer against a one-shot reference so its ctest smoke registration
// doubles as a correctness test.  Three phases over the same sharded
// workload as bench_serve:
//
//  1. serialized     — one thread, COP batches back to back (baseline).
//  2. concurrent     — R reader threads batching with no writer: epoch
//                      pinning + per-component solver locking overhead.
//  3. during_mutate  — the same readers while a mutator streams
//                      constraint-free edits: reader batches never wait
//                      for an epoch build, and every answer still equals
//                      the reference (the edits touch no constrained
//                      attribute).
//
// The emitted JSON carries the detected CPU count and an explicit caveat:
// on a single-CPU container the concurrent phases measure snapshot and
// scheduling *overhead* (threads interleave, they do not overlap), so
// concurrent throughput at or near the serialized baseline is the win —
// parallel speedup is only observable with real cores.
//
// Flags: --entities=N --queries=Q --iters=K --readers=R --threads=T
//        --out=FILE

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/core/certain_order.h"
#include "src/obs/metrics.h"
#include "src/serve/session.h"

namespace {

using namespace currency;  // NOLINT

constexpr int kGroup = 4;     // tuples per R entity
constexpr int kClauses = 10;  // puzzle clauses per entity

/// Zero-padded ids keep Value order aligned with creation order.
std::string PadId(const char* prefix, int e) {
  std::string digits = std::to_string(e);
  return std::string(prefix) + std::string(6 - digits.size(), '0') + digits;
}

/// Planted-satisfiable ternary clauses over the A-order literals of a
/// four-tuple entity, pinned to concrete tuples through the P attribute.
/// Same scheme as bench_serve.
std::vector<std::string> MakePuzzleConstraints(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> tup(0, kGroup - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  const char* vars[] = {"a", "b", "c", "d", "e", "f"};
  std::vector<std::string> out;
  while (static_cast<int>(out.size()) < kClauses) {
    struct Literal {
      int lo, hi;
      bool identity;
    };
    std::vector<Literal> lits;
    bool any_identity = false;
    for (int k = 0; k < 3; ++k) {
      int lo = tup(rng), hi = tup(rng);
      while (hi == lo) hi = tup(rng);
      if (lo > hi) std::swap(lo, hi);
      bool identity = coin(rng) == 1;
      if (k == 2 && !any_identity) identity = true;  // plant satisfiability
      any_identity |= identity;
      lits.push_back({lo, hi, identity});
    }
    std::string text = "FORALL a, b, c, d, e, f IN R: ";
    for (int k = 0; k < 3; ++k) {
      text += std::string(vars[2 * k]) + ".P = " + std::to_string(lits[k].lo) +
              " AND " + vars[2 * k + 1] + ".P = " +
              std::to_string(lits[k].hi) + " AND ";
    }
    for (int k = 0; k < 3; ++k) {
      std::string lo = vars[2 * k], hi = vars[2 * k + 1];
      text += lits[k].identity ? hi + " PREC[A] " + lo
                               : lo + " PREC[A] " + hi;
      text += (k < 2) ? " AND " : " -> a PREC[A] a";  // pure denial
    }
    out.push_back(std::move(text));
  }
  return out;
}

core::Specification MakeShardedSpec(int entities) {
  core::Specification spec;
  Schema rs = Schema::Make("R", {"P", "A", "B"}).value();
  Relation r(rs);
  for (int e = 0; e < entities; ++e) {
    Value eid(PadId("e", e));
    for (int k = 0; k < kGroup; ++k) {
      (void)r.AppendValues({eid, Value(k), Value(k), Value(k % 2)});
    }
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(r)));
  for (const std::string& text : MakePuzzleConstraints(/*seed=*/11)) {
    (void)spec.AddConstraintText(text);
  }
  Schema r2s = Schema::Make("R2", {"C"}).value();
  Relation r2(r2s);
  copy::CopySignature sig;
  sig.target_relation = "R2";
  sig.target_attrs = {"C"};
  sig.source_relation = "R";
  sig.source_attrs = {"A"};
  copy::CopyFunction fn(sig);
  for (int e = 0; e < entities; ++e) {
    Value eid(PadId("f", e));
    TupleId src0 = e * kGroup;      // carries A = 0
    TupleId src1 = e * kGroup + 2;  // carries A = 2
    auto t0 = r2.AppendValues({eid, Value(0)});
    auto t1 = r2.AppendValues({eid, Value(2)});
    (void)fn.Map(*t0, src0);
    (void)fn.Map(*t1, src1);
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(r2)));
  (void)spec.AddCopyFunction(std::move(fn));
  return spec;
}

std::vector<core::CurrencyOrderQuery> MakeQueries(int entities, int queries) {
  std::vector<core::CurrencyOrderQuery> out;
  for (int k = 0; k < queries; ++k) {
    int e = (static_cast<int64_t>(k) * entities) / queries;
    core::CurrencyOrderQuery q;
    q.relation = "R";
    q.pairs = {core::RequiredPair{2, e * kGroup, e * kGroup + 1},
               core::RequiredPair{2, e * kGroup + 3, e * kGroup + 2}};
    out.push_back(std::move(q));
  }
  return out;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Series {
  std::string name;
  std::vector<double> samples_ms;
  double wall_ms = 0;  // when > 0, ops_per_sec uses the wall clock

  double Total() const {
    double t = 0;
    for (double s : samples_ms) t += s;
    return t;
  }
  double Percentile(double q) const {
    if (samples_ms.empty()) return 0;
    std::vector<double> sorted = samples_ms;
    std::sort(sorted.begin(), sorted.end());
    size_t rank = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }
  std::string ToJson() const {
    double denom = wall_ms > 0 ? wall_ms : Total();
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\": \"%s\", \"n\": %zu, \"ops_per_sec\": %.3f, "
                  "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"mean_ms\": %.4f}",
                  name.c_str(), samples_ms.size(),
                  samples_ms.empty() || denom <= 0
                      ? 0.0
                      : 1000.0 * samples_ms.size() / denom,
                  Percentile(0.50), Percentile(0.95),
                  samples_ms.empty() ? 0.0 : Total() / samples_ms.size());
    return buf;
  }
};

int Fail(const char* what) {
  std::fprintf(stderr, "bench_concurrent_serve: FAILED: %s\n", what);
  return 1;
}

/// Runs `readers` threads, each issuing `iters` CopBatches, checking every
/// answer against `reference`.  Returns per-batch latencies merged across
/// threads; sets *wall_ms and *ok.
std::vector<double> RunReaders(serve::CurrencySession* session,
                               const std::vector<core::CurrencyOrderQuery>&
                                   queries,
                               const std::vector<bool>& reference, int readers,
                               int iters, double* wall_ms,
                               std::atomic<bool>* ok) {
  std::vector<std::vector<double>> per_thread(readers);
  std::vector<std::thread> threads;
  double t0 = NowMs();
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      for (int it = 0; it < iters && ok->load(); ++it) {
        double b0 = NowMs();
        auto batch = session->CopBatch(queries);
        per_thread[r].push_back(NowMs() - b0);
        if (!batch.ok() || *batch != reference) {
          ok->store(false);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  *wall_ms = NowMs() - t0;
  std::vector<double> merged;
  for (const auto& v : per_thread) {
    merged.insert(merged.end(), v.begin(), v.end());
  }
  return merged;
}

}  // namespace

int main(int argc, char** argv) {
  int entities = 64;
  int queries = 16;
  int iters = 5;
  int readers = 4;
  int threads = 1;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--entities=", 11) == 0) {
      entities = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      queries = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--readers=", 10) == 0) {
      readers = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "bench_concurrent_serve: unknown flag %s\n",
                   argv[i]);
      return 1;
    }
  }
  if (entities < queries) queries = entities;

  core::Specification spec = MakeShardedSpec(entities);
  std::vector<core::CurrencyOrderQuery> cop_queries =
      MakeQueries(entities, queries);

  // Reference answers from the one-shot solver.
  std::vector<bool> reference;
  for (const core::CurrencyOrderQuery& q : cop_queries) {
    auto fresh = core::IsCertainOrder(spec, q);
    if (!fresh.ok()) return Fail(fresh.status().ToString().c_str());
    reference.push_back(*fresh);
  }

  serve::SessionOptions options;
  options.num_threads = threads;
  auto session = serve::CurrencySession::Create(spec, options);
  if (!session.ok()) return Fail(session.status().ToString().c_str());
  auto consistent = (*session)->CpsCheck();  // warm every component
  if (!consistent.ok() || !*consistent) return Fail("workload must be SAT");

  // Phase 1: serialized baseline — one thread, batches back to back.
  Series serialized{"serialized_batch_cop", {}, 0};
  {
    double t0 = NowMs();
    for (int it = 0; it < iters; ++it) {
      double b0 = NowMs();
      auto batch = (*session)->CopBatch(cop_queries);
      serialized.samples_ms.push_back(NowMs() - b0);
      if (!batch.ok()) return Fail(batch.status().ToString().c_str());
      if (*batch != reference) return Fail("serialized answer diverged");
    }
    serialized.wall_ms = NowMs() - t0;
  }

  // Phase 2: concurrent readers, no writer.
  std::atomic<bool> ok{true};
  Series concurrent{"concurrent_readers_batch_cop", {}, 0};
  concurrent.samples_ms = RunReaders(session->get(), cop_queries, reference,
                                     readers, iters, &concurrent.wall_ms, &ok);
  if (!ok.load()) return Fail("concurrent reader answer diverged");

  // Phase 3: the same readers while a mutator streams edits to the
  // constraint-free B attribute (answers are unaffected, so the reference
  // stays valid for every epoch a batch could pin).
  Series during{"readers_batch_cop_during_mutation", {}, 0};
  Series mutate{"mutate_latency", {}, 0};
  std::atomic<bool> readers_done{false};
  std::thread mutator([&] {
    std::mt19937 rng(29);
    std::uniform_int_distribution<int> pick(0, entities * kGroup - 1);
    // At least 3 mutations even when the readers outrun the first epoch
    // build, so the latency series is never a single sample.
    int m = 0;
    while (!readers_done.load() || m < 3) {
      core::TupleEdit edit{0, pick(rng), 3, Value(1000 + m++)};
      double t0 = NowMs();
      Status st = (*session)->Mutate({edit});
      mutate.samples_ms.push_back(NowMs() - t0);
      if (!st.ok()) {
        ok.store(false);
        return;
      }
    }
  });
  during.samples_ms = RunReaders(session->get(), cop_queries, reference,
                                 readers, iters, &during.wall_ms, &ok);
  readers_done.store(true);
  mutator.join();
  if (!ok.load()) return Fail("answer diverged during mutation");
  if (mutate.samples_ms.empty()) return Fail("mutator never ran");
  mutate.wall_ms = during.wall_ms;

  // Registry snapshot, not SessionStats: the same series the exposition
  // endpoint reports.
  int64_t total_mutations =
      (*session)
          ->registry()
          ->GetCounter("currency_serve_mutations_total")
          ->Value();
  std::string json = "{\n  \"bench\": \"bench_concurrent_serve\",\n";
  json += "  \"caveat\": \"on a 1-CPU container the concurrent phases "
          "measure snapshot/scheduling overhead (threads interleave, not "
          "overlap); parity with the serialized baseline is the win\",\n";
  json += "  \"workload\": {";
  json += "\"entities\": " + std::to_string(entities) +
          ", \"components\": " + std::to_string((*session)->num_components()) +
          ", \"queries\": " + std::to_string(queries) +
          ", \"iters\": " + std::to_string(iters) +
          ", \"readers\": " + std::to_string(readers) +
          ", \"threads\": " + std::to_string(threads) +
          ", \"cpus\": " +
          std::to_string(std::thread::hardware_concurrency()) +
          ", \"mutations\": " + std::to_string(total_mutations) +
          ", \"final_epoch\": " + std::to_string((*session)->epoch_version()) +
          "},\n  \"results\": [";
  const Series* all[] = {&serialized, &concurrent, &during, &mutate};
  for (size_t k = 0; k < 4; ++k) {
    json += std::string(k ? "," : "") + "\n    " + all[k]->ToJson();
  }
  json += "\n  ]\n}\n";
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) return Fail("cannot open --out file");
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("bench_concurrent_serve: wrote %s (%zu mutations overlapped)\n",
                out_path.c_str(), mutate.samples_ms.size());
  }
  return 0;
}
