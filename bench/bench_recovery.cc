// Durability benchmark: what the command log (src/wal) costs on the hot
// path and what warm snapshots buy on restart.
//
// Like bench_serve this is a plain binary (no Google Benchmark): it
// reports latency percentiles and machine-readable JSON for
// scripts/bench.sh (BENCH_wal.json), self-checks every recovered state
// against the live one, and (via --require-speedup=F) enforces the
// snapshot-assisted-restart speedup floor, so its ctest smoke
// registration doubles as a correctness test.
//
// Measured series:
//   * inmemory_mutate     — Mutate latency on a Create() manager
//                           (no log): the baseline.
//   * durable_mutate      — Mutate latency on an Open(dir) manager:
//                           baseline + encode + append + fsync.  The
//                           ratio is the price of fsync-before-
//                           acknowledge on this filesystem.
//   * replay_restart      — Open(dir) + first CpsCheck with the full
//                           history in the log: replays one register +
//                           M mutations (each a full epoch rebuild),
//                           then base-solves every component.
//   * snapshot_restart    — the same state behind a warm snapshot:
//                           Open parses the snapshot, registers once,
//                           adopts the solved verdicts by content
//                           fingerprint, and the first CpsCheck answers
//                           from cache with ZERO base solves (checked).
//
// The container pins a single CPU: restart phases run sequentially, so
// the absolute times understate a parallel restart, but the replay-vs-
// snapshot ratio — the number the floor guards — does not depend on the
// thread count.
//
// Workload: the sharded shape of bench_serve without the copy instance —
// R holds `entities` four-tuple entities, each carrying a small planted-
// satisfiable order puzzle, so every coupling component pays a genuine
// SAT solve on a cold start.  Mutations edit the constraint-free B
// attribute round-robin across entities.
//
// Flags: --entities=N --mutations=M --iters=K --threads=T
//        --require-speedup=F --dir=PATH --out=FILE

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/serve/session_manager.h"
#include "src/wire/spec.h"

namespace {

using namespace currency;  // NOLINT

constexpr int kGroup = 4;     // tuples per R entity
constexpr int kClauses = 10;  // puzzle clauses per entity

/// Zero-padded ids keep Value order aligned with creation order.
std::string PadId(const char* prefix, int e) {
  std::string digits = std::to_string(e);
  return std::string(prefix) + std::string(6 - digits.size(), '0') + digits;
}

/// Planted-satisfiable ternary clauses over the A-order literals of a
/// four-tuple entity, pinned to concrete tuples through the P attribute
/// (the bench_serve scheme): each grounds to one clause per entity group,
/// giving every component a few genuine CDCL conflicts on its base solve.
std::vector<std::string> MakePuzzleConstraints(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> tup(0, kGroup - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  const char* vars[] = {"a", "b", "c", "d", "e", "f"};
  std::vector<std::string> out;
  while (static_cast<int>(out.size()) < kClauses) {
    struct Literal {
      int lo, hi;
      bool identity;
    };
    std::vector<Literal> lits;
    bool any_identity = false;
    for (int k = 0; k < 3; ++k) {
      int lo = tup(rng), hi = tup(rng);
      while (hi == lo) hi = tup(rng);
      if (lo > hi) std::swap(lo, hi);
      bool identity = coin(rng) == 1;
      if (k == 2 && !any_identity) identity = true;  // plant satisfiability
      any_identity |= identity;
      lits.push_back({lo, hi, identity});
    }
    std::string text = "FORALL a, b, c, d, e, f IN R: ";
    for (int k = 0; k < 3; ++k) {
      text += std::string(vars[2 * k]) + ".P = " + std::to_string(lits[k].lo) +
              " AND " + vars[2 * k + 1] + ".P = " +
              std::to_string(lits[k].hi) + " AND ";
    }
    for (int k = 0; k < 3; ++k) {
      std::string lo = vars[2 * k], hi = vars[2 * k + 1];
      text += lits[k].identity ? hi + " PREC[A] " + lo
                               : lo + " PREC[A] " + hi;
      text += (k < 2) ? " AND " : " -> a PREC[A] a";  // pure denial
    }
    out.push_back(std::move(text));
  }
  return out;
}

core::Specification MakeShardedSpec(int entities) {
  core::Specification spec;
  Schema rs = Schema::Make("R", {"P", "A", "B"}).value();
  Relation r(rs);
  for (int e = 0; e < entities; ++e) {
    Value eid(PadId("e", e));
    for (int k = 0; k < kGroup; ++k) {
      (void)r.AppendValues({eid, Value(k), Value(k), Value(k % 2)});
    }
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(r)));
  for (const std::string& text : MakePuzzleConstraints(/*seed=*/11)) {
    (void)spec.AddConstraintText(text);
  }
  return spec;
}

/// The m-th mutation of the deterministic edit stream: a B-attribute
/// rewrite (constraint-free, so answers and satisfiability are
/// unaffected) rotating across entities.
std::vector<core::TupleEdit> MutationAt(int m, int entities) {
  int e = m % entities;
  return {core::TupleEdit{0, e * kGroup + (m / entities) % kGroup, 3,
                          Value(100 + m)}};
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Series {
  std::string name;
  std::vector<double> samples_ms;

  double Total() const {
    double t = 0;
    for (double s : samples_ms) t += s;
    return t;
  }
  double Percentile(double q) const {
    if (samples_ms.empty()) return 0;
    std::vector<double> sorted = samples_ms;
    std::sort(sorted.begin(), sorted.end());
    size_t rank = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }
  std::string ToJson() const {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\": \"%s\", \"n\": %zu, \"ops_per_sec\": %.3f, "
                  "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"mean_ms\": %.4f}",
                  name.c_str(), samples_ms.size(),
                  samples_ms.empty() || Total() <= 0
                      ? 0.0
                      : 1000.0 * samples_ms.size() / Total(),
                  Percentile(0.50), Percentile(0.95),
                  samples_ms.empty() ? 0.0 : Total() / samples_ms.size());
    return buf;
  }
};

int Fail(const char* what) {
  std::fprintf(stderr, "bench_recovery: FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int entities = 64;
  int mutations = 128;
  int iters = 5;
  int threads = 1;
  double require_speedup = 0.0;
  std::string dir = "bench_recovery_dirs";
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--entities=", 11) == 0) {
      entities = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--mutations=", 12) == 0) {
      mutations = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--require-speedup=", 18) == 0) {
      require_speedup = std::atof(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      dir = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "bench_recovery: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  core::Specification spec = MakeShardedSpec(entities);
  serve::ManagerOptions options;
  options.num_threads = threads;

  // Baseline: the same mutation stream against an in-memory manager.
  Series inmemory{"inmemory_mutate", {}};
  bool reference_consistent = false;
  {
    auto manager = serve::SessionManager::Create(options);
    if (!manager.ok()) return Fail(manager.status().ToString().c_str());
    core::Specification copy = spec;
    Status st = (*manager)->Register("bench", std::move(copy), {});
    if (!st.ok()) return Fail(st.ToString().c_str());
    for (int m = 0; m < mutations; ++m) {
      auto edits = MutationAt(m, entities);
      double t0 = NowMs();
      st = (*manager)->Mutate("bench", edits);
      inmemory.samples_ms.push_back(NowMs() - t0);
      if (!st.ok()) return Fail(st.ToString().c_str());
    }
    auto consistent = (*manager)->CpsCheck("bench");
    if (!consistent.ok() || !*consistent) return Fail("workload must be SAT");
    reference_consistent = *consistent;
  }

  // Durable manager: same stream, every Mutate appended + fsynced before
  // it acknowledges.  The log keeps the full history (no snapshot yet).
  Series durable{"durable_mutate_fsync", {}};
  std::string live_wire;
  {
    auto manager = serve::SessionManager::Open(dir, options);
    if (!manager.ok()) return Fail(manager.status().ToString().c_str());
    core::Specification copy = spec;
    Status st = (*manager)->Register("bench", std::move(copy), {});
    if (!st.ok()) return Fail(st.ToString().c_str());
    for (int m = 0; m < mutations; ++m) {
      auto edits = MutationAt(m, entities);
      double t0 = NowMs();
      st = (*manager)->Mutate("bench", edits);
      durable.samples_ms.push_back(NowMs() - t0);
      if (!st.ok()) return Fail(st.ToString().c_str());
    }
    auto session = (*manager)->Lookup("bench");
    if (!session.ok()) return Fail(session.status().ToString().c_str());
    live_wire = wire::SerializeSpecification((*session)->spec());
  }

  // Replay restart: Open replays the register + M mutations through
  // ApplyCommand, then the first CpsCheck base-solves every component.
  Series replay{"replay_restart_open_plus_cps", {}};
  for (int it = 0; it < iters; ++it) {
    double t0 = NowMs();
    auto manager = serve::SessionManager::Open(dir, options);
    if (!manager.ok()) return Fail(manager.status().ToString().c_str());
    auto consistent = (*manager)->CpsCheck("bench");
    replay.samples_ms.push_back(NowMs() - t0);
    if (!consistent.ok()) return Fail(consistent.status().ToString().c_str());
    if (*consistent != reference_consistent) {
      return Fail("replay restart changed the CPS answer");
    }
    auto session = (*manager)->Lookup("bench");
    if (!session.ok()) return Fail(session.status().ToString().c_str());
    if (wire::SerializeSpecification((*session)->spec()) != live_wire) {
      return Fail("replay restart recovered a different specification");
    }
  }

  // Write the warm snapshot the way a serving process would: after the
  // caches are hot (the timed CpsCheck above warmed them on the last
  // reopen; do it once more on a manager we then snapshot).
  {
    auto manager = serve::SessionManager::Open(dir, options);
    if (!manager.ok()) return Fail(manager.status().ToString().c_str());
    auto consistent = (*manager)->CpsCheck("bench");
    if (!consistent.ok()) return Fail(consistent.status().ToString().c_str());
    Status st = (*manager)->Snapshot();
    if (!st.ok()) return Fail(st.ToString().c_str());
  }

  // Snapshot-assisted restart: Open parses the snapshot, registers the
  // tenant once, adopts every solved verdict by content fingerprint —
  // the first CpsCheck must do ZERO base solves.
  Series snapshot{"snapshot_restart_open_plus_cps", {}};
  for (int it = 0; it < iters; ++it) {
    double t0 = NowMs();
    auto manager = serve::SessionManager::Open(dir, options);
    if (!manager.ok()) return Fail(manager.status().ToString().c_str());
    auto consistent = (*manager)->CpsCheck("bench");
    snapshot.samples_ms.push_back(NowMs() - t0);
    if (!consistent.ok()) return Fail(consistent.status().ToString().c_str());
    if (*consistent != reference_consistent) {
      return Fail("snapshot restart changed the CPS answer");
    }
    auto session = (*manager)->Lookup("bench");
    if (!session.ok()) return Fail(session.status().ToString().c_str());
    if (wire::SerializeSpecification((*session)->spec()) != live_wire) {
      return Fail("snapshot restart recovered a different specification");
    }
    // Registry snapshot, not SessionStats: the same series the exposition
    // endpoint reports (each reopened manager owns a fresh registry).
    int64_t base_solves =
        (*manager)
            ->registry()
            ->GetCounter("currency_serve_component_base_solves_total",
                         {{"tenant", "bench"}, {"routing", "sat"}})
            ->Value();
    if (base_solves != 0) {
      return Fail("snapshot restart paid base solves (verdict adoption "
                  "failed)");
    }
  }
  std::filesystem::remove_all(dir, ec);

  double fsync_overhead = inmemory.Percentile(0.5) > 0
                              ? durable.Percentile(0.5) / inmemory.Percentile(0.5)
                              : 0.0;
  double speedup = snapshot.Percentile(0.5) > 0
                       ? replay.Percentile(0.5) / snapshot.Percentile(0.5)
                       : 0.0;
  std::string json = "{\n  \"bench\": \"bench_recovery\",\n  \"workload\": {";
  json += "\"entities\": " + std::to_string(entities) +
          ", \"mutations\": " + std::to_string(mutations) +
          ", \"iters\": " + std::to_string(iters) +
          ", \"threads\": " + std::to_string(threads) + "},\n" +
          "  \"caveat\": \"single-CPU container: restart phases run "
          "sequentially, so absolute times understate a parallel restart; "
          "the replay-vs-snapshot ratio is thread-independent\",\n"
          "  \"results\": [";
  const Series* all[] = {&inmemory, &durable, &replay, &snapshot};
  for (size_t k = 0; k < 4; ++k) {
    json += std::string(k ? "," : "") + "\n    " + all[k]->ToJson();
  }
  char tail[160];
  std::snprintf(tail, sizeof tail,
                "\n  ],\n  \"fsync_overhead_mutate_p50\": %.2f,\n"
                "  \"speedup_snapshot_vs_replay_restart_p50\": %.2f\n}\n",
                fsync_overhead, speedup);
  json += tail;
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) return Fail("cannot open --out file");
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("bench_recovery: wrote %s (restart speedup %.2fx, fsync "
                "overhead %.2fx)\n",
                out_path.c_str(), speedup, fsync_overhead);
  }
  if (require_speedup > 0 && speedup < require_speedup) {
    std::fprintf(stderr,
                 "bench_recovery: FAILED: snapshot-restart speedup %.2fx "
                 "below the required %.2fx\n",
                 speedup, require_speedup);
    return 1;
  }
  return 0;
}
