// Table III, CPP / ECP / BCP rows — empirical regeneration, plus the
// Fig. 3 (Mgr) workload of Example 4.1.
//
// Paper claims: CPP is Πp2-complete in data complexity (Fig. 5 family),
// ECP is O(1) for consistent inputs (Proposition 5.2), BCP is
// Σp3/Σp4-complete (Fig. 6 family); SP-without-constraints is PTIME
// (Theorem 6.4).

#include <benchmark/benchmark.h>

#include <random>

#include "src/core/preservation.h"
#include "src/query/parser.h"
#include "src/reductions/to_bcp.h"
#include "src/reductions/to_cpp.h"
#include "tests/fixtures.h"

namespace {

using namespace currency;  // NOLINT

// Πp2-hard family (data complexity): the Fig. 5 gadget with range(0)
// ∀-variables.  The CPP solver walks the extension lattice with an inner
// CCQA oracle — doubly exponential pressure, so the range is tiny.
void BM_Cpp_Fig5(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(3);
  sat::Qbf qbf = sat::RandomQbf({n, 1}, /*first_exists=*/false, 2,
                                /*cnf=*/true, &rng);
  auto gadget = reductions::PiP2ToCppData(qbf);
  for (auto _ : state) {
    auto preserving = core::IsCurrencyPreserving(gadget->spec, gadget->query,
                                                 gadget->options);
    benchmark::DoNotOptimize(preserving);
  }
  state.SetLabel("Πp2-hard family (Thm 5.1(3), Fig. 5)");
}
BENCHMARK(BM_Cpp_Fig5)->DenseRange(1, 2)->Unit(benchmark::kMillisecond);

// Πp3-hard family (combined complexity): the Fig. 4 gadget, smallest
// instance — one variable per quantifier block, three nested solvers.
void BM_Cpp_Fig4(benchmark::State& state) {
  std::mt19937 rng(29);
  sat::Qbf qbf = sat::RandomQbf({1, 1, 1}, /*first_exists=*/true, 2,
                                /*cnf=*/true, &rng);
  auto gadget = reductions::PiP3ToCpp(qbf);
  for (auto _ : state) {
    auto preserving = core::IsCurrencyPreserving(gadget->spec, gadget->query,
                                                 gadget->options);
    benchmark::DoNotOptimize(preserving);
  }
  state.SetLabel("Πp3-hard family (Thm 5.1(1), Fig. 4)");
}
BENCHMARK(BM_Cpp_Fig4)->Unit(benchmark::kMillisecond);

// CPP on the paper's own Mgr example (Fig. 3 / Example 4.1).
void BM_Cpp_Fig3_Mgr(benchmark::State& state) {
  core::Specification s1 = currency::testing::MakeS1();
  query::Query q2 = currency::testing::MakeQ2();
  for (auto _ : state) {
    auto preserving = core::IsCurrencyPreserving(s1, q2);
    benchmark::DoNotOptimize(preserving);
  }
  state.SetLabel("Fig. 3 workload: ρ not preserving for Q2");
}
BENCHMARK(BM_Cpp_Fig3_Mgr)->Unit(benchmark::kMillisecond);

// ECP: O(1) in the size of the extension space — the cost is one
// consistency check, independent of how many imports are possible
// (Proposition 5.2).  The spec grows; the answer is instantaneous
// relative to CPP on the same input.
void BM_Ecp_ConstantTime(benchmark::State& state) {
  const int entities = static_cast<int>(state.range(0));
  core::Specification spec;
  Schema rs = Schema::Make("Src", {"A"}).value();
  Relation src(rs);
  for (int e = 0; e < entities; ++e) {
    (void)src.AppendValues({Value("s" + std::to_string(e)), Value(e)});
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(src)));
  Schema ts = Schema::Make("Tgt", {"A"}).value();
  Relation tgt(ts);
  for (int e = 0; e < entities; ++e) {
    (void)tgt.AppendValues({Value("t" + std::to_string(e)), Value(e)});
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(tgt)));
  copy::CopySignature sig;
  sig.target_relation = "Tgt";
  sig.target_attrs = {"A"};
  sig.source_relation = "Src";
  sig.source_attrs = {"A"};
  (void)spec.AddCopyFunction(copy::CopyFunction(sig));
  query::Query q = query::ParseQuery("Q(x) := EXISTS e: Tgt(e, x)").value();
  for (auto _ : state) {
    auto can = core::CanExtendToCurrencyPreserving(spec, q);
    benchmark::DoNotOptimize(can);
  }
  state.counters["possible_imports"] =
      static_cast<double>(entities) * entities;
  state.SetLabel("O(1) modulo one CPS check (Prop 5.2)");
}
BENCHMARK(BM_Ecp_ConstantTime)
    ->RangeMultiplier(4)
    ->Range(8, 512)
    ->Unit(benchmark::kMillisecond);

// Σp4-hard family: the Fig. 6 BCP gadget (W/X/Y/Z all singleton blocks —
// the smallest instance already stacks four quantifier levels).
void BM_Bcp_Fig6(benchmark::State& state) {
  std::mt19937 rng(17);
  sat::Qbf qbf = sat::RandomQbf({1, 1, 1, 1}, /*first_exists=*/true, 2,
                                /*cnf=*/false, &rng);
  auto gadget = reductions::SigmaP4ToBcp(qbf);
  for (auto _ : state) {
    auto bounded = core::HasBoundedCurrencyPreservingExtension(
        gadget->spec, gadget->query, gadget->k, gadget->options);
    benchmark::DoNotOptimize(bounded);
  }
  state.SetLabel("Σp4-hard family (Thm 5.3, Fig. 6)");
}
BENCHMARK(BM_Bcp_Fig6)->Unit(benchmark::kMillisecond);

// BCP on the Mgr example: one import within budget flips Q2 for good.
void BM_Bcp_Fig3_Mgr(benchmark::State& state) {
  core::Specification s1 = currency::testing::MakeS1();
  query::Query q2 = currency::testing::MakeQ2();
  for (auto _ : state) {
    auto bounded = core::HasBoundedCurrencyPreservingExtension(s1, q2, 1);
    benchmark::DoNotOptimize(bounded);
  }
  state.SetLabel("Fig. 3 workload: k = 1 suffices");
}
BENCHMARK(BM_Bcp_Fig3_Mgr)->Unit(benchmark::kMillisecond);

// Tractable flavour (Theorem 6.4): CPP with an SP query, no constraints;
// the inner CCQA calls ride the Prop 6.3 fast path.
void BM_CppSp_NoConstraints(benchmark::State& state) {
  const int sources = static_cast<int>(state.range(0));
  core::Specification spec;
  Schema rs = Schema::Make("Src", {"A"}).value();
  Relation src(rs);
  for (int s = 0; s < sources; ++s) {
    (void)src.AppendValues({Value("s"), Value(s % 3)});
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(src)));
  Schema ts = Schema::Make("Tgt", {"A"}).value();
  Relation tgt(ts);
  copy::CopySignature sig;
  sig.target_relation = "Tgt";
  sig.target_attrs = {"A"};
  sig.source_relation = "Src";
  sig.source_attrs = {"A"};
  copy::CopyFunction fn(sig);
  auto t0 = tgt.AppendValues({Value("t"), Value(0)});
  (void)fn.Map(*t0, 0);
  (void)spec.AddInstance(core::TemporalInstance(std::move(tgt)));
  (void)spec.AddCopyFunction(std::move(fn));
  query::Query q = query::ParseQuery("Q(x) := EXISTS e: Tgt(e, x)").value();
  core::PreservationOptions options;
  options.skip_duplicate_imports = true;
  options.max_atoms = 24;
  for (auto _ : state) {
    auto preserving = core::IsCurrencyPreserving(spec, q, options);
    benchmark::DoNotOptimize(preserving);
  }
  state.SetLabel("SP query, no constraints (Thm 6.4 flavour)");
}
BENCHMARK(BM_CppSp_NoConstraints)->DenseRange(3, 9, 3)->Unit(benchmark::kMillisecond);

}  // namespace
