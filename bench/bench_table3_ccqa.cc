// Table III, CCQA row — empirical regeneration.
//
// Paper claims (Theorem 3.5, Corollary 3.7, Proposition 6.3):
//   * combined complexity Πp2-complete for CQ/UCQ/∃FO+ (∀∃3CNF family),
//   * PSPACE-complete for FO (Q3SAT family),
//   * coNP-complete data complexity even with a fixed CQ (3SAT family),
//   * PTIME for SP queries without denial constraints,
//   * with denial constraints, even identity queries stay coNP-hard —
//     the SP-without-constraints cell is the only tractable one.

#include <benchmark/benchmark.h>

#include <random>

#include "src/core/ccqa.h"
#include "src/core/sp_ccqa.h"
#include "src/query/parser.h"
#include "src/reductions/to_ccqa.h"

namespace {

using namespace currency;  // NOLINT

// Πp2-hard family: ∀-variable count = range(0); the general solver must
// refute 2^range(0) current instances.
void BM_CcqaCq_PiP2(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(5);
  sat::Qbf qbf = sat::RandomQbf({n, 2}, /*first_exists=*/false, n + 2,
                                /*cnf=*/true, &rng);
  auto gadget = reductions::PiP2ToCcqa(qbf);
  for (auto _ : state) {
    auto certain = core::IsCertainCurrentAnswer(gadget->spec, gadget->query,
                                                gadget->candidate);
    benchmark::DoNotOptimize(certain);
  }
  state.counters["forall_vars"] = n;
  state.SetLabel("Πp2-hard family, CQ (Thm 3.5(1), Fig. 2)");
}
BENCHMARK(BM_CcqaCq_PiP2)->DenseRange(1, 7)->Unit(benchmark::kMillisecond);

// PSPACE-hard family: FO query with range(0) quantified variables over a
// rigid instance (active-domain evaluation).
void BM_CcqaFo_Q3Sat(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  std::mt19937 rng(9);
  std::vector<int> shape(vars, 1);
  sat::Qbf qbf = sat::RandomQbf(shape, /*first_exists=*/true, vars + 2,
                                /*cnf=*/true, &rng);
  auto gadget = reductions::Q3SatToCcqaFo(qbf);
  for (auto _ : state) {
    auto certain = core::IsCertainCurrentAnswer(gadget->spec, gadget->query,
                                                gadget->candidate);
    benchmark::DoNotOptimize(certain);
  }
  state.SetLabel("PSPACE-hard family, FO (Thm 3.5(2))");
}
BENCHMARK(BM_CcqaFo_Q3Sat)->DenseRange(2, 8)->Unit(benchmark::kMillisecond);

// coNP-hard data-complexity family: the query is FIXED; only the data
// grows with the 3SAT instance.
void BM_CcqaData_Sat3(benchmark::State& state) {
  const int vars = static_cast<int>(state.range(0));
  std::mt19937 rng(13);
  sat::Qbf qbf = sat::RandomQbf({vars}, /*first_exists=*/true, 2 * vars,
                                /*cnf=*/true, &rng);
  auto gadget = reductions::Sat3ToCcqaData(qbf);
  for (auto _ : state) {
    auto certain = core::IsCertainCurrentAnswer(gadget->spec, gadget->query,
                                                gadget->candidate);
    benchmark::DoNotOptimize(certain);
  }
  state.counters["tuples"] = 2.0 * vars + 6.0 * qbf.terms.size();
  state.SetLabel("coNP-hard family, fixed CQ (Thm 3.5, data)");
}
BENCHMARK(BM_CcqaData_Sat3)->DenseRange(2, 8)->Unit(benchmark::kMillisecond);

// Tractable cell: SP query, no denial constraints (Proposition 6.3) —
// the poss(S) construction scales to thousands of entities.
core::Specification MakeSpWorkload(int entities) {
  core::Specification spec;
  Schema rs = Schema::Make("R", {"A", "B"}).value();
  Relation r(rs);
  for (int e = 0; e < entities; ++e) {
    Value eid("e" + std::to_string(e));
    (void)r.AppendValues({eid, Value(e % 97), Value(0)});
    (void)r.AppendValues({eid, Value((e + 1) % 97), Value(1)});
  }
  core::TemporalInstance rinst(std::move(r));
  for (int e = 0; e < entities; e += 2) {
    (void)rinst.AddOrder(1, 2 * e, 2 * e + 1);  // half the entities ordered
  }
  (void)spec.AddInstance(std::move(rinst));
  return spec;
}

void BM_CcqaSp_Ptime(benchmark::State& state) {
  const int entities = static_cast<int>(state.range(0));
  core::Specification spec = MakeSpWorkload(entities);
  query::Query q =
      query::ParseQuery("Q(x) := EXISTS e, y: R(e, x, y) AND x = 13").value();
  for (auto _ : state) {
    auto answers = core::SpCertainCurrentAnswers(spec, q);
    benchmark::DoNotOptimize(answers);
  }
  state.counters["entities"] = entities;
  state.SetLabel("PTIME: SP query, no constraints (Prop 6.3)");
}
BENCHMARK(BM_CcqaSp_Ptime)
    ->RangeMultiplier(4)
    ->Range(64, 4096)
    ->Unit(benchmark::kMillisecond);

// Corollary 3.7's contrast: an identity query stays expensive once denial
// constraints enter — the same data with one constraint forces the
// general solver.
void BM_CcqaIdentity_WithConstraints(benchmark::State& state) {
  const int entities = static_cast<int>(state.range(0));
  core::Specification spec = MakeSpWorkload(entities);
  (void)spec.AddConstraintText(
      "FORALL s, t IN R: s.A > t.A -> t PREC[A] s");
  query::Query q = query::ParseQuery("Q(e, x, y) := R(e, x, y)").value();
  for (auto _ : state) {
    auto answers = core::CertainCurrentAnswers(spec, q);
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("identity query + constraints (Cor 3.7): general solver");
}
BENCHMARK(BM_CcqaIdentity_WithConstraints)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
