// Scale benchmark for the entity-component decomposition of the SAT path
// (src/core/decompose.h).
//
// The workload is a sharded master/replica pair: relation R holds
// range(0) entities of six tuples each, and relation R2 copies A from two
// distinct R tuples per entity, so every coupling component is one
// {R-entity, R2-entity} pair — thousands of entities, equally many
// independent components.  Each entity carries the same small search
// puzzle: thirty random ternary denial constraints over its A-order
// literals (selected per tuple through the P attribute), planted to be
// satisfiable by the identity order but anti-aligned with the solver's
// default phase, so every component costs a few dozen genuine CDCL
// conflicts.  Each family runs the same specification through the
// monolithic encoder (use_decomposition = false) and the decomposed one,
// so the reported ratio isolates the decomposition:
//
//   * CPS on the satisfiable shard set: the monolithic solver pays
//     global restarts and full-trail re-decisions for every component's
//     conflicts (measured superlinear), while per-component solving
//     keeps each search local (≈ 50× at 1024 entities on the reference
//     machine, growing with size).
//   * CPS with one planted deeply-UNSAT shard (a no-chain denial guarded
//     by P = 99, search-refutable but not unit-refutable): the
//     decomposed path refutes the smallest component first and never
//     encodes the rest, while the monolithic path must build and search
//     the whole formula.
//   * COP with eight queried pairs: the monolithic path pays its full
//     initial solve plus whole-formula assumption re-solves; the
//     decomposed path re-solves one component per pair.
//
// The decomposed families additionally honour --threads=N (this binary
// carries its own main; the flag is stripped before Google Benchmark
// parses the rest): components are embarrassingly parallel, so on an
// N-core machine `--threads=N` vs `--threads=1` isolates the win of the
// exec layer (src/exec/thread_pool.h) on the same workload, with
// bit-identical answers.  On a single-core machine the two runs time
// identically minus scheduling noise.
//
// Registered as a ctest smoke run (smallest size, one family each) by
// bench/CMakeLists.txt.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/core/certain_order.h"
#include "src/core/consistency.h"
#include "src/core/decompose.h"

namespace {

using namespace currency;  // NOLINT

/// Thread count for the decomposed families, set by --threads=N.
int g_threads = 1;

constexpr int kGroup = 6;       // tuples per R entity
constexpr int kClauses = 30;    // puzzle clauses per entity

/// Zero-padded entity ids keep Value order aligned with creation order.
std::string PadId(const char* prefix, int e) {
  std::string digits = std::to_string(e);
  return std::string(prefix) + std::string(6 - digits.size(), '0') + digits;
}

/// Thirty random ternary clauses over the A-order literals of a six-tuple
/// entity, planted to be satisfied by the identity order (tuple i more
/// stale than tuple j for i < j).  Each clause becomes one denial
/// constraint whose premises are the negated literals (negating an order
/// atom flips its direction, thanks to totality), with tuple variables
/// pinned to concrete tuples through the P selector attribute — the same
/// constraint text grounds to exactly one clause in every entity group.
std::vector<std::string> MakePuzzleConstraints(unsigned seed) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> tup(0, kGroup - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  const char* vars[] = {"a", "b", "c", "d", "e", "f"};
  std::vector<std::string> out;
  while (static_cast<int>(out.size()) < kClauses) {
    struct Literal {
      int lo, hi;
      bool identity;  // true: the literal is (lo ≺ hi), i.e. planted-true
    };
    std::vector<Literal> lits;
    bool any_identity = false;
    for (int k = 0; k < 3; ++k) {
      int lo = tup(rng), hi = tup(rng);
      while (hi == lo) hi = tup(rng);
      if (lo > hi) std::swap(lo, hi);
      bool identity = coin(rng) == 1;
      if (k == 2 && !any_identity) identity = true;  // plant satisfiability
      any_identity |= identity;
      lits.push_back({lo, hi, identity});
    }
    std::string text = "FORALL a, b, c, d, e, f IN R: ";
    for (int k = 0; k < 3; ++k) {
      text += std::string(vars[2 * k]) + ".P = " + std::to_string(lits[k].lo) +
              " AND " + vars[2 * k + 1] + ".P = " +
              std::to_string(lits[k].hi) + " AND ";
    }
    for (int k = 0; k < 3; ++k) {
      // Premise = negation of the clause literal.
      std::string lo = vars[2 * k], hi = vars[2 * k + 1];
      text += lits[k].identity ? hi + " PREC[A] " + lo
                               : lo + " PREC[A] " + hi;
      text += (k < 2) ? " AND " : " -> a PREC[A] a";  // pure denial
    }
    out.push_back(std::move(text));
  }
  return out;
}

/// Builds the sharded master/replica specification described above.
/// `plant_unsat` prepends one entity (first in Value order, so its
/// variables are decided last under the monolithic solver's
/// tie-breaking) whose three tuples carry P = 99 and fall to a no-chain
/// denial that needs genuine search — not unit propagation — to refute.
core::Specification MakeShardedSpec(int entities, bool plant_unsat) {
  core::Specification spec;
  Schema rs = Schema::Make("R", {"P", "A", "B"}).value();
  Relation r(rs);
  if (plant_unsat) {
    Value eid("a-plant");  // sorts before every e...-entity
    for (int k = 0; k < 3; ++k) {
      (void)r.AppendValues({eid, Value(99), Value(k), Value(k)});
    }
  }
  for (int e = 0; e < entities; ++e) {
    Value eid(PadId("e", e));
    for (int k = 0; k < kGroup; ++k) {
      (void)r.AppendValues({eid, Value(k), Value(k), Value(k % 2)});
    }
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(r)));
  for (const std::string& text : MakePuzzleConstraints(/*seed=*/7)) {
    (void)spec.AddConstraintText(text);
  }
  if (plant_unsat) {
    // No A-chains among the planted tuples: every completion of a
    // three-tuple group has one, so the component is UNSAT — but only
    // after case analysis, not at unit-propagation level.
    (void)spec.AddConstraintText(
        "FORALL s, t, u IN R: s.P = 99 AND t.P = 99 AND u.P = 99 AND "
        "t PREC[A] s AND u PREC[A] t -> u PREC[A] u");
  }

  // Replica: R2 copies A from two distinct tuples of each R entity, which
  // couples exactly the {R:e, R2:f} pair into one component.
  int base = plant_unsat ? 3 : 0;
  Schema r2s = Schema::Make("R2", {"C"}).value();
  Relation r2(r2s);
  copy::CopySignature sig;
  sig.target_relation = "R2";
  sig.target_attrs = {"C"};
  sig.source_relation = "R";
  sig.source_attrs = {"A"};
  copy::CopyFunction fn(sig);
  for (int e = 0; e < entities; ++e) {
    Value eid(PadId("f", e));
    TupleId src0 = base + e * kGroup;      // carries A = 0
    TupleId src1 = base + e * kGroup + 2;  // carries A = 2
    auto t0 = r2.AppendValues({eid, Value(0)});
    auto t1 = r2.AppendValues({eid, Value(2)});
    (void)fn.Map(*t0, src0);
    (void)fn.Map(*t1, src1);
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(r2)));
  (void)spec.AddCopyFunction(std::move(fn));
  return spec;
}

void RunCps(benchmark::State& state, bool decomposed, bool plant_unsat) {
  const int entities = static_cast<int>(state.range(0));
  core::Specification spec = MakeShardedSpec(entities, plant_unsat);
  core::CpsOptions options;
  options.use_decomposition = decomposed;
  if (decomposed) options.num_threads = g_threads;
  int64_t consistent = 0;
  int64_t components = 0;
  for (auto _ : state) {
    auto outcome = core::DecideConsistency(spec, options);
    if (!outcome.ok()) {
      state.SkipWithError(outcome.status().ToString().c_str());
      return;
    }
    consistent += outcome->consistent ? 1 : 0;
    components = outcome->components;
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["entities"] = static_cast<double>(entities);
  state.counters["components"] = static_cast<double>(components);
  // The satisfiable family must answer SAT and the planted family UNSAT;
  // the smoke ctest run relies on this assertion.
  if ((consistent > 0) == plant_unsat) {
    state.SkipWithError("wrong CPS answer");
  }
}

void BM_ScaleCps_Monolithic(benchmark::State& state) {
  RunCps(state, /*decomposed=*/false, /*plant_unsat=*/false);
}
void BM_ScaleCps_Decomposed(benchmark::State& state) {
  RunCps(state, /*decomposed=*/true, /*plant_unsat=*/false);
}
void BM_ScaleCpsUnsatShard_Monolithic(benchmark::State& state) {
  RunCps(state, /*decomposed=*/false, /*plant_unsat=*/true);
}
void BM_ScaleCpsUnsatShard_Decomposed(benchmark::State& state) {
  RunCps(state, /*decomposed=*/true, /*plant_unsat=*/true);
}
BENCHMARK(BM_ScaleCps_Monolithic)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScaleCps_Decomposed)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScaleCpsUnsatShard_Monolithic)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScaleCpsUnsatShard_Decomposed)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

void RunCop(benchmark::State& state, bool decomposed) {
  const int entities = static_cast<int>(state.range(0));
  core::Specification spec = MakeShardedSpec(entities, /*plant_unsat=*/false);
  core::CopOptions options;
  options.use_decomposition = decomposed;
  if (decomposed) options.num_threads = g_threads;
  // Eight pairs spread over eight entities.
  core::CurrencyOrderQuery query;
  query.relation = "R";
  for (int k = 0; k < 8; ++k) {
    int e = k * (entities / 8);
    query.pairs.push_back(
        core::RequiredPair{2, e * kGroup, e * kGroup + 1});
  }
  int64_t certain = 0;
  for (auto _ : state) {
    auto result = core::IsCertainOrder(spec, query, options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    certain += *result ? 1 : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["entities"] = static_cast<double>(entities);
  state.counters["certain"] = static_cast<double>(certain > 0);
}

void BM_ScaleCop_Monolithic(benchmark::State& state) {
  RunCop(state, /*decomposed=*/false);
}
void BM_ScaleCop_Decomposed(benchmark::State& state) {
  RunCop(state, /*decomposed=*/true);
}
BENCHMARK(BM_ScaleCop_Monolithic)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ScaleCop_Decomposed)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main (instead of benchmark_main): strip --threads=N before
// Google Benchmark sees the command line — it rejects unknown flags.
int main(int argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      g_threads = std::atoi(argv[i] + 10);
      if (g_threads < 1) g_threads = 1;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("threads", std::to_string(g_threads));
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
