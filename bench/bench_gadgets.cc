// Figures 2, 4, 5, 6 — gadget construction costs and encoded sizes.
//
// The paper's lower-bound proofs manufacture specific temporal instances
// (Fig. 2: CCQA gates; Fig. 5: CPP assignment/flag instances; Fig. 6:
// BCP's budgeted I_W/I'_W; the Betweenness and ∃∀3DNF instances of
// Thm 3.1).  This binary measures building each family and reports the
// encoded problem sizes (rows, SAT order variables) the constructions
// produce.

#include <benchmark/benchmark.h>

#include <random>

#include "src/core/encoder.h"
#include "src/reductions/to_bcp.h"
#include "src/reductions/to_ccqa.h"
#include "src/reductions/to_cop.h"
#include "src/reductions/to_cpp.h"
#include "src/reductions/to_cps.h"

namespace {

using namespace currency;  // NOLINT

void BM_Gadget_SigmaP2Cps(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(1);
  sat::Qbf qbf =
      sat::RandomQbf({n, n}, true, n + 2, /*cnf=*/false, &rng);
  int64_t rows = 0;
  for (auto _ : state) {
    auto spec = reductions::SigmaP2ToCps(qbf);
    rows = spec->TotalTuples();
    benchmark::DoNotOptimize(spec);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetLabel("Thm 3.1 instance builder");
}
BENCHMARK(BM_Gadget_SigmaP2Cps)->DenseRange(2, 8, 2)->Unit(benchmark::kMicrosecond);

void BM_Gadget_Betweenness(benchmark::State& state) {
  const int triples = static_cast<int>(state.range(0));
  std::mt19937 rng(2);
  auto inst = reductions::RandomBetweenness(triples + 2, triples, &rng);
  int64_t rows = 0;
  for (auto _ : state) {
    auto spec = reductions::BetweennessToCps(inst);
    rows = spec->TotalTuples();
    benchmark::DoNotOptimize(spec);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetLabel("Thm 3.1 data-complexity builder");
}
BENCHMARK(BM_Gadget_Betweenness)->DenseRange(2, 10, 2)->Unit(benchmark::kMicrosecond);

void BM_Gadget_Fig2Ccqa(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(3);
  sat::Qbf qbf = sat::RandomQbf({n, n}, false, n + 2, /*cnf=*/true, &rng);
  int64_t rows = 0;
  for (auto _ : state) {
    auto gadget = reductions::PiP2ToCcqa(qbf);
    rows = gadget->spec.TotalTuples();
    benchmark::DoNotOptimize(gadget);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetLabel("Fig. 2 builder (gates + RX)");
}
BENCHMARK(BM_Gadget_Fig2Ccqa)->DenseRange(2, 8, 2)->Unit(benchmark::kMicrosecond);

void BM_Gadget_Fig5Cpp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(4);
  sat::Qbf qbf = sat::RandomQbf({n, n}, false, n + 1, /*cnf=*/true, &rng);
  int64_t rows = 0;
  for (auto _ : state) {
    auto gadget = reductions::PiP2ToCppData(qbf);
    rows = gadget->spec.TotalTuples();
    benchmark::DoNotOptimize(gadget);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetLabel("Fig. 5 builder (RXY, R'X, RC, Rb, R'b)");
}
BENCHMARK(BM_Gadget_Fig5Cpp)->DenseRange(2, 8, 2)->Unit(benchmark::kMicrosecond);

void BM_Gadget_Fig6Bcp(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  std::mt19937 rng(5);
  sat::Qbf qbf =
      sat::RandomQbf({p, p, p, p}, true, p + 1, /*cnf=*/false, &rng);
  int64_t rows = 0;
  for (auto _ : state) {
    auto gadget = reductions::SigmaP4ToBcp(qbf);
    rows = gadget->spec.TotalTuples();
    benchmark::DoNotOptimize(gadget);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["budget_k"] = p;
  state.SetLabel("Fig. 6 builder (I_W, I'_W + Fig. 4 parts)");
}
BENCHMARK(BM_Gadget_Fig6Bcp)->DenseRange(1, 4)->Unit(benchmark::kMicrosecond);

// SAT encoding sizes for the hard families: the encoder realizes the
// paper's "guess a completion" oracle; order-variable counts grow with
// the square of entity-group sizes.
void BM_Encode_Betweenness(benchmark::State& state) {
  const int triples = static_cast<int>(state.range(0));
  std::mt19937 rng(6);
  auto inst = reductions::RandomBetweenness(triples + 2, triples, &rng);
  auto spec = reductions::BetweennessToCps(inst);
  int order_vars = 0;
  for (auto _ : state) {
    auto encoder = core::Encoder::Build(*spec);
    order_vars = (*encoder)->num_order_vars();
    benchmark::DoNotOptimize(encoder);
  }
  state.counters["order_vars"] = order_vars;
  state.SetLabel("order-literal encoding build");
}
BENCHMARK(BM_Encode_Betweenness)->DenseRange(2, 6, 2)->Unit(benchmark::kMillisecond);

}  // namespace
