// Ablations for the design choices called out in DESIGN.md §5:
//   1. seeding the SAT encoder with the chase/Horn-closure certain prefix
//      (on/off) on hard consistency instances;
//   2. the Proposition 6.3 SP fast path vs the general CEGAR solver on
//      identical SP workloads (the PTIME/exponential crossover);
//   3. chase fixpoint cost as copy chains deepen (propagation distance).

#include <benchmark/benchmark.h>

#include <random>

#include "src/core/ccqa.h"
#include "src/core/chase.h"
#include "src/core/consistency.h"
#include "src/core/sp_ccqa.h"
#include "src/query/parser.h"
#include "src/reductions/to_cps.h"

namespace {

using namespace currency;  // NOLINT

// --- 1. Encoder seeding ----------------------------------------------------
//
// Family: N employees with three stale records each under ϕ1–ϕ3 — the
// Horn closure derives a dense certain prefix (salary units from ϕ1, then
// address/status/LN pairs), which the seeded encoder receives as unit
// clauses.  (On gadgets without value-derived units, e.g. Betweenness,
// seeding is a no-op by construction.)

core::Specification MakeConstraintRichSpec(int employees) {
  core::Specification spec;
  Schema schema =
      Schema::Make("Emp", {"LN", "address", "salary", "status"}).value();
  Relation emp(schema);
  for (int e = 0; e < employees; ++e) {
    Value eid("p" + std::to_string(e));
    (void)emp.AppendValues(
        {eid, Value("A"), Value("Old"), Value(50), Value("single")});
    (void)emp.AppendValues(
        {eid, Value("B"), Value("Mid"), Value(60), Value("married")});
    (void)emp.AppendValues(
        {eid, Value("B"), Value("New"), Value(80), Value("married")});
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(emp)));
  (void)spec.AddConstraintText(
      "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s");
  (void)spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[LN] s");
  (void)spec.AddConstraintText(
      "FORALL s, t IN Emp: t PREC[salary] s -> t PREC[address] s");
  return spec;
}

void RunCpsSeeding(benchmark::State& state, bool seed) {
  const int employees = static_cast<int>(state.range(0));
  core::Specification spec = MakeConstraintRichSpec(employees);
  core::CpsOptions options;
  options.use_ptime_path_without_constraints = false;
  options.encoder.seed_with_chase = seed;
  for (auto _ : state) {
    auto outcome = core::DecideConsistency(spec, options);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetLabel(seed ? "encoder seeded with certain prefix"
                      : "raw encoder (no seeding)");
}
void BM_Ablation_SeededEncoder(benchmark::State& state) {
  RunCpsSeeding(state, true);
}
void BM_Ablation_UnseededEncoder(benchmark::State& state) {
  RunCpsSeeding(state, false);
}
BENCHMARK(BM_Ablation_SeededEncoder)
    ->RangeMultiplier(4)
    ->Range(8, 128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_UnseededEncoder)
    ->RangeMultiplier(4)
    ->Range(8, 128)
    ->Unit(benchmark::kMillisecond);

// --- 2. SP fast path vs general solver -------------------------------------

core::Specification MakeSpWorkload(int entities) {
  core::Specification spec;
  Schema rs = Schema::Make("R", {"A", "B"}).value();
  Relation r(rs);
  for (int e = 0; e < entities; ++e) {
    Value eid("e" + std::to_string(e));
    (void)r.AppendValues({eid, Value(e % 31), Value(0)});
    (void)r.AppendValues({eid, Value((e + 1) % 31), Value(1)});
  }
  core::TemporalInstance rinst(std::move(r));
  for (int e = 0; e < entities; e += 2) {
    (void)rinst.AddOrder(1, 2 * e, 2 * e + 1);
  }
  (void)spec.AddInstance(std::move(rinst));
  return spec;
}

void RunSpPath(benchmark::State& state, bool fast) {
  const int entities = static_cast<int>(state.range(0));
  core::Specification spec = MakeSpWorkload(entities);
  query::Query q =
      query::ParseQuery("Q(x) := EXISTS e, y: R(e, x, y) AND x = 7").value();
  core::CcqaOptions options;
  options.use_sp_fast_path = fast;
  for (auto _ : state) {
    auto answers = core::CertainCurrentAnswers(spec, q, options);
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel(fast ? "Prop 6.3 poss(S) fast path"
                      : "general CEGAR solver on the same SP query");
}
void BM_Ablation_SpFastPath(benchmark::State& state) {
  RunSpPath(state, true);
}
void BM_Ablation_SpGeneralPath(benchmark::State& state) {
  RunSpPath(state, false);
}
BENCHMARK(BM_Ablation_SpFastPath)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ablation_SpGeneralPath)
    ->RangeMultiplier(4)
    ->Range(16, 256)
    ->Unit(benchmark::kMillisecond);

// --- 3. Chase propagation depth ---------------------------------------------

void BM_Ablation_ChaseDepth(benchmark::State& state) {
  // A chain of `depth` relations, each copying from the previous; an
  // order asserted at the root must propagate to the leaf.
  const int depth = static_cast<int>(state.range(0));
  core::Specification spec;
  Schema root_schema = Schema::Make("R0", {"A"}).value();
  Relation root(root_schema);
  (void)root.AppendValues({Value("e"), Value(0)});
  (void)root.AppendValues({Value("e"), Value(1)});
  core::TemporalInstance root_inst(std::move(root));
  (void)root_inst.AddOrder(1, 0, 1);
  (void)spec.AddInstance(std::move(root_inst));
  for (int d = 1; d < depth; ++d) {
    Schema s = Schema::Make("R" + std::to_string(d), {"A"}).value();
    Relation rel(s);
    (void)rel.AppendValues({Value("e"), Value(0)});
    (void)rel.AppendValues({Value("e"), Value(1)});
    (void)spec.AddInstance(core::TemporalInstance(std::move(rel)));
    copy::CopySignature sig;
    sig.target_relation = "R" + std::to_string(d);
    sig.target_attrs = {"A"};
    sig.source_relation = "R" + std::to_string(d - 1);
    sig.source_attrs = {"A"};
    copy::CopyFunction fn(sig);
    (void)fn.Map(0, 0);
    (void)fn.Map(1, 1);
    (void)spec.AddCopyFunction(std::move(fn));
  }
  int passes = 0;
  for (auto _ : state) {
    auto chase = core::ChaseCopyOrders(spec);
    passes = chase->passes;
    benchmark::DoNotOptimize(chase);
  }
  state.counters["passes"] = passes;
  state.SetLabel("copy-chain propagation to fixpoint");
}
BENCHMARK(BM_Ablation_ChaseDepth)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
