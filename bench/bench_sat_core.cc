// SAT-core benchmark: the arena-backed solver (src/sat/solver.h) vs the
// preserved pre-refactor engine (src/sat/legacy_solver.h) on an identical
// decomposition-scale CPS/COP clause stream, single-threaded.
//
// Like bench_serve this is plain C++ (no Google Benchmark dependency):
// it must A/B two engines in one process, self-check that every verdict
// agrees, emit machine-readable JSON for scripts/bench.sh
// (BENCH_sat.json), and enforce a propagation-throughput floor
// (--require-speedup=F fails the run when arena props/sec < F × legacy
// props/sec) — so its ctest smoke registration doubles as a correctness
// test.  The baseline is MEASURED in the same run, not a snapshot.
//
// Workload: the order-literal CNF that src/core/encoder.h emits for the
// sharded master/replica shape of bench_scale_decomposition, generated
// directly at the SAT level so both engines see byte-identical input.
// Per entity (a group of 4 tuples × 2 attributes): one Boolean per
// same-entity tuple pair and attribute (true = u ≺ v for u < v),
// transitivity clauses over all ordered triples, planted-satisfiable
// ternary "denial" clauses on attribute A (identity order wins),
// copy-compatibility binaries A→B, and is-last selector definitions
// (binary + long clauses).  Entities are chained into ONE coupled
// component via B→A' binaries — the paper's worst case, where a giant
// component solves on a single thread and raw propagation speed is the
// only lever (see ROADMAP "Parallel scaling beyond components").
//
// Phases per engine: build (AddClause stream), base solve (must be SAT),
// COP-style assumption probes (reversed-pair refutations, mixed SAT/
// UNSAT), and a DCIP/CCQA-flavored projected enumeration burst on the
// selector variables.  propagations/sec is computed over the search
// phases (solve + probes + enumeration), where the engines do identical
// logical work modulo their own search choices.  A final pass-through
// phase times warm assumption probes routed through an enabled
// sat::Portfolio over a one-thread pool against the same probes called
// directly — the width-1 race must be the single-solver path (zero
// rivals, zero races, matching verdicts), and the measured overhead
// ratio lands in the JSON as "portfolio_pass_through".
//
// Flags: --entities=N --probes=Q --enum-budget=M --require-speedup=F
//        --out=FILE

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/sat/legacy_solver.h"
#include "src/sat/portfolio.h"
#include "src/sat/solver.h"

namespace {

using namespace currency;  // NOLINT

constexpr int kGroup = 4;          // tuples per entity
constexpr int kPairs = 6;          // kGroup choose 2
constexpr int kPuzzleClauses = 10; // planted denial clauses per entity

/// Canonical pair index for u < v among kGroup tuples: (0,1)=0, (0,2)=1,
/// (0,3)=2, (1,2)=3, (1,3)=4, (2,3)=5.
int PairIndex(int u, int v) {
  static const int index[kGroup][kGroup] = {{-1, 0, 1, 2},
                                            {-1, -1, 3, 4},
                                            {-1, -1, -1, 5},
                                            {-1, -1, -1, -1}};
  return index[u][v];
}

/// Variable ids for one entity: pair vars for attributes A and B, then
/// is-last selector vars for both attributes.
struct EntityVars {
  int pair_a[kPairs];
  int pair_b[kPairs];
  int last_a[kGroup];
  int last_b[kGroup];
};

/// Literal asserting "x ≺ y" (x != y) over a pair-var block.
sat::Lit OrdLit(const int* pair_vars, int x, int y) {
  return x < y ? sat::MakeLit(pair_vars[PairIndex(x, y)])
               : sat::MakeLit(pair_vars[PairIndex(y, x)], /*negated=*/true);
}

/// The full clause stream, generated once and fed to both engines.
struct Workload {
  int num_vars = 0;
  std::vector<std::vector<sat::Lit>> clauses;
  std::vector<EntityVars> entities;
};

Workload BuildWorkload(int num_entities, unsigned seed) {
  Workload w;
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> tup(0, kGroup - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  w.entities.resize(num_entities);
  for (int e = 0; e < num_entities; ++e) {
    EntityVars& ev = w.entities[e];
    for (int p = 0; p < kPairs; ++p) ev.pair_a[p] = w.num_vars++;
    for (int p = 0; p < kPairs; ++p) ev.pair_b[p] = w.num_vars++;
    for (int u = 0; u < kGroup; ++u) ev.last_a[u] = w.num_vars++;
    for (int u = 0; u < kGroup; ++u) ev.last_b[u] = w.num_vars++;

    const int* blocks[2] = {ev.pair_a, ev.pair_b};
    const int* lasts[2] = {ev.last_a, ev.last_b};
    for (int attr = 0; attr < 2; ++attr) {
      const int* pv = blocks[attr];
      // Transitivity over every ordered triple of distinct tuples.
      for (int a = 0; a < kGroup; ++a) {
        for (int b = 0; b < kGroup; ++b) {
          for (int c = 0; c < kGroup; ++c) {
            if (a == b || b == c || a == c) continue;
            w.clauses.push_back({sat::Negate(OrdLit(pv, a, b)),
                                 sat::Negate(OrdLit(pv, b, c)),
                                 OrdLit(pv, a, c)});
          }
        }
      }
      // Is-last selectors: L_u ⇔ ⋀_{v≠u} v ≺ u (binaries + one long).
      for (int u = 0; u < kGroup; ++u) {
        std::vector<sat::Lit> definition{sat::MakeLit(lasts[attr][u])};
        for (int v = 0; v < kGroup; ++v) {
          if (v == u) continue;
          w.clauses.push_back(
              {sat::MakeLit(lasts[attr][u], true), OrdLit(pv, v, u)});
          definition.push_back(sat::Negate(OrdLit(pv, v, u)));
        }
        w.clauses.push_back(std::move(definition));
      }
    }
    // Planted-satisfiable ternary denial clauses on attribute A: each
    // literal orders a random pair either identically (lo ≺ hi, true in
    // the identity model) or reversed; the third literal is forced
    // identical when needed, so the identity order satisfies every
    // clause (same scheme as bench_serve's puzzle constraints).
    for (int c = 0; c < kPuzzleClauses; ++c) {
      std::vector<sat::Lit> clause;
      bool any_identity = false;
      for (int k = 0; k < 3; ++k) {
        int lo = tup(rng), hi = tup(rng);
        while (hi == lo) hi = tup(rng);
        if (lo > hi) std::swap(lo, hi);
        bool identity = coin(rng) == 1;
        if (k == 2 && !any_identity) identity = true;
        any_identity |= identity;
        clause.push_back(identity ? OrdLit(ev.pair_a, lo, hi)
                                  : OrdLit(ev.pair_a, hi, lo));
      }
      w.clauses.push_back(std::move(clause));
    }
    // Copy ≺-compatibility inside the entity (A orders imply B orders) …
    for (int p = 0; p < kPairs; ++p) {
      w.clauses.push_back(
          {sat::MakeLit(ev.pair_a[p], true), sat::MakeLit(ev.pair_b[p])});
    }
    // … and a chain edge to the previous entity, coupling all entities
    // into one giant component.
    if (e > 0) {
      w.clauses.push_back({sat::MakeLit(w.entities[e - 1].pair_b[0], true),
                           sat::MakeLit(ev.pair_a[0])});
    }
  }
  return w;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Per-engine measurements.  The probe verdicts and enumeration count are
/// compared across engines by the caller (they are search-path
/// independent).
struct EngineRun {
  std::string name;
  double build_ms = 0;
  double solve_ms = 0;
  double probe_ms = 0;
  double enum_ms = 0;
  int64_t propagations = 0;
  int64_t conflicts = 0;
  int64_t decisions = 0;
  int64_t arena_bytes = 0;
  int64_t gc_runs = 0;
  int64_t reductions = 0;
  int64_t minimized_literals = 0;
  int64_t demotions = 0;
  int64_t tier_core = 0;
  int64_t tier_mid = 0;
  int64_t tier_local = 0;
  std::vector<bool> probe_verdicts;
  int64_t enumerated = 0;
  bool base_sat = false;

  double SearchMs() const { return solve_ms + probe_ms + enum_ms; }
  double PropsPerSec() const {
    double ms = SearchMs();
    return ms > 0 ? 1000.0 * static_cast<double>(propagations) / ms : 0;
  }
  double ConflictsPerSec() const {
    double ms = SearchMs();
    return ms > 0 ? 1000.0 * static_cast<double>(conflicts) / ms : 0;
  }
  std::string ToJson() const {
    char buf[768];
    std::snprintf(
        buf, sizeof buf,
        "{\"engine\": \"%s\", \"build_ms\": %.2f, \"solve_ms\": %.2f, "
        "\"probe_ms\": %.2f, \"enum_ms\": %.2f, \"propagations\": %lld, "
        "\"conflicts\": %lld, \"decisions\": %lld, "
        "\"props_per_sec\": %.0f, \"conflicts_per_sec\": %.0f, "
        "\"arena_bytes\": %lld, \"gc_runs\": %lld, "
        "\"minimized_literals\": %lld, \"demotions\": %lld, "
        "\"tiers\": {\"core\": %lld, \"mid\": %lld, \"local\": %lld}}",
        name.c_str(), build_ms, solve_ms, probe_ms, enum_ms,
        static_cast<long long>(propagations),
        static_cast<long long>(conflicts), static_cast<long long>(decisions),
        PropsPerSec(), ConflictsPerSec(),
        static_cast<long long>(arena_bytes), static_cast<long long>(gc_runs),
        static_cast<long long>(minimized_literals),
        static_cast<long long>(demotions), static_cast<long long>(tier_core),
        static_cast<long long>(tier_mid), static_cast<long long>(tier_local));
    return buf;
  }
};

/// Drives the identical workload through either engine (both expose the
/// same public surface).  Enumeration is inlined (blocking clauses on
/// the projection) so both engines run the same loop.
template <typename SolverT>
EngineRun RunEngine(const char* name, const Workload& w, int probes,
                    int64_t enum_budget) {
  EngineRun run;
  run.name = name;

  SolverT solver;
  double t0 = NowMs();
  for (int i = 0; i < w.num_vars; ++i) solver.NewVar();
  for (const auto& clause : w.clauses) (void)solver.AddClause(clause);
  run.build_ms = NowMs() - t0;

  t0 = NowMs();
  run.base_sat = solver.Solve() == sat::SolveResult::kSat;
  run.solve_ms = NowMs() - t0;

  // COP-style probes: assume a reversed pair (sometimes two) and let the
  // solver refute or complete it.  Entities rotate so probes spread over
  // the whole chained component.
  int num_entities = static_cast<int>(w.entities.size());
  t0 = NowMs();
  for (int q = 0; q < probes; ++q) {
    int e = static_cast<int>(
        (static_cast<int64_t>(q) * num_entities) / (probes > 0 ? probes : 1));
    const EntityVars& ev = w.entities[e];
    std::vector<sat::Lit> assumptions{
        sat::MakeLit(ev.pair_a[PairIndex(0, 1)], true)};
    if (q % 2 == 1) {
      assumptions.push_back(sat::MakeLit(ev.pair_b[PairIndex(2, 3)], true));
    }
    run.probe_verdicts.push_back(solver.SolveWithAssumptions(assumptions) ==
                                 sat::SolveResult::kSat);
  }
  run.probe_ms = NowMs() - t0;

  // DCIP/CCQA-flavored burst: enumerate the projected models over entity
  // 0's attribute-A selector variables, blocking each.
  t0 = NowMs();
  const sat::Var* projection = w.entities[0].last_a;
  while (run.enumerated < enum_budget &&
         solver.Solve() == sat::SolveResult::kSat) {
    ++run.enumerated;
    std::vector<sat::Lit> block;
    for (int u = 0; u < kGroup; ++u) {
      block.push_back(
          sat::MakeLit(projection[u], solver.ModelValue(projection[u])));
    }
    if (!solver.AddClause(std::move(block))) break;
  }
  run.enum_ms = NowMs() - t0;

  run.propagations = solver.stats().propagations;
  run.conflicts = solver.stats().conflicts;
  run.decisions = solver.stats().decisions;
  run.arena_bytes = solver.stats().arena_bytes;
  run.gc_runs = solver.stats().gc_runs;
  run.reductions = solver.stats().reductions;
  run.minimized_literals = solver.stats().minimized_literals;
  run.demotions = solver.stats().demotions;
  run.tier_core = solver.stats().tier_core;
  run.tier_mid = solver.stats().tier_tier2;
  run.tier_local = solver.stats().tier_local;
  return run;
}

/// Portfolio pass-through overhead: with a single-threaded pool the race
/// must BE the single-solver path (no rivals, no stop polling, no
/// region), so warm assumption probes through a pass-through Portfolio
/// are timed against the same probes called directly on the same warm
/// solver.  Min-of-N sweeps on both sides squeeze scheduler noise the
/// same way bench_obs_overhead does.
struct PassThroughRun {
  double direct_ms = 0;    // min over sweeps
  double portfolio_ms = 0; // min over sweeps
  int64_t races = 0;       // must stay 0
  bool spawned = false;    // must stay false
  bool verdicts_agree = true;
  double Ratio() const {
    return direct_ms > 0 ? portfolio_ms / direct_ms : 1.0;
  }
};

PassThroughRun MeasurePassThrough(const Workload& w, int probes) {
  PassThroughRun result;
  sat::Solver solver;
  for (int i = 0; i < w.num_vars; ++i) solver.NewVar();
  for (const auto& clause : w.clauses) (void)solver.AddClause(clause);
  (void)solver.Solve();

  exec::ThreadPool pool(1);
  sat::PortfolioOptions options;
  options.enabled = true;  // enabled AND useless: one thread ⇒ width 1
  options.num_solvers = 4;
  sat::Portfolio portfolio(
      &solver,
      [&](int, const sat::Solver::Options&) -> Result<sat::Solver*> {
        result.spawned = true;
        return Status::Internal("pass-through must not spawn rivals");
      },
      options, &pool);

  int num_entities = static_cast<int>(w.entities.size());
  auto probe_lit = [&](int q) {
    int e = static_cast<int>((static_cast<int64_t>(q) * num_entities) /
                             (probes > 0 ? probes : 1));
    return sat::MakeLit(w.entities[e].pair_a[PairIndex(0, 1)], true);
  };
  // Untimed verdict cross-check, which doubles as the warm-up sweep.
  for (int q = 0; q < probes; ++q) {
    std::vector<sat::Lit> assumptions{probe_lit(q)};
    bool direct_sat =
        solver.SolveWithAssumptions(assumptions) == sat::SolveResult::kSat;
    auto verdict = portfolio.Solve(assumptions);
    if (!verdict.ok() || (*verdict == sat::SolveResult::kSat) != direct_sat) {
      result.verdicts_agree = false;
    }
  }
  auto sweep = [&](bool through_portfolio) -> double {
    double t0 = NowMs();
    for (int q = 0; q < probes; ++q) {
      std::vector<sat::Lit> assumptions{probe_lit(q)};
      if (through_portfolio) {
        auto verdict = portfolio.Solve(assumptions);
        if (!verdict.ok()) result.verdicts_agree = false;
      } else {
        (void)solver.SolveWithAssumptions(assumptions);
      }
    }
    return NowMs() - t0;
  };
  // Alternate timed sweeps so clock drift hits both sides equally.
  result.direct_ms = -1;
  result.portfolio_ms = -1;
  for (int rep = 0; rep < 3; ++rep) {
    double d = sweep(false);
    double p = sweep(true);
    if (result.direct_ms < 0 || d < result.direct_ms) result.direct_ms = d;
    if (result.portfolio_ms < 0 || p < result.portfolio_ms) {
      result.portfolio_ms = p;
    }
  }
  result.races = solver.stats().portfolio_races;
  return result;
}

int Fail(const char* what) {
  std::fprintf(stderr, "bench_sat_core: FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int entities = 256;
  int probes = 512;
  int64_t enum_budget = 64;
  double require_speedup = 0.0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--entities=", 11) == 0) {
      entities = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--probes=", 9) == 0) {
      probes = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--enum-budget=", 14) == 0) {
      enum_budget = std::atoll(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--require-speedup=", 18) == 0) {
      require_speedup = std::atof(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "bench_sat_core: unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  Workload w = BuildWorkload(entities, /*seed=*/17);
  EngineRun arena = RunEngine<sat::Solver>("arena", w, probes, enum_budget);
  EngineRun legacy =
      RunEngine<sat::LegacySolver>("legacy", w, probes, enum_budget);
  PassThroughRun pass_through = MeasurePassThrough(w, probes);

  // Self-checks: every search-path-independent output must agree.
  if (!arena.base_sat || !legacy.base_sat) {
    return Fail("planted workload must be SAT on both engines");
  }
  if (arena.probe_verdicts != legacy.probe_verdicts) {
    return Fail("probe verdicts diverge between arena and legacy engines");
  }
  if (arena.enumerated != legacy.enumerated) {
    return Fail("projected enumeration counts diverge between engines");
  }
  if (arena.gc_runs != arena.reductions) {
    // Every learnt-clause reduction must end in a compaction (and
    // nothing else compacts outside the test hooks).
    return Fail("arena compactions out of sync with ReduceDB runs");
  }
  // A one-thread portfolio must be the single-solver path, literally:
  // no rival spawned, no race recorded, verdicts identical.
  if (pass_through.spawned || pass_through.races != 0) {
    return Fail("one-thread portfolio spawned rivals or recorded races");
  }
  if (!pass_through.verdicts_agree) {
    return Fail("pass-through portfolio verdicts diverge from direct solver");
  }

  double speedup = legacy.PropsPerSec() > 0
                       ? arena.PropsPerSec() / legacy.PropsPerSec()
                       : 0.0;
  std::string json = "{\n  \"bench\": \"bench_sat_core\",\n  \"workload\": {";
  json += "\"entities\": " + std::to_string(entities) +
          ", \"vars\": " + std::to_string(w.num_vars) +
          ", \"clauses\": " + std::to_string(w.clauses.size()) +
          ", \"probes\": " + std::to_string(probes) +
          ", \"enum_budget\": " + std::to_string(enum_budget) +
          "},\n  \"results\": [\n    " + arena.ToJson() + ",\n    " +
          legacy.ToJson() + "\n  ],\n";
  char tail[256];
  std::snprintf(tail, sizeof tail,
                "  \"portfolio_pass_through\": {\"direct_ms\": %.2f, "
                "\"portfolio_ms\": %.2f, \"overhead_ratio\": %.3f, "
                "\"races\": %lld},\n"
                "  \"speedup_props_per_sec\": %.2f\n}\n",
                pass_through.direct_ms, pass_through.portfolio_ms,
                pass_through.Ratio(),
                static_cast<long long>(pass_through.races), speedup);
  json += tail;
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) return Fail("cannot open --out file");
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("bench_sat_core: wrote %s (speedup %.2fx)\n", out_path.c_str(),
                speedup);
  }
  if (require_speedup > 0 && speedup < require_speedup) {
    std::fprintf(stderr,
                 "bench_sat_core: FAILED: propagation throughput %.2fx of "
                 "legacy, below the required %.2fx\n",
                 speedup, require_speedup);
    return 1;
  }
  return 0;
}
