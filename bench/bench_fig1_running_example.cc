// Fig. 1 — the running example as a workload, at paper scale and scaled
// up.  Measures the full pipeline on the company database (CPS, Q1–Q4,
// COP, DCIP) and a synthetic generalization: N employees with Mary-like
// triples of stale records under ϕ1–ϕ3.

#include <benchmark/benchmark.h>

#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/consistency.h"
#include "src/core/deterministic.h"
#include "src/query/parser.h"
#include "tests/fixtures.h"

namespace {

using namespace currency;  // NOLINT
using currency::testing::MakeQ1;
using currency::testing::MakeQ2;
using currency::testing::MakeQ3;
using currency::testing::MakeQ4;
using currency::testing::MakeS0;

void BM_Fig1_Consistency(benchmark::State& state) {
  core::Specification s0 = MakeS0();
  for (auto _ : state) {
    auto outcome = core::DecideConsistency(s0);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetLabel("CPS on the paper instance");
}
BENCHMARK(BM_Fig1_Consistency)->Unit(benchmark::kMillisecond);

void BM_Fig1_Queries(benchmark::State& state) {
  core::Specification s0 = MakeS0();
  auto queries = {MakeQ1(), MakeQ2(), MakeQ3(), MakeQ4()};
  for (auto _ : state) {
    for (const auto& q : queries) {
      auto answers = core::CertainCurrentAnswers(s0, q);
      benchmark::DoNotOptimize(answers);
    }
  }
  state.SetLabel("Q1-Q4 certain answers (Example 2.5)");
}
BENCHMARK(BM_Fig1_Queries)->Unit(benchmark::kMillisecond);

void BM_Fig1_CopDcip(benchmark::State& state) {
  core::Specification s0 = MakeS0();
  AttrIndex salary = s0.instance(0).schema().IndexOf("salary").value();
  core::CurrencyOrderQuery cop{"Emp", {{salary, 0, 2}}};
  for (auto _ : state) {
    auto certain = core::IsCertainOrder(s0, cop);
    auto det = core::IsDeterministicForRelation(s0, "Emp");
    benchmark::DoNotOptimize(certain);
    benchmark::DoNotOptimize(det);
  }
  state.SetLabel("COP + DCIP (Examples 3.2, 3.3)");
}
BENCHMARK(BM_Fig1_CopDcip)->Unit(benchmark::kMillisecond);

// Scaled variant: range(0) employees, each with the Mary pattern (three
// stale records), under ϕ1 + ϕ2(+status) + ϕ3.
core::Specification MakeScaledEmp(int employees) {
  core::Specification spec;
  Schema schema =
      Schema::Make("Emp", {"LN", "address", "salary", "status"}).value();
  Relation emp(schema);
  for (int e = 0; e < employees; ++e) {
    Value eid("p" + std::to_string(e));
    (void)emp.AppendValues({eid, Value("Maiden" + std::to_string(e)),
                            Value("Old St"), Value(50 + e % 10),
                            Value("single")});
    (void)emp.AppendValues({eid, Value("Married" + std::to_string(e)),
                            Value("Mid Ave"), Value(50 + e % 10),
                            Value("married")});
    (void)emp.AppendValues({eid, Value("Married" + std::to_string(e)),
                            Value("New Rd"), Value(80 + e % 10),
                            Value("married")});
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(emp)));
  (void)spec.AddConstraintText(
      "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s");
  (void)spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[LN] s");
  (void)spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[status] s");
  (void)spec.AddConstraintText(
      "FORALL s, t IN Emp: t PREC[salary] s -> t PREC[address] s");
  return spec;
}

void BM_Fig1_ScaledDcip(benchmark::State& state) {
  const int employees = static_cast<int>(state.range(0));
  core::Specification spec = MakeScaledEmp(employees);
  for (auto _ : state) {
    auto det = core::IsDeterministicForRelation(spec, "Emp");
    benchmark::DoNotOptimize(det);
  }
  state.counters["employees"] = employees;
  state.SetLabel("DCIP on N Mary-like employees");
}
BENCHMARK(BM_Fig1_ScaledDcip)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Unit(benchmark::kMillisecond);

void BM_Fig1_ScaledQuery(benchmark::State& state) {
  const int employees = static_cast<int>(state.range(0));
  core::Specification spec = MakeScaledEmp(employees);
  query::Query q = query::ParseQuery(
                       "Q(s) := EXISTS e, ln, a, st: Emp(e, ln, a, s, st) "
                       "AND e = 'p0'")
                       .value();
  for (auto _ : state) {
    auto answers = core::CertainCurrentAnswers(spec, q);
    benchmark::DoNotOptimize(answers);
  }
  state.SetLabel("certain salary of one employee among N");
}
BENCHMARK(BM_Fig1_ScaledQuery)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
