// Table II, CPS row — empirical regeneration.
//
// Paper claims: CPS is NP-complete in data complexity (Betweenness
// family), Σp2-complete in combined complexity (∃∀3DNF family), and PTIME
// without denial constraints (Theorem 6.1).
//
// The three benchmark families below demonstrate the claimed shape:
// super-polynomial growth of the exact solver on both hard families, and
// near-linear scaling of the chase on constraint-free copy networks.

#include <benchmark/benchmark.h>

#include <random>

#include "src/core/chase.h"
#include "src/core/consistency.h"
#include "src/reductions/to_cps.h"

namespace {

using namespace currency;  // NOLINT

// Combined complexity: ∃X∀Y 3DNF gadgets with |X| = |Y| = range(0).
void BM_CpsCombined_SigmaP2(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::mt19937 rng(42);
  sat::Qbf qbf = sat::RandomQbf({n, n}, /*first_exists=*/true, n + 2,
                                /*cnf=*/false, &rng);
  int64_t consistent = 0;
  for (auto _ : state) {
    auto spec = reductions::SigmaP2ToCps(qbf);
    auto outcome = core::DecideConsistency(*spec);
    consistent += outcome->consistent ? 1 : 0;
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["consistent"] = static_cast<double>(consistent > 0);
  state.SetLabel("Σp2-hard family (Thm 3.1)");
}
BENCHMARK(BM_CpsCombined_SigmaP2)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

// Data complexity: Betweenness gadgets with range(0) triples.
void BM_CpsData_Betweenness(benchmark::State& state) {
  const int triples = static_cast<int>(state.range(0));
  std::mt19937 rng(7);
  reductions::BetweennessInstance inst =
      reductions::RandomBetweenness(triples + 2, triples, &rng);
  for (auto _ : state) {
    auto spec = reductions::BetweennessToCps(inst);
    auto outcome = core::DecideConsistency(*spec);
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["rows"] = 6.0 * triples + 1;
  state.SetLabel("NP-hard family (Thm 3.1, data)");
}
BENCHMARK(BM_CpsData_Betweenness)->DenseRange(2, 7)->Unit(benchmark::kMillisecond);

// Tractable case: no denial constraints, copy chain of range(0) tuples —
// the chase decides CPS in PTIME (Theorem 6.1).
void BM_CpsPtime_NoConstraints(benchmark::State& state) {
  const int entities = static_cast<int>(state.range(0));
  core::Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  for (int e = 0; e < entities; ++e) {
    Value eid("e" + std::to_string(e));
    (void)r.AppendValues({eid, Value(e)});
    (void)r.AppendValues({eid, Value(e + 1)});
  }
  core::TemporalInstance rinst(std::move(r));
  for (int e = 0; e < entities; ++e) {
    (void)rinst.AddOrder(1, 2 * e, 2 * e + 1);
  }
  (void)spec.AddInstance(std::move(rinst));

  Schema r2s = Schema::Make("R2", {"C"}).value();
  Relation r2(r2s);
  copy::CopySignature sig;
  sig.target_relation = "R2";
  sig.target_attrs = {"C"};
  sig.source_relation = "R";
  sig.source_attrs = {"A"};
  copy::CopyFunction fn(sig);
  for (int e = 0; e < entities; ++e) {
    Value eid("f" + std::to_string(e));
    auto t0 = r2.AppendValues({eid, Value(e)});
    auto t1 = r2.AppendValues({eid, Value(e + 1)});
    (void)fn.Map(*t0, 2 * e);
    (void)fn.Map(*t1, 2 * e + 1);
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(r2)));
  (void)spec.AddCopyFunction(std::move(fn));

  for (auto _ : state) {
    auto outcome = core::DecideConsistency(spec);
    benchmark::DoNotOptimize(outcome);
  }
  state.counters["tuples"] = 4.0 * entities;
  state.SetLabel("PTIME without constraints (Thm 6.1)");
}
BENCHMARK(BM_CpsPtime_NoConstraints)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMillisecond);

// The chase itself on the same family (fixpoint cost).
void BM_ChaseFixpoint(benchmark::State& state) {
  const int entities = static_cast<int>(state.range(0));
  core::Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  for (int e = 0; e < entities; ++e) {
    Value eid("e" + std::to_string(e));
    (void)r.AppendValues({eid, Value(0)});
    (void)r.AppendValues({eid, Value(1)});
  }
  core::TemporalInstance rinst(std::move(r));
  for (int e = 0; e < entities; ++e) (void)rinst.AddOrder(1, 2 * e, 2 * e + 1);
  (void)spec.AddInstance(std::move(rinst));
  for (auto _ : state) {
    auto chase = core::ChaseCopyOrders(spec);
    benchmark::DoNotOptimize(chase);
  }
  state.SetLabel("chase fixpoint");
}
BENCHMARK(BM_ChaseFixpoint)
    ->RangeMultiplier(4)
    ->Range(16, 1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
