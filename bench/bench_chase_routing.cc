// Chase-routing benchmark: a routed CurrencySession (chase-eligible
// components served from the polynomial copy-order chase) against a
// forced-SAT session (use_chase_routing = false) over the same
// constraint-free sharded workload — the Theorem 6.1 fast path of
// src/core/chase.h made measurable end to end.
//
// Like bench_serve this is a plain binary (no Google Benchmark): it
// reports latency percentiles and machine-readable JSON for
// scripts/bench.sh (BENCH_chase.json), self-checks every routed answer
// against the forced-SAT session, and (via --require-speedup=F) enforces
// the warm-query speedup floor, so its ctest smoke registration doubles
// as a differential correctness test.
//
// Workload: relation R holds `entities` four-tuple entities with one
// planted initial A-order each and NO denial constraints; R2 copies A
// from two distinct R tuples per entity, so every coupling component is
// one chase-eligible {R-entity, R2-entity} pair and the chase actually
// propagates pairs across the copy bucket.  COP queries spread over the
// entities, alternating certain-only and refutation-required shapes.
//
// Flags: --entities=N --queries=Q --iters=K --require-speedup=F
//        --threads=T --out=FILE

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/certain_order.h"
#include "src/serve/session.h"

namespace {

using namespace currency;  // NOLINT

// Tuples per R entity.  Deliberately larger than bench_serve's groups:
// the SAT encoder's per-probe cost (assumption solve over O(kGroup²)
// order variables and O(kGroup³) transitivity clauses) grows with the
// group while the chase probe stays an O(1) fixpoint lookup, which is
// exactly the asymmetry the routed-vs-forced floor measures.
constexpr int kGroup = 8;

/// Zero-padded ids keep Value order aligned with creation order.
std::string PadId(const char* prefix, int e) {
  std::string digits = std::to_string(e);
  return std::string(prefix) + std::string(6 - digits.size(), '0') + digits;
}

core::Specification MakeConstraintFreeSpec(int entities) {
  core::Specification spec;
  Schema rs = Schema::Make("R", {"A", "B"}).value();
  Relation r(rs);
  for (int e = 0; e < entities; ++e) {
    Value eid(PadId("e", e));
    for (int k = 0; k < kGroup; ++k) {
      (void)r.AppendValues({eid, Value(k), Value(k % 2)});
    }
  }
  core::TemporalInstance inst(std::move(r));
  // Planted initial orders per entity: t0 ≺ t1 ≺ t2 on A.  The chain
  // propagates into R2 below and makes t0 ≺ t2 certain only through
  // transitivity, so every component chase genuinely derives pairs.
  for (int e = 0; e < entities; ++e) {
    (void)inst.AddOrder(1, e * kGroup, e * kGroup + 1);
    (void)inst.AddOrder(1, e * kGroup + 1, e * kGroup + 2);
  }
  (void)spec.AddInstance(std::move(inst));

  Schema r2s = Schema::Make("R2", {"C"}).value();
  Relation r2(r2s);
  copy::CopySignature sig;
  sig.target_relation = "R2";
  sig.target_attrs = {"C"};
  sig.source_relation = "R";
  sig.source_attrs = {"A"};
  copy::CopyFunction fn(sig);
  for (int e = 0; e < entities; ++e) {
    Value eid(PadId("f", e));
    auto t0 = r2.AppendValues({eid, Value(0)});
    auto t1 = r2.AppendValues({eid, Value(1)});
    (void)fn.Map(*t0, e * kGroup);      // carries A = 0
    (void)fn.Map(*t1, e * kGroup + 1);  // carries A = 1
  }
  (void)spec.AddInstance(core::TemporalInstance(std::move(r2)));
  (void)spec.AddCopyFunction(std::move(fn));
  return spec;
}

/// COP queries spread over the entities: even queries ask the three
/// planted certain pairs — (t0, t1), (t1, t2) and the transitive
/// (t0, t2), each one an UNSAT assumption solve for the forced session —
/// plus answer true; odd ones add an unordered pair the solver must
/// refute, so they answer false.
std::vector<core::CurrencyOrderQuery> MakeQueries(int entities, int queries) {
  std::vector<core::CurrencyOrderQuery> out;
  for (int k = 0; k < queries; ++k) {
    int e = (static_cast<int64_t>(k) * entities) / queries;
    core::CurrencyOrderQuery q;
    q.relation = "R";
    q.pairs = {core::RequiredPair{1, e * kGroup, e * kGroup + 1},
               core::RequiredPair{1, e * kGroup + 1, e * kGroup + 2},
               core::RequiredPair{1, e * kGroup, e * kGroup + 2}};
    if (k % 2 == 1) {
      q.pairs.push_back(
          core::RequiredPair{1, e * kGroup + 7, e * kGroup + 6});
    }
    out.push_back(std::move(q));
  }
  return out;
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Series {
  std::string name;
  std::vector<double> samples_ms;

  double Total() const {
    double t = 0;
    for (double s : samples_ms) t += s;
    return t;
  }
  double Percentile(double q) const {
    if (samples_ms.empty()) return 0;
    std::vector<double> sorted = samples_ms;
    std::sort(sorted.begin(), sorted.end());
    size_t rank = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
    return sorted[std::min(rank, sorted.size() - 1)];
  }
  std::string ToJson() const {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\": \"%s\", \"n\": %zu, \"ops_per_sec\": %.3f, "
                  "\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"mean_ms\": %.4f}",
                  name.c_str(), samples_ms.size(),
                  samples_ms.empty() || Total() <= 0
                      ? 0.0
                      : 1000.0 * samples_ms.size() / Total(),
                  Percentile(0.50), Percentile(0.95),
                  samples_ms.empty() ? 0.0 : Total() / samples_ms.size());
    return buf;
  }
};

int Fail(const char* what) {
  std::fprintf(stderr, "bench_chase_routing: FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  int entities = 1024;
  int queries = 64;
  int iters = 5;
  int threads = 1;
  double require_speedup = 0.0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--entities=", 11) == 0) {
      entities = std::atoi(argv[i] + 11);
    } else if (std::strncmp(argv[i], "--queries=", 10) == 0) {
      queries = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--iters=", 8) == 0) {
      iters = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--require-speedup=", 18) == 0) {
      require_speedup = std::atof(argv[i] + 18);
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "bench_chase_routing: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (entities < queries) queries = entities;

  core::Specification spec = MakeConstraintFreeSpec(entities);
  std::vector<core::CurrencyOrderQuery> cop_queries =
      MakeQueries(entities, queries);

  // Two sessions over the same specification: routed (default) and
  // forced-SAT (the escape hatch the routed answers are diffed against).
  serve::SessionOptions routed_opts;
  routed_opts.num_threads = threads;
  serve::SessionOptions forced_opts = routed_opts;
  forced_opts.use_chase_routing = false;

  // Cold start: Create + first CpsCheck.  Routed chases every component;
  // forced builds and base-solves every SAT encoder.
  Series cold_routed{"cold_create_plus_cps_routed", {}};
  Series cold_forced{"cold_create_plus_cps_forced_sat", {}};
  double t0 = NowMs();
  auto routed = serve::CurrencySession::Create(spec, routed_opts);
  if (!routed.ok()) return Fail(routed.status().ToString().c_str());
  auto routed_cps = (*routed)->CpsCheck();
  cold_routed.samples_ms.push_back(NowMs() - t0);
  t0 = NowMs();
  auto forced = serve::CurrencySession::Create(spec, forced_opts);
  if (!forced.ok()) return Fail(forced.status().ToString().c_str());
  auto forced_cps = (*forced)->CpsCheck();
  cold_forced.samples_ms.push_back(NowMs() - t0);
  if (!routed_cps.ok() || !forced_cps.ok()) return Fail("CPS errored");
  if (!*routed_cps || !*forced_cps) return Fail("workload must be SAT");
  if ((*routed)->stats().base_solves != 0) {
    return Fail("a constraint-free routed session must never SAT-solve");
  }
  if ((*routed)->stats().chase_solves != (*routed)->num_components()) {
    return Fail("every component must be chase-solved exactly once");
  }

  // Warm COP batches: per-query latency, routed vs forced, answers
  // diffed element-wise every iteration.
  Series warm_routed{"warm_batch_cop_per_query_routed", {}};
  Series warm_forced{"warm_batch_cop_per_query_forced_sat", {}};
  for (int it = 0; it < iters; ++it) {
    t0 = NowMs();
    auto a = (*routed)->CopBatch(cop_queries);
    double routed_per_query = (NowMs() - t0) / queries;
    t0 = NowMs();
    auto b = (*forced)->CopBatch(cop_queries);
    double forced_per_query = (NowMs() - t0) / queries;
    if (!a.ok() || !b.ok()) return Fail("CopBatch errored");
    for (int k = 0; k < queries; ++k) {
      if ((*a)[k] != (*b)[k]) {
        return Fail("routed COP answer differs from forced-SAT");
      }
      bool expected = k % 2 == 0;  // planted: certain pair alone is true
      if ((*a)[k] != expected) return Fail("COP answer differs from planted");
      warm_routed.samples_ms.push_back(routed_per_query);
      warm_forced.samples_ms.push_back(forced_per_query);
    }
  }

  // Mutate one tuple (rotating entity; B is copy-free so answers are
  // unaffected) then re-run the batch: exactly one component re-chases
  // (routed) / re-solves (forced), everything else is adopted.
  Series mutate_routed{"mutate_one_tuple_plus_batch_routed", {}};
  Series mutate_forced{"mutate_one_tuple_plus_batch_forced_sat", {}};
  for (int it = 0; it < iters; ++it) {
    int e = it % entities;
    core::TupleEdit edit{0, e * kGroup + 1, 2, Value(100 + it)};
    t0 = NowMs();
    Status sa = (*routed)->Mutate({edit});
    auto a = (*routed)->CopBatch(cop_queries);
    mutate_routed.samples_ms.push_back(NowMs() - t0);
    t0 = NowMs();
    Status sb = (*forced)->Mutate({edit});
    auto b = (*forced)->CopBatch(cop_queries);
    mutate_forced.samples_ms.push_back(NowMs() - t0);
    if (!sa.ok() || !sb.ok()) return Fail("Mutate errored");
    if (!a.ok() || !b.ok()) return Fail("post-mutate CopBatch errored");
    if (*a != *b) return Fail("post-mutate answers diverge");
    if ((*routed)->stats().last_chase_rechased != 1) {
      return Fail("a one-tuple edit must re-chase exactly one component");
    }
    if ((*routed)->stats().last_chase_reused !=
        (*routed)->num_components() - 1) {
      return Fail("every untouched component must re-adopt its fixpoint");
    }
    if ((*forced)->stats().last_invalidated != 1) {
      return Fail("a one-tuple edit must invalidate exactly one component");
    }
  }

  double speedup = warm_routed.Percentile(0.5) > 0
                       ? warm_forced.Percentile(0.5) /
                             warm_routed.Percentile(0.5)
                       : 0.0;
  double cold_speedup = cold_routed.samples_ms[0] > 0
                            ? cold_forced.samples_ms[0] /
                                  cold_routed.samples_ms[0]
                            : 0.0;
  std::string json = "{\n  \"bench\": \"bench_chase_routing\",\n  "
                     "\"workload\": {";
  json += "\"entities\": " + std::to_string(entities) +
          ", \"components\": " + std::to_string((*routed)->num_components()) +
          ", \"queries\": " + std::to_string(queries) +
          ", \"iters\": " + std::to_string(iters) +
          ", \"threads\": " + std::to_string(threads) + "},\n  \"results\": [";
  const Series* all[] = {&cold_routed,   &cold_forced,  &warm_routed,
                         &warm_forced,   &mutate_routed, &mutate_forced};
  for (size_t k = 0; k < 6; ++k) {
    json += std::string(k ? "," : "") + "\n    " + all[k]->ToJson();
  }
  char tail[160];
  std::snprintf(tail, sizeof tail,
                "\n  ],\n  \"speedup_warm_cop_routed_vs_forced_p50\": %.2f,\n"
                "  \"speedup_cold_routed_vs_forced\": %.2f\n}\n",
                speedup, cold_speedup);
  json += tail;
  if (out_path.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) return Fail("cannot open --out file");
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("bench_chase_routing: wrote %s (warm speedup %.2fx)\n",
                out_path.c_str(), speedup);
  }
  if (require_speedup > 0 && speedup < require_speedup) {
    std::fprintf(stderr,
                 "bench_chase_routing: FAILED: warm COP speedup %.2fx below "
                 "the required %.2fx\n",
                 speedup, require_speedup);
    return 1;
  }
  return 0;
}
