#!/usr/bin/env bash
# Performance trajectory runner: builds the bench binaries and emits a
# machine-readable report for the serving layer.
#
# Output: BENCH_serve.json at the repository root — ops/sec and p50/p95
# latency for cold session bring-up, rebuild-per-query one-shot solves,
# warm single queries, warm batches, and mutate-then-requery, plus the
# warm-batch-vs-rebuild speedup on the 1024-component sharded workload.
# bench_serve self-checks every answer against the one-shot solver and
# enforces the >= 5x amortization floor, so this script failing means a
# real regression (wrong answers or lost amortization), not noise.
#
# The Google-Benchmark binaries (paper tables, decomposition scaling) are
# not re-run here: they measure solver internals, not the serving layer,
# and dominate wall-clock.  Run them directly when needed.
#
# Usage: scripts/bench.sh [build-dir]    (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"

cd "$repo_root"
if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S .
fi
cmake --build "$build_dir" -j "$(nproc)" --target bench_serve

"$build_dir/bench/bench_serve" \
  --entities=1024 --queries=16 --iters=5 \
  --require-speedup=5 \
  --out="$repo_root/BENCH_serve.json"

echo "bench: wrote $repo_root/BENCH_serve.json"
