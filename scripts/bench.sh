#!/usr/bin/env bash
# Performance trajectory runner: builds the plain bench binaries and
# emits machine-readable reports for the serving layer and the SAT core.
#
# Outputs (both tracked at the repository root so the trajectory is
# versioned with the code):
#
#  * BENCH_serve.json — ops/sec and p50/p95 latency for cold session
#    bring-up, rebuild-per-query one-shot solves, warm single queries,
#    warm batches, and mutate-then-requery, plus the warm-batch-vs-
#    rebuild speedup on the 1024-component sharded workload.
#    bench_serve self-checks every answer against the one-shot solver
#    and enforces the >= 5x amortization floor.
#
#  * BENCH_chase.json — routed-vs-forced chase routing on a 1024-entity
#    constraint-free sharded workload: cold bring-up, warm COP batches
#    and mutate-then-requery for a chase-routed session against the same
#    session with use_chase_routing=false.  bench_chase_routing diffs
#    every routed answer against the forced-SAT session, checks the
#    incremental-chase reuse counters, and enforces the >= 3x warm-query
#    speedup floor.
#
#  * BENCH_mt.json — concurrent serving: reader COP batches serialized,
#    with concurrent readers, and with concurrent readers against a live
#    mutator on one snapshot-isolated session.  bench_concurrent_serve
#    self-checks every concurrent answer against the one-shot solver.
#    The JSON carries an explicit 1-CPU-container caveat: with a single
#    core the concurrent phases measure snapshot/scheduling overhead
#    (parity with the serialized baseline is the win), so no speedup
#    floor is enforced.
#
#  * BENCH_wal.json — durability: Mutate latency with and without the
#    command log's append+fsync (the fsync overhead ratio), and
#    replay-restart vs snapshot-assisted restart (Open + first CpsCheck
#    over the same logged history).  bench_recovery self-checks every
#    recovered state (spec bytes, CPS answer, zero base solves after a
#    snapshot restore) against the live manager and enforces the >= 3x
#    snapshot-restart speedup floor.  The JSON carries the 1-CPU caveat:
#    restart phases run sequentially, but the replay-vs-snapshot ratio
#    is thread-independent.
#
#  * BENCH_obs.json — observability overhead: warm COP p50 (per query
#    in a batch, plus loop-of-singles) for a tracer-absent session, a
#    fully traced session, and (the A/B that matters) the traced
#    session against the same binary compiled with -DCURRENCY_OBS_OFF=ON,
#    where every span/stage/timer is an empty type.  bench_obs_overhead
#    self-checks every answer against the one-shot solver and enforces
#    the <= 5% traced-vs-compiled-out warm-batch per-query p50 ceiling
#    (--max-overhead=1.05; the per-REQUEST trace cost is fixed at
#    ~0.5 µs, so the single-query series is reported but not enforced —
#    see the binary's header comment).  The compiled-out baseline
#    builds in its own tree (build-obsoff), reused across runs.
#
#  * BENCH_sat.json — single-threaded SAT-core throughput on the
#    1024-entity chained-component CPS/COP workload: propagations/sec,
#    conflicts/sec, per-phase wall clock, arena bytes, learnt-clause
#    minimization and per-tier clause-DB counts for the arena-backed
#    solver AND the preserved legacy engine measured in the same run,
#    plus the one-thread portfolio pass-through overhead ratio.
#    bench_sat_core self-checks that every probe verdict and
#    enumeration count agrees between the engines, that a width-1
#    portfolio spawns no rivals and records no races, and enforces the
#    >= 1.5x propagation-throughput floor (tiered clause DB + recursive
#    learnt-clause minimization + blocker prefetch).
#
# Every report is stamped with a "host" object (nproc at run time plus
# the standing 1-CPU-container caveat) so a reader of the checked-in
# JSON knows which phases could not show parallel speedup.
#
# Either script failing means a real regression (wrong answers or lost
# performance), not noise.
#
# The Google-Benchmark binaries (paper tables, decomposition scaling) are
# not re-run here: they measure other layers and dominate wall-clock.
# Run them directly when needed.
#
# Usage: scripts/bench.sh [build-dir]    (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"

cd "$repo_root"
if [ ! -f "$build_dir/CMakeCache.txt" ]; then
  cmake -B "$build_dir" -S .
fi
cmake --build "$build_dir" -j "$(nproc)" \
  --target bench_serve bench_chase_routing bench_concurrent_serve \
           bench_recovery bench_sat_core bench_obs_overhead

obsoff_dir="${build_dir}-obsoff"
if [ ! -f "$obsoff_dir/CMakeCache.txt" ]; then
  cmake -B "$obsoff_dir" -S . -DCURRENCY_OBS_OFF=ON
fi
cmake --build "$obsoff_dir" -j "$(nproc)" --target bench_obs_overhead

"$build_dir/bench/bench_serve" \
  --entities=1024 --queries=16 --iters=5 \
  --require-speedup=5 \
  --out="$repo_root/BENCH_serve.json"

"$build_dir/bench/bench_chase_routing" \
  --entities=1024 --queries=64 --iters=5 \
  --require-speedup=3 \
  --out="$repo_root/BENCH_chase.json"

"$build_dir/bench/bench_concurrent_serve" \
  --entities=256 --queries=16 --iters=5 --readers=4 \
  --out="$repo_root/BENCH_mt.json"

"$build_dir/bench/bench_recovery" \
  --entities=128 --mutations=256 --iters=5 \
  --require-speedup=3 \
  --dir="$build_dir/bench_recovery_dirs" \
  --out="$repo_root/BENCH_wal.json"

# Same three-attempt hygiene as the obs ceiling below: the propagation
# throughput ratio swings ~±15% with cross-process scheduler noise on
# this 1-CPU container, so a real regression fails all three attempts
# while a noise dip fails at most one.
sat_ok=0
for _ in 1 2 3; do
  if "$build_dir/bench/bench_sat_core" \
    --entities=1024 --probes=2048 \
    --require-speedup=1.5 \
    --out="$repo_root/BENCH_sat.json"; then
    sat_ok=1
    break
  fi
done
[ "$sat_ok" -eq 1 ]

# Compiled-out baseline first (its own JSON is throwaway), then the
# instrumented run enforcing the warm-p50 overhead ceiling against it.
# The quantities compared are ~2 µs, so cross-process scheduler noise on
# this 1-CPU container can swing a single run's p50 well past 5% in
# either direction.  Standard microbenchmark hygiene: take the MINIMUM
# of three baseline p50s (the strictest, least-noisy comparison point)
# and give the instrumented side three attempts to beat the ceiling —
# a real >5% overhead fails all three, a noise spike fails at most one.
obsoff_json="$obsoff_dir/BENCH_obs_baseline.json"
baseline_p50=""
for _ in 1 2 3; do
  "$obsoff_dir/bench/bench_obs_overhead" \
    --entities=256 --queries=32 --iters=30 \
    --out="$obsoff_json"
  run_p50="$(sed -n \
    's/.*"warm_batch_cop_per_query_traced".*"p50_ms": \([0-9.]*\).*/\1/p' \
    "$obsoff_json")"
  baseline_p50="$(awk -v a="$baseline_p50" -v b="$run_p50" \
    'BEGIN { print (a == "" || b + 0 < a + 0) ? b : a }')"
done
obs_ok=0
for _ in 1 2 3; do
  if "$build_dir/bench/bench_obs_overhead" \
    --entities=256 --queries=32 --iters=30 \
    --baseline-p50-ms="$baseline_p50" --max-overhead=1.05 \
    --out="$repo_root/BENCH_obs.json"; then
    obs_ok=1
    break
  fi
done
[ "$obs_ok" -eq 1 ]

# Stamp every report with the measurement host: the benches themselves
# stay host-agnostic, but the checked-in JSON must say how many CPUs the
# numbers were taken on — on a 1-CPU container the concurrent and
# portfolio phases can only show overhead parity, never parallel
# speedup.  Inserted right after the opening brace so it reads first.
cores="$(nproc)"
caveat="measured with $cores CPU(s); on a 1-CPU container concurrent/portfolio phases show overhead parity, not parallel speedup"
for report in BENCH_serve.json BENCH_chase.json BENCH_mt.json \
              BENCH_wal.json BENCH_sat.json BENCH_obs.json; do
  sed -i "1s|^{|{\n  \"host\": {\"nproc\": $cores, \"caveat\": \"$caveat\"},|" \
    "$repo_root/$report"
done

echo "bench: wrote $repo_root/BENCH_serve.json, $repo_root/BENCH_chase.json," \
  "$repo_root/BENCH_mt.json, $repo_root/BENCH_wal.json," \
  "$repo_root/BENCH_sat.json and $repo_root/BENCH_obs.json"
