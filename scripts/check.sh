#!/usr/bin/env bash
# CI-style verification: configure with strict warnings, build everything,
# run all test suites from a clean build tree, then re-run the threading
# tests under ThreadSanitizer. Exits nonzero on the first failure.
#
# -Wall -Wextra -Werror is applied to currency targets only (see
# CURRENCY_STRICT_WARNINGS in the top-level CMakeLists), so dead-store
# bugs like an unused conflict-analysis counter fail the build here
# without holding third-party code to the same bar.
#
# The TSan pass (CURRENCY_TSAN, a separate build tree) rebuilds only the
# test suites that exercise the parallel exec layer and runs the ones
# that matter — exec_test (thread-pool semantics),
# parallel_equivalence_test (CPS/COP/DCIP/CCQA across thread counts),
# session_equivalence_test (the serving layer's shared-pool batches),
# concurrent_session_test (reader batches racing a mutator across epoch
# snapshots, multi-region pool sharing, SessionManager admission),
# chase_routing_equivalence_test (chase-routed vs forced-SAT answers,
# including the per-component fixpoint slots confined to pool tasks),
# sat_metamorphic_test (arena compaction inside pooled session tasks),
# portfolio_test (first-verdict-wins races over the shared pool, where
# the cancellation flag and verdict slots are the contended state),
# wal_recovery_test (the durable commit path: concurrent reader
# batches racing logged Mutates, where log_mu_ linearizes apply+append
# against the snapshot-isolated readers), and obs_test (lock-free
# counter/gauge/histogram updates racing get-or-create and exposition)
# — so data races in the decomposed solvers fail CI even on hardware
# where they never misbehave.
#
# The ASan+UBSan pass (CURRENCY_ASAN, a third build tree) runs the serve
# and exec suites plus obs_test, chase_routing_equivalence_test,
# sat_metamorphic_test, portfolio_test (rival solver lifetimes end at
# cancellation), wire_test and wal_recovery_test: the session
# layer moves encoders AND chase fixpoints between epochs and hands
# borrowed pools/encoders across threads, the SAT core's garbage
# collector relocates every clause and rewrites watcher/reason
# references in place, and the wire/WAL parsers walk length-prefixed
# frames of truncated and bit-flipped buffers — exactly the lifetime and
# bounds traffic the sanitizers are built to police.  (WAL tests write
# their log directories under the build tree's cwd — wal_test_dirs/,
# gitignored.)
#
# Usage: scripts/check.sh [build-dir]    (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"

cd "$repo_root"
rm -rf "$build_dir"
cmake -B "$build_dir" -S . -DCURRENCY_STRICT_WARNINGS=ON
cmake --build "$build_dir" -j "$(nproc)"
(cd "$build_dir" && ctest --output-on-failure -j "$(nproc)")

tsan_dir="${build_dir}-tsan"
rm -rf "$tsan_dir"
cmake -B "$tsan_dir" -S . \
  -DCURRENCY_TSAN=ON \
  -DCURRENCY_BUILD_BENCHMARKS=OFF \
  -DCURRENCY_BUILD_EXAMPLES=OFF
cmake --build "$tsan_dir" -j "$(nproc)" \
  --target exec_test obs_test parallel_equivalence_test serve_test \
           session_equivalence_test concurrent_session_test \
           chase_routing_equivalence_test sat_metamorphic_test \
           portfolio_test wire_test wal_recovery_test
"$tsan_dir/tests/exec_test"
"$tsan_dir/tests/obs_test"
"$tsan_dir/tests/parallel_equivalence_test"
"$tsan_dir/tests/serve_test"
"$tsan_dir/tests/session_equivalence_test"
"$tsan_dir/tests/concurrent_session_test"
"$tsan_dir/tests/chase_routing_equivalence_test"
"$tsan_dir/tests/sat_metamorphic_test"
"$tsan_dir/tests/portfolio_test"
(cd "$tsan_dir/tests" && ./wire_test && ./wal_recovery_test)

asan_dir="${build_dir}-asan"
rm -rf "$asan_dir"
cmake -B "$asan_dir" -S . \
  -DCURRENCY_ASAN=ON \
  -DCURRENCY_BUILD_BENCHMARKS=OFF \
  -DCURRENCY_BUILD_EXAMPLES=OFF
cmake --build "$asan_dir" -j "$(nproc)" \
  --target exec_test obs_test serve_test session_equivalence_test \
           concurrent_session_test chase_routing_equivalence_test \
           sat_metamorphic_test portfolio_test wire_test wal_recovery_test
"$asan_dir/tests/exec_test"
"$asan_dir/tests/obs_test"
"$asan_dir/tests/serve_test"
"$asan_dir/tests/session_equivalence_test"
"$asan_dir/tests/concurrent_session_test"
"$asan_dir/tests/chase_routing_equivalence_test"
"$asan_dir/tests/sat_metamorphic_test"
"$asan_dir/tests/portfolio_test"
(cd "$asan_dir/tests" && ./wire_test && ./wal_recovery_test)
