#!/usr/bin/env bash
# CI-style verification: configure, build everything, and run all test
# suites from a clean build tree. Exits nonzero on the first failure.
#
# Usage: scripts/check.sh [build-dir]    (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"

cd "$repo_root"
rm -rf "$build_dir"
cmake -B "$build_dir" -S .
cmake --build "$build_dir" -j "$(nproc)"
cd "$build_dir"
ctest --output-on-failure -j "$(nproc)"
