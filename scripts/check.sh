#!/usr/bin/env bash
# CI-style verification: configure with strict warnings, build everything,
# and run all test suites from a clean build tree. Exits nonzero on the
# first failure.
#
# -Wall -Wextra -Werror is applied to currency targets only (see
# CURRENCY_STRICT_WARNINGS in the top-level CMakeLists), so dead-store
# bugs like an unused conflict-analysis counter fail the build here
# without holding third-party code to the same bar.
#
# Usage: scripts/check.sh [build-dir]    (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"

cd "$repo_root"
rm -rf "$build_dir"
cmake -B "$build_dir" -S . -DCURRENCY_STRICT_WARNINGS=ON
cmake --build "$build_dir" -j "$(nproc)"
cd "$build_dir"
ctest --output-on-failure -j "$(nproc)"
