// Chase-routing equivalence: components with no denial-constraint
// grounding are decided by the polynomial copy-order chase (Theorem 6.1 /
// Lemma 6.2 / Proposition 6.3 applied to S|_c) while constrained
// components stay on SAT, side by side in one decomposed solve.  Routing
// is an implementation strategy, never a semantic switch, so every answer
// — CPS (and its witness one-shots), COP, DCIP, CCQA answer sets and the
// current-instance enumeration order — must be bit-identical to
// (a) forced-SAT routing (use_chase_routing = false) and (b) the
// brute-force oracle, across thread counts, mixed
// constrained/constraint-free specifications, and session Mutate rounds.
//
// Also covered here: the metamorphic classification properties (inert
// additions — a zero-grounding constraint, a single-source copy bucket —
// must not flip eligibility or fingerprints; a real grounding must flip
// exactly its component), the ChaseResult/ComponentChase work counters,
// and the session's chase-fixpoint reuse accounting across Mutate.
// scripts/check.sh re-runs this suite under ASan/UBSan and TSan.

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/core/brute_force.h"
#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/chase.h"
#include "src/core/consistency.h"
#include "src/core/decompose.h"
#include "src/core/deterministic.h"
#include "src/query/parser.h"
#include "src/serve/session.h"
#include "tests/fixtures.h"

namespace currency::core {
namespace {

using currency::testing::MakeRandomSpec;

constexpr int kThreadCounts[] = {1, 2, 8};

std::string CanonicalCompletion(const Completion& c) {
  std::string out;
  for (const auto& per_inst : c.orders) {
    for (const auto& po : per_inst) out += po.ToString() + "|";
  }
  return out;
}

std::string CanonicalDb(const query::Database& db) {
  std::string out;
  for (const auto& [name, rel] : db) {
    out += name + "{";
    for (const Tuple& t : rel->tuples()) out += t.ToString() + ";";
    out += "}";
  }
  return out;
}

/// The COP query shapes of the session suite, clamped to `rel`'s size.
std::vector<CurrencyOrderQuery> MakeCopQueries(const Relation& rel) {
  std::vector<CurrencyOrderQuery> queries;
  auto single = [&](RequiredPair p) {
    CurrencyOrderQuery q;
    q.relation = "R";
    q.pairs = {p};
    queries.push_back(std::move(q));
  };
  single(RequiredPair{1, 0, 1});
  single(RequiredPair{2, 1, 0});
  single(RequiredPair{1, 0, 2});  // often cross-entity
  single(RequiredPair{1, 1, 1});  // reflexive
  CurrencyOrderQuery multi;
  multi.relation = "R";
  multi.pairs = {RequiredPair{1, 0, 1}, RequiredPair{2, 2, 3},
                 RequiredPair{1, 1, 0}};
  queries.push_back(std::move(multi));
  for (auto& q : queries) {
    for (auto& p : q.pairs) {
      p.before = p.before % rel.size();
      p.after = p.after % rel.size();
    }
  }
  return queries;
}

/// One differential pass over `spec`: every decision routed (chase on)
/// must equal the same decision forced onto SAT and the brute-force
/// oracle, and the current-instance enumeration order must be identical
/// across routings and thread counts.
void CheckRoutedEqualsForcedAndOracle(const Specification& spec) {
  bool oracle_consistent = BruteForceConsistent(spec).value();

  // --- CPS, including want_witness one-shots (witness forces SAT; the
  // witness itself must not depend on the routing flag). ---
  std::optional<std::string> witness_1;
  for (int threads : kThreadCounts) {
    SCOPED_TRACE("cps threads=" + std::to_string(threads));
    for (bool routed : {true, false}) {
      CpsOptions cps;
      cps.use_ptime_path_without_constraints = false;
      cps.use_chase_routing = routed;
      cps.num_threads = threads;
      auto outcome = DecideConsistency(spec, cps);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      EXPECT_EQ(outcome->consistent, oracle_consistent)
          << "routed=" << routed;

      cps.want_witness = true;
      auto with_witness = DecideConsistency(spec, cps);
      ASSERT_TRUE(with_witness.ok()) << with_witness.status();
      EXPECT_EQ(with_witness->consistent, oracle_consistent);
      if (with_witness->consistent) {
        ASSERT_TRUE(with_witness->witness.has_value());
        EXPECT_TRUE(
            IsConsistentCompletion(spec, *with_witness->witness).value());
        std::string canonical = CanonicalCompletion(*with_witness->witness);
        if (!witness_1.has_value()) {
          witness_1 = canonical;
        } else {
          EXPECT_EQ(canonical, *witness_1)
              << "witness depends on routing or threads, routed=" << routed;
        }
      }
    }
  }

  // --- COP. ---
  for (const CurrencyOrderQuery& q :
       MakeCopQueries(spec.instance(0).relation())) {
    bool oracle = BruteForceCertainOrder(spec, q).value();
    for (int threads : kThreadCounts) {
      for (bool routed : {true, false}) {
        SCOPED_TRACE("cop threads=" + std::to_string(threads) +
                     " routed=" + std::to_string(routed));
        CopOptions cop;
        cop.use_ptime_path_without_constraints = false;
        cop.use_chase_routing = routed;
        cop.num_threads = threads;
        EXPECT_EQ(IsCertainOrder(spec, q, cop).value(), oracle);
      }
    }
  }

  // --- DCIP per relation. ---
  for (int i = 0; i < spec.num_instances(); ++i) {
    const std::string& rel = spec.instance(i).name();
    bool oracle = BruteForceDeterministic(spec, rel).value();
    for (int threads : kThreadCounts) {
      for (bool routed : {true, false}) {
        SCOPED_TRACE("dcip " + rel + " threads=" + std::to_string(threads) +
                     " routed=" + std::to_string(routed));
        DcipOptions dcip;
        dcip.use_ptime_path_without_constraints = false;
        dcip.use_chase_routing = routed;
        dcip.num_threads = threads;
        EXPECT_EQ(IsDeterministicForRelation(spec, rel, dcip).value(),
                  oracle);
      }
    }
  }

  // --- Current-instance enumeration: count AND exact order, identical
  // across routings and thread counts. ---
  std::optional<std::vector<std::string>> order_1;
  std::optional<int64_t> count_1;
  for (int threads : kThreadCounts) {
    for (bool routed : {true, false}) {
      SCOPED_TRACE("enum threads=" + std::to_string(threads) +
                   " routed=" + std::to_string(routed));
      CcqaOptions ccqa;
      ccqa.use_chase_routing = routed;
      ccqa.num_threads = threads;
      std::vector<std::string> order;
      auto count = ForEachCurrentInstance(
          spec, ccqa, [&](const query::Database& db) {
            order.push_back(CanonicalDb(db));
            return true;
          });
      ASSERT_TRUE(count.ok()) << count.status();
      if (!order_1.has_value()) {
        order_1 = order;
        count_1 = *count;
      } else {
        EXPECT_EQ(*count, *count_1);
        EXPECT_EQ(order, *order_1)
            << "enumeration order depends on routing or threads";
      }
    }
  }

  // --- CCQA answer sets and membership, with and without the SP fast
  // path (the routed SP path must agree with the forced merged-SAT
  // blocking loop AND the oracle). ---
  query::Query q = query::ParseQuery("Q(x) := EXISTS y: R('e0', x, y)").value();
  auto oracle_answers = BruteForceCertainAnswers(spec, q);
  for (bool sp : {true, false}) {
    for (bool routed : {true, false}) {
      SCOPED_TRACE("ccqa sp=" + std::to_string(sp) +
                   " routed=" + std::to_string(routed));
      CcqaOptions ccqa;
      ccqa.use_sp_fast_path = sp;
      ccqa.use_chase_routing = routed;
      auto answers = CertainCurrentAnswers(spec, q, ccqa);
      if (!oracle_answers.ok()) {
        EXPECT_EQ(answers.status().code(), oracle_answers.status().code());
      } else {
        ASSERT_TRUE(answers.ok()) << answers.status();
        EXPECT_EQ(*answers, *oracle_answers);
      }
      for (int k = 0; k < 4; ++k) {
        Tuple t({Value(k)});
        auto member = IsCertainCurrentAnswer(spec, q, t, ccqa);
        ASSERT_TRUE(member.ok()) << member.status();
        bool oracle_member =
            !oracle_answers.ok() || oracle_answers->count(t) > 0;
        EXPECT_EQ(*member, oracle_member) << "candidate " << k;
      }
    }
  }
}

class ChaseRoutingEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ChaseRoutingEquivalence, RoutedEqualsForcedSatAndOracle) {
  // Fractions: 0 = every component constrained (routing must degrade to
  // pure SAT), 0.5 = mixed routing inside one solve, 1 = every component
  // chase-eligible with zero-grounding constraints still present; plus a
  // literally constraint-free draw.
  struct Variant {
    bool with_copy;
    bool with_constraints;
    double free_fraction;
  };
  const Variant variants[] = {
      {false, true, 0.0}, {true, true, 0.0},  {false, true, 0.5},
      {true, true, 0.5},  {false, true, 1.0}, {true, true, 1.0},
      {true, false, 0.0},
  };
  for (size_t v = 0; v < sizeof(variants) / sizeof(variants[0]); ++v) {
    Specification spec =
        MakeRandomSpec(GetParam() * 1621 + static_cast<unsigned>(v),
                       variants[v].with_copy, variants[v].with_constraints,
                       variants[v].free_fraction);
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " variant=" + std::to_string(v));
    CheckRoutedEqualsForcedAndOracle(spec);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ChaseRoutingEquivalence,
                         ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Sessions: routed and forced sessions over the same specification must
// give element-wise equal batch answers across random accepted/rejected
// Mutate rounds, for every thread count.

std::vector<TupleEdit> MakeRandomEdits(const Specification& spec,
                                       std::mt19937& rng) {
  auto rnd = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  const Relation& r = spec.instance(0).relation();
  TupleId t = rnd(0, r.size() - 1);
  switch (rnd(0, 3)) {
    case 0: {  // no-op rewrite
      AttrIndex a = rnd(0, r.schema().arity() - 1);
      return {TupleEdit{0, t, a, r.tuple(t).at(a)}};
    }
    case 1:  // free-attribute edit
      return {TupleEdit{0, t, 2, Value(rnd(0, 3))}};
    case 2: {  // EID move; may be rejected
      const char* eids[] = {"e0", "e1", "e2"};
      return {TupleEdit{0, t, 0, Value(eids[rnd(0, 2)])}};
    }
    default: {  // coordinated A edit keeping copy conditions intact
      Value v(rnd(0, 3));
      std::vector<TupleEdit> edits = {TupleEdit{0, t, 1, v}};
      for (const CopyEdge& edge : spec.copy_edges()) {
        for (const auto& [tgt, src] : edge.fn.mapping()) {
          if (src == t) edits.push_back(TupleEdit{edge.target_instance, tgt, 1, v});
        }
      }
      return edits;
    }
  }
}

void CheckSessionsAgree(serve::CurrencySession* routed,
                        serve::CurrencySession* forced) {
  const Specification& spec = routed->spec();
  {
    auto a = routed->CpsCheck();
    auto b = forced->CpsCheck();
    ASSERT_TRUE(a.ok() && b.ok()) << a.status() << " " << b.status();
    EXPECT_EQ(*a, *b) << "CPS";
  }
  {
    std::vector<CurrencyOrderQuery> queries =
        MakeCopQueries(spec.instance(0).relation());
    auto a = routed->CopBatch(queries);
    auto b = forced->CopBatch(queries);
    ASSERT_TRUE(a.ok() && b.ok()) << a.status() << " " << b.status();
    EXPECT_EQ(*a, *b) << "COP";
  }
  {
    std::vector<std::string> relations;
    for (int i = 0; i < spec.num_instances(); ++i) {
      relations.push_back(spec.instance(i).name());
    }
    auto a = routed->DcipBatch(relations);
    auto b = forced->DcipBatch(relations);
    ASSERT_TRUE(a.ok() && b.ok()) << a.status() << " " << b.status();
    EXPECT_EQ(*a, *b) << "DCIP";
  }
  {
    query::Query q =
        query::ParseQuery("Q(x) := EXISTS y: R('e0', x, y)").value();
    std::vector<serve::CcqaRequest> requests;
    requests.push_back(serve::CcqaRequest{q, std::nullopt});
    for (int k = 0; k < 4; ++k) {
      requests.push_back(serve::CcqaRequest{q, Tuple({Value(k)})});
    }
    auto a = routed->CcqaBatch(requests);
    auto b = forced->CcqaBatch(requests);
    ASSERT_TRUE(a.ok() && b.ok()) << a.status() << " " << b.status();
    ASSERT_EQ(a->size(), b->size());
    for (size_t i = 0; i < a->size(); ++i) {
      SCOPED_TRACE("ccqa request " + std::to_string(i));
      EXPECT_EQ((*a)[i].vacuous, (*b)[i].vacuous);
      EXPECT_EQ((*a)[i].is_certain, (*b)[i].is_certain);
      EXPECT_EQ((*a)[i].answers, (*b)[i].answers);
    }
  }
}

class ChaseRoutingSession : public ::testing::TestWithParam<int> {};

TEST_P(ChaseRoutingSession, RoutedSessionMatchesForcedAcrossMutations) {
  for (int variant = 0; variant < 4; ++variant) {
    bool with_copy = variant & 1;
    double free_fraction = variant >= 2 ? 0.5 : 1.0;
    Specification spec = MakeRandomSpec(GetParam() * 2341 + variant,
                                        with_copy, true, free_fraction);
    for (int threads : kThreadCounts) {
      SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                   " variant=" + std::to_string(variant) +
                   " threads=" + std::to_string(threads));
      serve::SessionOptions routed_opts;
      routed_opts.num_threads = threads;
      serve::SessionOptions forced_opts = routed_opts;
      forced_opts.use_chase_routing = false;
      auto routed = serve::CurrencySession::Create(spec, routed_opts);
      auto forced = serve::CurrencySession::Create(spec, forced_opts);
      ASSERT_TRUE(routed.ok() && forced.ok())
          << routed.status() << " " << forced.status();
      CheckSessionsAgree(routed->get(), forced->get());
      if (::testing::Test::HasFatalFailure()) return;
      std::mt19937 rng(GetParam() * 4099 + variant * 31 + threads);
      for (int round = 0; round < 2; ++round) {
        SCOPED_TRACE("round=" + std::to_string(round));
        std::vector<TupleEdit> edits =
            MakeRandomEdits((*routed)->spec(), rng);
        Status a = (*routed)->Mutate(edits);
        Status b = (*forced)->Mutate(edits);
        EXPECT_EQ(a.code(), b.code());
        if (!a.ok()) {
          EXPECT_EQ(a.code(), StatusCode::kFailedPrecondition);
        }
        CheckSessionsAgree(routed->get(), forced->get());
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ChaseRoutingSession, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// Metamorphic classification properties.

/// R(A, B) with groups e0 (A values distinct — a gated "A decides
/// currency" constraint grounds) and e1 (A values equal — the same
/// constraint text gated on e1 grounds nowhere).
Specification MakeMixedSpec(bool constrain_e0) {
  Specification spec;
  Schema rs = Schema::Make("R", {"A", "B"}).value();
  Relation r(rs);
  auto add = [&](const char* eid, int a, int b) {
    auto id = r.AppendValues({Value(eid), Value(a), Value(b)});
    (void)id;
  };
  add("e0", 1, 10);  // 0
  add("e0", 2, 20);  // 1
  add("e1", 5, 30);  // 2
  add("e1", 5, 40);  // 3
  auto st = spec.AddInstance(core::TemporalInstance(std::move(r)));
  (void)st;
  if (constrain_e0) {
    auto cst = spec.AddConstraintText(
        "FORALL s, t IN R: s.EID = 'e0' AND s.A > t.A -> t PREC[A] s");
    (void)cst;
  }
  return spec;
}

TEST(ChaseClassification, GroundedConstraintFlipsExactlyItsComponent) {
  Specification base = MakeMixedSpec(false);
  Specification constrained = MakeMixedSpec(true);
  auto d0 = Decomposition::Build(base);
  auto d1 = Decomposition::Build(constrained);
  ASSERT_TRUE(d0.ok() && d1.ok());
  int e0_before = d0->ComponentOf(0, Value("e0"));
  int e1_before = d0->ComponentOf(0, Value("e1"));
  int e0_after = d1->ComponentOf(0, Value("e0"));
  int e1_after = d1->ComponentOf(0, Value("e1"));
  // Without constraints both components are chase-eligible and (being
  // singleton, uncoupled groups) chase-enumerable.
  EXPECT_TRUE(d0->chase_eligible(e0_before));
  EXPECT_TRUE(d0->chase_eligible(e1_before));
  EXPECT_TRUE(d0->chase_enumerable(e0_before));
  EXPECT_TRUE(d0->chase_enumerable(e1_before));
  // The grounded constraint flips exactly e0's component to SAT and
  // changes exactly e0's fingerprint.
  EXPECT_FALSE(d1->chase_eligible(e0_after));
  EXPECT_FALSE(d1->chase_enumerable(e0_after));
  EXPECT_TRUE(d1->chase_eligible(e1_after));
  EXPECT_NE(d0->fingerprint(e0_before), d1->fingerprint(e0_after));
  EXPECT_EQ(d0->fingerprint(e1_before), d1->fingerprint(e1_after));
}

TEST(ChaseClassification, ZeroGroundingConstraintIsInert) {
  Specification base = MakeMixedSpec(true);
  Specification with_inert = MakeMixedSpec(true);
  // e1's A values are equal, so this constraint grounds nowhere; a
  // constraint gated on a nonexistent entity is equally inert.
  ASSERT_TRUE(with_inert
                  .AddConstraintText("FORALL s, t IN R: s.EID = 'e1' AND "
                                     "s.A > t.A -> t PREC[A] s")
                  .ok());
  ASSERT_TRUE(with_inert
                  .AddConstraintText("FORALL s, t IN R: s.EID = 'nobody' AND "
                                     "s.A > t.A -> t PREC[B] s")
                  .ok());
  auto d0 = Decomposition::Build(base);
  auto d1 = Decomposition::Build(with_inert);
  ASSERT_TRUE(d0.ok() && d1.ok());
  for (const Value& eid : {Value("e0"), Value("e1")}) {
    int before = d0->ComponentOf(0, eid);
    int after = d1->ComponentOf(0, eid);
    EXPECT_EQ(d0->chase_eligible(before), d1->chase_eligible(after))
        << eid.ToString();
    EXPECT_EQ(d0->chase_enumerable(before), d1->chase_enumerable(after))
        << eid.ToString();
    EXPECT_EQ(d0->fingerprint(before), d1->fingerprint(after))
        << eid.ToString();
  }
}

TEST(ChaseClassification, SingleSourceCopyBucketIsInert) {
  // A second relation copying from ONE source tuple of e1: the bucket has
  // a single distinct source, so it emits no clause, no coupling, and no
  // chase derivation — e1's component must keep its classification and
  // fingerprint (the new R2 group forms its own component).
  Specification base = MakeMixedSpec(true);
  Specification with_copy = MakeMixedSpec(true);
  {
    Schema r2s = Schema::Make("R2", {"C"}).value();
    Relation r2(r2s);
    auto id = r2.AppendValues({Value("f0"), Value(5)});  // copies e1's A
    copy::CopySignature sig;
    sig.target_relation = "R2";
    sig.target_attrs = {"C"};
    sig.source_relation = "R";
    sig.source_attrs = {"A"};
    copy::CopyFunction fn(sig);
    auto m = fn.Map(id.value(), 2);
    (void)m;
    ASSERT_TRUE(with_copy.AddInstance(core::TemporalInstance(std::move(r2)))
                    .ok());
    ASSERT_TRUE(with_copy.AddCopyFunction(std::move(fn)).ok());
  }
  auto d0 = Decomposition::Build(base);
  auto d1 = Decomposition::Build(with_copy);
  ASSERT_TRUE(d0.ok() && d1.ok());
  for (const Value& eid : {Value("e0"), Value("e1")}) {
    int before = d0->ComponentOf(0, eid);
    int after = d1->ComponentOf(0, eid);
    EXPECT_EQ(d0->chase_eligible(before), d1->chase_eligible(after))
        << eid.ToString();
    EXPECT_EQ(d0->chase_enumerable(before), d1->chase_enumerable(after))
        << eid.ToString();
    EXPECT_EQ(d0->fingerprint(before), d1->fingerprint(after))
        << eid.ToString();
  }
  // The R2 group itself is a fresh chase-enumerable singleton.
  int r2c = d1->ComponentOf(1, Value("f0"));
  ASSERT_GE(r2c, 0);
  EXPECT_TRUE(d1->chase_eligible(r2c));
  EXPECT_TRUE(d1->chase_enumerable(r2c));
}

TEST(ChaseClassification, CouplingBucketDisablesEnumerationOnly) {
  // R2's group copies from TWO distinct source tuples of e1: the bucket
  // couples the groups into one component.  With no grounded constraint
  // the merged component stays chase-ELIGIBLE, but attribute independence
  // is gone, so it must not be chase-ENUMERABLE.
  Specification spec = MakeMixedSpec(false);
  {
    Schema r2s = Schema::Make("R2", {"C"}).value();
    Relation r2(r2s);
    auto i1 = r2.AppendValues({Value("f0"), Value(5)});
    auto i2 = r2.AppendValues({Value("f0"), Value(5)});
    copy::CopySignature sig;
    sig.target_relation = "R2";
    sig.target_attrs = {"C"};
    sig.source_relation = "R";
    sig.source_attrs = {"A"};
    copy::CopyFunction fn(sig);
    auto m1 = fn.Map(i1.value(), 2);
    auto m2 = fn.Map(i2.value(), 3);
    (void)m1;
    (void)m2;
    ASSERT_TRUE(spec.AddInstance(core::TemporalInstance(std::move(r2))).ok());
    ASSERT_TRUE(spec.AddCopyFunction(std::move(fn)).ok());
  }
  auto d = Decomposition::Build(spec);
  ASSERT_TRUE(d.ok());
  int coupled = d->ComponentOf(0, Value("e1"));
  ASSERT_EQ(coupled, d->ComponentOf(1, Value("f0")));
  EXPECT_TRUE(d->chase_eligible(coupled));
  EXPECT_FALSE(d->chase_enumerable(coupled));
  // e0 is untouched by the bucket: still enumerable.
  int e0 = d->ComponentOf(0, Value("e0"));
  EXPECT_TRUE(d->chase_enumerable(e0));
}

// ---------------------------------------------------------------------------
// Work counters and cache observability.

TEST(ChaseCounters, ComponentChaseCountsWorkAndSkipsEncoders) {
  // e1 coupled with R2 through a two-source bucket, plus an initial order
  // on e1's A so copy propagation actually derives pairs in R2.
  Specification spec;
  {
    Schema rs = Schema::Make("R", {"A", "B"}).value();
    Relation r(rs);
    (void)r.AppendValues({Value("e0"), Value(1), Value(10)});
    (void)r.AppendValues({Value("e0"), Value(2), Value(20)});
    (void)r.AppendValues({Value("e1"), Value(5), Value(30)});
    (void)r.AppendValues({Value("e1"), Value(5), Value(40)});
    TemporalInstance inst(std::move(r));
    ASSERT_TRUE(inst.AddOrder(1, 2, 3).ok());  // e1: tuple 2 ≺ tuple 3 on A
    ASSERT_TRUE(spec.AddInstance(std::move(inst)).ok());

    Schema r2s = Schema::Make("R2", {"C"}).value();
    Relation r2(r2s);
    auto i1 = r2.AppendValues({Value("f0"), Value(5)});
    auto i2 = r2.AppendValues({Value("f0"), Value(5)});
    copy::CopySignature sig;
    sig.target_relation = "R2";
    sig.target_attrs = {"C"};
    sig.source_relation = "R";
    sig.source_attrs = {"A"};
    copy::CopyFunction fn(sig);
    auto m1 = fn.Map(i1.value(), 2);
    auto m2 = fn.Map(i2.value(), 3);
    (void)m1;
    (void)m2;
    ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(r2))).ok());
    ASSERT_TRUE(spec.AddCopyFunction(std::move(fn)).ok());
  }
  Encoder::Options enc;
  enc.define_is_last = true;
  auto decomposed = DecomposedEncoder::Build(spec, enc, /*use_chase_routing=*/true);
  ASSERT_TRUE(decomposed.ok()) << decomposed.status();
  ASSERT_TRUE((*decomposed)->chase_routing());
  ASSERT_TRUE((*decomposed)->SolveAll({}, nullptr).value());
  int coupled = (*decomposed)->decomposition().ComponentOf(0, Value("e1"));
  auto chase = (*decomposed)->ComponentChaseFixpoint(coupled);
  ASSERT_TRUE(chase.ok()) << chase.status();
  EXPECT_TRUE((*chase)->consistent);
  EXPECT_GE((*chase)->passes, 1);
  EXPECT_GT((*chase)->edges_expanded, 0) << "copy pairs were scanned";
  EXPECT_GT((*chase)->derived_pairs, 0)
      << "the initial order must propagate into R2";
  // Routed SolveAll never builds encoders for chase-eligible components.
  for (int c = 0; c < (*decomposed)->num_components(); ++c) {
    if ((*decomposed)->decomposition().chase_eligible(c)) {
      EXPECT_EQ((*decomposed)->TakeComponentEncoder(c), nullptr)
          << "component " << c;
    }
  }
  // The whole-specification chase mirrors the counters.
  auto whole = ChaseCopyOrders(spec);
  ASSERT_TRUE(whole.ok());
  EXPECT_GT(whole->edges_expanded, 0);
  EXPECT_GT(whole->derived_pairs, 0);
}

TEST(ChaseCounters, SessionReusesFixpointsAcrossMutate) {
  // Mixed specification: e0 constrained (SAT), e1 free (chase).
  Specification spec = MakeMixedSpec(true);
  serve::SessionOptions options;
  auto session = serve::CurrencySession::Create(std::move(spec), options);
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE((*session)->CpsCheck().value());
  int64_t chase_solves = (*session)->stats().chase_solves;
  EXPECT_EQ(chase_solves, 1) << "exactly e1's component chases";
  EXPECT_EQ((*session)->stats().base_solves, 1) << "exactly e0's solves SAT";

  // A no-op edit keeps every fingerprint: the chase fixpoint is adopted,
  // nothing re-chases, and the next CPS is a pure cache read.
  const Value a0 = (*session)->spec().instance(0).relation().tuple(0).at(1);
  ASSERT_TRUE((*session)->Mutate({TupleEdit{0, 0, 1, a0}}).ok());
  EXPECT_EQ((*session)->stats().last_chase_reused, 1);
  EXPECT_EQ((*session)->stats().last_chase_rechased, 0);
  ASSERT_TRUE((*session)->CpsCheck().value());
  EXPECT_EQ((*session)->stats().chase_solves, chase_solves)
      << "adopted fixpoint must not re-chase";

  // Editing e1's content invalidates exactly its fixpoint.
  ASSERT_TRUE((*session)->Mutate({TupleEdit{0, 2, 2, Value(99)}}).ok());
  EXPECT_EQ((*session)->stats().last_chase_reused, 0);
  EXPECT_EQ((*session)->stats().last_chase_rechased, 1);
  EXPECT_EQ((*session)->stats().last_reused, 1) << "e0's encoder survives";
  ASSERT_TRUE((*session)->CpsCheck().value());
  EXPECT_EQ((*session)->stats().chase_solves, chase_solves + 1)
      << "exactly the invalidated component re-chases";

  // Editing e0's content leaves the fixpoint cache untouched.
  ASSERT_TRUE((*session)->Mutate({TupleEdit{0, 0, 2, Value(77)}}).ok());
  EXPECT_EQ((*session)->stats().last_chase_reused, 1);
  EXPECT_EQ((*session)->stats().last_chase_rechased, 0);
}

}  // namespace
}  // namespace currency::core
