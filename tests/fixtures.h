// Shared test fixtures: the paper's running examples (Fig. 1 Emp/Dept with
// ϕ1–ϕ4 and ρ; Fig. 3 Mgr with ϕ5) and a random-specification generator
// for property tests against the brute-force oracle.
//
// Tuple ids follow the paper: Emp s1..s5 = TupleIds 0..4, Dept t1..t4 =
// TupleIds 0..3, Mgr s'1..s'3 = TupleIds 0..2.
//
// Two deliberate additions relative to the paper's literal text, both
// needed for the claims of its own examples to hold (documented in
// DESIGN.md §6):
//  * ϕ2b: the single→married rule also orders `status` itself (Example 3.3
//    claims S0 deterministic for Emp, which needs the status attribute
//    determined);
//  * ϕ5 is instantiated on Emp as well as Mgr (Example 4.1's claim that
//    copying s'3 makes "Smith" the certain answer needs the
//    married→divorced rule to apply inside Emp).

#ifndef CURRENCY_TESTS_FIXTURES_H_
#define CURRENCY_TESTS_FIXTURES_H_

#include <random>
#include <string>

#include "src/core/specification.h"
#include "src/query/parser.h"

namespace currency::testing {

inline Schema EmpSchema() {
  return Schema::Make("Emp", {"FN", "LN", "address", "salary", "status"})
      .value();
}

inline Schema DeptSchema() {
  return Schema::Make("Dept", {"mgrFN", "mgrLN", "mgrAddr", "budget"},
                      "dname")
      .value();
}

inline Schema MgrSchema() {
  return Schema::Make("Mgr", {"FN", "LN", "address", "salary", "status"})
      .value();
}

/// Emp of Fig. 1 (s4 and s5 are DISTINCT entities, per Example 2.3).
inline Relation MakeEmpRelation() {
  Relation emp(EmpSchema());
  auto add = [&](const char* eid, const char* fn, const char* ln,
                 const char* addr, int salary, const char* status) {
    auto r = emp.AppendValues({Value(eid), Value(fn), Value(ln), Value(addr),
                               Value(salary), Value(status)});
    (void)r;
  };
  add("Mary", "Mary", "Smith", "2 Small St", 50, "single");     // s1 = 0
  add("Mary", "Mary", "Dupont", "10 Elm Ave", 50, "married");   // s2 = 1
  add("Mary", "Mary", "Dupont", "6 Main St", 80, "married");    // s3 = 2
  add("Bob", "Bob", "Luth", "8 Cowan St", 80, "married");       // s4 = 3
  add("Robert", "Robert", "Luth", "8 Drum St", 55, "married");  // s5 = 4
  return emp;
}

/// Dept of Fig. 1 (all four tuples belong to entity R&D).
inline Relation MakeDeptRelation() {
  Relation dept(DeptSchema());
  auto add = [&](const char* fn, const char* ln, const char* addr,
                 int budget) {
    auto r = dept.AppendValues(
        {Value("RnD"), Value(fn), Value(ln), Value(addr), Value(budget)});
    (void)r;
  };
  add("Mary", "Smith", "2 Small St", 6500);  // t1 = 0
  add("Mary", "Smith", "2 Small St", 7000);  // t2 = 1
  add("Mary", "Dupont", "6 Main St", 6000);  // t3 = 2
  add("Ed", "Luth", "8 Cowan St", 6000);     // t4 = 3
  return dept;
}

/// Mgr of Fig. 3 (all three tuples are Mary).
inline Relation MakeMgrRelation() {
  Relation mgr(MgrSchema());
  auto add = [&](const char* fn, const char* ln, const char* addr, int salary,
                 const char* status) {
    auto r = mgr.AppendValues({Value("Mary"), Value(fn), Value(ln),
                               Value(addr), Value(salary), Value(status)});
    (void)r;
  };
  add("Mary", "Dupont", "6 Main St", 60, "married");   // s'1 = 0
  add("Mary", "Dupont", "6 Main St", 80, "married");   // s'2 = 1
  add("Mary", "Smith", "2 Small St", 80, "divorced");  // s'3 = 2
  return mgr;
}

/// The copy function ρ of Example 2.2: Dept[mgrAddr] ⇐ Emp[address] with
/// ρ(t1)=s1, ρ(t2)=s1, ρ(t3)=s3, ρ(t4)=s4.
inline copy::CopyFunction MakeRho() {
  copy::CopySignature sig;
  sig.target_relation = "Dept";
  sig.target_attrs = {"mgrAddr"};
  sig.source_relation = "Emp";
  sig.source_attrs = {"address"};
  copy::CopyFunction rho(sig);
  auto s1 = rho.Map(0, 0);
  auto s2 = rho.Map(1, 0);
  auto s3 = rho.Map(2, 2);
  auto s4 = rho.Map(3, 3);
  (void)s1;
  (void)s2;
  (void)s3;
  (void)s4;
  return rho;
}

/// The specification S0 of Example 2.3: Emp + Dept, ϕ1–ϕ4 (+ ϕ2b), ρ.
inline core::Specification MakeS0() {
  core::Specification spec;
  auto check = [](const Status& s) {
    if (!s.ok()) abort();
  };
  check(spec.AddInstance(core::TemporalInstance(MakeEmpRelation())));
  check(spec.AddInstance(core::TemporalInstance(MakeDeptRelation())));
  check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s"));  // ϕ1
  check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[LN] s"));  // ϕ2
  check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[status] s"));  // ϕ2b (see file comment)
  check(spec.AddConstraintText(
      "FORALL s, t IN Emp: t PREC[salary] s -> t PREC[address] s"));  // ϕ3
  check(spec.AddConstraintText(
      "FORALL s, t IN Dept: t PREC[mgrAddr] s -> t PREC[budget] s"));  // ϕ4
  check(spec.AddCopyFunction(MakeRho()));
  return spec;
}

/// The specification S1 of Example 4.1: Emp + Mgr, ϕ1–ϕ3 (+ ϕ2b), ϕ5 on
/// Mgr and on Emp, and ρ mapping Emp s3 ⇐ Mgr s'2 over all attributes.
inline core::Specification MakeS1() {
  core::Specification spec;
  auto check = [](const Status& s) {
    if (!s.ok()) abort();
  };
  check(spec.AddInstance(core::TemporalInstance(MakeEmpRelation())));
  check(spec.AddInstance(core::TemporalInstance(MakeMgrRelation())));
  check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s"));  // ϕ1
  check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[LN] s"));  // ϕ2
  check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[status] s"));  // ϕ2b
  check(spec.AddConstraintText(
      "FORALL s, t IN Emp: t PREC[salary] s -> t PREC[address] s"));  // ϕ3
  check(spec.AddConstraintText(
      "FORALL s, t IN Mgr: s.status = 'divorced' AND t.status = 'married' "
      "-> t PREC[LN] s"));  // ϕ5 on Mgr
  check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'divorced' AND t.status = 'married' "
      "-> t PREC[LN] s"));  // ϕ5 on Emp (see file comment)

  copy::CopySignature sig;
  sig.target_relation = "Emp";
  sig.target_attrs = {"FN", "LN", "address", "salary", "status"};
  sig.source_relation = "Mgr";
  sig.source_attrs = {"FN", "LN", "address", "salary", "status"};
  copy::CopyFunction rho(sig);
  auto m = rho.Map(2, 1);  // ρ(s3) = s'2
  (void)m;
  check(spec.AddCopyFunction(std::move(rho)));
  return spec;
}

/// A trimmed S0 for comparisons against the brute-force oracle: the
/// unconstrained attributes (FN, mgrFN, mgrLN) are dropped so the number
/// of consistent completions stays exhaustively enumerable.  All paper
/// claims about Q1–Q4 are preserved (none touches a dropped attribute).
inline core::Specification MakeS0Trimmed() {
  core::Specification spec;
  auto check = [](const Status& s) {
    if (!s.ok()) abort();
  };
  Schema emp_schema =
      Schema::Make("Emp", {"LN", "address", "salary", "status"}).value();
  Relation emp(emp_schema);
  auto adde = [&](const char* eid, const char* ln, const char* addr,
                  int salary, const char* status) {
    auto r = emp.AppendValues(
        {Value(eid), Value(ln), Value(addr), Value(salary), Value(status)});
    (void)r;
  };
  adde("Mary", "Smith", "2 Small St", 50, "single");
  adde("Mary", "Dupont", "10 Elm Ave", 50, "married");
  adde("Mary", "Dupont", "6 Main St", 80, "married");
  adde("Bob", "Luth", "8 Cowan St", 80, "married");
  adde("Robert", "Luth", "8 Drum St", 55, "married");
  check(spec.AddInstance(core::TemporalInstance(std::move(emp))));

  Schema dept_schema =
      Schema::Make("Dept", {"mgrAddr", "budget"}, "dname").value();
  Relation dept(dept_schema);
  auto addd = [&](const char* addr, int budget) {
    auto r = dept.AppendValues({Value("RnD"), Value(addr), Value(budget)});
    (void)r;
  };
  addd("2 Small St", 6500);
  addd("2 Small St", 7000);
  addd("6 Main St", 6000);
  addd("8 Cowan St", 6000);
  check(spec.AddInstance(core::TemporalInstance(std::move(dept))));

  check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s"));
  check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[LN] s"));
  check(spec.AddConstraintText(
      "FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single' "
      "-> t PREC[status] s"));
  check(spec.AddConstraintText(
      "FORALL s, t IN Emp: t PREC[salary] s -> t PREC[address] s"));
  check(spec.AddConstraintText(
      "FORALL s, t IN Dept: t PREC[mgrAddr] s -> t PREC[budget] s"));

  copy::CopySignature sig;
  sig.target_relation = "Dept";
  sig.target_attrs = {"mgrAddr"};
  sig.source_relation = "Emp";
  sig.source_attrs = {"address"};
  copy::CopyFunction rho(sig);
  auto m1 = rho.Map(0, 0);
  auto m2 = rho.Map(1, 0);
  auto m3 = rho.Map(2, 2);
  auto m4 = rho.Map(3, 3);
  (void)m1;
  (void)m2;
  (void)m3;
  (void)m4;
  check(spec.AddCopyFunction(std::move(rho)));
  return spec;
}

/// Q1–Q4 against the trimmed schemas.
inline query::Query MakeQ1Trimmed() {
  return query::ParseQuery(
             "Q1(s) := EXISTS ln, a, st: Emp('Mary', ln, a, s, st)")
      .value();
}
inline query::Query MakeQ2Trimmed() {
  return query::ParseQuery(
             "Q2(ln) := EXISTS a, s, st: Emp('Mary', ln, a, s, st)")
      .value();
}
inline query::Query MakeQ3Trimmed() {
  return query::ParseQuery(
             "Q3(a) := EXISTS ln, s, st: Emp('Mary', ln, a, s, st)")
      .value();
}
inline query::Query MakeQ4Trimmed() {
  return query::ParseQuery("Q4(b) := EXISTS a: Dept('RnD', a, b)").value();
}

/// Queries Q1–Q4 of Example 1.1 in the DSL.
inline query::Query MakeQ1() {
  return query::ParseQuery(
             "Q1(s) := EXISTS fn, ln, a, st: Emp('Mary', fn, ln, a, s, st)")
      .value();
}
inline query::Query MakeQ2() {
  return query::ParseQuery(
             "Q2(ln) := EXISTS fn, a, s, st: Emp('Mary', fn, ln, a, s, st)")
      .value();
}
inline query::Query MakeQ3() {
  return query::ParseQuery(
             "Q3(a) := EXISTS fn, ln, s, st: Emp('Mary', fn, ln, a, s, st)")
      .value();
}
inline query::Query MakeQ4() {
  return query::ParseQuery(
             "Q4(b) := EXISTS fn, ln, a: Dept('RnD', fn, ln, a, b)")
      .value();
}

/// A small random specification for oracle-vs-solver property tests:
/// one or two relations, 2 entities with groups of 2–3 tuples, random
/// initial orders, a random subset of a constraint pool, and (optionally)
/// a copy function R2[C] ⇐ R[A] whose copying condition holds by
/// construction.  Sized so the brute-force oracle stays fast.
///
/// `constraint_free_fraction` controls chase-routing coverage: each
/// entity group is declared constraint-free with that probability, and
/// every selected pool constraint is then emitted once per REMAINING
/// group, gated on that group's entity (`s.EID = 'e<g>' AND ...`), so
/// the constraint grounds only inside constrained groups.  0 (the
/// default) keeps the historical ungated constraints — and the exact
/// historical RNG stream, so existing seeds reproduce byte-identical
/// specifications.  1 makes every group constraint-free while still
/// exercising the zero-grounding constraint texts.
inline core::Specification MakeRandomSpec(
    unsigned seed, bool with_copy, bool with_constraints,
    double constraint_free_fraction = 0.0) {
  std::mt19937 rng(seed);
  auto coin = [&](int denom) {
    return std::uniform_int_distribution<int>(0, denom - 1)(rng) == 0;
  };
  auto rnd = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };

  core::Specification spec;
  Schema rs = Schema::Make("R", {"A", "B"}).value();
  Relation r(rs);
  int groups = 2;
  std::vector<std::vector<TupleId>> members(groups);
  for (int g = 0; g < groups; ++g) {
    int size = rnd(2, 3);
    for (int k = 0; k < size; ++k) {
      auto id = r.AppendValues({Value("e" + std::to_string(g)),
                                Value(rnd(0, 3)), Value(rnd(0, 3))});
      members[g].push_back(id.value());
    }
  }
  core::TemporalInstance inst(std::move(r));
  // Random initial orders.
  for (int g = 0; g < groups; ++g) {
    for (AttrIndex a = 1; a <= 2; ++a) {
      if (coin(2)) {
        TupleId u = members[g][rnd(0, static_cast<int>(members[g].size()) - 1)];
        TupleId v = members[g][rnd(0, static_cast<int>(members[g].size()) - 1)];
        if (u != v) {
          auto st = inst.AddOrder(a, u, v);
          (void)st;  // cycles silently skipped
        }
      }
    }
  }
  const Relation source_snapshot = inst.relation();
  auto st = spec.AddInstance(std::move(inst));
  (void)st;

  if (with_constraints) {
    // Decide per group whether it stays constraint-free (chase-eligible).
    // The draws happen only when the knob is on, so fraction == 0 leaves
    // the historical RNG stream untouched.
    std::vector<bool> constrained(groups, true);
    if (constraint_free_fraction > 0.0) {
      std::uniform_real_distribution<double> u01(0.0, 1.0);
      for (int g = 0; g < groups; ++g) {
        constrained[g] = u01(rng) >= constraint_free_fraction;
      }
    }
    const char* pool[] = {
        "FORALL s, t IN R: s.A > t.A -> t PREC[A] s",
        "FORALL s, t IN R: t PREC[A] s -> t PREC[B] s",
        "FORALL s, t IN R: s.A > t.A -> s PREC[B] t",
        "FORALL s, t IN R: s.B != t.B AND t PREC[B] s -> t PREC[A] s",
        "FORALL s, t IN R: s.A = t.A AND s.B > t.B -> t PREC[B] s",
    };
    for (const char* text : pool) {
      if (coin(3)) {
        if (constraint_free_fraction <= 0.0) {
          auto cst = spec.AddConstraintText(text);
          (void)cst;
          continue;
        }
        // Gate the constraint on each constrained group's entity so it
        // cannot ground inside the constraint-free groups.  When every
        // group is free, gate on a nonexistent entity instead: the spec
        // still carries a denial constraint (the whole-spec PTIME paths
        // stay off) but it grounds nowhere, so every component remains
        // chase-eligible.
        std::string body(text);
        size_t colon = body.find(": ");
        bool any = false;
        for (int g = 0; g < groups; ++g) {
          if (!constrained[g]) continue;
          std::string gated = body;
          gated.insert(colon + 2,
                       "s.EID = 'e" + std::to_string(g) + "' AND ");
          auto cst = spec.AddConstraintText(gated);
          (void)cst;
          any = true;
        }
        if (!any) {
          std::string gated = body;
          gated.insert(colon + 2, "s.EID = 'none' AND ");
          auto cst = spec.AddConstraintText(gated);
          (void)cst;
        }
      }
    }
  }

  if (with_copy) {
    // R2 copies C from R.A for a random subset of source tuples.
    Schema r2s = Schema::Make("R2", {"C"}).value();
    Relation r2(r2s);
    copy::CopySignature sig;
    sig.target_relation = "R2";
    sig.target_attrs = {"C"};
    sig.source_relation = "R";
    sig.source_attrs = {"A"};
    copy::CopyFunction fn(sig);
    std::vector<std::pair<TupleId, TupleId>> mapping;
    for (TupleId src = 0; src < source_snapshot.size(); ++src) {
      if (coin(2)) {
        auto id = r2.AppendValues(
            {Value("f0"), source_snapshot.tuple(src).at(1)});
        mapping.emplace_back(id.value(), src);
      }
    }
    if (!mapping.empty()) {
      for (auto [t, s] : mapping) {
        auto m = fn.Map(t, s);
        (void)m;
      }
      core::TemporalInstance inst2(std::move(r2));
      auto st2 = spec.AddInstance(std::move(inst2));
      (void)st2;
      auto st3 = spec.AddCopyFunction(std::move(fn));
      (void)st3;
    } else {
      core::TemporalInstance inst2(std::move(r2));
      auto st2 = spec.AddInstance(std::move(inst2));
      (void)st2;
    }
  }
  return spec;
}

}  // namespace currency::testing

#endif  // CURRENCY_TESTS_FIXTURES_H_
