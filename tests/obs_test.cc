// Tests for the observability layer: registry instruments (concurrent
// updates, histogram bucket semantics, label canonicalization and the
// cardinality cap, exposition formats) and request tracing (ring
// overflow, slow log, span attachment rules) — the latter driven by a
// ManualClock so timing assertions are exact.

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/exec/semaphore.h"
#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace currency::obs {
namespace {

// ---------------------------------------------------------------------------
// Instruments under concurrency (the TSan pass exercises these hard).

TEST(ObsMetricsTest, ConcurrentCounterIncrementsSumExactly) {
  Registry registry;
  Counter* counter = registry.GetCounter("currency_test_hits_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), int64_t{kThreads} * kPerThread);
}

TEST(ObsMetricsTest, ConcurrentHistogramObservationsKeepCountAndSum) {
  Registry registry;
  Histogram* h = registry.GetHistogram("currency_test_latency_ns");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (int i = 0; i < kPerThread; ++i) h->Observe(1'000 * (t + 1));
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h->Count(), int64_t{kThreads} * kPerThread);
  int64_t expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) {
    expected_sum += int64_t{kPerThread} * 1'000 * (t + 1);
  }
  EXPECT_EQ(h->Sum(), expected_sum);
  std::vector<int64_t> counts = h->BucketCounts();
  int64_t total = 0;
  for (int64_t c : counts) total += c;
  EXPECT_EQ(total, h->Count());
}

TEST(ObsMetricsTest, ConcurrentGetOrCreateReturnsOneHandle) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> handles(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &handles, t] {
      handles[t] = registry.GetCounter("currency_test_shared_total",
                                       {{"tenant", "a"}});
      handles[t]->Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(handles[0]->Value(), kThreads);
}

TEST(ObsMetricsTest, GaugeUpdateMaxIsAHighWaterMark) {
  Registry registry;
  Gauge* g = registry.GetGauge("currency_test_depth");
  g->UpdateMax(3);
  g->UpdateMax(7);
  g->UpdateMax(5);  // lower: must not regress
  EXPECT_EQ(g->Value(), 7);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([g, t] {
      for (int i = 0; i < 1'000; ++i) g->UpdateMax(t * 1'000 + i);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g->Value(), 7'999);
}

// ---------------------------------------------------------------------------
// Histogram bucket semantics.

TEST(ObsMetricsTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  Registry registry;
  Histogram* h = registry.GetHistogram("currency_test_bounds_ns", {},
                                       {10, 20, 50});
  h->Observe(10);  // == bound: lands IN bucket 10 (Prometheus le semantics)
  h->Observe(11);  // > 10, <= 20
  h->Observe(20);
  h->Observe(50);
  h->Observe(51);  // beyond the last bound: +Inf bucket
  h->Observe(-1);  // below everything: first bucket
  std::vector<int64_t> counts = h->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(counts[0], 2);       // 10, -1
  EXPECT_EQ(counts[1], 2);       // 11, 20
  EXPECT_EQ(counts[2], 1);       // 50
  EXPECT_EQ(counts[3], 1);       // 51
  EXPECT_EQ(h->Count(), 6);
}

TEST(ObsMetricsTest, DefaultLatencyBucketsAre125PerDecade) {
  const std::vector<int64_t>& b = LatencyBucketsNs();
  ASSERT_GE(b.size(), 4u);
  EXPECT_EQ(b[0], 1'000);
  EXPECT_EQ(b[1], 2'000);
  EXPECT_EQ(b[2], 5'000);
  EXPECT_EQ(b.back(), 10'000'000'000);
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
}

TEST(ObsMetricsTest, ApproxQuantileReturnsBucketUpperBound) {
  Registry registry;
  Histogram* h = registry.GetHistogram("currency_test_quantile_ns", {},
                                       {10, 100, 1'000});
  for (int i = 0; i < 99; ++i) h->Observe(5);  // bucket le=10
  h->Observe(500);                             // bucket le=1000
  EXPECT_EQ(h->ApproxQuantile(0.5), 10);
  EXPECT_EQ(h->ApproxQuantile(0.999), 1'000);
  Histogram* empty = registry.GetHistogram("currency_test_empty_ns");
  EXPECT_EQ(empty->ApproxQuantile(0.5), 0);
}

// ---------------------------------------------------------------------------
// Label handling and the cardinality cap.

TEST(ObsMetricsTest, LabelOrderDoesNotSplitSeries) {
  Registry registry;
  Counter* a = registry.GetCounter(
      "currency_test_labels_total", {{"tenant", "t"}, {"procedure", "cps"}});
  Counter* b = registry.GetCounter(
      "currency_test_labels_total", {{"procedure", "cps"}, {"tenant", "t"}});
  EXPECT_EQ(a, b);
}

TEST(ObsMetricsTest, CardinalityCapCoalescesIntoOverflowSeries) {
  Registry registry;
  // Fill the family to the cap with distinct tenants.
  for (int i = 0; i < Registry::kMaxSeriesPerFamily; ++i) {
    registry.GetCounter("currency_test_cap_total",
                        {{"tenant", "t" + std::to_string(i)}});
  }
  Counter* over1 = registry.GetCounter("currency_test_cap_total",
                                       {{"tenant", "one-too-many"}});
  Counter* over2 = registry.GetCounter("currency_test_cap_total",
                                       {{"tenant", "another"}});
  EXPECT_EQ(over1, over2);  // both coalesced into {overflow="true"}
  over1->Increment(5);
  std::string text = registry.ExposeText();
  EXPECT_NE(text.find("currency_test_cap_total{overflow=\"true\"} 5"),
            std::string::npos);
  // A capped-out label set still resolves to the overflow series, and an
  // existing series keeps resolving to itself.
  Counter* existing =
      registry.GetCounter("currency_test_cap_total", {{"tenant", "t0"}});
  EXPECT_NE(existing, over1);
}

TEST(ObsMetricsTest, KindMismatchYieldsDeadInstrumentNotCrash) {
  Registry registry;
  Counter* counter = registry.GetCounter("currency_test_kind_total");
  counter->Increment();
  Gauge* wrong = registry.GetGauge("currency_test_kind_total");
  wrong->Set(42);  // dead sink: must not crash or clobber the counter
  EXPECT_EQ(counter->Value(), 1);
  std::string text = registry.ExposeText();
  EXPECT_NE(text.find("currency_test_kind_total 1"), std::string::npos);
  EXPECT_EQ(text.find("42"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Exposition.

TEST(ObsMetricsTest, ExposeTextEmitsTypeLinesAndCumulativeBuckets) {
  Registry registry;
  registry.GetCounter("currency_test_a_total", {{"tenant", "x"}})
      ->Increment(3);
  registry.GetGauge("currency_test_b")->Set(-7);
  Histogram* h =
      registry.GetHistogram("currency_test_c_ns", {}, {10, 20});
  h->Observe(5);
  h->Observe(15);
  h->Observe(99);
  std::string text = registry.ExposeText();
  EXPECT_NE(text.find("# TYPE currency_test_a_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("currency_test_a_total{tenant=\"x\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE currency_test_b gauge\n"), std::string::npos);
  EXPECT_NE(text.find("currency_test_b -7\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE currency_test_c_ns histogram\n"),
            std::string::npos);
  // Cumulative: le=10 has 1, le=20 has 2, +Inf has all 3.
  EXPECT_NE(text.find("currency_test_c_ns_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("currency_test_c_ns_bucket{le=\"20\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("currency_test_c_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("currency_test_c_ns_sum 119\n"), std::string::npos);
  EXPECT_NE(text.find("currency_test_c_ns_count 3\n"), std::string::npos);
}

TEST(ObsMetricsTest, ExposeTextEscapesLabelValues) {
  Registry registry;
  registry.GetCounter("currency_test_esc_total",
                      {{"tenant", "a\"b\\c\nd"}});
  std::string text = registry.ExposeText();
  EXPECT_NE(text.find("tenant=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(ObsMetricsTest, ExposeJsonCoversEverySeries) {
  Registry registry;
  registry.GetCounter("currency_test_j_total", {{"tenant", "x"}})
      ->Increment(2);
  Histogram* h = registry.GetHistogram("currency_test_j_ns", {}, {10});
  h->Observe(4);
  std::string json = registry.ExposeJson();
  EXPECT_NE(json.find("\"name\": \"currency_test_j_total\""),
            std::string::npos);
  EXPECT_NE(json.find("\"type\": \"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant\": \"x\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"type\": \"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\": [10]"), std::string::npos);
  EXPECT_EQ(registry.Expose(ExpositionFormat::kJson), json);
  EXPECT_EQ(registry.Expose(ExpositionFormat::kText), registry.ExposeText());
}

// ---------------------------------------------------------------------------
// Clocks.

TEST(ObsClockTest, ManualClockAdvances) {
  ManualClock clock;
  EXPECT_EQ(clock.NowNanos(), 0);
  clock.Advance(5);
  EXPECT_EQ(clock.NowNanos(), 5);
  clock.Set(1'000);
  EXPECT_EQ(clock.NowNanos(), 1'000);
}

TEST(ObsClockTest, MonotonicClockNeverGoesBackwards) {
  const Clock* clock = MonotonicClock::Get();
  int64_t a = clock->NowNanos();
  int64_t b = clock->NowNanos();
  EXPECT_LE(a, b);
  EXPECT_EQ(ResolveClock(nullptr), MonotonicClock::Get());
  ManualClock manual;
  EXPECT_EQ(ResolveClock(&manual), &manual);
}

// ---------------------------------------------------------------------------
// Tracing.  Everything below the compile-out guard is skipped under
// CURRENCY_OBS_OFF (the types exist but are inert by design).

#ifndef CURRENCY_OBS_OFF

TraceOptions TestTraceOptions(const ManualClock* clock) {
  TraceOptions options;
  options.enabled = true;
  options.ring_capacity = 4;
  options.slow_threshold_ns = 1'000;
  options.slow_log_capacity = 2;
  options.clock = clock;
  return options;
}

TEST(ObsTraceTest, SpanRecordsStagesWithTimings) {
  ManualClock clock;
  Tracer tracer(TestTraceOptions(&clock));
  Registry registry;
  Counter* props = registry.GetCounter("currency_sat_propagations_total");
  {
    TraceSpan span(&tracer, "acme", "cps");
    {
      TraceSpan::Stage stage("epoch_pin");
      clock.Advance(10);
    }
    {
      StageCounters counters;
      counters.sat_propagations = props;
      TraceSpan::Stage stage("solve", counters);
      clock.Advance(90);
      props->Increment(7);
    }
  }
  std::vector<Trace> traces = tracer.RecentTraces();
  ASSERT_EQ(traces.size(), 1u);
  const Trace& t = traces[0];
  EXPECT_EQ(t.tenant, "acme");
  EXPECT_EQ(t.procedure, "cps");
  EXPECT_EQ(t.DurationNs(), 100);
  ASSERT_EQ(t.stages.size(), 2u);
  EXPECT_STREQ(t.stages[0].name, "epoch_pin");
  EXPECT_EQ(t.stages[0].end_ns - t.stages[0].start_ns, 10);
  EXPECT_STREQ(t.stages[1].name, "solve");
  EXPECT_EQ(t.stages[1].end_ns - t.stages[1].start_ns, 90);
  EXPECT_EQ(t.stages[1].sat_propagations, 7);  // delta, not the total
  EXPECT_EQ(tracer.recorded_traces(), 1);
}

TEST(ObsTraceTest, RingOverflowDropsOldestAndCounts) {
  ManualClock clock;
  Tracer tracer(TestTraceOptions(&clock));  // ring_capacity = 4
  for (int i = 0; i < 6; ++i) {
    TraceSpan span(&tracer, "t", "cps" + std::to_string(i));
  }
  std::vector<Trace> traces = tracer.RecentTraces();
  ASSERT_EQ(traces.size(), 4u);
  EXPECT_EQ(traces.front().procedure, "cps2");  // 0 and 1 evicted
  EXPECT_EQ(traces.back().procedure, "cps5");
  EXPECT_EQ(tracer.recorded_traces(), 6);
  EXPECT_EQ(tracer.dropped_traces(), 2);
}

TEST(ObsTraceTest, SlowLogCapturesOnlySlowRequests) {
  ManualClock clock;
  Tracer tracer(TestTraceOptions(&clock));  // threshold 1000 ns, cap 2
  {
    TraceSpan fast(&tracer, "t", "fast");
    clock.Advance(999);
  }
  for (int i = 0; i < 3; ++i) {
    TraceSpan slow(&tracer, "t", "slow" + std::to_string(i));
    clock.Advance(2'000);
  }
  std::vector<std::string> log = tracer.SlowLog();
  ASSERT_EQ(log.size(), 2u);  // capacity 2: slow0 evicted
  EXPECT_NE(log[0].find("procedure=slow1"), std::string::npos);
  EXPECT_NE(log[1].find("procedure=slow2"), std::string::npos);
  EXPECT_NE(log[1].find("total_ns=2000"), std::string::npos);
}

TEST(ObsTraceTest, DisabledTracerRecordsNothing) {
  ManualClock clock;
  TraceOptions options = TestTraceOptions(&clock);
  options.enabled = false;
  Tracer tracer(options);
  {
    TraceSpan span(&tracer, "t", "cps");
    TraceSpan::Stage stage("solve");
    EXPECT_FALSE(span.active());
    EXPECT_EQ(TraceSpan::Current(), nullptr);
  }
  EXPECT_EQ(tracer.recorded_traces(), 0);
  EXPECT_TRUE(tracer.RecentTraces().empty());
  // Runtime re-enable works without reconstructing.
  tracer.set_enabled(true);
  { TraceSpan span(&tracer, "t", "cps"); }
  EXPECT_EQ(tracer.recorded_traces(), 1);
}

TEST(ObsTraceTest, NestedRootIsInertAndItsStagesAttachToOuter) {
  ManualClock clock;
  Tracer tracer(TestTraceOptions(&clock));
  {
    TraceSpan outer(&tracer, "t", "outer");
    EXPECT_TRUE(outer.active());
    {
      // A session-level span opened under a manager's span.
      TraceSpan inner(&tracer, "t", "inner");
      EXPECT_FALSE(inner.active());
      TraceSpan::Stage stage("solve");
      clock.Advance(42);
    }
  }
  std::vector<Trace> traces = tracer.RecentTraces();
  ASSERT_EQ(traces.size(), 1u);  // only the outer root recorded
  EXPECT_EQ(traces[0].procedure, "outer");
  ASSERT_EQ(traces[0].stages.size(), 1u);  // inner's stage attached here
  EXPECT_EQ(traces[0].stages[0].end_ns - traces[0].stages[0].start_ns, 42);
}

TEST(ObsTraceTest, NullTracerSpanIsInert) {
  TraceSpan span(nullptr, "t", "cps");
  EXPECT_FALSE(span.active());
  TraceSpan::Stage stage("solve");  // must not crash with no root
}

TEST(ObsTraceTest, WorkerThreadStagesAreInert) {
  ManualClock clock;
  Tracer tracer(TestTraceOptions(&clock));
  TraceSpan span(&tracer, "t", "cps");
  std::thread worker([] {
    // The root lives on the request thread; this thread has none.
    EXPECT_EQ(TraceSpan::Current(), nullptr);
    TraceSpan::Stage stage("solve");  // inert, not attached, no crash
  });
  worker.join();
}

TEST(ObsTraceTest, ScopedTimerObservesElapsedIntoHistogram) {
  Registry registry;
  ManualClock clock;
  Histogram* h = registry.GetHistogram("currency_test_timer_ns", {}, {100});
  {
    ScopedTimer timer(h, &clock);
    clock.Advance(70);
  }
  EXPECT_EQ(h->Count(), 1);
  EXPECT_EQ(h->Sum(), 70);
  { ScopedTimer inert(nullptr, &clock); }  // null histogram: no-op
  EXPECT_EQ(h->Count(), 1);
}

TEST(ObsTraceTest, ZeroCapacityRingDropsEverything) {
  ManualClock clock;
  TraceOptions options = TestTraceOptions(&clock);
  options.ring_capacity = 0;
  Tracer tracer(options);
  { TraceSpan span(&tracer, "t", "cps"); }
  EXPECT_TRUE(tracer.RecentTraces().empty());
  EXPECT_EQ(tracer.recorded_traces(), 1);
  EXPECT_EQ(tracer.dropped_traces(), 1);
}

#endif  // CURRENCY_OBS_OFF

// ---------------------------------------------------------------------------
// AdmissionGate instrument binding (the gate's own counters are covered
// in exec_test; here: the registry instruments it drives).

TEST(ObsGateTest, GateDrivesRegistryInstruments) {
  Registry registry;
  exec::AdmissionGate gate(/*max_active=*/1, /*max_waiting=*/0);
  exec::AdmissionGate::Instruments instruments;
  instruments.admitted =
      registry.GetCounter("currency_exec_admission_admitted_total");
  instruments.rejected =
      registry.GetCounter("currency_exec_admission_rejected_total");
  instruments.queue_high_water =
      registry.GetGauge("currency_exec_admission_queue_high_water");
  gate.BindInstruments(instruments);
  ASSERT_TRUE(gate.Enter().ok());
  EXPECT_FALSE(gate.Enter().ok());  // active full, queue capacity 0
  gate.Leave();
  EXPECT_EQ(instruments.admitted->Value(), 1);
  EXPECT_EQ(instruments.rejected->Value(), 1);
  EXPECT_EQ(gate.rejected(), 1);
  EXPECT_EQ(gate.queue_high_water(), 0);
}

}  // namespace
}  // namespace currency::obs
