// Unit + property tests for src/sat: CDCL solver, model enumeration, QBF.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "src/sat/model_enumerator.h"
#include "src/sat/qbf.h"
#include "src/sat/solver.h"

namespace currency::sat {
namespace {

TEST(SolverTest, EmptyFormulaIsSat) {
  Solver s;
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, UnitClauses) {
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  ASSERT_TRUE(s.AddClause({MakeLit(a)}));
  ASSERT_TRUE(s.AddClause({MakeLit(b, true)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(a));
  EXPECT_FALSE(s.ModelValue(b));
}

TEST(SolverTest, ContradictoryUnitsUnsat) {
  Solver s;
  Var a = s.NewVar();
  ASSERT_TRUE(s.AddClause({MakeLit(a)}));
  EXPECT_FALSE(s.AddClause({MakeLit(a, true)}));
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_TRUE(s.IsUnsatForever());
}

TEST(SolverTest, SimpleImplicationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 10; ++i) v.push_back(s.NewVar());
  for (int i = 0; i + 1 < 10; ++i) {
    ASSERT_TRUE(s.AddClause({MakeLit(v[i], true), MakeLit(v[i + 1])}));
  }
  ASSERT_TRUE(s.AddClause({MakeLit(v[0])}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(s.ModelValue(v[i]));
}

TEST(SolverTest, PigeonholeUnsat) {
  // 4 pigeons, 3 holes: classic UNSAT requiring real search.
  const int pigeons = 4, holes = 3;
  Solver s;
  std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) x[p][h] = s.NewVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < holes; ++h) c.push_back(MakeLit(x[p][h]));
    ASSERT_TRUE(s.AddClause(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(
            s.AddClause({MakeLit(x[p1][h], true), MakeLit(x[p2][h], true)}));
      }
    }
  }
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
  EXPECT_GT(s.stats().conflicts, 0);
}

TEST(SolverTest, TautologyIgnored) {
  Solver s;
  Var a = s.NewVar();
  ASSERT_TRUE(s.AddClause({MakeLit(a), MakeLit(a, true)}));
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, Assumptions) {
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  ASSERT_TRUE(s.AddClause({MakeLit(a, true), MakeLit(b)}));  // a -> b
  EXPECT_EQ(s.SolveWithAssumptions({MakeLit(a), MakeLit(b, true)}),
            SolveResult::kUnsat);
  // The formula itself is untouched: still SAT without assumptions.
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_EQ(s.SolveWithAssumptions({MakeLit(a)}), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(b));
}

TEST(SolverTest, IncrementalAddBetweenSolves) {
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  ASSERT_TRUE(s.AddClause({MakeLit(a), MakeLit(b)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  ASSERT_TRUE(s.AddClause({MakeLit(a, true)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_FALSE(s.ModelValue(a));
  EXPECT_TRUE(s.ModelValue(b));
  EXPECT_TRUE(s.AddClause({MakeLit(b, true)}) == false || true);
  EXPECT_EQ(s.Solve(), SolveResult::kUnsat);
}

TEST(SolverTest, AssumptionConflictInsidePrefix) {
  // a → b → c; assuming {a, ¬c} the conflict only appears after the first
  // assumption's propagation reaches c — inside the assumption prefix,
  // before any free decision.
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  Var c = s.NewVar();
  ASSERT_TRUE(s.AddClause({MakeLit(a, true), MakeLit(b)}));
  ASSERT_TRUE(s.AddClause({MakeLit(b, true), MakeLit(c)}));
  EXPECT_EQ(s.SolveWithAssumptions({MakeLit(a), MakeLit(c, true)}),
            SolveResult::kUnsat);
  // The conflict was assumption-local: the formula is not poisoned.
  EXPECT_FALSE(s.IsUnsatForever());
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_EQ(s.SolveWithAssumptions({MakeLit(c, true)}), SolveResult::kSat);
  EXPECT_FALSE(s.ModelValue(a));
}

TEST(SolverTest, ContradictoryAssumptionList) {
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  ASSERT_TRUE(s.AddClause({MakeLit(a), MakeLit(b)}));
  EXPECT_EQ(s.SolveWithAssumptions({MakeLit(a), MakeLit(a, true)}),
            SolveResult::kUnsat);
  EXPECT_FALSE(s.IsUnsatForever());
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, AssumptionConflictRequiresLearning) {
  // Binary constraints force a genuine conflict analysis while both
  // assumptions sit on the trail: (¬a ∨ ¬b) with assumptions {a, b}.
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  ASSERT_TRUE(s.AddClause({MakeLit(a, true), MakeLit(b, true)}));
  EXPECT_EQ(s.SolveWithAssumptions({MakeLit(a), MakeLit(b)}),
            SolveResult::kUnsat);
  EXPECT_EQ(s.SolveWithAssumptions({MakeLit(a)}), SolveResult::kSat);
  EXPECT_TRUE(s.ModelValue(a));
  EXPECT_FALSE(s.ModelValue(b));
}

TEST(SolverTest, AssumptionConflictAfterLearntClauses) {
  // Accumulate learnt clauses with a hard UNSAT sub-formula reachable
  // only under an activation assumption, then check that assumption
  // conflicts still resolve correctly against the learnt store.
  const int pigeons = 4, holes = 3;
  Solver s;
  Var gate = s.NewVar();
  std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) x[p][h] = s.NewVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c{MakeLit(gate, true)};
    for (int h = 0; h < holes; ++h) c.push_back(MakeLit(x[p][h]));
    ASSERT_TRUE(s.AddClause(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(s.AddClause({MakeLit(x[p1][h], true),
                                 MakeLit(x[p2][h], true)}));
      }
    }
  }
  // Gated: UNSAT under the assumption, SAT without it, repeatably.
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(s.SolveWithAssumptions({MakeLit(gate)}), SolveResult::kUnsat);
    EXPECT_FALSE(s.IsUnsatForever());
    EXPECT_EQ(s.Solve(), SolveResult::kSat);
  }
}

TEST(SolverTest, ModelSurvivesUnsatAssumptionCall) {
  // DeterministicViaSat used to read baselines from the model after a
  // failed assumption solve; it now snapshots up front, but the solver
  // keeping the last satisfying model across kUnsat assumption calls is
  // worth pinning down so a regression is visible here and not as a
  // subtle downstream wrong answer.
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  ASSERT_TRUE(s.AddClause({MakeLit(a)}));
  ASSERT_TRUE(s.AddClause({MakeLit(a, true), MakeLit(b)}));
  ASSERT_EQ(s.Solve(), SolveResult::kSat);
  ASSERT_TRUE(s.ModelValue(a));
  ASSERT_TRUE(s.ModelValue(b));
  EXPECT_EQ(s.SolveWithAssumptions({MakeLit(b, true)}), SolveResult::kUnsat);
  EXPECT_TRUE(s.ModelValue(a));
  EXPECT_TRUE(s.ModelValue(b));
}

// Reference DPLL-free evaluator: checks a CNF against an assignment.
bool CnfSatisfied(const std::vector<std::vector<Lit>>& cnf,
                  const Solver& solver) {
  for (const auto& clause : cnf) {
    bool sat = false;
    for (Lit l : clause) {
      bool v = solver.ModelValue(LitVar(l));
      if (LitIsNeg(l) ? !v : v) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

// Brute-force SAT check for up to 20 vars.
bool BruteForceSat(int num_vars, const std::vector<std::vector<Lit>>& cnf) {
  for (uint32_t mask = 0; mask < (1u << num_vars); ++mask) {
    bool ok = true;
    for (const auto& clause : cnf) {
      bool sat = false;
      for (Lit l : clause) {
        bool v = (mask >> LitVar(l)) & 1;
        if (LitIsNeg(l) ? !v : v) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  }
  return false;
}

class SolverRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolverRandomProperty, AgreesWithBruteForce) {
  std::mt19937 rng(GetParam() * 7919 + 13);
  const int num_vars = 8;
  std::uniform_int_distribution<int> nclauses_dist(5, 40);
  std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);
  int num_clauses = nclauses_dist(rng);
  std::vector<std::vector<Lit>> cnf;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    for (int i = 0; i < 3; ++i) {
      clause.push_back(MakeLit(var_dist(rng), sign_dist(rng) == 1));
    }
    cnf.push_back(clause);
  }
  Solver s;
  for (int i = 0; i < num_vars; ++i) s.NewVar();
  bool added_ok = true;
  for (auto& clause : cnf) {
    if (!s.AddClause(clause)) {
      added_ok = false;
      break;
    }
  }
  bool expected = BruteForceSat(num_vars, cnf);
  if (!added_ok) {
    EXPECT_FALSE(expected);
    return;
  }
  SolveResult r = s.Solve();
  EXPECT_EQ(r == SolveResult::kSat, expected);
  if (r == SolveResult::kSat) {
    EXPECT_TRUE(CnfSatisfied(cnf, s)) << "model does not satisfy formula";
  }
}

INSTANTIATE_TEST_SUITE_P(Random3Cnf, SolverRandomProperty,
                         ::testing::Range(0, 60));

// Metamorphic property: solving under assumptions must agree with a fresh
// solver that receives the same assumptions as unit clauses.  Several
// assumption sets run against ONE incremental solver, so the learnt
// clauses of earlier calls (including assumption-prefix conflicts) are in
// play for later ones.
class AssumptionMetamorphicProperty : public ::testing::TestWithParam<int> {};

TEST_P(AssumptionMetamorphicProperty, MatchesUnitClauseSolver) {
  std::mt19937 rng(GetParam() * 50021 + 99);
  const int num_vars = 8;
  std::uniform_int_distribution<int> nclauses_dist(5, 40);
  std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);
  std::uniform_int_distribution<int> nassume_dist(1, 4);
  std::vector<std::vector<Lit>> cnf;
  int num_clauses = nclauses_dist(rng);
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    for (int i = 0; i < 3; ++i) {
      clause.push_back(MakeLit(var_dist(rng), sign_dist(rng) == 1));
    }
    cnf.push_back(clause);
  }
  Solver incremental;
  for (int i = 0; i < num_vars; ++i) incremental.NewVar();
  bool base_ok = true;
  for (auto& clause : cnf) {
    if (!incremental.AddClause(clause)) {
      base_ok = false;
      break;
    }
  }
  if (!base_ok) return;  // UNSAT at level 0: nothing to assume about
  const bool formula_sat = BruteForceSat(num_vars, cnf);

  for (int round = 0; round < 8; ++round) {
    // Random assumption list; duplicate and contradictory literals are
    // deliberately possible.
    std::vector<Lit> assumptions;
    int n = nassume_dist(rng);
    for (int i = 0; i < n; ++i) {
      assumptions.push_back(MakeLit(var_dist(rng), sign_dist(rng) == 1));
    }
    // Reference: fresh solver, assumptions as units.
    Solver fresh;
    for (int i = 0; i < num_vars; ++i) fresh.NewVar();
    bool fresh_ok = true;
    for (auto& clause : cnf) {
      if (!fresh.AddClause(clause)) {
        fresh_ok = false;
        break;
      }
    }
    ASSERT_TRUE(fresh_ok);
    for (Lit a : assumptions) {
      if (!fresh.AddClause({a})) {
        fresh_ok = false;
        break;
      }
    }
    bool expect_sat = fresh_ok && fresh.Solve() == SolveResult::kSat;

    SolveResult got = incremental.SolveWithAssumptions(assumptions);
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " round=" + std::to_string(round));
    EXPECT_EQ(got == SolveResult::kSat, expect_sat);
    // Assumption conflicts must not poison the solver — only a genuinely
    // unsatisfiable formula may.
    if (formula_sat) {
      EXPECT_FALSE(incremental.IsUnsatForever());
    }
    if (got == SolveResult::kSat) {
      EXPECT_TRUE(CnfSatisfied(cnf, incremental));
      for (Lit a : assumptions) {
        bool v = incremental.ModelValue(LitVar(a));
        EXPECT_EQ(LitIsNeg(a) ? !v : v, true) << "assumption not honoured";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, AssumptionMetamorphicProperty,
                         ::testing::Range(0, 40));

TEST(SolverTest, LearntClauseDeletionKeepsAnswersAndFrees) {
  // A hard UNSAT instance accumulates far more learnt clauses than the
  // reduction threshold; the reduction must fire without changing the
  // answer, and repeated solving afterwards must stay correct.  Size
  // 8/7, not 7/6: recursive learnt-clause minimization refutes 7/6 in
  // too few conflicts to cross the natural ReduceDB trigger (the forced
  // trigger is covered by ReduceLimitScope tests in the metamorphic
  // suite; this test keeps the natural trigger exercised).
  const int pigeons = 8, holes = 7;
  Solver s;
  std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) x[p][h] = s.NewVar();
  }
  Var gate = s.NewVar();
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c{MakeLit(gate, true)};
    for (int h = 0; h < holes; ++h) c.push_back(MakeLit(x[p][h]));
    ASSERT_TRUE(s.AddClause(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(s.AddClause({MakeLit(x[p1][h], true),
                                 MakeLit(x[p2][h], true)}));
      }
    }
  }
  EXPECT_EQ(s.SolveWithAssumptions({MakeLit(gate)}), SolveResult::kUnsat);
  EXPECT_GT(s.stats().learnt_clauses, 512);
  EXPECT_GT(s.stats().reductions, 0);
  EXPECT_GT(s.stats().deleted_clauses, 0);
  // Still correct in both directions after reductions.
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
  EXPECT_EQ(s.SolveWithAssumptions({MakeLit(gate)}), SolveResult::kUnsat);
}

TEST(SolverTest, ReductionCompactsArena) {
  // The learnt-clause reduction must reclaim arena memory: after a
  // conflict-heavy run with deletions, the compaction counter advances
  // and the arena stat reflects the live buffer.  Size 8/7 for the same
  // reason as above: minimization refutes 7/6 below the natural
  // ReduceDB trigger.
  const int pigeons = 8, holes = 7;
  Solver s;
  std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) x[p][h] = s.NewVar();
  }
  Var gate = s.NewVar();
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c{MakeLit(gate, true)};
    for (int h = 0; h < holes; ++h) c.push_back(MakeLit(x[p][h]));
    ASSERT_TRUE(s.AddClause(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        ASSERT_TRUE(s.AddClause({MakeLit(x[p1][h], true),
                                 MakeLit(x[p2][h], true)}));
      }
    }
  }
  EXPECT_GT(s.stats().arena_bytes, 0);
  int64_t bytes_before_search = s.stats().arena_bytes;
  EXPECT_EQ(s.SolveWithAssumptions({MakeLit(gate)}), SolveResult::kUnsat);
  ASSERT_GT(s.stats().reductions, 0);
  EXPECT_EQ(s.stats().gc_runs, s.stats().reductions);
  EXPECT_GT(s.stats().deleted_clauses, 0);
  // Learnt clauses grew the arena past the problem clauses, but the
  // compactions kept it from retaining every deleted clause's words:
  // the final arena is far below problem + all-learnts.
  EXPECT_GT(s.stats().arena_bytes, bytes_before_search);
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(SolverTest, AddClauseSimplifiesBeforeAttach) {
  // Duplicate literals collapse and false-at-level-0 literals are
  // dropped before anything is watched: {a, a, b} with ¬b known at level
  // 0 must behave exactly like the unit {a}.
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  ASSERT_TRUE(s.AddClause({MakeLit(b, true)}));
  ASSERT_TRUE(s.AddClause({MakeLit(a), MakeLit(a), MakeLit(b)}));
  // The clause simplified to the unit {a}: asserting ¬a is now a
  // level-0 contradiction, not merely an unsatisfiable assumption.
  EXPECT_FALSE(s.AddClause({MakeLit(a, true)}));
  EXPECT_TRUE(s.IsUnsatForever());
}

TEST(SolverTest, SatisfiedAtLevelZeroClauseIsDropped) {
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  ASSERT_TRUE(s.AddClause({MakeLit(a)}));
  int64_t bytes = s.stats().arena_bytes;
  // Satisfied at level 0: dropped entirely, no arena growth.
  ASSERT_TRUE(s.AddClause({MakeLit(a), MakeLit(b)}));
  EXPECT_EQ(s.stats().arena_bytes, bytes);
  EXPECT_EQ(s.Solve(), SolveResult::kSat);
}

TEST(ModelEnumeratorTest, EnumeratesAllProjectedModels) {
  Solver s;
  Var a = s.NewVar();
  Var b = s.NewVar();
  Var c = s.NewVar();
  // (a | b): models project onto (a,b) in {01,10,11}; c is free.
  ASSERT_TRUE(s.AddClause({MakeLit(a), MakeLit(b)}));
  std::set<std::vector<bool>> seen;
  auto res = EnumerateProjectedModels(&s, {a, b}, 100,
                                      [&](const std::vector<bool>& m) {
                                        seen.insert(m);
                                        return true;
                                      });
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->models, 3);
  EXPECT_FALSE(res->stopped);
  EXPECT_EQ(seen.size(), 3u);
  (void)c;
}

TEST(ModelEnumeratorTest, RespectsBudget) {
  Solver s;
  for (int i = 0; i < 5; ++i) s.NewVar();
  std::vector<Var> proj{0, 1, 2, 3, 4};
  int visits = 0;
  auto res = EnumerateProjectedModels(&s, proj, 10,
                                      [&](const std::vector<bool>&) {
                                        ++visits;
                                        return true;
                                      });
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted);
  // The budget bounds the solves: exactly 10 models are visited and the
  // over-budget report costs no (max_models+1)-th solve.
  EXPECT_EQ(visits, 10);
}

TEST(ModelEnumeratorTest, ExactBudgetWithLevelZeroExhaustionProof) {
  // One free variable: two projected models.  The second blocking clause
  // contradicts the first at level 0, so AddClause proves exhaustion and
  // a budget of exactly 2 is NOT reported as exceeded.
  Solver s;
  Var a = s.NewVar();
  auto res = EnumerateProjectedModels(
      &s, {a}, 2, [](const std::vector<bool>&) { return true; });
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->models, 2);
  EXPECT_FALSE(res->stopped);
}

TEST(ModelEnumeratorTest, EarlyStop) {
  Solver s;
  for (int i = 0; i < 4; ++i) s.NewVar();
  int visits = 0;
  auto res = EnumerateProjectedModels(&s, {0, 1, 2, 3}, 100,
                                      [&](const std::vector<bool>&) {
                                        ++visits;
                                        return false;
                                      });
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->models, 1);
  EXPECT_EQ(visits, 1);
  // A caller-requested stop is distinguishable from natural exhaustion
  // (the stopped model is left unblocked in the solver).
  EXPECT_TRUE(res->stopped);
}

TEST(ModelEnumeratorTest, StoppedModelIsLeftUnblocked) {
  Solver s;
  Var a = s.NewVar();
  std::vector<std::vector<bool>> first_run;
  auto res = EnumerateProjectedModels(&s, {a}, 100,
                                      [&](const std::vector<bool>& m) {
                                        first_run.push_back(m);
                                        return false;  // stop immediately
                                      });
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(res->stopped);
  ASSERT_EQ(first_run.size(), 1u);
  // Resuming on the same solver revisits the unblocked model.
  std::vector<std::vector<bool>> second_run;
  auto resumed = EnumerateProjectedModels(&s, {a}, 100,
                                          [&](const std::vector<bool>& m) {
                                            second_run.push_back(m);
                                            return true;
                                          });
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(resumed->stopped);
  EXPECT_EQ(resumed->models, 2);
  ASSERT_GE(second_run.size(), 1u);
  EXPECT_EQ(second_run[0], first_run[0]);
}

TEST(QbfTest, PropositionalMatrix) {
  // ∃x (x) — trivially true.
  Qbf q;
  q.num_vars = 1;
  q.prefix.push_back({true, {0}});
  q.matrix_is_cnf = true;
  q.terms = {{MakeLit(0)}};
  EXPECT_TRUE(EvaluateQbf(q).value());
}

TEST(QbfTest, ForallFalse) {
  // ∀x (x) — false.
  Qbf q;
  q.num_vars = 1;
  q.prefix.push_back({false, {0}});
  q.terms = {{MakeLit(0)}};
  EXPECT_FALSE(EvaluateQbf(q).value());
}

TEST(QbfTest, ExistsForallDnf) {
  // ∃x∀y (x ∧ y) ∨ (x ∧ ¬y): true with x=1.
  Qbf q;
  q.num_vars = 2;
  q.prefix.push_back({true, {0}});
  q.prefix.push_back({false, {1}});
  q.matrix_is_cnf = false;
  q.terms = {{MakeLit(0), MakeLit(1)}, {MakeLit(0), MakeLit(1, true)}};
  EXPECT_TRUE(EvaluateQbf(q).value());
  // ∀x∃y versions differ: ∀x ... (x∧y)∨(x∧¬y) is false at x=0.
  q.prefix[0].exists = false;
  q.prefix[1].exists = true;
  EXPECT_FALSE(EvaluateQbf(q).value());
}

TEST(QbfTest, GuardsVariableBudget) {
  Qbf q;
  q.num_vars = 40;
  EXPECT_EQ(EvaluateQbf(q).status().code(), StatusCode::kResourceExhausted);
}

TEST(QbfTest, RejectsDoubleQuantification) {
  Qbf q;
  q.num_vars = 1;
  q.prefix.push_back({true, {0}});
  q.prefix.push_back({false, {0}});
  EXPECT_EQ(EvaluateQbf(q).status().code(), StatusCode::kInvalidArgument);
}

TEST(QbfTest, RandomGeneratorShapes) {
  std::mt19937 rng(42);
  Qbf q = RandomQbf({3, 2}, /*first_exists=*/true, 5, /*cnf=*/true, &rng);
  EXPECT_EQ(q.num_vars, 5);
  ASSERT_EQ(q.prefix.size(), 2u);
  EXPECT_TRUE(q.prefix[0].exists);
  EXPECT_FALSE(q.prefix[1].exists);
  EXPECT_EQ(q.terms.size(), 5u);
  for (const auto& t : q.terms) EXPECT_EQ(t.size(), 3u);
  EXPECT_FALSE(q.ToString().empty());
}

TEST(QbfTest, RandomGeneratorGuardsZeroVariables) {
  // Regression: an empty (or all-zero) block list used to construct
  // uniform_int_distribution<int>(0, -1) — undefined behavior.  The
  // degenerate case now yields the empty-matrix QBF: no variables, no
  // terms, trivially true as CNF and false as DNF.
  std::mt19937 rng(7);
  for (const std::vector<int>& shape :
       {std::vector<int>{}, std::vector<int>{0}, std::vector<int>{0, 0, 0}}) {
    Qbf cnf = RandomQbf(shape, /*first_exists=*/true, 5, /*cnf=*/true, &rng);
    EXPECT_EQ(cnf.num_vars, 0);
    EXPECT_TRUE(cnf.terms.empty());
    EXPECT_EQ(cnf.prefix.size(), shape.size());
    EXPECT_TRUE(EvaluateQbf(cnf).value());
    Qbf dnf = RandomQbf(shape, /*first_exists=*/false, 5, /*cnf=*/false, &rng);
    EXPECT_EQ(dnf.num_vars, 0);
    EXPECT_TRUE(dnf.terms.empty());
    EXPECT_FALSE(EvaluateQbf(dnf).value());
  }
}

// Property: for purely existential QBF with CNF matrix, the QBF oracle
// agrees with the CDCL solver.
class QbfVsSatProperty : public ::testing::TestWithParam<int> {};

TEST_P(QbfVsSatProperty, ExistentialQbfEqualsSat) {
  std::mt19937 rng(GetParam() * 131 + 7);
  Qbf q = RandomQbf({8}, /*first_exists=*/true, 25, /*cnf=*/true, &rng);
  bool oracle = EvaluateQbf(q).value();
  Solver s;
  for (int i = 0; i < q.num_vars; ++i) s.NewVar();
  bool ok = true;
  for (auto& clause : q.terms) {
    if (!s.AddClause(clause)) {
      ok = false;
      break;
    }
  }
  bool solver_sat = ok && s.Solve() == SolveResult::kSat;
  EXPECT_EQ(solver_sat, oracle);
}

INSTANTIATE_TEST_SUITE_P(RandomExistential, QbfVsSatProperty,
                         ::testing::Range(0, 40));

}  // namespace
}  // namespace currency::sat
