// Unit + property tests for src/order: PartialOrder and linear extensions.

#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <set>

#include "src/order/linear_extensions.h"
#include "src/order/partial_order.h"

namespace currency {
namespace {

TEST(PartialOrderTest, EmptyOrder) {
  PartialOrder po(3);
  EXPECT_EQ(po.size(), 3);
  EXPECT_FALSE(po.Less(0, 1));
  EXPECT_FALSE(po.Comparable(0, 1));
  EXPECT_EQ(po.NumPairs(), 0);
}

TEST(PartialOrderTest, AddAndTransitivity) {
  PartialOrder po(4);
  ASSERT_TRUE(po.Add(0, 1).ok());
  ASSERT_TRUE(po.Add(1, 2).ok());
  EXPECT_TRUE(po.Less(0, 2));  // transitive consequence
  EXPECT_FALSE(po.Less(2, 0));
  ASSERT_TRUE(po.Add(2, 3).ok());
  EXPECT_TRUE(po.Less(0, 3));
  EXPECT_EQ(po.NumPairs(), 6);
}

TEST(PartialOrderTest, CycleRejected) {
  PartialOrder po(3);
  ASSERT_TRUE(po.Add(0, 1).ok());
  ASSERT_TRUE(po.Add(1, 2).ok());
  Status s = po.Add(2, 0);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(po.Less(2, 0));  // order unchanged
  EXPECT_FALSE(po.Add(1, 1).ok());
}

TEST(PartialOrderTest, TryAddMirrorsAdd) {
  PartialOrder po(3);
  EXPECT_TRUE(po.TryAdd(0, 1));
  EXPECT_TRUE(po.TryAdd(0, 1));  // idempotent
  EXPECT_FALSE(po.TryAdd(1, 0));
  EXPECT_FALSE(po.TryAdd(2, 2));
}

TEST(PartialOrderTest, MergeAndContainment) {
  PartialOrder a(3), b(3);
  ASSERT_TRUE(a.Add(0, 1).ok());
  ASSERT_TRUE(b.Add(1, 2).ok());
  EXPECT_FALSE(a.ContainedIn(b));
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_TRUE(a.Less(0, 2));
  EXPECT_TRUE(b.ContainedIn(a));
  PartialOrder c(3);
  ASSERT_TRUE(c.Add(1, 0).ok());
  EXPECT_FALSE(a.Merge(c).ok());  // would create a cycle
}

TEST(PartialOrderTest, SinksWithin) {
  PartialOrder po(5);
  ASSERT_TRUE(po.Add(0, 1).ok());
  ASSERT_TRUE(po.Add(0, 2).ok());
  // 1 and 2 are incomparable sinks; 3 isolated is also a sink.
  auto sinks = po.SinksWithin({0, 1, 2, 3});
  EXPECT_EQ(sinks, (std::vector<int>{1, 2, 3}));
  // Within {0} alone, 0 is a sink.
  EXPECT_EQ(po.SinksWithin({0}), std::vector<int>{0});
}

TEST(PartialOrderTest, TotalOnAndMaxOf) {
  PartialOrder po(4);
  ASSERT_TRUE(po.Add(0, 1).ok());
  ASSERT_TRUE(po.Add(1, 2).ok());
  EXPECT_TRUE(po.TotalOn({0, 1, 2}));
  EXPECT_FALSE(po.TotalOn({0, 1, 3}));
  EXPECT_EQ(po.MaxOf({0, 1, 2}), 2);
  EXPECT_EQ(po.MaxOf({0, 1, 3}), -1);
  EXPECT_EQ(po.MaxOf({}), -1);
  EXPECT_EQ(po.MaxOf({3}), 3);
}

TEST(PartialOrderTest, TopologicalOrderRespectsOrder) {
  PartialOrder po(4);
  ASSERT_TRUE(po.Add(2, 0).ok());
  ASSERT_TRUE(po.Add(0, 3).ok());
  auto topo = po.TopologicalOrder({0, 1, 2, 3});
  ASSERT_EQ(topo.size(), 4u);
  auto pos = [&](int x) {
    return std::find(topo.begin(), topo.end(), x) - topo.begin();
  };
  EXPECT_LT(pos(2), pos(0));
  EXPECT_LT(pos(0), pos(3));
}

TEST(PartialOrderTest, PairsAndToString) {
  PartialOrder po(3);
  ASSERT_TRUE(po.Add(0, 2).ok());
  auto pairs = po.Pairs();
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], std::make_pair(0, 2));
  EXPECT_EQ(po.ToString(), "{0≺2}");
}

TEST(LinearExtensionsTest, CountsMatchFactorialForEmptyOrder) {
  PartialOrder po(4);
  EXPECT_EQ(CountLinearExtensions(po, {0, 1, 2, 3}), 24);
  EXPECT_EQ(CountLinearExtensions(po, {0, 1}), 2);
  EXPECT_EQ(CountLinearExtensions(po, {}), 1);
}

TEST(LinearExtensionsTest, ChainHasOneExtension) {
  PartialOrder po(3);
  ASSERT_TRUE(po.Add(0, 1).ok());
  ASSERT_TRUE(po.Add(1, 2).ok());
  std::vector<std::vector<int>> seqs;
  EnumerateLinearExtensions(po, {0, 1, 2}, [&](const std::vector<int>& s) {
    seqs.push_back(s);
    return true;
  });
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(seqs[0], (std::vector<int>{0, 1, 2}));
}

TEST(LinearExtensionsTest, VShapeHasTwoExtensions) {
  PartialOrder po(3);
  ASSERT_TRUE(po.Add(0, 1).ok());
  ASSERT_TRUE(po.Add(0, 2).ok());
  EXPECT_EQ(CountLinearExtensions(po, {0, 1, 2}), 2);
}

TEST(LinearExtensionsTest, EarlyStop) {
  PartialOrder po(4);
  int visited = 0;
  int64_t n = EnumerateLinearExtensions(po, {0, 1, 2, 3},
                                        [&](const std::vector<int>&) {
                                          ++visited;
                                          return visited < 3;
                                        });
  EXPECT_EQ(n, 3);
  EXPECT_EQ(visited, 3);
}

// Property test: on random DAG orders, every enumerated extension is a
// valid linear extension, extensions are distinct, and their number matches
// a reference count computed by brute-force permutation filtering.
class LinearExtensionProperty : public ::testing::TestWithParam<int> {};

TEST_P(LinearExtensionProperty, MatchesBruteForce) {
  std::mt19937 rng(GetParam());
  const int n = 5;
  PartialOrder po(n);
  std::uniform_int_distribution<int> coin(0, 3);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (coin(rng) == 0) po.TryAdd(u, v);  // edges along one direction: DAG
    }
  }
  std::vector<int> subset(n);
  std::iota(subset.begin(), subset.end(), 0);

  // Reference: filter all permutations.
  std::vector<int> perm = subset;
  int64_t expected = 0;
  std::sort(perm.begin(), perm.end());
  do {
    bool valid = true;
    for (int i = 0; i < n && valid; ++i) {
      for (int j = i + 1; j < n && valid; ++j) {
        if (po.Less(perm[j], perm[i])) valid = false;
      }
    }
    if (valid) ++expected;
  } while (std::next_permutation(perm.begin(), perm.end()));

  std::set<std::vector<int>> seen;
  int64_t count =
      EnumerateLinearExtensions(po, subset, [&](const std::vector<int>& s) {
        // Validity: no later element precedes an earlier one.
        for (size_t i = 0; i < s.size(); ++i) {
          for (size_t j = i + 1; j < s.size(); ++j) {
            EXPECT_FALSE(po.Less(s[j], s[i]));
          }
        }
        EXPECT_TRUE(seen.insert(s).second) << "duplicate extension";
        return true;
      });
  EXPECT_EQ(count, expected);
}

INSTANTIATE_TEST_SUITE_P(RandomOrders, LinearExtensionProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace currency
