// Property suite for sat::Portfolio (src/sat/portfolio.h): verdict
// determinism of the diversified solver race.
//
//  * VERDICT EQUALITY: for every CNF, seed and pool width, the race's
//    verdict equals a lone reference solver's verdict — SAT/UNSAT is a
//    property of the formula, so who wins the race cannot matter.
//  * PASS-THROUGH: at one thread (or one configured solver) the race
//    never spawns rivals, never opens a region, and records no race —
//    portfolio-on must be byte-identical to portfolio-off there.
//  * CANCELLATION: losers are interrupted mid-search via the stop flag;
//    an interrupted primary must remain sound and reusable (learnt
//    clauses are implied), and race/cancel counters must accumulate in
//    the primary's stats.
//
// scripts/check.sh re-runs this suite under ThreadSanitizer (the race IS
// a data-race honeypot: stop flag, verdict slots, cancellation token) and
// AddressSanitizer (rival solver lifetimes).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <random>
#include <vector>

#include "src/exec/thread_pool.h"
#include "src/sat/portfolio.h"
#include "src/sat/solver.h"

namespace currency::sat {
namespace {

std::vector<std::vector<Lit>> RandomClauses(std::mt19937* rng, int num_vars,
                                            int count) {
  std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);
  std::vector<std::vector<Lit>> cnf;
  for (int c = 0; c < count; ++c) {
    std::vector<Lit> clause;
    for (int i = 0; i < 3; ++i) {
      clause.push_back(MakeLit(var_dist(*rng), sign_dist(*rng) == 1));
    }
    cnf.push_back(std::move(clause));
  }
  return cnf;
}

/// Gated pigeonhole: UNSAT under the gate assumption, SAT without it;
/// slow enough that losing racers are genuinely interrupted mid-search.
Var AddGatedPigeonhole(Solver* s, int pigeons, int holes) {
  Var gate = s->NewVar();
  std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) x[p][h] = s->NewVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c{MakeLit(gate, true)};
    for (int h = 0; h < holes; ++h) c.push_back(MakeLit(x[p][h]));
    EXPECT_TRUE(s->AddClause(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        EXPECT_TRUE(
            s->AddClause({MakeLit(x[p1][h], true), MakeLit(x[p2][h], true)}));
      }
    }
  }
  return gate;
}

/// A test harness owning a primary plus lazily spawned rival solvers
/// loaded with the same recorded formula.
struct Race {
  explicit Race(const Solver::Options& primary_options = {})
      : primary(std::make_unique<Solver>(primary_options)) {}

  Var NewVar() {
    num_vars++;
    return primary->NewVar();
  }
  void Add(const std::vector<Lit>& clause) {
    (void)primary->AddClause(clause);
    cnf.push_back(clause);
  }
  /// Gated pigeonhole routed through Add() so rivals can replay it.
  Var Pigeonhole(int pigeons, int holes) {
    Var gate = NewVar();
    std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
    for (int p = 0; p < pigeons; ++p) {
      for (int h = 0; h < holes; ++h) x[p][h] = NewVar();
    }
    for (int p = 0; p < pigeons; ++p) {
      std::vector<Lit> c{MakeLit(gate, true)};
      for (int h = 0; h < holes; ++h) c.push_back(MakeLit(x[p][h]));
      Add(c);
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < pigeons; ++p1) {
        for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
          Add({MakeLit(x[p1][h], true), MakeLit(x[p2][h], true)});
        }
      }
    }
    return gate;
  }

  Portfolio Make(const PortfolioOptions& options, exec::ThreadPool* pool) {
    return Portfolio(
        primary.get(),
        [this](int /*config*/,
               const Solver::Options& opts) -> Result<Solver*> {
          auto rival = std::make_unique<Solver>(opts);
          for (int i = 0; i < num_vars; ++i) rival->NewVar();
          for (const auto& clause : cnf) (void)rival->AddClause(clause);
          rivals.push_back(std::move(rival));
          return rivals.back().get();
        },
        options, pool);
  }

  std::unique_ptr<Solver> primary;
  std::vector<std::unique_ptr<Solver>> rivals;
  std::vector<std::vector<Lit>> cnf;
  int num_vars = 0;
};

class PortfolioProperty : public ::testing::TestWithParam<int> {};

TEST_P(PortfolioProperty, VerdictsMatchReferenceAcrossThreadWidths) {
  const int seed = GetParam();
  for (int threads : {1, 2, 8}) {
    std::mt19937 rng(static_cast<unsigned>(seed) * 7919 + 13);
    const int num_vars = 14;
    // Reference: a lone default solver over the same stream.
    Solver reference;
    for (int i = 0; i < num_vars; ++i) reference.NewVar();
    Race race;
    for (int i = 0; i < num_vars; ++i) race.NewVar();
    exec::ThreadPool pool(threads);
    PortfolioOptions options;
    options.enabled = true;
    options.num_solvers = 4;
    Portfolio portfolio = race.Make(options, &pool);
    std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
    std::uniform_int_distribution<int> sign_dist(0, 1);
    for (int round = 0; round < 4; ++round) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " threads=" + std::to_string(threads) +
                   " round=" + std::to_string(round));
      for (auto& clause : RandomClauses(&rng, num_vars, 12)) {
        (void)reference.AddClause(clause);
        race.Add(clause);
      }
      auto verdict = portfolio.Solve();
      ASSERT_TRUE(verdict.ok()) << verdict.status();
      ASSERT_EQ(*verdict, reference.Solve());
      if (*verdict == SolveResult::kUnsat) break;
      std::vector<Lit> assumptions{
          MakeLit(var_dist(rng), sign_dist(rng) == 1),
          MakeLit(var_dist(rng), sign_dist(rng) == 1)};
      auto probe = portfolio.Solve(assumptions);
      ASSERT_TRUE(probe.ok()) << probe.status();
      ASSERT_EQ(*probe, reference.SolveWithAssumptions(assumptions));
    }
  }
}

TEST(PortfolioTest, PassThroughAtOneThreadSpawnsNothing) {
  exec::ThreadPool pool(1);
  Race race;
  Var gate = race.Pigeonhole(5, 4);
  PortfolioOptions options;
  options.enabled = true;
  options.num_solvers = 4;
  Portfolio portfolio = race.Make(options, &pool);
  EXPECT_EQ(portfolio.RaceWidth(), 1);
  auto unsat = portfolio.Solve({MakeLit(gate)});
  ASSERT_TRUE(unsat.ok()) << unsat.status();
  EXPECT_EQ(*unsat, SolveResult::kUnsat);
  auto sat = portfolio.Solve();
  ASSERT_TRUE(sat.ok()) << sat.status();
  EXPECT_EQ(*sat, SolveResult::kSat);
  // Pass-through means pass-through: no rivals built, no race recorded —
  // byte-identical to running the primary alone.
  EXPECT_TRUE(race.rivals.empty());
  EXPECT_EQ(race.primary->stats().portfolio_races, 0);
  EXPECT_EQ(race.primary->stats().portfolio_cancelled, 0);
}

TEST(PortfolioTest, DisabledIsPassThroughEvenOnWidePools) {
  exec::ThreadPool pool(4);
  Race race;
  Var gate = race.Pigeonhole(5, 4);
  PortfolioOptions options;  // enabled defaults to false
  Portfolio portfolio = race.Make(options, &pool);
  EXPECT_EQ(portfolio.RaceWidth(), 1);
  auto verdict = portfolio.Solve({MakeLit(gate)});
  ASSERT_TRUE(verdict.ok()) << verdict.status();
  EXPECT_EQ(*verdict, SolveResult::kUnsat);
  EXPECT_TRUE(race.rivals.empty());
  EXPECT_EQ(race.primary->stats().portfolio_races, 0);
}

TEST(PortfolioTest, RaceAccountingAndReusabilityAfterCancellation) {
  exec::ThreadPool pool(4);
  Race race;
  Var gate = race.Pigeonhole(7, 6);
  PortfolioOptions options;
  options.enabled = true;
  options.num_solvers = 4;
  Portfolio portfolio = race.Make(options, &pool);
  EXPECT_GT(portfolio.RaceWidth(), 1);
  // Repeated races over the same reusable portfolio: some losers are
  // interrupted mid-search, and every interrupted solver must stay sound
  // for the next round (learnt clauses are implied).
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("round=" + std::to_string(round));
    auto unsat = portfolio.Solve({MakeLit(gate)});
    ASSERT_TRUE(unsat.ok()) << unsat.status();
    EXPECT_EQ(*unsat, SolveResult::kUnsat);
    auto sat = portfolio.Solve();
    ASSERT_TRUE(sat.ok()) << sat.status();
    EXPECT_EQ(*sat, SolveResult::kSat);
  }
  EXPECT_EQ(race.rivals.size(),
            static_cast<size_t>(portfolio.RaceWidth() - 1));
  EXPECT_EQ(race.primary->stats().portfolio_races, 6);
  EXPECT_GE(race.primary->stats().portfolio_cancelled, 0);
  // After every race the primary is still a plain solver: single-solver
  // calls keep working and agree with the raced verdicts.
  EXPECT_EQ(race.primary->SolveWithAssumptions({MakeLit(gate)}),
            SolveResult::kUnsat);
  EXPECT_EQ(race.primary->Solve(), SolveResult::kSat);
}

TEST_P(PortfolioProperty, CancellationTimingFuzz) {
  // Fuzz the cancellation window: rivals race formulas of varying
  // hardness so the stop flag lands at different points of the search
  // (propagation loops, restarts, mid-analysis).  Whatever the timing,
  // verdicts stay correct and the portfolio stays reusable.
  const int seed = GetParam();
  std::mt19937 rng(static_cast<unsigned>(seed) * 2663 + 7);
  exec::ThreadPool pool(seed % 2 == 0 ? 2 : 8);
  Race race;
  std::uniform_int_distribution<int> size_dist(4, 6);
  int pigeons = size_dist(rng);
  Var gate = race.Pigeonhole(pigeons, pigeons - 1);
  PortfolioOptions options;
  options.enabled = true;
  options.num_solvers = (seed % 3) + 2;
  Portfolio portfolio = race.Make(options, &pool);
  for (int round = 0; round < 3; ++round) {
    SCOPED_TRACE("seed=" + std::to_string(seed) +
                 " round=" + std::to_string(round));
    auto unsat = portfolio.Solve({MakeLit(gate)});
    ASSERT_TRUE(unsat.ok()) << unsat.status();
    EXPECT_EQ(*unsat, SolveResult::kUnsat);
    auto sat = portfolio.Solve();
    ASSERT_TRUE(sat.ok()) << sat.status();
    EXPECT_EQ(*sat, SolveResult::kSat);
  }
  EXPECT_EQ(race.primary->stats().portfolio_races, 6);
}

TEST(SolveLimitedTest, PreRaisedStopInterruptsAndLeavesSolverUsable) {
  Solver solver;
  Var gate = AddGatedPigeonhole(&solver, 6, 5);
  std::atomic<bool> stop{true};  // raised before the solve starts
  std::optional<SolveResult> interrupted =
      solver.SolveLimited({MakeLit(gate)}, &stop);
  EXPECT_FALSE(interrupted.has_value());
  // The interrupted solver must be fully reusable, with no trace of the
  // abandoned search in its answers.
  EXPECT_EQ(solver.SolveWithAssumptions({MakeLit(gate)}), SolveResult::kUnsat);
  EXPECT_EQ(solver.Solve(), SolveResult::kSat);
  // And a null stop pointer means "never interrupt".
  std::optional<SolveResult> ran = solver.SolveLimited({MakeLit(gate)}, nullptr);
  ASSERT_TRUE(ran.has_value());
  EXPECT_EQ(*ran, SolveResult::kUnsat);
}

INSTANTIATE_TEST_SUITE_P(Random, PortfolioProperty, ::testing::Range(0, 12));

}  // namespace
}  // namespace currency::sat
