// Unit tests for src/query: parser, classifier, evaluators.

#include <gtest/gtest.h>

#include "src/query/classify.h"
#include "src/query/eval.h"
#include "src/query/parser.h"

namespace currency::query {
namespace {

Relation MakeEmp() {
  // Fig. 1 of the paper, entity ids added: s1..s3 are Mary, s4/s5 Bob.
  Schema schema =
      Schema::Make("Emp", {"FN", "LN", "address", "salary", "status"}).value();
  Relation emp(schema);
  auto add = [&](const char* eid, const char* fn, const char* ln,
                 const char* addr, int salary, const char* status) {
    ASSERT_TRUE(emp.AppendValues({Value(eid), Value(fn), Value(ln),
                                  Value(addr), Value(salary), Value(status)})
                    .ok());
  };
  add("Mary", "Mary", "Smith", "2 Small St", 50, "single");
  add("Mary", "Mary", "Dupont", "10 Elm Ave", 50, "married");
  add("Mary", "Mary", "Dupont", "6 Main St", 80, "married");
  add("Bob", "Bob", "Luth", "8 Cowan St", 80, "married");
  add("Bob", "Robert", "Luth", "8 Drum St", 55, "married");
  return emp;
}

TEST(ParserTest, ParsesSimpleQuery) {
  auto q = ParseQuery(
      "Q1(s) := EXISTS e, fn, ln, a, st: Emp(e, fn, ln, a, s, st) AND "
      "e = 'Mary'");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->name, "Q1");
  EXPECT_EQ(q->head, std::vector<std::string>{"s"});
  EXPECT_EQ(q->body->kind(), Formula::Kind::kExists);
}

TEST(ParserTest, ParsesBooleanQuery) {
  auto q = ParseQuery("Q() := EXISTS x: R(x)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->head.empty());
}

TEST(ParserTest, ParsesForallNotOr) {
  auto q = ParseQuery(
      "Q(x) := R(x) AND (FORALL y: NOT S(x, y) OR T(y)) AND NOT U(x)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(Classify(*q), QueryLanguage::kFo);
}

TEST(ParserTest, QuantifierScopeExtendsRight) {
  auto q = ParseQuery("Q() := EXISTS x: R(x) AND S(x)");
  ASSERT_TRUE(q.ok()) << q.status();
  // EXISTS captures the whole conjunction.
  ASSERT_EQ(q->body->kind(), Formula::Kind::kExists);
  EXPECT_EQ(q->body->child()->kind(), Formula::Kind::kAnd);
}

TEST(ParserTest, RejectsUnboundHeadVariable) {
  EXPECT_FALSE(ParseQuery("Q(z) := EXISTS x: R(x)").ok());
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseQuery("Q(x) :=").ok());
  EXPECT_FALSE(ParseQuery("Q(x) R(x)").ok());
  EXPECT_FALSE(ParseQuery("Q(x) := R(x").ok());
  EXPECT_FALSE(ParseQuery("Q(x) := x").ok());
  EXPECT_FALSE(ParseFormula("R(x) AND").ok());
  EXPECT_FALSE(ParseFormula("R('unterminated)").ok());
}

TEST(ParserTest, ParsesConstantsAndComparisons) {
  auto f = ParseFormula("x >= 50 AND y != 'abc' AND z = 3.5");
  ASSERT_TRUE(f.ok()) << f.status();
  EXPECT_EQ((*f)->kind(), Formula::Kind::kAnd);
  EXPECT_EQ((*f)->children().size(), 3u);
}

TEST(ParserTest, RoundTripToString) {
  auto q = ParseQuery("Q(x) := EXISTS y: R(x, y) AND x = 1");
  ASSERT_TRUE(q.ok());
  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok()) << q2.status() << " on " << q->ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

TEST(ClassifyTest, Hierarchy) {
  auto cq = ParseQuery("Q(x) := EXISTS y: R(x, y) AND S(y)").value();
  EXPECT_EQ(Classify(cq), QueryLanguage::kCq);

  auto ucq =
      ParseQuery("Q(x) := (EXISTS y: R(x, y)) OR (EXISTS z: S2(x, z))").value();
  EXPECT_EQ(Classify(ucq), QueryLanguage::kUcq);

  auto efo = ParseQuery("Q(x) := EXISTS y: (R(x, y) OR S2(x, y))").value();
  EXPECT_EQ(Classify(efo), QueryLanguage::kExistsFoPlus);

  auto fo = ParseQuery("Q(x) := R(x, x) AND NOT S(x)").value();
  EXPECT_EQ(Classify(fo), QueryLanguage::kFo);

  auto forall = ParseQuery("Q(x) := R(x, x) AND FORALL y: S(y)").value();
  EXPECT_EQ(Classify(forall), QueryLanguage::kFo);
}

TEST(ClassifyTest, LanguageNames) {
  EXPECT_STREQ(QueryLanguageToString(QueryLanguage::kCq), "CQ");
  EXPECT_STREQ(QueryLanguageToString(QueryLanguage::kUcq), "UCQ");
  EXPECT_STREQ(QueryLanguageToString(QueryLanguage::kFo), "FO");
}

TEST(ClassifyTest, SpQueries) {
  // Q1 from the paper: selection + projection on Emp.
  auto q1 = ParseQuery(
                "Q1(s) := EXISTS e, fn, ln, a, st: "
                "Emp(e, fn, ln, a, s, st) AND e = 'Mary'")
                .value();
  EXPECT_TRUE(IsSpQuery(q1));
  EXPECT_EQ(Classify(q1), QueryLanguage::kCq);

  // A join is not SP.
  auto join =
      ParseQuery("Q(x) := EXISTS y: R(x, y) AND S(y)").value();
  EXPECT_FALSE(IsSpQuery(join));

  // Repeated variable in the atom is not SP.
  auto rep = ParseQuery("Q(x) := R(x, x)").value();
  EXPECT_FALSE(IsSpQuery(rep));

  // Identity query is SP.
  auto ident = ParseQuery("Q(x, y) := RN(x, y)").value();
  EXPECT_TRUE(IsSpQuery(ident));
  EXPECT_TRUE(IsIdentityQuery(ident));
  EXPECT_FALSE(IsIdentityQuery(q1));
  // Head order must match for identity.
  auto swapped = ParseQuery("Q(y, x) := RN(x, y)").value();
  EXPECT_FALSE(IsIdentityQuery(swapped));
}

TEST(EvalTest, SelectionProjection) {
  Relation emp = MakeEmp();
  Database db{{"Emp", &emp}};
  auto q = ParseQuery(
               "Q(s) := EXISTS e, fn, ln, a, st: Emp(e, fn, ln, a, s, st) "
               "AND e = 'Mary'")
               .value();
  auto result = EvalQuery(q, db);
  ASSERT_TRUE(result.ok()) << result.status();
  // Mary's salaries: 50 and 80.
  EXPECT_EQ(result->size(), 2u);
  EXPECT_TRUE(result->count(Tuple({Value(50)})));
  EXPECT_TRUE(result->count(Tuple({Value(80)})));
}

TEST(EvalTest, Join) {
  Schema rs = Schema::Make("R", {"A"}).value();
  Schema ss = Schema::Make("S", {"B"}).value();
  Relation r(rs), s(ss);
  ASSERT_TRUE(r.AppendValues({Value(1), Value(10)}).ok());
  ASSERT_TRUE(r.AppendValues({Value(2), Value(20)}).ok());
  ASSERT_TRUE(s.AppendValues({Value(7), Value(10)}).ok());
  Database db{{"R", &r}, {"S", &s}};
  auto q =
      ParseQuery("Q(x) := EXISTS e1, e2: R(e1, x) AND S(e2, x)").value();
  auto result = EvalQuery(q, db).value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result.count(Tuple({Value(10)})));
}

TEST(EvalTest, UnionOfConjunctiveQueries) {
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value(1), Value(10)}).ok());
  ASSERT_TRUE(r.AppendValues({Value(2), Value(20)}).ok());
  Database db{{"R", &r}};
  auto q = ParseQuery(
               "Q(x) := (EXISTS e: R(e, x) AND x = 10) OR "
               "(EXISTS e: R(e, x) AND x = 20)")
               .value();
  auto result = EvalQuery(q, db).value();
  EXPECT_EQ(result.size(), 2u);
}

TEST(EvalTest, NegationUsesActiveDomain) {
  Schema rs = Schema::Make("R", {"A"}).value();
  Schema ss = Schema::Make("S", {"B"}).value();
  Relation r(rs), s(ss);
  ASSERT_TRUE(r.AppendValues({Value(1), Value(10)}).ok());
  ASSERT_TRUE(r.AppendValues({Value(2), Value(20)}).ok());
  ASSERT_TRUE(s.AppendValues({Value(9), Value(10)}).ok());
  Database db{{"R", &r}, {"S", &s}};
  // Values x in R that do not occur in S.
  auto q = ParseQuery(
               "Q(x) := (EXISTS e: R(e, x)) AND NOT (EXISTS e2: S(e2, x))")
               .value();
  auto result = EvalQuery(q, db).value();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result.count(Tuple({Value(20)})));
}

TEST(EvalTest, UniversalQuantifier) {
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value(1), Value(10)}).ok());
  ASSERT_TRUE(r.AppendValues({Value(2), Value(20)}).ok());
  Database db{{"R", &r}};
  // FORALL x: EXISTS e: R(e, x) — false: x = 1 (an eid in the active
  // domain) has no tuple with A-value 1.
  auto f1 = ParseFormula("FORALL x: EXISTS e: R(e, x)").value();
  EXPECT_FALSE(EvalClosedFormula(f1, db).value());
  // FORALL x: EXISTS e, y: R(e, y) — trivially true (inner part constant).
  auto f2 = ParseFormula("FORALL x: EXISTS e, y: R(e, y)").value();
  EXPECT_TRUE(EvalClosedFormula(f2, db).value());
}

TEST(EvalTest, BooleanQueryYieldsEmptyTuple) {
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value(1), Value(10)}).ok());
  Database db{{"R", &r}};
  auto yes = ParseQuery("Q() := EXISTS e, x: R(e, x)").value();
  auto no = ParseQuery("Q() := EXISTS e: R(e, 99)").value();
  EXPECT_EQ(EvalQuery(yes, db).value().size(), 1u);
  EXPECT_EQ(EvalQuery(no, db).value().size(), 0u);
}

TEST(EvalTest, UnknownRelationFails) {
  Database db;
  auto q = ParseQuery("Q(x) := EXISTS e: R(e, x)").value();
  EXPECT_EQ(EvalQuery(q, db).status().code(), StatusCode::kNotFound);
}

TEST(EvalTest, ArityMismatchFails) {
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  Database db{{"R", &r}};
  auto q = ParseQuery("Q(x) := R(x)").value();
  EXPECT_EQ(EvalQuery(q, db).status().code(), StatusCode::kInvalidArgument);
}

TEST(EvalTest, ShadowedQuantifierScopes) {
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value(1), Value(10)}).ok());
  Database db{{"R", &r}};
  // Two sibling scopes both quantify 'e'; flattening must not conflate them.
  auto q = ParseQuery(
               "Q() := (EXISTS e: R(e, 10)) AND (EXISTS e: R(e, 10))")
               .value();
  EXPECT_EQ(EvalQuery(q, db).value().size(), 1u);
}

TEST(EvalTest, ConstantsInAtoms) {
  Relation emp = MakeEmp();
  Database db{{"Emp", &emp}};
  auto q = ParseQuery(
               "Q(ln) := EXISTS fn, a, s, st: "
               "Emp('Mary', fn, ln, a, s, st)")
               .value();
  auto result = EvalQuery(q, db).value();
  EXPECT_EQ(result.size(), 2u);  // Smith, Dupont
}

TEST(EvalTest, FreeVariablesAndConstantsApi) {
  auto f = ParseFormula("EXISTS y: R(x, y) AND z = 5").value();
  auto free = f->FreeVariables();
  ASSERT_EQ(free.size(), 2u);
  EXPECT_EQ(free[0], "x");
  EXPECT_EQ(free[1], "z");
  auto consts = f->Constants();
  ASSERT_EQ(consts.size(), 1u);
  EXPECT_EQ(consts[0], Value(5));
  EXPECT_EQ(f->Relations(), std::vector<std::string>{"R"});
}

}  // namespace
}  // namespace currency::query
