// Unit tests for src/common: Status, Result, Value, strings.

#include <gtest/gtest.h>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/common/strings.h"
#include "src/common/value.h"
#include "src/relational/relation.h"
#include "src/relational/schema.h"

namespace currency {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInconsistent), "Inconsistent");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return 2 * v;
}

TEST(ResultTest, ValuePath) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 21);
  EXPECT_EQ(*r, 21);
}

TEST(ResultTest, ErrorPath) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(DoubleIt(5).value(), 10);
  EXPECT_FALSE(DoubleIt(0).ok());
}

TEST(ValueTest, Kinds) {
  EXPECT_EQ(Value().kind(), ValueKind::kNull);
  EXPECT_EQ(Value(3).kind(), ValueKind::kInt);
  EXPECT_EQ(Value(3.5).kind(), ValueKind::kDouble);
  EXPECT_EQ(Value("hi").kind(), ValueKind::kString);
  EXPECT_EQ(Value::Bool(true).kind(), ValueKind::kBool);
}

TEST(ValueTest, NumericEqualityAcrossKinds) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_NE(Value(2), Value(2.5));
  EXPECT_NE(Value(2), Value("2"));
}

TEST(ValueTest, NullSemantics) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(0));
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value(0));
  EXPECT_LT(Value(1), Value(2));
  EXPECT_LT(Value(1.5), Value(2));
  EXPECT_LT(Value(100), Value("abc"));
  EXPECT_LT(Value("abc"), Value("abd"));
  // Irreflexivity on numerically equal values of distinct kinds must still
  // be a strict weak order.
  EXPECT_FALSE(Value(2) < Value(2));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(42).ToString(), "42");
  EXPECT_EQ(Value("Smith").ToString(), "Smith");
  EXPECT_EQ(Value::Bool(false).ToString(), "false");
  EXPECT_EQ(Value::Null().ToString(), "null");
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(2).Hash(), Value(2.0).Hash());
  EXPECT_EQ(Value("x").Hash(), Value(std::string("x")).Hash());
}

TEST(StringsTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b  "), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t\n "), "");
}

TEST(StringsTest, SplitAndTrim) {
  auto parts = SplitAndTrim("a, b , c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(SplitAndTrim("a,,b", ',').size(), 3u);
  EXPECT_EQ(SplitAndTrim("", ',').size(), 1u);
}

TEST(StringsTest, JoinAndStartsWith) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_TRUE(StartsWith("forall t", "forall"));
  EXPECT_FALSE(StartsWith("for", "forall"));
}

TEST(StringsTest, IsIdentifier) {
  EXPECT_TRUE(IsIdentifier("Emp"));
  EXPECT_TRUE(IsIdentifier("_x1"));
  EXPECT_FALSE(IsIdentifier("1x"));
  EXPECT_FALSE(IsIdentifier("a-b"));
  EXPECT_FALSE(IsIdentifier(""));
}

TEST(SchemaTest, MakeAndLookup) {
  auto schema = Schema::Make("Emp", {"FN", "LN", "salary"});
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->arity(), 4);
  EXPECT_EQ(schema->num_data_attributes(), 3);
  EXPECT_EQ(schema->attribute_name(0), "EID");
  EXPECT_EQ(schema->IndexOf("salary").value(), 3);
  EXPECT_FALSE(schema->IndexOf("missing").ok());
  EXPECT_TRUE(schema->HasAttribute("FN"));
  EXPECT_EQ(schema->ToString(), "Emp(EID, FN, LN, salary)");
}

TEST(SchemaTest, RejectsDuplicatesAndBadNames) {
  EXPECT_FALSE(Schema::Make("R", {"A", "A"}).ok());
  EXPECT_FALSE(Schema::Make("R", {"1bad"}).ok());
  EXPECT_FALSE(Schema::Make("bad name", {"A"}).ok());
  EXPECT_FALSE(Schema::Make("R", {"EID"}).ok());  // collides with EID
}

TEST(RelationTest, AppendAndGroups) {
  auto schema = Schema::Make("R", {"A"}).value();
  Relation rel(schema);
  EXPECT_TRUE(rel.AppendValues({Value("e1"), Value(1)}).ok());
  EXPECT_TRUE(rel.AppendValues({Value("e1"), Value(2)}).ok());
  EXPECT_TRUE(rel.AppendValues({Value("e2"), Value(3)}).ok());
  EXPECT_EQ(rel.size(), 3);
  auto groups = rel.EntityGroups();
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[Value("e1")].size(), 2u);
  EXPECT_EQ(rel.TuplesOf(Value("e2")), std::vector<TupleId>{2});
  EXPECT_EQ(rel.Entities().size(), 2u);
}

TEST(RelationTest, ArityMismatchRejected) {
  auto schema = Schema::Make("R", {"A"}).value();
  Relation rel(schema);
  EXPECT_FALSE(rel.AppendValues({Value("e1")}).ok());
}

TEST(RelationTest, ActiveDomainAndContains) {
  auto schema = Schema::Make("R", {"A"}).value();
  Relation rel(schema);
  ASSERT_TRUE(rel.AppendValues({Value("e1"), Value(7)}).ok());
  auto dom = rel.ActiveDomain();
  EXPECT_TRUE(dom.count(Value("e1")));
  EXPECT_TRUE(dom.count(Value(7)));
  EXPECT_TRUE(rel.ContainsValue(Tuple({Value("e1"), Value(7)})));
  EXPECT_FALSE(rel.ContainsValue(Tuple({Value("e1"), Value(8)})));
}

TEST(RelationTest, ToStringRendersTable) {
  auto schema = Schema::Make("R", {"A"}).value();
  Relation rel(schema);
  ASSERT_TRUE(rel.AppendValues({Value("e1"), Value(7)}).ok());
  std::string s = rel.ToString();
  EXPECT_NE(s.find("EID"), std::string::npos);
  EXPECT_NE(s.find("e1"), std::string::npos);
}

}  // namespace
}  // namespace currency
