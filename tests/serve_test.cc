// Unit coverage for the serving layer (src/serve/session.h): session
// lifecycle, batch routing and request-order results, warm-cache
// behaviour, Mutate's component-precise invalidation (no-op edits,
// value edits, EID-driven component split/merge), rejected edit batches,
// and the vacuous (Mod(S) = ∅) conventions.  The randomized
// session-vs-fresh sweep lives in session_equivalence_test.cc.

#include <gtest/gtest.h>

#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/consistency.h"
#include "src/core/deterministic.h"
#include "src/query/parser.h"
#include "src/serve/session.h"
#include "tests/fixtures.h"

namespace currency::serve {
namespace {

using currency::testing::MakeQ1Trimmed;
using currency::testing::MakeQ4Trimmed;
using currency::testing::MakeS0Trimmed;

std::unique_ptr<CurrencySession> MakeSession(core::Specification spec,
                                             int threads = 1) {
  SessionOptions options;
  options.num_threads = threads;
  auto session = CurrencySession::Create(std::move(spec), options);
  EXPECT_TRUE(session.ok()) << session.status();
  return std::move(session).value();
}

/// A two-entity single-relation specification whose entities form two
/// independent coupling components.
core::Specification MakeTwoComponentSpec() {
  core::Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  (void)r.AppendValues({Value("e0"), Value(0)});
  (void)r.AppendValues({Value("e0"), Value(1)});
  (void)r.AppendValues({Value("e1"), Value(2)});
  (void)r.AppendValues({Value("e1"), Value(3)});
  (void)spec.AddInstance(core::TemporalInstance(std::move(r)));
  EXPECT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: s.A > t.A -> t PREC[A] s")
          .ok());
  return spec;
}

TEST(CurrencySession, MatchesOneShotSolversOnS0) {
  core::Specification spec = MakeS0Trimmed();
  auto session = MakeSession(MakeS0Trimmed());

  // CPS.
  auto cps = session->CpsCheck();
  ASSERT_TRUE(cps.ok()) << cps.status();
  EXPECT_EQ(*cps, core::DecideConsistency(spec)->consistent);

  // COP: a batch of queries answered in request order.  Trimmed Emp
  // attrs: LN = 1, address = 2, salary = 3, status = 4.
  std::vector<core::CurrencyOrderQuery> queries;
  {
    core::CurrencyOrderQuery q;  // s1 ≺_salary s3 (certain: ϕ1)
    q.relation = "Emp";
    q.pairs = {core::RequiredPair{3, 0, 2}};
    queries.push_back(q);
    q.pairs = {core::RequiredPair{3, 2, 0}};  // reversed: refutable
    queries.push_back(q);
    q.pairs = {core::RequiredPair{1, 0, 3}};  // cross-entity: false
    queries.push_back(q);
    q.pairs = {core::RequiredPair{1, 0, 0}};  // reflexive: false
    queries.push_back(q);
  }
  auto cop = session->CopBatch(queries);
  ASSERT_TRUE(cop.ok()) << cop.status();
  ASSERT_EQ(cop->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto fresh = core::IsCertainOrder(spec, queries[i]);
    ASSERT_TRUE(fresh.ok()) << fresh.status();
    EXPECT_EQ((*cop)[i], *fresh) << "query " << i;
  }

  // DCIP for both relations.
  auto dcip = session->DcipBatch({"Emp", "Dept"});
  ASSERT_TRUE(dcip.ok()) << dcip.status();
  EXPECT_EQ((*dcip)[0], core::IsDeterministicForRelation(spec, "Emp").value());
  EXPECT_EQ((*dcip)[1], core::IsDeterministicForRelation(spec, "Dept").value());

  // CCQA: answer sets and memberships for Q1/Q4.
  std::vector<CcqaRequest> requests;
  requests.push_back(CcqaRequest{MakeQ1Trimmed(), std::nullopt});
  requests.push_back(CcqaRequest{MakeQ4Trimmed(), std::nullopt});
  requests.push_back(CcqaRequest{MakeQ1Trimmed(), Tuple({Value(80)})});
  auto ccqa = session->CcqaBatch(requests);
  ASSERT_TRUE(ccqa.ok()) << ccqa.status();
  core::CcqaOptions copts;
  copts.use_sp_fast_path = false;
  EXPECT_EQ(*(*ccqa)[0].answers,
            core::CertainCurrentAnswers(spec, MakeQ1Trimmed(), copts).value());
  EXPECT_EQ(*(*ccqa)[1].answers,
            core::CertainCurrentAnswers(spec, MakeQ4Trimmed(), copts).value());
  EXPECT_EQ(*(*ccqa)[2].is_certain,
            core::IsCertainCurrentAnswer(spec, MakeQ1Trimmed(),
                                         Tuple({Value(80)}), copts)
                .value());
  EXPECT_GT(session->stats().merged_builds, 0);
}

TEST(CurrencySession, WarmRequestsServeFromTheResultCache) {
  auto session = MakeSession(MakeTwoComponentSpec());
  ASSERT_TRUE(session->CpsCheck().value());
  int64_t solves = session->stats().base_solves;
  EXPECT_EQ(solves, 2) << "one base solve per component";
  // Warm CPS and COP reuse the cached solves and encoders.
  ASSERT_TRUE(session->CpsCheck().value());
  core::CurrencyOrderQuery q;
  q.relation = "R";
  q.pairs = {core::RequiredPair{1, 0, 1}};
  ASSERT_TRUE(session->CopBatch({q}).ok());
  EXPECT_EQ(session->stats().base_solves, solves);
}

TEST(CurrencySession, NoOpMutateInvalidatesNothing) {
  auto session = MakeSession(MakeTwoComponentSpec());
  ASSERT_TRUE(session->CpsCheck().value());
  int64_t solves = session->stats().base_solves;
  // Rewriting a cell with its current value changes no fingerprint.
  ASSERT_TRUE(
      session->Mutate({core::TupleEdit{0, 0, 1, Value(0)}}).ok());
  EXPECT_EQ(session->stats().last_invalidated, 0);
  EXPECT_EQ(session->stats().last_reused, session->num_components());
  ASSERT_TRUE(session->CpsCheck().value());
  EXPECT_EQ(session->stats().base_solves, solves)
      << "a no-op edit must not trigger re-solves";
}

TEST(CurrencySession, MutateInvalidatesExactlyTheTouchedComponent) {
  auto session = MakeSession(MakeTwoComponentSpec());
  ASSERT_TRUE(session->CpsCheck().value());
  EXPECT_EQ(session->num_components(), 2);
  int64_t solves = session->stats().base_solves;
  // Edit entity e0's tuple 0: only e0's component may rebuild.
  ASSERT_TRUE(session->Mutate({core::TupleEdit{0, 0, 1, Value(9)}}).ok());
  EXPECT_EQ(session->stats().last_invalidated, 1);
  EXPECT_EQ(session->stats().last_reused, 1);
  ASSERT_TRUE(session->CpsCheck().value());
  EXPECT_EQ(session->stats().base_solves, solves + 1)
      << "exactly the touched component re-solves";
  // And the answers equal a fresh solve over the mutated specification.
  core::CpsOptions mono;
  mono.use_decomposition = false;
  EXPECT_EQ(session->CpsCheck().value(),
            core::DecideConsistency(session->spec(), mono)->consistent);
}

TEST(CurrencySession, EidEditsMergeAndSplitCouplingComponents) {
  // R entities e0 = {0, 1} and e1 = {2, 3}; R2's f0 copies A from tuples
  // 0 (entity e0) and 2 (entity e1).  Each (f0, e*) bucket has one
  // source, so nothing couples: components are {R:e0}, {R:e1}, {R2:f0}.
  core::Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  (void)r.AppendValues({Value("e0"), Value(0)});
  (void)r.AppendValues({Value("e0"), Value(1)});
  (void)r.AppendValues({Value("e1"), Value(2)});
  (void)r.AppendValues({Value("e1"), Value(3)});
  (void)spec.AddInstance(core::TemporalInstance(std::move(r)));
  Schema r2s = Schema::Make("R2", {"C"}).value();
  Relation r2(r2s);
  (void)r2.AppendValues({Value("f0"), Value(0)});
  (void)r2.AppendValues({Value("f0"), Value(2)});
  copy::CopySignature sig;
  sig.target_relation = "R2";
  sig.target_attrs = {"C"};
  sig.source_relation = "R";
  sig.source_attrs = {"A"};
  copy::CopyFunction fn(sig);
  ASSERT_TRUE(fn.Map(0, 0).ok());
  ASSERT_TRUE(fn.Map(1, 2).ok());
  (void)spec.AddInstance(core::TemporalInstance(std::move(r2)));
  ASSERT_TRUE(spec.AddCopyFunction(std::move(fn)).ok());

  auto session = MakeSession(std::move(spec));
  EXPECT_EQ(session->num_components(), 3);
  ASSERT_TRUE(session->CpsCheck().value());

  // Merge: moving tuple 2 into e0 gives bucket (f0, e0) two distinct
  // sources, coupling {R:e0, R2:f0} into one component.
  ASSERT_TRUE(session->Mutate({core::TupleEdit{0, 2, 0, Value("e0")}}).ok());
  EXPECT_EQ(session->num_components(), 2);
  ASSERT_TRUE(session->CpsCheck().value());
  core::CpsOptions mono;
  mono.use_decomposition = false;
  EXPECT_EQ(session->CpsCheck().value(),
            core::DecideConsistency(session->spec(), mono)->consistent);

  // Split: moving it back restores the three decoupled components.
  ASSERT_TRUE(session->Mutate({core::TupleEdit{0, 2, 0, Value("e1")}}).ok());
  EXPECT_EQ(session->num_components(), 3);
  ASSERT_TRUE(session->CpsCheck().value());
}

TEST(CurrencySession, RejectedMutationsLeaveTheSessionIntact) {
  // A spec with an initial order on tuple 0 and a copy of Emp-style data:
  // re-use S0 trimmed (ρ: Dept[mgrAddr] ⇐ Emp[address]).
  core::Specification with_order = MakeTwoComponentSpec();
  ASSERT_TRUE(with_order.mutable_instance(0)->AddOrder(1, 0, 1).ok());
  auto session = MakeSession(std::move(with_order));
  ASSERT_TRUE(session->CpsCheck().value());
  int64_t solves = session->stats().base_solves;

  // (a) EID edit on a tuple with initial orders: rejected.
  Status st = session->Mutate({core::TupleEdit{0, 0, 0, Value("e1")}});
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st;
  // (b) Out-of-range edit: rejected.
  EXPECT_EQ(session->Mutate({core::TupleEdit{0, 99, 1, Value(1)}})
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session->stats().mutations, 0);
  ASSERT_TRUE(session->CpsCheck().value());
  EXPECT_EQ(session->stats().base_solves, solves)
      << "rejected mutations must not drop the caches";

  // (c) A copy-condition-violating edit rolls back atomically.  The
  // session runs two threads so the parallel batch below also exercises
  // the post-rollback path under TSan: ApplyTupleEdits must leave the
  // entity-group caches warm even though the epoch rebuild is skipped.
  auto s0 = MakeSession(MakeS0Trimmed(), /*threads=*/2);
  ASSERT_TRUE(s0->CpsCheck().ok());
  // Emp s1's address feeds Dept t1/t2 via ρ: editing it alone breaks the
  // copying condition.
  Status bad = s0->Mutate({core::TupleEdit{0, 0, 2, Value("9 New Rd")}});
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(s0->spec().instance(0).relation().tuple(0).at(2),
            Value("2 Small St"))
      << "the failed batch must roll back";
  auto post_reject = s0->DcipBatch({"Emp", "Dept"});
  ASSERT_TRUE(post_reject.ok()) << post_reject.status();
  // The coordinated batch (source + both copy targets) is accepted.
  ASSERT_TRUE(s0->Mutate({core::TupleEdit{0, 0, 2, Value("9 New Rd")},
                          core::TupleEdit{1, 0, 1, Value("9 New Rd")},
                          core::TupleEdit{1, 1, 1, Value("9 New Rd")}})
                  .ok());
  EXPECT_EQ(s0->CpsCheck().value(),
            core::DecideConsistency(s0->spec())->consistent);
}

TEST(CurrencySession, VacuousAnswersOnInconsistentSpecifications) {
  // Two tuples with A = 0 and A = 1 plus a pure denial whose premises
  // are value-only: every completion is denied, so Mod(S) = ∅.
  core::Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  (void)r.AppendValues({Value("e0"), Value(0)});
  (void)r.AppendValues({Value("e0"), Value(1)});
  (void)spec.AddInstance(core::TemporalInstance(std::move(r)));
  ASSERT_TRUE(
      spec.AddConstraintText(
              "FORALL s, t IN R: s.A = 0 AND t.A = 1 -> s PREC[A] s")
          .ok());
  auto session = MakeSession(std::move(spec));
  EXPECT_FALSE(session->CpsCheck().value());

  core::CurrencyOrderQuery q;
  q.relation = "R";
  q.pairs = {core::RequiredPair{1, 0, 1}};
  EXPECT_TRUE(session->CopBatch({q})->at(0)) << "COP is vacuously true";
  EXPECT_TRUE(session->DcipBatch({"R"})->at(0)) << "DCIP is vacuously true";

  query::Query query =
      query::ParseQuery("Q(x) := EXISTS y: R('e0', x, y)").value();
  auto ccqa = session->CcqaBatch(
      {CcqaRequest{query, std::nullopt}, CcqaRequest{query, Tuple({Value(7)})}});
  ASSERT_TRUE(ccqa.ok()) << ccqa.status();
  EXPECT_TRUE((*ccqa)[0].vacuous);
  EXPECT_FALSE((*ccqa)[0].answers.has_value());
  EXPECT_TRUE((*ccqa)[1].vacuous);
  EXPECT_TRUE(*(*ccqa)[1].is_certain) << "membership is vacuously certain";
}

TEST(CurrencySession, ValidatesInputsUpFront) {
  SessionOptions zero_threads;
  zero_threads.num_threads = 0;
  EXPECT_EQ(CurrencySession::Create(MakeTwoComponentSpec(), zero_threads)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  auto session = MakeSession(MakeTwoComponentSpec());
  core::CurrencyOrderQuery unknown;
  unknown.relation = "Nope";
  EXPECT_EQ(session->CopBatch({unknown}).status().code(),
            StatusCode::kNotFound);
  core::CurrencyOrderQuery bad_pair;
  bad_pair.relation = "R";
  bad_pair.pairs = {core::RequiredPair{1, 0, 99}};
  EXPECT_EQ(session->CopBatch({bad_pair}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session->DcipBatch({"Nope"}).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace currency::serve
