// Metamorphic suite for the arena-backed SAT core (src/sat/solver.h),
// with two independent reference points:
//
//  * DIFFERENTIAL vs the preserved pre-arena engine (sat::LegacySolver):
//    identical clause/assumption streams must produce identical SAT/UNSAT
//    verdicts, models that satisfy the recorded formula on both engines,
//    and identical projected-model SETS under enumeration.  (Individual
//    models and enumeration order are search-path artifacts — the two
//    engines legitimately differ there, because blocker watchers and the
//    indexed heap change the search; every path-independent output must
//    agree.)
//
//  * GC TRANSPARENCY within the arena engine: arena compaction relocates
//    clauses and translates every watcher/reason in place, so a
//    relocation-only GC must be bit-for-bit invisible — same verdicts,
//    same MODELS, same enumeration ORDER, same decision/conflict/
//    propagation counts.  The GC-stress hook compacts at every Solve
//    entry and restart; the reduce-limit hook forces ReduceDB + GC
//    cycles mid-search.  This is asserted at the raw solver level, at
//    the spec level (CPS witnesses, CCQA answer sets, current-instance
//    enumeration order, via tests/fixtures.h random specifications), and
//    against warm serve::CurrencySession caches whose solvers compact
//    between batches.
//
// scripts/check.sh re-runs this suite under AddressSanitizer (arena
// relocation is exactly the lifetime traffic ASan polices) and
// ThreadSanitizer (the session case batches on a thread pool).

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/consistency.h"
#include "src/query/parser.h"
#include "src/sat/legacy_solver.h"
#include "src/sat/model_enumerator.h"
#include "src/sat/solver.h"
#include "src/serve/session.h"
#include "tests/fixtures.h"

namespace currency::sat {
namespace {

using currency::testing::MakeRandomSpec;

/// RAII guards for the process-wide solver test hooks.
struct GcStressScope {
  explicit GcStressScope(bool on) { Solver::SetGcStressForTesting(on); }
  ~GcStressScope() { Solver::SetGcStressForTesting(false); }
};
struct ReduceLimitScope {
  explicit ReduceLimitScope(int64_t limit) {
    Solver::SetReduceLimitForTesting(limit);
  }
  ~ReduceLimitScope() { Solver::SetReduceLimitForTesting(-1); }
};

/// Checks a CNF (as recorded clause lists) against an engine's model.
template <typename SolverT>
bool CnfSatisfied(const std::vector<std::vector<Lit>>& cnf,
                  const SolverT& solver) {
  for (const auto& clause : cnf) {
    bool sat = false;
    for (Lit l : clause) {
      bool v = solver.ModelValue(LitVar(l));
      if (LitIsNeg(l) ? !v : v) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

std::vector<std::vector<Lit>> RandomClauses(std::mt19937* rng, int num_vars,
                                            int count) {
  std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);
  std::vector<std::vector<Lit>> cnf;
  for (int c = 0; c < count; ++c) {
    std::vector<Lit> clause;
    for (int i = 0; i < 3; ++i) {
      clause.push_back(MakeLit(var_dist(*rng), sign_dist(*rng) == 1));
    }
    cnf.push_back(std::move(clause));
  }
  return cnf;
}

/// Gated pigeonhole clauses: UNSAT under the gate assumption, SAT
/// without it; hard enough to accumulate learnt clauses and (with the
/// reduce-limit hook) force mid-search ReduceDB + GC cycles.
template <typename SolverT>
Var AddGatedPigeonhole(SolverT* s, int pigeons, int holes) {
  Var gate = s->NewVar();
  std::vector<std::vector<Var>> x(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) x[p][h] = s->NewVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c{MakeLit(gate, true)};
    for (int h = 0; h < holes; ++h) c.push_back(MakeLit(x[p][h]));
    EXPECT_TRUE(s->AddClause(c));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        EXPECT_TRUE(
            s->AddClause({MakeLit(x[p1][h], true), MakeLit(x[p2][h], true)}));
      }
    }
  }
  return gate;
}

// ---------------------------------------------------------------------
// Differential: arena engine vs the preserved legacy engine.
// ---------------------------------------------------------------------

class ArenaVsLegacyProperty : public ::testing::TestWithParam<int> {};

TEST_P(ArenaVsLegacyProperty, IncrementalStreamsAgree) {
  std::mt19937 rng(GetParam() * 9176 + 3);
  const int num_vars = 10;
  std::uniform_int_distribution<int> batch_dist(3, 8);
  std::uniform_int_distribution<int> nassume_dist(1, 4);
  std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);

  Solver arena;
  LegacySolver legacy;
  for (int i = 0; i < num_vars; ++i) {
    arena.NewVar();
    legacy.NewVar();
  }
  std::vector<std::vector<Lit>> cnf;
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " round=" + std::to_string(round));
    for (auto& clause : RandomClauses(&rng, num_vars, batch_dist(rng))) {
      // The boolean AddClause returns is level-0 DETECTION, which is
      // search-path dependent (one engine may have learnt the refuting
      // unit already); only Solve verdicts are canonical.
      (void)arena.AddClause(clause);
      (void)legacy.AddClause(clause);
      cnf.push_back(std::move(clause));
    }
    SolveResult base_a = arena.Solve();
    SolveResult base_l = legacy.Solve();
    ASSERT_EQ(base_a, base_l);
    if (base_a == SolveResult::kSat) {
      EXPECT_TRUE(CnfSatisfied(cnf, arena));
      EXPECT_TRUE(CnfSatisfied(cnf, legacy));
    } else {
      EXPECT_TRUE(arena.IsUnsatForever());
      break;
    }
    for (int probe = 0; probe < 2; ++probe) {
      std::vector<Lit> assumptions;
      int n = nassume_dist(rng);
      for (int i = 0; i < n; ++i) {
        assumptions.push_back(MakeLit(var_dist(rng), sign_dist(rng) == 1));
      }
      SolveResult ra = arena.SolveWithAssumptions(assumptions);
      SolveResult rl = legacy.SolveWithAssumptions(assumptions);
      ASSERT_EQ(ra, rl) << "assumption probe " << probe;
      if (ra == SolveResult::kSat) {
        EXPECT_TRUE(CnfSatisfied(cnf, arena));
        for (Lit a : assumptions) {
          bool v = arena.ModelValue(LitVar(a));
          EXPECT_TRUE(LitIsNeg(a) ? !v : v) << "assumption not honoured";
        }
      }
    }
  }
}

TEST_P(ArenaVsLegacyProperty, AgreeUnderForcedMidSearchReduceGc) {
  // Reduce limit 0: every level-0 reduction checkpoint with any
  // deletable learnt clause fires ReduceDB and therefore a compaction —
  // the arena relocates repeatedly mid-solve while the legacy engine
  // (which does not read the hook) keeps its default schedule.
  ReduceLimitScope hook(0);
  std::mt19937 rng(GetParam() * 40013 + 11);
  const int num_vars = 10;
  Solver arena;
  LegacySolver legacy;
  for (int i = 0; i < num_vars; ++i) {
    arena.NewVar();
    legacy.NewVar();
  }
  std::vector<std::vector<Lit>> cnf = RandomClauses(&rng, num_vars, 42);
  for (const auto& clause : cnf) {
    (void)arena.AddClause(clause);
    (void)legacy.AddClause(clause);
  }
  ASSERT_EQ(arena.Solve(), legacy.Solve());
  std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);
  for (int probe = 0; probe < 4; ++probe) {
    std::vector<Lit> assumptions{MakeLit(var_dist(rng), sign_dist(rng) == 1),
                                 MakeLit(var_dist(rng), sign_dist(rng) == 1)};
    ASSERT_EQ(arena.SolveWithAssumptions(assumptions),
              legacy.SolveWithAssumptions(assumptions))
        << "probe " << probe;
  }
}

TEST(ArenaVsLegacyTest, PigeonholeWithForcedReduceGcCycles) {
  ReduceLimitScope hook(0);
  Solver arena;
  LegacySolver legacy;
  Var gate_a = AddGatedPigeonhole(&arena, 6, 5);
  Var gate_l = AddGatedPigeonhole(&legacy, 6, 5);
  ASSERT_EQ(gate_a, gate_l);
  for (int round = 0; round < 2; ++round) {
    EXPECT_EQ(arena.SolveWithAssumptions({MakeLit(gate_a)}),
              SolveResult::kUnsat);
    EXPECT_EQ(legacy.SolveWithAssumptions({MakeLit(gate_l)}),
              SolveResult::kUnsat);
    EXPECT_EQ(arena.Solve(), SolveResult::kSat);
    EXPECT_EQ(legacy.Solve(), SolveResult::kSat);
  }
  // The hook must have produced real mid-search reductions + compactions.
  EXPECT_GT(arena.stats().reductions, 0);
  EXPECT_GT(arena.stats().gc_runs, 0);
  EXPECT_GT(arena.stats().deleted_clauses, 0);
}

TEST(LearntMinimizationTest, MinimizedClausesStillAssertAgainstLegacy) {
  // Conflict analysis now strips redundant literals (recursive
  // minimization + binary self-subsumption) before attaching the learnt
  // clause.  The asserting literal is never removed, so the shortened
  // clause still flips the search exactly like the unminimized one would
  // — which the legacy engine (no minimization) cross-checks verdict for
  // verdict on a workload heavy enough to learn thousands of clauses.
  Solver arena;
  LegacySolver legacy;
  Var gate_a = AddGatedPigeonhole(&arena, 7, 6);
  Var gate_l = AddGatedPigeonhole(&legacy, 7, 6);
  ASSERT_EQ(gate_a, gate_l);
  EXPECT_EQ(arena.SolveWithAssumptions({MakeLit(gate_a)}),
            SolveResult::kUnsat);
  EXPECT_EQ(legacy.SolveWithAssumptions({MakeLit(gate_l)}),
            SolveResult::kUnsat);
  EXPECT_EQ(arena.Solve(), SolveResult::kSat);
  EXPECT_EQ(legacy.Solve(), SolveResult::kSat);
  // The pigeonhole's long clauses guarantee minimization opportunities.
  EXPECT_GT(arena.stats().minimized_literals, 0);
}

TEST_P(ArenaVsLegacyProperty, MinimizationAgreesOnRandomStreams) {
  // Same differential contract on random 3-CNF streams: minimization may
  // only remove literals whose negations are implied by the rest of the
  // clause, so verdicts (and model validity) cannot move.
  std::mt19937 rng(GetParam() * 52361 + 17);
  const int num_vars = 12;
  Solver arena;
  LegacySolver legacy;
  for (int i = 0; i < num_vars; ++i) {
    arena.NewVar();
    legacy.NewVar();
  }
  std::vector<std::vector<Lit>> cnf = RandomClauses(&rng, num_vars, 50);
  for (const auto& clause : cnf) {
    (void)arena.AddClause(clause);
    (void)legacy.AddClause(clause);
  }
  SolveResult base = arena.Solve();
  ASSERT_EQ(base, legacy.Solve());
  if (base == SolveResult::kSat) {
    EXPECT_TRUE(CnfSatisfied(cnf, arena));
  }
  std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);
  for (int probe = 0; probe < 4; ++probe) {
    std::vector<Lit> assumptions{MakeLit(var_dist(rng), sign_dist(rng) == 1),
                                 MakeLit(var_dist(rng), sign_dist(rng) == 1)};
    ASSERT_EQ(arena.SolveWithAssumptions(assumptions),
              legacy.SolveWithAssumptions(assumptions))
        << "probe " << probe;
  }
}

TEST(TierLifecycleTest, TieredReduceDbDemotesAndAgreesWithLegacy) {
  // Forced ReduceDB at every checkpoint exercises the full tier
  // lifecycle: learn-time tiering by LBD, TIER2 → LOCAL demotion of
  // clauses untouched across a reduction, LOCAL deletion.  The tier
  // gauges must stay consistent (non-negative, bounded by the clauses
  // ever learnt) and the verdicts must still match the untiered legacy
  // engine.
  ReduceLimitScope hook(0);
  Solver arena;
  LegacySolver legacy;
  Var gate_a = AddGatedPigeonhole(&arena, 6, 5);
  Var gate_l = AddGatedPigeonhole(&legacy, 6, 5);
  ASSERT_EQ(gate_a, gate_l);
  for (int round = 0; round < 2; ++round) {
    EXPECT_EQ(arena.SolveWithAssumptions({MakeLit(gate_a)}),
              SolveResult::kUnsat);
    EXPECT_EQ(legacy.SolveWithAssumptions({MakeLit(gate_l)}),
              SolveResult::kUnsat);
    EXPECT_EQ(arena.Solve(), SolveResult::kSat);
    EXPECT_EQ(legacy.Solve(), SolveResult::kSat);
  }
  const SolverStats& stats = arena.stats();
  EXPECT_GT(stats.reductions, 0);
  EXPECT_GT(stats.demotions, 0) << "no TIER2 clause aged out";
  EXPECT_GE(stats.tier_core, 0);
  EXPECT_GE(stats.tier_tier2, 0);
  EXPECT_GE(stats.tier_local, 0);
  // Live tiered clauses can never exceed the clauses ever learnt.
  EXPECT_LE(stats.tier_core + stats.tier_tier2 + stats.tier_local,
            stats.learnt_clauses);
  // CORE clauses are kept forever: with conflicts this heavy some glue
  // clauses must have been learnt and retained.
  EXPECT_GT(stats.tier_core, 0);
}

TEST_P(ArenaVsLegacyProperty, ProjectedEnumerationSetsMatch) {
  std::mt19937 rng(GetParam() * 7723 + 29);
  const int num_vars = 8;
  std::vector<std::vector<Lit>> cnf = RandomClauses(&rng, num_vars, 14);
  std::vector<Var> projection{0, 1, 2};

  Solver arena;
  for (int i = 0; i < num_vars; ++i) arena.NewVar();
  for (const auto& clause : cnf) (void)arena.AddClause(clause);
  std::set<std::vector<bool>> arena_models;
  auto res = EnumerateProjectedModels(&arena, projection, 1000,
                                      [&](const std::vector<bool>& m) {
                                        arena_models.insert(m);
                                        return true;
                                      });
  ASSERT_TRUE(res.ok()) << res.status();

  // Legacy enumeration, with the enumerator's blocking scheme inlined.
  LegacySolver legacy;
  for (int i = 0; i < num_vars; ++i) legacy.NewVar();
  for (const auto& clause : cnf) (void)legacy.AddClause(clause);
  std::set<std::vector<bool>> legacy_models;
  while (legacy.Solve() == SolveResult::kSat) {
    std::vector<bool> values(projection.size());
    std::vector<Lit> block;
    for (size_t i = 0; i < projection.size(); ++i) {
      values[i] = legacy.ModelValue(projection[i]);
      block.push_back(MakeLit(projection[i], values[i]));
    }
    legacy_models.insert(std::move(values));
    if (!legacy.AddClause(std::move(block))) break;
  }
  EXPECT_EQ(arena_models, legacy_models);
  EXPECT_EQ(static_cast<int64_t>(arena_models.size()), res->models);
}

INSTANTIATE_TEST_SUITE_P(Random, ArenaVsLegacyProperty,
                         ::testing::Range(0, 30));

// ---------------------------------------------------------------------
// GC transparency: compaction must be bit-for-bit invisible.
// ---------------------------------------------------------------------

struct ScriptRecord {
  std::vector<SolveResult> verdicts;
  std::vector<std::vector<int8_t>> models;
  std::vector<std::vector<bool>> enumerated;  // in enumeration ORDER
  int64_t decisions = 0;
  int64_t conflicts = 0;
  int64_t propagations = 0;
  int64_t learnt_clauses = 0;
  int64_t gc_runs = 0;

  bool SameSearch(const ScriptRecord& other) const {
    return verdicts == other.verdicts && models == other.models &&
           enumerated == other.enumerated && decisions == other.decisions &&
           conflicts == other.conflicts && propagations == other.propagations &&
           learnt_clauses == other.learnt_clauses;
  }
};

/// One deterministic incremental workload on the arena engine: clause
/// batches, assumption probes, a gated pigeonhole for conflict volume,
/// and a final projected enumeration.
ScriptRecord RunScript(int seed) {
  std::mt19937 rng(seed * 5647 + 1);
  const int num_vars = 10;
  Solver s;
  for (int i = 0; i < num_vars; ++i) s.NewVar();
  Var gate = AddGatedPigeonhole(&s, 5, 4);
  ScriptRecord record;
  std::uniform_int_distribution<int> var_dist(0, num_vars - 1);
  std::uniform_int_distribution<int> sign_dist(0, 1);
  auto observe = [&](SolveResult r) {
    record.verdicts.push_back(r);
    if (r == SolveResult::kSat) record.models.push_back(s.model());
  };
  for (int round = 0; round < 4; ++round) {
    for (auto& clause : RandomClauses(&rng, num_vars, 6)) {
      (void)s.AddClause(clause);
    }
    observe(s.Solve());
    observe(s.SolveWithAssumptions({MakeLit(gate)}));
    observe(s.SolveWithAssumptions(
        {MakeLit(var_dist(rng), sign_dist(rng) == 1),
         MakeLit(var_dist(rng), sign_dist(rng) == 1)}));
  }
  (void)EnumerateProjectedModels(&s, {0, 1, 2}, 64,
                                 [&](const std::vector<bool>& m) {
                                   record.enumerated.push_back(m);
                                   return true;
                                 });
  record.decisions = s.stats().decisions;
  record.conflicts = s.stats().conflicts;
  record.propagations = s.stats().propagations;
  record.learnt_clauses = s.stats().learnt_clauses;
  record.gc_runs = s.stats().gc_runs;
  return record;
}

class GcTransparencyProperty : public ::testing::TestWithParam<int> {};

TEST_P(GcTransparencyProperty, StressCompactionIsBitIdentical) {
  // Both runs share the forced reduce limit (ReduceDB + GC cycles are
  // part of the schedule and must be deterministic); the stress run
  // additionally compacts at every Solve entry and restart, which must
  // not change a single decision.
  ReduceLimitScope reduce(16);
  ScriptRecord plain = RunScript(GetParam());
  ScriptRecord stressed;
  {
    GcStressScope stress(true);
    stressed = RunScript(GetParam());
  }
  EXPECT_TRUE(plain.SameSearch(stressed))
      << "arena compaction changed the search (seed " << GetParam() << ")";
  EXPECT_GT(stressed.gc_runs, plain.gc_runs);
}

INSTANTIATE_TEST_SUITE_P(Random, GcTransparencyProperty,
                         ::testing::Range(0, 12));

/// Spec-level record of everything the currency pipeline derives from
/// solver models: CPS verdict + witness completion, CCQA answer set, and
/// the current-instance enumeration order.
struct SpecRecord {
  bool consistent = false;
  std::optional<core::Completion> witness;
  bool ccqa_ok = false;
  std::set<Tuple> answers;
  std::vector<std::string> instance_sequence;

  bool operator==(const SpecRecord& other) const {
    bool witness_eq = witness.has_value() == other.witness.has_value() &&
                      (!witness.has_value() ||
                       witness->orders == other.witness->orders);
    return consistent == other.consistent && witness_eq &&
           ccqa_ok == other.ccqa_ok && answers == other.answers &&
           instance_sequence == other.instance_sequence;
  }
};

SpecRecord RunSpecWorkload(const core::Specification& spec) {
  SpecRecord record;
  core::CpsOptions cps;
  cps.use_ptime_path_without_constraints = false;  // force the SAT path
  cps.want_witness = true;
  auto outcome = core::DecideConsistency(spec, cps);
  EXPECT_TRUE(outcome.ok()) << outcome.status();
  if (!outcome.ok()) return record;
  record.consistent = outcome->consistent;
  record.witness = outcome->witness;

  query::Query q =
      query::ParseQuery("QA(a) := EXISTS e, b: R(e, a, b)").value();
  core::CcqaOptions ccqa;
  auto answers = core::CertainCurrentAnswers(spec, q, ccqa);
  record.ccqa_ok = answers.ok();
  if (answers.ok()) record.answers = *answers;

  auto visited = core::ForEachCurrentInstance(
      spec, ccqa, [&](const query::Database& db) {
        std::string snapshot;
        for (const auto& [name, relation] : db) {
          snapshot += name + "=" + relation->ToString() + ";";
        }
        record.instance_sequence.push_back(std::move(snapshot));
        return true;
      });
  EXPECT_TRUE(visited.ok()) << visited.status();  // inconsistent ⇒ 0 visits
  return record;
}

TEST_P(GcTransparencyProperty, SpecLevelOutputsSurviveCompaction) {
  core::Specification spec =
      MakeRandomSpec(static_cast<unsigned>(GetParam()) * 733 + 5,
                     /*with_copy=*/GetParam() % 2 == 0,
                     /*with_constraints=*/true);
  ReduceLimitScope reduce(8);
  SpecRecord plain = RunSpecWorkload(spec);
  SpecRecord stressed;
  {
    GcStressScope stress(true);
    stressed = RunSpecWorkload(spec);
  }
  EXPECT_TRUE(plain == stressed)
      << "CPS witness / CCQA answers / enumeration order changed under "
         "arena compaction (seed "
      << GetParam() << ")";
}

TEST(GcTransparencyTest, WarmSessionCachesSurviveCompaction) {
  // A session's cached component solvers accumulate learnt clauses
  // across batches; with the stress hook on, every probe entry compacts
  // those warm arenas.  Answers before, during, and after — and across a
  // Mutate that re-adopts cached encoders — must be identical to the
  // stress-free session and to fresh one-shot solves.
  core::Specification spec = MakeRandomSpec(4242, /*with_copy=*/true,
                                            /*with_constraints=*/true);
  serve::SessionOptions options;
  options.num_threads = 2;  // TSan coverage: compaction inside pooled tasks

  std::vector<core::CurrencyOrderQuery> queries;
  for (TupleId before = 0; before < 3; ++before) {
    core::CurrencyOrderQuery q;
    q.relation = "R";
    q.pairs = {core::RequiredPair{1, before, (before + 1) % 3},
               core::RequiredPair{2, (before + 1) % 3, before}};
    queries.push_back(std::move(q));
  }
  query::Query qa = query::ParseQuery("QA(a) := EXISTS e, b: R(e, a, b)").value();
  std::vector<serve::CcqaRequest> ccqa_requests;
  ccqa_requests.push_back(serve::CcqaRequest{qa, std::nullopt});

  auto run_session = [&](bool stress_warm_batches) {
    struct Results {
      bool cps = false;
      std::vector<bool> cop_warmup, cop_stressed, cop_after_mutate;
      std::vector<serve::CcqaResponse> ccqa;
    } results;
    auto session = serve::CurrencySession::Create(spec, options);
    EXPECT_TRUE(session.ok()) << session.status();
    results.cps = (*session)->CpsCheck().value();
    results.cop_warmup = (*session)->CopBatch(queries).value();
    {
      GcStressScope stress(stress_warm_batches);
      results.cop_stressed = (*session)->CopBatch(queries).value();
      results.ccqa = (*session)->CcqaBatch(ccqa_requests).value();
      core::TupleEdit edit{0, 0, 2, Value(97)};
      Status st = (*session)->Mutate({edit});
      EXPECT_TRUE(st.ok()) << st;
      results.cop_after_mutate = (*session)->CopBatch(queries).value();
    }
    return results;
  };

  auto plain = run_session(false);
  auto stressed = run_session(true);
  EXPECT_EQ(plain.cps, stressed.cps);
  EXPECT_EQ(plain.cop_warmup, stressed.cop_warmup);
  EXPECT_EQ(plain.cop_stressed, stressed.cop_stressed);
  EXPECT_EQ(plain.cop_after_mutate, stressed.cop_after_mutate);
  ASSERT_EQ(plain.ccqa.size(), stressed.ccqa.size());
  for (size_t i = 0; i < plain.ccqa.size(); ++i) {
    EXPECT_EQ(plain.ccqa[i].vacuous, stressed.ccqa[i].vacuous);
    EXPECT_EQ(plain.ccqa[i].answers, stressed.ccqa[i].answers);
  }
  // Warm answers must also be internally stable under compaction.
  EXPECT_EQ(stressed.cop_warmup, stressed.cop_stressed);
}

}  // namespace
}  // namespace currency::sat
