// Parallel-vs-sequential equivalence for the decomposed solvers: CPS,
// COP, DCIP and CCQA must return bit-identical answers, witnesses, and
// enumeration orders for every thread count.  The parallel layer only
// reschedules per-component work (src/exec/thread_pool.h), so any
// divergence here is a thread-confinement bug — which is also why
// scripts/check.sh re-runs this suite under ThreadSanitizer.
//
// Each draw is checked across num_threads ∈ {1, 2, 8} against the
// sequential answer AND against the brute-force oracle, so a bug that
// broke both paths identically would still be caught.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/core/brute_force.h"
#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/consistency.h"
#include "src/core/deterministic.h"
#include "src/obs/trace.h"
#include "src/query/parser.h"
#include "tests/fixtures.h"

namespace currency::core {
namespace {

using currency::testing::MakeRandomSpec;

constexpr int kThreadCounts[] = {1, 2, 8};

/// Canonical serialization of a completion (the witness comparison is on
/// the exact orders, not just validity).
std::string CanonicalCompletion(const Completion& c) {
  std::string out;
  for (const auto& per_inst : c.orders) {
    for (const auto& po : per_inst) out += po.ToString() + "|";
  }
  return out;
}

/// Canonical serialization of a current-instance database.  Tuple order
/// within one relation is part of the decoded output and must also be
/// identical across thread counts, so no sorting happens here.
std::string CanonicalDb(const query::Database& db) {
  std::string out;
  for (const auto& [name, rel] : db) {
    out += name + "{";
    for (const Tuple& t : rel->tuples()) out += t.ToString() + ";";
    out += "}";
  }
  return out;
}

class ParallelEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEquivalence, AllSolversAgreeForEveryThreadCount) {
  // Variants 0–3: the historical copy × constraints grid.  Variants 4–5
  // add entity-gated constraints with a 0.5 constraint-free fraction, so
  // the decomposed paths mix chase-routed and SAT-routed components.
  for (int variant = 0; variant < 6; ++variant) {
    bool with_copy = variant & 1;
    bool with_constraints = (variant & 2) || variant >= 4;
    double free_fraction = variant >= 4 ? 0.5 : 0.0;
    Specification spec = MakeRandomSpec(GetParam() * 911 + variant, with_copy,
                                        with_constraints, free_fraction);
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " variant=" + std::to_string(variant));

    // --- CPS: answer and witness, vs oracle and across threads. ---
    bool oracle_consistent = BruteForceConsistent(spec).value();
    std::optional<std::string> witness_1;
    for (int threads : kThreadCounts) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      CpsOptions cps;
      cps.use_ptime_path_without_constraints = false;  // exercise SAT
      cps.want_witness = true;
      cps.num_threads = threads;
      auto outcome = DecideConsistency(spec, cps);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      EXPECT_EQ(outcome->consistent, oracle_consistent);
      if (outcome->consistent) {
        ASSERT_TRUE(outcome->witness.has_value());
        EXPECT_TRUE(IsConsistentCompletion(spec, *outcome->witness).value());
        std::string canonical = CanonicalCompletion(*outcome->witness);
        if (!witness_1.has_value()) {
          witness_1 = canonical;  // threads == 1 runs first
        } else {
          EXPECT_EQ(canonical, *witness_1)
              << "witness differs from the sequential path";
        }
      }
    }

    // --- COP on same-entity and cross-entity pairs. ---
    for (const RequiredPair& pair :
         {RequiredPair{1, 0, 1}, RequiredPair{2, 1, 0}, RequiredPair{1, 0, 2},
          RequiredPair{1, 2, 3}}) {
      CurrencyOrderQuery q;
      q.relation = "R";
      q.pairs = {pair};
      bool oracle = BruteForceCertainOrder(spec, q).value();
      for (int threads : kThreadCounts) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        CopOptions cop;
        cop.use_ptime_path_without_constraints = false;
        cop.num_threads = threads;
        EXPECT_EQ(IsCertainOrder(spec, q, cop).value(), oracle);
      }
    }
    // A multi-pair query spanning both entities exercises the per-
    // component pair grouping.
    {
      CurrencyOrderQuery q;
      q.relation = "R";
      q.pairs = {RequiredPair{1, 0, 1}, RequiredPair{2, 2, 3},
                 RequiredPair{1, 1, 0}};
      bool oracle = BruteForceCertainOrder(spec, q).value();
      for (int threads : kThreadCounts) {
        CopOptions cop;
        cop.use_ptime_path_without_constraints = false;
        cop.num_threads = threads;
        EXPECT_EQ(IsCertainOrder(spec, q, cop).value(), oracle)
            << "multi-pair, threads=" << threads;
      }
    }

    // --- DCIP per relation. ---
    bool oracle_det = BruteForceDeterministic(spec, "R").value();
    for (int threads : kThreadCounts) {
      DcipOptions dcip;
      dcip.use_ptime_path_without_constraints = false;
      dcip.num_threads = threads;
      EXPECT_EQ(IsDeterministicForRelation(spec, "R", dcip).value(),
                oracle_det)
          << "threads=" << threads;
    }

    // --- CCQA: enumeration order and count, identical across threads. ---
    std::optional<std::vector<std::string>> order_1;
    std::optional<int64_t> count_1;
    for (int threads : kThreadCounts) {
      CcqaOptions ccqa;
      ccqa.num_threads = threads;
      std::vector<std::string> order;
      auto count = ForEachCurrentInstance(
          spec, ccqa, [&](const query::Database& db) {
            order.push_back(CanonicalDb(db));
            return true;
          });
      ASSERT_TRUE(count.ok()) << count.status();
      if (!order_1.has_value()) {
        order_1 = order;
        count_1 = *count;
      } else {
        EXPECT_EQ(*count, *count_1) << "threads=" << threads;
        EXPECT_EQ(order, *order_1)
            << "enumeration order differs from the sequential path, "
            << "threads=" << threads;
      }
    }

    // --- CCQA answer sets vs oracle. ---
    query::Query q =
        query::ParseQuery("Q(x) := EXISTS y: R('e0', x, y)").value();
    auto oracle_answers = BruteForceCertainAnswers(spec, q);
    for (int threads : kThreadCounts) {
      CcqaOptions ccqa;
      ccqa.use_sp_fast_path = false;  // force the SAT membership loop
      ccqa.num_threads = threads;
      auto answers = CertainCurrentAnswers(spec, q, ccqa);
      if (!oracle_answers.ok()) {
        EXPECT_EQ(answers.status().code(), oracle_answers.status().code())
            << "threads=" << threads;
      } else {
        ASSERT_TRUE(answers.ok()) << answers.status();
        EXPECT_EQ(*answers, *oracle_answers) << "threads=" << threads;
      }
    }
  }
}

// Portfolio racing (sat::Portfolio) is verdict-deterministic: with the
// component-size gate lowered so even these small random components
// route through a race, every answer, witness, and enumeration order
// must be bit-identical to the portfolio-off path — at every thread
// count (1 thread is the pass-through, ≥2 race for real).
TEST_P(ParallelEquivalence, PortfolioOnAnswersMatchPortfolioOff) {
  sat::PortfolioOptions portfolio;
  portfolio.enabled = true;
  portfolio.num_solvers = 3;
  portfolio.min_component_size = 1;  // route even single-group components
  // Constraint-bearing variants only: constraint-free components are
  // chase-routed and never portfolio-eligible anyway.
  for (int variant : {2, 3, 5}) {
    bool with_copy = variant & 1;
    bool with_constraints = (variant & 2) || variant >= 4;
    double free_fraction = variant >= 4 ? 0.5 : 0.0;
    Specification spec = MakeRandomSpec(GetParam() * 911 + variant, with_copy,
                                        with_constraints, free_fraction);
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " variant=" + std::to_string(variant));

    // --- CPS: verdicts vs oracle; witnesses vs the portfolio-off path
    // (want_witness keeps every component single-solver by contract, so
    // the completion must be bit-identical). ---
    bool oracle_consistent = BruteForceConsistent(spec).value();
    std::optional<std::string> witness_off;
    for (int threads : kThreadCounts) {
      SCOPED_TRACE("threads=" + std::to_string(threads));
      CpsOptions cps;
      cps.use_ptime_path_without_constraints = false;
      cps.num_threads = threads;
      cps.portfolio = portfolio;
      auto outcome = DecideConsistency(spec, cps);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      EXPECT_EQ(outcome->consistent, oracle_consistent);

      CpsOptions wit = cps;
      wit.want_witness = true;
      auto with_witness = DecideConsistency(spec, wit);
      ASSERT_TRUE(with_witness.ok()) << with_witness.status();
      EXPECT_EQ(with_witness->consistent, oracle_consistent);
      if (with_witness->consistent) {
        ASSERT_TRUE(with_witness->witness.has_value());
        std::string canonical = CanonicalCompletion(*with_witness->witness);
        if (!witness_off.has_value()) {
          CpsOptions off = wit;
          off.portfolio = sat::PortfolioOptions{};  // disabled
          witness_off = CanonicalCompletion(
              *DecideConsistency(spec, off)->witness);
        }
        EXPECT_EQ(canonical, *witness_off)
            << "witness differs from the portfolio-off path";
      }
    }

    // --- COP: raced refutation probes vs oracle. ---
    CurrencyOrderQuery q;
    q.relation = "R";
    q.pairs = {RequiredPair{1, 0, 1}, RequiredPair{2, 2, 3},
               RequiredPair{1, 1, 0}};
    bool oracle_order = BruteForceCertainOrder(spec, q).value();
    for (int threads : kThreadCounts) {
      CopOptions cop;
      cop.use_ptime_path_without_constraints = false;
      cop.num_threads = threads;
      cop.portfolio = portfolio;
      EXPECT_EQ(IsCertainOrder(spec, q, cop).value(), oracle_order)
          << "threads=" << threads;
    }

    // --- DCIP: raced phase-2 probes (model re-established first). ---
    bool oracle_det = BruteForceDeterministic(spec, "R").value();
    for (int threads : kThreadCounts) {
      DcipOptions dcip;
      dcip.use_ptime_path_without_constraints = false;
      dcip.num_threads = threads;
      dcip.portfolio = portfolio;
      EXPECT_EQ(IsDeterministicForRelation(spec, "R", dcip).value(),
                oracle_det)
          << "threads=" << threads;
    }

    // --- CCQA stays on the single-solver path by design (enumeration
    // order is search-path-dependent); its order must be unchanged by
    // other procedures having raced on the same spec. ---
    std::optional<std::vector<std::string>> order_off;
    for (int threads : kThreadCounts) {
      CcqaOptions ccqa;
      ccqa.num_threads = threads;
      std::vector<std::string> order;
      auto count = ForEachCurrentInstance(
          spec, ccqa, [&](const query::Database& db) {
            order.push_back(CanonicalDb(db));
            return true;
          });
      ASSERT_TRUE(count.ok()) << count.status();
      if (!order_off.has_value()) {
        order_off = order;
      } else {
        EXPECT_EQ(order, *order_off) << "threads=" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ParallelEquivalence, ::testing::Range(0, 15));

// An inconsistent multi-component specification: the first-UNSAT
// cancellation path must answer identically for every thread count (this
// is the shape where cancellation actually fires under contention).
TEST(ParallelEquivalence, FirstUnsatCancellationIsDeterministic) {
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  // 24 satisfiable two-tuple entities plus one two-tuple entity whose
  // initial order contradicts the constraint below.
  for (int e = 0; e < 24; ++e) {
    Value eid("e" + std::to_string(e));
    (void)r.AppendValues({eid, Value(0)});
    (void)r.AppendValues({eid, Value(1)});
  }
  Value bad("zbad");
  (void)r.AppendValues({bad, Value(10)});
  (void)r.AppendValues({bad, Value(11)});
  TemporalInstance inst(std::move(r));
  (void)inst.AddOrder(1, 48, 49);  // zbad: t48 ≺ t49 ...
  (void)spec.AddInstance(std::move(inst));
  // ... but larger A must be more stale, forcing t49 ≺ t48: UNSAT.
  ASSERT_TRUE(spec.AddConstraintText(
                      "FORALL s, t IN R: s.A > t.A -> s PREC[A] t")
                  .ok());
  ASSERT_FALSE(BruteForceConsistent(spec).value());
  for (int threads : kThreadCounts) {
    CpsOptions cps;
    cps.use_ptime_path_without_constraints = false;
    cps.num_threads = threads;
    auto outcome = DecideConsistency(spec, cps);
    ASSERT_TRUE(outcome.ok());
    EXPECT_FALSE(outcome->consistent) << "threads=" << threads;
    EXPECT_EQ(outcome->components, 25);
  }
}

// An active trace root on the calling thread must be invisible to the
// parallel solvers: stages opened on pool worker threads are inert by
// design (src/obs/trace.h), and time never flows back into control flow,
// so witnesses and enumeration orders stay bit-identical whether or not
// a span is live — at every thread count.
TEST(ParallelEquivalence, ActiveTraceRootDoesNotPerturbSolvers) {
  Specification spec = MakeRandomSpec(4242, /*with_copy=*/true,
                                      /*with_constraints=*/true,
                                      /*free_fraction=*/0.5);
  obs::TraceOptions trace_options;
  trace_options.enabled = true;
  obs::Tracer tracer(trace_options);
  std::optional<std::string> baseline_witness;
  std::optional<std::vector<std::string>> baseline_order;
  for (int threads : kThreadCounts) {
    for (bool traced : {false, true}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " traced=" + std::to_string(traced));
      std::optional<obs::TraceSpan> span;
      if (traced) span.emplace(&tracer, "test", "equivalence");

      CpsOptions cps;
      cps.use_ptime_path_without_constraints = false;
      cps.want_witness = true;
      cps.num_threads = threads;
      auto outcome = DecideConsistency(spec, cps);
      ASSERT_TRUE(outcome.ok()) << outcome.status();
      ASSERT_TRUE(outcome->consistent);
      std::string witness = CanonicalCompletion(*outcome->witness);
      if (!baseline_witness.has_value()) {
        baseline_witness = witness;
      } else {
        EXPECT_EQ(witness, *baseline_witness);
      }

      CcqaOptions ccqa;
      ccqa.num_threads = threads;
      std::vector<std::string> order;
      auto count = ForEachCurrentInstance(
          spec, ccqa, [&](const query::Database& db) {
            order.push_back(CanonicalDb(db));
            return true;
          });
      ASSERT_TRUE(count.ok()) << count.status();
      if (!baseline_order.has_value()) {
        baseline_order = order;
      } else {
        EXPECT_EQ(order, *baseline_order);
      }
    }
  }
}

}  // namespace
}  // namespace currency::core
