// Unit tests for src/copy: copying condition, ≺-compatibility (Example 2.2).

#include <gtest/gtest.h>

#include "src/copy/copy_function.h"

namespace currency::copy {
namespace {

Schema EmpSchema() {
  return Schema::Make("Emp", {"FN", "LN", "address", "salary", "status"})
      .value();
}
Schema DeptSchema() {
  return Schema::Make("Dept", {"mgrFN", "mgrLN", "mgrAddr", "budget"},
                      "dname")
      .value();
}

Relation MakeEmp() {
  Relation emp(EmpSchema());
  auto add = [&](const char* eid, const char* fn, const char* ln,
                 const char* addr, int salary, const char* status) {
    ASSERT_TRUE(emp.AppendValues({Value(eid), Value(fn), Value(ln),
                                  Value(addr), Value(salary), Value(status)})
                    .ok());
  };
  add("Mary", "Mary", "Smith", "2 Small St", 50, "single");    // s1 = 0
  add("Mary", "Mary", "Dupont", "10 Elm Ave", 50, "married");  // s2 = 1
  add("Mary", "Mary", "Dupont", "6 Main St", 80, "married");   // s3 = 2
  add("Bob", "Bob", "Luth", "8 Cowan St", 80, "married");      // s4 = 3
  add("Bob", "Robert", "Luth", "8 Drum St", 55, "married");    // s5 = 4
  return emp;
}

Relation MakeDept() {
  Relation dept(DeptSchema());
  auto add = [&](const char* dn, const char* fn, const char* ln,
                 const char* addr, int budget) {
    ASSERT_TRUE(dept.AppendValues(
                        {Value(dn), Value(fn), Value(ln), Value(addr),
                         Value(budget)})
                    .ok());
  };
  add("R&D_", "Mary", "Smith", "2 Small St", 6500);  // t1 = 0
  add("R&D_", "Mary", "Smith", "2 Small St", 7000);  // t2 = 1
  add("R&D_", "Mary", "Dupont", "6 Main St", 6000);  // t3 = 2
  add("R&D_", "Ed", "Luth", "8 Cowan St", 6000);     // t4 = 3
  return dept;
}

CopyFunction MakeRho() {
  // ρ: Dept[mgrAddr] ⇐ Emp[address] with ρ(t1)=s1, ρ(t2)=s1, ρ(t3)=s3,
  // ρ(t4)=s4 (Example 2.2).
  CopySignature sig;
  sig.target_relation = "Dept";
  sig.target_attrs = {"mgrAddr"};
  sig.source_relation = "Emp";
  sig.source_attrs = {"address"};
  CopyFunction rho(sig);
  EXPECT_TRUE(rho.Map(0, 0).ok());
  EXPECT_TRUE(rho.Map(1, 0).ok());
  EXPECT_TRUE(rho.Map(2, 2).ok());
  EXPECT_TRUE(rho.Map(3, 3).ok());
  return rho;
}

TEST(CopyFunctionTest, SignatureToString) {
  CopyFunction rho = MakeRho();
  EXPECT_EQ(rho.signature().ToString(),
            "Dept[mgrAddr] <= Emp[address]");
}

TEST(CopyFunctionTest, MappingBasics) {
  CopyFunction rho = MakeRho();
  EXPECT_EQ(rho.size(), 4);
  EXPECT_EQ(rho.SourceOf(0), 0);
  EXPECT_EQ(rho.SourceOf(2), 2);
  EXPECT_EQ(rho.SourceOf(99), -1);
  EXPECT_FALSE(rho.Map(0, 1).ok());  // remap rejected
}

TEST(CopyFunctionTest, CopyingConditionHolds) {
  Relation emp = MakeEmp();
  Relation dept = MakeDept();
  CopyFunction rho = MakeRho();
  EXPECT_TRUE(rho.Validate(dept, emp).ok());
}

TEST(CopyFunctionTest, CopyingConditionViolation) {
  Relation emp = MakeEmp();
  Relation dept = MakeDept();
  CopySignature sig;
  sig.target_relation = "Dept";
  sig.target_attrs = {"mgrAddr"};
  sig.source_relation = "Emp";
  sig.source_attrs = {"address"};
  CopyFunction bad(sig);
  ASSERT_TRUE(bad.Map(0, 2).ok());  // t1[mgrAddr]="2 Small St" != s3[address]
  EXPECT_EQ(bad.Validate(dept, emp).code(), StatusCode::kFailedPrecondition);
}

TEST(CopyFunctionTest, ResolveAttrsValidation) {
  Relation emp = MakeEmp();
  Relation dept = MakeDept();
  CopySignature sig;
  sig.target_relation = "Dept";
  sig.target_attrs = {"mgrAddr", "budget"};
  sig.source_relation = "Emp";
  sig.source_attrs = {"address"};
  CopyFunction mismatched(sig);
  EXPECT_FALSE(
      mismatched.ResolveAttrs(dept.schema(), emp.schema()).ok());
  sig.target_attrs = {"nope"};
  CopyFunction unknown(sig);
  EXPECT_FALSE(unknown.ResolveAttrs(dept.schema(), emp.schema()).ok());
}

TEST(CopyFunctionTest, CoversAllTargetAttributes) {
  Schema dept = DeptSchema();
  CopySignature partial;
  partial.target_attrs = {"mgrAddr"};
  EXPECT_FALSE(CopyFunction(partial).CoversAllTargetAttributes(dept));
  CopySignature full;
  full.target_attrs = {"mgrFN", "mgrLN", "mgrAddr", "budget"};
  EXPECT_TRUE(CopyFunction(full).CoversAllTargetAttributes(dept));
}

TEST(CopyFunctionTest, OrderCompatibilityExample22) {
  Relation emp = MakeEmp();
  Relation dept = MakeDept();
  CopyFunction rho = MakeRho();
  AttrIndex address = emp.schema().IndexOf("address").value();
  AttrIndex mgr_addr = dept.schema().IndexOf("mgrAddr").value();

  std::vector<PartialOrder> emp_orders(emp.schema().arity(),
                                       PartialOrder(emp.size()));
  std::vector<PartialOrder> dept_orders(dept.schema().arity(),
                                        PartialOrder(dept.size()));
  // Empty orders: trivially compatible.
  EXPECT_TRUE(
      rho.IsOrderCompatible(dept, dept_orders, emp, emp_orders).value());

  // Example 2.2: with s1 ≺_address s3 and t3 ≺_mgrAddr t1, ρ is NOT
  // ≺-compatible (s1≺s3 requires t1≺t3, contradicting t3≺t1).
  ASSERT_TRUE(emp_orders[address].Add(0, 2).ok());
  ASSERT_TRUE(dept_orders[mgr_addr].Add(2, 0).ok());
  EXPECT_FALSE(
      rho.IsOrderCompatible(dept, dept_orders, emp, emp_orders).value());

  // Flipping the Dept order restores compatibility: both t1 and t2 copy
  // from s1, so s1 ≺ s3 forces t1 ≺ t3 AND t2 ≺ t3.
  std::vector<PartialOrder> dept_ok(dept.schema().arity(),
                                    PartialOrder(dept.size()));
  ASSERT_TRUE(dept_ok[mgr_addr].Add(0, 2).ok());
  EXPECT_FALSE(
      rho.IsOrderCompatible(dept, dept_ok, emp, emp_orders).value());
  ASSERT_TRUE(dept_ok[mgr_addr].Add(1, 2).ok());
  EXPECT_TRUE(rho.IsOrderCompatible(dept, dept_ok, emp, emp_orders).value());
}

TEST(CopyFunctionTest, CompatibilityIgnoresCrossEntityPairs) {
  Relation emp = MakeEmp();
  Relation dept = MakeDept();
  CopyFunction rho = MakeRho();
  AttrIndex address = emp.schema().IndexOf("address").value();
  std::vector<PartialOrder> emp_orders(emp.schema().arity(),
                                       PartialOrder(emp.size()));
  std::vector<PartialOrder> dept_orders(dept.schema().arity(),
                                        PartialOrder(dept.size()));
  // s3 (Mary) ≺ s4 (Bob) crosses entities in the SOURCE: ρ(t3)=s3 and
  // ρ(t4)=s4 share the Dept entity R&D, but the source tuples belong to
  // different people, so no constraint arises.
  ASSERT_TRUE(emp_orders[address].Add(2, 3).ok());
  EXPECT_TRUE(
      rho.IsOrderCompatible(dept, dept_orders, emp, emp_orders).value());
}

}  // namespace
}  // namespace currency::copy
