// Tests for the wire formats (src/wire): round-trip exactness of the
// "CSPC" specification and "CEDT" tuple-edit messages, a checked-in
// golden blob pinning the byte format, and robustness against truncated
// or corrupted buffers (errors, never crashes).
//
// The golden test is the format's tripwire: if it fails and the change
// was intentional, bump the version constant in src/wire/spec.cc, add a
// migration path for buffers already on disk (the durable command log
// stores these bytes), and regenerate the constant below.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/specification.h"
#include "src/wire/spec.h"
#include "tests/fixtures.h"

namespace currency {
namespace {

using currency::testing::MakeRandomSpec;

std::string ToHex(const std::string& bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string hex;
  hex.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    hex.push_back(kDigits[c >> 4]);
    hex.push_back(kDigits[c & 0xF]);
  }
  return hex;
}

std::string FromHex(const std::string& hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    return c - 'a' + 10;
  };
  std::string bytes;
  bytes.reserve(hex.size() / 2);
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    bytes.push_back(static_cast<char>((nibble(hex[i]) << 4) | nibble(hex[i + 1])));
  }
  return bytes;
}

/// The fixed specification behind the golden blob: deliberately touches
/// every value kind (null, int, double, string, bool), an initial
/// currency order, a denial constraint and a copy edge.  Do not change
/// it — the golden hex below encodes exactly this object.
core::Specification MakeGoldenSpec() {
  core::Specification spec;
  auto check = [](const Status& s) { ASSERT_TRUE(s.ok()) << s.ToString(); };

  Schema gs = Schema::Make("G", {"A", "B"}).value();
  Relation g(gs);
  check(g.AppendValues({Value("e1"), Value(1), Value("x")}).status());
  check(g.AppendValues({Value("e1"), Value(2.5), Value::Null()}).status());
  check(g.AppendValues({Value("e2"), Value::Bool(true), Value("y")}).status());
  core::TemporalInstance gi(std::move(g));
  check(gi.AddOrder(1, 0, 1));
  check(spec.AddInstance(std::move(gi)));

  Schema hs = Schema::Make("H", {"C"}).value();
  Relation h(hs);
  check(h.AppendValues({Value("f0"), Value(1)}).status());
  check(spec.AddInstance(core::TemporalInstance(std::move(h))));

  check(spec.AddConstraintText("FORALL s, t IN G: s.A > t.A -> t PREC[A] s"));

  copy::CopySignature sig;
  sig.target_relation = "H";
  sig.target_attrs = {"C"};
  sig.source_relation = "G";
  sig.source_attrs = {"A"};
  copy::CopyFunction rho(sig);
  check(rho.Map(0, 0));
  check(spec.AddCopyFunction(std::move(rho)));
  return spec;
}

std::vector<core::TupleEdit> MakeGoldenEdits() {
  std::vector<core::TupleEdit> edits;
  edits.push_back({0, 2, 2, Value("z")});
  edits.push_back({0, 0, 1, Value(3.25)});
  edits.push_back({1, 0, 1, Value::Null()});
  return edits;
}

// Generated from MakeGoldenSpec() / MakeGoldenEdits(); see
// GoldenBlobMatches for the regeneration instructions.
constexpr char kGoldenSpecHex[] =
    "43535043010000000200000001000000470300000003000000454944010000004101"
    "00000042030000000302000000653101010000000000000003010000007803020000"
    "00653102000000000000044000030200000065320401030100000079010000000000"
    "00000100000000000000010000000200000001000000040000000000010000000001"
    "00000001000000000000000100000000000000010000000100000048020000000300"
    "00004549440100000043010000000302000000663001010000000000000000000000"
    "00000000010000000100000048010000000100000043010000004701000000010000"
    "0041010000000000000000000000";
constexpr char kGoldenEditsHex[] =
    "43454454010000000300000000000000020000000200000003010000007a00000000"
    "0000000001000000020000000000000a4001000000000000000100000000";

TEST(WireSpec, GoldenBlobMatches) {
  const std::string bytes = wire::SerializeSpecification(MakeGoldenSpec());
  EXPECT_EQ(ToHex(bytes), kGoldenSpecHex)
      << "The CSPC wire encoding changed.  If this is an INTENTIONAL "
         "format change: bump the CSPC version constant in "
         "src/wire/spec.cc, add a migration path for version-1 buffers "
         "(the durable command log persists them inside CCMD/CSNP "
         "records), and regenerate this constant from "
         "ToHex(SerializeSpecification(MakeGoldenSpec())).  If it is not "
         "intentional, you just broke every log directory on disk.";
}

TEST(WireSpec, GoldenBlobParses) {
  // The checked-in bytes (not merely today's serializer output) must
  // parse: this is what protects buffers written by past builds.
  auto parsed = wire::ParseSpecification(FromHex(kGoldenSpecHex));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const core::Specification& spec = parsed.value();
  EXPECT_EQ(wire::SerializeSpecification(spec), FromHex(kGoldenSpecHex));
  EXPECT_EQ(spec.num_instances(), 2);
  EXPECT_EQ(spec.constraints_for(0).size(), 1u);
  EXPECT_EQ(spec.copy_edges().size(), 1u);
}

TEST(WireEdits, GoldenBlobMatches) {
  const std::string bytes = wire::SerializeTupleEdits(MakeGoldenEdits());
  EXPECT_EQ(ToHex(bytes), kGoldenEditsHex)
      << "The CEDT wire encoding changed.  If intentional: bump the CEDT "
         "version constant in src/wire/spec.cc, add a migration path, and "
         "regenerate this constant; otherwise revert.";
}

TEST(WireSpec, RandomSpecsRoundTripByteExactly) {
  for (unsigned seed = 0; seed < 40; ++seed) {
    for (bool with_copy : {false, true}) {
      for (bool with_constraints : {false, true}) {
        core::Specification spec =
            MakeRandomSpec(seed, with_copy, with_constraints,
                           /*constraint_free_fraction=*/(seed % 3) * 0.5);
        const std::string bytes = wire::SerializeSpecification(spec);
        auto parsed = wire::ParseSpecification(bytes);
        ASSERT_TRUE(parsed.ok())
            << "seed=" << seed << " copy=" << with_copy
            << " constraints=" << with_constraints << ": "
            << parsed.status().ToString();
        // Serialize(Parse(bytes)) == bytes is the full round-trip
        // contract: with a deterministic serializer it implies the parsed
        // specification is structurally identical to the original.
        EXPECT_EQ(wire::SerializeSpecification(parsed.value()), bytes)
            << "seed=" << seed << " copy=" << with_copy
            << " constraints=" << with_constraints;
      }
    }
  }
}

TEST(WireSpec, PaperFixturesRoundTrip) {
  for (const core::Specification& spec :
       {currency::testing::MakeS0(), currency::testing::MakeS1(),
        currency::testing::MakeS0Trimmed()}) {
    const std::string bytes = wire::SerializeSpecification(spec);
    auto parsed = wire::ParseSpecification(bytes);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(wire::SerializeSpecification(parsed.value()), bytes);
  }
}

TEST(WireSpec, EveryTruncationFailsCleanly) {
  const std::string bytes = wire::SerializeSpecification(MakeGoldenSpec());
  for (size_t len = 0; len < bytes.size(); ++len) {
    auto parsed = wire::ParseSpecification(bytes.substr(0, len));
    EXPECT_FALSE(parsed.ok()) << "prefix of length " << len << " parsed";
  }
}

TEST(WireSpec, EveryByteFlipIsHandled) {
  // A flipped byte may still parse (e.g. inside a string constant) — the
  // requirement is no crash, no over-read, and a re-serializable result.
  const std::string bytes = wire::SerializeSpecification(MakeGoldenSpec());
  for (size_t i = 0; i < bytes.size(); ++i) {
    for (unsigned char flip : {0x01, 0x80, 0xFF}) {
      std::string corrupt = bytes;
      corrupt[i] = static_cast<char>(corrupt[i] ^ flip);
      auto parsed = wire::ParseSpecification(corrupt);
      if (parsed.ok()) {
        wire::SerializeSpecification(parsed.value());
      }
    }
  }
}

TEST(WireSpec, VersionSkewNamesTheFix) {
  std::string bytes = wire::SerializeSpecification(MakeGoldenSpec());
  bytes[4] = 2;  // the u32 version field follows the 4-byte magic
  auto parsed = wire::ParseSpecification(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("bump the format version"),
            std::string::npos)
      << parsed.status().ToString();
}

TEST(WireSpec, TrailingGarbageRejected) {
  std::string bytes = wire::SerializeSpecification(MakeGoldenSpec());
  bytes.push_back('\0');
  EXPECT_FALSE(wire::ParseSpecification(bytes).ok());
}

TEST(WireEdits, RoundTripPreservesEveryField) {
  const std::vector<core::TupleEdit> edits = MakeGoldenEdits();
  const std::string bytes = wire::SerializeTupleEdits(edits);
  auto round = wire::ParseTupleEdits(bytes);
  ASSERT_TRUE(round.ok()) << round.status().ToString();
  const std::vector<core::TupleEdit>& parsed = round.value();
  ASSERT_EQ(parsed.size(), edits.size());
  for (size_t i = 0; i < edits.size(); ++i) {
    EXPECT_TRUE(parsed[i] == edits[i]) << "edit " << i;
  }
  EXPECT_EQ(wire::SerializeTupleEdits(parsed), bytes);
}

TEST(WireEdits, EmptyBatchRoundTrips) {
  const std::string bytes = wire::SerializeTupleEdits({});
  auto parsed = wire::ParseTupleEdits(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().empty());
}

TEST(WireEdits, TruncationFailsCleanly) {
  const std::string bytes = wire::SerializeTupleEdits(MakeGoldenEdits());
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(wire::ParseTupleEdits(bytes.substr(0, len)).ok())
        << "prefix of length " << len << " parsed";
  }
}

}  // namespace
}  // namespace currency
