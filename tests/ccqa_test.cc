// Tests for CCQA — certain current query answering (Theorem 3.5,
// Proposition 6.3): the paper's queries Q1–Q4 on S0 (Examples 1.1, 2.5),
// the SP fast path, and property sweeps against the brute-force oracle.

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/ccqa.h"
#include "src/core/chase.h"
#include "src/core/sp_ccqa.h"
#include "src/query/parser.h"
#include "tests/fixtures.h"

namespace currency::core {
namespace {

using currency::testing::MakeQ1;
using currency::testing::MakeQ2;
using currency::testing::MakeQ3;
using currency::testing::MakeQ4;
using currency::testing::MakeRandomSpec;
using currency::testing::MakeS0;

TEST(CcqaTest, PaperQueriesOnS0) {
  Specification s0 = MakeS0();
  // Q1: Mary's current salary is 80k.
  auto a1 = CertainCurrentAnswers(s0, MakeQ1());
  ASSERT_TRUE(a1.ok()) << a1.status();
  EXPECT_EQ(*a1, std::set<Tuple>{Tuple({Value(80)})});
  // Q2: Mary's current last name is Dupont.
  auto a2 = CertainCurrentAnswers(s0, MakeQ2());
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(*a2, std::set<Tuple>{Tuple({Value("Dupont")})});
  // Q3: Mary's current address is 6 Main St.
  auto a3 = CertainCurrentAnswers(s0, MakeQ3());
  ASSERT_TRUE(a3.ok());
  EXPECT_EQ(*a3, std::set<Tuple>{Tuple({Value("6 Main St")})});
  // Q4: R&D's current budget is 6000k, although the top tuple (t3 vs t4)
  // is not determined.
  auto a4 = CertainCurrentAnswers(s0, MakeQ4());
  ASSERT_TRUE(a4.ok());
  EXPECT_EQ(*a4, std::set<Tuple>{Tuple({Value(6000)})});
}

TEST(CcqaTest, PaperQueriesAgreeWithBruteForce) {
  // The trimmed S0 (free attributes dropped) keeps the completion space
  // exhaustively enumerable while preserving all Q1–Q4 claims.
  Specification s0 = currency::testing::MakeS0Trimmed();
  auto queries = {currency::testing::MakeQ1Trimmed(),
                  currency::testing::MakeQ2Trimmed(),
                  currency::testing::MakeQ3Trimmed(),
                  currency::testing::MakeQ4Trimmed()};
  std::set<Tuple> expected[] = {
      {Tuple({Value(80)})},
      {Tuple({Value("Dupont")})},
      {Tuple({Value("6 Main St")})},
      {Tuple({Value(6000)})},
  };
  int qi = 0;
  for (const auto& q : queries) {
    auto fast = CertainCurrentAnswers(s0, q);
    auto oracle = BruteForceCertainAnswers(s0, q);
    ASSERT_TRUE(fast.ok()) << fast.status();
    ASSERT_TRUE(oracle.ok()) << oracle.status();
    EXPECT_EQ(*fast, *oracle) << q.ToString();
    EXPECT_EQ(*fast, expected[qi]) << q.ToString();
    ++qi;
  }
}

TEST(CcqaTest, MembershipApi) {
  Specification s0 = MakeS0();
  EXPECT_TRUE(
      IsCertainCurrentAnswer(s0, MakeQ1(), Tuple({Value(80)})).value());
  EXPECT_FALSE(
      IsCertainCurrentAnswer(s0, MakeQ1(), Tuple({Value(50)})).value());
  EXPECT_FALSE(IsCertainCurrentAnswer(s0, MakeQ2(), Tuple({Value("Smith")}))
                   .value());
  // Arity mismatch is an error, not "false".
  EXPECT_FALSE(
      IsCertainCurrentAnswer(s0, MakeQ1(), Tuple({Value(1), Value(2)})).ok());
}

TEST(CcqaTest, InconsistentSpecIsVacuouslyCertain) {
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(1)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(2)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(r))).ok());
  ASSERT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: s.A > t.A -> t PREC[A] s")
          .ok());
  ASSERT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: s.A < t.A -> t PREC[A] s")
          .ok());
  auto q = query::ParseQuery("Q(x) := EXISTS e: R(e, x)").value();
  EXPECT_EQ(CertainCurrentAnswers(spec, q).status().code(),
            StatusCode::kInconsistent);
  EXPECT_TRUE(IsCertainCurrentAnswer(spec, q, Tuple({Value(42)})).value());
}

TEST(CcqaTest, DisjunctionOfPossibleValuesIsCertain) {
  // Entity with two incomparable tuples A ∈ {1, 2}: neither value is
  // certain under Q(x) := R(e, x), but the UCQ "x = 1 OR x = 2" projected
  // to a boolean IS certain.
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(1)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(2)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(r))).ok());
  auto point = query::ParseQuery("Q(x) := EXISTS e: R(e, x)").value();
  auto answers = CertainCurrentAnswers(spec, point);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
  auto boolean = query::ParseQuery(
                     "Q() := (EXISTS e: R(e, 1)) OR (EXISTS e: R(e, 2))")
                     .value();
  auto b = CertainCurrentAnswers(spec, boolean);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->size(), 1u);  // the empty tuple: certainly true
}

TEST(CcqaTest, FoQueryWithNegation) {
  // FO query: values v of entity e1 such that no e2-tuple currently
  // carries v.  e1 is fixed to A=1; e2 is 1 or 2 depending on completion,
  // so "1 is absent from e2" is not certain, and nothing else is either.
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e1"), Value(1)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e2"), Value(1)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e2"), Value(2)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(r))).ok());
  auto q = query::ParseQuery(
               "Q(x) := R('e1', x) AND NOT R('e2', x)")
               .value();
  auto answers = CertainCurrentAnswers(spec, q);
  ASSERT_TRUE(answers.ok());
  EXPECT_TRUE(answers->empty());
  auto oracle = BruteForceCertainAnswers(spec, q);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(*answers, *oracle);
}

TEST(SpCcqaTest, FastPathMatchesGeneralOnS0Queries) {
  // S0 has constraints, so the SP fast path must refuse it.
  Specification s0 = MakeS0();
  EXPECT_EQ(SpCertainCurrentAnswers(s0, MakeQ1()).status().code(),
            StatusCode::kUnsupported);
}

TEST(SpCcqaTest, PossRelationConstruction) {
  // Entity e: A determined (initial order), B undetermined.
  Specification spec;
  Schema rs = Schema::Make("R", {"A", "B"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(1), Value(10)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(2), Value(20)}).ok());
  TemporalInstance inst(std::move(r));
  ASSERT_TRUE(inst.AddOrderByName("A", 0, 1).ok());
  ASSERT_TRUE(spec.AddInstance(std::move(inst)).ok());
  auto chase = ChaseCopyOrders(spec);
  ASSERT_TRUE(chase.ok());
  auto poss = BuildPossRelation(spec, chase->certain_orders, 0);
  ASSERT_TRUE(poss.ok());
  ASSERT_EQ(poss->size(), 1);
  EXPECT_EQ(poss->tuple(0).at(1), Value(2));       // A: unique sink value
  EXPECT_TRUE(IsFreshPossConstant(poss->tuple(0).at(2)));  // B: two values
  EXPECT_FALSE(IsFreshPossConstant(Value("ordinary")));
  EXPECT_FALSE(IsFreshPossConstant(Value(3)));
}

TEST(SpCcqaTest, SelectionOnUndeterminedAttributeYieldsNothing) {
  Specification spec;
  Schema rs = Schema::Make("R", {"A", "B"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(1), Value(10)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(2), Value(10)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(r))).ok());
  // A is undetermined; B is 10 in both tuples hence certain.
  auto qa = query::ParseQuery("Q(x) := EXISTS e, y: R(e, x, y)").value();
  auto qb = query::ParseQuery("Q(y) := EXISTS e, x: R(e, x, y)").value();
  auto sa = SpCertainCurrentAnswers(spec, qa);
  auto sb = SpCertainCurrentAnswers(spec, qb);
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_TRUE(sa->empty());
  EXPECT_EQ(*sb, std::set<Tuple>{Tuple({Value(10)})});
  // And both agree with the general path and the oracle.
  CcqaOptions no_fast;
  no_fast.use_sp_fast_path = false;
  EXPECT_EQ(*sa, CertainCurrentAnswers(spec, qa, no_fast).value());
  EXPECT_EQ(*sb, CertainCurrentAnswers(spec, qb, no_fast).value());
  EXPECT_EQ(*sa, BruteForceCertainAnswers(spec, qa).value());
  EXPECT_EQ(*sb, BruteForceCertainAnswers(spec, qb).value());
}

// Property sweep: on constraint-free random specifications with copy
// functions, the SP fast path, the general solver and the brute-force
// oracle agree on SP queries.  (Copy functions here use distinct source
// attributes per target attribute, so Proposition 6.3's independence
// assumption holds; see DESIGN.md §6 for the shared-source corner.)
class SpVsGeneral : public ::testing::TestWithParam<int> {};

TEST_P(SpVsGeneral, AgreeOnSpQueries) {
  Specification spec = MakeRandomSpec(GetParam() * 313 + 5, /*with_copy=*/true,
                                      /*with_constraints=*/false);
  const char* queries[] = {
      "Q(x) := EXISTS e, y: R(e, x, y)",
      "Q(x, y) := EXISTS e: R(e, x, y)",
      "Q(x) := EXISTS e, y: R(e, x, y) AND x = 1",
      "Q(x) := EXISTS e: R(e, x, x)",  // repeated var: NOT SP, general path
  };
  for (const char* text : queries) {
    auto q = query::ParseQuery(text).value();
    SCOPED_TRACE(text);
    auto solver_answers = CertainCurrentAnswers(spec, q);
    auto oracle = BruteForceCertainAnswers(spec, q);
    if (!oracle.ok()) {
      ASSERT_EQ(oracle.status().code(), StatusCode::kInconsistent);
      EXPECT_EQ(solver_answers.status().code(), StatusCode::kInconsistent);
      continue;
    }
    ASSERT_TRUE(solver_answers.ok()) << solver_answers.status();
    EXPECT_EQ(*solver_answers, *oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SpVsGeneral, ::testing::Range(0, 30));

// Property sweep: general CCQA vs oracle on constrained specifications.
class GeneralCcqaVsOracle : public ::testing::TestWithParam<int> {};

TEST_P(GeneralCcqaVsOracle, Agree) {
  for (int variant = 0; variant < 2; ++variant) {
    Specification spec = MakeRandomSpec(GetParam() * 997 + variant,
                                        /*with_copy=*/variant & 1,
                                        /*with_constraints=*/true);
    auto q = query::ParseQuery("Q(x, y) := EXISTS e: R(e, x, y)").value();
    auto solver_answers = CertainCurrentAnswers(spec, q);
    auto oracle = BruteForceCertainAnswers(spec, q);
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " variant=" + std::to_string(variant));
    if (!oracle.ok()) {
      ASSERT_EQ(oracle.status().code(), StatusCode::kInconsistent);
      EXPECT_EQ(solver_answers.status().code(), StatusCode::kInconsistent);
      continue;
    }
    ASSERT_TRUE(solver_answers.ok()) << solver_answers.status();
    EXPECT_EQ(*solver_answers, *oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, GeneralCcqaVsOracle, ::testing::Range(0, 40));

}  // namespace
}  // namespace currency::core
