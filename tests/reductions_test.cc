// Cross-validation of the lower-bound reductions: every gadget family is
// checked against an independent oracle (the QBF evaluator or brute-force
// Betweenness) — the reduction plus the corresponding solver must return
// exactly the Boolean the theorem promises.

#include <gtest/gtest.h>

#include <random>

#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/consistency.h"
#include "src/core/deterministic.h"
#include "src/core/preservation.h"
#include "src/reductions/formulas.h"
#include "src/reductions/to_bcp.h"
#include "src/reductions/to_ccqa.h"
#include "src/reductions/to_cop.h"
#include "src/reductions/to_cpp.h"
#include "src/reductions/to_cps.h"

namespace currency::reductions {
namespace {

TEST(FormulasTest, BetweennessOracle) {
  // (0,1,2): solvable trivially.
  BetweennessInstance easy;
  easy.num_elements = 3;
  easy.triples = {{0, 1, 2}};
  EXPECT_TRUE(SolveBetweennessBruteForce(easy).value());
  // Classic unsolvable core: b between a,c; c between a,b; a between b,c.
  BetweennessInstance hard;
  hard.num_elements = 3;
  hard.triples = {{0, 1, 2}, {1, 2, 0}, {2, 0, 1}};
  EXPECT_FALSE(SolveBetweennessBruteForce(hard).value());
  // Budget guard.
  BetweennessInstance big;
  big.num_elements = 12;
  EXPECT_EQ(SolveBetweennessBruteForce(big).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(FormulasTest, ValidateShape) {
  std::mt19937 rng(1);
  sat::Qbf q = sat::RandomQbf({2, 2}, true, 3, /*cnf=*/false, &rng);
  EXPECT_TRUE(ValidateShape(q, {true, false}, false).ok());
  EXPECT_FALSE(ValidateShape(q, {true, false}, true).ok());
  EXPECT_FALSE(ValidateShape(q, {false, true}, false).ok());
  EXPECT_FALSE(ValidateShape(q, {true}, false).ok());
}

// --- Theorem 3.1 combined complexity: ∃∀3DNF ⟶ CPS -----------------------

class SigmaP2ToCpsProperty : public ::testing::TestWithParam<int> {};

TEST_P(SigmaP2ToCpsProperty, MatchesQbfOracle) {
  std::mt19937 rng(GetParam() * 37 + 11);
  std::uniform_int_distribution<int> size(1, 3);
  sat::Qbf qbf = sat::RandomQbf({size(rng), size(rng)}, /*first_exists=*/true,
                                size(rng) + 1, /*cnf=*/false, &rng);
  bool oracle = sat::EvaluateQbf(qbf).value();
  auto spec = SigmaP2ToCps(qbf);
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto cps = core::DecideConsistency(*spec);
  ASSERT_TRUE(cps.ok()) << cps.status();
  EXPECT_EQ(cps->consistent, oracle) << qbf.ToString();
}

INSTANTIATE_TEST_SUITE_P(Random, SigmaP2ToCpsProperty, ::testing::Range(0, 25));

// --- Theorem 3.1 data complexity: Betweenness ⟶ CPS -----------------------

class BetweennessToCpsProperty : public ::testing::TestWithParam<int> {};

TEST_P(BetweennessToCpsProperty, MatchesBruteForce) {
  std::mt19937 rng(GetParam() * 53 + 3);
  std::uniform_int_distribution<int> nelem(3, 4);
  std::uniform_int_distribution<int> ntrip(1, 3);
  BetweennessInstance inst = RandomBetweenness(nelem(rng), ntrip(rng), &rng);
  bool oracle = SolveBetweennessBruteForce(inst).value();
  auto spec = BetweennessToCps(inst);
  ASSERT_TRUE(spec.ok()) << spec.status();
  auto cps = core::DecideConsistency(*spec);
  ASSERT_TRUE(cps.ok()) << cps.status();
  EXPECT_EQ(cps->consistent, oracle);
}

INSTANTIATE_TEST_SUITE_P(Random, BetweennessToCpsProperty,
                         ::testing::Range(0, 20));

// --- Theorem 3.4 data complexity: 3SAT ⟶ COP and DCIP ---------------------

class Sat3ToCopProperty : public ::testing::TestWithParam<int> {};

TEST_P(Sat3ToCopProperty, MatchesSatOracle) {
  std::mt19937 rng(GetParam() * 71 + 5);
  std::uniform_int_distribution<int> nvars(2, 4);
  std::uniform_int_distribution<int> nclauses(2, 5);
  sat::Qbf qbf = sat::RandomQbf({nvars(rng)}, /*first_exists=*/true,
                                nclauses(rng), /*cnf=*/true, &rng);
  bool satisfiable = sat::EvaluateQbf(qbf).value();
  auto gadget = Sat3ToCopDcip(qbf);
  ASSERT_TRUE(gadget.ok()) << gadget.status();
  // Ot ("t# on top") is certain iff ψ is unsatisfiable ...
  auto certain = core::IsCertainOrder(gadget->spec, gadget->order);
  ASSERT_TRUE(certain.ok()) << certain.status();
  EXPECT_EQ(*certain, !satisfiable) << qbf.ToString();
  // ... and the same gadget decides DCIP.
  auto deterministic =
      core::IsDeterministicForRelation(gadget->spec, "RC");
  ASSERT_TRUE(deterministic.ok()) << deterministic.status();
  EXPECT_EQ(*deterministic, !satisfiable) << qbf.ToString();
}

INSTANTIATE_TEST_SUITE_P(Random, Sat3ToCopProperty, ::testing::Range(0, 25));

// --- Theorem 3.5(1): ∀∃3CNF ⟶ CCQA(CQ) ------------------------------------

class PiP2ToCcqaProperty : public ::testing::TestWithParam<int> {};

TEST_P(PiP2ToCcqaProperty, MatchesQbfOracle) {
  std::mt19937 rng(GetParam() * 97 + 7);
  std::uniform_int_distribution<int> size(1, 3);
  sat::Qbf qbf = sat::RandomQbf({size(rng), size(rng)}, /*first_exists=*/false,
                                size(rng) + 1, /*cnf=*/true, &rng);
  bool oracle = sat::EvaluateQbf(qbf).value();
  auto gadget = PiP2ToCcqa(qbf);
  ASSERT_TRUE(gadget.ok()) << gadget.status();
  auto certain = core::IsCertainCurrentAnswer(gadget->spec, gadget->query,
                                              gadget->candidate);
  ASSERT_TRUE(certain.ok()) << certain.status();
  EXPECT_EQ(*certain, oracle) << qbf.ToString();
}

INSTANTIATE_TEST_SUITE_P(Random, PiP2ToCcqaProperty, ::testing::Range(0, 25));

// --- Theorem 3.5(2): Q3SAT ⟶ CCQA(FO) -------------------------------------

class Q3SatToCcqaFoProperty : public ::testing::TestWithParam<int> {};

TEST_P(Q3SatToCcqaFoProperty, MatchesQbfOracle) {
  std::mt19937 rng(GetParam() * 113 + 13);
  std::uniform_int_distribution<int> blocks(1, 3);
  std::uniform_int_distribution<int> size(1, 2);
  std::uniform_int_distribution<int> coin(0, 1);
  std::vector<int> shape;
  int nb = blocks(rng);
  for (int b = 0; b < nb; ++b) shape.push_back(size(rng));
  sat::Qbf qbf = sat::RandomQbf(shape, coin(rng) == 0, 3, /*cnf=*/true, &rng);
  bool oracle = sat::EvaluateQbf(qbf).value();
  auto gadget = Q3SatToCcqaFo(qbf);
  ASSERT_TRUE(gadget.ok()) << gadget.status();
  bool has_forall = false;
  for (const auto& block : qbf.prefix) has_forall |= !block.exists;
  if (has_forall) {
    // ∀ blocks put the query in full FO (negation + universal quantifier).
    EXPECT_EQ(query::Classify(gadget->query), query::QueryLanguage::kFo);
  }
  auto certain = core::IsCertainCurrentAnswer(gadget->spec, gadget->query,
                                              gadget->candidate);
  ASSERT_TRUE(certain.ok()) << certain.status();
  EXPECT_EQ(*certain, oracle) << qbf.ToString();
}

INSTANTIATE_TEST_SUITE_P(Random, Q3SatToCcqaFoProperty,
                         ::testing::Range(0, 20));

// --- Theorem 3.5 data complexity: 3SAT ⟶ CCQA (fixed query) ----------------

class Sat3ToCcqaDataProperty : public ::testing::TestWithParam<int> {};

TEST_P(Sat3ToCcqaDataProperty, MatchesSatOracle) {
  std::mt19937 rng(GetParam() * 131 + 17);
  std::uniform_int_distribution<int> nvars(2, 4);
  std::uniform_int_distribution<int> nclauses(2, 5);
  sat::Qbf qbf = sat::RandomQbf({nvars(rng)}, /*first_exists=*/true,
                                nclauses(rng), /*cnf=*/true, &rng);
  bool satisfiable = sat::EvaluateQbf(qbf).value();
  auto gadget = Sat3ToCcqaData(qbf);
  ASSERT_TRUE(gadget.ok()) << gadget.status();
  auto certain = core::IsCertainCurrentAnswer(gadget->spec, gadget->query,
                                              gadget->candidate);
  ASSERT_TRUE(certain.ok()) << certain.status();
  EXPECT_EQ(*certain, !satisfiable) << qbf.ToString();
}

INSTANTIATE_TEST_SUITE_P(Random, Sat3ToCcqaDataProperty,
                         ::testing::Range(0, 25));

// --- Theorem 5.1(3): ∀∃3CNF ⟶ CPP -----------------------------------------

class PiP2ToCppProperty : public ::testing::TestWithParam<int> {};

TEST_P(PiP2ToCppProperty, MatchesQbfOracle) {
  std::mt19937 rng(GetParam() * 151 + 19);
  std::uniform_int_distribution<int> size(1, 2);
  sat::Qbf qbf = sat::RandomQbf({size(rng), size(rng)}, /*first_exists=*/false,
                                2, /*cnf=*/true, &rng);
  bool oracle = sat::EvaluateQbf(qbf).value();
  auto gadget = PiP2ToCppData(qbf);
  ASSERT_TRUE(gadget.ok()) << gadget.status();
  auto preserving = core::IsCurrencyPreserving(gadget->spec, gadget->query,
                                               gadget->options);
  ASSERT_TRUE(preserving.ok()) << preserving.status();
  EXPECT_EQ(*preserving, oracle) << qbf.ToString();
}

INSTANTIATE_TEST_SUITE_P(Random, PiP2ToCppProperty, ::testing::Range(0, 8));

// --- Theorem 5.1(1): ∃∀∃3CNF ⟶ CPP (combined, Fig. 4) -----------------------

class PiP3ToCppProperty : public ::testing::TestWithParam<int> {};

TEST_P(PiP3ToCppProperty, MatchesQbfOracle) {
  std::mt19937 rng(GetParam() * 211 + 29);
  sat::Qbf qbf = sat::RandomQbf({1, 1, 1}, /*first_exists=*/true, 2,
                                /*cnf=*/true, &rng);
  bool oracle = sat::EvaluateQbf(qbf).value();
  auto gadget = PiP3ToCpp(qbf);
  ASSERT_TRUE(gadget.ok()) << gadget.status();
  auto preserving = core::IsCurrencyPreserving(gadget->spec, gadget->query,
                                               gadget->options);
  ASSERT_TRUE(preserving.ok()) << preserving.status();
  // Theorem 5.1(1): the QBF is true iff ρ is NOT currency preserving.
  EXPECT_EQ(*preserving, !oracle) << qbf.ToString();
}

INSTANTIATE_TEST_SUITE_P(Random, PiP3ToCppProperty, ::testing::Range(0, 6));

TEST(PiP3ToCppCrafted, BothOutcomes) {
  // Random ∃∀∃ formulas are almost always true; exercise both branches
  // with crafted matrices over x=0, y=1, z=2.
  // False: ψ = (y): at µY(y)=0 the clause fails for every z, so the
  // adversary's ∀Y wins and ρ IS preserving.
  sat::Qbf falsy;
  falsy.num_vars = 3;
  falsy.prefix = {{true, {0}}, {false, {1}}, {true, {2}}};
  falsy.matrix_is_cnf = true;
  falsy.terms = {{sat::MakeLit(1)}};
  ASSERT_FALSE(sat::EvaluateQbf(falsy).value());
  auto g1 = PiP3ToCpp(falsy);
  ASSERT_TRUE(g1.ok()) << g1.status();
  EXPECT_TRUE(
      core::IsCurrencyPreserving(g1->spec, g1->query, g1->options).value());

  // True: ψ = (y ∨ z) ∧ (¬y ∨ ¬z): z = ¬y always works, so pinning any
  // µX (plus the 'c' flag) makes the answer certain and ρ NOT preserving.
  sat::Qbf truthy;
  truthy.num_vars = 3;
  truthy.prefix = {{true, {0}}, {false, {1}}, {true, {2}}};
  truthy.matrix_is_cnf = true;
  truthy.terms = {{sat::MakeLit(1), sat::MakeLit(2)},
                  {sat::MakeLit(1, true), sat::MakeLit(2, true)}};
  ASSERT_TRUE(sat::EvaluateQbf(truthy).value());
  auto g2 = PiP3ToCpp(truthy);
  ASSERT_TRUE(g2.ok()) << g2.status();
  EXPECT_FALSE(
      core::IsCurrencyPreserving(g2->spec, g2->query, g2->options).value());
}

// --- Theorem 5.3: ∃∀∃∀3DNF ⟶ BCP -------------------------------------------

class SigmaP4ToBcpProperty : public ::testing::TestWithParam<int> {};

TEST_P(SigmaP4ToBcpProperty, MatchesQbfOracle) {
  std::mt19937 rng(GetParam() * 173 + 23);
  sat::Qbf qbf = sat::RandomQbf({1, 1, 1, 1}, /*first_exists=*/true, 2,
                                /*cnf=*/false, &rng);
  bool oracle = sat::EvaluateQbf(qbf).value();
  auto gadget = SigmaP4ToBcp(qbf);
  ASSERT_TRUE(gadget.ok()) << gadget.status();
  auto bounded = core::HasBoundedCurrencyPreservingExtension(
      gadget->spec, gadget->query, gadget->k, gadget->options);
  ASSERT_TRUE(bounded.ok()) << bounded.status();
  EXPECT_EQ(*bounded, oracle) << qbf.ToString();
}

INSTANTIATE_TEST_SUITE_P(Random, SigmaP4ToBcpProperty, ::testing::Range(0, 4));

TEST(SigmaP4ToBcpCrafted, BothOutcomes) {
  // Random ∃∀∃∀3DNF at this size is almost always false; craft both
  // branches over w=0, x=1, y=2, z=3.
  // True: ψ = (x∧y) ∨ (¬x∧¬y) — choosing y = x satisfies ψ for all z,
  // so a one-import extension is currency preserving.
  sat::Qbf truthy;
  truthy.num_vars = 4;
  truthy.prefix = {{true, {0}}, {false, {1}}, {true, {2}}, {false, {3}}};
  truthy.matrix_is_cnf = false;
  truthy.terms = {{sat::MakeLit(1), sat::MakeLit(2)},
                  {sat::MakeLit(1, true), sat::MakeLit(2, true)}};
  ASSERT_TRUE(sat::EvaluateQbf(truthy).value());
  auto g1 = SigmaP4ToBcp(truthy);
  ASSERT_TRUE(g1.ok()) << g1.status();
  EXPECT_TRUE(core::HasBoundedCurrencyPreservingExtension(
                  g1->spec, g1->query, g1->k, g1->options)
                  .value());

  // False: ψ = (z) — the trailing ∀z refutes every strategy, so no
  // affordable extension is preserving.
  sat::Qbf falsy;
  falsy.num_vars = 4;
  falsy.prefix = {{true, {0}}, {false, {1}}, {true, {2}}, {false, {3}}};
  falsy.matrix_is_cnf = false;
  falsy.terms = {{sat::MakeLit(3)}};
  ASSERT_FALSE(sat::EvaluateQbf(falsy).value());
  auto g2 = SigmaP4ToBcp(falsy);
  ASSERT_TRUE(g2.ok()) << g2.status();
  EXPECT_FALSE(core::HasBoundedCurrencyPreservingExtension(
                   g2->spec, g2->query, g2->k, g2->options)
                   .value());
}

}  // namespace
}  // namespace currency::reductions
