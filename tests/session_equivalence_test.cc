// Session-vs-fresh equivalence for the serving layer: every batch answer
// a CurrencySession gives — cold, warm, and after arbitrary accepted or
// rejected Mutate batches — must equal the answer of a fresh monolithic
// build over the session's current specification, and must agree with the
// brute-force oracle.  The session's caches (component encoders with
// accumulated learnt clauses, base-solve results, fingerprint-matched
// reuse across epochs) are exactly the machinery under test, which is why
// every round re-checks all four problems from scratch.
//
// Checked across session thread counts {1, 2, 8}; scripts/check.sh also
// runs this suite under ThreadSanitizer and AddressSanitizer.

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "src/core/brute_force.h"
#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/consistency.h"
#include "src/core/deterministic.h"
#include "src/obs/trace.h"
#include "src/query/parser.h"
#include "src/serve/session.h"
#include "tests/fixtures.h"

namespace currency::serve {
namespace {

using currency::testing::MakeRandomSpec;

constexpr int kThreadCounts[] = {1, 2, 8};

/// COP queries exercising same-entity, cross-entity, reflexive and
/// multi-pair shapes against relation R of the random specifications.
std::vector<core::CurrencyOrderQuery> MakeCopQueries() {
  std::vector<core::CurrencyOrderQuery> queries;
  auto single = [&](core::RequiredPair p) {
    core::CurrencyOrderQuery q;
    q.relation = "R";
    q.pairs = {p};
    queries.push_back(std::move(q));
  };
  single(core::RequiredPair{1, 0, 1});
  single(core::RequiredPair{2, 1, 0});
  single(core::RequiredPair{1, 0, 2});  // often cross-entity
  single(core::RequiredPair{1, 1, 1});  // reflexive
  core::CurrencyOrderQuery multi;
  multi.relation = "R";
  multi.pairs = {core::RequiredPair{1, 0, 1}, core::RequiredPair{2, 2, 3},
                 core::RequiredPair{1, 1, 0}};
  queries.push_back(std::move(multi));
  return queries;
}

/// Re-checks all four problems on the session against a fresh monolithic
/// build of session->spec() AND the brute-force oracle.
void CheckAllProblems(CurrencySession* session) {
  const core::Specification& spec = session->spec();

  // --- CPS ---
  {
    core::CpsOptions cps;
    cps.use_ptime_path_without_constraints = false;
    cps.use_decomposition = false;  // fresh MONOLITHIC comparator
    auto fresh = core::DecideConsistency(spec, cps);
    ASSERT_TRUE(fresh.ok()) << fresh.status();
    bool oracle = core::BruteForceConsistent(spec).value();
    auto got = session->CpsCheck();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, fresh->consistent);
    EXPECT_EQ(*got, oracle);
  }

  // --- COP ---
  {
    std::vector<core::CurrencyOrderQuery> queries = MakeCopQueries();
    // Clamp the fixed tuple ids to the relation's actual size.
    const Relation& rel = spec.instance(0).relation();
    for (auto& q : queries) {
      for (auto& p : q.pairs) {
        p.before = p.before % rel.size();
        p.after = p.after % rel.size();
      }
    }
    auto got = session->CopBatch(queries);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_EQ(got->size(), queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      SCOPED_TRACE("cop query " + std::to_string(i));
      core::CopOptions cop;
      cop.use_ptime_path_without_constraints = false;
      cop.use_decomposition = false;
      auto fresh = core::IsCertainOrder(spec, queries[i], cop);
      ASSERT_TRUE(fresh.ok()) << fresh.status();
      EXPECT_EQ((*got)[i], *fresh);
      EXPECT_EQ((*got)[i],
                core::BruteForceCertainOrder(spec, queries[i]).value());
    }
  }

  // --- DCIP over every relation ---
  {
    std::vector<std::string> relations;
    for (int i = 0; i < spec.num_instances(); ++i) {
      relations.push_back(spec.instance(i).name());
    }
    auto got = session->DcipBatch(relations);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_EQ(got->size(), relations.size());
    for (size_t i = 0; i < relations.size(); ++i) {
      SCOPED_TRACE("dcip relation " + relations[i]);
      core::DcipOptions dcip;
      dcip.use_ptime_path_without_constraints = false;
      dcip.use_decomposition = false;
      auto fresh = core::IsDeterministicForRelation(spec, relations[i], dcip);
      ASSERT_TRUE(fresh.ok()) << fresh.status();
      EXPECT_EQ((*got)[i], *fresh);
      EXPECT_EQ((*got)[i],
                core::BruteForceDeterministic(spec, relations[i]).value());
    }
  }

  // --- CCQA: one answer-set request plus membership requests ---
  {
    query::Query q =
        query::ParseQuery("Q(x) := EXISTS y: R('e0', x, y)").value();
    std::vector<CcqaRequest> requests;
    requests.push_back(CcqaRequest{q, std::nullopt});
    for (int k = 0; k < 4; ++k) {
      requests.push_back(CcqaRequest{q, Tuple({Value(k)})});
    }
    auto got = session->CcqaBatch(requests);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_EQ(got->size(), requests.size());
    core::CcqaOptions ccqa;
    ccqa.use_sp_fast_path = false;
    ccqa.use_decomposition = false;
    auto fresh = core::CertainCurrentAnswers(spec, q, ccqa);
    auto oracle = core::BruteForceCertainAnswers(spec, q);
    if (!fresh.ok()) {
      ASSERT_EQ(fresh.status().code(), StatusCode::kInconsistent)
          << fresh.status();
      EXPECT_EQ(oracle.status().code(), StatusCode::kInconsistent);
      EXPECT_TRUE((*got)[0].vacuous);
      EXPECT_FALSE((*got)[0].answers.has_value());
    } else {
      ASSERT_TRUE((*got)[0].answers.has_value());
      EXPECT_FALSE((*got)[0].vacuous);
      EXPECT_EQ(*(*got)[0].answers, *fresh);
      EXPECT_EQ(*(*got)[0].answers, oracle.value());
    }
    for (int k = 0; k < 4; ++k) {
      SCOPED_TRACE("ccqa membership candidate " + std::to_string(k));
      auto fresh_member =
          core::IsCertainCurrentAnswer(spec, q, Tuple({Value(k)}), ccqa);
      ASSERT_TRUE(fresh_member.ok()) << fresh_member.status();
      ASSERT_TRUE((*got)[k + 1].is_certain.has_value());
      EXPECT_EQ(*(*got)[k + 1].is_certain, *fresh_member);
    }
  }
}

/// A random edit batch against the MakeRandomSpec shape (R(A, B) plus an
/// optional R2(C) copying C ⇐ A): no-op rewrites, free B edits, EID moves
/// (including to a fresh entity — the component split/merge cases), and
/// copy-consistent coordinated A edits.
std::vector<core::TupleEdit> MakeRandomEdits(const core::Specification& spec,
                                             std::mt19937& rng) {
  auto rnd = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  const Relation& r = spec.instance(0).relation();
  TupleId t = rnd(0, r.size() - 1);
  switch (rnd(0, 3)) {
    case 0: {  // no-op rewrite of an arbitrary cell
      AttrIndex a = rnd(0, r.schema().arity() - 1);
      return {core::TupleEdit{0, t, a, r.tuple(t).at(a)}};
    }
    case 1:  // free-attribute edit (B is never copied)
      return {core::TupleEdit{0, t, 2, Value(rnd(0, 3))}};
    case 2: {  // EID move; may be rejected when t has initial orders
      const char* eids[] = {"e0", "e1", "e2"};
      return {core::TupleEdit{0, t, 0, Value(eids[rnd(0, 2)])}};
    }
    default: {  // coordinated A edit keeping every copy condition intact
      Value v(rnd(0, 3));
      std::vector<core::TupleEdit> edits = {core::TupleEdit{0, t, 1, v}};
      for (const core::CopyEdge& edge : spec.copy_edges()) {
        for (const auto& [tgt, src] : edge.fn.mapping()) {
          if (src == t) {
            edits.push_back(
                core::TupleEdit{edge.target_instance, tgt, 1, v});
          }
        }
      }
      return edits;
    }
  }
}

class SessionEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(SessionEquivalence, BatchesMatchFreshSolvesAcrossMutations) {
  // Variants 0–3: the historical copy × constraints grid.  Variants 4–5
  // add entity-gated constraints with a 0.5 constraint-free fraction, so
  // sessions mix chase-routed and SAT-routed components.
  for (int variant = 0; variant < 6; ++variant) {
    bool with_copy = variant & 1;
    bool with_constraints = (variant & 2) || variant >= 4;
    double free_fraction = variant >= 4 ? 0.5 : 0.0;
    core::Specification spec =
        MakeRandomSpec(GetParam() * 1237 + variant, with_copy,
                       with_constraints, free_fraction);
    for (int threads : kThreadCounts) {
      SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                   " variant=" + std::to_string(variant) +
                   " threads=" + std::to_string(threads));
      SessionOptions options;
      options.num_threads = threads;
      auto session = CurrencySession::Create(spec, options);
      ASSERT_TRUE(session.ok()) << session.status();
      CheckAllProblems(session->get());
      if (::testing::Test::HasFatalFailure()) return;
      // Warm re-check: answers must be stable and served from cache.
      int64_t solves_before = (*session)->stats().base_solves;
      CheckAllProblems(session->get());
      if (::testing::Test::HasFatalFailure()) return;
      EXPECT_EQ((*session)->stats().base_solves, solves_before)
          << "warm batches must not re-run base solves";
      // Mutation rounds: rejected batches must leave everything
      // unchanged; accepted ones must match fresh solves on the edited
      // specification.  Both paths re-check all four problems.
      std::mt19937 rng(GetParam() * 7919 + variant * 53 + threads);
      for (int round = 0; round < 2; ++round) {
        SCOPED_TRACE("round=" + std::to_string(round));
        std::vector<core::TupleEdit> edits =
            MakeRandomEdits((*session)->spec(), rng);
        Status st = (*session)->Mutate(edits);
        if (!st.ok()) {
          EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st;
        }
        CheckAllProblems(session->get());
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SessionEquivalence, ::testing::Range(0, 8));

/// Serializes every batch answer a session gives (CPS, COP, DCIP, CCQA
/// answer sets and memberships) into one comparable transcript.
std::string BatchTranscript(CurrencySession* session) {
  std::string out;
  auto cps = session->CpsCheck();
  out += "cps=" + std::string(cps.ok() ? (*cps ? "1" : "0") : "E") + ";";
  std::vector<core::CurrencyOrderQuery> queries = MakeCopQueries();
  const Relation& rel = session->spec().instance(0).relation();
  for (auto& q : queries) {
    for (auto& p : q.pairs) {
      p.before = p.before % rel.size();
      p.after = p.after % rel.size();
    }
  }
  auto cop = session->CopBatch(queries);
  out += "cop=";
  if (cop.ok()) {
    for (bool b : *cop) out += b ? "1" : "0";
  } else {
    out += "E";
  }
  auto dcip = session->DcipBatch({"R"});
  out += ";dcip=";
  out += dcip.ok() ? ((*dcip)[0] ? "1" : "0") : "E";
  query::Query q = query::ParseQuery("Q(x) := EXISTS y: R('e0', x, y)").value();
  std::vector<CcqaRequest> requests;
  requests.push_back(CcqaRequest{q, std::nullopt});
  for (int k = 0; k < 4; ++k) {
    requests.push_back(CcqaRequest{q, Tuple({Value(k)})});
  }
  auto ccqa = session->CcqaBatch(requests);
  out += ";ccqa=";
  if (!ccqa.ok()) {
    out += "E";
    return out;
  }
  for (const CcqaResponse& r : *ccqa) {
    out += r.vacuous ? "v" : ".";
    if (r.is_certain.has_value()) out += *r.is_certain ? "1" : "0";
    if (r.answers.has_value()) {
      out += "{";
      for (const Tuple& t : *r.answers) out += t.ToString() + ",";
      out += "}";
    }
    out += "|";
  }
  return out;
}

// Portfolio racing must not perturb anything: a session with portfolio
// base solves enabled (and the component-size gate lowered so these
// small random components actually race) must produce a bit-identical
// batch transcript — CPS, COP, DCIP, CCQA answer sets, memberships and
// enumeration orders — to a portfolio-off session over the same
// specification and edit sequence, at every thread count.
TEST(SessionEquivalence, PortfolioOnMatchesPortfolioOff) {
  // Variant 3: every component constrained, hence SAT-routed and (with
  // the gate at 1) portfolio-eligible.  Variant 5: mixed chase/SAT.
  for (int variant : {3, 5}) {
    bool with_copy = variant & 1;
    bool with_constraints = (variant & 2) || variant >= 4;
    double free_fraction = variant >= 4 ? 0.5 : 0.0;
    core::Specification spec =
        MakeRandomSpec(77 * 1237 + variant, with_copy, with_constraints,
                       free_fraction);
    for (int threads : kThreadCounts) {
      SCOPED_TRACE("variant=" + std::to_string(variant) +
                   " threads=" + std::to_string(threads));
      auto make_session = [&](bool portfolio_on) {
        SessionOptions options;
        options.num_threads = threads;
        if (portfolio_on) {
          options.portfolio.enabled = true;
          options.portfolio.num_solvers = 3;
          options.portfolio.min_component_size = 1;
        }
        auto session = CurrencySession::Create(spec, options);
        EXPECT_TRUE(session.ok()) << session.status();
        return std::move(session).value();
      };
      auto off = make_session(false);
      auto on = make_session(true);
      if (::testing::Test::HasFailure()) return;

      EXPECT_EQ(BatchTranscript(on.get()), BatchTranscript(off.get()));
      std::mt19937 rng(variant * 101 + threads);
      for (int round = 0; round < 2; ++round) {
        std::vector<core::TupleEdit> edits = MakeRandomEdits(off->spec(),
                                                             rng);
        Status st_off = off->Mutate(edits);
        Status st_on = on->Mutate(edits);
        EXPECT_EQ(st_off.code(), st_on.code());
        EXPECT_EQ(BatchTranscript(on.get()), BatchTranscript(off.get()))
            << "round=" << round;
      }
      // Race accounting: pass-through at one thread records nothing (the
      // single-solver path IS the portfolio path there); with real
      // concurrency and every component eligible, the cold base solves
      // must have raced.
      int64_t races = on->registry()
                          ->GetCounter("currency_sat_portfolio_races_total",
                                       obs::Labels{})
                          ->Value();
      if (threads == 1) {
        EXPECT_EQ(races, 0);
      } else if (variant == 3) {
        EXPECT_GT(races, 0) << "no base solve raced despite eligibility";
      }
      int64_t off_races = off->registry()
                              ->GetCounter(
                                  "currency_sat_portfolio_races_total",
                                  obs::Labels{})
                              ->Value();
      EXPECT_EQ(off_races, 0);
    }
  }
}

// Tracing must not perturb anything: a session running under a live,
// enabled tracer (spans opened, stages attached, timers firing) must
// produce a bit-identical batch transcript to an untraced session over
// the same specification and edit sequence, at every thread count.
TEST(SessionEquivalence, TracingDoesNotPerturbAnswers) {
  for (int variant : {1, 5}) {
    bool with_copy = variant & 1;
    bool with_constraints = (variant & 2) || variant >= 4;
    double free_fraction = variant >= 4 ? 0.5 : 0.0;
    core::Specification spec =
        MakeRandomSpec(99 * 1237 + variant, with_copy, with_constraints,
                       free_fraction);
    for (int threads : kThreadCounts) {
      SCOPED_TRACE("variant=" + std::to_string(variant) +
                   " threads=" + std::to_string(threads));
      obs::TraceOptions trace_options;
      trace_options.enabled = true;
      trace_options.slow_threshold_ns = 0;  // everything hits the slow log
      obs::Tracer tracer(trace_options);

      auto make_session = [&](obs::Tracer* t) {
        SessionOptions options;
        options.num_threads = threads;
        options.tracer = t;
        auto session = CurrencySession::Create(spec, options);
        EXPECT_TRUE(session.ok()) << session.status();
        return std::move(session).value();
      };
      auto plain = make_session(nullptr);
      auto traced = make_session(&tracer);
      if (::testing::Test::HasFailure()) return;

      EXPECT_EQ(BatchTranscript(traced.get()), BatchTranscript(plain.get()));
      // Same accepted/rejected mutation outcomes, same post-edit answers.
      std::mt19937 rng(variant * 53 + threads);
      for (int round = 0; round < 2; ++round) {
        std::vector<core::TupleEdit> edits = MakeRandomEdits(plain->spec(),
                                                             rng);
        Status st_plain = plain->Mutate(edits);
        Status st_traced = traced->Mutate(edits);
        EXPECT_EQ(st_plain.code(), st_traced.code());
        EXPECT_EQ(BatchTranscript(traced.get()),
                  BatchTranscript(plain.get()))
            << "round=" << round;
      }
#ifndef CURRENCY_OBS_OFF
      // The traced session really traced: one root per batch call (4 per
      // transcript × 3 transcripts) plus one per Mutate.
      EXPECT_EQ(tracer.recorded_traces(), 14);
      EXPECT_FALSE(tracer.SlowLog().empty());
#endif
    }
  }
}

}  // namespace
}  // namespace currency::serve
