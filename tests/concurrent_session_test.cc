// Concurrency tests for the serving layer: snapshot isolation
// (linearizability of batches against epoch snapshots), the multi-region
// thread pool, the admission primitives, and the multi-tenant
// SessionManager.  scripts/check.sh runs this suite under both
// ThreadSanitizer and AddressSanitizer.
//
// The linearizability fuzz is the heart: N reader threads fire query
// batches while one mutator streams edit batches.  Every batch pins one
// epoch, so its answers must equal a fresh monolithic solve of SOME
// specification version the batch overlapped — the version window is
// bounded by epoch_version() reads bracketing the batch, and the mutator
// keeps a shadow copy of every published version.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/consistency.h"
#include "src/core/deterministic.h"
#include "src/exec/semaphore.h"
#include "src/exec/thread_pool.h"
#include "src/query/parser.h"
#include "src/serve/session.h"
#include "src/serve/session_manager.h"
#include "tests/fixtures.h"

namespace currency::serve {
namespace {

using currency::testing::MakeRandomSpec;

// ---------------------------------------------------------------------------
// exec::Semaphore / exec::AdmissionGate
// ---------------------------------------------------------------------------

TEST(SemaphoreTest, AcquireReleaseCounts) {
  exec::Semaphore sem(2);
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_TRUE(sem.TryAcquire());
  EXPECT_FALSE(sem.TryAcquire());
  sem.Release();
  EXPECT_EQ(sem.available(), 1);
  sem.Acquire();
  EXPECT_FALSE(sem.TryAcquire());
}

TEST(AdmissionGateTest, RejectsBeyondQueue) {
  exec::AdmissionGate gate(/*max_active=*/1, /*max_waiting=*/0);
  ASSERT_TRUE(gate.Enter().ok());
  Status second = gate.Enter();
  EXPECT_EQ(second.code(), StatusCode::kResourceExhausted) << second;
  gate.Leave();
  ASSERT_TRUE(gate.Enter().ok());
  gate.Leave();
  EXPECT_EQ(gate.active(), 0);
}

TEST(AdmissionGateTest, ZeroActiveRejectsEverything) {
  exec::AdmissionGate gate(/*max_active=*/0, /*max_waiting=*/4);
  EXPECT_EQ(gate.Enter().code(), StatusCode::kResourceExhausted);
}

TEST(AdmissionGateTest, QueuedCallerUnblocksOnLeave) {
  exec::AdmissionGate gate(/*max_active=*/1, /*max_waiting=*/1);
  ASSERT_TRUE(gate.Enter().ok());
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    Status st = gate.Enter();
    ASSERT_TRUE(st.ok()) << st;
    admitted.store(true);
    gate.Leave();
  });
  while (gate.waiting() == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(admitted.load());
  gate.Leave();
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(gate.active(), 0);
  EXPECT_EQ(gate.waiting(), 0);
}

// ---------------------------------------------------------------------------
// exec::ThreadPool multi-region behaviour
// ---------------------------------------------------------------------------

TEST(ThreadPoolConcurrentTest, ConcurrentRegionsComputeIndependently) {
  exec::ThreadPool pool(4);
  constexpr int kRegions = 4;
  constexpr int kTasks = 64;
  std::vector<std::vector<int>> results(kRegions,
                                        std::vector<int>(kTasks, -1));
  std::vector<std::thread> callers;
  for (int r = 0; r < kRegions; ++r) {
    callers.emplace_back([&, r] {
      Status st = pool.ParallelFor(kTasks, [&, r](int task) -> Status {
        results[r][task] = r * 1000 + task;
        return Status::OK();
      });
      ASSERT_TRUE(st.ok()) << st;
    });
  }
  for (std::thread& t : callers) t.join();
  for (int r = 0; r < kRegions; ++r) {
    for (int task = 0; task < kTasks; ++task) {
      ASSERT_EQ(results[r][task], r * 1000 + task);
    }
  }
}

TEST(ThreadPoolConcurrentTest, CallerDrainsOwnRegionEvenWhenWorkersAreBusy) {
  // Region A's tasks block until region B completes.  If region B's
  // progress depended on pool workers (which may all be stuck in A), this
  // would deadlock; the caller-drains-own-region contract guarantees B
  // finishes on its submitting thread.
  exec::ThreadPool pool(3);  // 2 workers
  std::mutex mu;
  std::condition_variable cv;
  bool b_done = false;
  std::thread a_caller([&] {
    Status st = pool.ParallelFor(4, [&](int) -> Status {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return b_done; });
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << st;
  });
  std::thread b_caller([&] {
    std::atomic<int> ran{0};
    Status st = pool.ParallelFor(8, [&](int) -> Status {
      ran.fetch_add(1);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok()) << st;
    ASSERT_EQ(ran.load(), 8);
    {
      std::lock_guard<std::mutex> lock(mu);
      b_done = true;
    }
    cv.notify_all();
  });
  b_caller.join();
  a_caller.join();
}

TEST(ThreadPoolConcurrentTest, ConcurrentRegionErrorsStayPerRegion) {
  exec::ThreadPool pool(4);
  std::vector<std::thread> callers;
  std::vector<Status> statuses(2, Status::OK());
  for (int r = 0; r < 2; ++r) {
    callers.emplace_back([&, r] {
      statuses[r] = pool.ParallelFor(32, [&, r](int task) -> Status {
        if (r == 0 && task == 7) {
          return Status::Internal("region 0 fails");
        }
        return Status::OK();
      });
    });
  }
  for (std::thread& t : callers) t.join();
  EXPECT_EQ(statuses[0].code(), StatusCode::kInternal) << statuses[0];
  EXPECT_TRUE(statuses[1].ok()) << statuses[1];
}

// ---------------------------------------------------------------------------
// CurrencySession option validation (satellite)
// ---------------------------------------------------------------------------

TEST(SessionValidationTest, RejectsNonPositiveNumThreads) {
  SessionOptions options;
  options.num_threads = 0;
  auto session = CurrencySession::Create(MakeRandomSpec(1, true, true), options);
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument)
      << session.status();
}

TEST(SessionValidationTest, RejectsNonPositiveInstanceBudget) {
  SessionOptions options;
  options.max_current_instances = 0;
  auto session = CurrencySession::Create(MakeRandomSpec(1, true, true), options);
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument)
      << session.status();
}

// ---------------------------------------------------------------------------
// Linearizability fuzz: N readers × 1 mutator
// ---------------------------------------------------------------------------

/// Fresh monolithic answers for one specification version (decomposition
/// and fast paths off — a maximally independent comparator).
struct FreshAnswers {
  bool cps = false;
  std::vector<bool> cop;
  std::vector<bool> dcip;
  bool ccqa_vacuous = false;
  std::set<Tuple> ccqa_answers;
};

/// What one reader batch observed, with the epoch-version window that
/// bounds which specification versions it could have pinned.
struct BatchRecord {
  int64_t v0 = 0;
  int64_t v1 = 0;
  int kind = 0;  // 0 = CPS, 1 = COP, 2 = DCIP, 3 = CCQA
  bool cps = false;
  std::vector<bool> flags;  // COP / DCIP answers
  bool ccqa_vacuous = false;
  std::set<Tuple> ccqa_answers;
};

std::vector<core::CurrencyOrderQuery> MakeFuzzCopQueries(
    const core::Specification& spec) {
  const Relation& rel = spec.instance(0).relation();
  std::vector<core::CurrencyOrderQuery> queries;
  auto add = [&](int attr, int before, int after) {
    core::CurrencyOrderQuery q;
    q.relation = "R";
    q.pairs = {core::RequiredPair{attr, before % rel.size(),
                                  after % rel.size()}};
    queries.push_back(std::move(q));
  };
  add(1, 0, 1);
  add(2, 1, 0);
  add(1, 0, 2);
  add(1, 2, 3);
  return queries;
}

query::Query MakeFuzzQuery() {
  return query::ParseQuery("Q(x) := EXISTS y: R('e0', x, y)").value();
}

Result<FreshAnswers> SolveFresh(const core::Specification& spec,
                                const std::vector<core::CurrencyOrderQuery>&
                                    cop_queries,
                                const std::vector<std::string>& relations) {
  FreshAnswers fresh;
  core::CpsOptions cps;
  cps.use_ptime_path_without_constraints = false;
  cps.use_decomposition = false;
  ASSIGN_OR_RETURN(core::CpsOutcome consistency,
                   core::DecideConsistency(spec, cps));
  fresh.cps = consistency.consistent;
  for (const core::CurrencyOrderQuery& q : cop_queries) {
    core::CopOptions cop;
    cop.use_ptime_path_without_constraints = false;
    cop.use_decomposition = false;
    ASSIGN_OR_RETURN(bool certain, core::IsCertainOrder(spec, q, cop));
    fresh.cop.push_back(certain);
  }
  for (const std::string& rel : relations) {
    core::DcipOptions dcip;
    dcip.use_ptime_path_without_constraints = false;
    dcip.use_decomposition = false;
    ASSIGN_OR_RETURN(bool deterministic,
                     core::IsDeterministicForRelation(spec, rel, dcip));
    fresh.dcip.push_back(deterministic);
  }
  core::CcqaOptions ccqa;
  ccqa.use_sp_fast_path = false;
  ccqa.use_decomposition = false;
  auto answers = core::CertainCurrentAnswers(spec, MakeFuzzQuery(), ccqa);
  if (!answers.ok()) {
    if (answers.status().code() != StatusCode::kInconsistent) {
      return answers.status();
    }
    fresh.ccqa_vacuous = true;
  } else {
    fresh.ccqa_answers = *answers;
  }
  return fresh;
}

bool Matches(const BatchRecord& rec, const FreshAnswers& fresh) {
  switch (rec.kind) {
    case 0:
      return rec.cps == fresh.cps;
    case 1:
      return rec.flags == fresh.cop;
    case 2:
      return rec.flags == fresh.dcip;
    default:
      if (rec.ccqa_vacuous != fresh.ccqa_vacuous) return false;
      return rec.ccqa_vacuous || rec.ccqa_answers == fresh.ccqa_answers;
  }
}

class ConcurrentLinearizability : public ::testing::TestWithParam<int> {};

TEST_P(ConcurrentLinearizability, BatchAnswersMatchSomeOverlappedEpoch) {
  constexpr int kReaders = 3;
  constexpr int kBatchesPerReader = 5;
  constexpr int kMutations = 4;
  const int session_threads = GetParam();

  for (int variant = 0; variant < 2; ++variant) {
    SCOPED_TRACE("threads=" + std::to_string(session_threads) +
                 " variant=" + std::to_string(variant));
    // Variant 0: SAT-routed (ungated constraints).  Variant 1: mixed
    // chase/SAT routing (entity-gated constraints, half the groups free).
    core::Specification spec =
        MakeRandomSpec(97 + variant, /*with_copy=*/true,
                       /*with_constraints=*/true,
                       /*constraint_free_fraction=*/variant == 1 ? 0.5 : 0.0);
    const std::vector<core::CurrencyOrderQuery> cop_queries =
        MakeFuzzCopQueries(spec);
    std::vector<std::string> relations;
    for (int i = 0; i < spec.num_instances(); ++i) {
      relations.push_back(spec.instance(i).name());
    }

    SessionOptions options;
    options.num_threads = session_threads;
    auto created = CurrencySession::Create(spec, options);
    ASSERT_TRUE(created.ok()) << created.status();
    CurrencySession* session = created->get();

    // Shadow history: shadows[v] is the specification at epoch version v.
    std::mutex shadow_mu;
    std::vector<core::Specification> shadows = {spec};

    std::mutex record_mu;
    std::vector<BatchRecord> records;
    std::atomic<bool> failed{false};

    std::vector<std::thread> threads;
    for (int reader = 0; reader < kReaders; ++reader) {
      threads.emplace_back([&, reader] {
        for (int b = 0; b < kBatchesPerReader && !failed.load(); ++b) {
          BatchRecord rec;
          rec.kind = (reader + b) % 4;
          rec.v0 = session->epoch_version();
          switch (rec.kind) {
            case 0: {
              auto got = session->CpsCheck();
              if (!got.ok()) {
                failed.store(true);
                ADD_FAILURE() << got.status();
                return;
              }
              rec.cps = *got;
              break;
            }
            case 1: {
              auto got = session->CopBatch(cop_queries);
              if (!got.ok()) {
                failed.store(true);
                ADD_FAILURE() << got.status();
                return;
              }
              rec.flags = *got;
              break;
            }
            case 2: {
              auto got = session->DcipBatch(relations);
              if (!got.ok()) {
                failed.store(true);
                ADD_FAILURE() << got.status();
                return;
              }
              rec.flags = *got;
              break;
            }
            default: {
              std::vector<CcqaRequest> requests;
              requests.push_back(CcqaRequest{MakeFuzzQuery(), std::nullopt});
              auto got = session->CcqaBatch(requests);
              if (!got.ok()) {
                failed.store(true);
                ADD_FAILURE() << got.status();
                return;
              }
              rec.ccqa_vacuous = (*got)[0].vacuous;
              if ((*got)[0].answers.has_value()) {
                rec.ccqa_answers = *(*got)[0].answers;
              }
              break;
            }
          }
          rec.v1 = session->epoch_version();
          std::lock_guard<std::mutex> lock(record_mu);
          records.push_back(std::move(rec));
        }
      });
    }
    std::thread mutator([&] {
      std::mt19937 rng(1009 * (variant + 1) + session_threads);
      auto rnd = [&](int lo, int hi) {
        return std::uniform_int_distribution<int>(lo, hi)(rng);
      };
      for (int m = 0; m < kMutations && !failed.load(); ++m) {
        core::Specification next;
        {
          std::lock_guard<std::mutex> lock(shadow_mu);
          next = shadows.back();
        }
        // Free-attribute (B) edits only: always accepted, and they flow
        // through the full fingerprint/invalidation machinery.
        const Relation& rel = next.instance(0).relation();
        std::vector<core::TupleEdit> edits = {
            core::TupleEdit{0, rnd(0, rel.size() - 1), 2, Value(rnd(0, 3))}};
        Status shadow_st = next.ApplyTupleEdits(edits);
        Status st = session->Mutate(edits);
        if (st.ok() != shadow_st.ok()) {
          failed.store(true);
          ADD_FAILURE() << "session Mutate " << st << " vs shadow "
                        << shadow_st;
          return;
        }
        if (st.ok()) {
          std::lock_guard<std::mutex> lock(shadow_mu);
          shadows.push_back(std::move(next));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    for (std::thread& t : threads) t.join();
    mutator.join();
    if (failed.load()) return;

    // Verify: every batch's answers equal a fresh monolithic solve of
    // some version inside its window.
    std::map<int64_t, FreshAnswers> memo;
    for (size_t r = 0; r < records.size(); ++r) {
      const BatchRecord& rec = records[r];
      ASSERT_LE(rec.v0, rec.v1);
      ASSERT_LT(static_cast<size_t>(rec.v1), shadows.size());
      bool matched = false;
      for (int64_t v = rec.v0; v <= rec.v1 && !matched; ++v) {
        auto it = memo.find(v);
        if (it == memo.end()) {
          auto fresh = SolveFresh(shadows[v], cop_queries, relations);
          ASSERT_TRUE(fresh.ok()) << fresh.status();
          it = memo.emplace(v, *fresh).first;
        }
        matched = Matches(rec, it->second);
      }
      EXPECT_TRUE(matched) << "record " << r << " kind " << rec.kind
                           << " window [" << rec.v0 << ", " << rec.v1
                           << "] matches no overlapped epoch";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ConcurrentLinearizability,
                         ::testing::Values(1, 2, 8));

// ---------------------------------------------------------------------------
// SessionManager
// ---------------------------------------------------------------------------

TEST(SessionManagerTest, RegisterLookupDropLifecycle) {
  auto manager = SessionManager::Create();
  ASSERT_TRUE(manager.ok()) << manager.status();
  ASSERT_TRUE(
      (*manager)->Register("beta", MakeRandomSpec(2, true, true)).ok());
  ASSERT_TRUE(
      (*manager)->Register("alpha", MakeRandomSpec(3, false, true)).ok());
  EXPECT_EQ((*manager)->Tenants(),
            (std::vector<std::string>{"alpha", "beta"}));
  Status dup = (*manager)->Register("alpha", MakeRandomSpec(4, true, false));
  EXPECT_EQ(dup.code(), StatusCode::kFailedPrecondition) << dup;
  auto session = (*manager)->Lookup("alpha");
  ASSERT_TRUE(session.ok()) << session.status();
  EXPECT_GE((*session)->num_components(), 1);
  ASSERT_TRUE((*manager)->Drop("alpha").ok());
  EXPECT_EQ((*manager)->Lookup("alpha").status().code(), StatusCode::kNotFound);
  EXPECT_EQ((*manager)->Drop("alpha").code(), StatusCode::kNotFound);
  auto cps = (*manager)->CpsCheck("beta");
  ASSERT_TRUE(cps.ok()) << cps.status();
}

TEST(SessionManagerTest, RejectsInvalidQuotasAndNames) {
  auto manager = SessionManager::Create();
  ASSERT_TRUE(manager.ok()) << manager.status();
  TenantQuotas quotas;
  quotas.max_active_batches = 0;
  EXPECT_EQ((*manager)
                ->Register("t", MakeRandomSpec(5, false, false), quotas)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*manager)->Register("", MakeRandomSpec(5, false, false)).code(),
            StatusCode::kInvalidArgument);
}

TEST(SessionManagerTest, ComponentQuotaRejectsAtRegister) {
  auto manager = SessionManager::Create();
  ASSERT_TRUE(manager.ok()) << manager.status();
  // The random spec with a copy relation decomposes into ≥ 2 components.
  TenantQuotas quotas;
  quotas.max_components = 1;
  Status st =
      (*manager)->Register("big", MakeRandomSpec(6, true, true), quotas);
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st;
  EXPECT_TRUE((*manager)->Tenants().empty());
}

TEST(SessionManagerTest, OverQuotaSubmissionRejectedNotDeadlocked) {
  auto manager = SessionManager::Create();
  ASSERT_TRUE(manager.ok()) << manager.status();
  TenantQuotas quotas;
  quotas.max_active_batches = 1;
  quotas.max_queued_batches = 0;
  ASSERT_TRUE(
      (*manager)->Register("t", MakeRandomSpec(7, true, true), quotas).ok());

  std::mutex mu;
  std::condition_variable cv;
  bool in_batch = false;
  bool release = false;
  (*manager)->SetAdmittedHookForTesting([&](const std::string&) {
    std::unique_lock<std::mutex> lock(mu);
    in_batch = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  std::thread holder([&] {
    auto got = (*manager)->CpsCheck("t");
    ASSERT_TRUE(got.ok()) << got.status();
  });
  {
    // Wait until the holder owns the tenant's single active slot.
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return in_batch; });
  }
  // The quota is saturated and the queue is zero: rejected immediately.
  auto rejected = (*manager)->CpsCheck("t");
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status();
  auto stats = (*manager)->StatsFor("t");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->active_batches, 1);
  EXPECT_EQ(stats->rejected_batches, 1);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  (*manager)->SetAdmittedHookForTesting(nullptr);
  auto after = (*manager)->StatsFor("t");
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(after->active_batches, 0);
}

TEST(SessionManagerTest, QueuedSubmissionWaitsForSlot) {
  auto manager = SessionManager::Create();
  ASSERT_TRUE(manager.ok()) << manager.status();
  TenantQuotas quotas;
  quotas.max_active_batches = 1;
  quotas.max_queued_batches = 1;
  ASSERT_TRUE(
      (*manager)->Register("t", MakeRandomSpec(8, false, true), quotas).ok());

  std::mutex mu;
  std::condition_variable cv;
  bool first_in = false;
  bool release = false;
  std::atomic<int> admitted{0};
  (*manager)->SetAdmittedHookForTesting([&](const std::string&) {
    if (admitted.fetch_add(1) > 0) return;  // only the first holds the slot
    std::unique_lock<std::mutex> lock(mu);
    first_in = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  std::thread holder([&] {
    auto got = (*manager)->CpsCheck("t");
    ASSERT_TRUE(got.ok()) << got.status();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return first_in; });
  }
  std::thread queued([&] {
    auto got = (*manager)->CpsCheck("t");  // waits in the admission queue
    ASSERT_TRUE(got.ok()) << got.status();
  });
  // The queued batch parks without being rejected...
  while (true) {
    auto stats = (*manager)->StatsFor("t");
    ASSERT_TRUE(stats.ok()) << stats.status();
    ASSERT_EQ(stats->rejected_batches, 0);
    if (stats->queued_batches == 1) break;
    std::this_thread::yield();
  }
  // ... and runs once the holder leaves.
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  holder.join();
  queued.join();
  (*manager)->SetAdmittedHookForTesting(nullptr);
  EXPECT_EQ(admitted.load(), 2);
}

TEST(SessionManagerTest, DropWhileBatchInFlight) {
  auto manager = SessionManager::Create();
  ASSERT_TRUE(manager.ok()) << manager.status();
  ASSERT_TRUE((*manager)->Register("t", MakeRandomSpec(9, true, true)).ok());
  std::mutex mu;
  std::condition_variable cv;
  bool in_batch = false;
  bool release = false;
  (*manager)->SetAdmittedHookForTesting([&](const std::string&) {
    std::unique_lock<std::mutex> lock(mu);
    in_batch = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  std::thread inflight([&] {
    auto got = (*manager)->CpsCheck("t");
    // The batch was admitted before the Drop; it completes normally on
    // the session it pinned.
    ASSERT_TRUE(got.ok()) << got.status();
  });
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return in_batch; });
  }
  ASSERT_TRUE((*manager)->Drop("t").ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  inflight.join();
  (*manager)->SetAdmittedHookForTesting(nullptr);
  EXPECT_EQ((*manager)->CpsCheck("t").status().code(), StatusCode::kNotFound);
}

TEST(SessionManagerTest, TwoTenantsServeConcurrently) {
  ManagerOptions options;
  options.num_threads = 4;
  auto manager = SessionManager::Create(options);
  ASSERT_TRUE(manager.ok()) << manager.status();
  core::Specification spec_a = MakeRandomSpec(10, true, true);
  core::Specification spec_b = MakeRandomSpec(11, true, false);
  ASSERT_TRUE((*manager)->Register("a", spec_a).ok());
  ASSERT_TRUE((*manager)->Register("b", spec_b).ok());

  // Expected answers from a fresh monolithic solve per tenant.
  core::CpsOptions cps;
  cps.use_ptime_path_without_constraints = false;
  cps.use_decomposition = false;
  auto outcome_a = core::DecideConsistency(spec_a, cps);
  auto outcome_b = core::DecideConsistency(spec_b, cps);
  ASSERT_TRUE(outcome_a.ok()) << outcome_a.status();
  ASSERT_TRUE(outcome_b.ok()) << outcome_b.status();
  const bool expect_a = outcome_a->consistent;
  const bool expect_b = outcome_b->consistent;

  std::atomic<bool> failed{false};
  std::vector<std::thread> clients;
  for (int k = 0; k < 4; ++k) {
    clients.emplace_back([&, k] {
      const std::string tenant = (k % 2 == 0) ? "a" : "b";
      const bool expected = (k % 2 == 0) ? expect_a : expect_b;
      for (int i = 0; i < 4; ++i) {
        auto got = (*manager)->CpsCheck(tenant);
        if (!got.ok() || *got != expected) {
          failed.store(true);
          ADD_FAILURE() << "tenant " << tenant << ": " << got.status();
          return;
        }
        std::vector<std::string> relations = {"R"};
        auto dcip = (*manager)->DcipBatch(tenant, relations);
        if (!dcip.ok()) {
          failed.store(true);
          ADD_FAILURE() << "tenant " << tenant << ": " << dcip.status();
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_FALSE(failed.load());
  auto stats_a = (*manager)->StatsFor("a");
  ASSERT_TRUE(stats_a.ok());
  EXPECT_EQ(stats_a->rejected_batches, 0);
}

}  // namespace
}  // namespace currency::serve
