// Unit tests for the parallel execution layer (src/exec/thread_pool.h):
// task coverage, index-ordered claiming, deterministic error selection,
// cooperative cancellation, and the inline one-thread path.  These tests
// (plus tests/parallel_equivalence_test.cc) are the ones scripts/check.sh
// re-runs under ThreadSanitizer (CURRENCY_TSAN).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "src/exec/thread_pool.h"

namespace currency::exec {
namespace {

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    std::vector<std::atomic<int>> hits(97);
    Status status = pool.ParallelFor(97, [&](int task) -> Status {
      hits[task].fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
    ASSERT_TRUE(status.ok());
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossRegions) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    ASSERT_TRUE(pool
                    .ParallelFor(round + 1,
                                 [&](int task) -> Status {
                                   sum.fetch_add(task + 1);
                                   return Status::OK();
                                 })
                    .ok());
    EXPECT_EQ(sum.load(), (round + 1) * (round + 2) / 2);
  }
}

TEST(ThreadPoolTest, ZeroAndNegativeInputsAreSafe) {
  ThreadPool clamped(0);  // clamps to one thread
  EXPECT_EQ(clamped.num_threads(), 1);
  int calls = 0;
  EXPECT_TRUE(clamped
                  .ParallelFor(0,
                               [&](int) -> Status {
                                 ++calls;
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(calls, 0);
  ThreadPool pool(3);
  EXPECT_TRUE(pool.ParallelFor(-5, [&](int) -> Status {
                    ++calls;
                    return Status::OK();
                  }).ok());
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, LowestIndexedErrorWinsDeterministically) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    // Tasks 3 and 7 fail; the reported error must be task 3's on every
    // thread count and every interleaving.
    Status status = pool.ParallelFor(16, [&](int task) -> Status {
      if (task == 7) return Status::Internal("task 7");
      if (task == 3) return Status::InvalidArgument("task 3");
      return Status::OK();
    });
    ASSERT_FALSE(status.ok());
    // Task 7 may have been skipped (an error cancels unclaimed tasks),
    // but if both ran, index order decides.
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_EQ(status.message(), "task 3");
  }
}

TEST(ThreadPoolTest, InlinePathStopsAtFirstError) {
  ThreadPool pool(1);
  int last_seen = -1;
  Status status = pool.ParallelFor(10, [&](int task) -> Status {
    last_seen = task;
    if (task == 4) return Status::Internal("task 4");
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.message(), "task 4");
  EXPECT_EQ(last_seen, 4);  // tasks after the failure never run
}

TEST(ThreadPoolTest, CancellationSkipsUnclaimedTasks) {
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    CancellationToken cancel;
    std::atomic<int> ran{0};
    Status status = pool.ParallelFor(
        1000,
        [&](int task) -> Status {
          ran.fetch_add(1, std::memory_order_relaxed);
          if (task == 0) cancel.Cancel();
          return Status::OK();
        },
        &cancel);
    ASSERT_TRUE(status.ok());
    // Task 0 is claimed first (index order), cancels, and at most the
    // tasks already claimed by then still run — far fewer than 1000.
    EXPECT_GE(ran.load(), 1);
    EXPECT_LT(ran.load(), 1000);
  }
}

TEST(ThreadPoolTest, ClaimsFormAPrefix) {
  // Claims proceed in index order, so whatever ran is a prefix of the
  // index space once cancellation fires — the property the decomposed
  // CCQA aggregation relies on to find the genuine first cause.
  for (int threads : {2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    CancellationToken cancel;
    std::vector<std::atomic<char>> ran(256);
    ASSERT_TRUE(pool
                    .ParallelFor(
                        256,
                        [&](int task) -> Status {
                          ran[task].store(1, std::memory_order_relaxed);
                          if (task == 40) cancel.Cancel();
                          return Status::OK();
                        },
                        &cancel)
                    .ok());
    int highest_ran = -1;
    for (int i = 0; i < 256; ++i) {
      if (ran[i].load()) highest_ran = i;
    }
    for (int i = 0; i <= highest_ran; ++i) {
      EXPECT_TRUE(ran[i].load()) << "gap at task " << i
                                 << " below highest ran " << highest_ran;
    }
  }
}

TEST(ThreadPoolTest, ManyMoreTasksThanThreadsStress) {
  ThreadPool pool(8);
  std::atomic<int64_t> sum{0};
  const int n = 10'000;
  ASSERT_TRUE(pool
                  .ParallelFor(n,
                               [&](int task) -> Status {
                                 sum.fetch_add(task,
                                               std::memory_order_relaxed);
                                 return Status::OK();
                               })
                  .ok());
  EXPECT_EQ(sum.load(), static_cast<int64_t>(n) * (n - 1) / 2);
}

}  // namespace
}  // namespace currency::exec
