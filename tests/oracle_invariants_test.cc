// Invariant tests for the brute-force oracle itself: the certain-prefix
// seeding and definitive-violation pruning inside
// EnumerateConsistentCompletions are optimizations and must not change
// WHICH completions are visited.  The reference below re-enumerates the
// raw cross product of linear extensions of the *initial* orders and
// filters with IsConsistentCompletion only.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "src/core/brute_force.h"
#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/consistency.h"
#include "src/core/decompose.h"
#include "src/core/deterministic.h"
#include "src/order/linear_extensions.h"
#include "src/query/parser.h"
#include "tests/fixtures.h"

namespace currency::core {
namespace {

using currency::testing::MakeRandomSpec;

/// Raw reference enumeration: no seeding, no pruning.
Result<int64_t> RawCount(const Specification& spec, int64_t max_candidates) {
  struct Slot {
    int inst;
    AttrIndex attr;
    std::vector<std::vector<TupleId>> extensions;
  };
  std::vector<Slot> slots;
  int64_t estimate = 1;
  for (int i = 0; i < spec.num_instances(); ++i) {
    const TemporalInstance& inst = spec.instance(i);
    for (AttrIndex a = 1; a < inst.schema().arity(); ++a) {
      for (const auto& [eid, members] : inst.relation().EntityGroups()) {
        (void)eid;
        if (members.size() <= 1) continue;
        Slot slot;
        slot.inst = i;
        slot.attr = a;
        EnumerateLinearExtensions(inst.order(a), members,
                                  [&](const std::vector<int>& seq) {
                                    slot.extensions.push_back(seq);
                                    return true;
                                  });
        estimate *= static_cast<int64_t>(slot.extensions.size());
        if (estimate > max_candidates) {
          return Status::ResourceExhausted("raw reference too large");
        }
        slots.push_back(std::move(slot));
      }
    }
  }
  Completion base;
  for (int i = 0; i < spec.num_instances(); ++i) {
    base.orders.push_back(spec.instance(i).orders());
  }
  int64_t count = 0;
  std::function<Status(size_t, Completion&)> rec =
      [&](size_t k, Completion& partial) -> Status {
    if (k == slots.size()) {
      ASSIGN_OR_RETURN(bool ok, IsConsistentCompletion(spec, partial));
      if (ok) ++count;
      return Status::OK();
    }
    for (const auto& seq : slots[k].extensions) {
      Completion next = partial;
      PartialOrder& po = next.orders[slots[k].inst][slots[k].attr];
      bool feasible = true;
      for (size_t j = 0; j + 1 < seq.size(); ++j) {
        if (!po.TryAdd(seq[j], seq[j + 1])) {
          feasible = false;
          break;
        }
      }
      if (feasible) RETURN_IF_ERROR(rec(k + 1, next));
    }
    return Status::OK();
  };
  RETURN_IF_ERROR(rec(0, base));
  return count;
}

class OracleCountInvariant : public ::testing::TestWithParam<int> {};

TEST_P(OracleCountInvariant, SeedingAndPruningLoseNothing) {
  for (int variant = 0; variant < 4; ++variant) {
    Specification spec =
        MakeRandomSpec(GetParam() * 419 + variant, variant & 1, variant & 2);
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " variant=" + std::to_string(variant));
    auto raw = RawCount(spec, 500'000);
    if (!raw.ok()) continue;  // reference too large: skip this draw
    int64_t optimized =
        EnumerateConsistentCompletions(
            spec, [](const Completion&) { return true; })
            .value();
    EXPECT_EQ(optimized, *raw);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, OracleCountInvariant, ::testing::Range(0, 25));

/// Canonical serialization of a current-instance database: relation name
/// plus value-sorted tuples (the two SAT paths materialize tuples in
/// different orders).
std::string CanonicalDb(const query::Database& db) {
  std::string out;
  for (const auto& [name, rel] : db) {
    std::vector<std::string> rows;
    rows.reserve(rel->tuples().size());
    for (const Tuple& t : rel->tuples()) rows.push_back(t.ToString());
    std::sort(rows.begin(), rows.end());
    out += name + "{";
    for (const std::string& row : rows) out += row + ";";
    out += "}";
  }
  return out;
}

// Property sweep: the decomposed SAT path (one encoder per coupling
// component) agrees with the monolithic encoder on CPS, COP, DCIP, CCQA
// and current-instance enumeration.  The PTIME chase path is disabled so
// the SAT machinery is exercised even on constraint-free draws.
class DecomposedVsMonolithic : public ::testing::TestWithParam<int> {};

TEST_P(DecomposedVsMonolithic, AllSolversAgree) {
  for (int variant = 0; variant < 4; ++variant) {
    Specification spec =
        MakeRandomSpec(GetParam() * 733 + variant, variant & 1, variant & 2);
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " variant=" + std::to_string(variant));

    // CPS, including witness validity on the decomposed path.
    CpsOptions cps_mono, cps_dec;
    cps_mono.use_ptime_path_without_constraints = false;
    cps_mono.use_decomposition = false;
    cps_dec.use_ptime_path_without_constraints = false;
    cps_dec.use_decomposition = true;
    cps_dec.want_witness = true;
    auto mono = DecideConsistency(spec, cps_mono);
    auto dec = DecideConsistency(spec, cps_dec);
    ASSERT_TRUE(mono.ok() && dec.ok());
    EXPECT_EQ(mono->consistent, dec->consistent);
    EXPECT_GT(dec->components, 0);
    if (dec->consistent) {
      ASSERT_TRUE(dec->witness.has_value());
      EXPECT_TRUE(IsConsistentCompletion(spec, *dec->witness).value());
    }

    // COP on a handful of pairs (including a cross-entity one: tuple 0
    // is entity e0, tuple 2 is e1 on every draw).
    for (const RequiredPair& pair :
         {RequiredPair{1, 0, 1}, RequiredPair{2, 1, 0}, RequiredPair{1, 0, 2}}) {
      CurrencyOrderQuery q;
      q.relation = "R";
      q.pairs = {pair};
      CopOptions cop_mono, cop_dec;
      cop_mono.use_ptime_path_without_constraints = false;
      cop_mono.use_decomposition = false;
      cop_dec.use_ptime_path_without_constraints = false;
      cop_dec.use_decomposition = true;
      EXPECT_EQ(IsCertainOrder(spec, q, cop_mono).value(),
                IsCertainOrder(spec, q, cop_dec).value());
    }

    // DCIP per relation.
    DcipOptions dcip_mono, dcip_dec;
    dcip_mono.use_ptime_path_without_constraints = false;
    dcip_mono.use_decomposition = false;
    dcip_dec.use_ptime_path_without_constraints = false;
    dcip_dec.use_decomposition = true;
    EXPECT_EQ(IsDeterministic(spec, dcip_mono).value(),
              IsDeterministic(spec, dcip_dec).value());

    // Current-instance enumeration: same count, same set of databases.
    CcqaOptions ccqa_mono, ccqa_dec;
    ccqa_mono.use_decomposition = false;
    ccqa_dec.use_decomposition = true;
    std::multiset<std::string> seen_mono, seen_dec;
    auto count_mono = ForEachCurrentInstance(
        spec, ccqa_mono, [&](const query::Database& db) {
          seen_mono.insert(CanonicalDb(db));
          return true;
        });
    auto count_dec = ForEachCurrentInstance(
        spec, ccqa_dec, [&](const query::Database& db) {
          seen_dec.insert(CanonicalDb(db));
          return true;
        });
    ASSERT_TRUE(count_mono.ok() && count_dec.ok());
    EXPECT_EQ(*count_mono, *count_dec);
    EXPECT_EQ(seen_mono, seen_dec);

    // CCQA answer sets (general path; the SP fast path is off so the
    // merged-component membership loop runs).
    query::Query q =
        query::ParseQuery("Q(x) := EXISTS y: R('e0', x, y)").value();
    ccqa_mono.use_sp_fast_path = false;
    ccqa_dec.use_sp_fast_path = false;
    auto ans_mono = CertainCurrentAnswers(spec, q, ccqa_mono);
    auto ans_dec = CertainCurrentAnswers(spec, q, ccqa_dec);
    if (!ans_mono.ok()) {
      EXPECT_EQ(ans_mono.status().code(), ans_dec.status().code());
    } else {
      ASSERT_TRUE(ans_dec.ok()) << ans_dec.status();
      EXPECT_EQ(*ans_mono, *ans_dec);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, DecomposedVsMonolithic,
                         ::testing::Range(0, 25));

TEST(DecompositionTest, CopyCouplingMergesComponents) {
  // S0's ρ maps three Dept tuples (entity RnD) from Mary's Emp tuples and
  // one from Bob's single tuple: {Emp:Mary, Dept:RnD} couple (two distinct
  // source tuples), while Emp:Bob and Emp:Robert stay their own
  // components (a single-source bucket emits no clause).
  Specification s0 = currency::testing::MakeS0();
  auto decomposition = Decomposition::Build(s0);
  ASSERT_TRUE(decomposition.ok());
  EXPECT_EQ(decomposition->num_components(), 3);
  int mary = decomposition->ComponentOf(0, Value("Mary"));
  int rnd = decomposition->ComponentOf(1, Value("RnD"));
  int bob = decomposition->ComponentOf(0, Value("Bob"));
  int robert = decomposition->ComponentOf(0, Value("Robert"));
  EXPECT_EQ(mary, rnd);
  EXPECT_NE(bob, mary);
  EXPECT_NE(robert, mary);
  EXPECT_NE(bob, robert);
  EXPECT_EQ(decomposition->ComponentOf(0, Value("nobody")), -1);
  EXPECT_EQ(decomposition->ComponentOf(7, Value("Mary")), -1);
}

TEST(OracleInvariantTest, VisitedCompletionsAreConsistentAndDistinct) {
  Specification spec = MakeRandomSpec(12345, /*with_copy=*/true,
                                      /*with_constraints=*/true);
  std::set<std::string> seen;
  auto count = EnumerateConsistentCompletions(spec, [&](const Completion& c) {
    // Every visited completion passes the full validity check ...
    EXPECT_TRUE(IsConsistentCompletion(spec, c).value());
    // ... and is pairwise distinct (serialize the orders as a key).
    std::string key;
    for (const auto& per_inst : c.orders) {
      for (const auto& po : per_inst) key += po.ToString() + "|";
    }
    EXPECT_TRUE(seen.insert(key).second) << "duplicate completion visited";
    return true;
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(static_cast<int64_t>(seen.size()), *count);
}

TEST(OracleInvariantTest, EarlyStopIsHonoured) {
  Specification spec = MakeRandomSpec(777, false, false);
  int visits = 0;
  auto count = EnumerateConsistentCompletions(spec, [&](const Completion&) {
    ++visits;
    return false;  // stop immediately
  });
  ASSERT_TRUE(count.ok());
  EXPECT_LE(*count, 1);
  EXPECT_LE(visits, 1);
}

TEST(OracleInvariantTest, BudgetGuard) {
  // A spec with many unconstrained groups exceeds a tiny budget.
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  for (int e = 0; e < 10; ++e) {
    Value eid("e" + std::to_string(e));
    (void)r.AppendValues({eid, Value(0)});
    (void)r.AppendValues({eid, Value(1)});
    (void)r.AppendValues({eid, Value(2)});
  }
  (void)spec.AddInstance(TemporalInstance(std::move(r)));
  BruteForceOptions options;
  options.max_candidates = 100;
  auto count = EnumerateConsistentCompletions(
      spec, [](const Completion&) { return true; }, options);
  EXPECT_EQ(count.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace currency::core
