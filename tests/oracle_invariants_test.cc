// Invariant tests for the brute-force oracle itself: the certain-prefix
// seeding and definitive-violation pruning inside
// EnumerateConsistentCompletions are optimizations and must not change
// WHICH completions are visited.  The reference below re-enumerates the
// raw cross product of linear extensions of the *initial* orders and
// filters with IsConsistentCompletion only.

#include <gtest/gtest.h>

#include <set>

#include "src/core/brute_force.h"
#include "src/order/linear_extensions.h"
#include "tests/fixtures.h"

namespace currency::core {
namespace {

using currency::testing::MakeRandomSpec;

/// Raw reference enumeration: no seeding, no pruning.
Result<int64_t> RawCount(const Specification& spec, int64_t max_candidates) {
  struct Slot {
    int inst;
    AttrIndex attr;
    std::vector<std::vector<TupleId>> extensions;
  };
  std::vector<Slot> slots;
  int64_t estimate = 1;
  for (int i = 0; i < spec.num_instances(); ++i) {
    const TemporalInstance& inst = spec.instance(i);
    for (AttrIndex a = 1; a < inst.schema().arity(); ++a) {
      for (const auto& [eid, members] : inst.relation().EntityGroups()) {
        (void)eid;
        if (members.size() <= 1) continue;
        Slot slot;
        slot.inst = i;
        slot.attr = a;
        EnumerateLinearExtensions(inst.order(a), members,
                                  [&](const std::vector<int>& seq) {
                                    slot.extensions.push_back(seq);
                                    return true;
                                  });
        estimate *= static_cast<int64_t>(slot.extensions.size());
        if (estimate > max_candidates) {
          return Status::ResourceExhausted("raw reference too large");
        }
        slots.push_back(std::move(slot));
      }
    }
  }
  Completion base;
  for (int i = 0; i < spec.num_instances(); ++i) {
    base.orders.push_back(spec.instance(i).orders());
  }
  int64_t count = 0;
  std::function<Status(size_t, Completion&)> rec =
      [&](size_t k, Completion& partial) -> Status {
    if (k == slots.size()) {
      ASSIGN_OR_RETURN(bool ok, IsConsistentCompletion(spec, partial));
      if (ok) ++count;
      return Status::OK();
    }
    for (const auto& seq : slots[k].extensions) {
      Completion next = partial;
      PartialOrder& po = next.orders[slots[k].inst][slots[k].attr];
      bool feasible = true;
      for (size_t j = 0; j + 1 < seq.size(); ++j) {
        if (!po.TryAdd(seq[j], seq[j + 1])) {
          feasible = false;
          break;
        }
      }
      if (feasible) RETURN_IF_ERROR(rec(k + 1, next));
    }
    return Status::OK();
  };
  RETURN_IF_ERROR(rec(0, base));
  return count;
}

class OracleCountInvariant : public ::testing::TestWithParam<int> {};

TEST_P(OracleCountInvariant, SeedingAndPruningLoseNothing) {
  for (int variant = 0; variant < 4; ++variant) {
    Specification spec =
        MakeRandomSpec(GetParam() * 419 + variant, variant & 1, variant & 2);
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " variant=" + std::to_string(variant));
    auto raw = RawCount(spec, 500'000);
    if (!raw.ok()) continue;  // reference too large: skip this draw
    int64_t optimized =
        EnumerateConsistentCompletions(
            spec, [](const Completion&) { return true; })
            .value();
    EXPECT_EQ(optimized, *raw);
  }
}

INSTANTIATE_TEST_SUITE_P(Random, OracleCountInvariant, ::testing::Range(0, 25));

TEST(OracleInvariantTest, VisitedCompletionsAreConsistentAndDistinct) {
  Specification spec = MakeRandomSpec(12345, /*with_copy=*/true,
                                      /*with_constraints=*/true);
  std::set<std::string> seen;
  auto count = EnumerateConsistentCompletions(spec, [&](const Completion& c) {
    // Every visited completion passes the full validity check ...
    EXPECT_TRUE(IsConsistentCompletion(spec, c).value());
    // ... and is pairwise distinct (serialize the orders as a key).
    std::string key;
    for (const auto& per_inst : c.orders) {
      for (const auto& po : per_inst) key += po.ToString() + "|";
    }
    EXPECT_TRUE(seen.insert(key).second) << "duplicate completion visited";
    return true;
  });
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(static_cast<int64_t>(seen.size()), *count);
}

TEST(OracleInvariantTest, EarlyStopIsHonoured) {
  Specification spec = MakeRandomSpec(777, false, false);
  int visits = 0;
  auto count = EnumerateConsistentCompletions(spec, [&](const Completion&) {
    ++visits;
    return false;  // stop immediately
  });
  ASSERT_TRUE(count.ok());
  EXPECT_LE(*count, 1);
  EXPECT_LE(visits, 1);
}

TEST(OracleInvariantTest, BudgetGuard) {
  // A spec with many unconstrained groups exceeds a tiny budget.
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  for (int e = 0; e < 10; ++e) {
    Value eid("e" + std::to_string(e));
    (void)r.AppendValues({eid, Value(0)});
    (void)r.AppendValues({eid, Value(1)});
    (void)r.AppendValues({eid, Value(2)});
  }
  (void)spec.AddInstance(TemporalInstance(std::move(r)));
  BruteForceOptions options;
  options.max_candidates = 100;
  auto count = EnumerateConsistentCompletions(
      spec, [](const Completion&) { return true; }, options);
  EXPECT_EQ(count.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace currency::core
