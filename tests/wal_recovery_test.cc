// Crash-recovery tests for the durability stack: the log layer
// (src/wal) under torn and bit-flipped tails, and the SessionManager's
// command log end to end — kill/reopen at EVERY log prefix, replaying
// into a recovered manager whose CPS/COP/DCIP/CCQA answers must equal
// the live manager's.
//
// The crash model: a crash can cut the log at any byte (torn tail) or
// damage unsynced tail bytes (bit flips).  Recovery must (a) never
// crash, (b) keep exactly the longest valid record prefix — acknowledged
// commands survive because Mutate fsyncs before returning — and
// (c) produce a manager whose state equals replaying that prefix of
// accepted commands.  Rejected mutations are never logged, so they must
// be absent from every recovered state.
//
// Log directories live under the current working directory (the build
// tree when run via ctest) in wal_test_dirs/, which is gitignored, and
// are removed on test exit.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/certain_order.h"
#include "src/core/specification.h"
#include "src/query/parser.h"
#include "src/serve/session_manager.h"
#include "src/wal/log.h"
#include "src/wire/spec.h"
#include "tests/fixtures.h"

namespace currency {
namespace {

namespace fs = std::filesystem;
using currency::testing::MakeRandomSpec;
using serve::ManagerOptions;
using serve::SessionManager;

/// A unique log directory under ./wal_test_dirs, removed at destruction.
class TestDir {
 public:
  explicit TestDir(const std::string& name) {
    static std::atomic<int> counter{0};
    path_ = "wal_test_dirs/" + name + "_" +
            std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1));
    fs::create_directories(path_);
  }
  ~TestDir() {
    // Remove only this test's directory — suites run as parallel ctest
    // processes sharing the wal_test_dirs root.
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

  /// A sibling copy of this directory (fresh name), for destructive
  /// crash experiments that must not disturb the original.
  std::string Clone(const std::string& suffix) const {
    std::string copy = path_ + "_" + suffix;
    std::error_code ec;
    fs::remove_all(copy, ec);
    fs::copy(path_, copy, fs::copy_options::recursive);
    return copy;
  }

 private:
  std::string path_;
};

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteWholeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// The segment files of a log directory, sorted (= sequence order).
std::vector<std::string> SegmentFiles(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0) out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

uint32_t LoadU32At(const std::string& bytes, size_t off) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[off + i]))
         << (8 * i);
  }
  return v;
}

/// Byte offsets of record boundaries in one segment file: the first
/// entry is the 16-byte header boundary, then one entry per record end.
/// Walks the length fields only — exactly what an adversary tearing the
/// file cannot change without also failing the CRC.
std::vector<size_t> RecordBoundaries(const std::string& segment_bytes) {
  std::vector<size_t> bounds{16};
  size_t off = 16;
  while (off + 16 <= segment_bytes.size()) {
    const uint32_t len = LoadU32At(segment_bytes, off + 4);
    if (segment_bytes.size() - off - 16 < len) break;
    off += 16 + len;
    bounds.push_back(off);
  }
  return bounds;
}

// ---------------------------------------------------------------------------
// Log layer.
// ---------------------------------------------------------------------------

TEST(WalLog, AppendRecoverContinue) {
  TestDir dir("basic");
  {
    auto writer = wal::LogWriter::Open(dir.path());
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_EQ(writer.value()->last_seq(), 0u);
    for (int i = 0; i < 5; ++i) {
      auto seq = writer.value()->Append("payload-" + std::to_string(i));
      ASSERT_TRUE(seq.ok());
      EXPECT_EQ(seq.value(), static_cast<uint64_t>(i + 1));
    }
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  {
    auto writer = wal::LogWriter::Open(dir.path());
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    const wal::RecoveredLog& rec = writer.value()->recovered();
    ASSERT_EQ(rec.records.size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(rec.records[i].seq, static_cast<uint64_t>(i + 1));
      EXPECT_EQ(rec.records[i].payload, "payload-" + std::to_string(i));
    }
    EXPECT_EQ(rec.last_seq, 5u);
    EXPECT_EQ(rec.dropped_bytes, 0u);
    // Sequence numbers continue where the previous incarnation stopped.
    auto seq = writer.value()->Append("after-restart");
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(seq.value(), 6u);
  }
}

TEST(WalLog, EmptyDirectoryIsEmptyLog) {
  TestDir dir("empty");
  auto rec = wal::LogReader::ReadDir(dir.path());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_FALSE(rec.value().has_snapshot);
  EXPECT_TRUE(rec.value().records.empty());
}

TEST(WalLog, EveryTornPrefixRecoversTheValidRecords) {
  TestDir dir("torn");
  constexpr int kRecords = 6;
  {
    auto writer = wal::LogWriter::Open(dir.path());
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(
          writer.value()->Append("record-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  std::vector<std::string> segments = SegmentFiles(dir.path());
  ASSERT_EQ(segments.size(), 1u);
  const std::string full = ReadWholeFile(segments[0]);
  const std::vector<size_t> bounds = RecordBoundaries(full);
  ASSERT_EQ(bounds.size(), static_cast<size_t>(kRecords + 1));

  // Cut the segment at EVERY byte length, not just record boundaries.
  for (size_t cut = 0; cut <= full.size(); ++cut) {
    std::string copy = dir.Clone("cut" + std::to_string(cut));
    std::vector<std::string> copy_segments = SegmentFiles(copy);
    ASSERT_EQ(copy_segments.size(), 1u);
    WriteWholeFile(copy_segments[0], full.substr(0, cut));

    // The number of whole records below the cut.
    size_t expect = 0;
    while (expect + 1 < bounds.size() && bounds[expect + 1] <= cut) ++expect;

    auto rec = wal::LogReader::ReadDir(copy);
    ASSERT_TRUE(rec.ok()) << "cut=" << cut << ": " << rec.status().ToString();
    ASSERT_EQ(rec.value().records.size(), expect) << "cut=" << cut;
    for (size_t i = 0; i < expect; ++i) {
      EXPECT_EQ(rec.value().records[i].payload,
                "record-" + std::to_string(i));
    }
    // A writer opened on the torn directory truncates and can continue.
    auto writer = wal::LogWriter::Open(copy);
    ASSERT_TRUE(writer.ok()) << "cut=" << cut;
    EXPECT_EQ(writer.value()->recovered().records.size(), expect);
    auto seq = writer.value()->Append("continued");
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(seq.value(), static_cast<uint64_t>(expect + 1));
    std::error_code ec;
    fs::remove_all(copy, ec);
  }
}

TEST(WalLog, BitFlippedTailKeepsOnlyAValidPrefix) {
  TestDir dir("flip");
  constexpr int kRecords = 4;
  {
    auto writer = wal::LogWriter::Open(dir.path());
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(writer.value()->Append("record-" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  std::vector<std::string> segments = SegmentFiles(dir.path());
  ASSERT_EQ(segments.size(), 1u);
  const std::string full = ReadWholeFile(segments[0]);
  const std::vector<size_t> bounds = RecordBoundaries(full);

  for (size_t pos = 0; pos < full.size(); ++pos) {
    std::string copy = dir.Clone("flip" + std::to_string(pos));
    std::vector<std::string> copy_segments = SegmentFiles(copy);
    std::string damaged = full;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0x40);
    WriteWholeFile(copy_segments[0], damaged);

    auto rec = wal::LogReader::ReadDir(copy);
    ASSERT_TRUE(rec.ok()) << "pos=" << pos << ": " << rec.status().ToString();
    const auto& records = rec.value().records;
    if (pos < 16) {
      // Header damage invalidates the whole segment.
      EXPECT_TRUE(records.empty()) << "pos=" << pos;
    } else {
      // Damage inside record k kills k and everything after it; records
      // before k are untouched.  (The flip always lands inside some
      // record: CRC covers the full frame, so survival would require a
      // CRC collision — with one deterministic bit flip there is none.)
      size_t k = 0;
      while (k + 1 < bounds.size() && bounds[k + 1] <= pos) ++k;
      ASSERT_EQ(records.size(), k) << "pos=" << pos;
      for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].payload, "record-" + std::to_string(i));
      }
    }
    std::error_code ec;
    fs::remove_all(copy, ec);
  }
}

TEST(WalLog, RotationSplitsAndRecoveryCrossesSegments) {
  TestDir dir("rotate");
  wal::WalOptions options;
  options.segment_bytes = 64;  // a few records per segment
  {
    auto writer = wal::LogWriter::Open(dir.path(), options);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(writer.value()->Append("r" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  EXPECT_GT(SegmentFiles(dir.path()).size(), 2u);
  auto rec = wal::LogReader::ReadDir(dir.path());
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec.value().records.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(rec.value().records[i].seq, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(rec.value().records[i].payload, "r" + std::to_string(i));
  }
}

TEST(WalLog, SnapshotPrunesSegmentsAndSeedsRecovery) {
  TestDir dir("snap");
  wal::WalOptions options;
  options.segment_bytes = 64;
  {
    auto writer = wal::LogWriter::Open(dir.path(), options);
    ASSERT_TRUE(writer.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(writer.value()->Append("pre" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(writer.value()->Sync().ok());
    ASSERT_TRUE(writer.value()->WriteSnapshot("state-at-10").ok());
    // Everything at or below seq 10 is covered: only the fresh tail
    // segment survives.
    EXPECT_EQ(SegmentFiles(dir.path()).size(), 1u);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(writer.value()->Append("post" + std::to_string(i)).ok());
    }
    ASSERT_TRUE(writer.value()->Sync().ok());
  }
  auto rec = wal::LogReader::ReadDir(dir.path());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_TRUE(rec.value().has_snapshot);
  EXPECT_EQ(rec.value().snapshot_seq, 10u);
  EXPECT_EQ(rec.value().snapshot_payload, "state-at-10");
  ASSERT_EQ(rec.value().records.size(), 3u);
  EXPECT_EQ(rec.value().records[0].seq, 11u);
  EXPECT_EQ(rec.value().records[0].payload, "post0");
  EXPECT_EQ(rec.value().last_seq, 13u);
}

TEST(WalLog, CorruptSnapshotIsAHardError) {
  TestDir dir("badsnap");
  {
    auto writer = wal::LogWriter::Open(dir.path());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append("x").ok());
    ASSERT_TRUE(writer.value()->Sync().ok());
    ASSERT_TRUE(writer.value()->WriteSnapshot("snapshot-bytes").ok());
  }
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) != 0) continue;
    std::string bytes = ReadWholeFile(entry.path().string());
    bytes[bytes.size() / 2] ^= 0x01;
    WriteWholeFile(entry.path().string(), bytes);
  }
  // Unlike a torn log tail there is no fallback: the covered records are
  // pruned, so recovery must refuse rather than resurrect partial state.
  EXPECT_FALSE(wal::LogReader::ReadDir(dir.path()).ok());
  EXPECT_FALSE(wal::LogWriter::Open(dir.path()).ok());
}

// ---------------------------------------------------------------------------
// Manager level: commands, replay, answer equality.
// ---------------------------------------------------------------------------

core::CurrencyOrderQuery MakeCopQuery() {
  core::CurrencyOrderQuery q;
  q.relation = "R";
  core::RequiredPair p;
  p.attr = 1;
  p.before = 0;
  p.after = 1;  // tuples 0 and 1 are both entity e0 by construction
  q.pairs.push_back(p);
  return q;
}

struct Answers {
  bool cps = false;
  std::vector<bool> cop;
  std::vector<bool> dcip;
  std::vector<serve::CcqaResponse> ccqa;
};

Answers QueryAll(SessionManager* manager, const std::string& tenant) {
  Answers a;
  auto cps = manager->CpsCheck(tenant);
  EXPECT_TRUE(cps.ok()) << cps.status().ToString();
  a.cps = cps.ok() && cps.value();
  auto cop = manager->CopBatch(tenant, {MakeCopQuery()});
  EXPECT_TRUE(cop.ok()) << cop.status().ToString();
  if (cop.ok()) a.cop = cop.value();
  auto dcip = manager->DcipBatch(tenant, {"R"});
  EXPECT_TRUE(dcip.ok()) << dcip.status().ToString();
  if (dcip.ok()) a.dcip = dcip.value();
  serve::CcqaRequest req;
  req.query = query::ParseQuery("Q(x) := EXISTS y: R('e0', x, y)").value();
  auto ccqa = manager->CcqaBatch(tenant, {req});
  EXPECT_TRUE(ccqa.ok()) << ccqa.status().ToString();
  if (ccqa.ok()) a.ccqa = ccqa.value();
  return a;
}

void ExpectSameAnswers(const Answers& live, const Answers& recovered) {
  EXPECT_EQ(live.cps, recovered.cps);
  EXPECT_EQ(live.cop, recovered.cop);
  EXPECT_EQ(live.dcip, recovered.dcip);
  ASSERT_EQ(live.ccqa.size(), recovered.ccqa.size());
  for (size_t i = 0; i < live.ccqa.size(); ++i) {
    EXPECT_EQ(live.ccqa[i].vacuous, recovered.ccqa[i].vacuous);
    EXPECT_EQ(live.ccqa[i].is_certain, recovered.ccqa[i].is_certain);
    EXPECT_EQ(live.ccqa[i].answers, recovered.ccqa[i].answers);
  }
}

std::string TenantSpecWire(SessionManager* manager,
                           const std::string& tenant) {
  auto session = manager->Lookup(tenant);
  EXPECT_TRUE(session.ok()) << session.status().ToString();
  if (!session.ok()) return "";
  return wire::SerializeSpecification(session.value()->spec());
}

/// The crash-recovery fuzz of the ISSUE: random accepted/rejected
/// mutation rounds against a durable manager, then kill/reopen at every
/// record-boundary prefix of the log (plus torn and bit-flipped tails)
/// and require the recovered state to equal the corresponding accepted
/// prefix — with full answer equality at a sample of prefixes.
TEST(WalManager, RecoveryFuzzEveryPrefix) {
  for (unsigned seed : {7u, 21u}) {
    TestDir dir("fuzz" + std::to_string(seed));
    std::mt19937 rng(seed);
    auto rnd = [&](int lo, int hi) {
      return std::uniform_int_distribution<int>(lo, hi)(rng);
    };

    core::Specification spec =
        MakeRandomSpec(seed, /*with_copy=*/true, /*with_constraints=*/true);
    const int num_tuples =
        static_cast<int>(spec.instance(0).relation().size());
    // The accepted history, replayed by hand alongside the manager.
    std::vector<core::Specification> expected;
    expected.push_back(spec);  // state after the register

    {
      auto manager = SessionManager::Open(dir.path());
      ASSERT_TRUE(manager.ok()) << manager.status().ToString();
      ASSERT_TRUE(
          manager.value()->Register("t", std::move(spec), {}).ok());
      for (int round = 0; round < 8; ++round) {
        if (rnd(0, 3) == 0) {
          // A rejected round: invalid attribute.  Must leave no trace in
          // the log or the state.
          std::vector<core::TupleEdit> bad;
          bad.push_back({0, 0, 99, Value(1)});
          EXPECT_FALSE(manager.value()->Mutate("t", bad).ok());
          continue;
        }
        // Accepted edits target B (attr 2): it is never a copy source, so
        // the copying condition cannot reject the batch.
        std::vector<core::TupleEdit> edits;
        const int batch = rnd(1, 3);
        for (int e = 0; e < batch; ++e) {
          edits.push_back({0, rnd(0, num_tuples - 1), 2, Value(rnd(0, 3))});
        }
        ASSERT_TRUE(manager.value()->Mutate("t", edits).ok());
        core::Specification next = expected.back();
        ASSERT_TRUE(next.ApplyTupleEdits(edits).ok());
        expected.push_back(std::move(next));
        // Occasionally warm the caches mid-stream: solver state must not
        // leak into what gets logged.
        if (rnd(0, 1) == 0) {
          auto cps = manager.value()->CpsCheck("t");
          ASSERT_TRUE(cps.ok());
        }
      }
    }

    std::vector<std::string> segments = SegmentFiles(dir.path());
    ASSERT_EQ(segments.size(), 1u);  // default segment size: no rotation
    const std::string full = ReadWholeFile(segments[0]);
    const std::vector<size_t> bounds = RecordBoundaries(full);
    // records = 1 register + |expected|-1 accepted mutates.
    ASSERT_EQ(bounds.size(), expected.size() + 1);

    // Reference answers per prefix come from a fresh in-memory manager
    // over the hand-replayed specification.
    for (size_t k = 0; k < bounds.size(); ++k) {
      // Prefix k keeps the first k records.  Also test a torn variant
      // that cuts mid-record-(k+1) — it must recover identically.
      for (int torn = 0; torn < 2; ++torn) {
        size_t cut = bounds[k];
        if (torn == 1) {
          if (k + 1 >= bounds.size()) continue;
          cut += 7;  // into the next record's frame
        }
        std::string copy =
            dir.Clone("k" + std::to_string(k) + "t" + std::to_string(torn));
        WriteWholeFile(SegmentFiles(copy)[0], full.substr(0, cut));
        auto recovered = SessionManager::Open(copy);
        ASSERT_TRUE(recovered.ok())
            << "seed=" << seed << " k=" << k << " torn=" << torn << ": "
            << recovered.status().ToString();
        if (k == 0) {
          EXPECT_TRUE(recovered.value()->Tenants().empty());
        } else {
          const core::Specification& want = expected[k - 1];
          EXPECT_EQ(TenantSpecWire(recovered.value().get(), "t"),
                    wire::SerializeSpecification(want))
              << "seed=" << seed << " k=" << k << " torn=" << torn;
          // Full answer equality on a sample of prefixes (every prefix
          // would be all solving, little extra coverage).
          if (!torn && (k == 1 || k == bounds.size() / 2 ||
                        k + 1 == bounds.size())) {
            auto reference = SessionManager::Create();
            ASSERT_TRUE(reference.ok());
            core::Specification ref_spec = want;
            ASSERT_TRUE(reference.value()
                            ->Register("t", std::move(ref_spec), {})
                            .ok());
            ExpectSameAnswers(QueryAll(reference.value().get(), "t"),
                              QueryAll(recovered.value().get(), "t"));
          }
        }
        std::error_code ec;
        fs::remove_all(copy, ec);
      }
    }

    // Bit-flip the last record's payload: recovery drops exactly it.
    {
      std::string copy = dir.Clone("lastflip");
      std::string damaged = full;
      damaged[bounds[bounds.size() - 2] + 20] ^= 0x10;
      WriteWholeFile(SegmentFiles(copy)[0], damaged);
      auto recovered = SessionManager::Open(copy);
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_EQ(TenantSpecWire(recovered.value().get(), "t"),
                wire::SerializeSpecification(expected[expected.size() - 2]));
      std::error_code ec;
      fs::remove_all(copy, ec);
    }

    // And the intact directory recovers the full state — then keeps
    // accepting durable mutations (recovery is not read-only).
    {
      auto recovered = SessionManager::Open(dir.path());
      ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
      EXPECT_EQ(TenantSpecWire(recovered.value().get(), "t"),
                wire::SerializeSpecification(expected.back()));
      std::vector<core::TupleEdit> more;
      more.push_back({0, 0, 2, Value(2)});
      ASSERT_TRUE(recovered.value()->Mutate("t", more).ok());
    }
    {
      auto recovered = SessionManager::Open(dir.path());
      ASSERT_TRUE(recovered.ok());
      core::Specification want = expected.back();
      std::vector<core::TupleEdit> more;
      more.push_back({0, 0, 2, Value(2)});
      ASSERT_TRUE(want.ApplyTupleEdits(more).ok());
      EXPECT_EQ(TenantSpecWire(recovered.value().get(), "t"),
                wire::SerializeSpecification(want));
    }
  }
}

TEST(WalManager, RejectedMutationsAreNeverLogged) {
  TestDir dir("rejected");
  {
    auto manager = SessionManager::Open(dir.path());
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(manager.value()
                    ->Register("t", MakeRandomSpec(3, false, true), {})
                    .ok());
    std::vector<core::TupleEdit> bad;
    bad.push_back({5, 0, 1, Value(1)});  // no such instance
    EXPECT_FALSE(manager.value()->Mutate("t", bad).ok());
    std::vector<core::TupleEdit> good;
    good.push_back({0, 0, 1, Value(3)});
    ASSERT_TRUE(manager.value()->Mutate("t", good).ok());
  }
  auto rec = wal::LogReader::ReadDir(dir.path());
  ASSERT_TRUE(rec.ok());
  // Exactly the accepted history: one register, one mutate.
  EXPECT_EQ(rec.value().records.size(), 2u);
}

TEST(WalManager, DropAndReRegisterAreDurable) {
  TestDir dir("drop");
  {
    auto manager = SessionManager::Open(dir.path());
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(manager.value()
                    ->Register("a", MakeRandomSpec(1, false, false), {})
                    .ok());
    ASSERT_TRUE(manager.value()
                    ->Register("b", MakeRandomSpec(2, false, false), {})
                    .ok());
    ASSERT_TRUE(manager.value()->Drop("a").ok());
    // Re-registering a dropped name is a fresh tenant.
    ASSERT_TRUE(manager.value()
                    ->Register("a", MakeRandomSpec(4, true, true), {})
                    .ok());
  }
  auto manager = SessionManager::Open(dir.path());
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  EXPECT_EQ(manager.value()->Tenants(),
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(TenantSpecWire(manager.value().get(), "a"),
            wire::SerializeSpecification(MakeRandomSpec(4, true, true)));
}

TEST(WalManager, QuotasSurviveRecovery) {
  TestDir dir("quotas");
  serve::TenantQuotas quotas;
  quotas.max_active_batches = 1;
  quotas.max_queued_batches = 0;
  quotas.max_current_instances = 12345;
  {
    auto manager = SessionManager::Open(dir.path());
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(manager.value()
                    ->Register("t", MakeRandomSpec(5, false, true), quotas)
                    .ok());
  }
  auto manager = SessionManager::Open(dir.path());
  ASSERT_TRUE(manager.ok());
  auto stats = manager.value()->StatsFor("t");
  ASSERT_TRUE(stats.ok());
  // The gate was rebuilt from the recovered quotas: a single blocking
  // slot with no queue rejects a second admission immediately — observed
  // via the test hook below in serve_test; here the cheap proxy is that
  // the tenant exists and answers.
  EXPECT_TRUE(manager.value()->CpsCheck("t").ok());
}

TEST(WalManager, SnapshotSkipsReplayAndReAdoptsVerdicts) {
  TestDir dir("snapshot");
  std::string final_wire;
  Answers live;
  {
    auto manager = SessionManager::Open(dir.path());
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(manager.value()
                    ->Register("t", MakeRandomSpec(11, true, true), {})
                    .ok());
    for (int round = 0; round < 5; ++round) {
      std::vector<core::TupleEdit> edits;
      edits.push_back({0, round % 4, 2, Value(round % 3)});
      ASSERT_TRUE(manager.value()->Mutate("t", edits).ok());
    }
    live = QueryAll(manager.value().get(), "t");  // warms every base solve
    ASSERT_TRUE(manager.value()->Snapshot().ok());
    final_wire = TenantSpecWire(manager.value().get(), "t");
  }
  // The snapshot replaced the replay: no command records remain.
  auto rec = wal::LogReader::ReadDir(dir.path());
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec.value().has_snapshot);
  EXPECT_TRUE(rec.value().records.empty());

  auto manager = SessionManager::Open(dir.path());
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  EXPECT_EQ(TenantSpecWire(manager.value().get(), "t"), final_wire);
  // Warm restart: every component's base verdict was adopted from the
  // snapshot by content fingerprint, so the first CpsCheck performs NO
  // base solves.
  auto session = manager.value()->Lookup("t");
  ASSERT_TRUE(session.ok());
  auto cps = manager.value()->CpsCheck("t");
  ASSERT_TRUE(cps.ok());
  EXPECT_EQ(cps.value(), live.cps);
  EXPECT_EQ(session.value()->stats().base_solves, 0);
  ExpectSameAnswers(live, QueryAll(manager.value().get(), "t"));
}

TEST(WalManager, AutoSnapshotKicksInEveryN) {
  TestDir dir("autosnap");
  ManagerOptions options;
  options.snapshot_every = 3;
  {
    auto manager = SessionManager::Open(dir.path(), options);
    ASSERT_TRUE(manager.ok());
    ASSERT_TRUE(manager.value()
                    ->Register("t", MakeRandomSpec(9, false, true), {})
                    .ok());
    for (int round = 0; round < 7; ++round) {
      std::vector<core::TupleEdit> edits;
      edits.push_back({0, 0, 1, Value(round)});
      ASSERT_TRUE(manager.value()->Mutate("t", edits).ok());
    }
  }
  // 8 commands at snapshot_every=3 → snapshots after 3 and 6; the last
  // two commands remain as replay records.
  auto rec = wal::LogReader::ReadDir(dir.path());
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec.value().has_snapshot);
  EXPECT_EQ(rec.value().snapshot_seq, 6u);
  EXPECT_EQ(rec.value().records.size(), 2u);
  auto manager = SessionManager::Open(dir.path(), options);
  ASSERT_TRUE(manager.ok()) << manager.status().ToString();
  core::Specification want = MakeRandomSpec(9, false, true);
  for (int round = 0; round < 7; ++round) {
    std::vector<core::TupleEdit> edits;
    edits.push_back({0, 0, 1, Value(round)});
    ASSERT_TRUE(want.ApplyTupleEdits(edits).ok());
  }
  EXPECT_EQ(TenantSpecWire(manager.value().get(), "t"),
            wire::SerializeSpecification(want));
}

TEST(WalManager, InMemoryManagerRejectsSnapshot) {
  auto manager = SessionManager::Create();
  ASSERT_TRUE(manager.ok());
  EXPECT_EQ(manager.value()->Snapshot().code(),
            StatusCode::kFailedPrecondition);
}

/// Concurrent readers during logged Mutates: the TSan pass of
/// scripts/check.sh runs this to prove the commit path (log_mu_ around
/// apply + append + fsync) does not race the snapshot-isolated readers.
TEST(WalManager, ConcurrentReadersDuringLoggedMutates) {
  TestDir dir("concurrent");
  ManagerOptions options;
  options.num_threads = 2;
  auto manager = SessionManager::Open(dir.path(), options);
  ASSERT_TRUE(manager.ok());
  ASSERT_TRUE(manager.value()
                  ->Register("t", MakeRandomSpec(13, true, true), {})
                  .ok());
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto cps = manager.value()->CpsCheck("t");
        ASSERT_TRUE(cps.ok()) << cps.status().ToString();
        auto cop = manager.value()->CopBatch("t", {MakeCopQuery()});
        ASSERT_TRUE(cop.ok()) << cop.status().ToString();
      }
    });
  }
  std::mt19937 rng(99);
  auto rnd = [&](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  for (int round = 0; round < 12; ++round) {
    std::vector<core::TupleEdit> edits;
    edits.push_back({0, rnd(0, 3), 2, Value(rnd(0, 3))});
    ASSERT_TRUE(manager.value()->Mutate("t", edits).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  // The log replays to exactly the final state despite the concurrency.
  auto recovered = SessionManager::Open(dir.path());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(TenantSpecWire(recovered.value().get(), "t"),
            TenantSpecWire(manager.value().get(), "t"));
}

}  // namespace
}  // namespace currency
