// Focused tests for the SAT encoder (cell semantics, completion
// extraction, seeding) and the chase / certain-prefix machinery,
// including the documented Proposition 6.3 corner case.

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/ccqa.h"
#include "src/core/chase.h"
#include "src/core/consistency.h"
#include "src/core/encoder.h"
#include "src/core/sp_ccqa.h"
#include "src/query/parser.h"
#include "tests/fixtures.h"

namespace currency::core {
namespace {

using currency::testing::MakeS0;

TEST(EncoderTest, OrderVarCountsAndPairLookup) {
  Specification s0 = MakeS0();
  auto encoder = Encoder::Build(s0).value();
  // Emp: Mary's group of 3 → 3 pairs × 5 attrs = 15; Dept: group of 4 →
  // 6 pairs × 4 attrs = 24.
  EXPECT_EQ(encoder->num_order_vars(), 15 + 24);
  EXPECT_TRUE(encoder->HasPairVar(0, 0, 2));   // Mary tuples
  EXPECT_TRUE(encoder->HasPairVar(0, 2, 0));   // symmetric query
  EXPECT_FALSE(encoder->HasPairVar(0, 2, 3));  // Mary vs Bob
  EXPECT_FALSE(encoder->HasPairVar(0, 1, 1));  // reflexive
}

TEST(EncoderTest, OrdLitOrientationIsConsistent) {
  Specification s0 = MakeS0();
  auto encoder = Encoder::Build(s0).value();
  sat::Lit fwd = encoder->OrdLit(0, 4, 0, 2);
  sat::Lit bwd = encoder->OrdLit(0, 4, 2, 0);
  EXPECT_EQ(fwd, sat::Negate(bwd));  // totality/antisymmetry baked in
}

TEST(EncoderTest, CellsCollapseDuplicateValues) {
  // Two tuples with the same A value: the cell has ONE candidate value.
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(7)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(7)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(r))).ok());
  auto encoder = Encoder::Build(spec).value();
  ASSERT_EQ(encoder->cells().size(), 1u);
  EXPECT_EQ(encoder->cells()[0].values.size(), 1u);
  // The single cell-value literal exists and a bogus value does not.
  EXPECT_TRUE(
      encoder->CellValueLit(0, 1, Value("e"), Value(7)).ok());
  EXPECT_FALSE(
      encoder->CellValueLit(0, 1, Value("e"), Value(8)).ok());
  EXPECT_FALSE(
      encoder->CellValueLit(0, 1, Value("nope"), Value(7)).ok());
}

TEST(EncoderTest, ModelDecodesToConsistentCompletionAndLst) {
  Specification s0 = MakeS0();
  auto encoder = Encoder::Build(s0).value();
  ASSERT_EQ(encoder->solver().Solve(), sat::SolveResult::kSat);
  Completion c = encoder->ExtractCompletion();
  EXPECT_TRUE(IsConsistentCompletion(s0, c).value());
  auto decoded = encoder->DecodeCurrentInstances().value();
  // The decoded current instances must match LST of the extracted
  // completion.
  for (int i = 0; i < s0.num_instances(); ++i) {
    Relation lst = CurrentInstance(s0, c, i).value();
    EXPECT_EQ(decoded[i].tuples(), lst.tuples());
  }
}

TEST(EncoderTest, SeedingPreservesModelsOnConstrainedSpec) {
  Specification s0 = MakeS0();
  Encoder::Options seeded;
  seeded.seed_with_chase = true;
  auto enc = Encoder::Build(s0, seeded).value();
  EXPECT_EQ(enc->solver().Solve(), sat::SolveResult::kSat);
  Completion c = enc->ExtractCompletion();
  EXPECT_TRUE(IsConsistentCompletion(s0, c).value());
}

TEST(EncoderTest, SeedingDetectsInconsistencyAtBuildTime) {
  // Contradictory value-derived units: the certain prefix already clashes.
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(1)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(2)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(r))).ok());
  ASSERT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: s.A > t.A -> t PREC[A] s")
          .ok());
  ASSERT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: s.A < t.A -> t PREC[A] s")
          .ok());
  Encoder::Options seeded;
  seeded.seed_with_chase = true;
  auto enc = Encoder::Build(spec, seeded).value();
  EXPECT_EQ(enc->solver().Solve(), sat::SolveResult::kUnsat);
}

TEST(CertainPrefixTest, HornClosureDerivesConditionalOrders) {
  Specification s0 = MakeS0();
  auto prefix = CertainOrderPrefix(s0).value();
  ASSERT_TRUE(prefix.consistent);
  const Schema& emp = s0.instance(0).schema();
  AttrIndex salary = emp.IndexOf("salary").value();
  AttrIndex address = emp.IndexOf("address").value();
  AttrIndex ln = emp.IndexOf("LN").value();
  // ϕ1 units: s1,s2 ≺_salary s3.
  EXPECT_TRUE(prefix.certain_orders[0][salary].Less(0, 2));
  EXPECT_TRUE(prefix.certain_orders[0][salary].Less(1, 2));
  // ϕ3 closure: the salary units imply the address orders.
  EXPECT_TRUE(prefix.certain_orders[0][address].Less(0, 2));
  EXPECT_TRUE(prefix.certain_orders[0][address].Less(1, 2));
  // ϕ2: LN ordering from marital status.
  EXPECT_TRUE(prefix.certain_orders[0][ln].Less(0, 1));
  // Copy propagation into Dept, then ϕ4 into budget.
  const Schema& dept = s0.instance(1).schema();
  AttrIndex mgr_addr = dept.IndexOf("mgrAddr").value();
  AttrIndex budget = dept.IndexOf("budget").value();
  EXPECT_TRUE(prefix.certain_orders[1][mgr_addr].Less(0, 2));
  EXPECT_TRUE(prefix.certain_orders[1][mgr_addr].Less(1, 2));
  EXPECT_TRUE(prefix.certain_orders[1][budget].Less(0, 2));
  // Nothing relates t3 and t4 (the paper's open pair).
  EXPECT_FALSE(prefix.certain_orders[1][budget].Comparable(2, 3));
}

TEST(CertainPrefixTest, EveryDerivedPairIsCertain) {
  // Soundness: each derived pair must hold in every consistent completion
  // (checked against the brute-force oracle on the trimmed S0).
  Specification spec = currency::testing::MakeS0Trimmed();
  auto prefix = CertainOrderPrefix(spec).value();
  ASSERT_TRUE(prefix.consistent);
  for (int i = 0; i < spec.num_instances(); ++i) {
    const Schema& schema = spec.instance(i).schema();
    for (AttrIndex a = 1; a < schema.arity(); ++a) {
      for (auto [u, v] : prefix.certain_orders[i][a].Pairs()) {
        CurrencyOrderQuery q;
        q.relation = schema.relation_name();
        q.pairs = {{a, u, v}};
        EXPECT_TRUE(BruteForceCertainOrder(spec, q).value())
            << schema.relation_name() << " " << a << ": " << u << "≺" << v;
      }
    }
  }
}

TEST(CertainPrefixTest, PureDenialWithCertainPremisesIsInconsistent) {
  Specification spec;
  Schema rs = Schema::Make("R", {"A", "B"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(1), Value(0)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(2), Value(0)}).ok());
  TemporalInstance inst(std::move(r));
  ASSERT_TRUE(inst.AddOrderByName("A", 0, 1).ok());
  ASSERT_TRUE(spec.AddInstance(std::move(inst)).ok());
  // Denial: the initial order itself triggers t PREC[B] t.
  ASSERT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: t PREC[A] s -> t PREC[B] t")
          .ok());
  auto prefix = CertainOrderPrefix(spec).value();
  EXPECT_FALSE(prefix.consistent);
  EXPECT_FALSE(DecideConsistency(spec)->consistent);
}

// The documented Proposition 6.3 corner (DESIGN.md §6b): two target
// attributes copied from the SAME source attribute are coupled, breaking
// the proof's independence assumption.  The fast path then returns a
// sound subset; the general solver is exact.
TEST(SpCcqaCornerTest, SharedSourceCouplingMakesFastPathConservative) {
  Specification spec;
  Schema src_schema = Schema::Make("Src", {"B"}).value();
  Relation src(src_schema);
  ASSERT_TRUE(src.AppendValues({Value("e"), Value(1)}).ok());
  ASSERT_TRUE(src.AppendValues({Value("e"), Value(2)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(src))).ok());
  Schema tgt_schema = Schema::Make("Tgt", {"A1", "A2"}).value();
  Relation tgt(tgt_schema);
  ASSERT_TRUE(tgt.AppendValues({Value("f"), Value(1), Value(1)}).ok());
  ASSERT_TRUE(tgt.AppendValues({Value("f"), Value(2), Value(2)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(tgt))).ok());
  // Both A1 and A2 copy from Src.B: one copy function per attribute,
  // sharing the source attribute — fully coupling A1 and A2.
  for (const char* attr : {"A1", "A2"}) {
    copy::CopySignature sig;
    sig.target_relation = "Tgt";
    sig.target_attrs = {attr};
    sig.source_relation = "Src";
    sig.source_attrs = {"B"};
    copy::CopyFunction fn(sig);
    ASSERT_TRUE(fn.Map(0, 0).ok());
    ASSERT_TRUE(fn.Map(1, 1).ok());
    ASSERT_TRUE(spec.AddCopyFunction(std::move(fn)).ok());
  }
  // In every completion A1's and A2's current values track each other, so
  // "some x with A1 = A2 = x exists" is certain as a Boolean...
  auto boolean =
      query::ParseQuery("Q() := EXISTS e, x: Tgt(e, x, x)").value();
  auto general = CertainCurrentAnswers(spec, boolean).value();
  EXPECT_EQ(general.size(), 1u);  // the empty tuple: certainly true
  // ... and the coupled SP selection σ_{A1=A2} projected to the entity is
  // certain under the GENERAL solver:
  auto sp = query::ParseQuery(
                "Q(e) := EXISTS x, y: Tgt(e, x, y) AND x = y")
                .value();
  ASSERT_TRUE(query::IsSpQuery(sp));
  CcqaOptions no_fast;
  no_fast.use_sp_fast_path = false;
  auto exact = CertainCurrentAnswers(spec, sp, no_fast).value();
  EXPECT_EQ(exact, std::set<Tuple>{Tuple({Value("f")})});
  // ... while the literal Prop 6.3 algorithm reports the sound subset ∅
  // (both cells get fresh constants, the selection x = y fails).
  auto fast = SpCertainCurrentAnswers(spec, sp).value();
  EXPECT_TRUE(fast.empty());
  // Subset relation (soundness) holds.
  for (const Tuple& t : fast) EXPECT_TRUE(exact.count(t));
}

TEST(ChaseTest, PassesAreReported) {
  Specification s0 = MakeS0();
  auto chase = ChaseCopyOrders(s0).value();
  EXPECT_GE(chase.passes, 1);
  auto prefix = CertainOrderPrefix(s0).value();
  EXPECT_GE(prefix.passes, chase.passes);
}

/// Reference chase propagation using the pre-bucketing quadratic pair
/// expansion (the O(|ρ|²) double loop BuildEdgePlans used to run): the
/// bucketed plans must reach the same fixpoint — same certain orders,
/// same consistency verdict — because the closure is a least fixpoint of
/// monotone rules and therefore independent of pair application order.
struct ReferenceChaseResult {
  std::vector<std::vector<PartialOrder>> orders;
  bool consistent = true;
};

ReferenceChaseResult ReferenceChase(const Specification& spec) {
  ReferenceChaseResult ref;
  for (int i = 0; i < spec.num_instances(); ++i) {
    ref.orders.push_back(spec.instance(i).orders());
  }
  struct RefPair {
    TupleId t1, t2, s1, s2;
  };
  struct RefPlan {
    int source, target;
    std::vector<std::pair<AttrIndex, AttrIndex>> attrs;
    std::vector<RefPair> pairs;
  };
  std::vector<RefPlan> plans;
  for (const CopyEdge& edge : spec.copy_edges()) {
    RefPlan plan;
    plan.source = edge.source_instance;
    plan.target = edge.target_instance;
    const Relation& target = spec.instance(edge.target_instance).relation();
    const Relation& source = spec.instance(edge.source_instance).relation();
    plan.attrs = edge.fn.ResolveAttrs(target.schema(), source.schema()).value();
    for (const auto& [t1, s1] : edge.fn.mapping()) {
      for (const auto& [t2, s2] : edge.fn.mapping()) {
        if (t1 == t2 || s1 == s2) continue;
        if (!(target.tuple(t1).eid() == target.tuple(t2).eid())) continue;
        if (!(source.tuple(s1).eid() == source.tuple(s2).eid())) continue;
        plan.pairs.push_back(RefPair{t1, t2, s1, s2});
      }
    }
    plans.push_back(std::move(plan));
  }
  bool changed = true;
  while (changed && ref.consistent) {
    changed = false;
    for (const RefPlan& plan : plans) {
      for (const auto& [a, b] : plan.attrs) {
        PartialOrder& tgt = ref.orders[plan.target][a];
        PartialOrder& src = ref.orders[plan.source][b];
        for (const RefPair& p : plan.pairs) {
          if (src.Less(p.s1, p.s2) && !tgt.Less(p.t1, p.t2)) {
            if (!tgt.TryAdd(p.t1, p.t2)) {
              ref.consistent = false;
              return ref;
            }
            changed = true;
          }
          if (tgt.Less(p.t1, p.t2) && !src.Less(p.s1, p.s2)) {
            if (!src.TryAdd(p.s1, p.s2)) {
              ref.consistent = false;
              return ref;
            }
            changed = true;
          }
        }
      }
    }
  }
  return ref;
}

void ExpectChaseMatchesReference(const Specification& spec) {
  auto chase = ChaseCopyOrders(spec);
  ASSERT_TRUE(chase.ok()) << chase.status();
  ReferenceChaseResult ref = ReferenceChase(spec);
  ASSERT_EQ(chase->consistent, ref.consistent);
  if (!ref.consistent) return;  // orders are meaningless mid-abort
  for (int i = 0; i < spec.num_instances(); ++i) {
    for (size_t a = 1; a < ref.orders[i].size(); ++a) {
      EXPECT_EQ(chase->certain_orders[i][a].ToString(),
                ref.orders[i][a].ToString())
          << "instance " << i << " attr " << a;
    }
  }
}

/// A large copy edge whose bucketed pair order differs from the raw
/// mapping-squared order: each target entity's mappings interleave two
/// source entities by tuple id, so the quadratic loop emits its pairs in
/// target-id order while the buckets group them by source entity.
Specification MakeLargeEdgeSpec(int entities, bool plant_cycle) {
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  for (int e = 0; e < entities; ++e) {
    Value eid("e" + std::to_string(e));
    for (int k = 0; k < 3; ++k) {
      (void)r.AppendValues({eid, Value(k)});
    }
  }
  TemporalInstance inst(std::move(r));
  // Initial source orders on even entities: t0 ≺ t1 within the group.
  for (int e = 0; e < entities; e += 2) {
    (void)inst.AddOrder(1, e * 3, e * 3 + 1);
  }
  (void)spec.AddInstance(std::move(inst));

  Schema r2s = Schema::Make("R2", {"C"}).value();
  Relation r2(r2s);
  copy::CopySignature sig;
  sig.target_relation = "R2";
  sig.target_attrs = {"C"};
  sig.source_relation = "R";
  sig.source_attrs = {"A"};
  copy::CopyFunction fn(sig);
  // Target entity g<j> draws from source entities e<2j> and e<2j+1>,
  // interleaved: t0 ⇐ e2j:0, t1 ⇐ e2j+1:0, t2 ⇐ e2j:1, t3 ⇐ e2j+1:1.
  for (int j = 0; 2 * j + 1 < entities; ++j) {
    Value eid("g" + std::to_string(j));
    int src_a = (2 * j) * 3;
    int src_b = (2 * j + 1) * 3;
    for (int k = 0; k < 2; ++k) {
      auto ta = r2.AppendValues({eid, Value(k)});
      (void)fn.Map(*ta, src_a + k);
      auto tb = r2.AppendValues({eid, Value(k)});
      (void)fn.Map(*tb, src_b + k);
    }
  }
  TemporalInstance inst2(std::move(r2));
  if (plant_cycle) {
    // Against g0's copied pair from e0 (whose source order forces
    // t0 ≺ t2 in the target), assert the opposite target order: the
    // chase must derive the contradiction and report inconsistency.
    (void)inst2.AddOrder(1, 2, 0);
  }
  (void)spec.AddInstance(std::move(inst2));
  (void)spec.AddCopyFunction(std::move(fn));
  return spec;
}

TEST(ChaseTest, LargeEdgeBucketedPlansMatchQuadraticReference) {
  // 120 entities × 3 tuples: the raw |ρ|² loop would visit 240² mapping
  // pairs for this edge; the bucketed plans visit Σ|bucket|² = 60 · 4².
  ExpectChaseMatchesReference(MakeLargeEdgeSpec(120, /*plant_cycle=*/false));
}

TEST(ChaseTest, LargeEdgeInconsistencyMatchesQuadraticReference) {
  ExpectChaseMatchesReference(MakeLargeEdgeSpec(120, /*plant_cycle=*/true));
}

TEST(ChaseTest, RandomSpecsMatchQuadraticReference) {
  for (int seed = 0; seed < 40; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExpectChaseMatchesReference(currency::testing::MakeRandomSpec(
        seed * 577 + 11, /*with_copy=*/true, /*with_constraints=*/false));
  }
}

}  // namespace
}  // namespace currency::core
