// Tests for currency preservation (Sections 4, 5): CPP on Example 4.1
// (the Mgr relation of Fig. 3), ECP (Proposition 5.2), and BCP.

#include <gtest/gtest.h>

#include "src/core/consistency.h"
#include "src/core/preservation.h"
#include "src/query/parser.h"
#include "tests/fixtures.h"

namespace currency::core {
namespace {

using currency::testing::MakeQ2;
using currency::testing::MakeS1;

TEST(ExtensionAtomsTest, S1AtomSpace) {
  Specification s1 = MakeS1();
  auto atoms = EnumerateExtensionAtoms(s1);
  ASSERT_TRUE(atoms.ok()) << atoms.status();
  // Mgr ⇐ sources s'1..s'3 × Emp entities {Bob, Mary, Robert} = 9, minus
  // the deduplicated (s'2 → Mary) already imported as ρ(s3) = s'2.
  EXPECT_EQ(atoms->size(), 8u);
  for (const ExtensionAtom& atom : *atoms) {
    EXPECT_EQ(atom.copy_edge, 0);
    EXPECT_FALSE(atom.source_tuple == 1 && atom.target_eid == Value("Mary"));
  }
}

TEST(ExtensionAtomsTest, NonCoveringFunctionsAreNotExtendable) {
  Specification s0 = currency::testing::MakeS0();
  // ρ: Dept[mgrAddr] ⇐ Emp[address] covers one of four attributes.
  auto atoms = EnumerateExtensionAtoms(s0);
  ASSERT_TRUE(atoms.ok());
  EXPECT_TRUE(atoms->empty());
}

TEST(ApplyExtensionTest, BuildsSe) {
  Specification s1 = MakeS1();
  ExtensionAtom atom;
  atom.copy_edge = 0;
  atom.source_tuple = 2;  // s'3 = (Mary, Smith, 2 Small St, 80, divorced)
  atom.target_eid = Value("Mary");
  auto se = ApplyExtension(s1, {atom});
  ASSERT_TRUE(se.ok()) << se.status();
  const Relation& emp = se->instance(0).relation();
  ASSERT_EQ(emp.size(), 6);
  EXPECT_EQ(emp.tuple(5),
            Tuple({Value("Mary"), Value("Mary"), Value("Smith"),
                   Value("2 Small St"), Value(80), Value("divorced")}));
  // The new tuple is mapped by the extended copy function.
  EXPECT_EQ(se->copy_edges()[0].fn.SourceOf(5), 2);
  // Se is consistent.
  EXPECT_TRUE(DecideConsistency(*se)->consistent);
}

TEST(CppTest, Example41RhoIsNotPreserving) {
  // Copying s'3 (divorced, LN Smith) into Emp flips Q2's certain answer
  // from Dupont to Smith, so ρ is not currency preserving.
  Specification s1 = MakeS1();
  auto preserving = IsCurrencyPreserving(s1, MakeQ2());
  ASSERT_TRUE(preserving.ok()) << preserving.status();
  EXPECT_FALSE(*preserving);
}

TEST(CppTest, Example41Rho1IsPreserving) {
  // After importing s'3 for Mary, Q2's certain answer is Smith and stays
  // Smith under every further import (ρ1 in the paper's notation).
  Specification s1 = MakeS1();
  ExtensionAtom atom;
  atom.copy_edge = 0;
  atom.source_tuple = 2;
  atom.target_eid = Value("Mary");
  Specification se = ApplyExtension(s1, {atom}).value();
  // Sanity: certain answer flipped to Smith.
  auto answers = CertainCurrentAnswers(se, MakeQ2());
  ASSERT_TRUE(answers.ok());
  EXPECT_EQ(*answers, std::set<Tuple>{Tuple({Value("Smith")})});
  auto preserving = IsCurrencyPreserving(se, MakeQ2());
  ASSERT_TRUE(preserving.ok()) << preserving.status();
  EXPECT_TRUE(*preserving);
}

TEST(CppTest, InconsistentSpecIsNotPreserving) {
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(1)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(2)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(r))).ok());
  ASSERT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: s.A > t.A -> t PREC[A] s")
          .ok());
  ASSERT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: s.A < t.A -> t PREC[A] s")
          .ok());
  auto q = query::ParseQuery("Q(x) := EXISTS e: R(e, x)").value();
  EXPECT_FALSE(IsCurrencyPreserving(spec, q).value());
}

TEST(CppTest, NoExtendableFunctionsMeansPreserving) {
  // S0's only copy function is not extendable, so Ext(ρ) = ∅ and ρ is
  // trivially currency preserving for any query.
  Specification s0 = currency::testing::MakeS0();
  auto q = currency::testing::MakeQ1();
  EXPECT_TRUE(IsCurrencyPreserving(s0, q).value());
}

TEST(EcpTest, AlwaysExtendableWhenConsistent) {
  Specification s1 = MakeS1();
  EXPECT_TRUE(CanExtendToCurrencyPreserving(s1, MakeQ2()).value());

  Specification inconsistent;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(1)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(2)}).ok());
  ASSERT_TRUE(
      inconsistent.AddInstance(TemporalInstance(std::move(r))).ok());
  ASSERT_TRUE(inconsistent
                  .AddConstraintText(
                      "FORALL s, t IN R: s.A > t.A -> t PREC[A] s")
                  .ok());
  ASSERT_TRUE(inconsistent
                  .AddConstraintText(
                      "FORALL s, t IN R: s.A < t.A -> t PREC[A] s")
                  .ok());
  auto q = query::ParseQuery("Q(x) := EXISTS e: R(e, x)").value();
  EXPECT_FALSE(CanExtendToCurrencyPreserving(inconsistent, q).value());
}

TEST(EcpTest, MaximalExtensionIsPreserving) {
  Specification s1 = MakeS1();
  auto maximal = MaximalConsistentExtension(s1);
  ASSERT_TRUE(maximal.ok()) << maximal.status();
  // All 8 atoms are individually and jointly consistent here.
  EXPECT_EQ(maximal->size(), 8u);
  Specification se = ApplyExtension(s1, *maximal).value();
  EXPECT_TRUE(DecideConsistency(se)->consistent);
  // A maximal extension has an empty extension space, hence preserving.
  EXPECT_TRUE(EnumerateExtensionAtoms(se)->empty());
  EXPECT_TRUE(IsCurrencyPreserving(se, MakeQ2()).value());
}

TEST(BcpTest, SingleAtomSufficesOnS1) {
  // The (s'3 → Mary) import alone is currency preserving: BCP true at
  // k = 1 (and any larger k).
  Specification s1 = MakeS1();
  EXPECT_TRUE(
      HasBoundedCurrencyPreservingExtension(s1, MakeQ2(), 1).value());
  EXPECT_TRUE(
      HasBoundedCurrencyPreservingExtension(s1, MakeQ2(), 3).value());
}

TEST(BcpTest, KZeroFailsWhenRhoIsNotPreserving) {
  // k = 0 permits no atoms, and extensions must be non-empty, so BCP is
  // false exactly because ρ itself is not preserving.
  Specification s1 = MakeS1();
  EXPECT_FALSE(
      HasBoundedCurrencyPreservingExtension(s1, MakeQ2(), 0).value());
}

TEST(BcpTest, InconsistentSpecHasNoBoundedExtension) {
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(1)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(2)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(r))).ok());
  ASSERT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: s.A > t.A -> t PREC[A] s")
          .ok());
  ASSERT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: s.A < t.A -> t PREC[A] s")
          .ok());
  auto q = query::ParseQuery("Q(x) := EXISTS e: R(e, x)").value();
  EXPECT_FALSE(HasBoundedCurrencyPreservingExtension(spec, q, 2).value());
}

TEST(PreservationTest, AtomBudgetGuard) {
  Specification s1 = MakeS1();
  PreservationOptions options;
  options.max_atoms = 2;  // 8 atoms exist
  EXPECT_EQ(IsCurrencyPreserving(s1, MakeQ2(), options).status().code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace currency::core
