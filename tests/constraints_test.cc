// Unit tests for src/constraints: denial constraint semantics, grounding,
// and the text parser, using the paper's ϕ1–ϕ4 (Example 2.1).

#include <gtest/gtest.h>

#include "src/constraints/denial_constraint.h"
#include "src/constraints/parser.h"

namespace currency::constraints {
namespace {

Schema EmpSchema() {
  return Schema::Make("Emp", {"FN", "LN", "address", "salary", "status"})
      .value();
}

Relation MakeEmp() {
  Relation emp(EmpSchema());
  auto add = [&](const char* eid, const char* fn, const char* ln,
                 const char* addr, int salary, const char* status) {
    ASSERT_TRUE(emp.AppendValues({Value(eid), Value(fn), Value(ln),
                                  Value(addr), Value(salary), Value(status)})
                    .ok());
  };
  add("Mary", "Mary", "Smith", "2 Small St", 50, "single");    // s1 = 0
  add("Mary", "Mary", "Dupont", "10 Elm Ave", 50, "married");  // s2 = 1
  add("Mary", "Mary", "Dupont", "6 Main St", 80, "married");   // s3 = 2
  add("Bob", "Bob", "Luth", "8 Cowan St", 80, "married");      // s4 = 3
  add("Bob", "Robert", "Luth", "8 Drum St", 55, "married");    // s5 = 4
  return emp;
}

std::vector<PartialOrder> EmptyOrders(const Relation& r) {
  return std::vector<PartialOrder>(r.schema().arity(), PartialOrder(r.size()));
}

TEST(ParserTest, ParsesPhi1) {
  auto dc = ParseConstraint(
      EmpSchema(), "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s");
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_EQ(dc->num_tuple_vars(), 2);
  EXPECT_EQ(dc->compares().size(), 1u);
  EXPECT_TRUE(dc->order_premises().empty());
  EXPECT_EQ(dc->relation_name(), "Emp");
}

TEST(ParserTest, ParsesPhi2WithStringConstants) {
  auto dc = ParseConstraint(EmpSchema(),
                            "FORALL s, t IN Emp: s.status = 'married' AND "
                            "t.status = 'single' -> t PREC[LN] s");
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_EQ(dc->compares().size(), 2u);
}

TEST(ParserTest, ParsesPhi3OrderPremise) {
  auto dc = ParseConstraint(
      EmpSchema(), "FORALL s, t IN Emp: t PREC[salary] s -> t PREC[address] s");
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_EQ(dc->order_premises().size(), 1u);
}

TEST(ParserTest, ParsesPureDenialConclusion) {
  // "→ t ≺_A t" is the paper's idiom for "premises must not hold".
  auto dc = ParseConstraint(EmpSchema(),
                            "FORALL t IN Emp: t.salary > 100 -> t PREC[LN] t");
  ASSERT_TRUE(dc.ok()) << dc.status();
}

TEST(ParserTest, ParsesTruePremise) {
  auto dc = ParseConstraint(EmpSchema(),
                            "FORALL s, t IN Emp: TRUE -> s PREC[LN] t");
  ASSERT_TRUE(dc.ok()) << dc.status();
  EXPECT_TRUE(dc->compares().empty());
}

TEST(ParserTest, RejectsErrors) {
  Schema s = EmpSchema();
  EXPECT_FALSE(ParseConstraint(s, "FORALL s IN Dept: TRUE -> s PREC[LN] s").ok());
  EXPECT_FALSE(ParseConstraint(s, "FORALL s IN Emp: s.bogus = 1 -> s PREC[LN] s").ok());
  EXPECT_FALSE(ParseConstraint(s, "FORALL s IN Emp: q.salary = 1 -> s PREC[LN] s").ok());
  EXPECT_FALSE(ParseConstraint(s, "FORALL s, s IN Emp: TRUE -> s PREC[LN] s").ok());
  EXPECT_FALSE(ParseConstraint(s, "FORALL s IN Emp: TRUE -> s PREC[EID] s").ok());
  EXPECT_FALSE(ParseConstraint(s, "TRUE -> s PREC[LN] s").ok());
  EXPECT_FALSE(ParseConstraint(s, "FORALL s IN Emp: TRUE").ok());
}

TEST(ParserTest, RoundTripToString) {
  Schema schema = EmpSchema();
  auto dc = ParseConstraint(schema,
                            "FORALL s, t IN Emp: s.salary > t.salary AND "
                            "t PREC[salary] s -> t PREC[address] s")
                .value();
  auto dc2 = ParseConstraint(schema, dc.ToString(schema));
  ASSERT_TRUE(dc2.ok()) << dc2.status() << " on " << dc.ToString(schema);
  EXPECT_EQ(dc.ToString(schema), dc2->ToString(schema));
}

TEST(SemanticsTest, Phi1SatisfactionOnCompletedOrder) {
  Relation emp = MakeEmp();
  Schema schema = EmpSchema();
  auto phi1 = ParseConstraint(
                  schema,
                  "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s")
                  .value();
  AttrIndex salary = schema.IndexOf("salary").value();

  auto orders = EmptyOrders(emp);
  // Completion violating ϕ1: s3 (80) before s1 (50) in salary.
  ASSERT_TRUE(orders[salary].Add(2, 0).ok());
  ASSERT_TRUE(orders[salary].Add(0, 1).ok());
  EXPECT_FALSE(phi1.SatisfiedBy(emp, orders));

  // Completion satisfying ϕ1: s1 ≺ s2 ≺ s3 and s5 ≺ s4 in salary.
  auto good = EmptyOrders(emp);
  ASSERT_TRUE(good[salary].Add(0, 1).ok());
  ASSERT_TRUE(good[salary].Add(1, 2).ok());
  ASSERT_TRUE(good[salary].Add(4, 3).ok());
  EXPECT_TRUE(phi1.SatisfiedBy(emp, good));
}

TEST(SemanticsTest, ConstraintsDoNotCrossEntities) {
  Relation emp = MakeEmp();
  Schema schema = EmpSchema();
  // s3 (Mary, 80) vs s5 (Bob, 55): different entities, so ϕ1 imposes
  // nothing even though 80 > 55 and the orders leave them incomparable.
  auto phi1 = ParseConstraint(
                  schema,
                  "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s")
                  .value();
  AttrIndex salary = schema.IndexOf("salary").value();
  auto orders = EmptyOrders(emp);
  ASSERT_TRUE(orders[salary].Add(0, 1).ok());
  ASSERT_TRUE(orders[salary].Add(1, 2).ok());
  ASSERT_TRUE(orders[salary].Add(4, 3).ok());
  EXPECT_TRUE(phi1.SatisfiedBy(emp, orders));
}

TEST(SemanticsTest, OrderPremiseConstraint) {
  Relation emp = MakeEmp();
  Schema schema = EmpSchema();
  auto phi3 = ParseConstraint(
                  schema,
                  "FORALL s, t IN Emp: t PREC[salary] s -> t PREC[address] s")
                  .value();
  AttrIndex salary = schema.IndexOf("salary").value();
  AttrIndex address = schema.IndexOf("address").value();
  auto orders = EmptyOrders(emp);
  ASSERT_TRUE(orders[salary].Add(0, 2).ok());
  EXPECT_FALSE(phi3.SatisfiedBy(emp, orders));  // address missing 0 ≺ 2
  ASSERT_TRUE(orders[address].Add(0, 2).ok());
  EXPECT_TRUE(phi3.SatisfiedBy(emp, orders));
}

TEST(SemanticsTest, PureDenial) {
  Relation emp = MakeEmp();
  Schema schema = EmpSchema();
  // Deny any entity from having two tuples with different LN where the
  // single-status tuple is more LN-current: conclusion t PREC[LN] t.
  auto denial =
      ParseConstraint(schema,
                      "FORALL s, t IN Emp: s.status = 'single' AND "
                      "t.status = 'married' AND t PREC[LN] s -> s PREC[LN] s")
          .value();
  AttrIndex ln = schema.IndexOf("LN").value();
  auto orders = EmptyOrders(emp);
  EXPECT_TRUE(denial.SatisfiedBy(emp, orders));
  // Make married-tuple s2 older than single-tuple s1 in LN: triggers denial.
  ASSERT_TRUE(orders[ln].Add(1, 0).ok());
  EXPECT_FALSE(denial.SatisfiedBy(emp, orders));
}

TEST(GroundingTest, EnumeratesOnlyValueSatisfiedSameEntityInstantiations) {
  Relation emp = MakeEmp();
  Schema schema = EmpSchema();
  auto phi1 = ParseConstraint(
                  schema,
                  "FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s")
                  .value();
  int count = 0;
  AttrIndex salary = schema.IndexOf("salary").value();
  phi1.EnumerateGroundings(emp, [&](const Grounding& g) {
    ++count;
    ASSERT_TRUE(g.conclusion.has_value());
    EXPECT_EQ(g.conclusion->attr, salary);
    EXPECT_TRUE(g.premises.empty());
    // Conclusion orders lower salary before higher within one entity.
    const Tuple& before = emp.tuple(g.conclusion->before);
    const Tuple& after = emp.tuple(g.conclusion->after);
    EXPECT_EQ(before.eid(), after.eid());
    EXPECT_LT(before.at(salary).AsInt(), after.at(salary).AsInt());
  });
  // Mary: s3 above s1 and s2 (2 groundings with s>t; s,t both directions
  // checked but only salary-greater pairs pass).  Bob: s4 above s5 (1).
  EXPECT_EQ(count, 3);
}

TEST(GroundingTest, SkipsReflexivePremises) {
  Relation emp = MakeEmp();
  Schema schema = EmpSchema();
  auto phi3 = ParseConstraint(
                  schema,
                  "FORALL s, t IN Emp: t PREC[salary] s -> t PREC[address] s")
                  .value();
  phi3.EnumerateGroundings(emp, [&](const Grounding& g) {
    // No grounding may contain a premise or conclusion on a single tuple
    // (those are skipped / turned into denials respectively).
    for (const auto& p : g.premises) EXPECT_NE(p.before, p.after);
    ASSERT_TRUE(g.conclusion.has_value());
    EXPECT_NE(g.conclusion->before, g.conclusion->after);
  });
}

TEST(MakeTest, ValidatesIndices) {
  Schema schema = EmpSchema();
  OrderAtom bad_attr{0, 1, 0};  // EID attribute
  EXPECT_FALSE(
      DenialConstraint::Make(schema, 2, {}, {}, bad_attr).ok());
  OrderAtom bad_var{0, 5, 2};
  EXPECT_FALSE(DenialConstraint::Make(schema, 2, {}, {}, bad_var).ok());
  OrderAtom ok_atom{0, 1, 2};
  EXPECT_TRUE(DenialConstraint::Make(schema, 2, {}, {}, ok_atom).ok());
  EXPECT_FALSE(DenialConstraint::Make(schema, 0, {}, {}, ok_atom).ok());
}

}  // namespace
}  // namespace currency::constraints
