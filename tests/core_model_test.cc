// Tests for the core data model: TemporalInstance, Specification,
// Completion / LST extraction (Examples 2.3, 2.4) and the encoder's
// faithfulness (models ⇔ consistent completions, vs the brute force).

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/completion.h"
#include "src/core/encoder.h"
#include "src/core/specification.h"
#include "tests/fixtures.h"

namespace currency::core {
namespace {

using currency::testing::MakeDeptRelation;
using currency::testing::MakeEmpRelation;
using currency::testing::MakeRandomSpec;
using currency::testing::MakeRho;
using currency::testing::MakeS0;

TEST(TemporalInstanceTest, AddOrderValidation) {
  TemporalInstance emp(MakeEmpRelation());
  EXPECT_TRUE(emp.AddOrderByName("salary", 0, 2).ok());
  // EID attribute has no currency order.
  EXPECT_FALSE(emp.AddOrder(0, 0, 1).ok());
  // Cross-entity orders are rejected (s3 is Mary, s4 is Bob).
  EXPECT_FALSE(emp.AddOrderByName("salary", 2, 3).ok());
  // Unknown attribute.
  EXPECT_FALSE(emp.AddOrderByName("bogus", 0, 1).ok());
  // Out-of-range tuple.
  EXPECT_FALSE(emp.AddOrderByName("salary", 0, 99).ok());
  // Cycle.
  EXPECT_FALSE(emp.AddOrderByName("salary", 2, 0).ok());
}

TEST(TemporalInstanceTest, AppendTupleGrowsOrders) {
  TemporalInstance emp(MakeEmpRelation());
  ASSERT_TRUE(emp.AddOrderByName("salary", 0, 1).ok());
  auto id = emp.AppendTuple(Tuple({Value("Mary"), Value("Mary"),
                                   Value("Test"), Value("x"), Value(99),
                                   Value("married")}));
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(id.value(), 5);
  EXPECT_EQ(emp.order(4).size(), 6);
  EXPECT_TRUE(emp.order(4).Less(0, 1));  // existing pair preserved
  EXPECT_TRUE(emp.AddOrderByName("salary", 1, 5).ok());
}

TEST(TemporalInstanceTest, NumEntityPairs) {
  TemporalInstance emp(MakeEmpRelation());
  // Mary has 3 tuples (3 pairs); Bob and Robert are singletons.
  EXPECT_EQ(emp.NumEntityPairs(), 3);
}

TEST(SpecificationTest, BuildS0) {
  Specification s0 = MakeS0();
  EXPECT_EQ(s0.num_instances(), 2);
  EXPECT_TRUE(s0.HasDenialConstraints());
  EXPECT_EQ(s0.copy_edges().size(), 1u);
  EXPECT_EQ(s0.InstanceIndex("Emp").value(), 0);
  EXPECT_EQ(s0.InstanceIndex("Dept").value(), 1);
  EXPECT_FALSE(s0.InstanceIndex("Nope").ok());
  EXPECT_EQ(s0.constraints_for(0).size(), 4u);  // ϕ1, ϕ2, ϕ2b, ϕ3
  EXPECT_EQ(s0.constraints_for(1).size(), 1u);  // ϕ4
  EXPECT_EQ(s0.TotalTuples(), 9);
}

TEST(SpecificationTest, RejectsDuplicatesAndDanglers) {
  Specification spec;
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(MakeEmpRelation())).ok());
  EXPECT_FALSE(spec.AddInstance(TemporalInstance(MakeEmpRelation())).ok());
  // Constraint over a relation not in the spec.
  EXPECT_FALSE(
      spec.AddConstraintText("FORALL s IN Dept: TRUE -> s PREC[budget] s")
          .ok());
  // Copy function whose source is missing.
  EXPECT_FALSE(spec.AddCopyFunction(MakeRho()).ok());
}

TEST(SpecificationTest, AppendCopiedTupleRequiresFullCoverage) {
  Specification s0 = MakeS0();
  // ρ covers only mgrAddr, so it is not extendable (Section 4).
  EXPECT_EQ(s0.AppendCopiedTuple(0, 0, Value("RnD")).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CompletionTest, Example23CompletionIsConsistent) {
  Specification s0 = MakeS0();
  // Dc0 of Example 2.3: s1 ≺ s2 ≺ s3 on all Emp attributes;
  // t1 ≺ t2 ≺ t4 ≺ t3 on all Dept attributes.
  Completion c;
  c.orders.resize(2);
  c.orders[0].assign(6, PartialOrder(5));
  c.orders[1].assign(5, PartialOrder(4));
  for (AttrIndex a = 1; a <= 5; ++a) {
    ASSERT_TRUE(c.orders[0][a].Add(0, 1).ok());
    ASSERT_TRUE(c.orders[0][a].Add(1, 2).ok());
  }
  for (AttrIndex a = 1; a <= 4; ++a) {
    ASSERT_TRUE(c.orders[1][a].Add(0, 1).ok());
    ASSERT_TRUE(c.orders[1][a].Add(1, 3).ok());
    ASSERT_TRUE(c.orders[1][a].Add(3, 2).ok());
  }
  ASSERT_TRUE(IsConsistentCompletion(s0, c).value());

  // Example 2.4: LST(Emp) = {s3, s4, s5}; LST(Dept) = {t3}.
  Relation lst_emp = CurrentInstance(s0, c, 0).value();
  ASSERT_EQ(lst_emp.size(), 3);
  // Entities are emitted in Value order: Bob, Mary, Robert.
  EXPECT_EQ(lst_emp.tuple(0), MakeEmpRelation().tuple(3));
  EXPECT_EQ(lst_emp.tuple(1), MakeEmpRelation().tuple(2));
  EXPECT_EQ(lst_emp.tuple(2), MakeEmpRelation().tuple(4));
  Relation lst_dept = CurrentInstance(s0, c, 1).value();
  ASSERT_EQ(lst_dept.size(), 1);
  EXPECT_EQ(lst_dept.tuple(0), MakeDeptRelation().tuple(2));
}

TEST(CompletionTest, ViolationsAreDetected) {
  Specification s0 = MakeS0();
  // Reverse salary order on Mary (s3 ≺ s1) violates ϕ1.
  Completion c;
  c.orders.resize(2);
  c.orders[0].assign(6, PartialOrder(5));
  c.orders[1].assign(5, PartialOrder(4));
  for (AttrIndex a = 1; a <= 5; ++a) {
    ASSERT_TRUE(c.orders[0][a].Add(2, 1).ok());
    ASSERT_TRUE(c.orders[0][a].Add(1, 0).ok());
  }
  for (AttrIndex a = 1; a <= 4; ++a) {
    ASSERT_TRUE(c.orders[1][a].Add(0, 1).ok());
    ASSERT_TRUE(c.orders[1][a].Add(1, 3).ok());
    ASSERT_TRUE(c.orders[1][a].Add(3, 2).ok());
  }
  EXPECT_FALSE(IsConsistentCompletion(s0, c).value());

  // Partial orders (not total on a group) are not completions.
  Completion partial;
  partial.orders.resize(2);
  partial.orders[0].assign(6, PartialOrder(5));
  partial.orders[1].assign(5, PartialOrder(4));
  EXPECT_FALSE(IsConsistentCompletion(s0, partial).value());
}

TEST(CompletionTest, Example24SecondPartMixedCurrentTuple) {
  // When s4 and s5 refer to the same person, with s4 ≺ s5 on FN, LN,
  // address, status but s5 ≺ s4 on salary, the current tuple mixes both:
  // (Robert, Luth, 8 Drum St, 80k, married).
  Schema schema = currency::testing::EmpSchema();
  Relation emp(schema);
  ASSERT_TRUE(emp.AppendValues({Value("Bob"), Value("Bob"), Value("Luth"),
                                Value("8 Cowan St"), Value(80),
                                Value("married")})
                  .ok());
  ASSERT_TRUE(emp.AppendValues({Value("Bob"), Value("Robert"), Value("Luth"),
                                Value("8 Drum St"), Value(55),
                                Value("married")})
                  .ok());
  Specification spec;
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(emp))).ok());
  Completion c;
  c.orders.resize(1);
  c.orders[0].assign(6, PartialOrder(2));
  for (AttrIndex a : {1, 2, 3, 5}) ASSERT_TRUE(c.orders[0][a].Add(0, 1).ok());
  ASSERT_TRUE(c.orders[0][4].Add(1, 0).ok());
  Relation lst = CurrentInstance(spec, c, 0).value();
  ASSERT_EQ(lst.size(), 1);
  EXPECT_EQ(lst.tuple(0),
            Tuple({Value("Bob"), Value("Robert"), Value("Luth"),
                   Value("8 Drum St"), Value(80), Value("married")}));
}

// Encoder faithfulness: the number of projected current instances and the
// SAT/UNSAT answer must match the brute-force enumeration on random specs.
class EncoderFaithfulness : public ::testing::TestWithParam<int> {};

TEST_P(EncoderFaithfulness, SatAgreesWithBruteForceExistence) {
  for (int variant = 0; variant < 4; ++variant) {
    Specification spec =
        MakeRandomSpec(GetParam() * 17 + variant, variant & 1, variant & 2);
    auto encoder = Encoder::Build(spec);
    ASSERT_TRUE(encoder.ok()) << encoder.status();
    bool sat = (*encoder)->solver().Solve() == sat::SolveResult::kSat;
    bool oracle = BruteForceConsistent(spec).value();
    EXPECT_EQ(sat, oracle) << "variant " << variant;
    if (sat) {
      // The extracted completion must itself be consistent.
      Completion witness = (*encoder)->ExtractCompletion();
      EXPECT_TRUE(IsConsistentCompletion(spec, witness).value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, EncoderFaithfulness, ::testing::Range(0, 25));

}  // namespace
}  // namespace currency::core
