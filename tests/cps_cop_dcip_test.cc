// Tests for the three reasoning problems of Section 3 — CPS (consistency),
// COP (certain ordering), DCIP (deterministic current instance) — on the
// paper's examples and against the brute-force oracle, including the
// PTIME special cases of Theorem 6.1.

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/certain_order.h"
#include "src/core/chase.h"
#include "src/core/consistency.h"
#include "src/core/deterministic.h"
#include "tests/fixtures.h"

namespace currency::core {
namespace {

using currency::testing::MakeRandomSpec;
using currency::testing::MakeS0;

AttrIndex EmpAttr(const Specification& spec, const char* name) {
  return spec.instance(0).schema().IndexOf(name).value();
}

TEST(CpsTest, S0IsConsistent) {
  Specification s0 = MakeS0();
  auto outcome = DecideConsistency(s0);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_TRUE(outcome->consistent);
  EXPECT_FALSE(outcome->used_ptime_path);  // S0 has denial constraints
}

TEST(CpsTest, WitnessIsAConsistentCompletion) {
  Specification s0 = MakeS0();
  CpsOptions options;
  options.want_witness = true;
  auto outcome = DecideConsistency(s0, options);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->witness.has_value());
  EXPECT_TRUE(IsConsistentCompletion(s0, *outcome->witness).value());
}

TEST(CpsTest, Example23CopyInteractionInconsistency) {
  // Example 2.3 (second part): a source D1 holding Dept-shaped tuples with
  // s'3 ≺_budget s'1, copied into t1 and t3, contradicts ϕ1/ϕ3/ϕ4 + ρ,
  // which force t1 ≺_budget t3.
  Specification s0 = MakeS0();
  Schema d1_schema =
      Schema::Make("D1", {"mgrFN", "mgrLN", "mgrAddr", "budget"}, "dname")
          .value();
  Relation d1(d1_schema);
  ASSERT_TRUE(d1.AppendValues({Value("RnD"), Value("Mary"), Value("Smith"),
                               Value("2 Small St"), Value(6500)})
                  .ok());  // s'1 = t1's values
  ASSERT_TRUE(d1.AppendValues({Value("RnD"), Value("Mary"), Value("Dupont"),
                               Value("6 Main St"), Value(6000)})
                  .ok());  // s'3 = t3's values
  TemporalInstance d1_inst(std::move(d1));
  ASSERT_TRUE(d1_inst.AddOrderByName("budget", 1, 0).ok());  // s'3 ≺ s'1
  ASSERT_TRUE(s0.AddInstance(std::move(d1_inst)).ok());
  copy::CopySignature sig;
  sig.target_relation = "Dept";
  sig.target_attrs = {"budget"};
  sig.source_relation = "D1";
  sig.source_attrs = {"budget"};
  copy::CopyFunction rho1(sig);
  ASSERT_TRUE(rho1.Map(0, 0).ok());  // t1 ⇐ s'1
  ASSERT_TRUE(rho1.Map(2, 1).ok());  // t3 ⇐ s'3
  ASSERT_TRUE(s0.AddCopyFunction(std::move(rho1)).ok());

  auto outcome = DecideConsistency(s0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->consistent);
  // The oracle agrees.
  EXPECT_FALSE(BruteForceConsistent(s0).value());
}

TEST(CpsTest, ContradictoryConstraintsAreInconsistent) {
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(1)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(2)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(r))).ok());
  // A > forces 0 ≺ 1, A < forces 1 ≺ 0.
  ASSERT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: s.A > t.A -> t PREC[A] s")
          .ok());
  ASSERT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: s.A < t.A -> t PREC[A] s")
          .ok());
  EXPECT_FALSE(DecideConsistency(spec)->consistent);
}

TEST(CpsTest, PtimePathOnCopyChains) {
  // Chain R2 ⇐ R with an initial source order and no constraints: the
  // chase decides consistency in PTIME (Theorem 6.1).
  Specification spec = MakeRandomSpec(7, /*with_copy=*/true,
                                      /*with_constraints=*/false);
  auto outcome = DecideConsistency(spec);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->used_ptime_path);
  EXPECT_EQ(outcome->consistent, BruteForceConsistent(spec).value());
}

TEST(ChaseTest, PropagatesBothDirections) {
  // R2[C] ⇐ R[A]: source order propagates to target, target to source.
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(1)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(2)}).ok());
  TemporalInstance rinst(std::move(r));
  ASSERT_TRUE(rinst.AddOrderByName("A", 0, 1).ok());
  ASSERT_TRUE(spec.AddInstance(std::move(rinst)).ok());
  Schema r2s = Schema::Make("R2", {"C", "D"}).value();
  Relation r2(r2s);
  ASSERT_TRUE(r2.AppendValues({Value("f"), Value(1), Value(9)}).ok());
  ASSERT_TRUE(r2.AppendValues({Value("f"), Value(2), Value(8)}).ok());
  TemporalInstance r2inst(std::move(r2));
  ASSERT_TRUE(r2inst.AddOrderByName("D", 1, 0).ok());  // independent attr
  ASSERT_TRUE(spec.AddInstance(std::move(r2inst)).ok());
  copy::CopySignature sig;
  sig.target_relation = "R2";
  sig.target_attrs = {"C"};
  sig.source_relation = "R";
  sig.source_attrs = {"A"};
  copy::CopyFunction fn(sig);
  ASSERT_TRUE(fn.Map(0, 0).ok());
  ASSERT_TRUE(fn.Map(1, 1).ok());
  ASSERT_TRUE(spec.AddCopyFunction(std::move(fn)).ok());

  auto chase = ChaseCopyOrders(spec);
  ASSERT_TRUE(chase.ok());
  EXPECT_TRUE(chase->consistent);
  AttrIndex c_attr = spec.instance(1).schema().IndexOf("C").value();
  EXPECT_TRUE(chase->certain_orders[1][c_attr].Less(0, 1));  // inherited
  AttrIndex d_attr = spec.instance(1).schema().IndexOf("D").value();
  EXPECT_TRUE(chase->certain_orders[1][d_attr].Less(1, 0));  // untouched
  EXPECT_FALSE(chase->certain_orders[1][d_attr].Less(0, 1));
}

TEST(ChaseTest, DetectsCopyCycleInconsistency) {
  // Target initially ordered against the source order: inconsistent.
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(1)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(2)}).ok());
  TemporalInstance rinst(std::move(r));
  ASSERT_TRUE(rinst.AddOrderByName("A", 0, 1).ok());
  ASSERT_TRUE(spec.AddInstance(std::move(rinst)).ok());
  Schema r2s = Schema::Make("R2", {"C"}).value();
  Relation r2(r2s);
  ASSERT_TRUE(r2.AppendValues({Value("f"), Value(1)}).ok());
  ASSERT_TRUE(r2.AppendValues({Value("f"), Value(2)}).ok());
  TemporalInstance r2inst(std::move(r2));
  ASSERT_TRUE(r2inst.AddOrderByName("C", 1, 0).ok());  // against the source
  ASSERT_TRUE(spec.AddInstance(std::move(r2inst)).ok());
  copy::CopySignature sig;
  sig.target_relation = "R2";
  sig.target_attrs = {"C"};
  sig.source_relation = "R";
  sig.source_attrs = {"A"};
  copy::CopyFunction fn(sig);
  ASSERT_TRUE(fn.Map(0, 0).ok());
  ASSERT_TRUE(fn.Map(1, 1).ok());
  ASSERT_TRUE(spec.AddCopyFunction(std::move(fn)).ok());

  auto chase = ChaseCopyOrders(spec);
  ASSERT_TRUE(chase.ok());
  EXPECT_FALSE(chase->consistent);
  EXPECT_FALSE(DecideConsistency(spec)->consistent);
  EXPECT_FALSE(BruteForceConsistent(spec).value());
}

TEST(CopTest, Example32CertainSalaryOrder) {
  Specification s0 = MakeS0();
  // s1 ≺_salary s3 is certain (forced by ϕ1).
  CurrencyOrderQuery q;
  q.relation = "Emp";
  q.pairs = {{EmpAttr(s0, "salary"), 0, 2}};
  EXPECT_TRUE(IsCertainOrder(s0, q).value());
  EXPECT_TRUE(BruteForceCertainOrder(s0, q).value());

  // t3 ≺_mgrFN t4 is NOT certain (Example 3.2's O't).
  CurrencyOrderQuery q2;
  q2.relation = "Dept";
  AttrIndex mgr_fn = s0.instance(1).schema().IndexOf("mgrFN").value();
  q2.pairs = {{mgr_fn, 2, 3}};
  EXPECT_FALSE(IsCertainOrder(s0, q2).value());
  EXPECT_FALSE(BruteForceCertainOrder(s0, q2).value());
}

TEST(CopTest, CopiedOrderIsCertain) {
  Specification s0 = MakeS0();
  // ϕ1+ϕ3 force s1 ≺_address s3 in Emp; ρ transfers it to Dept:
  // t1 ≺_mgrAddr t3 and t2 ≺_mgrAddr t3 are certain; with ϕ4 also
  // t1 ≺_budget t3.
  AttrIndex mgr_addr = s0.instance(1).schema().IndexOf("mgrAddr").value();
  AttrIndex budget = s0.instance(1).schema().IndexOf("budget").value();
  CurrencyOrderQuery q;
  q.relation = "Dept";
  q.pairs = {{mgr_addr, 0, 2}, {mgr_addr, 1, 2}, {budget, 0, 2}};
  EXPECT_TRUE(IsCertainOrder(s0, q).value());
  EXPECT_TRUE(BruteForceCertainOrder(s0, q).value());
}

TEST(CopTest, DegeneratePairs) {
  Specification s0 = MakeS0();
  // Reflexive pair: never in a strict order.
  CurrencyOrderQuery reflexive;
  reflexive.relation = "Emp";
  reflexive.pairs = {{EmpAttr(s0, "salary"), 0, 0}};
  EXPECT_FALSE(IsCertainOrder(s0, reflexive).value());
  // Cross-entity pair (s3 Mary vs s4 Bob): never comparable.
  CurrencyOrderQuery cross;
  cross.relation = "Emp";
  cross.pairs = {{EmpAttr(s0, "salary"), 2, 3}};
  EXPECT_FALSE(IsCertainOrder(s0, cross).value());
  // Empty order: vacuously certain.
  CurrencyOrderQuery empty;
  empty.relation = "Emp";
  EXPECT_TRUE(IsCertainOrder(s0, empty).value());
}

TEST(CopTest, VacuouslyTrueOnInconsistentSpec) {
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(1)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(2)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(r))).ok());
  ASSERT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: s.A > t.A -> t PREC[A] s")
          .ok());
  ASSERT_TRUE(
      spec.AddConstraintText("FORALL s, t IN R: s.A < t.A -> t PREC[A] s")
          .ok());
  CurrencyOrderQuery q;
  q.relation = "R";
  q.pairs = {{1, 0, 0}};  // even a reflexive pair is vacuously certain
  EXPECT_TRUE(IsCertainOrder(spec, q).value());
}

TEST(DcipTest, Example33EmpIsDeterministic) {
  Specification s0 = MakeS0();
  EXPECT_TRUE(IsDeterministicForRelation(s0, "Emp").value());
  EXPECT_TRUE(BruteForceDeterministic(s0, "Emp").value());
}

TEST(DcipTest, DeptIsNotDeterministic) {
  // t3 and t4 can each be most current in mgrFN (Mary vs Ed).
  Specification s0 = MakeS0();
  EXPECT_FALSE(IsDeterministicForRelation(s0, "Dept").value());
  EXPECT_FALSE(BruteForceDeterministic(s0, "Dept").value());
  EXPECT_FALSE(IsDeterministic(s0).value());
}

TEST(DcipTest, SingletonGroupsAreDeterministic) {
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e1"), Value(1)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e2"), Value(2)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(r))).ok());
  EXPECT_TRUE(IsDeterministicForRelation(spec, "R").value());
}

TEST(DcipTest, EqualValuesKeepDeterminism) {
  // Two orderings exist but both tuples carry the same A value, so the
  // current instance never changes.
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(7)}).ok());
  ASSERT_TRUE(r.AppendValues({Value("e"), Value(7)}).ok());
  ASSERT_TRUE(spec.AddInstance(TemporalInstance(std::move(r))).ok());
  EXPECT_TRUE(IsDeterministicForRelation(spec, "R").value());
  EXPECT_TRUE(BruteForceDeterministic(spec, "R").value());
}

TEST(DcipTest, BaselinesSnapshottedBeforeAssumptionSolves) {
  // Regression guard for the baseline-read protocol of DeterministicViaSat:
  // group e1 is deterministic (its alternative probes come back UNSAT),
  // group e2 is not.  The e2 baseline used to be read from the solver's
  // model AFTER e1's failed assumption solves, silently relying on UNSAT
  // calls preserving the model; baselines are now snapshotted before any
  // probe, so this answers correctly even with a solver that clears its
  // model on UNSAT.  Monolithic mode keeps both groups in one encoder,
  // which is the arrangement that exercised the stale-model read.
  Specification spec;
  Schema rs = Schema::Make("R", {"A"}).value();
  Relation r(rs);
  ASSERT_TRUE(r.AppendValues({Value("e1"), Value(1)}).ok());  // 0
  ASSERT_TRUE(r.AppendValues({Value("e1"), Value(2)}).ok());  // 1
  ASSERT_TRUE(r.AppendValues({Value("e2"), Value(1)}).ok());  // 2
  ASSERT_TRUE(r.AppendValues({Value("e2"), Value(2)}).ok());  // 3
  TemporalInstance inst(std::move(r));
  ASSERT_TRUE(inst.AddOrder(1, 0, 1).ok());  // e1 pinned: 1 ≺ 2
  ASSERT_TRUE(spec.AddInstance(std::move(inst)).ok());

  for (bool decomposed : {false, true}) {
    DcipOptions options;
    options.use_ptime_path_without_constraints = false;  // force SAT path
    options.use_decomposition = decomposed;
    SCOPED_TRACE(decomposed ? "decomposed" : "monolithic");
    auto det = IsDeterministicForRelation(spec, "R", options);
    ASSERT_TRUE(det.ok()) << det.status();
    EXPECT_FALSE(*det);  // e2 is free in both directions
    EXPECT_FALSE(BruteForceDeterministic(spec, "R").value());
  }
}

// Property sweep: solver answers equal the brute-force oracle on random
// specifications, with and without copy functions / constraints, for all
// three problems.
class SolversVsOracle : public ::testing::TestWithParam<int> {};

TEST_P(SolversVsOracle, CpsCopDcipAgree) {
  for (int variant = 0; variant < 4; ++variant) {
    Specification spec =
        MakeRandomSpec(GetParam() * 101 + variant, variant & 1, variant & 2);
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) +
                 " variant=" + std::to_string(variant));
    // CPS.
    EXPECT_EQ(DecideConsistency(spec)->consistent,
              BruteForceConsistent(spec).value());
    // COP on a handful of pairs.
    CurrencyOrderQuery q;
    q.relation = "R";
    q.pairs = {{1, 0, 1}};
    EXPECT_EQ(IsCertainOrder(spec, q).value(),
              BruteForceCertainOrder(spec, q).value());
    q.pairs = {{2, 1, 0}};
    EXPECT_EQ(IsCertainOrder(spec, q).value(),
              BruteForceCertainOrder(spec, q).value());
    // DCIP.
    EXPECT_EQ(IsDeterministicForRelation(spec, "R").value(),
              BruteForceDeterministic(spec, "R").value());
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SolversVsOracle, ::testing::Range(0, 40));

}  // namespace
}  // namespace currency::core
