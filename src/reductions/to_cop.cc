#include "src/reductions/to_cop.h"

namespace currency::reductions {

Result<CopGadget> Sat3ToCopDcip(const sat::Qbf& qbf) {
  RETURN_IF_ERROR(ValidateShape(qbf, {true}, /*matrix_is_cnf=*/true));

  ASSIGN_OR_RETURN(Schema schema, Schema::Make("RC", {"C", "L", "S", "V"}));
  Relation rel(schema);
  const Value eid("e");
  const Value hash("#");
  for (size_t j = 0; j < qbf.terms.size(); ++j) {
    const auto& clause = qbf.terms[j];
    for (size_t i = 0; i < clause.size(); ++i) {
      sat::Lit lit = clause[i];
      RETURN_IF_ERROR(
          rel.AppendValues(
                 {eid, Value(static_cast<int64_t>(j)),
                  Value(static_cast<int64_t>(i + 1)),
                  Value(sat::LitIsNeg(lit) ? "-" : "+"),
                  Value("x" + std::to_string(sat::LitVar(lit)))})
              .status());
    }
    // Pad clauses with fewer than three literals by repeating the last
    // one at the remaining positions (harmless: same polarity/variable).
    for (size_t i = clause.size(); i < 3; ++i) {
      sat::Lit lit = clause.back();
      RETURN_IF_ERROR(
          rel.AppendValues(
                 {eid, Value(static_cast<int64_t>(j)),
                  Value(static_cast<int64_t>(i + 1)),
                  Value(sat::LitIsNeg(lit) ? "-" : "+"),
                  Value("x" + std::to_string(sat::LitVar(lit)))})
              .status());
    }
  }
  const TupleId hash_id = rel.size();
  RETURN_IF_ERROR(rel.AppendValues({eid, hash, hash, hash, hash}).status());
  const int num_rows = rel.size();

  CopGadget gadget;
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rel))));
  // (a) C-currency propagates to L, S and V.
  for (const char* attr : {"L", "S", "V"}) {
    RETURN_IF_ERROR(gadget.spec.AddConstraintText(
        std::string("FORALL t1, t2 IN RC: t1 PREC[C] t2 -> t1 PREC[") + attr +
        "] t2"));
  }
  // (b) if any row beats t#, no clause may be fully below t#.
  RETURN_IF_ERROR(gadget.spec.AddConstraintText(
      "FORALL t, u1, u2, u3, s IN RC: s.C = '#' AND s PREC[C] t AND "
      "u1.C = u2.C AND u2.C = u3.C AND u1.C != '#' AND "
      "u1.L = 1 AND u2.L = 2 AND u3.L = 3 AND "
      "u1 PREC[C] s AND u2 PREC[C] s AND u3 PREC[C] s -> t PREC[C] t"));
  // (c) both polarities of a variable may not sit above t#.
  RETURN_IF_ERROR(gadget.spec.AddConstraintText(
      "FORALL t1, t2, s IN RC: s.C = '#' AND s PREC[C] t1 AND "
      "s PREC[C] t2 AND t1.V = t2.V AND t1.S != t2.S -> t1 PREC[C] t1"));

  // Ot: t# above every other row, in all four attributes.
  gadget.order.relation = "RC";
  for (AttrIndex a = 1; a <= 4; ++a) {
    for (TupleId t = 0; t < num_rows; ++t) {
      if (t == hash_id) continue;
      gadget.order.pairs.push_back({a, t, hash_id});
    }
  }
  return gadget;
}

}  // namespace currency::reductions
