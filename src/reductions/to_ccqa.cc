#include "src/reductions/to_ccqa.h"

#include <string>

#include "src/query/parser.h"
#include "src/reductions/gates.h"

namespace currency::reductions {

namespace {

using query::Formula;
using query::FormulaPtr;
using query::Term;

}  // namespace

Result<CcqaGadget> PiP2ToCcqa(const sat::Qbf& qbf) {
  RETURN_IF_ERROR(ValidateShape(qbf, {false, true}, /*matrix_is_cnf=*/true));
  const std::vector<sat::Var>& xs = qbf.prefix[0].vars;
  const std::vector<sat::Var>& ys = qbf.prefix[1].vars;

  CcqaGadget gadget;
  // R_X: one entity per ∀ variable, carrying both Boolean values.
  ASSIGN_OR_RETURN(Schema sx, Schema::Make("RX", {"Ax"}));
  Relation rx(sx);
  for (size_t i = 0; i < xs.size(); ++i) {
    Value eid("x" + std::to_string(i));
    RETURN_IF_ERROR(rx.AppendValues({eid, Value(1)}).status());
    RETURN_IF_ERROR(rx.AppendValues({eid, Value(0)}).status());
  }
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rx))));
  RETURN_IF_ERROR(AddGateRelations(&gadget.spec));
  // R_b: the certain-answer flag.
  ASSIGN_OR_RETURN(Schema sb, Schema::Make("Rb", {"A"}));
  Relation rb(sb);
  RETURN_IF_ERROR(rb.AppendValues({Value("b"), Value(1)}).status());
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rb))));

  // Query: Q(w) := ∃ ... QX ∧ QY ∧ Qψ ∧ Rb(e, w).
  std::vector<FormulaPtr> atoms;
  GateCompiler gates(&atoms);
  std::vector<Term> value_of(qbf.num_vars);
  for (size_t i = 0; i < xs.size(); ++i) {
    Term v = gates.Fresh("xv");
    value_of[xs[i]] = v;
    atoms.push_back(Formula::Atom(
        "RX", {Term::Const(Value("x" + std::to_string(i))), v}));
  }
  for (sat::Var y : ys) {
    Term v = gates.Fresh("yv");
    value_of[y] = v;
    atoms.push_back(Formula::Atom("R01", {gates.Fresh("e"), v}));
  }
  Term psi = gates.Matrix(qbf, value_of);
  // Rb(e, w) with w = value of ψ, so the answer is {(1)} iff ψ holds.
  atoms.push_back(Formula::Atom("Rb", {gates.Fresh("e"), psi}));

  gadget.query.name = "Q";
  gadget.query.head = {psi.var};
  std::vector<std::string> bound;
  for (const std::string& v : gates.exist_vars()) {
    if (v != psi.var) bound.push_back(v);
  }
  gadget.query.body = Formula::Exists(std::move(bound),
                                      Formula::And(std::move(atoms)));
  gadget.candidate = Tuple({Value(1)});
  return gadget;
}

Result<CcqaGadget> Q3SatToCcqaFo(const sat::Qbf& qbf) {
  if (qbf.prefix.empty() || !qbf.matrix_is_cnf) {
    return Status::InvalidArgument("Q3SAT reduction expects a prenex CNF");
  }
  CcqaGadget gadget;
  // R_c: the Boolean domain as two rigid singleton entities.
  ASSIGN_OR_RETURN(Schema sc, Schema::Make("Rc", {"C"}));
  Relation rc(sc);
  RETURN_IF_ERROR(rc.AppendValues({Value(1), Value(0)}).status());
  RETURN_IF_ERROR(rc.AppendValues({Value(2), Value(1)}).status());
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rc))));
  ASSIGN_OR_RETURN(Schema sb, Schema::Make("Rb", {"B"}));
  Relation rb(sb);
  RETURN_IF_ERROR(rb.AppendValues({Value(1), Value(1)}).status());
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rb))));

  // Matrix as FO over 0/1-valued variables.
  auto var_name = [](sat::Var v) { return "x" + std::to_string(v); };
  std::vector<FormulaPtr> clause_formulas;
  for (const auto& clause : qbf.terms) {
    std::vector<FormulaPtr> lits;
    for (sat::Lit lit : clause) {
      lits.push_back(Formula::Compare(
          CmpOp::kEq, Term::Var(var_name(sat::LitVar(lit))),
          Term::Const(Value(sat::LitIsNeg(lit) ? 0 : 1))));
    }
    clause_formulas.push_back(lits.size() == 1 ? lits[0]
                                               : Formula::Or(std::move(lits)));
  }
  FormulaPtr body = clause_formulas.size() == 1
                        ? clause_formulas[0]
                        : Formula::And(std::move(clause_formulas));
  // Wrap the prefix inside-out, relativizing each variable to the Boolean
  // domain: ∃x → ∃x (bool(x) ∧ φ); ∀x → ∀x (¬bool(x) ∨ φ);
  // bool(x) := ∃e Rc(e, x).
  auto boolean = [&](const std::string& x) {
    return Formula::Exists(
        {"e_" + x}, Formula::Atom("Rc", {Term::Var("e_" + x), Term::Var(x)}));
  };
  for (auto block = qbf.prefix.rbegin(); block != qbf.prefix.rend(); ++block) {
    for (auto v = block->vars.rbegin(); v != block->vars.rend(); ++v) {
      std::string x = var_name(*v);
      if (block->exists) {
        body = Formula::Exists({x}, Formula::And({boolean(x), body}));
      } else {
        body = Formula::Forall(
            {x}, Formula::Or({Formula::Not(boolean(x)), body}));
      }
    }
  }
  // Conjoin the head binding: Rb(eb, w).
  FormulaPtr head_atom = Formula::Exists(
      {"eb"}, Formula::Atom("Rb", {Term::Var("eb"), Term::Var("w")}));
  gadget.query.name = "Q";
  gadget.query.head = {"w"};
  gadget.query.body = Formula::And({body, head_atom});
  gadget.candidate = Tuple({Value(1)});
  return gadget;
}

Result<CcqaGadget> Sat3ToCcqaData(const sat::Qbf& qbf) {
  RETURN_IF_ERROR(ValidateShape(qbf, {true}, /*matrix_is_cnf=*/true));
  for (const auto& clause : qbf.terms) {
    if (clause.size() != 3) {
      return Status::InvalidArgument(
          "the fixed-query reduction expects exactly 3 literals per clause");
    }
  }
  CcqaGadget gadget;
  // R_X: entities x_i with both truth values.
  ASSIGN_OR_RETURN(Schema sx, Schema::Make("RX", {"Ax"}, "EIDx"));
  Relation rx(sx);
  for (sat::Var v = 0; v < qbf.num_vars; ++v) {
    Value eid("x" + std::to_string(v));
    RETURN_IF_ERROR(rx.AppendValues({eid, Value(0)}).status());
    RETURN_IF_ERROR(rx.AppendValues({eid, Value(1)}).status());
  }
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rx))));
  // R¬ψ: per clause and literal position, the falsifying value.
  ASSIGN_OR_RETURN(Schema sn,
                   Schema::Make("Rnpsi", {"idC", "Px", "EIDx", "Bx", "w"}));
  Relation rn(sn);
  int uid = 0;
  for (size_t j = 0; j < qbf.terms.size(); ++j) {
    for (size_t i = 0; i < 3; ++i) {
      sat::Lit lit = qbf.terms[j][i];
      RETURN_IF_ERROR(
          rn.AppendValues({Value("n" + std::to_string(uid++)),
                           Value(static_cast<int64_t>(j)),
                           Value(static_cast<int64_t>(i + 1)),
                           Value("x" + std::to_string(sat::LitVar(lit))),
                           Value(sat::LitIsNeg(lit) ? 1 : 0), Value(1)})
              .status());
    }
  }
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rn))));

  // The FIXED query: some clause has all three literals falsified by the
  // current assignment.
  auto parsed = query::ParseQuery(
      "Q(w) := EXISTS j, x1, x2, x3, v1, v2, v3, e1, e2, e3: "
      "RX(x1, v1) AND RX(x2, v2) AND RX(x3, v3) AND "
      "Rnpsi(e1, j, 1, x1, v1, w) AND Rnpsi(e2, j, 2, x2, v2, w) AND "
      "Rnpsi(e3, j, 3, x3, v3, w)");
  RETURN_IF_ERROR(parsed.status());
  gadget.query = std::move(parsed).value();
  gadget.candidate = Tuple({Value(1)});
  return gadget;
}

}  // namespace currency::reductions
