#include "src/reductions/to_cps.h"

#include <string>

#include "src/constraints/parser.h"

namespace currency::reductions {

namespace {

using constraints::ComparePredicate;
using constraints::DenialConstraint;
using constraints::Operand;
using constraints::OrderAtom;

}  // namespace

Result<core::Specification> SigmaP2ToCps(const sat::Qbf& qbf) {
  RETURN_IF_ERROR(ValidateShape(qbf, {true, false}, /*matrix_is_cnf=*/false));
  const std::vector<sat::Var>& xs = qbf.prefix[0].vars;
  const std::vector<sat::Var>& ys = qbf.prefix[1].vars;
  const int m = static_cast<int>(xs.size());
  const int n = static_cast<int>(ys.size());
  const int r = static_cast<int>(qbf.terms.size());

  // Position of each QBF variable: X index or Y index.
  std::vector<int> x_index(qbf.num_vars, -1), y_index(qbf.num_vars, -1);
  for (int i = 0; i < m; ++i) x_index[xs[i]] = i;
  for (int j = 0; j < n; ++j) y_index[ys[j]] = j;

  ASSIGN_OR_RETURN(Schema schema,
                   Schema::Make("RV", {"V", "v", "A1", "A2", "A3", "B"}));
  Relation rel(schema);
  const Value eid("e");
  const Value hash("#");
  // I_X: per X variable, tuples (x_i, 1) and (x_i, 0); ids 2i, 2i+1.
  for (int i = 0; i < m; ++i) {
    Value name("x" + std::to_string(i));
    RETURN_IF_ERROR(
        rel.AppendValues({eid, name, Value(1), hash, hash, hash, hash})
            .status());
    RETURN_IF_ERROR(
        rel.AppendValues({eid, name, Value(0), hash, hash, hash, hash})
            .status());
  }
  // I_Y: per Y variable, tuples (y_j, 1) and (y_j, 0); ids 2m+2j, 2m+2j+1.
  for (int j = 0; j < n; ++j) {
    Value name("y" + std::to_string(j));
    RETURN_IF_ERROR(
        rel.AppendValues({eid, name, Value(1), hash, hash, hash, hash})
            .status());
    RETURN_IF_ERROR(
        rel.AppendValues({eid, name, Value(0), hash, hash, hash, hash})
            .status());
  }
  // I_∨: the 8 disjunction rows; ids 2m+2n .. 2m+2n+7.
  const int or_base = 2 * m + 2 * n;
  for (int bits = 0; bits < 8; ++bits) {
    int a1 = bits & 1, a2 = (bits >> 1) & 1, a3 = (bits >> 2) & 1;
    RETURN_IF_ERROR(rel.AppendValues({eid, hash, hash, Value(a1), Value(a2),
                                      Value(a3),
                                      Value((a1 | a2 | a3) ? 1 : 0)})
                        .status());
  }

  core::TemporalInstance inst(std::move(rel));
  ASSIGN_OR_RETURN(AttrIndex attr_v_cap, schema.IndexOf("V"));
  ASSIGN_OR_RETURN(AttrIndex attr_v, schema.IndexOf("v"));
  // Initial currency order ≺_V (the proof's items (a)-(d)):
  auto var_tuples = [&](int index) {
    return std::array<TupleId, 2>{2 * index, 2 * index + 1};
  };
  // (a) x_i tuples below x_j tuples for i < j; (b) same for Y;
  // (c) all X tuples below all Y tuples; (d) I_∨ rows below all X/Y rows.
  for (int i = 0; i < m + n; ++i) {
    for (int j = i + 1; j < m + n; ++j) {
      for (TupleId u : var_tuples(i)) {
        for (TupleId v : var_tuples(j)) {
          RETURN_IF_ERROR(inst.AddOrder(attr_v_cap, u, v));
        }
      }
    }
  }
  for (int g = 0; g < 8; ++g) {
    for (int i = 0; i < 2 * (m + n); ++i) {
      RETURN_IF_ERROR(inst.AddOrder(attr_v_cap, or_base + g, i));
    }
  }

  // The denial constraint φ.  Tuple variables: t_i = 2i, t'_i = 2i+1 for
  // i < m; s_j = 2m + j; c_l = 2m + n + l.
  const int num_vars = 2 * m + n + r;
  auto tv = [&](int i) { return 2 * i; };
  auto tpv = [&](int i) { return 2 * i + 1; };
  auto sv = [&](int j) { return 2 * m + j; };
  auto cv = [&](int l) { return 2 * m + n + l; };
  std::vector<ComparePredicate> compares;
  std::vector<OrderAtom> premises;
  ASSIGN_OR_RETURN(AttrIndex attr_b, schema.IndexOf("B"));
  std::array<AttrIndex, 3> attr_a;
  for (int p = 0; p < 3; ++p) {
    ASSIGN_OR_RETURN(attr_a[p],
                     schema.IndexOf("A" + std::to_string(p + 1)));
  }
  // ξ_i: t_i[V] = t'_i[V] = "x_i" and t'_i ≺_v t_i.
  for (int i = 0; i < m; ++i) {
    Value name("x" + std::to_string(i));
    compares.push_back({CmpOp::kEq, Operand::Attr(tv(i), attr_v_cap),
                        Operand::Const(name)});
    compares.push_back({CmpOp::kEq, Operand::Attr(tpv(i), attr_v_cap),
                        Operand::Const(name)});
    premises.push_back(OrderAtom{tpv(i), tv(i), attr_v});
  }
  // χ_j: s_j[V] = "y_j".
  for (int j = 0; j < n; ++j) {
    compares.push_back({CmpOp::kEq, Operand::Attr(sv(j), attr_v_cap),
                        Operand::Const(Value("y" + std::to_string(j)))});
  }
  // ω_l: c_l[B] = 1 plus, per literal, c_l[A_p] (≠ | =) the truth value of
  // the literal's variable.
  for (int l = 0; l < r; ++l) {
    compares.push_back({CmpOp::kEq, Operand::Attr(cv(l), attr_b),
                        Operand::Const(Value(1))});
    const auto& cube = qbf.terms[l];
    for (size_t p = 0; p < cube.size(); ++p) {
      sat::Lit lit = cube[p];
      sat::Var var = sat::LitVar(lit);
      Operand truth = x_index[var] >= 0
                          ? Operand::Attr(tv(x_index[var]), attr_v)
                          : Operand::Attr(sv(y_index[var]), attr_v);
      if (x_index[var] < 0 && y_index[var] < 0) {
        return Status::InvalidArgument("matrix variable not quantified");
      }
      // Positive literal x: c_l[A_p] ≠ val(x); negative: c_l[A_p] = val(x).
      compares.push_back(
          {sat::LitIsNeg(lit) ? CmpOp::kEq : CmpOp::kNe,
           Operand::Attr(cv(l), attr_a[p]), truth});
    }
  }
  OrderAtom conclusion{tv(0), tv(0), attr_v_cap};  // t1 ≺_V t1: pure denial
  ASSIGN_OR_RETURN(DenialConstraint phi,
                   DenialConstraint::Make(schema, num_vars,
                                          std::move(compares),
                                          std::move(premises), conclusion));
  core::Specification spec;
  RETURN_IF_ERROR(spec.AddInstance(std::move(inst)));
  RETURN_IF_ERROR(spec.AddConstraint(std::move(phi)));
  return spec;
}

Result<core::Specification> BetweennessToCps(const BetweennessInstance& inst) {
  ASSIGN_OR_RETURN(Schema schema, Schema::Make("RB", {"TID", "A", "P", "O"}));
  Relation rel(schema);
  const Value eid("e");
  const Value hash("#");
  for (size_t t = 0; t < inst.triples.size(); ++t) {
    const auto& [a, b, c] = inst.triples[t];
    Value tid(static_cast<int64_t>(t));
    // Ascending reading a < b < c (O = 1) ...
    RETURN_IF_ERROR(
        rel.AppendValues({eid, tid, Value(a), Value(1), Value(1)}).status());
    RETURN_IF_ERROR(
        rel.AppendValues({eid, tid, Value(b), Value(2), Value(1)}).status());
    RETURN_IF_ERROR(
        rel.AppendValues({eid, tid, Value(c), Value(3), Value(1)}).status());
    // ... and descending reading c < b < a (O = 2).
    RETURN_IF_ERROR(
        rel.AppendValues({eid, tid, Value(a), Value(3), Value(2)}).status());
    RETURN_IF_ERROR(
        rel.AppendValues({eid, tid, Value(b), Value(2), Value(2)}).status());
    RETURN_IF_ERROR(
        rel.AppendValues({eid, tid, Value(c), Value(1), Value(2)}).status());
  }
  // Separator t#.
  RETURN_IF_ERROR(rel.AppendValues({eid, hash, hash, hash, hash}).status());

  core::Specification spec;
  RETURN_IF_ERROR(
      spec.AddInstance(core::TemporalInstance(std::move(rel))));
  // σ1: a triple-reading may not straddle the separator.
  RETURN_IF_ERROR(spec.AddConstraintText(
      "FORALL t1, t2, s IN RB: t1.TID = t2.TID AND t1.O = t2.O AND "
      "s.A = '#' AND t1 PREC[A] s AND s PREC[A] t2 -> t1 PREC[A] t1"));
  // σ2/σ3: the two readings of one triple may not sit on the same side.
  RETURN_IF_ERROR(spec.AddConstraintText(
      "FORALL t1, t2, s IN RB: t1.TID = t2.TID AND t1.O != t2.O AND "
      "t1.TID != '#' AND s.A = '#' AND s PREC[A] t1 AND s PREC[A] t2 "
      "-> t1 PREC[A] t1"));
  RETURN_IF_ERROR(spec.AddConstraintText(
      "FORALL t1, t2, s IN RB: t1.TID = t2.TID AND t1.O != t2.O AND "
      "t1.TID != '#' AND s.A = '#' AND t1 PREC[A] s AND t2 PREC[A] s "
      "-> t1 PREC[A] t1"));
  // σ4: above the separator, a reading's rows appear in position order.
  RETURN_IF_ERROR(spec.AddConstraintText(
      "FORALL t1, t2, s IN RB: t1.TID = t2.TID AND t1.O = t2.O AND "
      "t1.P < t2.P AND s.A = '#' AND s PREC[A] t1 AND s PREC[A] t2 "
      "-> t1 PREC[A] t2"));
  // σ5: above the separator, equal elements form consecutive blocks (no
  // foreign row strictly between two rows of one element).
  RETURN_IF_ERROR(spec.AddConstraintText(
      "FORALL u, w, z, s IN RB: u.A = w.A AND u.A != z.A AND z.A != '#' AND "
      "s.A = '#' AND s PREC[A] u AND s PREC[A] w AND s PREC[A] z AND "
      "u PREC[A] z AND z PREC[A] w -> u PREC[A] u"));
  return spec;
}

}  // namespace currency::reductions
