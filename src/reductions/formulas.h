// Source problems of the paper's lower-bound reductions: quantified
// Boolean formulas (via src/sat/qbf.h) and the Betweenness problem
// (Theorem 3.1's data-complexity reduction), with brute-force oracles
// used to cross-validate every reduction.

#ifndef CURRENCY_SRC_REDUCTIONS_FORMULAS_H_
#define CURRENCY_SRC_REDUCTIONS_FORMULAS_H_

#include <array>
#include <random>
#include <vector>

#include "src/common/result.h"
#include "src/sat/qbf.h"

namespace currency::reductions {

/// An instance of the Betweenness problem (Garey & Johnson): does a
/// bijection π of {0..n-1} exist such that every triple (a, b, c) has b
/// strictly between a and c (in either direction)?
struct BetweennessInstance {
  int num_elements = 0;
  std::vector<std::array<int, 3>> triples;
};

/// Brute-force Betweenness oracle (permutation filter; n ≤ 10 or so).
Result<bool> SolveBetweennessBruteForce(const BetweennessInstance& inst,
                                        int max_elements = 10);

/// Random Betweenness instance with distinct elements per triple.
BetweennessInstance RandomBetweenness(int num_elements, int num_triples,
                                      std::mt19937* rng);

/// Validates that `qbf` has the prefix shape required by a reduction:
/// exactly `block_shape.size()` blocks, alternating as given (true = ∃),
/// and a matrix of the given kind with terms of ≤ 3 literals.
Status ValidateShape(const sat::Qbf& qbf, const std::vector<bool>& block_shape,
                     bool matrix_is_cnf);

}  // namespace currency::reductions

#endif  // CURRENCY_SRC_REDUCTIONS_FORMULAS_H_
