#include "src/reductions/gates.h"

namespace currency::reductions {

using query::Formula;
using query::Term;

Status AddGateRelations(core::Specification* spec) {
  int eid = 0;
  auto fresh = [&]() { return Value("g" + std::to_string(eid++)); };
  ASSIGN_OR_RETURN(Schema s01, Schema::Make("R01", {"A"}));
  Relation r01(s01);
  RETURN_IF_ERROR(r01.AppendValues({fresh(), Value(1)}).status());
  RETURN_IF_ERROR(r01.AppendValues({fresh(), Value(0)}).status());
  RETURN_IF_ERROR(spec->AddInstance(core::TemporalInstance(std::move(r01))));

  ASSIGN_OR_RETURN(Schema sor, Schema::Make("ROr", {"A", "A1", "A2"}));
  Relation ror(sor);
  for (int a1 = 0; a1 < 2; ++a1) {
    for (int a2 = 0; a2 < 2; ++a2) {
      RETURN_IF_ERROR(
          ror.AppendValues({fresh(), Value(a1 | a2), Value(a1), Value(a2)})
              .status());
    }
  }
  RETURN_IF_ERROR(spec->AddInstance(core::TemporalInstance(std::move(ror))));

  ASSIGN_OR_RETURN(Schema sand, Schema::Make("RAnd", {"A", "A1", "A2"}));
  Relation rand(sand);
  for (int a1 = 0; a1 < 2; ++a1) {
    for (int a2 = 0; a2 < 2; ++a2) {
      RETURN_IF_ERROR(
          rand.AppendValues({fresh(), Value(a1 & a2), Value(a1), Value(a2)})
              .status());
    }
  }
  RETURN_IF_ERROR(spec->AddInstance(core::TemporalInstance(std::move(rand))));

  ASSIGN_OR_RETURN(Schema snot, Schema::Make("RNot", {"A", "NA"}));
  Relation rnot(snot);
  RETURN_IF_ERROR(rnot.AppendValues({fresh(), Value(0), Value(1)}).status());
  RETURN_IF_ERROR(rnot.AppendValues({fresh(), Value(1), Value(0)}).status());
  RETURN_IF_ERROR(spec->AddInstance(core::TemporalInstance(std::move(rnot))));
  return Status::OK();
}

Status AddCaRelation(core::Specification* spec, bool one_maps_to_c) {
  ASSIGN_OR_RETURN(Schema sca, Schema::Make("Rca", {"A1", "A2"}));
  Relation rca(sca);
  RETURN_IF_ERROR(
      rca.AppendValues({Value("ca0"), Value(0),
                        Value(one_maps_to_c ? "a" : "c")})
          .status());
  RETURN_IF_ERROR(
      rca.AppendValues({Value("ca1"), Value(1),
                        Value(one_maps_to_c ? "c" : "a")})
          .status());
  return spec->AddInstance(core::TemporalInstance(std::move(rca)));
}

Term GateCompiler::LiteralValue(sat::Lit lit,
                                const std::vector<Term>& var_terms) {
  Term in = var_terms[sat::LitVar(lit)];
  if (!sat::LitIsNeg(lit)) return in;
  Term out = Fresh("neg");
  atoms_->push_back(Formula::Atom("RNot", {Fresh("e"), in, out}));
  return out;
}

Term GateCompiler::Binary(const std::string& gate, const Term& a,
                          const Term& b) {
  Term out = Fresh("val");
  atoms_->push_back(Formula::Atom(gate, {Fresh("e"), out, a, b}));
  return out;
}

Term GateCompiler::Fold(const std::string& gate,
                        const std::vector<Term>& terms) {
  Term acc = terms[0];
  for (size_t i = 1; i < terms.size(); ++i) acc = Binary(gate, acc, terms[i]);
  return acc;
}

Term GateCompiler::Matrix(const sat::Qbf& qbf,
                          const std::vector<Term>& var_terms) {
  const std::string inner = qbf.matrix_is_cnf ? "ROr" : "RAnd";
  const std::string outer = qbf.matrix_is_cnf ? "RAnd" : "ROr";
  std::vector<Term> term_vals;
  for (const auto& term : qbf.terms) {
    std::vector<Term> lit_vals;
    for (sat::Lit lit : term) {
      lit_vals.push_back(LiteralValue(lit, var_terms));
    }
    term_vals.push_back(Fold(inner, lit_vals));
  }
  return Fold(outer, term_vals);
}

Term GateCompiler::Fresh(const std::string& prefix) {
  std::string name = prefix + "_" + std::to_string(counter_++);
  exist_vars_.push_back(name);
  return Term::Var(name);
}

}  // namespace currency::reductions
