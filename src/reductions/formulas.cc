#include "src/reductions/formulas.h"

#include <algorithm>
#include <numeric>

namespace currency::reductions {

Result<bool> SolveBetweennessBruteForce(const BetweennessInstance& inst,
                                        int max_elements) {
  if (inst.num_elements > max_elements) {
    return Status::ResourceExhausted("Betweenness oracle limited to " +
                                     std::to_string(max_elements) +
                                     " elements");
  }
  std::vector<int> pos(inst.num_elements);
  std::iota(pos.begin(), pos.end(), 0);
  do {
    bool ok = true;
    for (const auto& [a, b, c] : inst.triples) {
      bool asc = pos[a] < pos[b] && pos[b] < pos[c];
      bool desc = pos[c] < pos[b] && pos[b] < pos[a];
      if (!asc && !desc) {
        ok = false;
        break;
      }
    }
    if (ok) return true;
  } while (std::next_permutation(pos.begin(), pos.end()));
  return false;
}

BetweennessInstance RandomBetweenness(int num_elements, int num_triples,
                                      std::mt19937* rng) {
  BetweennessInstance inst;
  inst.num_elements = num_elements;
  std::uniform_int_distribution<int> dist(0, num_elements - 1);
  for (int t = 0; t < num_triples; ++t) {
    int a = dist(*rng), b = dist(*rng), c = dist(*rng);
    while (b == a) b = dist(*rng);
    while (c == a || c == b) c = dist(*rng);
    inst.triples.push_back({a, b, c});
  }
  return inst;
}

Status ValidateShape(const sat::Qbf& qbf, const std::vector<bool>& block_shape,
                     bool matrix_is_cnf) {
  if (qbf.prefix.size() != block_shape.size()) {
    return Status::InvalidArgument("reduction expects " +
                                   std::to_string(block_shape.size()) +
                                   " quantifier blocks");
  }
  for (size_t i = 0; i < block_shape.size(); ++i) {
    if (qbf.prefix[i].exists != block_shape[i]) {
      return Status::InvalidArgument("quantifier block " + std::to_string(i) +
                                     " has the wrong kind");
    }
    if (qbf.prefix[i].vars.empty()) {
      return Status::InvalidArgument("empty quantifier block");
    }
  }
  if (qbf.matrix_is_cnf != matrix_is_cnf) {
    return Status::InvalidArgument(matrix_is_cnf
                                       ? "reduction expects a CNF matrix"
                                       : "reduction expects a DNF matrix");
  }
  if (qbf.terms.empty()) {
    return Status::InvalidArgument("empty matrix");
  }
  for (const auto& term : qbf.terms) {
    if (term.empty() || term.size() > 3) {
      return Status::InvalidArgument("matrix terms must have 1..3 literals");
    }
    for (sat::Lit l : term) {
      if (sat::LitVar(l) < 0 || sat::LitVar(l) >= qbf.num_vars) {
        return Status::InvalidArgument("literal out of range");
      }
    }
  }
  return Status::OK();
}

}  // namespace currency::reductions
