// Lower bound for BCP (Theorem 5.3, Fig. 6): ∃W∀X∃Y∀Z ψ (3DNF) →
// (specification, query, budget k) such that
//
//     the QBF is true  ⟺  some extension of cost ≤ k = |W| is currency
//                          preserving for Q.
//
// Structure (following the proof):
//   * R_W holds one ⊥-row per W variable; affordable cost-1 imports from
//     R'_W assign it 0 or 1 (fixed constraints forbid both at once and
//     keep ⊥ least current).
//   * R_X / R'_X pin µ_X through adversarial (CPP-side) extensions as in
//     Fig. 5; R_Y entities realize ∀-completions of µ_Y ... wait: the ∃Y
//     of the prefix is realized by query-side Cartesian products and ∀Z by
//     completions?  No — see the mapping table in the file body: X is the
//     adversary's extension, Y ranges over completions, Z over the query's
//     R01 joins, and the Rca converter flips ψ to ¬ψ so that "answer
//     non-empty" means "ψ falsifiable at this (µW, µX, µY)".
//   * the paper prices ρ_X / ρ_b extensions out of the budget with
//     (k+1)-bit constants; we attach cost k+1 to those atoms directly
//     (PreservationOptions::atom_cost), a faithful re-expression of the
//     same bit-size accounting.

#ifndef CURRENCY_SRC_REDUCTIONS_TO_BCP_H_
#define CURRENCY_SRC_REDUCTIONS_TO_BCP_H_

#include "src/common/result.h"
#include "src/core/preservation.h"
#include "src/core/specification.h"
#include "src/query/ast.h"
#include "src/reductions/formulas.h"

namespace currency::reductions {

/// A BCP instance: specification, query, budget and required options.
struct BcpGadget {
  core::Specification spec;
  query::Query query;
  int k = 0;
  core::PreservationOptions options;
};

/// ∃W∀X∃Y∀Z ψ (3DNF; prefix [∃,∀,∃,∀]) → gadget with:
/// QBF true ⟺ HasBoundedCurrencyPreservingExtension(spec, query, k).
Result<BcpGadget> SigmaP4ToBcp(const sat::Qbf& qbf);

}  // namespace currency::reductions

#endif  // CURRENCY_SRC_REDUCTIONS_TO_BCP_H_
