// Boolean-gate gadgets shared by the CCQA/CPP/BCP reductions (Fig. 2 and
// Fig. 4 of the paper): rigid relations encoding the Boolean domain
// (R01), disjunction (ROr), conjunction (RAnd), negation (RNot) and the
// 0↦'c' / 1↦'a' converter (Rca), plus a small compiler that emits CQ
// atoms evaluating a 3CNF/3DNF matrix over value-carrying terms.

#ifndef CURRENCY_SRC_REDUCTIONS_GATES_H_
#define CURRENCY_SRC_REDUCTIONS_GATES_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/specification.h"
#include "src/query/ast.h"
#include "src/sat/qbf.h"

namespace currency::reductions {

/// Adds R01, ROr, RAnd, RNot to `spec` (singleton entities: their current
/// instances are rigid).
Status AddGateRelations(core::Specification* spec);

/// Adds the truth-value converter Rca to `spec` (used by the CPP/BCP
/// gadgets to turn a gate output into a joinable constant).  With
/// `one_maps_to_c` false — the Fig. 6 / BCP polarity — Rca = {(0,'c'),
/// (1,'a')} so 'c' flags a FALSIFIED matrix; with true — the Fig. 4 / CPP
/// combined-complexity polarity (the paper's I_ac) — Rca = {(0,'a'),
/// (1,'c')} so 'c' flags a SATISFIED matrix.
Status AddCaRelation(core::Specification* spec, bool one_maps_to_c = false);

/// Emits CQ atoms that evaluate formulas gate-by-gate; every intermediate
/// value gets a fresh existential variable.
class GateCompiler {
 public:
  explicit GateCompiler(std::vector<query::FormulaPtr>* atoms)
      : atoms_(atoms) {}

  /// Value of `lit` given per-variable value terms (negation via RNot).
  query::Term LiteralValue(sat::Lit lit,
                           const std::vector<query::Term>& var_terms);

  /// Emits gate(out, a, b); returns out.  `gate` is "ROr" or "RAnd".
  query::Term Binary(const std::string& gate, const query::Term& a,
                     const query::Term& b);

  /// Folds terms with a binary gate (requires at least one term).
  query::Term Fold(const std::string& gate,
                   const std::vector<query::Term>& terms);

  /// Evaluates the whole matrix of `qbf` (CNF: AND of ORs; DNF: OR of
  /// ANDs) into one value term.
  query::Term Matrix(const sat::Qbf& qbf,
                     const std::vector<query::Term>& var_terms);

  /// Fresh existential variable (recorded in exist_vars()).
  query::Term Fresh(const std::string& prefix);

  /// Existential variables created so far.
  const std::vector<std::string>& exist_vars() const { return exist_vars_; }

 private:
  std::vector<query::FormulaPtr>* atoms_;
  std::vector<std::string> exist_vars_;
  int counter_ = 0;
};

}  // namespace currency::reductions

#endif  // CURRENCY_SRC_REDUCTIONS_GATES_H_
