// The two lower-bound reductions to CPS of Theorem 3.1.
//
// * SigmaP2ToCps: ∃∗∀∗3DNF → CPS (combined complexity, Σp2-hardness).
//   Builds the single-relation specification R_V(EID, V, v, A1, A2, A3, B)
//   of the proof — tuple pairs encoding truth values of X and Y variables,
//   an 8-row disjunction gadget I_∨, an initial chain order on attribute V
//   and ONE denial constraint φ with 2m+n+r tuple variables.  The formula
//   is true iff Mod(S) ≠ ∅.
//
// * BetweennessToCps: Betweenness → CPS (data complexity, NP-hardness).
//   Fixed schema R(EID, TID, A, P, O), six rows per triple plus the
//   separator row t#, and the five FIXED denial constraints σ1–σ5 (the
//   paper sketches σ2–σ5; they are written out concretely here).  The
//   instance is solvable iff Mod(S) ≠ ∅.

#ifndef CURRENCY_SRC_REDUCTIONS_TO_CPS_H_
#define CURRENCY_SRC_REDUCTIONS_TO_CPS_H_

#include "src/common/result.h"
#include "src/core/specification.h"
#include "src/reductions/formulas.h"

namespace currency::reductions {

/// ∃X∀Y ψ with ψ in 3DNF (prefix blocks [∃, ∀], DNF matrix) → S such that
/// ψ's QBF is true iff Mod(S) ≠ ∅.
Result<core::Specification> SigmaP2ToCps(const sat::Qbf& qbf);

/// Betweenness instance → S (fixed schema, fixed constraints) such that
/// the instance is solvable iff Mod(S) ≠ ∅.
Result<core::Specification> BetweennessToCps(const BetweennessInstance& inst);

}  // namespace currency::reductions

#endif  // CURRENCY_SRC_REDUCTIONS_TO_CPS_H_
