// Data-complexity lower bound for CPP (Theorem 5.1(3), Fig. 5):
// ∀∗∃∗3CNF → (specification with empty copy functions ρ1, ρ2, fixed
// Boolean query) such that
//
//     ∀X∃Y ψ is true  ⟺  ρ is currency preserving for Q.
//
// Extensions of ρ1 pin truth values of X variables by mapping the
// existing R_XY rows to rows of the ordered source R'_X; extensions of
// ρ2 pin Rb's current value to 'c'.  The fixed query detects a falsified
// clause (via the R_C encoding of ¬Cj) combined with a current 'c' — so
// the certain answer flips from ∅ to {()} exactly when an adversarial
// extension can freeze a µ_X that defeats every µ_Y.

#ifndef CURRENCY_SRC_REDUCTIONS_TO_CPP_H_
#define CURRENCY_SRC_REDUCTIONS_TO_CPP_H_

#include "src/common/result.h"
#include "src/core/preservation.h"
#include "src/core/specification.h"
#include "src/query/ast.h"
#include "src/reductions/formulas.h"

namespace currency::reductions {

/// A CPP instance: specification, query, and the solver options the
/// gadget requires (duplicate-import exclusion mirroring the paper's
/// "two tuples per entity" constraints, and a widened atom budget).
struct CppGadget {
  core::Specification spec;
  query::Query query;
  core::PreservationOptions options;
};

/// ∀X∃Y ψ (3CNF; prefix [∀, ∃]) → gadget with: QBF true ⟺ ρ preserving.
Result<CppGadget> PiP2ToCppData(const sat::Qbf& qbf);

/// Combined-complexity lower bound (Theorem 5.1(1), Fig. 4):
/// ∃X∀Y∃Z ψ (3CNF; prefix [∃, ∀, ∃]) → gadget with
///
///     QBF true  ⟺  ρ is NOT currency preserving for Q.
///
/// Structure: µ_X is pinned by adversarial extensions of ρ1 (the ordered
/// I'_X source entities of Fig. 4), µ_Y ranges over completions of R_Y,
/// µ_Z over the query's R01 Cartesian products; the Boolean gates compute
/// ψ and I_ac converts value 1 to 'c' (so "answer non-empty" means "ψ
/// satisfiable at this (µX, µY)"), gated by the Rb/R'b 'c'/'d' flag pair.
Result<CppGadget> PiP3ToCpp(const sat::Qbf& qbf);

}  // namespace currency::reductions

#endif  // CURRENCY_SRC_REDUCTIONS_TO_CPP_H_
