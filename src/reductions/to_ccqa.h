// The three lower-bound reductions to CCQA of Theorem 3.5.
//
// * PiP2ToCcqa (Fig. 2): ∀∗∃∗3CNF → CCQA(CQ), Πp2-hardness of the combined
//   complexity.  Entities of R_X carry both truth values of each X
//   variable (completions choose µ_X); the query generates µ_Y by joining
//   the Boolean gadget R_01 and evaluates ψ with the ∨/∧/¬ gate relations.
// * Q3SatToCcqaFo: Q3SAT → CCQA(FO), PSPACE-hardness.  The specification
//   is rigid (singleton entities); the full quantifier alternation lives
//   in the FO query.  Quantifiers are relativized to the Boolean domain
//   through R_c (the paper's sketch leaves the relativization implicit).
// * Sat3ToCcqaData: 3SAT → CCQA, coNP-hardness of the data complexity
//   with a FIXED query: ψ is unsatisfiable iff (1) is a certain answer.

#ifndef CURRENCY_SRC_REDUCTIONS_TO_CCQA_H_
#define CURRENCY_SRC_REDUCTIONS_TO_CCQA_H_

#include "src/common/result.h"
#include "src/core/specification.h"
#include "src/query/ast.h"
#include "src/reductions/formulas.h"

namespace currency::reductions {

/// A CCQA instance: specification, query, candidate tuple.
struct CcqaGadget {
  core::Specification spec;
  query::Query query;
  Tuple candidate;
};

/// ∀X∃Y ψ (3CNF) → gadget with:  QBF true ⟺ candidate certain.
Result<CcqaGadget> PiP2ToCcqa(const sat::Qbf& qbf);

/// Arbitrary prenex 3CNF QBF → FO gadget: QBF true ⟺ candidate certain.
Result<CcqaGadget> Q3SatToCcqaFo(const sat::Qbf& qbf);

/// ψ (3CNF, exact 3-literal clauses) → gadget with a fixed query:
/// ψ unsatisfiable ⟺ candidate certain.
Result<CcqaGadget> Sat3ToCcqaData(const sat::Qbf& qbf);

}  // namespace currency::reductions

#endif  // CURRENCY_SRC_REDUCTIONS_TO_CCQA_H_
