#include "src/reductions/to_cpp.h"

#include <array>
#include <string>

#include "src/query/parser.h"
#include "src/reductions/gates.h"

namespace currency::reductions {

namespace {

using query::Formula;
using query::FormulaPtr;
using query::Term;

}  // namespace

Result<CppGadget> PiP2ToCppData(const sat::Qbf& qbf) {
  RETURN_IF_ERROR(ValidateShape(qbf, {false, true}, /*matrix_is_cnf=*/true));
  const std::vector<sat::Var>& xs = qbf.prefix[0].vars;
  const std::vector<sat::Var>& ys = qbf.prefix[1].vars;
  std::vector<int> x_index(qbf.num_vars, -1);
  for (size_t i = 0; i < xs.size(); ++i) x_index[xs[i]] = static_cast<int>(i);

  CppGadget gadget;
  auto var_name = [](sat::Var v) { return "z" + std::to_string(v); };

  // R_XY: one entity per variable, both truth values.
  ASSIGN_OR_RETURN(Schema sxy, Schema::Make("RXY", {"X", "V"}));
  Relation rxy(sxy);
  for (sat::Var v : xs) {
    Value eid("ex" + std::to_string(v));
    RETURN_IF_ERROR(
        rxy.AppendValues({eid, Value(var_name(v)), Value(0)}).status());
    RETURN_IF_ERROR(
        rxy.AppendValues({eid, Value(var_name(v)), Value(1)}).status());
  }
  for (sat::Var v : ys) {
    Value eid("ey" + std::to_string(v));
    RETURN_IF_ERROR(
        rxy.AppendValues({eid, Value(var_name(v)), Value(0)}).status());
    RETURN_IF_ERROR(
        rxy.AppendValues({eid, Value(var_name(v)), Value(1)}).status());
  }
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rxy))));

  // R'_X: per X variable, a "positive" source entity ordered 0 ≺ 1 and a
  // "negative" one ordered 1 ≺ 0.
  ASSIGN_OR_RETURN(Schema spx, Schema::Make("RpX", {"X", "V"}));
  Relation rpx(spx);
  std::vector<std::array<TupleId, 4>> x_rows;  // p0, p1, n0, n1 per X var
  for (sat::Var v : xs) {
    std::array<TupleId, 4> rows;
    Value pos("p" + std::to_string(v));
    Value neg("n" + std::to_string(v));
    ASSIGN_OR_RETURN(
        rows[0], rpx.AppendValues({pos, Value(var_name(v)), Value(0)}));
    ASSIGN_OR_RETURN(
        rows[1], rpx.AppendValues({pos, Value(var_name(v)), Value(1)}));
    ASSIGN_OR_RETURN(
        rows[2], rpx.AppendValues({neg, Value(var_name(v)), Value(0)}));
    ASSIGN_OR_RETURN(
        rows[3], rpx.AppendValues({neg, Value(var_name(v)), Value(1)}));
    x_rows.push_back(rows);
  }
  core::TemporalInstance rpx_inst(std::move(rpx));
  ASSIGN_OR_RETURN(AttrIndex v_attr, spx.IndexOf("V"));
  for (const auto& rows : x_rows) {
    RETURN_IF_ERROR(rpx_inst.AddOrder(v_attr, rows[0], rows[1]));  // 0 ≺ 1
    RETURN_IF_ERROR(rpx_inst.AddOrder(v_attr, rows[3], rows[2]));  // 1 ≺ 0
  }
  RETURN_IF_ERROR(gadget.spec.AddInstance(std::move(rpx_inst)));

  // R_C: the falsifying-assignment rows of each (3-padded) clause.
  ASSIGN_OR_RETURN(Schema sc,
                   Schema::Make("RC", {"CID", "POS", "Z", "V", "C"}));
  Relation rc(sc);
  int uid = 0;
  for (size_t j = 0; j < qbf.terms.size(); ++j) {
    std::vector<sat::Lit> clause = qbf.terms[j];
    while (clause.size() < 3) clause.push_back(clause.back());
    for (size_t i = 0; i < 3; ++i) {
      sat::Lit lit = clause[i];
      RETURN_IF_ERROR(
          rc.AppendValues({Value("c" + std::to_string(uid++)),
                           Value(static_cast<int64_t>(j)),
                           Value(static_cast<int64_t>(i + 1)),
                           Value(var_name(sat::LitVar(lit))),
                           Value(sat::LitIsNeg(lit) ? 1 : 0), Value("c")})
              .status());
    }
  }
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rc))));

  // R_b and R'_b: the 'c'/'d' flag, with the source ordered d ≺ c.
  ASSIGN_OR_RETURN(Schema sb, Schema::Make("Rb", {"C"}));
  Relation rb(sb);
  RETURN_IF_ERROR(rb.AppendValues({Value("b"), Value("c")}).status());
  RETURN_IF_ERROR(rb.AppendValues({Value("b"), Value("d")}).status());
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rb))));
  ASSIGN_OR_RETURN(Schema spb, Schema::Make("RpB", {"C"}));
  Relation rpb(spb);
  ASSIGN_OR_RETURN(TupleId u1, rpb.AppendValues({Value("b"), Value("c")}));
  ASSIGN_OR_RETURN(TupleId u2, rpb.AppendValues({Value("b"), Value("d")}));
  core::TemporalInstance rpb_inst(std::move(rpb));
  ASSIGN_OR_RETURN(AttrIndex c_attr, spb.IndexOf("C"));
  RETURN_IF_ERROR(rpb_inst.AddOrder(c_attr, u2, u1));  // d ≺ c
  RETURN_IF_ERROR(gadget.spec.AddInstance(std::move(rpb_inst)));

  // Fixed constraint: an R_XY entity holds rows of a single variable
  // (the paper's "two possible tuples per entity" device).
  RETURN_IF_ERROR(gadget.spec.AddConstraintText(
      "FORALL t1, t2 IN RXY: t1.X != t2.X -> t1 PREC[X] t1"));

  // Empty copy functions ρ1, ρ2.
  copy::CopySignature sig1;
  sig1.target_relation = "RXY";
  sig1.target_attrs = {"X", "V"};
  sig1.source_relation = "RpX";
  sig1.source_attrs = {"X", "V"};
  RETURN_IF_ERROR(gadget.spec.AddCopyFunction(copy::CopyFunction(sig1)));
  copy::CopySignature sig2;
  sig2.target_relation = "Rb";
  sig2.target_attrs = {"C"};
  sig2.source_relation = "RpB";
  sig2.source_attrs = {"C"};
  RETURN_IF_ERROR(gadget.spec.AddCopyFunction(copy::CopyFunction(sig2)));

  // The FIXED Boolean query: some clause falsified, with 'c' current.
  auto parsed = query::ParseQuery(
      "Q() := EXISTS j, z1, z2, z3, v1, v2, v3, e1, e2, e3, f1, f2, f3, "
      "w, eb: "
      "RXY(f1, z1, v1) AND RXY(f2, z2, v2) AND RXY(f3, z3, v3) AND "
      "RC(e1, j, 1, z1, v1, w) AND RC(e2, j, 2, z2, v2, w) AND "
      "RC(e3, j, 3, z3, v3, w) AND Rb(eb, w)");
  RETURN_IF_ERROR(parsed.status());
  gadget.query = std::move(parsed).value();

  gadget.options.skip_duplicate_imports = true;
  gadget.options.max_atoms =
      static_cast<int>(8 * xs.size() + (xs.size() + ys.size()) * 4 + 8);
  return gadget;
}

Result<CppGadget> PiP3ToCpp(const sat::Qbf& qbf) {
  RETURN_IF_ERROR(
      ValidateShape(qbf, {true, false, true}, /*matrix_is_cnf=*/true));
  const std::vector<sat::Var>& xs = qbf.prefix[0].vars;
  const std::vector<sat::Var>& ys = qbf.prefix[1].vars;
  const std::vector<sat::Var>& zs = qbf.prefix[2].vars;
  auto var_name = [](sat::Var v) { return "z" + std::to_string(v); };

  CppGadget gadget;

  // R_X / R'_X: the Fig. 4 assignment gadget — extensions of ρ1 pin µ_X
  // through the ordered "positive" / "negative" source entities.
  ASSIGN_OR_RETURN(Schema sx, Schema::Make("RX", {"X", "V"}));
  Relation rx(sx);
  for (sat::Var v : xs) {
    Value eid("ex" + std::to_string(v));
    RETURN_IF_ERROR(
        rx.AppendValues({eid, Value(var_name(v)), Value(0)}).status());
    RETURN_IF_ERROR(
        rx.AppendValues({eid, Value(var_name(v)), Value(1)}).status());
  }
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rx))));
  ASSIGN_OR_RETURN(Schema spx, Schema::Make("RpX", {"X", "V"}));
  Relation rpx(spx);
  std::vector<std::array<TupleId, 4>> x_rows;
  for (sat::Var v : xs) {
    std::array<TupleId, 4> rows;
    Value pos("px" + std::to_string(v));
    Value neg("nx" + std::to_string(v));
    ASSIGN_OR_RETURN(rows[0],
                     rpx.AppendValues({pos, Value(var_name(v)), Value(0)}));
    ASSIGN_OR_RETURN(rows[1],
                     rpx.AppendValues({pos, Value(var_name(v)), Value(1)}));
    ASSIGN_OR_RETURN(rows[2],
                     rpx.AppendValues({neg, Value(var_name(v)), Value(0)}));
    ASSIGN_OR_RETURN(rows[3],
                     rpx.AppendValues({neg, Value(var_name(v)), Value(1)}));
    x_rows.push_back(rows);
  }
  core::TemporalInstance rpx_inst(std::move(rpx));
  ASSIGN_OR_RETURN(AttrIndex v_attr, spx.IndexOf("V"));
  for (const auto& rows : x_rows) {
    RETURN_IF_ERROR(rpx_inst.AddOrder(v_attr, rows[0], rows[1]));  // 0 ≺ 1
    RETURN_IF_ERROR(rpx_inst.AddOrder(v_attr, rows[3], rows[2]));  // 1 ≺ 0
  }
  RETURN_IF_ERROR(gadget.spec.AddInstance(std::move(rpx_inst)));
  RETURN_IF_ERROR(gadget.spec.AddConstraintText(
      "FORALL t1, t2 IN RX: t1.X != t2.X -> t1 PREC[X] t1"));

  // R_Y: ∀-side assignments chosen by completions (no copy function).
  ASSIGN_OR_RETURN(Schema sy, Schema::Make("RY", {"Y", "V"}));
  Relation ry(sy);
  for (sat::Var v : ys) {
    Value eid("ey" + std::to_string(v));
    RETURN_IF_ERROR(
        ry.AppendValues({eid, Value(var_name(v)), Value(0)}).status());
    RETURN_IF_ERROR(
        ry.AppendValues({eid, Value(var_name(v)), Value(1)}).status());
  }
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(ry))));

  // Gates, the Fig. 4 I_ac converter (1 ↦ 'c'), and the 'c'/'d' flag.
  RETURN_IF_ERROR(AddGateRelations(&gadget.spec));
  RETURN_IF_ERROR(AddCaRelation(&gadget.spec, /*one_maps_to_c=*/true));
  ASSIGN_OR_RETURN(Schema sb, Schema::Make("Rb", {"C"}));
  Relation rb(sb);
  RETURN_IF_ERROR(rb.AppendValues({Value("b"), Value("c")}).status());
  RETURN_IF_ERROR(rb.AppendValues({Value("b"), Value("d")}).status());
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rb))));
  ASSIGN_OR_RETURN(Schema spb, Schema::Make("RpB", {"C"}));
  Relation rpb(spb);
  ASSIGN_OR_RETURN(TupleId u1, rpb.AppendValues({Value("b"), Value("c")}));
  ASSIGN_OR_RETURN(TupleId u2, rpb.AppendValues({Value("b"), Value("d")}));
  core::TemporalInstance rpb_inst(std::move(rpb));
  ASSIGN_OR_RETURN(AttrIndex c_attr, spb.IndexOf("C"));
  RETURN_IF_ERROR(rpb_inst.AddOrder(c_attr, u2, u1));  // d ≺ c
  RETURN_IF_ERROR(gadget.spec.AddInstance(std::move(rpb_inst)));

  // Empty copy functions ρ1 (RX ⇐ RpX) and ρ2 (Rb ⇐ RpB).
  copy::CopySignature sigx;
  sigx.target_relation = "RX";
  sigx.target_attrs = {"X", "V"};
  sigx.source_relation = "RpX";
  sigx.source_attrs = {"X", "V"};
  RETURN_IF_ERROR(gadget.spec.AddCopyFunction(copy::CopyFunction(sigx)));
  copy::CopySignature sigb;
  sigb.target_relation = "Rb";
  sigb.target_attrs = {"C"};
  sigb.source_relation = "RpB";
  sigb.source_attrs = {"C"};
  RETURN_IF_ERROR(gadget.spec.AddCopyFunction(copy::CopyFunction(sigb)));

  // Query: Q(v) := ∃ ... QX ∧ QY ∧ QZ ∧ [v = ac(ψ)] ∧ Rb(eb, v) — the
  // answer is {('c')} iff ψ is satisfiable at the current (µX, µY) and
  // 'c' is current in Rb.
  std::vector<FormulaPtr> atoms;
  GateCompiler gates(&atoms);
  std::vector<Term> value_of(qbf.num_vars);
  for (sat::Var v : xs) {
    Term t = gates.Fresh("xv");
    value_of[v] = t;
    atoms.push_back(Formula::Atom(
        "RX", {Term::Const(Value("ex" + std::to_string(v))),
               Term::Const(Value(var_name(v))), t}));
  }
  for (sat::Var v : ys) {
    Term t = gates.Fresh("yv");
    value_of[v] = t;
    atoms.push_back(Formula::Atom(
        "RY", {Term::Const(Value("ey" + std::to_string(v))),
               Term::Const(Value(var_name(v))), t}));
  }
  for (sat::Var v : zs) {
    Term t = gates.Fresh("zv");
    value_of[v] = t;
    atoms.push_back(Formula::Atom("R01", {gates.Fresh("e"), t}));
  }
  Term psi = gates.Matrix(qbf, value_of);
  Term flag = gates.Fresh("flag");
  atoms.push_back(Formula::Atom("Rca", {gates.Fresh("e"), psi, flag}));
  atoms.push_back(Formula::Atom("Rb", {gates.Fresh("e"), flag}));

  gadget.query.name = "Q";
  gadget.query.head = {flag.var};
  std::vector<std::string> bound;
  for (const std::string& v : gates.exist_vars()) {
    if (v != flag.var) bound.push_back(v);
  }
  gadget.query.body =
      Formula::Exists(std::move(bound), Formula::And(std::move(atoms)));

  gadget.options.skip_duplicate_imports = true;
  gadget.options.max_atoms = 64;
  return gadget;
}

}  // namespace currency::reductions
