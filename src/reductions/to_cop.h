// Data-complexity lower bound for COP and DCIP (Theorem 3.4): 3SAT →
// (specification, currency order Ot) with a FIXED schema and FIXED denial
// constraints such that
//   ψ is unsatisfiable  ⟺  Ot ("t# is most current") is certain
//                        ⟺  S is deterministic for current R_C instances.
//
// The constraint set realizes the proof's conditions (a)-(c) concretely:
//   (a) currency in attribute C propagates to all other attributes,
//   (b) if anything beats t#, every clause contributes a row above t#,
//   (c) no variable occurs above t# with both polarities.
// A completion therefore either leaves t# on top, or encodes a satisfying
// assignment of ψ by the rows it lifts above t#.

#ifndef CURRENCY_SRC_REDUCTIONS_TO_COP_H_
#define CURRENCY_SRC_REDUCTIONS_TO_COP_H_

#include "src/common/result.h"
#include "src/core/certain_order.h"
#include "src/core/specification.h"
#include "src/reductions/formulas.h"

namespace currency::reductions {

/// Output of the reduction: the specification plus the currency order Ot.
struct CopGadget {
  core::Specification spec;
  core::CurrencyOrderQuery order;  ///< "every row is below t#"
};

/// ψ in 3CNF (single ∃ block, CNF matrix) → CopGadget.
Result<CopGadget> Sat3ToCopDcip(const sat::Qbf& qbf);

}  // namespace currency::reductions

#endif  // CURRENCY_SRC_REDUCTIONS_TO_COP_H_
