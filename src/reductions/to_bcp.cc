#include "src/reductions/to_bcp.h"

#include <string>

#include "src/reductions/gates.h"

namespace currency::reductions {

namespace {

using query::Formula;
using query::FormulaPtr;
using query::Term;

}  // namespace

Result<BcpGadget> SigmaP4ToBcp(const sat::Qbf& qbf) {
  RETURN_IF_ERROR(
      ValidateShape(qbf, {true, false, true, false}, /*matrix_is_cnf=*/false));
  const std::vector<sat::Var>& ws = qbf.prefix[0].vars;
  const std::vector<sat::Var>& xs = qbf.prefix[1].vars;
  const std::vector<sat::Var>& ys = qbf.prefix[2].vars;
  const std::vector<sat::Var>& zs = qbf.prefix[3].vars;
  const int p = static_cast<int>(ws.size());

  BcpGadget gadget;
  gadget.k = p;

  // R_W / R'_W: the budgeted assignment gadget.
  ASSIGN_OR_RETURN(Schema sw, Schema::Make("RW", {"W"}));
  Relation rw(sw);
  for (sat::Var v : ws) {
    RETURN_IF_ERROR(
        rw.AppendValues({Value("w" + std::to_string(v)), Value("bot")})
            .status());
  }
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rw))));
  ASSIGN_OR_RETURN(Schema spw, Schema::Make("RpW", {"W"}));
  Relation rpw(spw);
  for (sat::Var v : ws) {
    Value eid("sw" + std::to_string(v));
    RETURN_IF_ERROR(rpw.AppendValues({eid, Value(1)}).status());
    RETURN_IF_ERROR(rpw.AppendValues({eid, Value(0)}).status());
  }
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rpw))));
  // ϕ1: an R_W entity never holds three pairwise-distinct values
  // (⊥ plus both Booleans), so at most one Boolean is ever imported.
  RETURN_IF_ERROR(gadget.spec.AddConstraintText(
      "FORALL t1, t2, t3 IN RW: t1.W != t2.W AND t1.W != t3.W AND "
      "t2.W != t3.W -> t1 PREC[W] t1"));
  // ϕ2: imported Booleans are more current than ⊥.
  RETURN_IF_ERROR(gadget.spec.AddConstraintText(
      "FORALL t1, t2 IN RW: t1.W = 'bot' AND t2.W != 'bot' "
      "-> t1 PREC[W] t2"));

  // R_X / R'_X: the adversary's assignment gadget (as in Fig. 5).
  auto var_name = [](sat::Var v) { return "z" + std::to_string(v); };
  ASSIGN_OR_RETURN(Schema sx, Schema::Make("RX", {"X", "V"}));
  Relation rx(sx);
  for (sat::Var v : xs) {
    Value eid("ex" + std::to_string(v));
    RETURN_IF_ERROR(
        rx.AppendValues({eid, Value(var_name(v)), Value(0)}).status());
    RETURN_IF_ERROR(
        rx.AppendValues({eid, Value(var_name(v)), Value(1)}).status());
  }
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rx))));
  ASSIGN_OR_RETURN(Schema spx, Schema::Make("RpX", {"X", "V"}));
  Relation rpx(spx);
  std::vector<std::array<TupleId, 4>> x_rows;
  for (sat::Var v : xs) {
    std::array<TupleId, 4> rows;
    Value pos("px" + std::to_string(v));
    Value neg("nx" + std::to_string(v));
    ASSIGN_OR_RETURN(rows[0],
                     rpx.AppendValues({pos, Value(var_name(v)), Value(0)}));
    ASSIGN_OR_RETURN(rows[1],
                     rpx.AppendValues({pos, Value(var_name(v)), Value(1)}));
    ASSIGN_OR_RETURN(rows[2],
                     rpx.AppendValues({neg, Value(var_name(v)), Value(0)}));
    ASSIGN_OR_RETURN(rows[3],
                     rpx.AppendValues({neg, Value(var_name(v)), Value(1)}));
    x_rows.push_back(rows);
  }
  core::TemporalInstance rpx_inst(std::move(rpx));
  ASSIGN_OR_RETURN(AttrIndex v_attr, spx.IndexOf("V"));
  for (const auto& rows : x_rows) {
    RETURN_IF_ERROR(rpx_inst.AddOrder(v_attr, rows[0], rows[1]));
    RETURN_IF_ERROR(rpx_inst.AddOrder(v_attr, rows[3], rows[2]));
  }
  RETURN_IF_ERROR(gadget.spec.AddInstance(std::move(rpx_inst)));
  RETURN_IF_ERROR(gadget.spec.AddConstraintText(
      "FORALL t1, t2 IN RX: t1.X != t2.X -> t1 PREC[X] t1"));

  // R_Y: ∀-side assignments chosen by completions.
  ASSIGN_OR_RETURN(Schema sy, Schema::Make("RY", {"Y", "V"}));
  Relation ry(sy);
  for (sat::Var v : ys) {
    Value eid("ey" + std::to_string(v));
    RETURN_IF_ERROR(
        ry.AppendValues({eid, Value(var_name(v)), Value(0)}).status());
    RETURN_IF_ERROR(
        ry.AppendValues({eid, Value(var_name(v)), Value(1)}).status());
  }
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(ry))));

  // Gates, the 0↦'c'/1↦'a' converter, and the 'c'/'d' flag pair.
  RETURN_IF_ERROR(AddGateRelations(&gadget.spec));
  RETURN_IF_ERROR(AddCaRelation(&gadget.spec));
  ASSIGN_OR_RETURN(Schema sb, Schema::Make("Rb", {"C"}));
  Relation rb(sb);
  RETURN_IF_ERROR(rb.AppendValues({Value("b"), Value("c")}).status());
  RETURN_IF_ERROR(rb.AppendValues({Value("b"), Value("d")}).status());
  RETURN_IF_ERROR(
      gadget.spec.AddInstance(core::TemporalInstance(std::move(rb))));
  ASSIGN_OR_RETURN(Schema spb, Schema::Make("RpB", {"C"}));
  Relation rpb(spb);
  ASSIGN_OR_RETURN(TupleId u1, rpb.AppendValues({Value("b"), Value("c")}));
  ASSIGN_OR_RETURN(TupleId u2, rpb.AppendValues({Value("b"), Value("d")}));
  core::TemporalInstance rpb_inst(std::move(rpb));
  ASSIGN_OR_RETURN(AttrIndex c_attr, spb.IndexOf("C"));
  RETURN_IF_ERROR(rpb_inst.AddOrder(c_attr, u2, u1));
  RETURN_IF_ERROR(gadget.spec.AddInstance(std::move(rpb_inst)));

  // Copy functions: ρ_W (cost 1), ρ_X and ρ_b (cost k+1: priced out of
  // the budget, the paper's (k+1)-bit-constant device).
  copy::CopySignature sigw;
  sigw.target_relation = "RW";
  sigw.target_attrs = {"W"};
  sigw.source_relation = "RpW";
  sigw.source_attrs = {"W"};
  RETURN_IF_ERROR(gadget.spec.AddCopyFunction(copy::CopyFunction(sigw)));
  copy::CopySignature sigx;
  sigx.target_relation = "RX";
  sigx.target_attrs = {"X", "V"};
  sigx.source_relation = "RpX";
  sigx.source_attrs = {"X", "V"};
  RETURN_IF_ERROR(gadget.spec.AddCopyFunction(copy::CopyFunction(sigx)));
  copy::CopySignature sigb;
  sigb.target_relation = "Rb";
  sigb.target_attrs = {"C"};
  sigb.source_relation = "RpB";
  sigb.source_attrs = {"C"};
  RETURN_IF_ERROR(gadget.spec.AddCopyFunction(copy::CopyFunction(sigb)));

  // Query: Q(v) := ∃ ... QW ∧ QX ∧ QY ∧ QZ ∧ [v = ca(ψ)] ∧ Rb(eb, v):
  // non-empty iff ψ is falsifiable at the current (µW, µX, µY) and 'c' is
  // current in Rb.
  std::vector<FormulaPtr> atoms;
  GateCompiler gates(&atoms);
  std::vector<Term> value_of(qbf.num_vars);
  for (sat::Var v : ws) {
    Term t = gates.Fresh("wv");
    value_of[v] = t;
    atoms.push_back(Formula::Atom(
        "RW", {Term::Const(Value("w" + std::to_string(v))), t}));
  }
  for (sat::Var v : xs) {
    Term t = gates.Fresh("xv");
    value_of[v] = t;
    atoms.push_back(Formula::Atom(
        "RX", {Term::Const(Value("ex" + std::to_string(v))),
               Term::Const(Value(var_name(v))), t}));
  }
  for (sat::Var v : ys) {
    Term t = gates.Fresh("yv");
    value_of[v] = t;
    atoms.push_back(Formula::Atom(
        "RY", {Term::Const(Value("ey" + std::to_string(v))),
               Term::Const(Value(var_name(v))), t}));
  }
  for (sat::Var v : zs) {
    Term t = gates.Fresh("zv");
    value_of[v] = t;
    atoms.push_back(Formula::Atom("R01", {gates.Fresh("e"), t}));
  }
  Term psi = gates.Matrix(qbf, value_of);
  Term flag = gates.Fresh("flag");
  atoms.push_back(Formula::Atom("Rca", {gates.Fresh("e"), psi, flag}));
  atoms.push_back(Formula::Atom("Rb", {gates.Fresh("e"), flag}));

  gadget.query.name = "Q";
  gadget.query.head = {flag.var};
  std::vector<std::string> bound;
  for (const std::string& v : gates.exist_vars()) {
    if (v != flag.var) bound.push_back(v);
  }
  gadget.query.body =
      Formula::Exists(std::move(bound), Formula::And(std::move(atoms)));

  // Options: duplicate imports excluded (the paper's fixed constraints),
  // with ρ_X / ρ_b atoms priced out of the BCP budget.
  gadget.options.skip_duplicate_imports = true;
  gadget.options.max_atoms = 64;
  const int expensive = gadget.k + 1;
  gadget.options.atom_cost = [expensive](const core::ExtensionAtom& atom) {
    return atom.copy_edge == 0 ? 1 : expensive;
  };
  return gadget;
}

}  // namespace currency::reductions
