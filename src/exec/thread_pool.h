// Parallel execution of independent decomposed work (coupling components,
// COP pair groups, CCQA fragment enumerations) — shared by concurrent
// callers.
//
// The decomposition layer (src/core/decompose.h) turns one specification
// into many independent sub-problems — Mod(S) ≅ Π_c Mod(S|_c) — and every
// per-component object (Encoder, sat::Solver) is confined to exactly one
// task, while the shared inputs (Specification, Decomposition,
// CopyBucketIndex, chase seed, entity-group caches) are read-only after
// DecomposedEncoder::Build.  Under that confinement discipline, parallel
// execution is a pure scheduling change: ParallelFor claims task indices
// from an atomic counter, every task writes only its own result slot, and
// callers aggregate by index — so answers, witnesses, and enumeration
// orders are bit-identical to the sequential path for every thread count.
//
// Cancellation is cooperative: a task that settles the global answer (an
// UNSAT component for CPS, a refuted pair for COP, a non-determinism
// witness for DCIP) cancels the token; unclaimed tasks are then skipped,
// tasks already running finish.  Because cancellation only ever *skips*
// work whose results the caller would not observe, it cannot perturb
// determinism.
//
// Multi-tenant sharing: ParallelFor may be invoked concurrently from
// distinct threads on one pool (the serving layer's SessionManager runs
// every tenant's batches on one shared pool).  Each invocation is an
// independent region with its own claim counter and result slots; the
// caller always drains its own region itself, so a region completes even
// when every worker is busy elsewhere — concurrent submission can starve
// no one and deadlock nothing.  Workers rotate round-robin across the
// active regions, claiming ONE task per pick, so a region with 1024 tasks
// cannot monopolize the workers against a region with one (the fairness
// half of the admission story; see serve/session_manager.h for the
// per-tenant quota half).

#ifndef CURRENCY_SRC_EXEC_THREAD_POOL_H_
#define CURRENCY_SRC_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "src/common/result.h"
#include "src/obs/metrics.h"

namespace currency::exec {

/// A cooperative cancellation flag shared by the tasks of a parallel
/// region.  Cancel() is sticky and thread-safe; tasks poll cancelled()
/// at their next claim point.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A fixed-size thread pool with a deterministic fork-join primitive.
///
/// `num_threads` counts the calling thread: ThreadPool(n) spawns n - 1
/// workers, and ThreadPool(1) spawns none — ParallelFor then runs every
/// task inline in index order, making one-thread execution *literally*
/// the sequential path rather than merely equivalent to it.
///
/// ParallelFor is a blocking fork-join region.  Distinct threads may open
/// regions concurrently (see the file comment); a single call chain must
/// not nest regions on one pool.  Task bodies must confine their
/// mutations to per-task state; see the file comment.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Optional registry instruments; any pointer may be null.  Updated
  /// only under the pool mutex or at region boundaries, so binding adds
  /// no per-task cost.
  struct Instruments {
    obs::Counter* regions = nullptr;     // ParallelFor invocations
    obs::Counter* tasks = nullptr;       // task bodies actually run
    obs::Gauge* open_regions = nullptr;  // concurrently open regions
    obs::Gauge* busy_workers = nullptr;  // workers running a task body
  };

  /// Binds registry instruments.  Call before the pool is shared across
  /// threads (it races with ParallelFor otherwise).
  void BindInstruments(const Instruments& instruments);

  /// Runs body(task) for every task in [0, num_tasks), blocking until all
  /// claimed tasks finish.  Indices are claimed in increasing order; each
  /// body's return Status lands in a per-task slot and the lowest-indexed
  /// error (if any) is returned, so the outcome does not depend on thread
  /// interleaving.  A failing task cancels the remaining unclaimed tasks;
  /// so does `cancel` (when given) once any task cancels it.  The join
  /// establishes a happens-before edge from every task body to the
  /// caller, so per-task results may be read without further locking.
  Status ParallelFor(int num_tasks, const std::function<Status(int)>& body,
                     CancellationToken* cancel = nullptr);

 private:
  /// One fork-join region: claim counter, per-task statuses, live-task
  /// accounting.  Stack-allocated by ParallelFor; workers reach it through
  /// the active-region list under the pool mutex.
  struct Batch {
    int num_tasks = 0;
    const std::function<Status(int)>* body = nullptr;
    CancellationToken* cancel = nullptr;
    std::atomic<int> next{0};
    std::atomic<bool> failed{false};
    std::vector<Status> statuses;
    int active = 0;  // threads currently running a task; guarded by mu_

    /// True while unclaimed, still-wanted tasks remain (claims race with
    /// this check, so a true answer is a hint, not a guarantee).
    bool HasWork() const {
      if (failed.load(std::memory_order_relaxed)) return false;
      if (cancel != nullptr && cancel->cancelled()) return false;
      return next.load(std::memory_order_relaxed) < num_tasks;
    }
  };

  void WorkerLoop();
  /// Drains `batch` on the calling thread: claims and runs tasks until
  /// none remain (the caller's own region in ParallelFor).
  static void DrainBatch(Batch* batch);
  /// Claims and runs exactly one task of `batch`; returns false when no
  /// task was available (exhausted, failed, or cancelled).
  static bool RunOneTask(Batch* batch);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  /// Concurrently open regions, in submission order; guarded by mu_.
  std::vector<Batch*> batches_;
  /// Round-robin pick cursor over batches_; guarded by mu_.
  std::size_t rr_cursor_ = 0;
  bool shutdown_ = false;  // guarded by mu_
  /// Workers currently inside a task body (excludes region owners, which
  /// drain their own regions); guarded by mu_.
  int busy_workers_ = 0;
  Instruments instruments_;  // written by BindInstruments under mu_
};

/// Resolves an optional caller-owned pool: returns `pool` when non-null
/// (the serving layer passes its long-lived session pool this way),
/// otherwise emplaces a fresh pool of `num_threads` into `local` and
/// returns that.  The decision procedures call this instead of
/// constructing a pool per invocation, so pool threads are spawned once
/// per session rather than once per query when a caller provides one.
inline ThreadPool* ResolvePool(ThreadPool* pool, int num_threads,
                               std::optional<ThreadPool>& local) {
  if (pool != nullptr) return pool;
  local.emplace(num_threads);
  return &*local;
}

}  // namespace currency::exec

#endif  // CURRENCY_SRC_EXEC_THREAD_POOL_H_
