// Admission-control primitives for shared-pool serving: a counting
// semaphore and a bounded-queue admission gate.
//
// The thread pool (thread_pool.h) makes *execution* fair — workers rotate
// round-robin across concurrently open regions — but fairness at the
// execution layer cannot bound how much work a caller may *submit*.  The
// serving layer's SessionManager therefore gates every tenant batch
// through an AdmissionGate: at most `max_active` batches of one tenant
// run at a time, at most `max_waiting` block waiting for a slot, and
// anything beyond that is rejected immediately with ResourceExhausted —
// over-quota submission is turned away, never deadlocked.  (This is the
// classic maxConnections / connection-quota pattern of networked
// databases: a hard per-client cap with a small accept queue in front of
// a shared worker pool.)

#ifndef CURRENCY_SRC_EXEC_SEMAPHORE_H_
#define CURRENCY_SRC_EXEC_SEMAPHORE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "src/common/result.h"
#include "src/obs/metrics.h"

namespace currency::exec {

/// A plain counting semaphore (C++20's counting_semaphore carries a
/// compile-time ceiling and no TryAcquire-with-queue semantics, so the
/// serving layer uses this mutex-based one; contention here is per batch,
/// not per task, so the mutex cost is irrelevant).
class Semaphore {
 public:
  explicit Semaphore(int count) : count_(count < 0 ? 0 : count) {}

  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  /// Blocks until a permit is available, then takes it.
  void Acquire() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ > 0; });
    --count_;
  }

  /// Takes a permit iff one is available right now.
  bool TryAcquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ <= 0) return false;
    --count_;
    return true;
  }

  /// Returns a permit, waking one waiter.
  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++count_;
    }
    cv_.notify_one();
  }

  int available() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int count_;
};

/// Bounded admission: at most `max_active` concurrent holders, at most
/// `max_waiting` callers blocked waiting for a slot; any caller beyond
/// both bounds is rejected immediately.  Enter/Leave bracket one admitted
/// unit of work (one tenant batch in the serving layer).
class AdmissionGate {
 public:
  /// Both bounds are clamped to >= 0; max_active == 0 rejects everything
  /// (a drained tenant).
  AdmissionGate(int max_active, int max_waiting)
      : max_active_(max_active < 0 ? 0 : max_active),
        max_waiting_(max_waiting < 0 ? 0 : max_waiting) {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Optional registry instruments the gate updates alongside its own
  /// bookkeeping; any pointer may be null.  Counter names follow the
  /// obs naming convention (currency_exec_admission_*), labelled per
  /// tenant by the caller that owns the registry.
  struct Instruments {
    obs::Counter* admitted = nullptr;       // OK returns from Enter()
    obs::Counter* queued = nullptr;         // Enter() calls that waited
    obs::Counter* rejected = nullptr;       // ResourceExhausted returns
    obs::Gauge* queue_depth = nullptr;      // current waiters
    obs::Gauge* queue_high_water = nullptr; // max waiters ever observed
  };

  /// Binds registry instruments.  Call before the gate is shared across
  /// threads (it races with Enter/Leave otherwise).
  void BindInstruments(const Instruments& instruments) {
    std::lock_guard<std::mutex> lock(mu_);
    instruments_ = instruments;
  }

  /// Admits the caller, blocking in the bounded queue when all active
  /// slots are taken.  Returns ResourceExhausted — without blocking —
  /// when the queue is full too (or max_active == 0).  Every OK return
  /// must be paired with exactly one Leave().
  Status Enter() {
    std::unique_lock<std::mutex> lock(mu_);
    if (active_ < max_active_) {
      ++active_;
      if (instruments_.admitted != nullptr) instruments_.admitted->Increment();
      return Status::OK();
    }
    if (max_active_ == 0 || waiting_ >= max_waiting_) {
      ++rejected_;
      if (instruments_.rejected != nullptr) instruments_.rejected->Increment();
      return Status::ResourceExhausted(
          "admission rejected: " + std::to_string(active_) + " active and " +
          std::to_string(waiting_) + " queued batches at the quota");
    }
    ++waiting_;
    if (waiting_ > queue_high_water_) {
      queue_high_water_ = waiting_;
      if (instruments_.queue_high_water != nullptr) {
        instruments_.queue_high_water->UpdateMax(queue_high_water_);
      }
    }
    if (instruments_.queued != nullptr) instruments_.queued->Increment();
    if (instruments_.queue_depth != nullptr) {
      instruments_.queue_depth->Set(waiting_);
    }
    cv_.wait(lock, [&] { return active_ < max_active_; });
    --waiting_;
    if (instruments_.queue_depth != nullptr) {
      instruments_.queue_depth->Set(waiting_);
    }
    ++active_;
    if (instruments_.admitted != nullptr) instruments_.admitted->Increment();
    return Status::OK();
  }

  /// Releases an admitted slot, waking one queued waiter.
  void Leave() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    cv_.notify_one();
  }

  int active() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_;
  }
  int waiting() const {
    std::lock_guard<std::mutex> lock(mu_);
    return waiting_;
  }
  /// Enter() calls turned away with ResourceExhausted since construction.
  int64_t rejected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rejected_;
  }
  /// Largest number of simultaneously queued waiters ever observed.
  int queue_high_water() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_high_water_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  const int max_active_;
  const int max_waiting_;
  int active_ = 0;
  int waiting_ = 0;
  int queue_high_water_ = 0;
  int64_t rejected_ = 0;
  Instruments instruments_;
};

}  // namespace currency::exec

#endif  // CURRENCY_SRC_EXEC_SEMAPHORE_H_
