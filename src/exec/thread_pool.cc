#include "src/exec/thread_pool.h"

#include <algorithm>

namespace currency::exec {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int w = 0; w < num_threads_ - 1; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::BindInstruments(const Instruments& instruments) {
  std::lock_guard<std::mutex> lock(mu_);
  instruments_ = instruments;
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::RunOneTask(Batch* batch) {
  if (batch->cancel != nullptr && batch->cancel->cancelled()) return false;
  if (batch->failed.load(std::memory_order_relaxed)) return false;
  int task = batch->next.fetch_add(1, std::memory_order_relaxed);
  if (task >= batch->num_tasks) return false;
  Status status = (*batch->body)(task);
  if (!status.ok()) {
    // Each slot is written by the one thread that claimed the task; the
    // join's mutex publishes it to the caller.
    batch->statuses[task] = std::move(status);
    batch->failed.store(true, std::memory_order_relaxed);
  }
  return true;
}

void ThreadPool::DrainBatch(Batch* batch) {
  while (RunOneTask(batch)) {
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      if (shutdown_) return true;
      for (Batch* batch : batches_) {
        if (batch->HasWork()) return true;
      }
      return false;
    });
    if (shutdown_) return;
    // Fair pick: rotate the cursor across the open regions so one
    // region's long task list cannot monopolize the workers — each pick
    // claims ONE task, then re-rotates.  The pick and the `active`
    // increment happen under the same lock hold, so a region owner that
    // observed active == 0 after removing its region from `batches_`
    // knows no worker still references it.
    Batch* batch = nullptr;
    for (std::size_t k = 0; k < batches_.size(); ++k) {
      Batch* candidate = batches_[(rr_cursor_ + k) % batches_.size()];
      if (candidate->HasWork()) {
        batch = candidate;
        rr_cursor_ = (rr_cursor_ + k + 1) % batches_.size();
        break;
      }
    }
    if (batch == nullptr) continue;  // raced with a claim; re-wait
    ++batch->active;
    ++busy_workers_;
    if (instruments_.busy_workers != nullptr) {
      instruments_.busy_workers->Set(busy_workers_);
    }
    lock.unlock();
    bool ran = RunOneTask(batch);
    (void)ran;
    lock.lock();
    --busy_workers_;
    if (instruments_.busy_workers != nullptr) {
      instruments_.busy_workers->Set(busy_workers_);
    }
    if (--batch->active == 0) done_cv_.notify_all();
  }
}

Status ThreadPool::ParallelFor(int num_tasks,
                               const std::function<Status(int)>& body,
                               CancellationToken* cancel) {
  if (num_tasks <= 0) return Status::OK();
  if (instruments_.regions != nullptr) instruments_.regions->Increment();
  if (workers_.empty() || num_tasks == 1) {
    // Inline sequential path: index order, first error wins, cancellation
    // honoured between tasks — the same contract the workers implement.
    // Concurrent callers each run their own region inline, mirroring the
    // confinement story of the threaded path.
    int ran = 0;
    for (int task = 0; task < num_tasks; ++task) {
      if (cancel != nullptr && cancel->cancelled()) break;
      ++ran;
      RETURN_IF_ERROR(body(task));
    }
    if (instruments_.tasks != nullptr) instruments_.tasks->Increment(ran);
    return Status::OK();
  }
  Batch batch;
  batch.num_tasks = num_tasks;
  batch.body = &body;
  batch.cancel = cancel;
  batch.statuses.assign(num_tasks, Status::OK());
  {
    std::lock_guard<std::mutex> lock(mu_);
    batches_.push_back(&batch);
    if (instruments_.open_regions != nullptr) {
      instruments_.open_regions->Set(static_cast<int64_t>(batches_.size()));
    }
  }
  work_cv_.notify_all();
  // The caller drains its own region: progress never depends on the
  // workers, so concurrent regions cannot deadlock — at worst a region
  // runs entirely on its submitting thread while the workers serve
  // another region.
  DrainBatch(&batch);
  {
    // After the drain, every claim attempt on this region comes up empty
    // (counter exhausted, failed, or cancelled), so waiting for the
    // in-flight tasks is waiting for completion.  Workers pick a region
    // and bump `active` under this same mutex, so once the region is out
    // of `batches_` with active == 0, no worker can still reference it.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch.active == 0; });
    batches_.erase(std::find(batches_.begin(), batches_.end(), &batch));
    if (rr_cursor_ >= batches_.size()) rr_cursor_ = 0;
    if (instruments_.open_regions != nullptr) {
      instruments_.open_regions->Set(static_cast<int64_t>(batches_.size()));
    }
    if (instruments_.tasks != nullptr) {
      // Claims beyond num_tasks are failed probes, not runs.
      instruments_.tasks->Increment(std::min(
          batch.next.load(std::memory_order_relaxed), batch.num_tasks));
    }
  }
  for (int task = 0; task < num_tasks; ++task) {
    if (!batch.statuses[task].ok()) return batch.statuses[task];
  }
  return Status::OK();
}

}  // namespace currency::exec
