#include "src/exec/thread_pool.h"

#include <algorithm>

namespace currency::exec {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  workers_.reserve(num_threads_ - 1);
  for (int w = 0; w < num_threads_ - 1; ++w) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::RunBatch(Batch* batch) {
  for (;;) {
    if (batch->cancel != nullptr && batch->cancel->cancelled()) return;
    if (batch->failed.load(std::memory_order_relaxed)) return;
    int task = batch->next.fetch_add(1, std::memory_order_relaxed);
    if (task >= batch->num_tasks) return;
    Status status = (*batch->body)(task);
    if (!status.ok()) {
      // Each slot is written by the one thread that claimed the task; the
      // join's mutex publishes it to the caller.
      batch->statuses[task] = std::move(status);
      batch->failed.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t last_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ ||
             (current_ != nullptr && generation_ != last_generation);
    });
    if (shutdown_) return;
    Batch* batch = current_;
    last_generation = generation_;
    ++batch->active;
    lock.unlock();
    RunBatch(batch);
    lock.lock();
    if (--batch->active == 0) done_cv_.notify_all();
  }
}

Status ThreadPool::ParallelFor(int num_tasks,
                               const std::function<Status(int)>& body,
                               CancellationToken* cancel) {
  if (num_tasks <= 0) return Status::OK();
  if (workers_.empty() || num_tasks == 1) {
    // Inline sequential path: index order, first error wins, cancellation
    // honoured between tasks — the same contract the workers implement.
    for (int task = 0; task < num_tasks; ++task) {
      if (cancel != nullptr && cancel->cancelled()) break;
      RETURN_IF_ERROR(body(task));
    }
    return Status::OK();
  }
  Batch batch;
  batch.num_tasks = num_tasks;
  batch.body = &body;
  batch.cancel = cancel;
  batch.statuses.assign(num_tasks, Status::OK());
  {
    std::lock_guard<std::mutex> lock(mu_);
    current_ = &batch;
    ++generation_;
  }
  work_cv_.notify_all();
  RunBatch(&batch);  // the calling thread is one of the num_threads
  {
    // Every claimed task is held by a worker counted in `active`; once it
    // reaches zero with the caller's own run complete, all tasks are done.
    // Clearing `current_` under the same lock hold keeps late-waking
    // workers from touching the dead batch.
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return batch.active == 0; });
    current_ = nullptr;
  }
  for (int task = 0; task < num_tasks; ++task) {
    if (!batch.statuses[task].ok()) return batch.statuses[task];
  }
  return Status::OK();
}

}  // namespace currency::exec
