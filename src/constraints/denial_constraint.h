// Denial constraints for data currency (Section 2 of the paper):
//
//   ∀ t1, ..., tk : R ( ⋀_j (t1[EID] = tj[EID]) ∧ ψ  →  t_u ≺_A t_v )
//
// where ψ is a conjunction of (a) currency-order atoms t_i ≺_B t_j,
// (b) attribute comparisons t_i[B] op t_j[C], and (c) comparisons with
// constants t_i[B] op c.  The EID-equality premises are implicit here:
// constraints are always interpreted over tuples of one entity.
//
// A conclusion t_u ≺_A t_u (same tuple variable, as used in the paper's
// reductions, e.g. "→ t1 ≺_V t1") is unsatisfiable, turning the constraint
// into a pure denial of ψ.

#ifndef CURRENCY_SRC_CONSTRAINTS_DENIAL_CONSTRAINT_H_
#define CURRENCY_SRC_CONSTRAINTS_DENIAL_CONSTRAINT_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "src/common/cmp.h"
#include "src/common/result.h"
#include "src/order/partial_order.h"
#include "src/relational/relation.h"
#include "src/relational/schema.h"

namespace currency::constraints {

/// One side of a value comparison: t_i[attr] or a constant.
struct Operand {
  bool is_const = false;
  int tuple_var = -1;       ///< index of the tuple variable (when !is_const)
  AttrIndex attr = -1;      ///< attribute index (when !is_const)
  Value constant;           ///< the constant (when is_const)

  static Operand Attr(int tuple_var, AttrIndex attr) {
    Operand op;
    op.is_const = false;
    op.tuple_var = tuple_var;
    op.attr = attr;
    return op;
  }
  static Operand Const(Value v) {
    Operand op;
    op.is_const = true;
    op.constant = std::move(v);
    return op;
  }
};

/// A value predicate t_i[B] op (t_j[C] | c).
struct ComparePredicate {
  CmpOp op = CmpOp::kEq;
  Operand lhs;
  Operand rhs;
};

/// A currency-order atom over tuple variables: before ≺_attr after.
struct OrderAtom {
  int before = -1;
  int after = -1;
  AttrIndex attr = -1;
};

/// A currency-order atom over concrete tuples of one relation.
struct GroundOrderAtom {
  AttrIndex attr = -1;
  TupleId before = -1;
  TupleId after = -1;

  bool operator==(const GroundOrderAtom& o) const {
    return attr == o.attr && before == o.before && after == o.after;
  }
};

/// A grounded instance of a denial constraint: if all `premises` hold in a
/// completion then `conclusion` must hold; a missing conclusion denotes
/// "false" (the premises must not all hold).
struct Grounding {
  std::vector<GroundOrderAtom> premises;
  std::optional<GroundOrderAtom> conclusion;
};

/// A denial constraint bound to a relation schema.
class DenialConstraint {
 public:
  /// Builds and validates a constraint over `schema` with `num_tuple_vars`
  /// universally quantified tuple variables.  All attribute and variable
  /// indices must be in range; order atoms may not use the EID attribute.
  static Result<DenialConstraint> Make(const Schema& schema,
                                       int num_tuple_vars,
                                       std::vector<ComparePredicate> compares,
                                       std::vector<OrderAtom> order_premises,
                                       OrderAtom conclusion);

  const std::string& relation_name() const { return relation_name_; }
  int num_tuple_vars() const { return num_tuple_vars_; }
  const std::vector<ComparePredicate>& compares() const { return compares_; }
  const std::vector<OrderAtom>& order_premises() const {
    return order_premises_;
  }
  const OrderAtom& conclusion() const { return conclusion_; }

  /// True iff the value predicates hold for the instantiation
  /// `assignment[i]` of tuple variable i.
  bool ValuePredicatesHold(const Relation& relation,
                           const std::vector<TupleId>& assignment) const;

  /// Calls `emit` for every grounding over same-entity tuple instantiations
  /// whose value predicates hold.  Groundings with a trivially false
  /// premise (an order atom on one tuple) are skipped; groundings whose
  /// conclusion collapses to one tuple get an empty conclusion (denial).
  void EnumerateGroundings(
      const Relation& relation,
      const std::function<void(const Grounding&)>& emit) const;

  /// Same, for the single entity group `members` (ids into `relation`).
  /// All tuple variables of a grounding bind within one entity group, so
  /// per-group enumeration loses nothing; the decomposition layer uses
  /// this to ground one coupling component at a time without paying for
  /// the others.
  void EnumerateGroundingsForGroup(
      const Relation& relation, const std::vector<TupleId>& members,
      const std::function<void(const Grounding&)>& emit) const;

  /// True iff at least one grounding exists for the entity group `members`
  /// (same semantics as EnumerateGroundingsForGroup: vacuous instantiations
  /// do not count).  Stops at the first match, so classifying a group that
  /// the constraint touches is much cheaper than enumerating it.
  bool HasGroundingForGroup(const Relation& relation,
                            const std::vector<TupleId>& members) const;

  /// True iff the (possibly partial) per-attribute `orders` satisfy the
  /// constraint: every grounding with all premises present has its
  /// conclusion present.  For completed orders this is exactly the paper's
  /// D_t^c |= φ.
  bool SatisfiedBy(const Relation& relation,
                   const std::vector<PartialOrder>& orders) const;

  /// Renders the constraint in the DSL syntax (see constraints/parser.h).
  std::string ToString(const Schema& schema) const;

 private:
  DenialConstraint() = default;

  /// Backtracking core shared by enumeration and the existence check;
  /// `emit` returns false to stop the search.
  void GroundingsForGroup(
      const Relation& relation, const std::vector<TupleId>& members,
      const std::function<bool(const Grounding&)>& emit) const;

  std::string relation_name_;
  int num_tuple_vars_ = 0;
  std::vector<ComparePredicate> compares_;
  std::vector<OrderAtom> order_premises_;
  OrderAtom conclusion_;
};

}  // namespace currency::constraints

#endif  // CURRENCY_SRC_CONSTRAINTS_DENIAL_CONSTRAINT_H_
