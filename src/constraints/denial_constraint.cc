#include "src/constraints/denial_constraint.h"

#include <algorithm>
#include <sstream>

namespace currency::constraints {

namespace {

Status ValidateOperand(const Schema& schema, int num_tuple_vars,
                       const Operand& op) {
  if (op.is_const) return Status::OK();
  if (op.tuple_var < 0 || op.tuple_var >= num_tuple_vars) {
    return Status::InvalidArgument("tuple variable index out of range");
  }
  if (op.attr < 0 || op.attr >= schema.arity()) {
    return Status::InvalidArgument("attribute index out of range");
  }
  return Status::OK();
}

Status ValidateOrderAtom(const Schema& schema, int num_tuple_vars,
                         const OrderAtom& atom) {
  if (atom.before < 0 || atom.before >= num_tuple_vars ||
      atom.after < 0 || atom.after >= num_tuple_vars) {
    return Status::InvalidArgument("order atom tuple variable out of range");
  }
  if (atom.attr < 1 || atom.attr >= schema.arity()) {
    return Status::InvalidArgument(
        "order atom attribute must be a data attribute (not EID)");
  }
  return Status::OK();
}

}  // namespace

Result<DenialConstraint> DenialConstraint::Make(
    const Schema& schema, int num_tuple_vars,
    std::vector<ComparePredicate> compares,
    std::vector<OrderAtom> order_premises, OrderAtom conclusion) {
  if (num_tuple_vars < 1) {
    return Status::InvalidArgument("constraint needs at least one tuple var");
  }
  for (const ComparePredicate& c : compares) {
    RETURN_IF_ERROR(ValidateOperand(schema, num_tuple_vars, c.lhs));
    RETURN_IF_ERROR(ValidateOperand(schema, num_tuple_vars, c.rhs));
  }
  for (const OrderAtom& a : order_premises) {
    RETURN_IF_ERROR(ValidateOrderAtom(schema, num_tuple_vars, a));
  }
  RETURN_IF_ERROR(ValidateOrderAtom(schema, num_tuple_vars, conclusion));
  DenialConstraint dc;
  dc.relation_name_ = schema.relation_name();
  dc.num_tuple_vars_ = num_tuple_vars;
  dc.compares_ = std::move(compares);
  dc.order_premises_ = std::move(order_premises);
  dc.conclusion_ = conclusion;
  return dc;
}

bool DenialConstraint::ValuePredicatesHold(
    const Relation& relation, const std::vector<TupleId>& assignment) const {
  auto resolve = [&](const Operand& op) -> const Value& {
    static const Value kNull;
    if (op.is_const) return op.constant;
    return relation.tuple(assignment[op.tuple_var]).at(op.attr);
  };
  for (const ComparePredicate& c : compares_) {
    if (!EvalCmp(c.op, resolve(c.lhs), resolve(c.rhs))) return false;
  }
  return true;
}

void DenialConstraint::EnumerateGroundings(
    const Relation& relation,
    const std::function<void(const Grounding&)>& emit) const {
  for (const auto& [eid, members] : relation.EntityGroups()) {
    (void)eid;
    EnumerateGroundingsForGroup(relation, members, emit);
  }
}

void DenialConstraint::EnumerateGroundingsForGroup(
    const Relation& relation, const std::vector<TupleId>& members,
    const std::function<void(const Grounding&)>& emit) const {
  GroundingsForGroup(relation, members, [&](const Grounding& g) {
    emit(g);
    return true;
  });
}

bool DenialConstraint::HasGroundingForGroup(
    const Relation& relation, const std::vector<TupleId>& members) const {
  bool found = false;
  GroundingsForGroup(relation, members, [&](const Grounding&) {
    found = true;
    return false;
  });
  return found;
}

void DenialConstraint::GroundingsForGroup(
    const Relation& relation, const std::vector<TupleId>& members,
    const std::function<bool(const Grounding&)>& emit) const {
  // The lower-bound constructions of the paper use constraints with many
  // tuple variables over one large entity group, so naive |G|^k nested
  // loops are hopeless even for tiny inputs.  We instead backtrack with
  // (a) per-variable candidate sets pre-filtered by unary predicates and
  // (b) eager evaluation of each predicate as soon as its variables are
  // assigned.

  // Split predicates by the set of tuple variables they mention.
  auto pred_vars = [&](const ComparePredicate& c) {
    std::vector<int> vars;
    if (!c.lhs.is_const) vars.push_back(c.lhs.tuple_var);
    if (!c.rhs.is_const && c.rhs.tuple_var != (vars.empty() ? -1 : vars[0])) {
      vars.push_back(c.rhs.tuple_var);
    }
    return vars;
  };
  std::vector<std::vector<const ComparePredicate*>> unary(num_tuple_vars_);
  std::vector<const ComparePredicate*> binary;
  for (const ComparePredicate& c : compares_) {
    std::vector<int> vars = pred_vars(c);
    if (vars.empty()) {
      // Constant comparison: decide the whole constraint now.
      if (!EvalCmp(c.op, c.lhs.constant, c.rhs.constant)) return;
    } else if (vars.size() == 1) {
      unary[vars[0]].push_back(&c);
    } else {
      binary.push_back(&c);
    }
  }

  auto eval_operand = [&](const Operand& op,
                          const std::vector<TupleId>& assignment) -> const Value& {
    if (op.is_const) return op.constant;
    return relation.tuple(assignment[op.tuple_var]).at(op.attr);
  };

  std::vector<TupleId> assignment(num_tuple_vars_);
  {
    // Candidate tuples per variable: members passing all unary predicates.
    std::vector<std::vector<TupleId>> candidates(num_tuple_vars_);
    for (int v = 0; v < num_tuple_vars_; ++v) {
      for (TupleId id : members) {
        assignment[v] = id;
        bool ok = true;
        for (const ComparePredicate* c : unary[v]) {
          if (!EvalCmp(c->op, eval_operand(c->lhs, assignment),
                       eval_operand(c->rhs, assignment))) {
            ok = false;
            break;
          }
        }
        if (ok) candidates[v].push_back(id);
      }
      if (candidates[v].empty()) break;  // no grounding from this group
    }
    bool empty = false;
    for (const auto& cand : candidates) {
      if (cand.empty()) empty = true;
    }
    if (empty) return;

    // Assign variables scarcest-first; schedule each binary predicate at
    // the position where its second variable is assigned.
    std::vector<int> order(num_tuple_vars_);
    for (int v = 0; v < num_tuple_vars_; ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return candidates[a].size() < candidates[b].size();
    });
    std::vector<int> position(num_tuple_vars_);
    for (int i = 0; i < num_tuple_vars_; ++i) position[order[i]] = i;
    std::vector<std::vector<const ComparePredicate*>> checks(num_tuple_vars_);
    for (const ComparePredicate* c : binary) {
      std::vector<int> vars = pred_vars(*c);
      int ready = std::max(position[vars[0]], position[vars[1]]);
      checks[ready].push_back(c);
    }

    // rec returns false when emit asked to stop the search.
    std::function<bool(int)> rec = [&](int depth) {
      if (depth == num_tuple_vars_) {
        Grounding g;
        for (const OrderAtom& a : order_premises_) {
          TupleId u = assignment[a.before];
          TupleId v = assignment[a.after];
          if (u == v) return true;  // premise u ≺ u false: vacuous
          g.premises.push_back(GroundOrderAtom{a.attr, u, v});
        }
        TupleId cu = assignment[conclusion_.before];
        TupleId cv = assignment[conclusion_.after];
        if (cu == cv) {
          g.conclusion = std::nullopt;  // u ≺ u unsatisfiable: pure denial
        } else {
          g.conclusion = GroundOrderAtom{conclusion_.attr, cu, cv};
        }
        return emit(g);
      }
      int var = order[depth];
      for (TupleId id : candidates[var]) {
        assignment[var] = id;
        bool ok = true;
        for (const ComparePredicate* c : checks[depth]) {
          if (!EvalCmp(c->op, eval_operand(c->lhs, assignment),
                       eval_operand(c->rhs, assignment))) {
            ok = false;
            break;
          }
        }
        if (ok && !rec(depth + 1)) return false;
      }
      return true;
    };
    rec(0);
  }
}

bool DenialConstraint::SatisfiedBy(
    const Relation& relation, const std::vector<PartialOrder>& orders) const {
  bool ok = true;
  EnumerateGroundings(relation, [&](const Grounding& g) {
    if (!ok) return;
    for (const GroundOrderAtom& p : g.premises) {
      if (!orders[p.attr].Less(p.before, p.after)) return;  // premise fails
    }
    if (!g.conclusion.has_value()) {
      ok = false;  // denial triggered
      return;
    }
    const GroundOrderAtom& c = *g.conclusion;
    if (!orders[c.attr].Less(c.before, c.after)) ok = false;
  });
  return ok;
}

std::string DenialConstraint::ToString(const Schema& schema) const {
  std::ostringstream os;
  os << "FORALL ";
  for (int i = 0; i < num_tuple_vars_; ++i) {
    if (i) os << ", ";
    os << "t" << i;
  }
  os << " IN " << relation_name_ << ": ";
  auto operand = [&](const Operand& op) {
    if (op.is_const) {
      if (op.constant.kind() == ValueKind::kString) {
        return "'" + op.constant.ToString() + "'";
      }
      return op.constant.ToString();
    }
    return "t" + std::to_string(op.tuple_var) + "." +
           schema.attribute_name(op.attr);
  };
  bool first = true;
  for (const ComparePredicate& c : compares_) {
    if (!first) os << " AND ";
    first = false;
    os << operand(c.lhs) << " " << CmpOpToString(c.op) << " " << operand(c.rhs);
  }
  for (const OrderAtom& a : order_premises_) {
    if (!first) os << " AND ";
    first = false;
    os << "t" << a.before << " PREC[" << schema.attribute_name(a.attr)
       << "] t" << a.after;
  }
  if (first) os << "TRUE";
  os << " -> t" << conclusion_.before << " PREC["
     << schema.attribute_name(conclusion_.attr) << "] t" << conclusion_.after;
  return os.str();
}

}  // namespace currency::constraints
