#include "src/constraints/parser.h"

#include <map>

#include "src/common/lexer.h"

namespace currency::constraints {

namespace {

class ConstraintParser {
 public:
  ConstraintParser(const Schema& schema, std::vector<Token> tokens)
      : schema_(schema), tokens_(std::move(tokens)) {}

  Result<DenialConstraint> Parse() {
    if (!TokenIsKeyword(Peek(), "FORALL")) return Err("expected FORALL");
    Next();
    // Tuple variables.
    while (true) {
      if (Peek().kind != Tok::kIdent) return Err("expected tuple variable");
      std::string name = Next().text;
      if (vars_.count(name)) return Err("duplicate tuple variable " + name);
      int index = static_cast<int>(vars_.size());
      vars_[name] = index;
      if (Peek().kind == Tok::kComma) {
        Next();
        continue;
      }
      break;
    }
    if (!TokenIsKeyword(Peek(), "IN")) return Err("expected IN");
    Next();
    if (Peek().kind != Tok::kIdent) return Err("expected relation name");
    std::string rel = Next().text;
    if (rel != schema_.relation_name()) {
      return Err("constraint relation '" + rel + "' does not match schema '" +
                 schema_.relation_name() + "'");
    }
    RETURN_IF_ERROR(Expect(Tok::kColon, "':'"));

    std::vector<ComparePredicate> compares;
    std::vector<OrderAtom> premises;
    if (TokenIsKeyword(Peek(), "TRUE")) {
      Next();
    } else if (Peek().kind == Tok::kArrow) {
      // Empty premise list is allowed before '->'.
    } else {
      while (true) {
        RETURN_IF_ERROR(ParsePredicate(&compares, &premises));
        if (TokenIsKeyword(Peek(), "AND")) {
          Next();
          continue;
        }
        break;
      }
    }
    RETURN_IF_ERROR(Expect(Tok::kArrow, "'->'"));
    ASSIGN_OR_RETURN(OrderAtom conclusion, ParseOrderAtom());
    if (Peek().kind != Tok::kEnd) return Err("trailing input");
    return DenialConstraint::Make(schema_, static_cast<int>(vars_.size()),
                                  std::move(compares), std::move(premises),
                                  conclusion);
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    if (i >= tokens_.size()) i = tokens_.size() - 1;
    return tokens_[i];
  }
  const Token& Next() { return tokens_[pos_++]; }

  Status Expect(Tok kind, const char* what) {
    if (Peek().kind != kind) return Err(std::string("expected ") + what);
    Next();
    return Status::OK();
  }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at position " +
                                   std::to_string(Peek().pos));
  }

  Result<int> LookupVar(const std::string& name) {
    auto it = vars_.find(name);
    if (it == vars_.end()) {
      return Status::InvalidArgument("unknown tuple variable '" + name + "'");
    }
    return it->second;
  }

  /// Parses either an order atom "s PREC[A] t" or a comparison.
  Status ParsePredicate(std::vector<ComparePredicate>* compares,
                        std::vector<OrderAtom>* premises) {
    if (Peek().kind == Tok::kIdent && TokenIsKeyword(Peek(1), "PREC")) {
      ASSIGN_OR_RETURN(OrderAtom atom, ParseOrderAtom());
      premises->push_back(atom);
      return Status::OK();
    }
    ASSIGN_OR_RETURN(Operand lhs, ParseOperand());
    if (Peek().kind != Tok::kCmp) return Err("expected comparison operator");
    CmpOp op = Next().cmp;
    ASSIGN_OR_RETURN(Operand rhs, ParseOperand());
    compares->push_back(ComparePredicate{op, lhs, rhs});
    return Status::OK();
  }

  Result<OrderAtom> ParseOrderAtom() {
    if (Peek().kind != Tok::kIdent) {
      return Status::InvalidArgument("expected tuple variable in order atom");
    }
    ASSIGN_OR_RETURN(int before, LookupVar(Next().text));
    if (!TokenIsKeyword(Peek(), "PREC")) {
      return Status::InvalidArgument("expected PREC");
    }
    Next();
    RETURN_IF_ERROR(Expect(Tok::kLBracket, "'['"));
    if (Peek().kind != Tok::kIdent) {
      return Status::InvalidArgument("expected attribute name");
    }
    ASSIGN_OR_RETURN(AttrIndex attr, schema_.IndexOf(Next().text));
    RETURN_IF_ERROR(Expect(Tok::kRBracket, "']'"));
    if (Peek().kind != Tok::kIdent) {
      return Status::InvalidArgument("expected tuple variable in order atom");
    }
    ASSIGN_OR_RETURN(int after, LookupVar(Next().text));
    OrderAtom atom;
    atom.before = before;
    atom.after = after;
    atom.attr = attr;
    return atom;
  }

  Result<Operand> ParseOperand() {
    const Token& t = Peek();
    if (t.kind == Tok::kNumber || t.kind == Tok::kString) {
      Next();
      return Operand::Const(t.value);
    }
    if (t.kind == Tok::kIdent) {
      ASSIGN_OR_RETURN(int var, LookupVar(Next().text));
      RETURN_IF_ERROR(Expect(Tok::kDot, "'.'"));
      if (Peek().kind != Tok::kIdent) {
        return Status::InvalidArgument("expected attribute name after '.'");
      }
      ASSIGN_OR_RETURN(AttrIndex attr, schema_.IndexOf(Next().text));
      return Operand::Attr(var, attr);
    }
    return Status::InvalidArgument("expected operand at position " +
                                   std::to_string(t.pos));
  }

  const Schema& schema_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::map<std::string, int> vars_;
};

}  // namespace

Result<DenialConstraint> ParseConstraint(const Schema& schema,
                                         const std::string& text) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, LexText(text));
  ConstraintParser parser(schema, std::move(tokens));
  return parser.Parse();
}

}  // namespace currency::constraints
