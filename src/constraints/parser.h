// Text syntax for denial constraints, so the paper's ϕ1–ϕ5 read naturally:
//
//   ϕ1: FORALL s, t IN Emp: s.salary > t.salary -> t PREC[salary] s
//   ϕ2: FORALL s, t IN Emp: s.status = 'married' AND t.status = 'single'
//         -> t PREC[LN] s
//   ϕ3: FORALL s, t IN Emp: t PREC[salary] s -> t PREC[address] s
//
// Grammar (keywords case-insensitive):
//
//   constraint := FORALL vars IN IDENT ':' premises '->' order_atom
//   premises   := TRUE | predicate (AND predicate)*
//   predicate  := operand cmp operand | order_atom
//   order_atom := VAR 'PREC' '[' attr ']' VAR
//   operand    := VAR '.' attr | NUMBER | 'string'
//
// The EID-equality premises of the paper's normal form are implicit:
// constraints always range over tuples of one entity.

#ifndef CURRENCY_SRC_CONSTRAINTS_PARSER_H_
#define CURRENCY_SRC_CONSTRAINTS_PARSER_H_

#include <string>

#include "src/common/result.h"
#include "src/constraints/denial_constraint.h"
#include "src/relational/schema.h"

namespace currency::constraints {

/// Parses a denial constraint against `schema` (attribute names are
/// resolved immediately; unknown names fail).
Result<DenialConstraint> ParseConstraint(const Schema& schema,
                                         const std::string& text);

}  // namespace currency::constraints

#endif  // CURRENCY_SRC_CONSTRAINTS_PARSER_H_
