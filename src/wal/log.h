// src/wal — the durable write-ahead commit log under the serving layer.
//
// A log directory contains:
//   * numbered segment files  wal-<first_seq, hex>.log  holding the
//     record stream,
//   * at most one snapshot file  snap-<seq, hex>.snap  holding an opaque
//     payload that summarizes every record with sequence number <= seq,
//   * a MANIFEST naming the live segments (ascending) and the snapshot —
//     rewritten atomically (tmp + fsync + rename + directory fsync), so
//     a crash mid-update leaves the previous manifest in force and at
//     worst some unreferenced files, which the next Open sweeps.
//
// Segment files start with a 16-byte header (magic "CWLG", format
// version, first sequence number) followed by CRC32-framed records:
//
//   [u32 crc] [u32 len] [u64 seq] [len payload bytes]
//
// crc covers (len, seq, payload), sequence numbers are contiguous and
// monotonically increasing across segment boundaries, and payloads are
// opaque bytes (the serving layer's encoded commands, serve/command.h).
//
// Durability contract: Append writes the record into the OS; Sync
// fsyncs it.  A caller that acknowledges work only after Sync returns
// gets the classic WAL guarantee — every acknowledged record survives a
// crash.  Records written but not yet synced may survive or may be torn;
// recovery handles both.
//
// Recovery (LogWriter::Open / LogReader::ReadDir) walks the manifest's
// segments in order and accepts the longest valid prefix of the record
// stream: the first torn (short) record, CRC mismatch, length overrun or
// sequence break TRUNCATES the log there — the offending bytes and every
// later segment are dropped (the writer physically ftruncates and
// unlinks; the reader just stops).  Truncation is deliberately the ONLY
// response to tail damage: a record that fails its CRC cannot be
// skipped-and-resumed, because everything after it is unanchored — so a
// corrupt tail can never be silently reordered or resurrected.  A
// corrupt SNAPSHOT file, by contrast, is a hard error: its records were
// pruned, so there is nothing to fall back to.

#ifndef CURRENCY_SRC_WAL_LOG_H_
#define CURRENCY_SRC_WAL_LOG_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/obs/clock.h"
#include "src/obs/metrics.h"

namespace currency::wal {

/// One validated log record.
struct LogRecord {
  uint64_t seq = 0;
  std::string payload;
};

/// Everything recovery found in a log directory.
struct RecoveredLog {
  bool has_snapshot = false;
  /// Every record with seq <= snapshot_seq is summarized by the snapshot
  /// payload (and has typically been pruned from the segments).
  uint64_t snapshot_seq = 0;
  std::string snapshot_payload;
  /// Valid records with seq > snapshot_seq, ascending and contiguous.
  std::vector<LogRecord> records;
  /// Highest durable sequence number (snapshot_seq when no records).
  uint64_t last_seq = 0;
  /// Bytes of torn/corrupt tail that recovery truncated (diagnostics).
  uint64_t dropped_bytes = 0;
};

struct WalOptions {
  /// Rotate to a new segment once the current one exceeds this size.
  uint64_t segment_bytes = 8u << 20;
  /// Optional metrics registry: the writer registers the currency_wal_*
  /// families there (append/fsync latency histograms, record/byte/fsync/
  /// snapshot counters, recovery replay/truncation counters).  Null means
  /// no metrics.
  obs::Registry* registry = nullptr;
  /// Time source for the latency histograms; null means the monotonic
  /// wall clock.  Ignored without a registry or under CURRENCY_OBS_OFF
  /// (latency timing compiles out; counters stay).
  const obs::Clock* clock = nullptr;
};

/// Read-only recovery: scans a log directory and returns the longest
/// valid prefix without modifying anything (the writer's Open performs
/// the same scan and then truncates).  A directory without a MANIFEST is
/// an empty log.
class LogReader {
 public:
  static Result<RecoveredLog> ReadDir(const std::string& dir);
};

/// The single-writer append end of a log directory.  Not thread-safe:
/// the owner serializes Append/Sync/WriteSnapshot (the SessionManager
/// holds its commit mutex across apply + append + fsync, which is also
/// what makes log order equal apply order).
class LogWriter {
 public:
  /// Opens (creating if needed) the log rooted at `dir`: scans like
  /// LogReader, ftruncates the torn/corrupt tail away, unlinks
  /// unreferenced or dropped files, and positions for appending at
  /// last_seq + 1.  The recovered state is available via recovered().
  static Result<std::unique_ptr<LogWriter>> Open(const std::string& dir,
                                                 const WalOptions& options = {});

  ~LogWriter();
  LogWriter(const LogWriter&) = delete;
  LogWriter& operator=(const LogWriter&) = delete;

  /// What Open recovered; the caller replays this once and may then
  /// free the memory via TakeRecovered().
  const RecoveredLog& recovered() const { return recovered_; }
  RecoveredLog TakeRecovered() { return std::move(recovered_); }

  /// Appends a record (rotating segments as configured) and returns its
  /// sequence number.  NOT yet durable — call Sync before acknowledging.
  Result<uint64_t> Append(std::string_view payload);

  /// fsyncs the current segment: every Append so far is durable after
  /// this returns.
  Status Sync();

  /// Installs `payload` as the snapshot covering every record appended
  /// so far (seq <= last_seq()): rotates to a fresh segment, writes the
  /// CRC-framed snapshot file, atomically republishes the manifest, and
  /// prunes fully covered segments plus the previous snapshot.  The
  /// payload is opaque to the log.
  Status WriteSnapshot(std::string_view payload);

  uint64_t last_seq() const { return last_seq_; }
  const std::string& dir() const { return dir_; }

 private:
  struct Segment {
    std::string file;  // basename
    uint64_t first_seq = 0;
  };

  LogWriter(std::string dir, const WalOptions& options)
      : dir_(dir), options_(options) {}

  /// Registers the currency_wal_* instrument families in
  /// options_.registry and records what recovery found (replayed
  /// records, truncated bytes, snapshot restores).  No-op without a
  /// registry.
  void BindInstruments();

  Status WriteManifest() const;
  /// Creates segment `first_seq`, making it current (header written and
  /// synced); appends it to segments_ and republishes the manifest.
  Status StartSegment(uint64_t first_seq);
  /// Closes the current segment and opens a fresh one at last_seq_ + 1.
  Status Rotate();
  /// Unlinks wal-/snap- files the manifest does not reference.
  void SweepUnreferenced() const;

  std::string dir_;
  WalOptions options_;
  RecoveredLog recovered_;
  std::vector<Segment> segments_;
  bool has_snapshot_ = false;
  uint64_t snapshot_seq_ = 0;
  std::string snapshot_file_;
  int fd_ = -1;                 // current (last) segment, O_WRONLY at end
  uint64_t segment_size_ = 0;   // bytes written to the current segment
  uint64_t last_seq_ = 0;

  // Registry instruments (all null without a registry in the options).
  const obs::Clock* clock_ = nullptr;
  obs::Histogram* append_latency_ns_ = nullptr;
  obs::Histogram* fsync_latency_ns_ = nullptr;
  obs::Counter* appended_records_ = nullptr;
  obs::Counter* appended_bytes_ = nullptr;
  obs::Counter* fsyncs_ = nullptr;
  obs::Counter* snapshot_writes_ = nullptr;
};

}  // namespace currency::wal

#endif  // CURRENCY_SRC_WAL_LOG_H_
