#include "src/wal/log.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <set>
#include <sstream>
#include <utility>

#include "src/obs/trace.h"
#include "src/wal/crc32.h"

namespace currency::wal {

namespace {

constexpr char kSegmentMagic[4] = {'C', 'W', 'L', 'G'};
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderBytes = 16;  // magic + version + first_seq
constexpr size_t kRecordHeaderBytes = 16;   // crc + len + seq
// A single command never approaches this; a larger declared length is
// corruption, not data.
constexpr uint32_t kMaxRecordBytes = 1u << 30;
constexpr char kManifestHeader[] = "CWAL-MANIFEST 1";

Status IoError(const char* what, const std::string& path) {
  return Status::Internal(std::string("wal: ") + what + " " + path + ": " +
                          std::strerror(errno));
}

std::string SegmentName(uint64_t first_seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "wal-%016llx.log",
                static_cast<unsigned long long>(first_seq));
  return buf;
}

std::string SnapshotName(uint64_t seq) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "snap-%016llx.snap",
                static_cast<unsigned long long>(seq));
  return buf;
}

void StoreU32(char* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

void StoreU64(char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

Status WriteFull(int fd, const char* data, size_t size,
                 const std::string& path) {
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("write", path);
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<std::string> ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return IoError("open", path);
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return IoError("read", path);
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status FsyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return IoError("open dir", dir);
  if (::fsync(fd) != 0) {
    Status s = IoError("fsync dir", dir);
    ::close(fd);
    return s;
  }
  ::close(fd);
  return Status::OK();
}

struct ScannedSegment {
  std::string file;  // basename
  uint64_t first_seq = 0;
};

// Everything a scan of the directory establishes.  `segments` holds only
// the surviving segments (the valid prefix); the last one's usable byte
// count is `tail_valid_bytes`.
struct ScanResult {
  bool manifest_exists = false;
  RecoveredLog log;
  bool has_snapshot = false;
  uint64_t snapshot_seq = 0;
  std::string snapshot_file;
  std::vector<ScannedSegment> segments;
  uint64_t tail_valid_bytes = 0;
  // True when the scan dropped segments or tail bytes relative to the
  // manifest, i.e. a writer should ftruncate / republish.
  bool truncated = false;
};

Result<ScanResult> ScanDir(const std::string& dir) {
  ScanResult out;
  const std::string manifest_path = dir + "/MANIFEST";
  if (!FileExists(manifest_path)) return out;  // fresh/empty log
  out.manifest_exists = true;

  ASSIGN_OR_RETURN(std::string manifest, ReadFile(manifest_path));
  std::istringstream in(manifest);
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    return Status::Internal("wal: malformed MANIFEST header in " + dir);
  }
  std::vector<ScannedSegment> manifest_segments;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string kind, file;
    uint64_t seq = 0;
    if (!(fields >> kind >> file >> seq)) {
      return Status::Internal("wal: malformed MANIFEST line \"" + line +
                              "\" in " + dir);
    }
    if (kind == "snapshot") {
      if (out.has_snapshot) {
        return Status::Internal("wal: MANIFEST lists two snapshots in " + dir);
      }
      out.has_snapshot = true;
      out.snapshot_file = file;
      out.snapshot_seq = seq;
    } else if (kind == "segment") {
      if (!manifest_segments.empty() &&
          seq <= manifest_segments.back().first_seq) {
        return Status::Internal("wal: MANIFEST segments out of order in " +
                                dir);
      }
      manifest_segments.push_back({file, seq});
    } else {
      return Status::Internal("wal: unknown MANIFEST entry \"" + kind +
                              "\" in " + dir);
    }
  }

  // The snapshot is load-bearing: the records it summarizes were pruned,
  // so unlike a damaged log tail there is nothing to fall back to.
  if (out.has_snapshot) {
    ASSIGN_OR_RETURN(std::string snap,
                     ReadFile(dir + "/" + out.snapshot_file));
    if (snap.size() < 8) {
      return Status::Internal("wal: snapshot file " + out.snapshot_file +
                              " is truncated");
    }
    const uint32_t crc = LoadU32(snap.data());
    const uint32_t len = LoadU32(snap.data() + 4);
    if (len != snap.size() - 8 ||
        Crc32(snap.data() + 4, snap.size() - 4) != crc) {
      return Status::Internal("wal: snapshot file " + out.snapshot_file +
                              " fails its checksum");
    }
    out.log.has_snapshot = true;
    out.log.snapshot_seq = out.snapshot_seq;
    out.log.snapshot_payload = snap.substr(8);
    out.log.last_seq = out.snapshot_seq;
  }

  // Walk the record stream.  The first torn/corrupt/out-of-sequence byte
  // ends the log: that segment keeps only its valid prefix and every
  // later segment is dropped entirely.
  uint64_t expected_seq = 0;  // 0 = take the first segment's declared start
  bool stopped = false;
  for (size_t si = 0; si < manifest_segments.size(); ++si) {
    const ScannedSegment& seg = manifest_segments[si];
    const std::string path = dir + "/" + seg.file;
    if (stopped) {
      struct stat st;
      if (::stat(path.c_str(), &st) == 0) {
        out.log.dropped_bytes += static_cast<uint64_t>(st.st_size);
      }
      out.truncated = true;
      continue;
    }
    std::string data;
    {
      auto read = ReadFile(path);
      if (!read.ok()) {
        // A listed segment that cannot be read at all ends the log here.
        stopped = true;
        out.truncated = true;
        continue;
      }
      data = std::move(read).value();
    }
    // Header must identify this exact segment.
    bool header_ok = data.size() >= kSegmentHeaderBytes &&
                     std::memcmp(data.data(), kSegmentMagic, 4) == 0 &&
                     LoadU32(data.data() + 4) == kSegmentVersion &&
                     LoadU64(data.data() + 8) == seg.first_seq;
    // Cross-segment continuity: a segment may not skip sequence numbers.
    if (header_ok && expected_seq != 0 && seg.first_seq != expected_seq) {
      header_ok = false;
    }
    if (header_ok && expected_seq == 0) {
      const uint64_t floor = out.has_snapshot ? out.snapshot_seq + 1 : 1;
      if (seg.first_seq > floor) header_ok = false;  // gap after snapshot
    }
    if (!header_ok) {
      out.log.dropped_bytes += data.size();
      out.truncated = true;
      stopped = true;
      continue;
    }
    if (expected_seq == 0) expected_seq = seg.first_seq;

    size_t offset = kSegmentHeaderBytes;
    while (offset < data.size()) {
      if (data.size() - offset < kRecordHeaderBytes) break;  // torn header
      const uint32_t crc = LoadU32(data.data() + offset);
      const uint32_t len = LoadU32(data.data() + offset + 4);
      const uint64_t seq = LoadU64(data.data() + offset + 8);
      if (len > kMaxRecordBytes) break;
      if (data.size() - offset - kRecordHeaderBytes < len) break;  // torn
      if (Crc32(static_cast<const void*>(data.data() + offset + 4),
                size_t{12} + len) != crc) break;
      if (seq != expected_seq) break;
      if (seq > out.log.snapshot_seq || !out.log.has_snapshot) {
        LogRecord rec;
        rec.seq = seq;
        rec.payload.assign(data.data() + offset + kRecordHeaderBytes, len);
        out.log.records.push_back(std::move(rec));
      }
      out.log.last_seq = seq;
      ++expected_seq;
      offset += kRecordHeaderBytes + len;
    }
    out.segments.push_back(seg);
    out.tail_valid_bytes = offset;
    if (offset < data.size()) {
      out.log.dropped_bytes += data.size() - offset;
      out.truncated = true;
      stopped = true;
    }
  }
  return out;
}

}  // namespace

Result<RecoveredLog> LogReader::ReadDir(const std::string& dir) {
  ASSIGN_OR_RETURN(ScanResult scan, ScanDir(dir));
  return std::move(scan.log);
}

LogWriter::~LogWriter() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

Result<std::unique_ptr<LogWriter>> LogWriter::Open(const std::string& dir,
                                                   const WalOptions& options) {
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return IoError("mkdir", dir);
  }
  ASSIGN_OR_RETURN(ScanResult scan, ScanDir(dir));

  std::unique_ptr<LogWriter> w(new LogWriter(dir, options));
  w->recovered_ = std::move(scan.log);
  for (const ScannedSegment& s : scan.segments) {
    w->segments_.push_back(Segment{s.file, s.first_seq});
  }
  w->has_snapshot_ = scan.has_snapshot;
  w->snapshot_seq_ = scan.snapshot_seq;
  w->snapshot_file_ = scan.snapshot_file;
  w->last_seq_ = w->recovered_.last_seq;

  if (w->segments_.empty()) {
    // Fresh directory, or every listed segment was damaged: start a new
    // tail right after the recovered history.
    RETURN_IF_ERROR(w->StartSegment(w->last_seq_ + 1));
  } else {
    const std::string tail_path = dir + "/" + w->segments_.back().file;
    if (scan.truncated &&
        ::truncate(tail_path.c_str(), static_cast<off_t>(
                       scan.tail_valid_bytes)) != 0) {
      return IoError("truncate", tail_path);
    }
    int fd = ::open(tail_path.c_str(), O_WRONLY | O_APPEND);
    if (fd < 0) return IoError("open", tail_path);
    w->fd_ = fd;
    w->segment_size_ = scan.tail_valid_bytes;
    RETURN_IF_ERROR(w->WriteManifest());
  }
  w->SweepUnreferenced();
  w->BindInstruments();
  return w;
}

void LogWriter::BindInstruments() {
  obs::Registry* registry = options_.registry;
  if (registry == nullptr) return;
  clock_ = obs::ResolveClock(options_.clock);
  append_latency_ns_ =
      registry->GetHistogram("currency_wal_append_latency_ns", {});
  fsync_latency_ns_ =
      registry->GetHistogram("currency_wal_fsync_latency_ns", {});
  appended_records_ =
      registry->GetCounter("currency_wal_appended_records_total", {});
  appended_bytes_ =
      registry->GetCounter("currency_wal_appended_bytes_total", {});
  fsyncs_ = registry->GetCounter("currency_wal_fsyncs_total", {});
  snapshot_writes_ =
      registry->GetCounter("currency_wal_snapshot_writes_total", {});
  // Recovery outcomes, recorded once per Open.
  registry->GetCounter("currency_wal_replayed_records_total", {})
      ->Increment(static_cast<int64_t>(recovered_.records.size()));
  registry->GetCounter("currency_wal_truncated_bytes_total", {})
      ->Increment(static_cast<int64_t>(recovered_.dropped_bytes));
  if (recovered_.has_snapshot) {
    registry->GetCounter("currency_wal_snapshot_restores_total", {})
        ->Increment();
  }
}

Result<uint64_t> LogWriter::Append(std::string_view payload) {
  obs::ScopedTimer timer(append_latency_ns_, clock_);
  if (payload.size() > kMaxRecordBytes) {
    return Status::InvalidArgument("wal: record payload exceeds 1 GiB");
  }
  if (segment_size_ >= options_.segment_bytes) {
    RETURN_IF_ERROR(Rotate());
  }
  const uint64_t seq = last_seq_ + 1;
  std::string rec(kRecordHeaderBytes, '\0');
  StoreU32(rec.data() + 4, static_cast<uint32_t>(payload.size()));
  StoreU64(rec.data() + 8, seq);
  rec.append(payload.data(), payload.size());
  StoreU32(rec.data(), Crc32(rec.data() + 4, rec.size() - 4));
  RETURN_IF_ERROR(WriteFull(fd_, rec.data(), rec.size(),
                            dir_ + "/" + segments_.back().file));
  segment_size_ += rec.size();
  last_seq_ = seq;
  if (appended_records_ != nullptr) {
    appended_records_->Increment();
    appended_bytes_->Increment(static_cast<int64_t>(rec.size()));
  }
  return seq;
}

Status LogWriter::Sync() {
  obs::ScopedTimer timer(fsync_latency_ns_, clock_);
  if (::fsync(fd_) != 0) {
    return IoError("fsync", dir_ + "/" + segments_.back().file);
  }
  if (fsyncs_ != nullptr) fsyncs_->Increment();
  return Status::OK();
}

Status LogWriter::WriteSnapshot(std::string_view payload) {
  // Freeze the record stream: everything <= last_seq_ lives in closed
  // segments once we rotate, so those segments become prunable.
  if (segment_size_ > kSegmentHeaderBytes) {
    RETURN_IF_ERROR(Rotate());
  }
  const uint64_t seq = last_seq_;
  const std::string name = SnapshotName(seq);
  const std::string path = dir_ + "/" + name;
  std::string blob(8, '\0');
  StoreU32(blob.data() + 4, static_cast<uint32_t>(payload.size()));
  blob.append(payload.data(), payload.size());
  StoreU32(blob.data(), Crc32(blob.data() + 4, blob.size() - 4));
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("open", path);
  Status s = WriteFull(fd, blob.data(), blob.size(), path);
  if (s.ok() && ::fsync(fd) != 0) s = IoError("fsync", path);
  ::close(fd);
  RETURN_IF_ERROR(s);

  const std::string old_snapshot =
      (has_snapshot_ && snapshot_file_ != name) ? snapshot_file_ : "";
  has_snapshot_ = true;
  snapshot_seq_ = seq;
  snapshot_file_ = name;
  // Drop segments whose records are all covered; the open tail segment
  // (first_seq == seq + 1 after the rotate) always stays.
  std::vector<std::string> pruned;
  while (segments_.size() > 1 && segments_[1].first_seq <= seq + 1) {
    pruned.push_back(segments_.front().file);
    segments_.erase(segments_.begin());
  }
  // The manifest rewrite is the commit point: after it, recovery uses
  // the new snapshot; before it, the old manifest still works and the
  // new snap file is merely unreferenced.
  RETURN_IF_ERROR(WriteManifest());
  for (const std::string& file : pruned) {
    ::unlink((dir_ + "/" + file).c_str());
  }
  if (!old_snapshot.empty()) {
    ::unlink((dir_ + "/" + old_snapshot).c_str());
  }
  if (snapshot_writes_ != nullptr) snapshot_writes_->Increment();
  return Status::OK();
}

Status LogWriter::WriteManifest() const {
  std::string text(kManifestHeader);
  text += '\n';
  if (has_snapshot_) {
    text += "snapshot " + snapshot_file_ + " " +
            std::to_string(snapshot_seq_) + "\n";
  }
  for (const Segment& seg : segments_) {
    text += "segment " + seg.file + " " + std::to_string(seg.first_seq) + "\n";
  }
  const std::string tmp = dir_ + "/MANIFEST.tmp";
  const std::string final_path = dir_ + "/MANIFEST";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("open", tmp);
  Status s = WriteFull(fd, text.data(), text.size(), tmp);
  if (s.ok() && ::fsync(fd) != 0) s = IoError("fsync", tmp);
  ::close(fd);
  RETURN_IF_ERROR(s);
  if (::rename(tmp.c_str(), final_path.c_str()) != 0) {
    return IoError("rename", tmp);
  }
  return FsyncDir(dir_);
}

Status LogWriter::StartSegment(uint64_t first_seq) {
  const std::string name = SegmentName(first_seq);
  const std::string path = dir_ + "/" + name;
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("open", path);
  char header[kSegmentHeaderBytes];
  std::memcpy(header, kSegmentMagic, 4);
  StoreU32(header + 4, kSegmentVersion);
  StoreU64(header + 8, first_seq);
  Status s = WriteFull(fd, header, sizeof(header), path);
  if (s.ok() && ::fsync(fd) != 0) s = IoError("fsync", path);
  if (!s.ok()) {
    ::close(fd);
    return s;
  }
  fd_ = fd;
  segment_size_ = kSegmentHeaderBytes;
  segments_.push_back(Segment{name, first_seq});
  return WriteManifest();
}

Status LogWriter::Rotate() {
  if (fd_ >= 0) {
    if (::fsync(fd_) != 0) {
      return IoError("fsync", dir_ + "/" + segments_.back().file);
    }
    ::close(fd_);
    fd_ = -1;
  }
  return StartSegment(last_seq_ + 1);
}

void LogWriter::SweepUnreferenced() const {
  std::set<std::string> referenced;
  for (const Segment& seg : segments_) referenced.insert(seg.file);
  if (has_snapshot_) referenced.insert(snapshot_file_);
  referenced.insert("MANIFEST");
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) return;
  std::vector<std::string> doomed;
  while (struct dirent* ent = ::readdir(d)) {
    const std::string name = ent->d_name;
    const bool wal_file =
        (name.rfind("wal-", 0) == 0 || name.rfind("snap-", 0) == 0 ||
         name == "MANIFEST.tmp");
    if (wal_file && referenced.count(name) == 0) doomed.push_back(name);
  }
  ::closedir(d);
  for (const std::string& name : doomed) {
    ::unlink((dir_ + "/" + name).c_str());
  }
}

}  // namespace currency::wal
