// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
// framing every write-ahead-log record and snapshot file (src/wal/log.h).
//
// Self-contained table-driven implementation: the container must not need
// zlib.  The incremental form (seed = previous crc) lets a record's
// header and payload be checksummed without concatenating buffers.

#ifndef CURRENCY_SRC_WAL_CRC32_H_
#define CURRENCY_SRC_WAL_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace currency::wal {

/// CRC-32 of `data`; chain blocks by passing the previous result as
/// `seed` (the standard pre/post inversion is handled internally, so
/// Crc32(b, Crc32(a)) == Crc32(a+b)).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

inline uint32_t Crc32(std::string_view data, uint32_t seed = 0) {
  return Crc32(data.data(), data.size(), seed);
}

}  // namespace currency::wal

#endif  // CURRENCY_SRC_WAL_CRC32_H_
