#include "src/order/partial_order.h"

#include <algorithm>
#include <sstream>

namespace currency {

PartialOrder::PartialOrder(int n)
    : n_(n), words_((n + 63) / 64), rows_(n, std::vector<uint64_t>(words_, 0)) {}

void PartialOrder::CloseOver(int u, int v) {
  // successors-or-self of v.
  std::vector<uint64_t> succ = rows_[v];
  succ[static_cast<size_t>(v) >> 6] |= (uint64_t{1} << (v & 63));
  // For every a that reaches u (or is u), OR in succ.
  for (int a = 0; a < n_; ++a) {
    if (a == u || Less(a, u)) {
      for (int w = 0; w < words_; ++w) rows_[a][w] |= succ[w];
    }
  }
}

Status PartialOrder::Resize(int n) {
  if (n < n_) {
    return Status::InvalidArgument("PartialOrder cannot shrink");
  }
  int new_words = (n + 63) / 64;
  for (auto& row : rows_) row.resize(new_words, 0);
  rows_.resize(n, std::vector<uint64_t>(new_words, 0));
  n_ = n;
  words_ = new_words;
  return Status::OK();
}

Status PartialOrder::Add(int u, int v) {
  if (u == v) {
    return Status::FailedPrecondition(
        "cannot add reflexive pair " + std::to_string(u) + " ≺ " +
        std::to_string(u) + " to a strict order");
  }
  if (Less(v, u)) {
    return Status::FailedPrecondition(
        "adding " + std::to_string(u) + " ≺ " + std::to_string(v) +
        " would create a cycle");
  }
  if (!Less(u, v)) CloseOver(u, v);
  return Status::OK();
}

bool PartialOrder::TryAdd(int u, int v) {
  if (u == v || Less(v, u)) return false;
  if (!Less(u, v)) CloseOver(u, v);
  return true;
}

Status PartialOrder::Merge(const PartialOrder& other) {
  if (other.n_ != n_) {
    return Status::InvalidArgument("merging orders of different sizes");
  }
  for (int u = 0; u < n_; ++u) {
    for (int v = 0; v < n_; ++v) {
      if (other.Less(u, v)) RETURN_IF_ERROR(Add(u, v));
    }
  }
  return Status::OK();
}

bool PartialOrder::ContainedIn(const PartialOrder& other) const {
  if (other.n_ != n_) return false;
  for (int u = 0; u < n_; ++u) {
    for (int w = 0; w < words_; ++w) {
      if (rows_[u][w] & ~other.rows_[u][w]) return false;
    }
  }
  return true;
}

bool PartialOrder::operator==(const PartialOrder& other) const {
  return n_ == other.n_ && rows_ == other.rows_;
}

int64_t PartialOrder::NumPairs() const {
  int64_t count = 0;
  for (int u = 0; u < n_; ++u) {
    for (int w = 0; w < words_; ++w) {
      count += __builtin_popcountll(rows_[u][w]);
    }
  }
  return count;
}

std::vector<std::pair<int, int>> PartialOrder::Pairs() const {
  std::vector<std::pair<int, int>> out;
  for (int u = 0; u < n_; ++u) {
    for (int v = 0; v < n_; ++v) {
      if (Less(u, v)) out.emplace_back(u, v);
    }
  }
  return out;
}

std::vector<int> PartialOrder::SinksWithin(const std::vector<int>& subset) const {
  std::vector<int> out;
  for (int u : subset) {
    bool has_successor = false;
    for (int v : subset) {
      if (Less(u, v)) {
        has_successor = true;
        break;
      }
    }
    if (!has_successor) out.push_back(u);
  }
  return out;
}

bool PartialOrder::TotalOn(const std::vector<int>& subset) const {
  for (size_t i = 0; i < subset.size(); ++i) {
    for (size_t j = i + 1; j < subset.size(); ++j) {
      if (!Comparable(subset[i], subset[j])) return false;
    }
  }
  return true;
}

int PartialOrder::MaxOf(const std::vector<int>& subset) const {
  if (subset.empty()) return -1;
  int best = subset[0];
  for (size_t i = 1; i < subset.size(); ++i) {
    if (Less(best, subset[i])) {
      best = subset[i];
    } else if (!Less(subset[i], best)) {
      return -1;  // incomparable pair: no unique maximum
    }
  }
  // Verify maximality against all subset elements (guards non-total input).
  for (int v : subset) {
    if (Less(best, v)) return -1;
  }
  return best;
}

std::vector<int> PartialOrder::TopologicalOrder(
    const std::vector<int>& subset) const {
  // Kahn-style selection keeps the output stable w.r.t. the input order.
  std::vector<int> result;
  std::vector<int> remaining = subset;
  while (!remaining.empty()) {
    // Pick a minimal element (no predecessor among remaining).
    size_t pick = remaining.size();
    for (size_t i = 0; i < remaining.size(); ++i) {
      bool has_pred = false;
      for (int v : remaining) {
        if (Less(v, remaining[i])) {
          has_pred = true;
          break;
        }
      }
      if (!has_pred) {
        pick = i;
        break;
      }
    }
    if (pick == remaining.size()) break;  // cycle: cannot happen (invariant)
    result.push_back(remaining[pick]);
    remaining.erase(remaining.begin() + pick);
  }
  return result;
}

std::string PartialOrder::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (auto [u, v] : Pairs()) {
    if (!first) os << ", ";
    first = false;
    os << u << "≺" << v;
  }
  os << "}";
  return os.str();
}

}  // namespace currency
