// Enumeration of linear extensions of a partial order restricted to a
// subset of its carrier.  A completion of a temporal instance (Section 2)
// chooses, for every (attribute, entity) pair, one linear extension of the
// initial currency order on that entity's tuples; the brute-force oracle
// and several tests enumerate them exhaustively.

#ifndef CURRENCY_SRC_ORDER_LINEAR_EXTENSIONS_H_
#define CURRENCY_SRC_ORDER_LINEAR_EXTENSIONS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/order/partial_order.h"

namespace currency {

/// Calls `visit` once per linear extension of `order` restricted to
/// `subset`.  The argument is the sequence least-current-first (so
/// sequence.back() is the most current element).  Enumeration stops early
/// if `visit` returns false.  Returns the number of extensions visited.
int64_t EnumerateLinearExtensions(
    const PartialOrder& order, const std::vector<int>& subset,
    const std::function<bool(const std::vector<int>&)>& visit);

/// Number of linear extensions of `order` restricted to `subset`.
/// Exponential in |subset| in the worst case; intended for small groups.
int64_t CountLinearExtensions(const PartialOrder& order,
                              const std::vector<int>& subset);

}  // namespace currency

#endif  // CURRENCY_SRC_ORDER_LINEAR_EXTENSIONS_H_
