#include "src/order/linear_extensions.h"

namespace currency {

namespace {

/// Backtracking enumerator: repeatedly appends any remaining element all of
/// whose remaining predecessors have been placed.
class Enumerator {
 public:
  Enumerator(const PartialOrder& order, const std::vector<int>& subset,
             const std::function<bool(const std::vector<int>&)>& visit)
      : order_(order), subset_(subset), visit_(visit) {
    used_.assign(subset.size(), false);
  }

  int64_t Run() {
    prefix_.clear();
    prefix_.reserve(subset_.size());
    stop_ = false;
    count_ = 0;
    Recurse();
    return count_;
  }

 private:
  void Recurse() {
    if (stop_) return;
    if (prefix_.size() == subset_.size()) {
      ++count_;
      if (!visit_(prefix_)) stop_ = true;
      return;
    }
    for (size_t i = 0; i < subset_.size(); ++i) {
      if (used_[i]) continue;
      int candidate = subset_[i];
      // All predecessors of `candidate` inside the subset must be placed.
      bool ready = true;
      for (size_t j = 0; j < subset_.size(); ++j) {
        if (!used_[j] && j != i && order_.Less(subset_[j], candidate)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      used_[i] = true;
      prefix_.push_back(candidate);
      Recurse();
      prefix_.pop_back();
      used_[i] = false;
      if (stop_) return;
    }
  }

  const PartialOrder& order_;
  const std::vector<int>& subset_;
  const std::function<bool(const std::vector<int>&)>& visit_;
  std::vector<bool> used_;
  std::vector<int> prefix_;
  bool stop_ = false;
  int64_t count_ = 0;
};

}  // namespace

int64_t EnumerateLinearExtensions(
    const PartialOrder& order, const std::vector<int>& subset,
    const std::function<bool(const std::vector<int>&)>& visit) {
  Enumerator e(order, subset, visit);
  return e.Run();
}

int64_t CountLinearExtensions(const PartialOrder& order,
                              const std::vector<int>& subset) {
  return EnumerateLinearExtensions(order, subset,
                                   [](const std::vector<int>&) { return true; });
}

}  // namespace currency
