// PartialOrder: a strict partial order over elements {0, ..., n-1},
// maintained transitively closed.  This is the substrate for the paper's
// currency orders ≺_A: each temporal instance keeps one PartialOrder per
// data attribute over its TupleIds.
//
// The implementation stores the full reachability relation as row bitsets
// and updates it incrementally on edge insertion (O(n^2/64) per edge), so
// queries Less(u,v) are O(1).  This trades memory for the query speed the
// solvers need; instances in this problem domain are small-to-medium
// (currency reasoning happens per entity group).

#ifndef CURRENCY_SRC_ORDER_PARTIAL_ORDER_H_
#define CURRENCY_SRC_ORDER_PARTIAL_ORDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace currency {

/// A strict partial order on {0..n-1}, always transitively closed.
class PartialOrder {
 public:
  PartialOrder() = default;
  /// Creates the empty order over `n` elements.
  explicit PartialOrder(int n);

  /// Number of elements in the carrier set.
  int size() const { return n_; }

  /// True iff u ≺ v.
  bool Less(int u, int v) const {
    return (rows_[u][static_cast<size_t>(v) >> 6] >> (v & 63)) & 1u;
  }

  /// True iff u ≺ v or v ≺ u.
  bool Comparable(int u, int v) const { return Less(u, v) || Less(v, u); }

  /// Grows the carrier set to `n` elements (new elements incomparable to
  /// everything).  Shrinking is not supported and fails.
  Status Resize(int n);

  /// Inserts u ≺ v (plus all transitive consequences).
  /// Fails with FailedPrecondition if u == v or v ≺ u already holds
  /// (which would create a cycle); the order is left unchanged.
  Status Add(int u, int v);

  /// Like Add but only reports whether the edge is admissible, without
  /// allocating an error message (hot path in solvers).
  bool TryAdd(int u, int v);

  /// Unions `other` (same carrier size) into this order.
  /// Fails if the union would contain a cycle.
  Status Merge(const PartialOrder& other);

  /// True iff every pair of this order also holds in `other`
  /// (i.e. this ⊆ other, the containment used by COP, Section 3).
  bool ContainedIn(const PartialOrder& other) const;

  /// True iff the two orders have exactly the same pairs.
  bool operator==(const PartialOrder& other) const;

  /// Number of ordered pairs u ≺ v.
  int64_t NumPairs() const;

  /// All ordered pairs (u, v) with u ≺ v, lexicographically.
  std::vector<std::pair<int, int>> Pairs() const;

  /// Elements of `subset` with no successor inside `subset` (the "sinks"
  /// of Theorem 6.1's algorithm: candidates for the most current tuple).
  std::vector<int> SinksWithin(const std::vector<int>& subset) const;

  /// Elements of `subset` that are maximal: no other subset element is
  /// greater.  Alias of SinksWithin for readability at call sites.
  std::vector<int> MaximaWithin(const std::vector<int>& subset) const {
    return SinksWithin(subset);
  }

  /// True iff `subset` is totally ordered by this order.
  bool TotalOn(const std::vector<int>& subset) const;

  /// The unique maximum of `subset` under this order, or -1 if the subset
  /// is not totally ordered / empty.
  int MaxOf(const std::vector<int>& subset) const;

  /// A topological ordering of `subset` consistent with the order.
  std::vector<int> TopologicalOrder(const std::vector<int>& subset) const;

  /// Human-readable list of pairs, e.g. "{0≺2, 1≺2}".
  std::string ToString() const;

 private:
  void SetBit(int u, int v) {
    rows_[u][static_cast<size_t>(v) >> 6] |= (uint64_t{1} << (v & 63));
  }
  /// Closure step for a new edge u ≺ v: connect all predecessors-or-self
  /// of u to all successors-or-self of v.
  void CloseOver(int u, int v);

  int n_ = 0;
  int words_ = 0;
  /// rows_[u] is the successor bitset of u: bit v set iff u ≺ v.
  std::vector<std::vector<uint64_t>> rows_;
};

}  // namespace currency

#endif  // CURRENCY_SRC_ORDER_PARTIAL_ORDER_H_
