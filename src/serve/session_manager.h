// serve::SessionManager — many named specifications (tenants) served from
// one process on one shared thread pool, with per-tenant admission
// control.
//
// Layered on CurrencySession's snapshot isolation (serve/epoch.h): each
// tenant owns an independent session, every session borrows the manager's
// pool (SessionOptions::pool), and the pool's multi-region fork-join
// (exec/thread_pool.h) interleaves concurrently running batches fairly —
// workers rotate round-robin across open regions one task at a time, so
// one tenant's 1024-component batch cannot monopolize the workers against
// another tenant's single-component check.
//
// Fairness at the execution layer cannot bound *submission*, so every
// batch additionally passes the tenant's exec::AdmissionGate: at most
// `max_active_batches` of a tenant run at once, at most
// `max_queued_batches` wait for a slot, and over-quota submission is
// rejected immediately with ResourceExhausted — turned away, never
// deadlocked (the maxConnections pattern of networked databases: a hard
// per-client cap with a small accept queue in front of shared workers).
// Capacity quotas guard registration instead: a specification exceeding
// the tenant's component-count cap never gets a session, and the tenant's
// CCQA enumeration budget clamps the session's max_current_instances.
//
// Lifecycle: Register builds the tenant's first epoch; Drop unlinks the
// tenant immediately while in-flight batches finish on the shared_ptr
// they hold (epochs pin specs, entries pin sessions — the same
// refcounting idea at both layers).
//
// Durability: every serving-state mutation — Register, Mutate, Drop —
// is a serializable Command (serve/command.h) applied through the single
// ApplyCommand choke point.  A manager created with Open(dir) addition-
// ally appends each command to a write-ahead log (src/wal) *after* it
// applies and *before* the caller sees success:
//
//   apply (validate) → append → fsync → acknowledge
//
// Apply-then-log means a REJECTED mutation is never logged (the log is
// exactly the accepted history, so replay cannot fail), and fsync-
// before-acknowledge means every acknowledged mutation survives a crash
// — a crash between apply and fsync can lose only commands whose callers
// never got an OK.  One commit mutex held across apply + append makes
// log order equal apply order, so Open(dir) after a crash rebuilds the
// exact serving state by replaying: decode each command, push it through
// the same ApplyCommand the live requests used.  Periodic warm snapshots
// (spec bytes + solved component verdicts keyed by content fingerprint)
// bound replay length and let a restart skip re-solving unchanged
// components.  Reads (query batches) are never logged.
//
// Caveat, enforced by convention not the compiler: mutating a session
// obtained from Lookup() directly bypasses the log.  Lookup is for
// inspection and queries; route every mutation through the manager.

#ifndef CURRENCY_SRC_SERVE_SESSION_MANAGER_H_
#define CURRENCY_SRC_SERVE_SESSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/exec/semaphore.h"
#include "src/exec/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/serve/command.h"
#include "src/serve/session.h"
#include "src/wal/log.h"

namespace currency::serve {

/// Options fixed at manager creation.  (TenantQuotas lives in
/// serve/command.h — it rides inside the logged kRegister command.)
struct ManagerOptions {
  /// Size of the one pool every tenant shares (counts the calling
  /// thread).
  int num_threads = 1;
  /// Defaults for every tenant's session.  `pool` and `num_threads` in
  /// here are ignored — the manager always lends its own pool.
  SessionOptions session;
  /// Durable managers only: write a warm snapshot automatically after
  /// this many logged commands (0 = only on explicit Snapshot()).
  /// Snapshots bound replay length and prune covered log segments.
  int64_t snapshot_every = 0;
  /// Durable managers only: log segment rotation threshold in bytes.
  uint64_t segment_bytes = 8u << 20;
  /// Metrics registry shared by the manager, its pool, its WAL and every
  /// tenant session (labelled per tenant).  Not owned; must outlive the
  /// manager.  Null: the manager creates a private registry, reachable
  /// via registry() — the default keeps independent managers (and tests)
  /// from mixing numbers.
  obs::Registry* registry = nullptr;
  /// Request tracing configuration; the manager owns one obs::Tracer
  /// built from this.  Disabled by default — an enabled tracer records a
  /// TraceSpan per admitted batch (admission wait, epoch pin, solve with
  /// SAT/chase counter deltas) into the bounded ring, and slow requests
  /// into the slow log.  Tracing never changes answers or enumeration
  /// order; see src/obs/trace.h for the cost contract.
  obs::TraceOptions trace;
};

/// A point-in-time view of one tenant's admission state — a thin
/// snapshot over the tenant's AdmissionGate and session instruments (the
/// same numbers appear in MetricsReport() under currency_exec_admission_*
/// and currency_serve_*, labelled with the tenant name).
struct TenantStats {
  /// Batches admitted and currently running.
  int active_batches = 0;
  /// Batches blocked in the admission queue.
  int queued_batches = 0;
  /// Largest admission-queue depth ever observed (high-water mark).
  int queue_depth_high_water = 0;
  /// Batches rejected over quota (monotonic).
  int64_t rejected_batches = 0;
  /// The tenant session's counters.
  SessionStats session;
};

/// Hosts many named CurrencySessions on one shared pool; see the file
/// comment.  All methods are thread-safe.
class SessionManager {
 public:
  /// An in-memory (non-durable) manager: no log, no recovery.
  static Result<std::unique_ptr<SessionManager>> Create(
      const ManagerOptions& options = {});

  /// A durable manager rooted at log directory `dir` (created when
  /// absent).  Recovery runs before this returns: the newest warm
  /// snapshot re-registers every tenant and seeds its solved component
  /// verdicts by content fingerprint, then the remaining log records
  /// replay through ApplyCommand in log order.  A torn or corrupt log
  /// tail is truncated (those commands were never acknowledged); a
  /// record that decodes but fails to apply is an Internal error —
  /// accepted history must replay.
  static Result<std::unique_ptr<SessionManager>> Open(
      const std::string& dir, const ManagerOptions& options = {});

  /// Registers `spec` (moved in) under `tenant`, building its first
  /// epoch.  FailedPrecondition when the name is taken; ResourceExhausted when
  /// the specification exceeds quotas.max_components; InvalidArgument on
  /// nonsensical quotas.
  Status Register(const std::string& tenant, core::Specification spec,
                  const TenantQuotas& quotas = {});

  /// Unlinks the tenant.  In-flight batches finish normally on the
  /// session they hold; new submissions get NotFound.
  Status Drop(const std::string& tenant);

  /// The tenant's session, for direct (admission-exempt) inspection —
  /// spec(), stats(), num_components().  Batches should go through the
  /// manager's wrappers below so the tenant's quotas apply.
  Result<std::shared_ptr<CurrencySession>> Lookup(
      const std::string& tenant) const;

  /// Registered tenant names, sorted.
  std::vector<std::string> Tenants() const;

  Result<TenantStats> StatsFor(const std::string& tenant) const;

  /// The registry every layer under this manager publishes into: tenant
  /// sessions (currency_serve_*, currency_sat_*, currency_chase_*),
  /// admission gates (currency_exec_admission_*), the shared pool
  /// (currency_exec_pool_*) and the WAL (currency_wal_*).
  obs::Registry* registry() const { return registry_; }
  /// The manager's tracer; enable via ManagerOptions::trace or
  /// tracer()->set_enabled(true) at runtime.
  obs::Tracer* tracer() const { return tracer_.get(); }
  /// One coherent metrics snapshot across serve/sat/chase/wal/exec —
  /// registry()->Expose(format) by another name.
  std::string MetricsReport(
      obs::ExpositionFormat format = obs::ExpositionFormat::kText) const {
    return registry_->Expose(format);
  }

  /// Admission-controlled batch entry points: each admits the caller
  /// through the tenant's gate (blocking briefly in the bounded queue,
  /// ResourceExhausted beyond it), runs the batch on the tenant's
  /// session, and releases the slot.  Distinct tenants' batches — and up
  /// to max_active_batches of one tenant's — run concurrently on the
  /// shared pool.
  Result<bool> CpsCheck(const std::string& tenant);
  Result<std::vector<bool>> CopBatch(
      const std::string& tenant,
      const std::vector<core::CurrencyOrderQuery>& queries);
  Result<std::vector<bool>> DcipBatch(
      const std::string& tenant, const std::vector<std::string>& relations);
  Result<std::vector<CcqaResponse>> CcqaBatch(
      const std::string& tenant, const std::vector<CcqaRequest>& requests);
  /// Mutations pass admission like queries: a tenant's edit stream counts
  /// against the same in-flight budget.  On a durable manager, OK means
  /// the edit batch is applied AND fsynced to the log.
  Status Mutate(const std::string& tenant,
                const std::vector<core::TupleEdit>& edits);

  /// Durable managers: writes a warm snapshot of every tenant (full spec
  /// bytes + solved component verdicts) and prunes covered log segments.
  /// FailedPrecondition on an in-memory manager.
  Status Snapshot();

  /// Test seam: when set, runs after a batch is admitted (slot held) and
  /// before it executes, with the tenant name.  Lets tests hold admission
  /// slots at a barrier to observe quota enforcement deterministically.
  void SetAdmittedHookForTesting(
      std::function<void(const std::string&)> hook);

 private:
  /// One tenant: session + admission gate, pinned by in-flight batches
  /// via shared_ptr so Drop never invalidates a running batch.  The
  /// quotas are kept so snapshots can re-encode the registration.
  struct Tenant {
    Tenant(std::shared_ptr<CurrencySession> s, const TenantQuotas& q)
        : session(std::move(s)),
          quotas(q),
          gate(q.max_active_batches, q.max_queued_batches) {}
    std::shared_ptr<CurrencySession> session;
    TenantQuotas quotas;
    /// Owns the tenant's admission counters (admitted/queued/rejected,
    /// queue high-water); StatsFor reads them through the gate.
    exec::AdmissionGate gate;
    /// currency_serve_admission_wait_ns{tenant=...}; timed around every
    /// gate.Enter (compiles out under CURRENCY_OBS_OFF).
    obs::Histogram* admission_wait = nullptr;
  };

  explicit SessionManager(const ManagerOptions& options);

  Result<std::shared_ptr<Tenant>> Find(const std::string& tenant) const;

  /// Binds the tenant's gate and wait-time instruments to registry_,
  /// labelled {tenant=...}.  Runs before the tenant is published.
  void BindTenantInstruments(const std::string& tenant, Tenant* entry);

  /// Admission bracket shared by every wrapper: admit, hook, run, leave —
  /// wrapped in a TraceSpan root (`procedure` names it) whose first stage
  /// is the admission wait.
  template <typename Fn>
  auto WithAdmission(const std::string& tenant, const char* procedure,
                     const Fn& fn)
      -> decltype(fn(std::declval<CurrencySession&>()));

  /// THE choke point: every serving-state mutation — live, replayed or
  /// snapshot-restored — is one of these state transitions.  Pure apply:
  /// validates and mutates in-memory state, never touches the log.
  Status ApplyCommand(Command command);

  /// The durable bracket every public mutation routes through: under
  /// log_mu_, encode (durable managers), ApplyCommand, append + fsync,
  /// auto-snapshot when due.  Commands rejected by apply are not logged.
  Status Commit(Command command);

  /// Snapshot body; requires log_mu_ (and wal_ non-null).
  Status WriteSnapshotLocked();

  ManagerOptions options_;
  /// Owned registry when options_.registry is null.  Declared before
  /// pool_ (whose instruments live in it) and used by everything below.
  std::unique_ptr<obs::Registry> own_registry_;
  obs::Registry* registry_ = nullptr;
  std::unique_ptr<obs::Tracer> tracer_;
  exec::ThreadPool pool_;
  mutable std::mutex mu_;  // guards tenants_ and hook_
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
  std::function<void(const std::string&)> hook_;
  /// Null for in-memory managers.  log_mu_ linearizes apply+append so
  /// the log's record order IS the apply order; it nests outside mu_
  /// (Commit → ApplyCommand → Find) and the sessions' writer locks.
  std::mutex log_mu_;
  std::unique_ptr<wal::LogWriter> wal_;
  int64_t commands_since_snapshot_ = 0;  // guarded by log_mu_
};

}  // namespace currency::serve

#endif  // CURRENCY_SRC_SERVE_SESSION_MANAGER_H_
