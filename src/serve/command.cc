#include "src/serve/command.h"

#include "src/wire/spec.h"
#include "src/wire/wire.h"

namespace currency::serve {

namespace {

constexpr char kCommandMagic[4] = {'C', 'C', 'M', 'D'};
constexpr uint32_t kCommandVersion = 1;
constexpr char kSnapshotMagic[4] = {'C', 'S', 'N', 'P'};
constexpr uint32_t kSnapshotVersion = 1;

void AppendQuotas(const TenantQuotas& quotas, wire::Writer* w) {
  w->I32(quotas.max_active_batches);
  w->I32(quotas.max_queued_batches);
  w->I32(quotas.max_components);
  w->I64(quotas.max_current_instances);
}

Result<TenantQuotas> ReadQuotas(wire::Reader* r) {
  TenantQuotas quotas;
  ASSIGN_OR_RETURN(quotas.max_active_batches, r->I32());
  ASSIGN_OR_RETURN(quotas.max_queued_batches, r->I32());
  ASSIGN_OR_RETURN(quotas.max_components, r->I32());
  ASSIGN_OR_RETURN(quotas.max_current_instances, r->I64());
  return quotas;
}

}  // namespace

std::string EncodeCommand(const Command& command) {
  wire::Writer w;
  w.Magic(kCommandMagic, kCommandVersion);
  w.U8(static_cast<uint8_t>(command.type));
  w.Str(command.tenant);
  switch (command.type) {
    case Command::Type::kRegister:
      AppendQuotas(command.quotas, &w);
      w.Str(wire::SerializeSpecification(command.spec));
      break;
    case Command::Type::kMutate:
      w.Str(wire::SerializeTupleEdits(command.edits));
      break;
    case Command::Type::kDrop:
      break;
  }
  return w.Take();
}

Result<Command> DecodeCommand(std::string_view bytes) {
  wire::Reader r(bytes);
  RETURN_IF_ERROR(r.Magic(kCommandMagic, kCommandVersion));
  ASSIGN_OR_RETURN(uint8_t type, r.U8());
  Command command;
  ASSIGN_OR_RETURN(command.tenant, r.Str());
  switch (type) {
    case static_cast<uint8_t>(Command::Type::kRegister): {
      command.type = Command::Type::kRegister;
      ASSIGN_OR_RETURN(command.quotas, ReadQuotas(&r));
      ASSIGN_OR_RETURN(std::string spec_wire, r.Str());
      ASSIGN_OR_RETURN(command.spec, wire::ParseSpecification(spec_wire));
      break;
    }
    case static_cast<uint8_t>(Command::Type::kMutate): {
      command.type = Command::Type::kMutate;
      ASSIGN_OR_RETURN(std::string edits_wire, r.Str());
      ASSIGN_OR_RETURN(command.edits, wire::ParseTupleEdits(edits_wire));
      break;
    }
    case static_cast<uint8_t>(Command::Type::kDrop):
      command.type = Command::Type::kDrop;
      break;
    default:
      return Status::InvalidArgument("CCMD: unknown command type " +
                                     std::to_string(type));
  }
  RETURN_IF_ERROR(r.ExpectEnd());
  return command;
}

std::string EncodeSnapshot(const std::vector<TenantSnapshot>& tenants) {
  wire::Writer w;
  w.Magic(kSnapshotMagic, kSnapshotVersion);
  w.U32(static_cast<uint32_t>(tenants.size()));
  for (const TenantSnapshot& t : tenants) {
    w.Str(t.tenant);
    AppendQuotas(t.quotas, &w);
    w.Str(t.spec_wire);
    w.U32(static_cast<uint32_t>(t.verdicts.size()));
    for (const auto& [fingerprint, sat] : t.verdicts) {
      w.U64(fingerprint);
      w.U8(sat ? 1 : 0);
    }
  }
  return w.Take();
}

Result<std::vector<TenantSnapshot>> DecodeSnapshot(std::string_view bytes) {
  wire::Reader r(bytes);
  RETURN_IF_ERROR(r.Magic(kSnapshotMagic, kSnapshotVersion));
  ASSIGN_OR_RETURN(uint32_t num_tenants, r.U32());
  RETURN_IF_ERROR(r.CheckCount(num_tenants, /*min_bytes_per_item=*/28));
  std::vector<TenantSnapshot> tenants;
  tenants.reserve(num_tenants);
  for (uint32_t i = 0; i < num_tenants; ++i) {
    TenantSnapshot t;
    ASSIGN_OR_RETURN(t.tenant, r.Str());
    ASSIGN_OR_RETURN(t.quotas, ReadQuotas(&r));
    ASSIGN_OR_RETURN(t.spec_wire, r.Str());
    ASSIGN_OR_RETURN(uint32_t num_verdicts, r.U32());
    RETURN_IF_ERROR(r.CheckCount(num_verdicts, /*min_bytes_per_item=*/9));
    t.verdicts.reserve(num_verdicts);
    for (uint32_t v = 0; v < num_verdicts; ++v) {
      ASSIGN_OR_RETURN(uint64_t fingerprint, r.U64());
      ASSIGN_OR_RETURN(uint8_t sat, r.U8());
      t.verdicts.emplace_back(fingerprint, sat != 0);
    }
    tenants.push_back(std::move(t));
  }
  RETURN_IF_ERROR(r.ExpectEnd());
  return tenants;
}

}  // namespace currency::serve
