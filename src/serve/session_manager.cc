#include "src/serve/session_manager.h"

#include <utility>

#include "src/wire/spec.h"

namespace currency::serve {

SessionManager::SessionManager(const ManagerOptions& options)
    : options_(options),
      own_registry_(options.registry == nullptr ? new obs::Registry()
                                                : nullptr),
      registry_(options.registry != nullptr ? options.registry
                                            : own_registry_.get()),
      tracer_(std::make_unique<obs::Tracer>(options.trace)),
      pool_(options.num_threads) {
  exec::ThreadPool::Instruments pool_instruments;
  pool_instruments.regions =
      registry_->GetCounter("currency_exec_pool_regions_total");
  pool_instruments.tasks =
      registry_->GetCounter("currency_exec_pool_tasks_total");
  pool_instruments.open_regions =
      registry_->GetGauge("currency_exec_pool_open_regions");
  pool_instruments.busy_workers =
      registry_->GetGauge("currency_exec_pool_busy_workers");
  pool_.BindInstruments(pool_instruments);
  registry_->GetGauge("currency_exec_pool_threads")
      ->Set(pool_.num_threads());
}

Result<std::unique_ptr<SessionManager>> SessionManager::Create(
    const ManagerOptions& options) {
  if (options.num_threads < 1) {
    return Status::InvalidArgument("ManagerOptions.num_threads must be >= 1");
  }
  return std::unique_ptr<SessionManager>(new SessionManager(options));
}

Result<std::unique_ptr<SessionManager>> SessionManager::Open(
    const std::string& dir, const ManagerOptions& options) {
  ASSIGN_OR_RETURN(std::unique_ptr<SessionManager> manager, Create(options));
  wal::WalOptions wal_options;
  wal_options.segment_bytes = options.segment_bytes;
  wal_options.registry = manager->registry_;
  wal_options.clock = options.trace.clock;
  ASSIGN_OR_RETURN(manager->wal_, wal::LogWriter::Open(dir, wal_options));
  wal::RecoveredLog recovered = manager->wal_->TakeRecovered();
  // Phase 1: the warm snapshot re-registers every tenant (same choke
  // point as a live Register) and seeds its solved verdicts — components
  // whose content fingerprint still matches skip their base solve.
  if (recovered.has_snapshot) {
    ASSIGN_OR_RETURN(std::vector<TenantSnapshot> tenants,
                     DecodeSnapshot(recovered.snapshot_payload));
    for (TenantSnapshot& t : tenants) {
      Command command;
      command.type = Command::Type::kRegister;
      command.tenant = std::move(t.tenant);
      command.quotas = t.quotas;
      ASSIGN_OR_RETURN(command.spec, wire::ParseSpecification(t.spec_wire));
      const std::string name = command.tenant;
      Status applied = manager->ApplyCommand(std::move(command));
      if (!applied.ok()) {
        return Status::Internal("wal snapshot restore: tenant '" + name +
                                "': " + applied.ToString());
      }
      ASSIGN_OR_RETURN(std::shared_ptr<CurrencySession> session,
                       manager->Lookup(name));
      session->AdoptSolvedVerdicts(t.verdicts);
    }
  }
  // Phase 2: replay the tail of accepted commands in log order.  These
  // all applied cleanly once, so a failure here means the log and the
  // snapshot disagree — surface it, don't serve half a recovery.
  for (wal::LogRecord& record : recovered.records) {
    ASSIGN_OR_RETURN(Command command, DecodeCommand(record.payload));
    Status applied = manager->ApplyCommand(std::move(command));
    if (!applied.ok()) {
      return Status::Internal(
          "wal replay: record " + std::to_string(record.seq) +
          " failed to apply: " + applied.ToString());
    }
  }
  return manager;
}

Status SessionManager::ApplyCommand(Command command) {
  switch (command.type) {
    case Command::Type::kRegister: {
      const std::string& tenant = command.tenant;
      const TenantQuotas& quotas = command.quotas;
      if (tenant.empty()) {
        return Status::InvalidArgument("tenant name must be non-empty");
      }
      if (quotas.max_active_batches < 1) {
        return Status::InvalidArgument(
            "TenantQuotas.max_active_batches must be >= 1");
      }
      if (quotas.max_queued_batches < 0) {
        return Status::InvalidArgument(
            "TenantQuotas.max_queued_batches must be >= 0");
      }
      {
        // Name check before the (possibly expensive) epoch build;
        // re-checked at insertion since the build runs unlocked.
        std::lock_guard<std::mutex> lock(mu_);
        if (tenants_.count(tenant) > 0) {
          return Status::FailedPrecondition("tenant '" + tenant +
                                       "' is already registered");
        }
      }
      SessionOptions session_options = options_.session;
      session_options.pool = &pool_;
      session_options.num_threads = pool_.num_threads();
      // Every tenant session publishes into the manager's registry,
      // distinguished by the tenant label, and shares the manager's
      // tracer and clock.
      session_options.registry = registry_;
      session_options.instance_label = tenant;
      session_options.tracer = tracer_.get();
      session_options.clock = options_.trace.clock;
      if (quotas.max_current_instances > 0 &&
          quotas.max_current_instances <
              session_options.max_current_instances) {
        session_options.max_current_instances = quotas.max_current_instances;
      }
      ASSIGN_OR_RETURN(
          std::shared_ptr<CurrencySession> session,
          CurrencySession::Create(std::move(command.spec), session_options));
      if (quotas.max_components > 0 &&
          session->num_components() > quotas.max_components) {
        return Status::ResourceExhausted(
            "tenant '" + tenant + "' exceeds its component quota: " +
            std::to_string(session->num_components()) + " > " +
            std::to_string(quotas.max_components));
      }
      auto entry = std::make_shared<Tenant>(std::move(session), quotas);
      // Bind before publishing: once the tenant is in the map another
      // thread may Enter its gate, and BindInstruments must not race.
      BindTenantInstruments(tenant, entry.get());
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] = tenants_.try_emplace(tenant, std::move(entry));
      (void)it;
      if (!inserted) {
        return Status::FailedPrecondition("tenant '" + tenant +
                                     "' is already registered");
      }
      return Status::OK();
    }
    case Command::Type::kMutate: {
      ASSIGN_OR_RETURN(std::shared_ptr<Tenant> entry, Find(command.tenant));
      return entry->session->Mutate(command.edits);
    }
    case Command::Type::kDrop: {
      std::lock_guard<std::mutex> lock(mu_);
      if (tenants_.erase(command.tenant) == 0) {
        return Status::NotFound("tenant '" + command.tenant +
                                "' is not registered");
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown command type");
}

Status SessionManager::Commit(Command command) {
  // One mutex across apply + append: the log's record order is exactly
  // the order the state transitions happened in, which is what makes
  // replay reproduce the state.
  std::lock_guard<std::mutex> lock(log_mu_);
  std::string payload;
  if (wal_ != nullptr) {
    // Encode before apply — apply consumes the command's spec/edits.
    payload = EncodeCommand(command);
  }
  RETURN_IF_ERROR(ApplyCommand(std::move(command)));
  if (wal_ != nullptr) {
    // Apply-then-log: only accepted commands reach the log.  If the
    // append or fsync fails the in-memory state is ahead of the log and
    // the caller gets the error — the command was NOT acknowledged, so
    // losing it on a crash is within contract.
    RETURN_IF_ERROR(wal_->Append(payload).status());
    RETURN_IF_ERROR(wal_->Sync());
    if (options_.snapshot_every > 0 &&
        ++commands_since_snapshot_ >= options_.snapshot_every) {
      RETURN_IF_ERROR(WriteSnapshotLocked());
    }
  }
  return Status::OK();
}

Status SessionManager::Register(const std::string& tenant,
                                core::Specification spec,
                                const TenantQuotas& quotas) {
  Command command;
  command.type = Command::Type::kRegister;
  command.tenant = tenant;
  command.quotas = quotas;
  command.spec = std::move(spec);
  return Commit(std::move(command));
}

Status SessionManager::Drop(const std::string& tenant) {
  Command command;
  command.type = Command::Type::kDrop;
  command.tenant = tenant;
  return Commit(std::move(command));
}

Status SessionManager::Snapshot() {
  std::lock_guard<std::mutex> lock(log_mu_);
  if (wal_ == nullptr) {
    return Status::FailedPrecondition(
        "Snapshot() requires a durable manager (Open, not Create)");
  }
  return WriteSnapshotLocked();
}

Status SessionManager::WriteSnapshotLocked() {
  // log_mu_ is held: no logged mutation can interleave, so the exported
  // state corresponds exactly to the log position last_seq().
  std::vector<std::pair<std::string, std::shared_ptr<Tenant>>> entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries.reserve(tenants_.size());
    for (const auto& [name, entry] : tenants_) {
      entries.emplace_back(name, entry);
    }
  }
  std::vector<TenantSnapshot> tenants;
  tenants.reserve(entries.size());
  for (auto& [name, entry] : entries) {
    TenantSnapshot t;
    t.tenant = name;
    t.quotas = entry->quotas;
    entry->session->ExportWarmState(&t.spec_wire, &t.verdicts);
    tenants.push_back(std::move(t));
  }
  RETURN_IF_ERROR(wal_->WriteSnapshot(EncodeSnapshot(tenants)));
  commands_since_snapshot_ = 0;
  return Status::OK();
}

void SessionManager::BindTenantInstruments(const std::string& tenant,
                                           Tenant* entry) {
  const obs::Labels labels = {{"tenant", tenant}};
  exec::AdmissionGate::Instruments gate;
  gate.admitted =
      registry_->GetCounter("currency_exec_admission_admitted_total", labels);
  gate.queued =
      registry_->GetCounter("currency_exec_admission_queued_total", labels);
  gate.rejected =
      registry_->GetCounter("currency_exec_admission_rejected_total", labels);
  gate.queue_depth =
      registry_->GetGauge("currency_exec_admission_queue_depth", labels);
  gate.queue_high_water = registry_->GetGauge(
      "currency_exec_admission_queue_high_water", labels);
  entry->gate.BindInstruments(gate);
  entry->admission_wait =
      registry_->GetHistogram("currency_serve_admission_wait_ns", labels);
}

Result<std::shared_ptr<SessionManager::Tenant>> SessionManager::Find(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("tenant '" + tenant + "' is not registered");
  }
  return it->second;
}

Result<std::shared_ptr<CurrencySession>> SessionManager::Lookup(
    const std::string& tenant) const {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> entry, Find(tenant));
  return entry->session;
}

std::vector<std::string> SessionManager::Tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, entry] : tenants_) {
    (void)entry;
    names.push_back(name);
  }
  return names;  // map iteration order is already sorted
}

Result<TenantStats> SessionManager::StatsFor(const std::string& tenant) const {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> entry, Find(tenant));
  TenantStats stats;
  stats.active_batches = entry->gate.active();
  stats.queued_batches = entry->gate.waiting();
  stats.queue_depth_high_water = entry->gate.queue_high_water();
  stats.rejected_batches = entry->gate.rejected();
  stats.session = entry->session->stats();
  return stats;
}

void SessionManager::SetAdmittedHookForTesting(
    std::function<void(const std::string&)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  hook_ = std::move(hook);
}

template <typename Fn>
auto SessionManager::WithAdmission(const std::string& tenant,
                                   const char* procedure, const Fn& fn)
    -> decltype(fn(std::declval<CurrencySession&>())) {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> entry, Find(tenant));
  // The manager's root span owns the request's trace; the session's own
  // TraceSpan (opened inside fn) nests under it and goes inert, while
  // the session's stages attach here.
  obs::TraceSpan span(tracer_.get(), tenant, procedure);
  Status admitted = [&] {
    obs::TraceSpan::Stage stage("admission_wait");
    obs::ScopedTimer timer(entry->admission_wait, options_.trace.clock);
    return entry->gate.Enter();  // counts admitted/queued/rejected itself
  }();
  if (!admitted.ok()) return admitted;
  std::function<void(const std::string&)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = hook_;
  }
  if (hook) hook(tenant);
  auto result = fn(*entry->session);
  entry->gate.Leave();
  return result;
}

Result<bool> SessionManager::CpsCheck(const std::string& tenant) {
  return WithAdmission(tenant, "cps", [](CurrencySession& session) {
    return session.CpsCheck();
  });
}

Result<std::vector<bool>> SessionManager::CopBatch(
    const std::string& tenant,
    const std::vector<core::CurrencyOrderQuery>& queries) {
  return WithAdmission(tenant, "cop", [&](CurrencySession& session) {
    return session.CopBatch(queries);
  });
}

Result<std::vector<bool>> SessionManager::DcipBatch(
    const std::string& tenant, const std::vector<std::string>& relations) {
  return WithAdmission(tenant, "dcip", [&](CurrencySession& session) {
    return session.DcipBatch(relations);
  });
}

Result<std::vector<CcqaResponse>> SessionManager::CcqaBatch(
    const std::string& tenant, const std::vector<CcqaRequest>& requests) {
  return WithAdmission(tenant, "ccqa", [&](CurrencySession& session) {
    return session.CcqaBatch(requests);
  });
}

Status SessionManager::Mutate(const std::string& tenant,
                              const std::vector<core::TupleEdit>& edits) {
  // Admission first (quota bracket), then the durable commit: the
  // admission slot is held across apply + append + fsync, so a tenant's
  // in-flight budget also bounds its outstanding log work.
  return WithAdmission(tenant, "mutate", [&](CurrencySession&) {
    Command command;
    command.type = Command::Type::kMutate;
    command.tenant = tenant;
    command.edits = edits;
    return Commit(std::move(command));
  });
}

}  // namespace currency::serve
