#include "src/serve/session_manager.h"

#include <utility>

namespace currency::serve {

SessionManager::SessionManager(const ManagerOptions& options)
    : options_(options), pool_(options.num_threads) {}

Result<std::unique_ptr<SessionManager>> SessionManager::Create(
    const ManagerOptions& options) {
  if (options.num_threads < 1) {
    return Status::InvalidArgument("ManagerOptions.num_threads must be >= 1");
  }
  return std::unique_ptr<SessionManager>(new SessionManager(options));
}

Status SessionManager::Register(const std::string& tenant,
                                core::Specification spec,
                                const TenantQuotas& quotas) {
  if (tenant.empty()) {
    return Status::InvalidArgument("tenant name must be non-empty");
  }
  if (quotas.max_active_batches < 1) {
    return Status::InvalidArgument(
        "TenantQuotas.max_active_batches must be >= 1");
  }
  if (quotas.max_queued_batches < 0) {
    return Status::InvalidArgument(
        "TenantQuotas.max_queued_batches must be >= 0");
  }
  {
    // Name check before the (possibly expensive) epoch build; re-checked
    // at insertion since the build runs unlocked.
    std::lock_guard<std::mutex> lock(mu_);
    if (tenants_.count(tenant) > 0) {
      return Status::FailedPrecondition("tenant '" + tenant +
                                   "' is already registered");
    }
  }
  SessionOptions session_options = options_.session;
  session_options.pool = &pool_;
  session_options.num_threads = pool_.num_threads();
  if (quotas.max_current_instances > 0 &&
      quotas.max_current_instances < session_options.max_current_instances) {
    session_options.max_current_instances = quotas.max_current_instances;
  }
  ASSIGN_OR_RETURN(std::shared_ptr<CurrencySession> session,
                   CurrencySession::Create(std::move(spec), session_options));
  if (quotas.max_components > 0 &&
      session->num_components() > quotas.max_components) {
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' exceeds its component quota: " +
        std::to_string(session->num_components()) + " > " +
        std::to_string(quotas.max_components));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = tenants_.try_emplace(
      tenant, std::make_shared<Tenant>(std::move(session), quotas));
  (void)it;
  if (!inserted) {
    return Status::FailedPrecondition("tenant '" + tenant +
                                 "' is already registered");
  }
  return Status::OK();
}

Status SessionManager::Drop(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tenants_.erase(tenant) == 0) {
    return Status::NotFound("tenant '" + tenant + "' is not registered");
  }
  return Status::OK();
}

Result<std::shared_ptr<SessionManager::Tenant>> SessionManager::Find(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    return Status::NotFound("tenant '" + tenant + "' is not registered");
  }
  return it->second;
}

Result<std::shared_ptr<CurrencySession>> SessionManager::Lookup(
    const std::string& tenant) const {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> entry, Find(tenant));
  return entry->session;
}

std::vector<std::string> SessionManager::Tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tenants_.size());
  for (const auto& [name, entry] : tenants_) {
    (void)entry;
    names.push_back(name);
  }
  return names;  // map iteration order is already sorted
}

Result<TenantStats> SessionManager::StatsFor(const std::string& tenant) const {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> entry, Find(tenant));
  TenantStats stats;
  stats.active_batches = entry->gate.active();
  stats.queued_batches = entry->gate.waiting();
  stats.rejected_batches = entry->rejected.load(std::memory_order_relaxed);
  stats.session = entry->session->stats();
  return stats;
}

void SessionManager::SetAdmittedHookForTesting(
    std::function<void(const std::string&)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  hook_ = std::move(hook);
}

template <typename Fn>
auto SessionManager::WithAdmission(const std::string& tenant, const Fn& fn)
    -> decltype(fn(std::declval<CurrencySession&>())) {
  ASSIGN_OR_RETURN(std::shared_ptr<Tenant> entry, Find(tenant));
  Status admitted = entry->gate.Enter();
  if (!admitted.ok()) {
    entry->rejected.fetch_add(1, std::memory_order_relaxed);
    return admitted;
  }
  std::function<void(const std::string&)> hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hook = hook_;
  }
  if (hook) hook(tenant);
  auto result = fn(*entry->session);
  entry->gate.Leave();
  return result;
}

Result<bool> SessionManager::CpsCheck(const std::string& tenant) {
  return WithAdmission(
      tenant, [](CurrencySession& session) { return session.CpsCheck(); });
}

Result<std::vector<bool>> SessionManager::CopBatch(
    const std::string& tenant,
    const std::vector<core::CurrencyOrderQuery>& queries) {
  return WithAdmission(tenant, [&](CurrencySession& session) {
    return session.CopBatch(queries);
  });
}

Result<std::vector<bool>> SessionManager::DcipBatch(
    const std::string& tenant, const std::vector<std::string>& relations) {
  return WithAdmission(tenant, [&](CurrencySession& session) {
    return session.DcipBatch(relations);
  });
}

Result<std::vector<CcqaResponse>> SessionManager::CcqaBatch(
    const std::string& tenant, const std::vector<CcqaRequest>& requests) {
  return WithAdmission(tenant, [&](CurrencySession& session) {
    return session.CcqaBatch(requests);
  });
}

Status SessionManager::Mutate(const std::string& tenant,
                              const std::vector<core::TupleEdit>& edits) {
  return WithAdmission(tenant, [&](CurrencySession& session) {
    return session.Mutate(edits);
  });
}

}  // namespace currency::serve
