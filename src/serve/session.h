// currency::serve — the session layer: amortized, batched, incrementally
// invalidated currency queries against one long-lived specification.
//
// The decision procedures in src/core are one-shot: every call rebuilds
// the DecomposedEncoder (coupling graph, copy-bucket index, per-component
// filters, per-component SAT encodings) and spawns a thread pool, even
// when a client asks hundreds of queries against the same specification.
// Real serving workloads — Improve3C-style cleaning loops, dashboards
// polling currency invariants, batch auditors — look different: register
// a specification once, fire batches of CPS/COP/DCIP/CCQA queries, edit a
// few tuples, repeat.  CurrencySession is that workload's entry point.
//
// Amortization model:
//   * The DecomposedEncoder build happens once per epoch (registration or
//     Mutate), not once per query.
//   * Component encoders build lazily and persist across requests; their
//     base solves are cached, so a warm CpsCheck is a cache scan with
//     zero solver calls.
//   * One exec::ThreadPool is owned by the session and shared by every
//     request (the one-shot APIs gained a matching CpsOptions::pool knob
//     so they can borrow a caller's pool the same way).
//   * Mutate(edits) applies in-place tuple edits, re-derives the coupling
//     graph, fingerprints every component (Decomposition::fingerprint)
//     and re-adopts the encoder and cached result of every component
//     whose fingerprint is unchanged — exactly the components an edit
//     touched are re-encoded and re-solved.
//
// Determinism contract: every batch answer equals the answer a fresh
// build over the session's current specification would give.  Two facts
// carry the argument: (1) cached component solvers accumulate learnt
// clauses across requests, which never changes satisfiability answers
// (learnt clauses are implied) and the COP/DCIP probes are
// model-independent by construction; (2) every operation that adds
// permanent clauses beyond the base encoding — CCQA's blocking loops —
// runs on a fresh throwaway merged encoder, never on a cached component
// encoder.  tests/session_equivalence_test.cc property-checks this
// against fresh solves AND the brute-force oracle across thread counts
// and mutation sequences.
//
// Threading: a CurrencySession serves one request at a time (no internal
// request queue; callers serialize).  Each batch call parallelizes
// internally across components / batch items on the session pool.

#ifndef CURRENCY_SRC_SERVE_SESSION_H_
#define CURRENCY_SRC_SERVE_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/decompose.h"
#include "src/core/specification.h"
#include "src/exec/thread_pool.h"
#include "src/query/parser.h"

namespace currency::serve {

/// Options fixed at session creation.
struct SessionOptions {
  /// Pool size shared by every request (counts the calling thread, like
  /// the one-shot num_threads knobs; 1 runs strictly sequentially).
  int num_threads = 1;
  /// Budget forwarded to CCQA's enumeration/blocking loops.
  int64_t max_current_instances = 1'000'000;
  /// Serve chase-eligible components (no denial constraint grounds on any
  /// of their entity groups) from the polynomial chase fixpoint instead of
  /// a SAT encoder: consistency reads the fixpoint, COP pairs check
  /// PO∞-membership, DCIP checks sink agreement, and SP-query CCQA
  /// requests whose components are all eligible answer via Proposition
  /// 6.3.  Cached fixpoints survive Mutate exactly like encoders do (same
  /// fingerprint keying).  SAT remains the fallback for constrained
  /// components; answers are identical either way.
  bool use_chase_routing = true;
  /// Base encoder options.  define_is_last is forced on (one cached
  /// encoding serves CPS, COP, DCIP and CCQA); restrict_to / copy_index /
  /// chase_seed are session-managed and ignored.
  core::Encoder::Options encoder;
};

/// Observability counters (monotonic unless noted).
struct SessionStats {
  /// Mutate calls applied successfully.
  int64_t mutations = 0;
  /// Component base solves performed (cache misses across all requests).
  int64_t base_solves = 0;
  /// Fresh merged encoders built for CCQA requests.
  int64_t merged_builds = 0;
  /// Component chase fixpoints computed by consistency checks (cache
  /// misses; chase-routed sessions only).
  int64_t chase_solves = 0;
  /// Components of the current epoch that re-used a previous epoch's
  /// encoder or result after the most recent Mutate (not monotonic).
  int64_t last_reused = 0;
  /// Components of the current epoch that the most recent Mutate
  /// invalidated — i.e. must rebuild and re-solve (not monotonic).
  int64_t last_invalidated = 0;
  /// Chase-eligible components of the current epoch that re-adopted a
  /// previous epoch's chase fixpoint after the most recent Mutate (not
  /// monotonic; 0 when chase routing is off).
  int64_t last_chase_reused = 0;
  /// Chase-eligible components of the current epoch that could not adopt
  /// a cached fixpoint after the most recent Mutate and re-chase on next
  /// use (not monotonic; 0 when chase routing is off).
  int64_t last_chase_rechased = 0;
};

/// One CCQA batch item: a full answer-set request (no candidate) or a
/// certain-membership request for `candidate`.
struct CcqaRequest {
  query::Query query;
  std::optional<Tuple> candidate;
};

/// Result of one CCQA batch item.
struct CcqaResponse {
  /// True iff Mod(S) = ∅, making every tuple vacuously certain (the
  /// one-shot CertainCurrentAnswers reports this as Status::Inconsistent;
  /// membership requests additionally get is_certain = true, matching
  /// IsCertainCurrentAnswer's convention).
  bool vacuous = false;
  /// Set for membership requests.
  std::optional<bool> is_certain;
  /// Set for answer-set requests unless `vacuous`.
  std::optional<std::set<Tuple>> answers;
};

/// A long-lived session over one specification.  Create → query batches →
/// Mutate → query batches → ...; see the file comment for the caching and
/// determinism contract.
class CurrencySession {
 public:
  /// Registers `spec` (moved in) and builds the first epoch: coupling
  /// graph, fingerprints, per-component filters.  No SAT solving happens
  /// yet — base solves are paid by the first query batch.
  static Result<std::unique_ptr<CurrencySession>> Create(
      core::Specification spec, const SessionOptions& options = {});

  /// The session's current (possibly mutated) specification.
  const core::Specification& spec() const { return spec_; }
  const SessionStats& stats() const { return stats_; }
  int num_components() const { return decomposed_->num_components(); }

  /// CPS: is Mod(S) non-empty?  Cold calls solve every unknown component
  /// in parallel (first-UNSAT cancellation); warm calls answer from the
  /// per-component result cache.
  Result<bool> CpsCheck();

  /// COP for a batch of currency-order queries, answered in request
  /// order.  Pairs are routed to the component owning their entity and
  /// refuted in parallel across components; pairs sharing a component
  /// probe its solver sequentially in batch order.
  Result<std::vector<bool>> CopBatch(
      const std::vector<core::CurrencyOrderQuery>& queries);

  /// DCIP for a batch of relation names, answered in request order.  Each
  /// relation's determinism is probed per owning component, components in
  /// parallel.
  Result<std::vector<bool>> DcipBatch(
      const std::vector<std::string>& relations);

  /// CCQA for a batch of answer-set / certain-membership requests,
  /// answered in request order.  Each request works on fresh merged
  /// encoders covering only the components its query touches, so requests
  /// run in parallel without sharing mutable solver state.
  Result<std::vector<CcqaResponse>> CcqaBatch(
      const std::vector<CcqaRequest>& requests);

  /// Applies `edits` to the specification atomically (see
  /// Specification::ApplyTupleEdits for the validated invariants; on
  /// validation failure nothing changes, including the caches), then
  /// recomputes the coupling graph and invalidates exactly the components
  /// whose content fingerprint changed.  Unchanged components keep their
  /// encoder and cached base-solve result, so the next batch re-solves
  /// only what the edits touched.
  Status Mutate(const std::vector<core::TupleEdit>& edits);

 private:
  CurrencySession(core::Specification spec, const SessionOptions& options);

  /// (Re)builds decomposed_ over the current spec_ and resets sat_.
  Status BuildEpoch();

  /// Ensures every component has a cached base-solve result, solving the
  /// unknown ones on the session pool (first-UNSAT cancellation; slots
  /// skipped by cancellation stay unknown, which is sound because the
  /// answer is already false).  Returns the CPS answer: all components
  /// satisfiable.
  Result<bool> EnsureAllSolved();

  core::Specification spec_;
  SessionOptions options_;
  /// options_.encoder with define_is_last forced and the session-managed
  /// pointer knobs cleared.
  core::Encoder::Options enc_;
  exec::ThreadPool pool_;
  std::unique_ptr<core::DecomposedEncoder> decomposed_;
  /// sat_[c]: cached base satisfiability of component c; nullopt = never
  /// solved in this epoch (or skipped by cancellation).
  std::vector<std::optional<bool>> sat_;
  SessionStats stats_;
};

}  // namespace currency::serve

#endif  // CURRENCY_SRC_SERVE_SESSION_H_
