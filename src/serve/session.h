// currency::serve — the session layer: amortized, batched, incrementally
// invalidated currency queries against one long-lived specification.
//
// The decision procedures in src/core are one-shot: every call rebuilds
// the DecomposedEncoder (coupling graph, copy-bucket index, per-component
// filters, per-component SAT encodings) and spawns a thread pool, even
// when a client asks hundreds of queries against the same specification.
// Real serving workloads — Improve3C-style cleaning loops, dashboards
// polling currency invariants, batch auditors — look different: register
// a specification once, fire batches of CPS/COP/DCIP/CCQA queries, edit a
// few tuples, repeat.  CurrencySession is that workload's entry point.
//
// Amortization model:
//   * The DecomposedEncoder build happens once per epoch (registration or
//     Mutate), not once per query.
//   * Component encoders build lazily and persist across requests; their
//     base solves are cached, so a warm CpsCheck is a cache scan with
//     zero solver calls.
//   * One exec::ThreadPool is owned by (or lent to) the session and
//     shared by every request (the one-shot APIs gained a matching
//     CpsOptions::pool knob so they can borrow a caller's pool the same
//     way).
//   * Mutate(edits) snapshots the specification with the edits applied,
//     re-derives the coupling graph, fingerprints every component
//     (Decomposition::fingerprint) and re-adopts the encoder, chase
//     fixpoint and cached result of every component whose fingerprint is
//     unchanged — exactly the components an edit touched are re-encoded
//     and re-solved.
//
// Threading: batches and Mutate may be called concurrently from any
// number of threads.  The session keeps its state in refcounted immutable
// epoch snapshots (serve/epoch.h): a batch pins the current epoch and
// runs to completion on it, while Mutate builds the next epoch off to the
// side and publishes it atomically — readers never block the writer and
// vice versa.  A batch that overlaps a Mutate answers against either the
// pre- or the post-edit snapshot (never a mix); concurrent Mutate calls
// serialize on an internal writer lock.  Within one epoch, concurrent
// batches share the per-component caches under per-component locks.
//
// Determinism contract: every batch answer equals the answer a fresh
// build over the pinned epoch's specification would give.  Two facts
// carry the argument: (1) cached component solvers accumulate learnt
// clauses across requests — and now across concurrent batches — which
// never changes satisfiability answers (learnt clauses are implied) and
// the COP/DCIP probes are model-independent by construction; (2) every
// operation that adds permanent clauses beyond the base encoding —
// CCQA's blocking loops — runs on a fresh throwaway merged encoder,
// never on a cached component encoder.  tests/session_equivalence_test.cc
// property-checks this against fresh solves AND the brute-force oracle
// across thread counts and mutation sequences;
// tests/concurrent_session_test.cc fuzzes it under true concurrency.

#ifndef CURRENCY_SRC_SERVE_SESSION_H_
#define CURRENCY_SRC_SERVE_SESSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/core/ccqa.h"
#include "src/core/certain_order.h"
#include "src/core/decompose.h"
#include "src/core/specification.h"
#include "src/exec/thread_pool.h"
#include "src/obs/clock.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/query/parser.h"
#include "src/serve/epoch.h"

namespace currency::serve {

/// Options fixed at session creation.
struct SessionOptions {
  /// Pool size shared by every request (counts the calling thread, like
  /// the one-shot num_threads knobs; 1 runs strictly sequentially).
  /// Ignored when `pool` is set.
  int num_threads = 1;
  /// Optional caller-owned pool shared with other sessions (the
  /// SessionManager lends every tenant one pool this way; see
  /// exec::ThreadPool's multi-region contract).  Not owned; must outlive
  /// the session.
  exec::ThreadPool* pool = nullptr;
  /// Budget forwarded to CCQA's enumeration/blocking loops.
  int64_t max_current_instances = 1'000'000;
  /// Serve chase-eligible components (no denial constraint grounds on any
  /// of their entity groups) from the polynomial chase fixpoint instead of
  /// a SAT encoder: consistency reads the fixpoint, COP pairs check
  /// PO∞-membership, DCIP checks sink agreement, and SP-query CCQA
  /// requests whose components are all eligible answer via Proposition
  /// 6.3.  Cached fixpoints survive Mutate exactly like encoders do (same
  /// fingerprint keying).  SAT remains the fallback for constrained
  /// components; answers are identical either way.
  bool use_chase_routing = true;
  /// Verdict-deterministic portfolio racing for dominant components (off
  /// by default): base solves of components with at least
  /// `portfolio.min_component_size` entity groups race diversified rival
  /// solvers on the session pool, first verdict wins.  Verdict-only — the
  /// cached primary solver may hold no model after a raced solve, which
  /// is fine because every serve probe either needs no model (COP) or
  /// re-Solves first (DCIP).  Answers are bit-identical with the racing
  /// off; pass-through (zero overhead) when the pool has one thread.
  sat::PortfolioOptions portfolio;
  /// Base encoder options.  define_is_last is forced on (one cached
  /// encoding serves CPS, COP, DCIP and CCQA); restrict_to / copy_index /
  /// chase_seed are session-managed and ignored.
  core::Encoder::Options encoder;
  /// Metrics registry the session publishes its currency_* instruments
  /// into (not owned; must outlive the session).  Null: the session
  /// creates a private registry — reachable via registry() — so
  /// independent sessions never mix numbers.  The SessionManager injects
  /// its shared registry here, labelled per tenant via instance_label.
  obs::Registry* registry = nullptr;
  /// Value of the instruments' `tenant` label; empty omits the label
  /// (a standalone single-tenant session).
  std::string instance_label;
  /// Request tracer for TraceSpan roots and stage timings (not owned;
  /// must outlive the session).  Null: no tracing.  Stages recorded by
  /// the session attach to whatever root span is open on the calling
  /// thread, so a manager-owned root subsumes the session's own.
  obs::Tracer* tracer = nullptr;
  /// Time source for the batch latency histograms; null means the
  /// monotonic wall clock.  Ignored under CURRENCY_OBS_OFF (timing
  /// compiles out; counters stay).
  const obs::Clock* clock = nullptr;
};

/// Observability counters (monotonic unless noted).  A stats() call
/// returns a snapshot; with concurrent batches in flight the fields are
/// individually accurate but not mutually atomic.  This struct is a thin
/// view over the session's registry instruments (SessionCounters): the
/// same numbers appear in registry()->ExposeText() under the
/// currency_serve_* families, with base_solves and chase_solves unified
/// as currency_serve_component_base_solves_total{routing=sat|chase}.
struct SessionStats {
  /// Mutate calls applied successfully.
  int64_t mutations = 0;
  /// Component base solves performed (cache misses across all requests).
  int64_t base_solves = 0;
  /// Fresh merged encoders built for CCQA requests.
  int64_t merged_builds = 0;
  /// Component chase fixpoints computed by consistency checks (cache
  /// misses; chase-routed sessions only).
  int64_t chase_solves = 0;
  /// Components of the current epoch that re-used a previous epoch's
  /// encoder or result after the most recent Mutate (not monotonic).
  int64_t last_reused = 0;
  /// Components of the current epoch that the most recent Mutate
  /// invalidated — i.e. must rebuild and re-solve (not monotonic).
  int64_t last_invalidated = 0;
  /// Chase-eligible components of the current epoch that re-adopted a
  /// previous epoch's chase fixpoint after the most recent Mutate (not
  /// monotonic; 0 when chase routing is off).
  int64_t last_chase_reused = 0;
  /// Chase-eligible components of the current epoch that could not adopt
  /// a cached fixpoint after the most recent Mutate and re-chase on next
  /// use (not monotonic; 0 when chase routing is off).
  int64_t last_chase_rechased = 0;
};

/// One CCQA batch item: a full answer-set request (no candidate) or a
/// certain-membership request for `candidate`.
struct CcqaRequest {
  query::Query query;
  std::optional<Tuple> candidate;
};

/// Result of one CCQA batch item.
struct CcqaResponse {
  /// True iff Mod(S) = ∅, making every tuple vacuously certain (the
  /// one-shot CertainCurrentAnswers reports this as Status::Inconsistent;
  /// membership requests additionally get is_certain = true, matching
  /// IsCertainCurrentAnswer's convention).
  bool vacuous = false;
  /// Set for membership requests.
  std::optional<bool> is_certain;
  /// Set for answer-set requests unless `vacuous`.
  std::optional<std::set<Tuple>> answers;
};

/// A long-lived session over one specification.  Create → query batches →
/// Mutate → query batches → ...; batches and Mutate may overlap freely
/// (see the file comment for the snapshot semantics).
class CurrencySession {
 public:
  /// Registers `spec` (moved in) and builds the first epoch: coupling
  /// graph, fingerprints, per-component filters.  No SAT solving happens
  /// yet — base solves are paid by the first query batch.  Rejects
  /// num_threads < 1 and max_current_instances <= 0 with InvalidArgument.
  static Result<std::unique_ptr<CurrencySession>> Create(
      core::Specification spec, const SessionOptions& options = {});

  /// The current epoch's specification.  The reference is valid until the
  /// Mutate after next at the earliest; callers that overlap Mutate
  /// should copy.
  const core::Specification& spec() const;
  SessionStats stats() const;
  /// The registry this session's instruments live in: the injected one,
  /// or the session's private registry when none was injected.
  obs::Registry* registry() const { return registry_; }
  int num_components() const;
  /// The current epoch's version: 0 at creation, +1 per successful
  /// Mutate.  Two reads bracketing a batch bound which snapshots the
  /// batch could have pinned.
  int64_t epoch_version() const;

  /// CPS: is Mod(S) non-empty?  Cold calls solve every unknown component
  /// in parallel (first-UNSAT cancellation); warm calls answer from the
  /// per-component result cache.
  Result<bool> CpsCheck();

  /// COP for a batch of currency-order queries, answered in request
  /// order.  Pairs are routed to the component owning their entity and
  /// refuted in parallel across components; pairs sharing a component
  /// probe its solver sequentially in batch order.
  Result<std::vector<bool>> CopBatch(
      const std::vector<core::CurrencyOrderQuery>& queries);

  /// DCIP for a batch of relation names, answered in request order.  Each
  /// relation's determinism is probed per owning component, components in
  /// parallel.
  Result<std::vector<bool>> DcipBatch(
      const std::vector<std::string>& relations);

  /// CCQA for a batch of answer-set / certain-membership requests,
  /// answered in request order.  Each request works on fresh merged
  /// encoders covering only the components its query touches, so requests
  /// run in parallel without sharing mutable solver state.
  Result<std::vector<CcqaResponse>> CcqaBatch(
      const std::vector<CcqaRequest>& requests);

  /// Warm-snapshot export for the durability layer (serve/command.h):
  /// serializes the current epoch's specification into `*spec_wire`
  /// ("CSPC" wire format) and appends one (content fingerprint,
  /// base-satisfiable) pair to `*verdicts` for every component whose base
  /// solve has completed.  Both come from ONE pinned epoch, so the pair
  /// is mutually consistent even under concurrent Mutate.
  void ExportWarmState(std::string* spec_wire,
                       std::vector<std::pair<uint64_t, bool>>* verdicts) const;

  /// Recovery counterpart: seeds cached base-solve verdicts into the
  /// current epoch for every component whose content fingerprint matches
  /// an entry.  Fingerprints cover the component's full content (tuples,
  /// orders, grounded constraint texts, coupling copy buckets), so a
  /// match means the verdict is exactly what a fresh solve would return;
  /// unmatched entries are ignored.  Returns the number adopted.
  int AdoptSolvedVerdicts(
      const std::vector<std::pair<uint64_t, bool>>& verdicts);

  /// Applies `edits` to a copy of the current epoch's specification (see
  /// Specification::ApplyTupleEdits for the validated invariants; on
  /// validation failure nothing changes, including the caches and the
  /// published epoch), builds the next epoch, adopts every component
  /// whose content fingerprint is unchanged, and publishes atomically.
  /// In-flight batches finish on the epoch they pinned.
  Status Mutate(const std::vector<core::TupleEdit>& edits);

 private:
  explicit CurrencySession(const SessionOptions& options);

  /// The current epoch, pinned (a batch holds the pin until it returns).
  std::shared_ptr<Epoch> Pin() const;

  SessionOptions options_;
  /// options_.encoder with define_is_last forced and the session-managed
  /// pointer knobs cleared.
  core::Encoder::Options enc_;
  /// Owned pool when options_.pool is null.
  std::optional<exec::ThreadPool> own_pool_;
  exec::ThreadPool* pool_ = nullptr;
  /// Owned registry when options_.registry is null.
  std::unique_ptr<obs::Registry> own_registry_;
  obs::Registry* registry_ = nullptr;
  const obs::Clock* clock_ = nullptr;
  SessionCounters counters_;
  /// Per-procedure batch instruments, resolved once at construction.
  struct ProcedureInstruments {
    obs::Counter* batches = nullptr;    // currency_serve_batches_total
    obs::Histogram* latency = nullptr;  // currency_serve_batch_latency_ns
  };
  ProcedureInstruments cps_, cop_, dcip_, ccqa_, mutate_;
  /// Counter handles the solve stages snapshot for their trace deltas.
  obs::StageCounters stage_counters_;
  /// Guards current_ (pin = shared_ptr copy, publish = swap).
  mutable std::mutex epoch_mu_;
  std::shared_ptr<Epoch> current_;
  /// Serializes Mutate callers (one successor epoch built at a time).
  std::mutex writer_mu_;
};

}  // namespace currency::serve

#endif  // CURRENCY_SRC_SERVE_SESSION_H_
