// serve::Command — the serializable unit of serving-state mutation.
//
// Every way the SessionManager's state can change — registering a
// tenant, mutating its tuples, dropping it — is expressed as one of
// these values, applied through the single SessionManager::ApplyCommand
// choke point and (in durable managers) appended to the write-ahead log
// (src/wal) as the "CCMD" wire message defined here.  Recovery is then
// definitionally exact: replaying the decoded commands drives the same
// choke point the live requests drove.
//
// What is deliberately NOT a command: query batches (reads change no
// state) and rejected mutations (a command reaches the log only after it
// has been validated and applied, so the log contains exactly the
// accepted history — apply-then-log, see session_manager.h).
//
// This header also defines the warm-snapshot message ("CSNP"): the full
// serialized specification of every tenant plus the base-satisfiability
// verdicts of its solved components keyed by content fingerprint
// (Decomposition::fingerprint — the same key Mutate uses for cache
// adoption), so a restarted manager re-adopts those verdicts instead of
// re-solving.  Encoders, learnt clauses and chase fixpoints are NOT
// snapshotted: they are derived state, rebuilt lazily on first use.

#ifndef CURRENCY_SRC_SERVE_COMMAND_H_
#define CURRENCY_SRC_SERVE_COMMAND_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/core/specification.h"

namespace currency::serve {

/// Per-tenant resource bounds, fixed at Register (and carried by the
/// kRegister command so recovery restores them).
struct TenantQuotas {
  /// Batches of this tenant running at once (≥ 1; the admission gate
  /// rejects Register otherwise).
  int max_active_batches = 2;
  /// Batches allowed to block waiting for an active slot; one more is
  /// rejected with ResourceExhausted.
  int max_queued_batches = 8;
  /// Reject Register when the specification decomposes into more coupling
  /// components than this (0 = unlimited).  Components are the unit of
  /// solver work, so this caps the tenant's standing footprint.
  int max_components = 0;
  /// Clamp on the tenant session's CCQA enumeration budget (0 = keep the
  /// manager's session default).
  int64_t max_current_instances = 0;
};

/// One serving-state mutation; see the file comment.
struct Command {
  enum class Type : uint8_t {
    kRegister = 1,  ///< tenant + quotas + spec
    kMutate = 2,    ///< tenant + edits
    kDrop = 3,      ///< tenant
  };
  Type type = Type::kRegister;
  std::string tenant;
  /// kRegister only.
  TenantQuotas quotas;
  core::Specification spec;
  /// kMutate only.
  std::vector<core::TupleEdit> edits;
};

/// The canonical "CCMD" v1 encoding (deterministic: equal commands
/// produce equal bytes).
std::string EncodeCommand(const Command& command);

/// Parses a whole "CCMD" buffer; truncation, bad magic, version skew,
/// unknown command types and trailing bytes fail with InvalidArgument.
Result<Command> DecodeCommand(std::string_view bytes);

/// One tenant's entry in a warm snapshot.
struct TenantSnapshot {
  std::string tenant;
  TenantQuotas quotas;
  /// The tenant's full specification as a "CSPC" blob (wire/spec.h).
  std::string spec_wire;
  /// (component content fingerprint, base-satisfiable) for every
  /// component whose base solve had completed at snapshot time.
  std::vector<std::pair<uint64_t, bool>> verdicts;
};

/// The canonical "CSNP" v1 encoding of a whole manager's warm state.
std::string EncodeSnapshot(const std::vector<TenantSnapshot>& tenants);

Result<std::vector<TenantSnapshot>> DecodeSnapshot(std::string_view bytes);

}  // namespace currency::serve

#endif  // CURRENCY_SRC_SERVE_COMMAND_H_
