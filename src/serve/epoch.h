// serve::Epoch — one immutable snapshot of a session's specification plus
// that snapshot's solver caches, shared by concurrent query batches.
//
// The session façade (session.h) keeps a shared_ptr to the *current*
// epoch; every query batch pins it (shared_ptr copy under a lock-free-ish
// acquire) and runs to completion against that pinned epoch, while Mutate
// builds the NEXT epoch off to the side and publishes it with one
// shared_ptr swap.  Readers never block writers and writers never block
// readers; an epoch dies when its last pinner lets go.
//
// "Immutable" is logical, not physical: the specification, decomposition,
// fingerprints and filters are bit-frozen after Build, but the epoch also
// hosts the per-component *caches* — SAT encoders whose solvers accumulate
// learnt clauses, base-satisfiability bits, chase fixpoints — and those
// fill in lazily under concurrent batches.  Each component's cache slot
// carries its own synchronization:
//
//   * encoder slot: a per-component mutex.  SAT probes (COP/DCIP) and the
//     base solve need exclusive use of the component's solver (assumption
//     solving mutates solver state), so WithComponentEncoder brackets
//     every access.  Learnt clauses accumulated by one batch are implied
//     clauses — they never change another batch's answers, which is the
//     same argument that already let the solver persist across sequential
//     requests.
//   * base-sat slot: an atomic tri-state (unknown / unsat / sat).  Reads
//     are cache hits without any lock; the writer re-checks under the
//     encoder mutex, so two racing batches solve a component once.
//   * chase slot: write-once publication.  The fixpoint is computed under
//     a per-component mutex, stored as shared_ptr<const ComponentChase>,
//     and flagged ready with a release store; readers acquire the flag and
//     then read the pointer lock-free.  The shared_ptr (not a raw move)
//     is what lets a *successor* epoch adopt the fixpoint while pinned
//     readers of this epoch keep their pointers valid.
//
// Cross-epoch reuse: Mutate harvests this epoch's caches keyed by
// component content fingerprint (Decomposition::fingerprint) and the next
// epoch adopts every entry whose fingerprint is unchanged.  Harvest uses
// try_lock on the encoder slots so a writer never waits on a batch that is
// mid-solve — a busy component's encoder simply is not harvested, and the
// next epoch rebuilds it lazily (identical answers, slightly more work).
// Adopted encoders are re-pointed at the new epoch's specification copy
// via Encoder::RebindSpec (a fingerprint match means the component's
// content is identical, so the encoding is byte-for-byte what a fresh
// build would produce).

#ifndef CURRENCY_SRC_SERVE_EPOCH_H_
#define CURRENCY_SRC_SERVE_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "src/common/result.h"
#include "src/core/chase.h"
#include "src/core/decompose.h"
#include "src/core/specification.h"
#include "src/exec/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/sat/portfolio.h"

namespace currency::serve {

/// The session's registry instrument handles, shared by all of its epochs
/// (instruments outlive any single epoch; cache hits and misses accumulate
/// across Mutate).  Updates are relaxed atomics inside the instruments, so
/// concurrent batches bump them without locks — exactly what the old
/// atomic-int64 struct did, except the numbers now live in an
/// obs::Registry where exposition, SessionStats and TenantStats all read
/// the same values.
///
/// Bind() must run before the first Epoch::Build (CurrencySession's
/// constructor does); every pointer is non-null afterwards.  `tenant`
/// becomes the instruments' tenant label, and the SessionStats naming
/// drift between base_solves / chase_solves is resolved by labels: both
/// are series of currency_serve_component_base_solves_total, routing=sat
/// vs routing=chase.
struct SessionCounters {
  // Monotonic counters.
  obs::Counter* mutations = nullptr;
  obs::Counter* base_solves = nullptr;    // {routing="sat"}
  obs::Counter* chase_solves = nullptr;   // {routing="chase"}
  obs::Counter* merged_builds = nullptr;
  /// Component verdicts answered from the epoch's cached bit (no solve).
  obs::Counter* cache_hits = nullptr;
  obs::Counter* epoch_publishes = nullptr;
  /// Components a chase-routing epoch still had to solve via SAT
  /// (constrained, hence chase-ineligible).
  obs::Counter* chase_sat_fallbacks = nullptr;
  // SAT solver work, sampled as stats deltas at solve boundaries (the
  // sat module itself stays observability-free).
  obs::Counter* sat_propagations = nullptr;
  obs::Counter* sat_conflicts = nullptr;
  obs::Counter* sat_gc_runs = nullptr;
  /// Literals stripped from learnt clauses by recursive minimization and
  /// binary self-subsumption before attachment.
  obs::Counter* sat_minimized_literals = nullptr;
  /// TIER2 → LOCAL demotions of learnt clauses untouched across a
  /// ReduceDB cycle.
  obs::Counter* sat_demotions = nullptr;
  /// Portfolio races completed / rival solvers cancelled mid-search by a
  /// rival's (or the primary's) earlier verdict.
  obs::Counter* sat_portfolio_races = nullptr;
  obs::Counter* sat_portfolio_cancelled = nullptr;
  /// Aggregate clause-arena bytes across the session's cached solvers
  /// (signed deltas: GC shrinks it).
  obs::Gauge* sat_arena_bytes = nullptr;
  /// Aggregate live learnt clauses per tier across the session's cached
  /// solvers (currency_sat_tier_clauses{tier=core|mid|local}; signed
  /// deltas: ReduceDB shrinks them).
  obs::Gauge* sat_tier_core = nullptr;
  obs::Gauge* sat_tier_mid = nullptr;
  obs::Gauge* sat_tier_local = nullptr;
  // Chase fixpoint work, sampled when a fixpoint is computed.
  obs::Counter* chase_passes = nullptr;
  obs::Counter* chase_edges_expanded = nullptr;
  // Last-Mutate adoption snapshot (gauges: not monotonic).
  obs::Gauge* last_reused = nullptr;
  obs::Gauge* last_invalidated = nullptr;
  obs::Gauge* last_chase_reused = nullptr;
  obs::Gauge* last_chase_rechased = nullptr;
  obs::Gauge* epoch_version = nullptr;

  /// Resolves every handle in `registry`, labelled {tenant=`tenant`}
  /// (label omitted when `tenant` is empty).
  void Bind(obs::Registry* registry, const std::string& tenant);
};

/// One snapshot: an owned specification copy, its decomposition, and the
/// per-component solver caches.  Refcounted via shared_ptr; see the file
/// comment for the pinning and synchronization story.
class Epoch {
 public:
  /// What Harvest() extracts per surviving component, keyed by content
  /// fingerprint, for adoption into the successor epoch.
  struct Harvested {
    std::unique_ptr<core::Encoder> encoder;
    std::shared_ptr<const core::ComponentChase> chase;
    std::optional<bool> sat;
  };

  /// Builds the snapshot over `spec` (moved in): coupling graph,
  /// fingerprints, filters, empty cache slots.  No SAT solving happens
  /// here.  `counters` must outlive the epoch (the session owns both).
  static Result<std::shared_ptr<Epoch>> Build(core::Specification spec,
                                              const core::Encoder::Options& enc,
                                              bool use_chase_routing,
                                              int64_t version,
                                              SessionCounters* counters);

  const core::Specification& spec() const { return spec_; }
  const core::DecomposedEncoder& decomposed() const { return *decomposed_; }
  int num_components() const { return decomposed_->num_components(); }
  /// Monotonic publication counter: the seed epoch is 0, each successful
  /// Mutate publishes version + 1.  The linearizability tests bracket
  /// batches with version reads to bound which snapshots a batch could
  /// have pinned.
  int64_t version() const { return version_; }

  /// Ensures every component has a cached base-satisfiability bit,
  /// solving the unknown ones on `pool` (first-UNSAT cancellation; slots
  /// skipped by cancellation stay unknown, which is sound because the
  /// answer is already false).  Returns the CPS answer.  Concurrent calls
  /// are safe: the per-component encoder mutex makes racing solves of one
  /// component serialize, and the second solver re-checks the cached bit
  /// before doing any work.  A non-null `portfolio` (with racing enabled
  /// and a multi-threaded pool) routes dominant components — at least
  /// `portfolio->min_component_size` entity groups, not chase-routed —
  /// through a verdict-deterministic solver race AFTER the regular
  /// components' parallel sweep (the race owns the pool, so the two never
  /// nest); the cached verdicts and the CPS answer are identical.
  Result<bool> EnsureAllSolved(exec::ThreadPool* pool,
                               const sat::PortfolioOptions* portfolio = nullptr);

  /// The component's chase fixpoint (chase-eligible components only),
  /// computed on first use and published write-once; lock-free reads
  /// afterwards.  The pointer stays valid for the epoch's lifetime — pin
  /// the epoch, not the fixpoint.
  Result<const core::ComponentChase*> ChaseFixpoint(int c);

  /// Runs `fn` with exclusive access to component `c`'s SAT encoder,
  /// building it first if the slot is empty (lazily, or because Harvest
  /// moved it to a successor epoch).  All solver access goes through
  /// here; holding the slot mutex for the whole probe sequence keeps each
  /// batch's per-component call sequence contiguous.
  Status WithComponentEncoder(int c,
                              const std::function<Status(core::Encoder*)>& fn);

  /// A fresh throwaway encoder over the union of `components` (CCQA's
  /// blocking loops mutate theirs permanently).  Concurrent-safe: reads
  /// only the frozen build state.
  Result<std::unique_ptr<core::Encoder>> BuildMergedEncoder(
      const std::vector<int>& components) const {
    return decomposed_->BuildMergedEncoder(components);
  }

  /// Extracts the caches for cross-epoch adoption; see the file comment.
  /// Safe while batches still run on this epoch: busy encoder slots are
  /// skipped (try_lock) and chase fixpoints are shared, not moved.
  std::map<uint64_t, Harvested> Harvest();

  /// Adoption hooks.  AdoptEncoder and AdoptChase are called only by
  /// Mutate on the not-yet-visible successor (no synchronization needed);
  /// the caller guarantees the fingerprint match, and AdoptEncoder
  /// rebinds the encoder to this epoch's specification copy.  AdoptSat is
  /// additionally safe on a published epoch (it is a release store into
  /// the atomic slot) — recovery uses that to seed snapshot verdicts into
  /// a freshly built epoch.
  void AdoptEncoder(int c, std::unique_ptr<core::Encoder> encoder);
  void AdoptChase(int c, std::shared_ptr<const core::ComponentChase> chase);
  void AdoptSat(int c, bool sat);

  /// The cached base-satisfiability bit of component `c`: -1 unknown,
  /// 0 unsat, 1 sat.  Lock-free; pairs with AdoptSat / SolveComponentBase
  /// publication.  Warm snapshots read solved verdicts through this.
  int CachedSat(int c) const;

 private:
  /// One component's cache slot; see the file comment for the roles.
  struct Slot {
    std::mutex mu;  // guards `encoder` and its solver
    std::unique_ptr<core::Encoder> encoder;
    /// -1 unknown, 0 unsat, 1 sat.
    std::atomic<int> sat{-1};
    std::mutex chase_mu;  // serializes the one-time fixpoint compute
    std::shared_ptr<const core::ComponentChase> chase;
    /// Release-published after `chase` is set; never cleared.
    std::atomic<bool> chase_ready{false};
  };

  Epoch(core::Specification spec, int64_t version, SessionCounters* counters)
      : spec_(std::move(spec)), version_(version), counters_(counters) {}

  /// Solves component `c`'s base encoding under the slot mutex, caching
  /// the bit; returns the cached bit without solving when another batch
  /// got there first.
  Result<bool> SolveComponentBase(int c);

  /// Portfolio variant of SolveComponentBase: races the slot's cached
  /// primary solver against transient diversified rivals on `pool` (the
  /// rival encoders die with the call; the primary keeps its learnt
  /// clauses and verdict).  Verdict-only — the primary may hold no model
  /// afterwards even on SAT.
  Result<bool> SolveComponentBasePortfolio(int c,
                                           const sat::PortfolioOptions& portfolio,
                                           exec::ThreadPool* pool);

  const core::Specification spec_;
  const int64_t version_;
  SessionCounters* const counters_;
  std::unique_ptr<core::DecomposedEncoder> decomposed_;
  std::unique_ptr<Slot[]> slots_;
};

}  // namespace currency::serve

#endif  // CURRENCY_SRC_SERVE_EPOCH_H_
