#include "src/serve/epoch.h"

#include <utility>

#include "src/sat/solver.h"

namespace currency::serve {

using core::DecomposedEncoder;
using core::Encoder;

void SessionCounters::Bind(obs::Registry* registry,
                           const std::string& tenant) {
  obs::Labels t;
  if (!tenant.empty()) t.push_back({"tenant", tenant});
  auto with = [&](const char* key, const char* value) {
    obs::Labels labels = t;
    labels.push_back({key, value});
    return labels;
  };
  mutations = registry->GetCounter("currency_serve_mutations_total", t);
  base_solves = registry->GetCounter(
      "currency_serve_component_base_solves_total", with("routing", "sat"));
  chase_solves = registry->GetCounter(
      "currency_serve_component_base_solves_total", with("routing", "chase"));
  merged_builds =
      registry->GetCounter("currency_serve_merged_encoder_builds_total", t);
  cache_hits =
      registry->GetCounter("currency_serve_component_cache_hits_total", t);
  epoch_publishes =
      registry->GetCounter("currency_serve_epoch_publishes_total", t);
  chase_sat_fallbacks =
      registry->GetCounter("currency_chase_sat_fallbacks_total", t);
  sat_propagations = registry->GetCounter("currency_sat_propagations_total", t);
  sat_conflicts = registry->GetCounter("currency_sat_conflicts_total", t);
  sat_gc_runs = registry->GetCounter("currency_sat_gc_runs_total", t);
  sat_minimized_literals =
      registry->GetCounter("currency_sat_minimized_literals_total", t);
  sat_demotions = registry->GetCounter("currency_sat_demotions_total", t);
  sat_portfolio_races =
      registry->GetCounter("currency_sat_portfolio_races_total", t);
  sat_portfolio_cancelled =
      registry->GetCounter("currency_sat_portfolio_cancelled_total", t);
  sat_arena_bytes = registry->GetGauge("currency_sat_arena_bytes", t);
  sat_tier_core =
      registry->GetGauge("currency_sat_tier_clauses", with("tier", "core"));
  sat_tier_mid =
      registry->GetGauge("currency_sat_tier_clauses", with("tier", "mid"));
  sat_tier_local =
      registry->GetGauge("currency_sat_tier_clauses", with("tier", "local"));
  chase_passes = registry->GetCounter("currency_chase_passes_total", t);
  chase_edges_expanded =
      registry->GetCounter("currency_chase_edges_expanded_total", t);
  last_reused =
      registry->GetGauge("currency_serve_components_last_reused", t);
  last_invalidated =
      registry->GetGauge("currency_serve_components_last_invalidated", t);
  last_chase_reused =
      registry->GetGauge("currency_serve_chase_components_last_reused", t);
  last_chase_rechased =
      registry->GetGauge("currency_serve_chase_components_last_rechased", t);
  epoch_version = registry->GetGauge("currency_serve_epoch_version", t);
}

Result<std::shared_ptr<Epoch>> Epoch::Build(core::Specification spec,
                                            const core::Encoder::Options& enc,
                                            bool use_chase_routing,
                                            int64_t version,
                                            SessionCounters* counters) {
  std::shared_ptr<Epoch> epoch(
      new Epoch(std::move(spec), version, counters));
  // The DecomposedEncoder retains a pointer to the specification, so it is
  // built only after the spec has settled at its final (heap) address.
  ASSIGN_OR_RETURN(
      epoch->decomposed_,
      DecomposedEncoder::Build(epoch->spec_, enc, use_chase_routing));
  epoch->slots_ = std::make_unique<Slot[]>(
      static_cast<size_t>(epoch->decomposed_->num_components()));
  return epoch;
}

namespace {

/// Publishes the work one solver use performed as registry deltas: the
/// solver's cumulative stats are snapshotted before and after (the sat
/// module stays observability-free; this boundary sampling is the only
/// bridge).  arena_bytes is a level, not a count, so its signed delta
/// goes to a gauge.
void SampleSolverDelta(const SessionCounters* counters,
                       const sat::SolverStats& before,
                       const sat::SolverStats& after) {
  // Every instrument is its own heap allocation, so an update is a
  // (usually cold) cache-line RMW — and a warm probe has a zero delta
  // on everything but propagations.  Adding zero is a no-op, so skip
  // it: this keeps the per-query boundary cost inside
  // bench_obs_overhead's 5% traced-vs-compiled-out ceiling no matter
  // how many solver counters exist.
  auto bump = [](obs::Counter* c, int64_t delta) {
    if (delta != 0) c->Increment(delta);
  };
  auto shift = [](obs::Gauge* g, int64_t delta) {
    if (delta != 0) g->Add(delta);
  };
  bump(counters->sat_propagations, after.propagations - before.propagations);
  bump(counters->sat_conflicts, after.conflicts - before.conflicts);
  bump(counters->sat_gc_runs, after.gc_runs - before.gc_runs);
  bump(counters->sat_minimized_literals,
       after.minimized_literals - before.minimized_literals);
  bump(counters->sat_demotions, after.demotions - before.demotions);
  bump(counters->sat_portfolio_races,
       after.portfolio_races - before.portfolio_races);
  bump(counters->sat_portfolio_cancelled,
       after.portfolio_cancelled - before.portfolio_cancelled);
  shift(counters->sat_arena_bytes, after.arena_bytes - before.arena_bytes);
  shift(counters->sat_tier_core, after.tier_core - before.tier_core);
  shift(counters->sat_tier_mid, after.tier_tier2 - before.tier_tier2);
  shift(counters->sat_tier_local, after.tier_local - before.tier_local);
}

}  // namespace

Result<bool> Epoch::SolveComponentBase(int c) {
  Slot& slot = slots_[c];
  std::lock_guard<std::mutex> lock(slot.mu);
  // A racing batch may have solved this component while we queued for the
  // slot; its bit is authoritative and costs nothing to reuse.
  int cached = slot.sat.load(std::memory_order_acquire);
  if (cached >= 0) {
    counters_->cache_hits->Increment();
    return cached == 1;
  }
  if (slot.encoder == nullptr) {
    ASSIGN_OR_RETURN(slot.encoder, decomposed_->BuildComponentEncoder(c));
  }
  const sat::SolverStats before = slot.encoder->solver().stats();
  bool sat = slot.encoder->solver().Solve() == sat::SolveResult::kSat;
  SampleSolverDelta(counters_, before, slot.encoder->solver().stats());
  counters_->base_solves->Increment();
  if (decomposed_->chase_routing()) {
    // A chase-routing epoch reached the SAT path: the component carries a
    // grounded denial constraint, so the polynomial route was unavailable.
    counters_->chase_sat_fallbacks->Increment();
  }
  slot.sat.store(sat ? 1 : 0, std::memory_order_release);
  return sat;
}

Result<const core::ComponentChase*> Epoch::ChaseFixpoint(int c) {
  Slot& slot = slots_[c];
  // Write-once publication: after the release store of chase_ready the
  // shared_ptr is never modified again, so the post-acquire read needs no
  // lock.
  if (slot.chase_ready.load(std::memory_order_acquire)) {
    return slot.chase.get();
  }
  std::lock_guard<std::mutex> lock(slot.chase_mu);
  if (!slot.chase_ready.load(std::memory_order_relaxed)) {
    ASSIGN_OR_RETURN(core::ComponentChase chase,
                     decomposed_->BuildComponentChase(c));
    counters_->chase_passes->Increment(chase.passes);
    counters_->chase_edges_expanded->Increment(chase.edges_expanded);
    slot.chase = std::make_shared<const core::ComponentChase>(std::move(chase));
    slot.chase_ready.store(true, std::memory_order_release);
  }
  return slot.chase.get();
}

Status Epoch::WithComponentEncoder(
    int c, const std::function<Status(core::Encoder*)>& fn) {
  Slot& slot = slots_[c];
  std::lock_guard<std::mutex> lock(slot.mu);
  if (slot.encoder == nullptr) {
    // First use, or Harvest moved the encoder into a successor epoch while
    // this epoch was still pinned; rebuilding gives identical answers.
    ASSIGN_OR_RETURN(slot.encoder, decomposed_->BuildComponentEncoder(c));
  }
  const sat::SolverStats before = slot.encoder->solver().stats();
  Status status = fn(slot.encoder.get());
  SampleSolverDelta(counters_, before, slot.encoder->solver().stats());
  return status;
}

Result<bool> Epoch::EnsureAllSolved(exec::ThreadPool* pool,
                                    const sat::PortfolioOptions* portfolio) {
  int n = num_components();
  std::vector<int> todo;
  std::vector<int> dominant;
  for (int c = 0; c < n; ++c) {
    int s = slots_[c].sat.load(std::memory_order_acquire);
    if (s < 0) {
      // Dominant components leave the parallel sweep: their base solves
      // race diversified solvers through a portfolio that owns the pool,
      // so they run sequentially after it (ParallelFor must not nest).
      if (decomposed_->PortfolioEligible(c, portfolio, pool)) {
        dominant.push_back(c);
      } else {
        todo.push_back(c);
      }
    } else if (s == 0) {
      counters_->cache_hits->Increment();
      return false;  // a cached UNSAT answers without touching the pool
    }
  }
  counters_->cache_hits->Increment(n - static_cast<int64_t>(todo.size()) -
                                   static_cast<int64_t>(dominant.size()));
  if (todo.empty() && dominant.empty()) return true;
  // Solve the unknown components on the shared pool.  Per-task results
  // land in their own slots; the first UNSAT cancels the unclaimed rest,
  // whose slots stay unknown — sound, since the answer is already false
  // and a later batch re-solves them through this same path.
  std::vector<std::optional<bool>> outcome(todo.size());
  exec::CancellationToken cancel;
  RETURN_IF_ERROR(pool->ParallelFor(
      static_cast<int>(todo.size()),
      [&](int k) -> Status {
        int c = todo[k];
        if (decomposed_->chase_routed(c)) {
          // Chase-eligible component: consistency is the fixpoint's
          // consistency bit (Theorem 6.1(1) on S|_c); no encoder is
          // built.
          ASSIGN_OR_RETURN(const core::ComponentChase* chase,
                           ChaseFixpoint(c));
          counters_->chase_solves->Increment();
          outcome[k] = chase->consistent;
          if (!chase->consistent) cancel.Cancel();
          return Status::OK();
        }
        ASSIGN_OR_RETURN(bool sat, SolveComponentBase(c));
        outcome[k] = sat;
        if (!sat) cancel.Cancel();
        return Status::OK();
      },
      &cancel));
  bool consistent = true;
  for (size_t k = 0; k < todo.size(); ++k) {
    if (outcome[k].has_value()) {
      slots_[todo[k]].sat.store(*outcome[k] ? 1 : 0,
                                std::memory_order_release);
      if (!*outcome[k]) consistent = false;
    } else {
      consistent = false;  // skipped by cancellation ⇒ some task was UNSAT
    }
  }
  if (!consistent) return false;  // dominant slots stay unknown — sound
  for (int c : dominant) {
    ASSIGN_OR_RETURN(bool sat,
                     SolveComponentBasePortfolio(c, *portfolio, pool));
    if (!sat) return false;  // later components stay unknown — sound
  }
  return true;
}

Result<bool> Epoch::SolveComponentBasePortfolio(
    int c, const sat::PortfolioOptions& portfolio, exec::ThreadPool* pool) {
  Slot& slot = slots_[c];
  std::lock_guard<std::mutex> lock(slot.mu);
  int cached = slot.sat.load(std::memory_order_acquire);
  if (cached >= 0) {
    counters_->cache_hits->Increment();
    return cached == 1;
  }
  if (slot.encoder == nullptr) {
    ASSIGN_OR_RETURN(slot.encoder, decomposed_->BuildComponentEncoder(c));
  }
  const sat::SolverStats before = slot.encoder->solver().stats();
  // Transient race: the rival encoders die with this call, while the
  // cached primary keeps its learnt clauses (and the race counters in its
  // stats) for later probes on this slot.
  std::vector<std::unique_ptr<Encoder>> rivals;
  sat::Portfolio race(
      &slot.encoder->solver(),
      [&](int /*config*/,
          const sat::Solver::Options& options) -> Result<sat::Solver*> {
        ASSIGN_OR_RETURN(std::unique_ptr<Encoder> rival,
                         decomposed_->BuildComponentEncoder(c, options));
        rivals.push_back(std::move(rival));
        return &rivals.back()->solver();
      },
      portfolio, pool);
  ASSIGN_OR_RETURN(sat::SolveResult verdict, race.Solve());
  const bool sat = verdict == sat::SolveResult::kSat;
  SampleSolverDelta(counters_, before, slot.encoder->solver().stats());
  counters_->base_solves->Increment();
  if (decomposed_->chase_routing()) {
    // PortfolioEligible filters chase-routed components, so reaching the
    // SAT race means the polynomial route was unavailable here too.
    counters_->chase_sat_fallbacks->Increment();
  }
  slot.sat.store(sat ? 1 : 0, std::memory_order_release);
  return sat;
}

std::map<uint64_t, Epoch::Harvested> Epoch::Harvest() {
  std::map<uint64_t, Harvested> cache;
  for (int c = 0; c < num_components(); ++c) {
    Slot& slot = slots_[c];
    Harvested h;
    // try_lock: never wait on a batch that is mid-solve on this component;
    // an unharvested encoder just rebuilds lazily in the successor.
    if (slot.mu.try_lock()) {
      h.encoder = std::move(slot.encoder);
      slot.mu.unlock();
    }
    {
      // The chase shared_ptr is COPIED: pinned readers of this epoch keep
      // their raw pointers valid while the successor shares the fixpoint.
      std::lock_guard<std::mutex> lock(slot.chase_mu);
      if (slot.chase_ready.load(std::memory_order_relaxed)) {
        h.chase = slot.chase;
      }
    }
    int s = slot.sat.load(std::memory_order_acquire);
    if (s >= 0) h.sat = (s == 1);
    if (h.encoder != nullptr || h.chase != nullptr || h.sat.has_value()) {
      // Distinct components always differ in content (each entity group
      // belongs to exactly one), so fingerprints collide only as 64-bit
      // hash accidents; a first-wins map is the pragmatic resolution.
      cache.emplace(decomposed_->component_fingerprint(c), std::move(h));
    }
  }
  return cache;
}

void Epoch::AdoptEncoder(int c, std::unique_ptr<core::Encoder> encoder) {
  encoder->RebindSpec(spec_);
  slots_[c].encoder = std::move(encoder);
}

void Epoch::AdoptChase(int c,
                       std::shared_ptr<const core::ComponentChase> chase) {
  slots_[c].chase = std::move(chase);
  slots_[c].chase_ready.store(true, std::memory_order_release);
}

void Epoch::AdoptSat(int c, bool sat) {
  slots_[c].sat.store(sat ? 1 : 0, std::memory_order_release);
}

int Epoch::CachedSat(int c) const {
  return slots_[c].sat.load(std::memory_order_acquire);
}

}  // namespace currency::serve
