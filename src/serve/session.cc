#include "src/serve/session.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <utility>

#include "src/core/chase.h"
#include "src/core/deterministic.h"
#include "src/query/classify.h"
#include "src/sat/solver.h"
#include "src/wire/spec.h"

namespace currency::serve {

using core::DecomposedEncoder;
using core::Encoder;

namespace {

/// Shared batch-routing scaffold for CopBatch and DcipBatch: runs `probe`
/// once per coupling component over that component's request list (in
/// parallel on the session pool), then flips the answer of every item a
/// probe reported — "hit" means refuted for COP, non-deterministic for
/// DCIP.  The probe receives the component id so it can choose the chase
/// fixpoint or the SAT encoder per component.  Per-task hit slots keep
/// the aggregation race-free, and each component's request list is
/// processed in batch order by exactly one task, so every solver's call
/// sequence is reproducible for every thread count.
template <typename Request, typename Probe>
Status FlipItemsPerComponent(
    exec::ThreadPool* pool,
    const std::map<int, std::vector<Request>>& by_component,
    const Probe& probe, std::vector<bool>* out) {
  std::vector<std::pair<int, const std::vector<Request>*>> groups;
  groups.reserve(by_component.size());
  for (const auto& [c, requests] : by_component) {
    groups.emplace_back(c, &requests);
  }
  std::vector<std::vector<int>> hits(groups.size());
  RETURN_IF_ERROR(pool->ParallelFor(
      static_cast<int>(groups.size()), [&](int k) -> Status {
        return probe(groups[k].first, *groups[k].second, &hits[k]);
      }));
  for (const std::vector<int>& items : hits) {
    for (int item : items) (*out)[item] = false;
  }
  return Status::OK();
}

}  // namespace

CurrencySession::CurrencySession(const SessionOptions& options)
    : options_(options), enc_(options.encoder) {
  // One cached encoding serves all four problems: CPS and COP ignore the
  // is-last selectors, DCIP and CCQA need them.
  enc_.define_is_last = true;
  // Session-managed knobs (DecomposedEncoder::Build sets these itself).
  enc_.restrict_to = nullptr;
  enc_.copy_index = nullptr;
  enc_.chase_seed = nullptr;
  pool_ = exec::ResolvePool(options_.pool, options_.num_threads, own_pool_);
  if (options_.registry != nullptr) {
    registry_ = options_.registry;
  } else {
    own_registry_ = std::make_unique<obs::Registry>();
    registry_ = own_registry_.get();
  }
  clock_ = obs::ResolveClock(options_.clock);
  counters_.Bind(registry_, options_.instance_label);
  obs::Labels tenant;
  if (!options_.instance_label.empty()) {
    tenant.push_back({"tenant", options_.instance_label});
  }
  auto procedure = [&](const char* name) {
    obs::Labels labels = tenant;
    labels.push_back({"procedure", name});
    ProcedureInstruments p;
    p.batches = registry_->GetCounter("currency_serve_batches_total", labels);
    p.latency =
        registry_->GetHistogram("currency_serve_batch_latency_ns", labels);
    return p;
  };
  cps_ = procedure("cps");
  cop_ = procedure("cop");
  dcip_ = procedure("dcip");
  ccqa_ = procedure("ccqa");
  mutate_ = procedure("mutate");
  stage_counters_ = {counters_.sat_propagations, counters_.sat_conflicts,
                     counters_.chase_passes};
}

Result<std::unique_ptr<CurrencySession>> CurrencySession::Create(
    core::Specification spec, const SessionOptions& options) {
  if (options.num_threads < 1 && options.pool == nullptr) {
    return Status::InvalidArgument("SessionOptions.num_threads must be >= 1");
  }
  if (options.max_current_instances <= 0) {
    return Status::InvalidArgument(
        "SessionOptions.max_current_instances must be >= 1");
  }
  std::unique_ptr<CurrencySession> session(new CurrencySession(options));
  ASSIGN_OR_RETURN(
      session->current_,
      Epoch::Build(std::move(spec), session->enc_, options.use_chase_routing,
                   /*version=*/0, &session->counters_));
  session->counters_.epoch_publishes->Increment();  // the seed epoch
  return session;
}

std::shared_ptr<Epoch> CurrencySession::Pin() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return current_;
}

const core::Specification& CurrencySession::spec() const {
  return Pin()->spec();
}

SessionStats CurrencySession::stats() const {
  // A thin view: every field is a registry instrument's current value.
  SessionStats s;
  s.mutations = counters_.mutations->Value();
  s.base_solves = counters_.base_solves->Value();
  s.merged_builds = counters_.merged_builds->Value();
  s.chase_solves = counters_.chase_solves->Value();
  s.last_reused = counters_.last_reused->Value();
  s.last_invalidated = counters_.last_invalidated->Value();
  s.last_chase_reused = counters_.last_chase_reused->Value();
  s.last_chase_rechased = counters_.last_chase_rechased->Value();
  return s;
}

int CurrencySession::num_components() const {
  return Pin()->num_components();
}

int64_t CurrencySession::epoch_version() const { return Pin()->version(); }

Result<bool> CurrencySession::CpsCheck() {
  obs::TraceSpan span(options_.tracer, options_.instance_label, "cps");
  obs::ScopedTimer timer(cps_.latency, clock_);
  cps_.batches->Increment();
  std::shared_ptr<Epoch> epoch;
  {
    obs::TraceSpan::Stage stage("epoch_pin");
    epoch = Pin();
  }
  obs::TraceSpan::Stage stage("solve", stage_counters_);
  return epoch->EnsureAllSolved(pool_, &options_.portfolio);
}

Result<std::vector<bool>> CurrencySession::CopBatch(
    const std::vector<core::CurrencyOrderQuery>& queries) {
  obs::TraceSpan span(options_.tracer, options_.instance_label, "cop");
  obs::ScopedTimer timer(cop_.latency, clock_);
  cop_.batches->Increment();
  std::shared_ptr<Epoch> epoch;
  {
    obs::TraceSpan::Stage stage("epoch_pin");
    epoch = Pin();
  }
  const core::Specification& spec = epoch->spec();
  // Validate the whole batch up front, mirroring the one-shot API's
  // InvalidArgument behaviour (a malformed item fails the batch before
  // any solving).
  std::vector<int> inst_of(queries.size(), -1);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSIGN_OR_RETURN(inst_of[i], spec.InstanceIndex(queries[i].relation));
    const core::TemporalInstance& instance = spec.instance(inst_of[i]);
    const Relation& rel = instance.relation();
    for (const core::RequiredPair& p : queries[i].pairs) {
      if (p.attr < 1 || p.attr >= instance.schema().arity()) {
        return Status::InvalidArgument(
            "required pair attribute out of range");
      }
      if (p.before < 0 || p.before >= rel.size() || p.after < 0 ||
          p.after >= rel.size()) {
        return Status::InvalidArgument("required pair tuple out of range");
      }
    }
  }
  bool consistent = false;
  {
    obs::TraceSpan::Stage stage("base_solve", stage_counters_);
    ASSIGN_OR_RETURN(consistent,
                     epoch->EnsureAllSolved(pool_, &options_.portfolio));
  }
  std::vector<bool> out(queries.size(), true);
  if (!consistent) return out;  // Mod(S) = ∅: every order vacuously certain

  // Structural refutations need no solver: a reflexive pair
  // (irreflexivity) or a cross-entity pair (no order variable relates
  // tuples of distinct entities) can hold in no completion.
  for (size_t i = 0; i < queries.size(); ++i) {
    const Relation& rel = spec.instance(inst_of[i]).relation();
    for (const core::RequiredPair& p : queries[i].pairs) {
      if (p.before == p.after ||
          !(rel.tuple(p.before).eid() == rel.tuple(p.after).eid())) {
        out[i] = false;
        break;
      }
    }
  }

  // Route the remaining pairs to the component owning their entity.
  // Within a component, probes keep batch order (the solver call sequence
  // — hence its learnt-clause state — is reproducible for every thread
  // count); distinct components probe in parallel on the session pool.
  struct Probe {
    int item;
    const core::RequiredPair* pair;
  };
  std::map<int, std::vector<Probe>> by_component;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!out[i]) continue;  // answer already settled structurally
    const Relation& rel = spec.instance(inst_of[i]).relation();
    for (const core::RequiredPair& p : queries[i].pairs) {
      int c = epoch->decomposed().decomposition().ComponentOf(
          inst_of[i], rel.tuple(p.before).eid());
      by_component[c].push_back(Probe{static_cast<int>(i), &p});
    }
  }
  // A query refuted by this component's own earlier probes is skipped
  // (deterministic), while refutations found concurrently by other
  // components are deliberately not consulted — cross-task peeking would
  // make each solver's call sequence depend on timing.
  obs::TraceSpan::Stage stage("solve", stage_counters_);
  RETURN_IF_ERROR(FlipItemsPerComponent(
      pool_, by_component,
      [&](int c, const std::vector<Probe>& probes,
          std::vector<int>* refuted) -> Status {
        if (epoch->decomposed().chase_routed(c)) {
          // Lemma 6.2 on S|_c: the pair is certain iff it is in the
          // component's PO∞ (the fixpoint is cached — EnsureAllSolved
          // computed or adopted it).  No solver state, so no need to
          // dedupe repeated items — and no lock: the fixpoint is
          // read-only once published.
          ASSIGN_OR_RETURN(const core::ComponentChase* chase,
                           epoch->ChaseFixpoint(c));
          for (const Probe& probe : probes) {
            const Relation& rel = spec.instance(inst_of[probe.item]).relation();
            if (!chase->CertainLess(inst_of[probe.item],
                                    rel.tuple(probe.pair->before).eid(),
                                    probe.pair->attr, probe.pair->before,
                                    probe.pair->after)) {
              refuted->push_back(probe.item);
            }
          }
          return Status::OK();
        }
        // Exclusive solver access for the whole probe sequence: a
        // concurrent batch probing the same component waits, keeping both
        // call sequences contiguous (answers are order-independent either
        // way; see the determinism contract).
        return epoch->WithComponentEncoder(c, [&](Encoder* encoder) -> Status {
          std::set<int> local_refuted;
          for (const Probe& probe : probes) {
            if (local_refuted.count(probe.item)) continue;
            sat::Lit lit =
                encoder->OrdLit(inst_of[probe.item], probe.pair->attr,
                                probe.pair->before, probe.pair->after);
            if (encoder->solver().SolveWithAssumptions({sat::Negate(lit)}) ==
                sat::SolveResult::kSat) {
              // A completion orders them the other way.
              local_refuted.insert(probe.item);
              refuted->push_back(probe.item);
            }
          }
          return Status::OK();
        });
      },
      &out));
  return out;
}

Result<std::vector<bool>> CurrencySession::DcipBatch(
    const std::vector<std::string>& relations) {
  obs::TraceSpan span(options_.tracer, options_.instance_label, "dcip");
  obs::ScopedTimer timer(dcip_.latency, clock_);
  dcip_.batches->Increment();
  std::shared_ptr<Epoch> epoch;
  {
    obs::TraceSpan::Stage stage("epoch_pin");
    epoch = Pin();
  }
  const core::Specification& spec = epoch->spec();
  std::vector<int> inst_of(relations.size(), -1);
  for (size_t i = 0; i < relations.size(); ++i) {
    ASSIGN_OR_RETURN(inst_of[i], spec.InstanceIndex(relations[i]));
  }
  bool consistent = false;
  {
    obs::TraceSpan::Stage stage("base_solve", stage_counters_);
    ASSIGN_OR_RETURN(consistent,
                     epoch->EnsureAllSolved(pool_, &options_.portfolio));
  }
  std::vector<bool> out(relations.size(), true);
  if (!consistent) return out;  // vacuous

  // Route each item to the components of its instance; a component probes
  // its requests in batch order, components in parallel.
  struct Request {
    int item;
    int inst;
  };
  std::map<int, std::vector<Request>> by_component;
  for (size_t i = 0; i < relations.size(); ++i) {
    for (int c :
         epoch->decomposed().decomposition().ComponentsOfInstance(inst_of[i])) {
      by_component[c].push_back(Request{static_cast<int>(i), inst_of[i]});
    }
  }
  obs::TraceSpan::Stage stage("solve", stage_counters_);
  RETURN_IF_ERROR(FlipItemsPerComponent(
      pool_, by_component,
      [&](int c, const std::vector<Request>& requests,
          std::vector<int>* nondeterministic) -> Status {
        if (epoch->decomposed().chase_routed(c)) {
          // Theorem 6.1(3) on S|_c: deterministic iff the certain sinks
          // of every group/attribute agree on the value.  Pure reads on
          // the cached fixpoint — no model to re-establish.
          ASSIGN_OR_RETURN(const core::ComponentChase* chase,
                           epoch->ChaseFixpoint(c));
          for (const Request& req : requests) {
            if (!core::internal::DeterministicViaComponentChase(spec, *chase,
                                                                req.inst)) {
              nondeterministic->push_back(req.item);
            }
          }
          return Status::OK();
        }
        return epoch->WithComponentEncoder(c, [&](Encoder* encoder) -> Status {
          for (const Request& req : requests) {
            // Re-establish a model: earlier COP probes, earlier requests
            // in this loop, or a concurrent batch staled it.  The
            // component is known satisfiable (EnsureAllSolved), so kUnsat
            // is a bug.
            if (encoder->solver().Solve() != sat::SolveResult::kSat) {
              return Status::Internal(
                  "cached-SAT component re-solved unsatisfiable");
            }
            ASSIGN_OR_RETURN(bool deterministic,
                             core::internal::DeterministicProbe(
                                 spec, encoder, req.inst));
            if (!deterministic) nondeterministic->push_back(req.item);
          }
          return Status::OK();
        });
      },
      &out));
  return out;
}

Result<std::vector<CcqaResponse>> CurrencySession::CcqaBatch(
    const std::vector<CcqaRequest>& requests) {
  obs::TraceSpan span(options_.tracer, options_.instance_label, "ccqa");
  obs::ScopedTimer timer(ccqa_.latency, clock_);
  ccqa_.batches->Increment();
  std::shared_ptr<Epoch> epoch;
  {
    obs::TraceSpan::Stage stage("epoch_pin");
    epoch = Pin();
  }
  const core::Specification& spec = epoch->spec();
  std::vector<std::vector<int>> instances(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSIGN_OR_RETURN(instances[i],
                     core::internal::QueryInstances(spec, requests[i].query));
    if (requests[i].candidate.has_value() &&
        static_cast<size_t>(requests[i].candidate->arity()) !=
            requests[i].query.head.size()) {
      return Status::InvalidArgument(
          "candidate tuple arity does not match query head");
    }
  }
  bool consistent = false;
  {
    obs::TraceSpan::Stage stage("base_solve", stage_counters_);
    ASSIGN_OR_RETURN(consistent,
                     epoch->EnsureAllSolved(pool_, &options_.portfolio));
  }
  std::vector<CcqaResponse> out(requests.size());
  if (!consistent) {
    // Mod(S) = ∅: membership is vacuously true; the answer set is not a
    // finite object (the one-shot API reports Status::Inconsistent).
    for (size_t i = 0; i < requests.size(); ++i) {
      out[i].vacuous = true;
      if (requests[i].candidate.has_value()) out[i].is_certain = true;
    }
    return out;
  }
  core::CcqaOptions ccqa;
  ccqa.max_current_instances = options_.max_current_instances;
  // SP routing: a request answers from component chase fixpoints when its
  // query is SP over one relation and every component that relation
  // touches is chase-eligible.  Decide that per request up front and warm
  // the needed fixpoints (write-once publication makes the warm-up safe
  // against concurrent batches; the parallel tasks below then only read).
  std::vector<char> sp_route(requests.size(), 0);
  if (epoch->decomposed().chase_routing()) {
    for (size_t i = 0; i < requests.size(); ++i) {
      const query::Query& q = requests[i].query;
      if (!query::IsSpQuery(q) || q.body->Relations().size() != 1) continue;
      std::vector<int> relevant =
          epoch->decomposed().decomposition().ComponentsOfInstances(
              instances[i]);
      bool eligible = true;
      for (int c : relevant) {
        if (!epoch->decomposed().decomposition().chase_eligible(c)) {
          eligible = false;
          break;
        }
      }
      if (!eligible) continue;
      sp_route[i] = 1;
      for (int c : relevant) {
        RETURN_IF_ERROR(epoch->ChaseFixpoint(c).status());
      }
    }
  }
  // Each request works entirely on fresh merged encoders (the blocking
  // loops add permanent clauses, so cached component encoders are off
  // limits), which makes requests independent: they run in parallel on
  // the session pool and fill only their own response slot.  SP-routed
  // requests instead assemble their instance's PO∞ from the warmed
  // fixpoints — read-only, so they parallelize the same way.
  obs::TraceSpan::Stage stage("solve", stage_counters_);
  std::atomic<int64_t> merged{0};
  RETURN_IF_ERROR(pool_->ParallelFor(
      static_cast<int>(requests.size()), [&](int i) -> Status {
        std::vector<int> relevant =
            epoch->decomposed().decomposition().ComponentsOfInstances(
                instances[i]);
        if (sp_route[i]) {
          ASSIGN_OR_RETURN(
              std::set<Tuple> answers,
              core::internal::SpAnswersViaComponentChases(
                  [&](int c) { return epoch->ChaseFixpoint(c); }, spec,
                  requests[i].query, relevant));
          if (requests[i].candidate.has_value()) {
            out[i].is_certain = answers.count(*requests[i].candidate) > 0;
          } else {
            out[i].answers = std::move(answers);
          }
          return Status::OK();
        }
        auto make_encoder = [&]() -> Result<std::unique_ptr<Encoder>> {
          merged.fetch_add(1, std::memory_order_relaxed);
          return epoch->BuildMergedEncoder(relevant);
        };
        if (requests[i].candidate.has_value()) {
          ASSIGN_OR_RETURN(auto encoder, make_encoder());
          ASSIGN_OR_RETURN(
              bool certain,
              core::internal::CheckCertainMemberWith(
                  encoder.get(), spec, requests[i].query,
                  *requests[i].candidate, instances[i], ccqa));
          out[i].is_certain = certain;
          return Status::OK();
        }
        ASSIGN_OR_RETURN(auto seed, make_encoder());
        ASSIGN_OR_RETURN(
            std::set<Tuple> answers,
            core::internal::CertainAnswersVia(seed.get(), make_encoder, spec,
                                              requests[i].query, instances[i],
                                              ccqa));
        out[i].answers = std::move(answers);
        return Status::OK();
      }));
  counters_.merged_builds->Increment(merged.load(std::memory_order_relaxed));
  return out;
}

void CurrencySession::ExportWarmState(
    std::string* spec_wire,
    std::vector<std::pair<uint64_t, bool>>* verdicts) const {
  // One pin covers both reads: the spec bytes and the verdicts describe
  // the same epoch even if a Mutate publishes a successor mid-call.
  std::shared_ptr<Epoch> epoch = Pin();
  *spec_wire = wire::SerializeSpecification(epoch->spec());
  const int n = epoch->num_components();
  for (int c = 0; c < n; ++c) {
    const int sat = epoch->CachedSat(c);
    if (sat < 0) continue;  // not yet solved — nothing worth persisting
    verdicts->emplace_back(epoch->decomposed().component_fingerprint(c),
                           sat == 1);
  }
}

int CurrencySession::AdoptSolvedVerdicts(
    const std::vector<std::pair<uint64_t, bool>>& verdicts) {
  std::shared_ptr<Epoch> epoch = Pin();
  std::map<uint64_t, bool> by_fingerprint(verdicts.begin(), verdicts.end());
  const int n = epoch->num_components();
  int adopted = 0;
  for (int c = 0; c < n; ++c) {
    auto it =
        by_fingerprint.find(epoch->decomposed().component_fingerprint(c));
    if (it == by_fingerprint.end()) continue;
    epoch->AdoptSat(c, it->second);
    ++adopted;
  }
  return adopted;
}

Status CurrencySession::Mutate(const std::vector<core::TupleEdit>& edits) {
  obs::TraceSpan span(options_.tracer, options_.instance_label, "mutate");
  obs::ScopedTimer timer(mutate_.latency, clock_);
  mutate_.batches->Increment();
  // One successor epoch is built at a time; concurrent Mutate callers
  // queue here while batches keep running on the published epoch.
  std::lock_guard<std::mutex> writer(writer_mu_);
  std::shared_ptr<Epoch> old = Pin();
  // Copy-then-edit keeps the published epoch bit-frozen: a rejected batch
  // discards the copy and changes nothing, preserving the atomicity
  // contract of the in-place path.
  core::Specification next = old->spec();
  RETURN_IF_ERROR(next.ApplyTupleEdits(edits));
  counters_.mutations->Increment();
  obs::TraceSpan::Stage stage("epoch_build");
  // Harvest the outgoing epoch into a fingerprint-keyed cache, then adopt
  // every component of the successor whose content fingerprint is
  // unchanged: its encoder (clauses, learnt clauses, variable layout),
  // chase fixpoint, and base-solve result are still exactly what a fresh
  // build would produce and solve.  The fingerprint covers member tuples,
  // coupling copy buckets, AND the texts of the denial constraints with
  // at least one grounding on the component, so a fingerprint match also
  // preserves chase eligibility.
  std::map<uint64_t, Epoch::Harvested> cache = old->Harvest();
  ASSIGN_OR_RETURN(std::shared_ptr<Epoch> epoch,
                   Epoch::Build(std::move(next), enc_,
                                options_.use_chase_routing,
                                old->version() + 1, &counters_));
  int n = epoch->num_components();
  int64_t reused = 0;
  int64_t chase_reused = 0;
  int64_t eligible = 0;
  for (int c = 0; c < n; ++c) {
    if (epoch->decomposed().decomposition().chase_eligible(c)) ++eligible;
    auto it = cache.find(epoch->decomposed().component_fingerprint(c));
    if (it == cache.end()) continue;
    if (it->second.encoder != nullptr) {
      epoch->AdoptEncoder(c, std::move(it->second.encoder));
    }
    if (it->second.chase != nullptr &&
        epoch->decomposed().decomposition().chase_eligible(c)) {
      epoch->AdoptChase(c, std::move(it->second.chase));
      ++chase_reused;
    }
    if (it->second.sat.has_value()) epoch->AdoptSat(c, *it->second.sat);
    ++reused;
    cache.erase(it);
  }
  counters_.last_reused->Set(reused);
  counters_.last_invalidated->Set(n - reused);
  counters_.last_chase_reused->Set(chase_reused);
  counters_.last_chase_rechased->Set(
      epoch->decomposed().chase_routing() ? eligible - chase_reused : 0);
  counters_.epoch_version->Set(epoch->version());
  counters_.epoch_publishes->Increment();
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    current_ = std::move(epoch);
  }
  return Status::OK();
}

}  // namespace currency::serve
