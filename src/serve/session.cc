#include "src/serve/session.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <utility>

#include "src/core/chase.h"
#include "src/core/deterministic.h"
#include "src/query/classify.h"
#include "src/sat/solver.h"

namespace currency::serve {

using core::DecomposedEncoder;
using core::Encoder;

namespace {

/// Shared batch-routing scaffold for CopBatch and DcipBatch: runs `probe`
/// once per coupling component over that component's request list (in
/// parallel on the session pool), then flips the answer of every item a
/// probe reported — "hit" means refuted for COP, non-deterministic for
/// DCIP.  The probe receives the component id so it can choose the chase
/// fixpoint or the SAT encoder per component.  Per-task hit slots keep
/// the aggregation race-free, and each component's request list is
/// processed in batch order by exactly one task, so every solver's call
/// sequence is reproducible for every thread count.
template <typename Request, typename Probe>
Status FlipItemsPerComponent(
    exec::ThreadPool* pool,
    const std::map<int, std::vector<Request>>& by_component,
    const Probe& probe, std::vector<bool>* out) {
  std::vector<std::pair<int, const std::vector<Request>*>> groups;
  groups.reserve(by_component.size());
  for (const auto& [c, requests] : by_component) {
    groups.emplace_back(c, &requests);
  }
  std::vector<std::vector<int>> hits(groups.size());
  RETURN_IF_ERROR(pool->ParallelFor(
      static_cast<int>(groups.size()), [&](int k) -> Status {
        return probe(groups[k].first, *groups[k].second, &hits[k]);
      }));
  for (const std::vector<int>& items : hits) {
    for (int item : items) (*out)[item] = false;
  }
  return Status::OK();
}

}  // namespace

CurrencySession::CurrencySession(core::Specification spec,
                                 const SessionOptions& options)
    : spec_(std::move(spec)),
      options_(options),
      enc_(options.encoder),
      pool_(options.num_threads) {
  // One cached encoding serves all four problems: CPS and COP ignore the
  // is-last selectors, DCIP and CCQA need them.
  enc_.define_is_last = true;
  // Session-managed knobs (DecomposedEncoder::Build sets these itself).
  enc_.restrict_to = nullptr;
  enc_.copy_index = nullptr;
  enc_.chase_seed = nullptr;
}

Result<std::unique_ptr<CurrencySession>> CurrencySession::Create(
    core::Specification spec, const SessionOptions& options) {
  if (options.num_threads < 1) {
    return Status::InvalidArgument("SessionOptions.num_threads must be >= 1");
  }
  std::unique_ptr<CurrencySession> session(
      new CurrencySession(std::move(spec), options));
  RETURN_IF_ERROR(session->BuildEpoch());
  return session;
}

Status CurrencySession::BuildEpoch() {
  ASSIGN_OR_RETURN(decomposed_,
                   DecomposedEncoder::Build(spec_, enc_,
                                            options_.use_chase_routing));
  sat_.assign(decomposed_->num_components(), std::nullopt);
  return Status::OK();
}

Result<bool> CurrencySession::EnsureAllSolved() {
  int n = decomposed_->num_components();
  std::vector<int> todo;
  for (int c = 0; c < n; ++c) {
    if (!sat_[c].has_value()) {
      todo.push_back(c);
    } else if (!*sat_[c]) {
      return false;  // a cached UNSAT answers without touching the pool
    }
  }
  if (todo.empty()) return true;
  // Solve the unknown components on the shared pool.  Per-task results
  // land in their own slots; the first UNSAT cancels the unclaimed rest,
  // whose slots stay unknown — sound, since the answer is already false
  // and a later batch re-solves them through this same path.
  std::vector<std::optional<bool>> outcome(todo.size());
  std::atomic<int64_t> solves{0};
  std::atomic<int64_t> chased{0};
  exec::CancellationToken cancel;
  RETURN_IF_ERROR(pool_.ParallelFor(
      static_cast<int>(todo.size()),
      [&](int k) -> Status {
        int c = todo[k];
        if (decomposed_->chase_routed(c)) {
          // Chase-eligible component: consistency is the fixpoint's
          // consistency bit (Theorem 6.1(1) on S|_c); no encoder is
          // built.  Each component's fixpoint slot is touched by exactly
          // this task, matching the encoder-slot confinement.
          ASSIGN_OR_RETURN(const core::ComponentChase* chase,
                           decomposed_->ComponentChaseFixpoint(c));
          chased.fetch_add(1, std::memory_order_relaxed);
          outcome[k] = chase->consistent;
          if (!chase->consistent) cancel.Cancel();
          return Status::OK();
        }
        ASSIGN_OR_RETURN(Encoder * encoder, decomposed_->ComponentEncoder(c));
        bool sat = encoder->solver().Solve() == sat::SolveResult::kSat;
        solves.fetch_add(1, std::memory_order_relaxed);
        outcome[k] = sat;
        if (!sat) cancel.Cancel();
        return Status::OK();
      },
      &cancel));
  stats_.base_solves += solves.load(std::memory_order_relaxed);
  stats_.chase_solves += chased.load(std::memory_order_relaxed);
  bool consistent = true;
  for (size_t k = 0; k < todo.size(); ++k) {
    if (outcome[k].has_value()) {
      sat_[todo[k]] = outcome[k];
      if (!*outcome[k]) consistent = false;
    } else {
      consistent = false;  // skipped by cancellation ⇒ some task was UNSAT
    }
  }
  return consistent;
}

Result<bool> CurrencySession::CpsCheck() { return EnsureAllSolved(); }

Result<std::vector<bool>> CurrencySession::CopBatch(
    const std::vector<core::CurrencyOrderQuery>& queries) {
  // Validate the whole batch up front, mirroring the one-shot API's
  // InvalidArgument behaviour (a malformed item fails the batch before
  // any solving).
  std::vector<int> inst_of(queries.size(), -1);
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSIGN_OR_RETURN(inst_of[i], spec_.InstanceIndex(queries[i].relation));
    const core::TemporalInstance& instance = spec_.instance(inst_of[i]);
    const Relation& rel = instance.relation();
    for (const core::RequiredPair& p : queries[i].pairs) {
      if (p.attr < 1 || p.attr >= instance.schema().arity()) {
        return Status::InvalidArgument(
            "required pair attribute out of range");
      }
      if (p.before < 0 || p.before >= rel.size() || p.after < 0 ||
          p.after >= rel.size()) {
        return Status::InvalidArgument("required pair tuple out of range");
      }
    }
  }
  ASSIGN_OR_RETURN(bool consistent, EnsureAllSolved());
  std::vector<bool> out(queries.size(), true);
  if (!consistent) return out;  // Mod(S) = ∅: every order vacuously certain

  // Structural refutations need no solver: a reflexive pair
  // (irreflexivity) or a cross-entity pair (no order variable relates
  // tuples of distinct entities) can hold in no completion.
  for (size_t i = 0; i < queries.size(); ++i) {
    const Relation& rel = spec_.instance(inst_of[i]).relation();
    for (const core::RequiredPair& p : queries[i].pairs) {
      if (p.before == p.after ||
          !(rel.tuple(p.before).eid() == rel.tuple(p.after).eid())) {
        out[i] = false;
        break;
      }
    }
  }

  // Route the remaining pairs to the component owning their entity.
  // Within a component, probes keep batch order (the solver call sequence
  // — hence its learnt-clause state — is reproducible for every thread
  // count); distinct components probe in parallel on the session pool.
  struct Probe {
    int item;
    const core::RequiredPair* pair;
  };
  std::map<int, std::vector<Probe>> by_component;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!out[i]) continue;  // answer already settled structurally
    const Relation& rel = spec_.instance(inst_of[i]).relation();
    for (const core::RequiredPair& p : queries[i].pairs) {
      int c = decomposed_->decomposition().ComponentOf(
          inst_of[i], rel.tuple(p.before).eid());
      by_component[c].push_back(Probe{static_cast<int>(i), &p});
    }
  }
  // A query refuted by this component's own earlier probes is skipped
  // (deterministic), while refutations found concurrently by other
  // components are deliberately not consulted — cross-task peeking would
  // make each solver's call sequence depend on timing.
  RETURN_IF_ERROR(FlipItemsPerComponent(
      &pool_, by_component,
      [&](int c, const std::vector<Probe>& probes,
          std::vector<int>* refuted) -> Status {
        if (decomposed_->chase_routed(c)) {
          // Lemma 6.2 on S|_c: the pair is certain iff it is in the
          // component's PO∞ (the fixpoint is cached — EnsureAllSolved
          // computed or adopted it).  No solver state, so no need to
          // dedupe repeated items.
          ASSIGN_OR_RETURN(const core::ComponentChase* chase,
                           decomposed_->ComponentChaseFixpoint(c));
          for (const Probe& probe : probes) {
            const Relation& rel = spec_.instance(inst_of[probe.item]).relation();
            if (!chase->CertainLess(inst_of[probe.item],
                                    rel.tuple(probe.pair->before).eid(),
                                    probe.pair->attr, probe.pair->before,
                                    probe.pair->after)) {
              refuted->push_back(probe.item);
            }
          }
          return Status::OK();
        }
        ASSIGN_OR_RETURN(Encoder * encoder, decomposed_->ComponentEncoder(c));
        std::set<int> local_refuted;
        for (const Probe& probe : probes) {
          if (local_refuted.count(probe.item)) continue;
          sat::Lit lit =
              encoder->OrdLit(inst_of[probe.item], probe.pair->attr,
                              probe.pair->before, probe.pair->after);
          if (encoder->solver().SolveWithAssumptions({sat::Negate(lit)}) ==
              sat::SolveResult::kSat) {
            // A completion orders them the other way.
            local_refuted.insert(probe.item);
            refuted->push_back(probe.item);
          }
        }
        return Status::OK();
      },
      &out));
  return out;
}

Result<std::vector<bool>> CurrencySession::DcipBatch(
    const std::vector<std::string>& relations) {
  std::vector<int> inst_of(relations.size(), -1);
  for (size_t i = 0; i < relations.size(); ++i) {
    ASSIGN_OR_RETURN(inst_of[i], spec_.InstanceIndex(relations[i]));
  }
  ASSIGN_OR_RETURN(bool consistent, EnsureAllSolved());
  std::vector<bool> out(relations.size(), true);
  if (!consistent) return out;  // vacuous

  // Route each item to the components of its instance; a component probes
  // its requests in batch order, components in parallel.
  struct Request {
    int item;
    int inst;
  };
  std::map<int, std::vector<Request>> by_component;
  for (size_t i = 0; i < relations.size(); ++i) {
    for (int c :
         decomposed_->decomposition().ComponentsOfInstance(inst_of[i])) {
      by_component[c].push_back(Request{static_cast<int>(i), inst_of[i]});
    }
  }
  RETURN_IF_ERROR(FlipItemsPerComponent(
      &pool_, by_component,
      [&](int c, const std::vector<Request>& requests,
          std::vector<int>* nondeterministic) -> Status {
        if (decomposed_->chase_routed(c)) {
          // Theorem 6.1(3) on S|_c: deterministic iff the certain sinks
          // of every group/attribute agree on the value.  Pure reads on
          // the cached fixpoint — no model to re-establish.
          ASSIGN_OR_RETURN(const core::ComponentChase* chase,
                           decomposed_->ComponentChaseFixpoint(c));
          for (const Request& req : requests) {
            if (!core::internal::DeterministicViaComponentChase(spec_, *chase,
                                                                req.inst)) {
              nondeterministic->push_back(req.item);
            }
          }
          return Status::OK();
        }
        ASSIGN_OR_RETURN(Encoder * encoder, decomposed_->ComponentEncoder(c));
        for (const Request& req : requests) {
          // Re-establish a model: earlier COP probes, earlier requests in
          // this loop, or a previous batch staled it.  The component is
          // known satisfiable (EnsureAllSolved), so kUnsat is a bug.
          if (encoder->solver().Solve() != sat::SolveResult::kSat) {
            return Status::Internal(
                "cached-SAT component re-solved unsatisfiable");
          }
          ASSIGN_OR_RETURN(bool deterministic,
                           core::internal::DeterministicProbe(
                               spec_, encoder, req.inst));
          if (!deterministic) nondeterministic->push_back(req.item);
        }
        return Status::OK();
      },
      &out));
  return out;
}

Result<std::vector<CcqaResponse>> CurrencySession::CcqaBatch(
    const std::vector<CcqaRequest>& requests) {
  std::vector<std::vector<int>> instances(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSIGN_OR_RETURN(instances[i],
                     core::internal::QueryInstances(spec_, requests[i].query));
    if (requests[i].candidate.has_value() &&
        static_cast<size_t>(requests[i].candidate->arity()) !=
            requests[i].query.head.size()) {
      return Status::InvalidArgument(
          "candidate tuple arity does not match query head");
    }
  }
  ASSIGN_OR_RETURN(bool consistent, EnsureAllSolved());
  std::vector<CcqaResponse> out(requests.size());
  if (!consistent) {
    // Mod(S) = ∅: membership is vacuously true; the answer set is not a
    // finite object (the one-shot API reports Status::Inconsistent).
    for (size_t i = 0; i < requests.size(); ++i) {
      out[i].vacuous = true;
      if (requests[i].candidate.has_value()) out[i].is_certain = true;
    }
    return out;
  }
  core::CcqaOptions ccqa;
  ccqa.max_current_instances = options_.max_current_instances;
  // SP routing: a request answers from component chase fixpoints when its
  // query is SP over one relation and every component that relation
  // touches is chase-eligible.  Decide that per request up front and warm
  // the needed fixpoints sequentially — the parallel tasks below then
  // only read the cache, so no two tasks race on a fixpoint slot.
  std::vector<char> sp_route(requests.size(), 0);
  if (decomposed_->chase_routing()) {
    for (size_t i = 0; i < requests.size(); ++i) {
      const query::Query& q = requests[i].query;
      if (!query::IsSpQuery(q) || q.body->Relations().size() != 1) continue;
      std::vector<int> relevant =
          decomposed_->decomposition().ComponentsOfInstances(instances[i]);
      bool eligible = true;
      for (int c : relevant) {
        if (!decomposed_->decomposition().chase_eligible(c)) {
          eligible = false;
          break;
        }
      }
      if (!eligible) continue;
      sp_route[i] = 1;
      for (int c : relevant) {
        RETURN_IF_ERROR(decomposed_->ComponentChaseFixpoint(c).status());
      }
    }
  }
  // Each request works entirely on fresh merged encoders (the blocking
  // loops add permanent clauses, so cached component encoders are off
  // limits), which makes requests independent: they run in parallel on
  // the session pool and fill only their own response slot.  SP-routed
  // requests instead assemble their instance's PO∞ from the warmed
  // fixpoints — read-only, so they parallelize the same way.
  std::atomic<int64_t> merged{0};
  RETURN_IF_ERROR(pool_.ParallelFor(
      static_cast<int>(requests.size()), [&](int i) -> Status {
        std::vector<int> relevant =
            decomposed_->decomposition().ComponentsOfInstances(instances[i]);
        if (sp_route[i]) {
          ASSIGN_OR_RETURN(std::set<Tuple> answers,
                           core::internal::SpAnswersViaComponentChases(
                               decomposed_.get(), spec_, requests[i].query,
                               relevant));
          if (requests[i].candidate.has_value()) {
            out[i].is_certain = answers.count(*requests[i].candidate) > 0;
          } else {
            out[i].answers = std::move(answers);
          }
          return Status::OK();
        }
        auto make_encoder = [&]() -> Result<std::unique_ptr<Encoder>> {
          merged.fetch_add(1, std::memory_order_relaxed);
          return decomposed_->BuildMergedEncoder(relevant);
        };
        if (requests[i].candidate.has_value()) {
          ASSIGN_OR_RETURN(auto encoder, make_encoder());
          ASSIGN_OR_RETURN(
              bool certain,
              core::internal::CheckCertainMemberWith(
                  encoder.get(), spec_, requests[i].query,
                  *requests[i].candidate, instances[i], ccqa));
          out[i].is_certain = certain;
          return Status::OK();
        }
        ASSIGN_OR_RETURN(auto seed, make_encoder());
        ASSIGN_OR_RETURN(
            std::set<Tuple> answers,
            core::internal::CertainAnswersVia(seed.get(), make_encoder, spec_,
                                              requests[i].query, instances[i],
                                              ccqa));
        out[i].answers = std::move(answers);
        return Status::OK();
      }));
  stats_.merged_builds += merged.load(std::memory_order_relaxed);
  return out;
}

Status CurrencySession::Mutate(const std::vector<core::TupleEdit>& edits) {
  // Atomic: a rejected batch leaves the specification — and therefore
  // every cache — exactly as it was.
  RETURN_IF_ERROR(spec_.ApplyTupleEdits(edits));
  ++stats_.mutations;
  // Harvest the outgoing epoch into a fingerprint-keyed cache.  Distinct
  // components always differ in content (each entity group belongs to
  // exactly one), so fingerprints collide only as 64-bit hash accidents;
  // a first-wins map is the pragmatic resolution.
  struct Harvested {
    std::unique_ptr<Encoder> encoder;
    std::unique_ptr<core::ComponentChase> chase;
    std::optional<bool> sat;
  };
  std::map<uint64_t, Harvested> cache;
  for (int c = 0; c < decomposed_->num_components(); ++c) {
    Harvested h{decomposed_->TakeComponentEncoder(c),
                decomposed_->TakeComponentChase(c), sat_[c]};
    if (h.encoder != nullptr || h.chase != nullptr || h.sat.has_value()) {
      cache.emplace(decomposed_->component_fingerprint(c), std::move(h));
    }
  }
  // Rebuild the coupling graph over the edited specification, then adopt
  // every component whose content fingerprint is unchanged: its encoder
  // (clauses, learnt clauses, variable layout), chase fixpoint, and
  // base-solve result are still exactly what a fresh build would produce
  // and solve.  The fingerprint covers member tuples, coupling copy
  // buckets, AND the texts of the denial constraints with at least one
  // grounding on the component, so a fingerprint match also preserves
  // chase eligibility.
  RETURN_IF_ERROR(BuildEpoch());
  int n = decomposed_->num_components();
  int64_t reused = 0;
  int64_t chase_reused = 0;
  int64_t eligible = 0;
  for (int c = 0; c < n; ++c) {
    if (decomposed_->decomposition().chase_eligible(c)) ++eligible;
    auto it = cache.find(decomposed_->component_fingerprint(c));
    if (it == cache.end()) continue;
    if (it->second.encoder != nullptr) {
      RETURN_IF_ERROR(decomposed_->AdoptComponentEncoder(
          c, std::move(it->second.encoder)));
    }
    if (it->second.chase != nullptr &&
        decomposed_->decomposition().chase_eligible(c)) {
      RETURN_IF_ERROR(decomposed_->AdoptComponentChase(
          c, std::move(it->second.chase)));
      ++chase_reused;
    }
    sat_[c] = it->second.sat;
    ++reused;
    cache.erase(it);
  }
  stats_.last_reused = reused;
  stats_.last_invalidated = n - reused;
  stats_.last_chase_reused = chase_reused;
  stats_.last_chase_rechased =
      decomposed_->chase_routing() ? eligible - chase_reused : 0;
  return Status::OK();
}

}  // namespace currency::serve
