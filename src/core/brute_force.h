// Brute-force enumeration of consistent completions — the independent
// oracle every solver is property-tested against.
//
// A completion is a choice of linear extension per (instance, attribute,
// entity group); this module enumerates the full cross product, filters
// by IsConsistentCompletion, and exposes oracle versions of CPS, COP,
// DCIP and CCQA.  Strictly exponential — use on small specifications.

#ifndef CURRENCY_SRC_CORE_BRUTE_FORCE_H_
#define CURRENCY_SRC_CORE_BRUTE_FORCE_H_

#include <cstdint>
#include <functional>
#include <set>

#include "src/common/result.h"
#include "src/core/certain_order.h"
#include "src/core/completion.h"
#include "src/core/specification.h"
#include "src/query/eval.h"

namespace currency::core {

/// Guard rails for the oracle.
struct BruteForceOptions {
  /// Maximum number of candidate completions examined (consistent or not).
  int64_t max_candidates = 5'000'000;
};

/// Enumerates all consistent completions, calling `visit` for each; stops
/// early when `visit` returns false.  Returns the number of consistent
/// completions visited.
Result<int64_t> EnumerateConsistentCompletions(
    const Specification& spec,
    const std::function<bool(const Completion&)>& visit,
    const BruteForceOptions& options = {});

/// Oracle CPS: true iff some consistent completion exists.
Result<bool> BruteForceConsistent(const Specification& spec,
                                  const BruteForceOptions& options = {});

/// Oracle COP (vacuously true when Mod(S) = ∅).
Result<bool> BruteForceCertainOrder(const Specification& spec,
                                    const CurrencyOrderQuery& query,
                                    const BruteForceOptions& options = {});

/// Oracle DCIP for one relation (vacuously true when Mod(S) = ∅).
Result<bool> BruteForceDeterministic(const Specification& spec,
                                     const std::string& relation,
                                     const BruteForceOptions& options = {});

/// Oracle CCQA: the certain current answers, or Status::Inconsistent when
/// Mod(S) = ∅.
Result<std::set<Tuple>> BruteForceCertainAnswers(
    const Specification& spec, const query::Query& q,
    const BruteForceOptions& options = {});

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_BRUTE_FORCE_H_
