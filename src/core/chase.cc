#include "src/core/chase.h"

#include <optional>

#include "src/core/encoder.h"

namespace currency::core {

namespace {

/// A mapped pair of target tuples with matching entity ids on both sides:
/// the unit of ≺-compatibility propagation.
struct MappedPair {
  TupleId t1, t2;  // target tuples (distinct, same EID)
  TupleId s1, s2;  // their sources (distinct, same EID)
};

/// One pass of denial-constraint Horn closure over `orders`.  Returns
/// whether anything changed; sets *inconsistent when a pure denial fires
/// or a conclusion contradicts a certain pair.
Result<bool> DenialClosurePass(const Specification& spec,
                               std::vector<std::vector<PartialOrder>>* orders,
                               bool* inconsistent) {
  bool changed = false;
  for (int i = 0; i < spec.num_instances() && !*inconsistent; ++i) {
    const Relation& rel = spec.instance(i).relation();
    for (const auto& dc : spec.constraints_for(i)) {
      if (*inconsistent) break;
      dc.EnumerateGroundings(rel, [&](const constraints::Grounding& g) {
        if (*inconsistent) return;
        for (const auto& p : g.premises) {
          if (!(*orders)[i][p.attr].Less(p.before, p.after)) return;
        }
        if (!g.conclusion.has_value()) {
          *inconsistent = true;  // certain premises of a pure denial
          return;
        }
        const auto& c = *g.conclusion;
        if ((*orders)[i][c.attr].Less(c.before, c.after)) return;
        if ((*orders)[i][c.attr].Less(c.after, c.before)) {
          *inconsistent = true;  // conclusion contradicts a certain pair
          return;
        }
        if (!(*orders)[i][c.attr].TryAdd(c.before, c.after)) {
          *inconsistent = true;
          return;
        }
        changed = true;
      });
    }
  }
  return changed;
}

}  // namespace

namespace {

/// Pre-resolved copy edge: signature attribute pairs + mapped pairs.
struct EdgePlan {
  int source, target;
  std::vector<std::pair<AttrIndex, AttrIndex>> attrs;  // (target, source)
  std::vector<MappedPair> pairs;
};

Result<std::vector<EdgePlan>> BuildEdgePlans(const Specification& spec,
                                             const CopyBucketIndex* shared) {
  std::vector<EdgePlan> plans;
  // Mapped pairs only arise between two mappings agreeing on both the
  // target and the source entity, so expand (target entity, source
  // entity) buckets — Σ |bucket|² work — instead of the |ρ|² double loop
  // over the raw mapping.  The bucket index is the same one the encoder
  // walks (CopyBucketIndex, built per edge in spec.copy_edges() order),
  // so the decomposition layer hands its prebuilt copy down instead of
  // bucketing the mappings a second time.  The pair SET is identical to
  // the raw double loop's, only its order differs (bucket-grouped
  // instead of target-id-lexicographic), which the chase fixpoint is
  // insensitive to: the closure is a least fixpoint of monotone rules,
  // so certain_orders and consistency never depend on application order
  // (tests/encoder_chase_test.cc proves this against a quadratic
  // reference; only the pass counter may differ).
  std::optional<CopyBucketIndex> local;
  if (shared == nullptr) {
    local = CopyBucketIndex::Build(spec);
    shared = &*local;
  } else if (shared->per_edge.size() != spec.copy_edges().size()) {
    // Same loud failure the encoder gives a foreign index (the size check
    // is the only validation there is — silently rebuilding would mask a
    // caller bug).
    return Status::Internal("copy-bucket index does not match the spec");
  }
  const CopyBucketIndex& index = *shared;
  for (size_t edge_index = 0; edge_index < spec.copy_edges().size();
       ++edge_index) {
    const CopyEdge& edge = spec.copy_edges()[edge_index];
    EdgePlan plan;
    plan.source = edge.source_instance;
    plan.target = edge.target_instance;
    const Relation& target = spec.instance(edge.target_instance).relation();
    const Relation& source = spec.instance(edge.source_instance).relation();
    ASSIGN_OR_RETURN(plan.attrs,
                     edge.fn.ResolveAttrs(target.schema(), source.schema()));
    for (const auto& [te, by_source] : index.per_edge[edge_index]) {
      (void)te;
      for (const auto& [se, mapped] : by_source) {
        (void)se;
        for (const auto& [t1, s1] : mapped) {
          for (const auto& [t2, s2] : mapped) {
            if (t1 == t2 || s1 == s2) continue;
            plan.pairs.push_back(MappedPair{t1, t2, s1, s2});
          }
        }
      }
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

/// One pass of copy-order propagation.  Returns whether anything changed;
/// sets *inconsistent on a derived cycle.
bool CopyPropagationPass(const std::vector<EdgePlan>& plans,
                         std::vector<std::vector<PartialOrder>>* orders,
                         bool* inconsistent) {
  bool changed = false;
  for (const EdgePlan& plan : plans) {
    for (const auto& [a, b] : plan.attrs) {
      PartialOrder& tgt = (*orders)[plan.target][a];
      PartialOrder& src = (*orders)[plan.source][b];
      for (const MappedPair& p : plan.pairs) {
        // Source order is inherited by the target (≺-compatibility).
        if (src.Less(p.s1, p.s2) && !tgt.Less(p.t1, p.t2)) {
          if (!tgt.TryAdd(p.t1, p.t2)) {
            *inconsistent = true;
            return changed;
          }
          changed = true;
        }
        // Contrapositive under totality: a certain target order forces
        // the corresponding source order (Theorem 6.1, step 3(a)ii).
        if (tgt.Less(p.t1, p.t2) && !src.Less(p.s1, p.s2)) {
          if (!src.TryAdd(p.s1, p.s2)) {
            *inconsistent = true;
            return changed;
          }
          changed = true;
        }
      }
    }
  }
  return changed;
}

Result<ChaseResult> RunChase(const Specification& spec, bool with_denials,
                             const CopyBucketIndex* copy_index) {
  ChaseResult result;
  result.certain_orders.reserve(spec.num_instances());
  for (int i = 0; i < spec.num_instances(); ++i) {
    result.certain_orders.push_back(spec.instance(i).orders());
  }
  ASSIGN_OR_RETURN(std::vector<EdgePlan> plans,
                   BuildEdgePlans(spec, copy_index));
  bool inconsistent = false;
  bool changed = true;
  while (changed && !inconsistent) {
    changed = false;
    ++result.passes;
    changed |= CopyPropagationPass(plans, &result.certain_orders,
                                   &inconsistent);
    if (with_denials && !inconsistent) {
      ASSIGN_OR_RETURN(bool dc_changed,
                       DenialClosurePass(spec, &result.certain_orders,
                                         &inconsistent));
      changed |= dc_changed;
    }
  }
  result.consistent = !inconsistent;
  return result;
}

}  // namespace

Result<ChaseResult> ChaseCopyOrders(const Specification& spec,
                                    const CopyBucketIndex* copy_index) {
  return RunChase(spec, /*with_denials=*/false, copy_index);
}

Result<ChaseResult> CertainOrderPrefix(const Specification& spec,
                                       const CopyBucketIndex* copy_index) {
  return RunChase(spec, /*with_denials=*/true, copy_index);
}

}  // namespace currency::core
