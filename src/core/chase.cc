#include "src/core/chase.h"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>

#include "src/core/encoder.h"

namespace currency::core {

namespace {

/// A mapped pair of target tuples with matching entity ids on both sides:
/// the unit of ≺-compatibility propagation.
struct MappedPair {
  TupleId t1, t2;  // target tuples (distinct, same EID)
  TupleId s1, s2;  // their sources (distinct, same EID)
};

/// One pass of denial-constraint Horn closure over `orders`.  Returns
/// whether anything changed; sets *inconsistent when a pure denial fires
/// or a conclusion contradicts a certain pair.
Result<bool> DenialClosurePass(const Specification& spec,
                               std::vector<std::vector<PartialOrder>>* orders,
                               bool* inconsistent, int64_t* derived_pairs) {
  bool changed = false;
  for (int i = 0; i < spec.num_instances() && !*inconsistent; ++i) {
    const Relation& rel = spec.instance(i).relation();
    for (const auto& dc : spec.constraints_for(i)) {
      if (*inconsistent) break;
      dc.EnumerateGroundings(rel, [&](const constraints::Grounding& g) {
        if (*inconsistent) return;
        for (const auto& p : g.premises) {
          if (!(*orders)[i][p.attr].Less(p.before, p.after)) return;
        }
        if (!g.conclusion.has_value()) {
          *inconsistent = true;  // certain premises of a pure denial
          return;
        }
        const auto& c = *g.conclusion;
        if ((*orders)[i][c.attr].Less(c.before, c.after)) return;
        if ((*orders)[i][c.attr].Less(c.after, c.before)) {
          *inconsistent = true;  // conclusion contradicts a certain pair
          return;
        }
        if (!(*orders)[i][c.attr].TryAdd(c.before, c.after)) {
          *inconsistent = true;
          return;
        }
        ++*derived_pairs;
        changed = true;
      });
    }
  }
  return changed;
}

}  // namespace

namespace {

/// Pre-resolved copy edge: signature attribute pairs + mapped pairs.
struct EdgePlan {
  int source, target;
  std::vector<std::pair<AttrIndex, AttrIndex>> attrs;  // (target, source)
  std::vector<MappedPair> pairs;
};

Result<std::vector<EdgePlan>> BuildEdgePlans(const Specification& spec,
                                             const CopyBucketIndex* shared) {
  std::vector<EdgePlan> plans;
  // Mapped pairs only arise between two mappings agreeing on both the
  // target and the source entity, so expand (target entity, source
  // entity) buckets — Σ |bucket|² work — instead of the |ρ|² double loop
  // over the raw mapping.  The bucket index is the same one the encoder
  // walks (CopyBucketIndex, built per edge in spec.copy_edges() order),
  // so the decomposition layer hands its prebuilt copy down instead of
  // bucketing the mappings a second time.  The pair SET is identical to
  // the raw double loop's, only its order differs (bucket-grouped
  // instead of target-id-lexicographic), which the chase fixpoint is
  // insensitive to: the closure is a least fixpoint of monotone rules,
  // so certain_orders and consistency never depend on application order
  // (tests/encoder_chase_test.cc proves this against a quadratic
  // reference; only the pass counter may differ).
  std::optional<CopyBucketIndex> local;
  if (shared == nullptr) {
    local = CopyBucketIndex::Build(spec);
    shared = &*local;
  } else if (shared->per_edge.size() != spec.copy_edges().size()) {
    // Same loud failure the encoder gives a foreign index (the size check
    // is the only validation there is — silently rebuilding would mask a
    // caller bug).
    return Status::Internal("copy-bucket index does not match the spec");
  }
  const CopyBucketIndex& index = *shared;
  for (size_t edge_index = 0; edge_index < spec.copy_edges().size();
       ++edge_index) {
    const CopyEdge& edge = spec.copy_edges()[edge_index];
    EdgePlan plan;
    plan.source = edge.source_instance;
    plan.target = edge.target_instance;
    const Relation& target = spec.instance(edge.target_instance).relation();
    const Relation& source = spec.instance(edge.source_instance).relation();
    ASSIGN_OR_RETURN(plan.attrs,
                     edge.fn.ResolveAttrs(target.schema(), source.schema()));
    for (const auto& [te, by_source] : index.per_edge[edge_index]) {
      (void)te;
      for (const auto& [se, mapped] : by_source) {
        (void)se;
        for (const auto& [t1, s1] : mapped) {
          for (const auto& [t2, s2] : mapped) {
            if (t1 == t2 || s1 == s2) continue;
            plan.pairs.push_back(MappedPair{t1, t2, s1, s2});
          }
        }
      }
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

/// One pass of copy-order propagation.  Returns whether anything changed;
/// sets *inconsistent on a derived cycle.
bool CopyPropagationPass(const std::vector<EdgePlan>& plans,
                         std::vector<std::vector<PartialOrder>>* orders,
                         bool* inconsistent, int64_t* edges_expanded,
                         int64_t* derived_pairs) {
  bool changed = false;
  for (const EdgePlan& plan : plans) {
    for (const auto& [a, b] : plan.attrs) {
      PartialOrder& tgt = (*orders)[plan.target][a];
      PartialOrder& src = (*orders)[plan.source][b];
      for (const MappedPair& p : plan.pairs) {
        ++*edges_expanded;
        // Source order is inherited by the target (≺-compatibility).
        if (src.Less(p.s1, p.s2) && !tgt.Less(p.t1, p.t2)) {
          if (!tgt.TryAdd(p.t1, p.t2)) {
            *inconsistent = true;
            return changed;
          }
          ++*derived_pairs;
          changed = true;
        }
        // Contrapositive under totality: a certain target order forces
        // the corresponding source order (Theorem 6.1, step 3(a)ii).
        if (tgt.Less(p.t1, p.t2) && !src.Less(p.s1, p.s2)) {
          if (!src.TryAdd(p.s1, p.s2)) {
            *inconsistent = true;
            return changed;
          }
          ++*derived_pairs;
          changed = true;
        }
      }
    }
  }
  return changed;
}

Result<ChaseResult> RunChase(const Specification& spec, bool with_denials,
                             const CopyBucketIndex* copy_index) {
  ChaseResult result;
  result.certain_orders.reserve(spec.num_instances());
  for (int i = 0; i < spec.num_instances(); ++i) {
    result.certain_orders.push_back(spec.instance(i).orders());
  }
  ASSIGN_OR_RETURN(std::vector<EdgePlan> plans,
                   BuildEdgePlans(spec, copy_index));
  bool inconsistent = false;
  bool changed = true;
  while (changed && !inconsistent) {
    changed = false;
    ++result.passes;
    changed |= CopyPropagationPass(plans, &result.certain_orders,
                                   &inconsistent, &result.edges_expanded,
                                   &result.derived_pairs);
    if (with_denials && !inconsistent) {
      ASSIGN_OR_RETURN(bool dc_changed,
                       DenialClosurePass(spec, &result.certain_orders,
                                         &inconsistent,
                                         &result.derived_pairs));
      changed |= dc_changed;
    }
  }
  result.consistent = !inconsistent;
  return result;
}

}  // namespace

Result<ChaseResult> ChaseCopyOrders(const Specification& spec,
                                    const CopyBucketIndex* copy_index) {
  return RunChase(spec, /*with_denials=*/false, copy_index);
}

Result<ChaseResult> CertainOrderPrefix(const Specification& spec,
                                       const CopyBucketIndex* copy_index) {
  return RunChase(spec, /*with_denials=*/true, copy_index);
}

const ComponentChase::Node* ComponentChase::FindNode(int inst,
                                                     const Value& eid) const {
  for (const Node& n : nodes) {
    if (n.inst == inst && n.eid == eid) return &n;
  }
  return nullptr;
}

bool ComponentChase::CertainLess(int inst, const Value& eid, AttrIndex attr,
                                 TupleId u, TupleId v) const {
  const Node* n = FindNode(inst, eid);
  if (n == nullptr) return false;
  auto find_local = [&](TupleId id) -> int {
    auto it = std::lower_bound(n->members.begin(), n->members.end(), id);
    if (it == n->members.end() || *it != id) return -1;
    return static_cast<int>(it - n->members.begin());
  };
  int lu = find_local(u);
  int lv = find_local(v);
  if (lu < 0 || lv < 0) return false;
  return n->orders[attr].Less(lu, lv);
}

Result<ComponentChase> ChaseComponentOrders(
    const Specification& spec,
    const std::vector<std::pair<int, Value>>& nodes,
    const CopyBucketIndex* copy_index) {
  ComponentChase out;
  // Entity groups with the whole-spec initial orders restricted to their
  // members.  Members are COPIED out of the relation's group cache: a
  // ComponentChase outlives its epoch (it is harvested and re-adopted
  // across Mutate), so it must not borrow from the specification.
  std::map<std::pair<int, Value>, int> node_index;
  for (const auto& [inst, eid] : nodes) {
    if (node_index.count({inst, eid})) continue;
    const Relation& rel = spec.instance(inst).relation();
    const auto& groups = rel.EntityGroups();
    auto git = groups.find(eid);
    if (git == groups.end()) {
      return Status::InvalidArgument(
          "component node names an unknown entity group");
    }
    ComponentChase::Node n;
    n.inst = inst;
    n.eid = eid;
    n.members = git->second;
    const int m = static_cast<int>(n.members.size());
    n.orders.assign(rel.schema().arity(), PartialOrder(m));
    const std::vector<PartialOrder>& init = spec.instance(inst).orders();
    for (AttrIndex a = 1; a < rel.schema().arity(); ++a) {
      for (int i = 0; i < m; ++i) {
        for (int j = 0; j < m; ++j) {
          if (i != j && init[a].Less(n.members[i], n.members[j])) {
            // The restriction of a partial order cannot cycle.
            n.orders[a].TryAdd(i, j);
          }
        }
      }
    }
    node_index[{inst, eid}] = static_cast<int>(out.nodes.size());
    out.nodes.push_back(std::move(n));
  }

  // Local propagation plans: the copy buckets both of whose endpoints lie
  // in the component, with tuple ids rewritten to node-local indices.
  // Buckets with only one endpoint inside are necessarily single-source
  // (otherwise they would have united the endpoints into one component)
  // and contribute no mapped pairs, so skipping them loses nothing.
  struct LocalPair {
    int t1, t2, s1, s2;
  };
  struct LocalPlan {
    int tgt_node, src_node;
    std::vector<std::pair<AttrIndex, AttrIndex>> attrs;
    std::vector<LocalPair> pairs;
  };
  std::optional<CopyBucketIndex> local;
  if (copy_index == nullptr) {
    local = CopyBucketIndex::Build(spec);
    copy_index = &*local;
  } else if (copy_index->per_edge.size() != spec.copy_edges().size()) {
    return Status::Internal("copy-bucket index does not match the spec");
  }
  std::vector<LocalPlan> plans;
  for (size_t e = 0; e < spec.copy_edges().size(); ++e) {
    const CopyEdge& edge = spec.copy_edges()[e];
    std::vector<std::pair<AttrIndex, AttrIndex>> attrs;
    bool attrs_resolved = false;
    for (const auto& [te, by_source] : copy_index->per_edge[e]) {
      auto tgt_it = node_index.find({edge.target_instance, te});
      if (tgt_it == node_index.end()) continue;
      for (const auto& [se, mapped] : by_source) {
        auto src_it = node_index.find({edge.source_instance, se});
        if (src_it == node_index.end()) continue;
        if (!attrs_resolved) {
          const Relation& target =
              spec.instance(edge.target_instance).relation();
          const Relation& source =
              spec.instance(edge.source_instance).relation();
          ASSIGN_OR_RETURN(
              attrs, edge.fn.ResolveAttrs(target.schema(), source.schema()));
          attrs_resolved = true;
        }
        LocalPlan plan;
        plan.tgt_node = tgt_it->second;
        plan.src_node = src_it->second;
        plan.attrs = attrs;
        const std::vector<TupleId>& tmem = out.nodes[plan.tgt_node].members;
        const std::vector<TupleId>& smem = out.nodes[plan.src_node].members;
        auto local_of = [](const std::vector<TupleId>& mem, TupleId id) {
          return static_cast<int>(
              std::lower_bound(mem.begin(), mem.end(), id) - mem.begin());
        };
        for (const auto& [t1, s1] : mapped) {
          for (const auto& [t2, s2] : mapped) {
            if (t1 == t2 || s1 == s2) continue;
            plan.pairs.push_back(LocalPair{local_of(tmem, t1),
                                           local_of(tmem, t2),
                                           local_of(smem, s1),
                                           local_of(smem, s2)});
          }
        }
        if (!plan.pairs.empty()) plans.push_back(std::move(plan));
      }
    }
  }

  // Least fixpoint, mirroring CopyPropagationPass in local coordinates.
  bool inconsistent = false;
  bool changed = true;
  while (changed && !inconsistent) {
    changed = false;
    ++out.passes;
    for (const LocalPlan& plan : plans) {
      for (const auto& [a, b] : plan.attrs) {
        PartialOrder& tgt = out.nodes[plan.tgt_node].orders[a];
        PartialOrder& src = out.nodes[plan.src_node].orders[b];
        for (const LocalPair& p : plan.pairs) {
          ++out.edges_expanded;
          if (src.Less(p.s1, p.s2) && !tgt.Less(p.t1, p.t2)) {
            if (!tgt.TryAdd(p.t1, p.t2)) {
              inconsistent = true;
              break;
            }
            ++out.derived_pairs;
            changed = true;
          }
          if (tgt.Less(p.t1, p.t2) && !src.Less(p.s1, p.s2)) {
            if (!src.TryAdd(p.s1, p.s2)) {
              inconsistent = true;
              break;
            }
            ++out.derived_pairs;
            changed = true;
          }
        }
        if (inconsistent) break;
      }
      if (inconsistent) break;
    }
  }
  out.consistent = !inconsistent;
  return out;
}

Status MergeComponentOrdersInto(const ComponentChase& chase, int inst,
                                std::vector<PartialOrder>* orders) {
  for (const ComponentChase::Node& n : chase.nodes) {
    if (n.inst != inst) continue;
    for (size_t a = 1; a < n.orders.size(); ++a) {
      if (a >= orders->size()) {
        return Status::Internal("component orders exceed the instance arity");
      }
      for (const auto& [u, v] : n.orders[a].Pairs()) {
        if (!(*orders)[a].TryAdd(n.members[u], n.members[v])) {
          return Status::Internal(
              "component orders contradict the accumulated orders");
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace currency::core
