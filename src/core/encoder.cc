#include "src/core/encoder.h"

#include <functional>
#include <utility>

#include "src/core/chase.h"

namespace currency::core {

namespace {

std::pair<TupleId, TupleId> Canonical(TupleId u, TupleId v) {
  return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
}

}  // namespace

Result<std::unique_ptr<Encoder>> Encoder::Build(const Specification& spec,
                                                const Options& options) {
  std::unique_ptr<Encoder> encoder(new Encoder());
  RETURN_IF_ERROR(encoder->BuildImpl(spec, options));
  return encoder;
}

Result<std::unique_ptr<Encoder>> Encoder::Build(const Specification& spec) {
  return Build(spec, Options());
}

bool Encoder::HasPairVar(int inst, TupleId u, TupleId v) const {
  if (u == v) return false;
  return pair_base_[inst].count(Canonical(u, v)) > 0;
}

sat::Lit Encoder::OrdLit(int inst, AttrIndex attr, TupleId u, TupleId v) const {
  auto key = Canonical(u, v);
  int base = pair_base_[inst].at(key);
  sat::Var var = base + (attr - 1);
  // Variable true ⇔ key.first ≺ key.second; flip when asking (v, u).
  return sat::MakeLit(var, /*negated=*/u != key.first);
}

sat::Var Encoder::IsLastVar(int inst, AttrIndex attr, TupleId u) const {
  return is_last_var_[inst][attr][u];
}

CopyBucketIndex CopyBucketIndex::Build(const Specification& spec) {
  CopyBucketIndex index;
  index.per_edge.reserve(spec.copy_edges().size());
  for (const CopyEdge& edge : spec.copy_edges()) {
    const Relation& target = spec.instance(edge.target_instance).relation();
    const Relation& source = spec.instance(edge.source_instance).relation();
    CopyBuckets buckets;
    for (const auto& [t, src] : edge.fn.mapping()) {
      buckets[target.tuple(t).eid()][source.tuple(src).eid()].emplace_back(
          t, src);
    }
    index.per_edge.push_back(std::move(buckets));
  }
  return index;
}

Status Encoder::BuildImpl(const Specification& spec, const Options& options) {
  spec_ = &spec;
  solver_ = std::make_unique<sat::Solver>(options.solver);
  sat::Solver& s = *solver_;
  pair_base_.resize(spec.num_instances());
  if (options.restrict_to != nullptr) filter_ = *options.restrict_to;
  auto keep = [this](int i, const Value& eid) {
    return !filter_.has_value() || filter_->Contains(i, eid);
  };

  // 0. Resolve the entity groups this encoder covers, iterating the
  // filter (not the relations) so a component encoder's build cost is
  // proportional to its own content.
  active_groups_.resize(spec.num_instances());
  for (int i = 0; i < spec.num_instances(); ++i) {
    const auto& groups = spec.instance(i).relation().EntityGroups();
    if (!filter_.has_value()) {
      for (const auto& [eid, members] : groups) {
        active_groups_[i].emplace_back(eid, members);
      }
    } else if (i < static_cast<int>(filter_->allowed.size())) {
      for (const Value& eid : filter_->allowed[i]) {
        auto it = groups.find(eid);
        if (it != groups.end()) {
          active_groups_[i].emplace_back(it->first, it->second);
        }
      }
    }
  }

  // 1. Order variables: one per (same-entity pair, data attribute).
  for (int i = 0; i < spec.num_instances(); ++i) {
    const TemporalInstance& inst = spec.instance(i);
    int data_attrs = inst.schema().num_data_attributes();
    for (const auto& [eid, members] : active_groups_[i]) {
      (void)eid;
      for (size_t x = 0; x < members.size(); ++x) {
        for (size_t y = x + 1; y < members.size(); ++y) {
          auto key = Canonical(members[x], members[y]);
          int base = s.NumVars();
          for (int a = 0; a < data_attrs; ++a) s.NewVar();
          pair_base_[i][key] = base;
          num_order_vars_ += data_attrs;
        }
      }
    }
  }

  // 2. Transitivity: ord(u,v) ∧ ord(v,w) → ord(u,w) for ordered triples.
  for (int i = 0; i < spec.num_instances(); ++i) {
    const TemporalInstance& inst = spec.instance(i);
    for (const auto& [eid, members] : active_groups_[i]) {
      (void)eid;
      if (members.size() < 3) continue;
      for (AttrIndex a = 1; a < inst.schema().arity(); ++a) {
        for (TupleId u : members) {
          for (TupleId v : members) {
            if (v == u) continue;
            for (TupleId w : members) {
              if (w == u || w == v) continue;
              s.AddClause({sat::Negate(OrdLit(i, a, u, v)),
                           sat::Negate(OrdLit(i, a, v, w)),
                           OrdLit(i, a, u, w)});
            }
          }
        }
      }
    }
  }

  // 3. Initial partial orders (or the chase's strengthening of them).
  // Borrowed, not copied: a PartialOrder is an O(n²) bit matrix, and a
  // per-component build must not pay for the whole instance.
  std::optional<ChaseResult> local_chase;
  const ChaseResult* chase = options.chase_seed;
  bool seed_with_chase = false;
  if (options.seed_with_chase) {
    // The full certain prefix (chase + denial Horn closure): every derived
    // pair holds in all consistent completions, so adding them as units is
    // sound and strengthens propagation.  The chase runs over the whole
    // specification, so the decomposition layer precomputes it once
    // (options.chase_seed) instead of once per component.
    if (chase == nullptr) {
      // options.copy_index (when given) spares the chase its own
      // bucketing pass; it validates the edge count itself.
      ASSIGN_OR_RETURN(local_chase,
                       CertainOrderPrefix(spec, options.copy_index));
      chase = &*local_chase;
    }
    if (!chase->consistent) {
      // Encode inconsistency directly: empty clause.
      s.AddClause({});
    } else {
      seed_with_chase = true;
    }
  }
  // Initial orders only relate same-entity tuples (TemporalInstance::
  // AddOrder and the chase both enforce this), so walking entity groups
  // and probing Less covers every pair — in Σ m² instead of the n²/64
  // full-matrix scan of Pairs(), which matters when a filtered encoder is
  // built once per component.
  for (int i = 0; i < spec.num_instances(); ++i) {
    const TemporalInstance& inst = spec.instance(i);
    const std::vector<PartialOrder>& initial =
        seed_with_chase ? chase->certain_orders[i] : inst.orders();
    for (const auto& [eid, members] : active_groups_[i]) {
      (void)eid;
      for (AttrIndex a = 1; a < inst.schema().arity(); ++a) {
        const PartialOrder& po = initial[a];
        for (TupleId u : members) {
          for (TupleId v : members) {
            if (u == v || !po.Less(u, v)) continue;
            s.AddClause({OrdLit(i, a, u, v)});
          }
        }
      }
    }
  }

  // 4. Copy ≺-compatibility: ord_src(s1,s2) → ord_tgt(t1,t2).  Clauses
  // only arise between mappings agreeing on both the target and the
  // source entity, so encoding walks (target entity, source entity)
  // buckets — Σ |bucket|² instead of |ρ|² work.  A filtered encoder only
  // visits buckets of its own target entities; the decomposition layer
  // shares one prebuilt index across all component builds.
  std::optional<CopyBucketIndex> local_index;
  const CopyBucketIndex* copy_index = options.copy_index;
  if (copy_index == nullptr) {
    local_index = CopyBucketIndex::Build(spec);
    copy_index = &*local_index;
  }
  if (copy_index->per_edge.size() != spec.copy_edges().size()) {
    return Status::Internal("copy-bucket index does not match the spec");
  }
  for (size_t edge_index = 0; edge_index < spec.copy_edges().size();
       ++edge_index) {
    const CopyEdge& edge = spec.copy_edges()[edge_index];
    const Relation& target = spec.instance(edge.target_instance).relation();
    const Relation& source = spec.instance(edge.source_instance).relation();
    ASSIGN_OR_RETURN(auto attrs,
                     edge.fn.ResolveAttrs(target.schema(), source.schema()));
    const CopyBuckets& buckets = copy_index->per_edge[edge_index];
    auto encode_bucket =
        [&](const Value& te,
            const std::map<Value, std::vector<std::pair<TupleId, TupleId>>>&
                by_source) -> Status {
      bool t_in = keep(edge.target_instance, te);
      for (const auto& [se, mapped] : by_source) {
        bool s_in = keep(edge.source_instance, se);
        for (size_t x = 0; x < mapped.size(); ++x) {
          for (size_t y = 0; y < mapped.size(); ++y) {
            auto [t1, s1] = mapped[x];
            auto [t2, s2] = mapped[y];
            if (t1 == t2 || s1 == s2) continue;
            // A clause couples the two entity groups, so a valid
            // decomposition filter keeps either both or neither.
            if (t_in != s_in) {
              return Status::Internal(
                  "entity filter splits a copy-coupled entity pair");
            }
            if (!t_in) continue;
            for (const auto& [a, b] : attrs) {
              s.AddClause(
                  {sat::Negate(OrdLit(edge.source_instance, b, s1, s2)),
                   OrdLit(edge.target_instance, a, t1, t2)});
            }
          }
        }
      }
      return Status::OK();
    };
    if (filter_.has_value()) {
      // Walk the filter's target entities only.  Buckets whose target
      // entity lies outside the filter but whose source entity is inside
      // cannot couple (the decomposition would have merged them), so
      // skipping them is sound.
      if (edge.target_instance <
          static_cast<int>(filter_->allowed.size())) {
        for (const Value& te : filter_->allowed[edge.target_instance]) {
          auto it = buckets.find(te);
          if (it == buckets.end()) continue;
          RETURN_IF_ERROR(encode_bucket(it->first, it->second));
        }
      }
    } else {
      for (const auto& [te, by_source] : buckets) {
        RETURN_IF_ERROR(encode_bucket(te, by_source));
      }
    }
  }

  // 5. Grounded denial constraints.
  if (options.ground_denial_constraints) {
    for (int i = 0; i < spec.num_instances(); ++i) {
      const Relation& rel = spec.instance(i).relation();
      // All tuple variables of a grounding bind within one entity group,
      // so grounding per active group loses nothing and skips the other
      // components' grounding work entirely.
      for (const auto& dc : spec.constraints_for(i)) {
        for (const auto& [eid, group_members] : active_groups_[i]) {
          (void)eid;
          dc.EnumerateGroundingsForGroup(
            rel, group_members,
            [&](const constraints::Grounding& g) {
              std::vector<sat::Lit> clause;
              clause.reserve(g.premises.size() + 1);
              for (const auto& p : g.premises) {
                clause.push_back(
                    sat::Negate(OrdLit(i, p.attr, p.before, p.after)));
              }
              if (g.conclusion.has_value()) {
                clause.push_back(OrdLit(i, g.conclusion->attr,
                                        g.conclusion->before,
                                        g.conclusion->after));
              }
              s.AddClause(std::move(clause));
            });
        }
      }
    }
  }

  // 6. is-last selectors L(u) ⇔ ⋀_{v ≠ u, same entity} ord(v, u), plus
  //    per-cell value selectors val(cell, k) ⇔ ⋁ {L(u) | u carries value k}.
  if (options.define_is_last) {
    is_last_var_.resize(spec.num_instances());
    cell_index_.resize(spec.num_instances());
    for (int i = 0; i < spec.num_instances(); ++i) {
      const TemporalInstance& inst = spec.instance(i);
      is_last_var_[i].assign(
          inst.schema().arity(),
          std::vector<sat::Var>(inst.relation().size(), -1));
      for (const auto& [eid, members] : active_groups_[i]) {
        for (AttrIndex a = 1; a < inst.schema().arity(); ++a) {
          for (TupleId u : members) {
            sat::Var lv = s.NewVar();
            is_last_var_[i][a][u] = lv;
            std::vector<sat::Lit> back{sat::MakeLit(lv)};
            for (TupleId v : members) {
              if (v == u) continue;
              // L(u) → ord(v, u)
              s.AddClause({sat::MakeLit(lv, true), OrdLit(i, a, v, u)});
              back.push_back(sat::Negate(OrdLit(i, a, v, u)));
            }
            // (⋀ ord(v,u)) → L(u)
            s.AddClause(std::move(back));
          }
          // Cell: distinct values of this (attr, entity) with their vars.
          Cell cell;
          cell.inst = i;
          cell.attr = a;
          cell.eid = eid;
          std::map<Value, std::vector<TupleId>> by_value;
          for (TupleId u : members) {
            by_value[inst.relation().tuple(u).at(a)].push_back(u);
          }
          for (const auto& [v, carriers] : by_value) {
            sat::Var vv = s.NewVar();
            cell.values.push_back(v);
            cell.value_vars.push_back(vv);
            // val ⇔ ⋁ L(u).
            std::vector<sat::Lit> def{sat::MakeLit(vv, true)};
            for (TupleId u : carriers) {
              def.push_back(sat::MakeLit(is_last_var_[i][a][u]));
              s.AddClause({sat::MakeLit(is_last_var_[i][a][u], true),
                           sat::MakeLit(vv)});
            }
            s.AddClause(std::move(def));
          }
          cell_index_[i][{a, eid}] = static_cast<int>(cells_.size());
          cells_.push_back(std::move(cell));
        }
      }
    }
  }
  return Status::OK();
}

std::vector<sat::Var> Encoder::CellProjection(
    const std::vector<int>& instances) const {
  std::vector<sat::Var> out;
  for (const Cell& cell : cells_) {
    for (int i : instances) {
      if (cell.inst == i) {
        out.insert(out.end(), cell.value_vars.begin(), cell.value_vars.end());
        break;
      }
    }
  }
  return out;
}

Result<sat::Lit> Encoder::CellValueLit(int inst, AttrIndex attr,
                                       const Value& eid,
                                       const Value& v) const {
  if (inst < 0 || inst >= static_cast<int>(cell_index_.size())) {
    return Status::InvalidArgument("instance index out of range");
  }
  auto it = cell_index_[inst].find({attr, eid});
  if (it == cell_index_[inst].end()) {
    return Status::NotFound("no cell for entity " + eid.ToString());
  }
  const Cell& cell = cells_[it->second];
  for (size_t k = 0; k < cell.values.size(); ++k) {
    if (cell.values[k] == v) return sat::MakeLit(cell.value_vars[k]);
  }
  return Status::NotFound("value " + v.ToString() + " not possible in cell");
}

Result<std::vector<Relation>> Encoder::DecodeCurrentInstances() const {
  std::vector<Relation> out;
  out.reserve(spec_->num_instances());
  // Per-instance map entity -> (attr -> value) read from the cell vars.
  for (int i = 0; i < spec_->num_instances(); ++i) {
    const TemporalInstance& inst = spec_->instance(i);
    Relation lst(inst.schema());
    for (const auto& [eid, members] : active_groups_[i]) {
      (void)members;
      std::vector<Value> values(inst.schema().arity());
      values[0] = eid;
      for (AttrIndex a = 1; a < inst.schema().arity(); ++a) {
        auto it = cell_index_[i].find({a, eid});
        if (it == cell_index_[i].end()) {
          return Status::Internal("missing cell in encoder");
        }
        const Cell& cell = cells_[it->second];
        Value chosen;
        bool found = false;
        for (size_t k = 0; k < cell.values.size(); ++k) {
          if (solver_->ModelValue(cell.value_vars[k])) {
            chosen = cell.values[k];
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::Internal("model selects no current value for " +
                                  eid.ToString());
        }
        values[a] = chosen;
      }
      RETURN_IF_ERROR(lst.Append(Tuple(std::move(values))).status());
    }
    out.push_back(std::move(lst));
  }
  return out;
}

Completion Encoder::ExtractCompletion() const {
  Completion completion;
  completion.orders.resize(spec_->num_instances());
  for (int i = 0; i < spec_->num_instances(); ++i) {
    const TemporalInstance& inst = spec_->instance(i);
    completion.orders[i].assign(inst.schema().arity(),
                                PartialOrder(inst.relation().size()));
    for (const auto& [key, base] : pair_base_[i]) {
      auto [u, v] = key;
      for (AttrIndex a = 1; a < inst.schema().arity(); ++a) {
        bool u_before_v = solver_->ModelValue(base + (a - 1));
        // Completions are acyclic by construction (transitivity clauses),
        // so TryAdd cannot fail on a model.
        if (u_before_v) {
          completion.orders[i][a].TryAdd(u, v);
        } else {
          completion.orders[i][a].TryAdd(v, u);
        }
      }
    }
  }
  return completion;
}

}  // namespace currency::core
