#include "src/core/deterministic.h"

#include "src/core/chase.h"

namespace currency::core {

namespace {

/// Shared implementation deciding determinism for one instance index given
/// an already-built encoder whose formula is satisfiable.
Result<bool> DeterministicViaSat(const Specification& spec, Encoder* encoder,
                                 int inst) {
  const TemporalInstance& instance = spec.instance(inst);
  const Relation& rel = instance.relation();
  // Baseline: the current values in one model.
  auto groups = rel.EntityGroups();
  for (AttrIndex a = 1; a < instance.schema().arity(); ++a) {
    for (const auto& [eid, members] : groups) {
      (void)eid;
      if (members.size() <= 1) continue;
      // Baseline value: from the most recent model, the selected tuple.
      TupleId baseline = -1;
      for (TupleId u : members) {
        if (encoder->solver().ModelValue(encoder->IsLastVar(inst, a, u))) {
          baseline = u;
          break;
        }
      }
      if (baseline < 0) {
        return Status::Internal("model selects no current tuple");
      }
      const Value& base_value = rel.tuple(baseline).at(a);
      // Any candidate with a DIFFERENT value that can be most current
      // witnesses non-determinism.  (Candidates with equal value cannot
      // change the current instance.)
      for (TupleId u : members) {
        if (u == baseline || rel.tuple(u).at(a) == base_value) continue;
        sat::Lit assume = sat::MakeLit(encoder->IsLastVar(inst, a, u));
        if (encoder->solver().SolveWithAssumptions({assume}) ==
            sat::SolveResult::kSat) {
          return false;
        }
      }
      // Note: failed assumption solves leave the last satisfying model in
      // place, so subsequent groups can keep reading baselines from it.
    }
  }
  return true;
}

/// PTIME path (Theorem 6.1(3)): deterministic iff for each entity and
/// attribute, all sinks of PO∞ agree on the attribute value.
Result<bool> DeterministicViaChase(const Specification& spec,
                                   const ChaseResult& chase, int inst) {
  const TemporalInstance& instance = spec.instance(inst);
  const Relation& rel = instance.relation();
  for (AttrIndex a = 1; a < instance.schema().arity(); ++a) {
    const PartialOrder& po = chase.certain_orders[inst][a];
    for (const auto& [eid, members] : rel.EntityGroups()) {
      (void)eid;
      std::vector<int> sinks = po.SinksWithin(members);
      for (size_t k = 1; k < sinks.size(); ++k) {
        if (!(rel.tuple(sinks[k]).at(a) == rel.tuple(sinks[0]).at(a))) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

Result<bool> IsDeterministicForRelation(const Specification& spec,
                                        const std::string& relation,
                                        const DcipOptions& options) {
  ASSIGN_OR_RETURN(int inst, spec.InstanceIndex(relation));
  if (options.use_ptime_path_without_constraints &&
      !spec.HasDenialConstraints()) {
    ASSIGN_OR_RETURN(ChaseResult chase, ChaseCopyOrders(spec));
    if (!chase.consistent) return true;  // vacuous
    return DeterministicViaChase(spec, chase, inst);
  }
  Encoder::Options enc = options.encoder;
  enc.define_is_last = true;
  ASSIGN_OR_RETURN(auto encoder, Encoder::Build(spec, enc));
  if (encoder->solver().Solve() == sat::SolveResult::kUnsat) {
    return true;  // vacuous
  }
  return DeterministicViaSat(spec, encoder.get(), inst);
}

Result<bool> IsDeterministic(const Specification& spec,
                             const DcipOptions& options) {
  for (int i = 0; i < spec.num_instances(); ++i) {
    ASSIGN_OR_RETURN(bool det, IsDeterministicForRelation(
                                   spec, spec.instance(i).name(), options));
    if (!det) return false;
  }
  return true;
}

}  // namespace currency::core
