#include "src/core/deterministic.h"

#include <optional>
#include <vector>

#include "src/core/chase.h"
#include "src/core/decompose.h"
#include "src/exec/thread_pool.h"

namespace currency::core {

namespace internal {

/// Shared implementation deciding determinism for one instance index given
/// an already-built encoder whose formula was just solved satisfiable (the
/// model is current).  On a component encoder, only the groups it defines
/// is-last selectors for are examined — the others belong to different
/// coupling components and are checked against their own encoders.
Result<bool> DeterministicProbe(const Specification& spec, Encoder* encoder,
                                int inst, sat::Portfolio* portfolio) {
  const TemporalInstance& instance = spec.instance(inst);
  const Relation& rel = instance.relation();
  // Phase 1 — snapshot every baseline from the model in hand, BEFORE any
  // assumption solve: a kSat call overwrites the model, and nothing in
  // the solver contract promises it survives a kUnsat call either, so no
  // baseline may be read after solving resumes.
  struct Probe {
    AttrIndex attr;
    TupleId candidate;
  };
  std::vector<Probe> probes;
  for (AttrIndex a = 1; a < instance.schema().arity(); ++a) {
    for (const auto& [eid, members] : rel.EntityGroups()) {
      (void)eid;
      if (members.size() <= 1) continue;
      if (encoder->IsLastVar(inst, a, members[0]) < 0) {
        continue;  // another component's group
      }
      // Baseline value: the tuple the model selects as most current.
      TupleId baseline = -1;
      for (TupleId u : members) {
        if (encoder->solver().ModelValue(encoder->IsLastVar(inst, a, u))) {
          baseline = u;
          break;
        }
      }
      if (baseline < 0) {
        return Status::Internal("model selects no current tuple");
      }
      const Value& base_value = rel.tuple(baseline).at(a);
      // Any candidate with a DIFFERENT value that can be most current
      // witnesses non-determinism.  (Candidates with equal value cannot
      // change the current instance.)
      for (TupleId u : members) {
        if (u == baseline || rel.tuple(u).at(a) == base_value) continue;
        probes.push_back(Probe{a, u});
      }
    }
  }
  // Phase 2 — probe the alternatives.  Every probe is a bare verdict, so
  // racing it through a portfolio cannot change the answer.
  for (const Probe& probe : probes) {
    sat::Lit assume =
        sat::MakeLit(encoder->IsLastVar(inst, probe.attr, probe.candidate));
    if (portfolio != nullptr) {
      ASSIGN_OR_RETURN(sat::SolveResult verdict, portfolio->Solve({assume}));
      if (verdict == sat::SolveResult::kSat) return false;
    } else if (encoder->solver().SolveWithAssumptions({assume}) ==
               sat::SolveResult::kSat) {
      return false;
    }
  }
  return true;
}

bool DeterministicViaComponentChase(const Specification& spec,
                                    const ComponentChase& chase, int inst) {
  const Relation& rel = spec.instance(inst).relation();
  for (const ComponentChase::Node& node : chase.nodes) {
    if (node.inst != inst || node.members.size() <= 1) continue;
    std::vector<int> all(node.members.size());
    for (size_t k = 0; k < all.size(); ++k) all[k] = static_cast<int>(k);
    for (size_t a = 1; a < node.orders.size(); ++a) {
      std::vector<int> sinks = node.orders[a].SinksWithin(all);
      for (size_t k = 1; k < sinks.size(); ++k) {
        if (!(rel.tuple(node.members[sinks[k]]).at(a) ==
              rel.tuple(node.members[sinks[0]]).at(a))) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace internal

namespace {

/// PTIME path (Theorem 6.1(3)): deterministic iff for each entity and
/// attribute, all sinks of PO∞ agree on the attribute value.
Result<bool> DeterministicViaChase(const Specification& spec,
                                   const ChaseResult& chase, int inst) {
  const TemporalInstance& instance = spec.instance(inst);
  const Relation& rel = instance.relation();
  for (AttrIndex a = 1; a < instance.schema().arity(); ++a) {
    const PartialOrder& po = chase.certain_orders[inst][a];
    for (const auto& [eid, members] : rel.EntityGroups()) {
      (void)eid;
      std::vector<int> sinks = po.SinksWithin(members);
      for (size_t k = 1; k < sinks.size(); ++k) {
        if (!(rel.tuple(sinks[k]).at(a) == rel.tuple(sinks[0]).at(a))) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

Result<bool> IsDeterministicForRelation(const Specification& spec,
                                        const std::string& relation,
                                        const DcipOptions& options) {
  ASSIGN_OR_RETURN(int inst, spec.InstanceIndex(relation));
  if (options.use_ptime_path_without_constraints &&
      !spec.HasDenialConstraints()) {
    ASSIGN_OR_RETURN(ChaseResult chase, ChaseCopyOrders(spec));
    if (!chase.consistent) return true;  // vacuous
    return DeterministicViaChase(spec, chase, inst);
  }
  Encoder::Options enc = options.encoder;
  enc.define_is_last = true;
  if (options.use_decomposition) {
    ASSIGN_OR_RETURN(auto decomposed,
                     DecomposedEncoder::Build(spec, enc,
                                              options.use_chase_routing));
    std::optional<exec::ThreadPool> local_pool;
    exec::ThreadPool* pool =
        exec::ResolvePool(options.pool, options.num_threads, local_pool);
    ASSIGN_OR_RETURN(bool consistent,
                     decomposed->SolveAll({}, pool, &options.portfolio));
    if (!consistent) return true;  // vacuous
    // Each entity group's determinism is decided by its own component
    // (SolveAll left every regular component encoder holding a model), so
    // the groups probe concurrently — one task per component, cancelling
    // the rest once any witness of non-determinism is found.  Dominant
    // components leave the ParallelFor: their probes race through the
    // component portfolio, which owns the pool, so they run sequentially
    // afterwards (ParallelFor regions must not nest).
    const std::vector<int>& all_components =
        decomposed->decomposition().ComponentsOfInstance(inst);
    std::vector<int> components;
    std::vector<int> dominant;
    components.reserve(all_components.size());
    for (int c : all_components) {
      if (decomposed->PortfolioEligible(c, &options.portfolio, pool)) {
        dominant.push_back(c);
      } else {
        components.push_back(c);
      }
    }
    std::vector<char> nondeterministic(components.size(), 0);
    exec::CancellationToken cancel;
    RETURN_IF_ERROR(pool->ParallelFor(
        static_cast<int>(components.size()),
        [&](int k) -> Status {
          if (decomposed->chase_routed(components[k])) {
            ASSIGN_OR_RETURN(
                const ComponentChase* chase,
                decomposed->ComponentChaseFixpoint(components[k]));
            if (!internal::DeterministicViaComponentChase(spec, *chase,
                                                          inst)) {
              nondeterministic[k] = 1;
              cancel.Cancel();
            }
            return Status::OK();
          }
          ASSIGN_OR_RETURN(Encoder * encoder,
                           decomposed->ComponentEncoder(components[k]));
          ASSIGN_OR_RETURN(bool deterministic,
                           internal::DeterministicProbe(spec, encoder, inst));
          if (!deterministic) {
            nondeterministic[k] = 1;
            cancel.Cancel();
          }
          return Status::OK();
        },
        &cancel));
    for (char n : nondeterministic) {
      if (n) return false;
    }
    for (int c : dominant) {
      ASSIGN_OR_RETURN(Encoder * encoder, decomposed->ComponentEncoder(c));
      // The raced base solve was verdict-only, so the primary may hold no
      // model; re-establish one for the phase-1 baseline snapshot.
      if (encoder->solver().Solve() != sat::SolveResult::kSat) {
        return Status::Internal("consistent component re-solved unsat");
      }
      ASSIGN_OR_RETURN(
          sat::Portfolio * race,
          decomposed->ComponentPortfolio(c, options.portfolio, pool));
      ASSIGN_OR_RETURN(bool deterministic,
                       internal::DeterministicProbe(spec, encoder, inst, race));
      if (!deterministic) return false;
    }
    return true;
  }
  ASSIGN_OR_RETURN(auto encoder, Encoder::Build(spec, enc));
  if (encoder->solver().Solve() == sat::SolveResult::kUnsat) {
    return true;  // vacuous
  }
  return internal::DeterministicProbe(spec, encoder.get(), inst);
}

Result<bool> IsDeterministic(const Specification& spec,
                             const DcipOptions& options) {
  for (int i = 0; i < spec.num_instances(); ++i) {
    ASSIGN_OR_RETURN(bool det, IsDeterministicForRelation(
                                   spec, spec.instance(i).name(), options));
    if (!det) return false;
  }
  return true;
}

}  // namespace currency::core
