// Completions of a specification and current-instance (LST) extraction
// (Section 2).
//
// A completion assigns, per instance and data attribute, a currency order
// that is total on every entity group and contains the instance's initial
// partial order.  A *consistent* completion additionally satisfies the
// denial constraints and the ≺-compatibility of all copy functions.
// The current instance LST(D_t^c) collects, per entity, the tuple of most
// current attribute values.

#ifndef CURRENCY_SRC_CORE_COMPLETION_H_
#define CURRENCY_SRC_CORE_COMPLETION_H_

#include <vector>

#include "src/common/result.h"
#include "src/core/specification.h"

namespace currency::core {

/// A (candidate) completion: orders[i][a] is the completed currency order
/// of instance i, attribute a (index 0 unused).
struct Completion {
  std::vector<std::vector<PartialOrder>> orders;
};

/// Checks conditions (1)-(3) of "consistent completion" (Section 2):
/// each orders[i][a] extends the initial order, is total exactly on entity
/// groups, satisfies Σ_i, and every copy function is ≺-compatible.
/// Returns true/false for well-formed candidates, error Status for shape
/// mismatches (wrong sizes).
Result<bool> IsConsistentCompletion(const Specification& spec,
                                    const Completion& completion);

/// Extracts LST for instance `i`: one tuple per entity, taking for each
/// attribute the value of the greatest tuple in the completed order.
/// Requires the completion to be total on entity groups.
Result<Relation> CurrentInstance(const Specification& spec,
                                 const Completion& completion, int i);

/// All current instances as a query database.  The returned relations are
/// materialized into `storage` (one per instance, borrowed by the map).
Result<query::Database> CurrentDatabase(const Specification& spec,
                                        const Completion& completion,
                                        std::vector<Relation>* storage);

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_COMPLETION_H_
