// TemporalInstance: a normal instance D plus one partial currency order
// ≺_A per data attribute (Section 2: D_t = (D, ≺_A1, ..., ≺_An)).
//
// Currency orders only relate tuples of one entity (t1 ≺ t2 implies
// t1[EID] = t2[EID]); AddOrder enforces this.

#ifndef CURRENCY_SRC_CORE_TEMPORAL_INSTANCE_H_
#define CURRENCY_SRC_CORE_TEMPORAL_INSTANCE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/order/partial_order.h"
#include "src/relational/relation.h"

namespace currency::core {

/// A temporal instance: relation + per-attribute partial currency orders.
/// orders()[a] is the order for attribute index a; index 0 (EID) is kept
/// as an always-empty placeholder so attribute indices line up.
class TemporalInstance {
 public:
  TemporalInstance() = default;
  explicit TemporalInstance(Relation relation)
      : relation_(std::move(relation)),
        orders_(relation_.schema().arity(), PartialOrder(relation_.size())) {}

  const Relation& relation() const { return relation_; }
  const Schema& schema() const { return relation_.schema(); }
  const std::string& name() const { return schema().relation_name(); }

  const std::vector<PartialOrder>& orders() const { return orders_; }
  const PartialOrder& order(AttrIndex attr) const { return orders_[attr]; }

  /// Declares u ≺_attr v.  Fails if attr is the EID, the tuples belong to
  /// different entities, or the pair would create a cycle.
  Status AddOrder(AttrIndex attr, TupleId u, TupleId v);

  /// Same, resolving the attribute by name.
  Status AddOrderByName(const std::string& attr, TupleId u, TupleId v);

  /// Appends a tuple (no initial orders on it).  Used when extensions of
  /// copy functions import new tuples (Section 4).
  Result<TupleId> AppendTuple(Tuple tuple);

  /// Overwrites one cell of the relation in place; the currency orders are
  /// untouched (tuple ids are stable under UpdateValue).  Callers must
  /// keep the same-entity invariant of the orders — an EID edit on a tuple
  /// with initial order pairs would strand them, which is why
  /// Specification::ApplyTupleEdits (the only intended caller) rejects
  /// such edits up front.
  Status UpdateValue(TupleId id, AttrIndex attr, Value v) {
    return relation_.UpdateValue(id, attr, std::move(v));
  }

  /// Total number of same-entity tuple pairs (u < v), i.e. the number of
  /// order decisions a completion has to make per attribute.
  int64_t NumEntityPairs() const;

 private:
  Relation relation_;
  std::vector<PartialOrder> orders_;
};

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_TEMPORAL_INSTANCE_H_
