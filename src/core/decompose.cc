#include "src/core/decompose.h"

#include <algorithm>
#include <numeric>
#include <set>
#include <string>
#include <utility>

namespace currency::core {

namespace {

/// 64-bit FNV-1a-style accumulator for component fingerprints.  Not
/// cryptographic: the serving layer's cache reuse is correct modulo
/// 64-bit collisions, which is the usual content-hash trade-off.
struct Fingerprinter {
  uint64_t h = 1469598103934665603ull;  // FNV offset basis

  void Mix(uint64_t x) {
    for (int k = 0; k < 8; ++k) {
      h ^= (x >> (8 * k)) & 0xff;
      h *= 1099511628211ull;  // FNV prime
    }
  }
  void MixValue(const Value& v) {
    // Value::Hash is consistent with operator== (Int/Double interleave),
    // matching the equality the encoder's cell dedup uses.
    Mix(static_cast<uint64_t>(v.Hash()));
  }
  void MixString(const std::string& s) {
    Mix(s.size());
    for (char ch : s) {
      h ^= static_cast<unsigned char>(ch);
      h *= 1099511628211ull;
    }
  }
};

/// Plain union-find over dense node ids.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Unite(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

Result<Decomposition> Decomposition::Build(const Specification& spec) {
  Decomposition d;
  d.num_instances_ = spec.num_instances();

  // Nodes: one per (instance, entity) group, densely numbered.
  std::vector<EntityNode> nodes;
  d.node_component_.resize(spec.num_instances());
  std::vector<std::map<Value, int>> node_id(spec.num_instances());
  for (int i = 0; i < spec.num_instances(); ++i) {
    for (const auto& [eid, members] : spec.instance(i).relation().EntityGroups()) {
      (void)members;
      node_id[i][eid] = static_cast<int>(nodes.size());
      nodes.push_back(EntityNode{i, eid});
    }
  }
  UnionFind uf(static_cast<int>(nodes.size()));
  // Nodes touched by a coupling (≥ 2-distinct-source) copy bucket; such a
  // node's attributes are value-correlated with its bucket peers, which
  // disqualifies it from chase-only fragment ENUMERATION (eligibility for
  // the chase decision procedures is unaffected).
  std::vector<char> coupled(nodes.size(), 0);

  // Copy edges: a ≺-compatibility clause arises between two mappings
  // (t1 ⇐ s1), (t2 ⇐ s2) exactly when t1, t2 share a target entity,
  // s1, s2 share a source entity, and s1 ≠ s2 (target tuples are always
  // distinct).  So a (target entity, source entity) bucket couples its
  // two groups iff it maps from at least two distinct source tuples.
  for (const CopyEdge& edge : spec.copy_edges()) {
    if (edge.source_instance < 0 ||
        edge.source_instance >= spec.num_instances() ||
        edge.target_instance < 0 ||
        edge.target_instance >= spec.num_instances()) {
      return Status::Internal("copy edge references an unknown instance");
    }
    const Relation& target = spec.instance(edge.target_instance).relation();
    const Relation& source = spec.instance(edge.source_instance).relation();
    std::map<std::pair<Value, Value>, std::set<TupleId>> bucket_sources;
    for (const auto& [t, s] : edge.fn.mapping()) {
      if (t < 0 || t >= target.size() || s < 0 || s >= source.size()) {
        return Status::Internal("copy mapping references an unknown tuple");
      }
      bucket_sources[{target.tuple(t).eid(), source.tuple(s).eid()}].insert(s);
    }
    for (const auto& [key, sources] : bucket_sources) {
      if (sources.size() < 2) continue;  // no clause between these groups
      int tn = node_id[edge.target_instance].at(key.first);
      int sn = node_id[edge.source_instance].at(key.second);
      uf.Unite(tn, sn);
      coupled[tn] = 1;
      coupled[sn] = 1;
    }
  }

  // Grounded denial constraints contribute no edges: in the implemented
  // constraint language every grounding instantiates all tuple variables
  // within one entity group (the EID-equality premises are implicit, and
  // DenialConstraint::EnumerateGroundingsForGroup enforces it
  // structurally — there is no API that could emit a cross-group
  // grounding).  A future multi-entity constraint extension must add its
  // coupling edges here, next to the copy edges above; until then,
  // scanning groundings would only duplicate the encoders' grounding
  // work to discover nothing.

  // Components, numbered in first-encounter order of their nodes (nodes
  // are ordered by instance, then entity value).
  std::map<int, int> root_component;
  for (size_t n = 0; n < nodes.size(); ++n) {
    int root = uf.Find(static_cast<int>(n));
    auto [it, inserted] =
        root_component.try_emplace(root, static_cast<int>(d.components_.size()));
    if (inserted) d.components_.emplace_back();
    d.components_[it->second].push_back(nodes[n]);
    d.node_component_[nodes[n].inst][nodes[n].eid] = it->second;
  }

  d.instance_components_.resize(spec.num_instances());
  for (int i = 0; i < spec.num_instances(); ++i) {
    std::set<int> comps;
    for (const auto& [eid, c] : d.node_component_[i]) {
      (void)eid;
      comps.insert(c);
    }
    d.instance_components_[i].assign(comps.begin(), comps.end());
  }

  // --- Component fingerprints -------------------------------------------
  // Contributions accumulate strictly in the deterministic iteration
  // orders below (nodes in first-encounter order, entity groups and
  // buckets in Value order, mappings in TupleId order), so a component
  // with identical content hashes identically across rebuilds over a
  // mutated specification.  Coverage: a per-component encoder build reads
  // (a) its member tuples, (b) the initial orders among them, (c) the
  // ≥2-distinct-source copy buckets — single-source buckets emit neither
  // ≺-compatibility clauses nor chase derivations, both of which need two
  // mappings with distinct sources — and (d) per member group, the texts
  // of exactly the denial constraints with at least one grounding on the
  // group (a grounding set is a function of the constraint text and the
  // member values, and the values are hashed under 0xA0; constraints that
  // ground to nothing contribute no clauses and no closure rules, so
  // adding or removing one must not — and does not — move any
  // fingerprint); chase seeding, when enabled, derives only from
  // (b) + (c) inside the component.  Options and schemas are
  // edit-invariant and deliberately not hashed.  The same grounding scan
  // decides chase-eligibility: a component none of whose groups is
  // touched by any grounding is effectively constraint-free.
  std::vector<Fingerprinter> fp(d.components_.size());
  std::vector<std::vector<std::string>> constraint_texts(spec.num_instances());
  for (int i = 0; i < spec.num_instances(); ++i) {
    for (const auto& dc : spec.constraints_for(i)) {
      constraint_texts[i].push_back(dc.ToString(spec.instance(i).schema()));
    }
  }
  d.chase_eligible_.assign(d.components_.size(), 1);
  for (size_t c = 0; c < d.components_.size(); ++c) {
    for (const EntityNode& node : d.components_[c]) {
      const Relation& rel = spec.instance(node.inst).relation();
      const std::vector<TupleId>& members = rel.EntityGroups().at(node.eid);
      fp[c].Mix(0xA0);  // domain separator: nodes + members
      fp[c].Mix(static_cast<uint64_t>(node.inst));
      fp[c].MixValue(node.eid);
      const auto& dcs = spec.constraints_for(node.inst);
      for (size_t k = 0; k < dcs.size(); ++k) {
        if (!dcs[k].HasGroundingForGroup(rel, members)) continue;
        d.chase_eligible_[c] = 0;
        fp[c].Mix(0xD0);  // domain separator: grounded constraints
        fp[c].MixString(constraint_texts[node.inst][k]);
      }
      for (TupleId t : members) {
        fp[c].Mix(static_cast<uint64_t>(t));
        for (const Value& v : rel.tuple(t).values()) fp[c].MixValue(v);
      }
    }
  }
  d.chase_enumerable_.assign(d.components_.size(), 0);
  for (size_t c = 0; c < d.components_.size(); ++c) {
    if (!d.chase_eligible_[c] || d.components_[c].size() != 1) continue;
    const EntityNode& node = d.components_[c][0];
    // A singleton component is bucket-free unless a self-copy bucket
    // (target and source the same group) couples its attributes.
    if (!coupled[node_id[node.inst].at(node.eid)]) {
      d.chase_enumerable_[c] = 1;
    }
  }
  for (int i = 0; i < spec.num_instances(); ++i) {
    const TemporalInstance& inst = spec.instance(i);
    for (AttrIndex a = 1; a < inst.schema().arity(); ++a) {
      for (auto [u, v] : inst.order(a).Pairs()) {
        // Both endpoints share an entity (the AddOrder invariant), so the
        // pair lands in exactly one component.
        int c = d.node_component_[i].at(inst.relation().tuple(u).eid());
        fp[c].Mix(0xB0);  // domain separator: initial orders
        fp[c].Mix(static_cast<uint64_t>(a));
        fp[c].Mix(static_cast<uint64_t>(u));
        fp[c].Mix(static_cast<uint64_t>(v));
      }
    }
  }
  for (size_t e = 0; e < spec.copy_edges().size(); ++e) {
    const CopyEdge& edge = spec.copy_edges()[e];
    const Relation& target = spec.instance(edge.target_instance).relation();
    const Relation& source = spec.instance(edge.source_instance).relation();
    std::map<std::pair<Value, Value>, std::vector<std::pair<TupleId, TupleId>>>
        bucket_mapped;
    std::map<std::pair<Value, Value>, std::set<TupleId>> bucket_srcs;
    for (const auto& [t, s] : edge.fn.mapping()) {
      auto key = std::make_pair(target.tuple(t).eid(), source.tuple(s).eid());
      bucket_mapped[key].emplace_back(t, s);
      bucket_srcs[key].insert(s);
    }
    for (const auto& [key, mapped] : bucket_mapped) {
      if (bucket_srcs.at(key).size() < 2) continue;  // inert bucket
      // A coupling bucket's target and source groups share a component.
      int c = d.node_component_[edge.target_instance].at(key.first);
      fp[c].Mix(0xC0);  // domain separator: coupling copy buckets
      fp[c].Mix(e);
      fp[c].MixValue(key.first);
      fp[c].MixValue(key.second);
      for (auto [t, s] : mapped) {
        fp[c].Mix(static_cast<uint64_t>(t));
        fp[c].Mix(static_cast<uint64_t>(s));
      }
    }
  }
  d.fingerprints_.resize(d.components_.size());
  for (size_t c = 0; c < d.components_.size(); ++c) {
    d.fingerprints_[c] = fp[c].h;
  }
  return d;
}

int Decomposition::ComponentOf(int inst, const Value& eid) const {
  if (inst < 0 || inst >= num_instances_) return -1;
  auto it = node_component_[inst].find(eid);
  return it == node_component_[inst].end() ? -1 : it->second;
}

std::vector<int> Decomposition::ComponentsOfInstances(
    const std::vector<int>& instances) const {
  std::set<int> comps;
  for (int i : instances) {
    comps.insert(instance_components_[i].begin(),
                 instance_components_[i].end());
  }
  return std::vector<int>(comps.begin(), comps.end());
}

EntityFilter Decomposition::FilterFor(
    const std::vector<int>& components) const {
  EntityFilter filter;
  filter.allowed.resize(num_instances_);
  for (int c : components) {
    for (const EntityNode& node : components_[c]) {
      filter.allowed[node.inst].insert(node.eid);
    }
  }
  return filter;
}

Result<std::unique_ptr<DecomposedEncoder>> DecomposedEncoder::Build(
    const Specification& spec, const Encoder::Options& options,
    bool use_chase_routing) {
  std::unique_ptr<DecomposedEncoder> de(new DecomposedEncoder());
  de->spec_ = &spec;
  de->options_ = options;
  de->use_chase_routing_ = use_chase_routing;
  de->options_.restrict_to = nullptr;  // set per component below
  de->options_.copy_index = nullptr;   // points into copy_index_ per build
  de->options_.chase_seed = nullptr;   // points into chase_seed_ per build
  // Decomposition::Build touches every instance's EntityGroups(), which
  // warms the Relation-level lazy cache before any parallel work begins;
  // from here on the specification, the decomposition, the copy index and
  // the chase seed are read-only shared state (see the header's thread-
  // confinement contract).
  ASSIGN_OR_RETURN(de->decomposition_, Decomposition::Build(spec));
  de->copy_index_ = CopyBucketIndex::Build(spec);
  if (options.seed_with_chase) {
    // The chase runs over the whole specification; compute it once here
    // instead of once per component encoder, sharing the bucket index
    // just built rather than bucketing the copy mappings again.
    ASSIGN_OR_RETURN(de->chase_seed_,
                     CertainOrderPrefix(spec, &de->copy_index_));
  }
  int n = de->decomposition_.num_components();
  de->filters_.reserve(n);
  for (int c = 0; c < n; ++c) {
    de->filters_.push_back(de->decomposition_.FilterFor({c}));
  }
  de->encoders_.resize(n);
  de->chases_.resize(n);
  de->portfolios_.resize(n);
  return de;
}

Result<const ComponentChase*> DecomposedEncoder::ComponentChaseFixpoint(
    int c) {
  if (c < 0 || c >= num_components()) {
    return Status::InvalidArgument("component index out of range");
  }
  if (!decomposition_.chase_eligible(c)) {
    return Status::InvalidArgument(
        "component " + std::to_string(c) + " is not chase-eligible");
  }
  if (chases_[c] == nullptr) {
    ASSIGN_OR_RETURN(ComponentChase chase, BuildComponentChase(c));
    chases_[c] = std::make_unique<ComponentChase>(std::move(chase));
  }
  return chases_[c].get();
}

Result<ComponentChase> DecomposedEncoder::BuildComponentChase(int c) const {
  if (c < 0 || c >= num_components()) {
    return Status::InvalidArgument("component index out of range");
  }
  if (!decomposition_.chase_eligible(c)) {
    return Status::InvalidArgument(
        "component " + std::to_string(c) + " is not chase-eligible");
  }
  std::vector<std::pair<int, Value>> nodes;
  for (const EntityNode& node : decomposition_.component(c)) {
    nodes.emplace_back(node.inst, node.eid);
  }
  return ChaseComponentOrders(*spec_, nodes, &copy_index_);
}

std::unique_ptr<ComponentChase> DecomposedEncoder::TakeComponentChase(int c) {
  if (c < 0 || c >= num_components()) return nullptr;
  return std::move(chases_[c]);
}

Status DecomposedEncoder::AdoptComponentChase(
    int c, std::unique_ptr<ComponentChase> chase) {
  if (c < 0 || c >= num_components()) {
    return Status::InvalidArgument("component index out of range");
  }
  if (!decomposition_.chase_eligible(c)) {
    return Status::InvalidArgument(
        "component " + std::to_string(c) + " is not chase-eligible");
  }
  if (chases_[c] != nullptr) {
    return Status::FailedPrecondition(
        "component " + std::to_string(c) + " already has a chase fixpoint");
  }
  chases_[c] = std::move(chase);
  return Status::OK();
}

Result<Encoder*> DecomposedEncoder::ComponentEncoder(int c) {
  if (c < 0 || c >= num_components()) {
    return Status::InvalidArgument("component index out of range");
  }
  if (encoders_[c] == nullptr) {
    ASSIGN_OR_RETURN(encoders_[c], BuildComponentEncoder(c));
  }
  return encoders_[c].get();
}

Result<std::unique_ptr<Encoder>> DecomposedEncoder::BuildComponentEncoder(
    int c, const sat::Solver::Options& solver_options) const {
  if (c < 0 || c >= num_components()) {
    return Status::InvalidArgument("component index out of range");
  }
  Encoder::Options options = options_;
  options.restrict_to = &filters_[c];
  options.copy_index = &copy_index_;
  options.solver = solver_options;
  if (chase_seed_.has_value()) options.chase_seed = &*chase_seed_;
  return Encoder::Build(*spec_, options);
}

bool DecomposedEncoder::PortfolioEligible(
    int c, const sat::PortfolioOptions* portfolio,
    const exec::ThreadPool* pool) const {
  if (portfolio == nullptr || !portfolio->enabled) return false;
  if (pool == nullptr || pool->num_threads() <= 1) return false;
  if (c < 0 || c >= num_components() || chase_routed(c)) return false;
  return static_cast<int>(decomposition_.component(c).size()) >=
         portfolio->min_component_size;
}

Result<sat::Portfolio*> DecomposedEncoder::ComponentPortfolio(
    int c, const sat::PortfolioOptions& portfolio, exec::ThreadPool* pool) {
  if (c < 0 || c >= num_components()) {
    return Status::InvalidArgument("component index out of range");
  }
  if (portfolios_[c] == nullptr) {
    ASSIGN_OR_RETURN(Encoder * primary, ComponentEncoder(c));
    auto slot = std::make_unique<PortfolioSlot>();
    PortfolioSlot* raw = slot.get();
    // The spawn closure builds a rival encoder over the same component
    // (same read-only inputs, hence the same CNF) with diversified
    // solver knobs, and parks it in the slot so its solver outlives the
    // Portfolio that borrows it.
    auto spawn = [this, c, raw](
                     int /*config*/, const sat::Solver::Options& options)
        -> Result<sat::Solver*> {
      ASSIGN_OR_RETURN(std::unique_ptr<Encoder> rival,
                       BuildComponentEncoder(c, options));
      raw->rivals.push_back(std::move(rival));
      return &raw->rivals.back()->solver();
    };
    slot->portfolio = std::make_unique<sat::Portfolio>(
        &primary->solver(), std::move(spawn), portfolio, pool);
    portfolios_[c] = std::move(slot);
  }
  return portfolios_[c]->portfolio.get();
}

std::unique_ptr<Encoder> DecomposedEncoder::TakeComponentEncoder(int c) {
  if (c < 0 || c >= num_components()) return nullptr;
  // A portfolio slot borrows this encoder's solver as its primary; drop
  // it (rivals included) rather than leave it dangling.
  portfolios_[c] = nullptr;
  return std::move(encoders_[c]);
}

Status DecomposedEncoder::AdoptComponentEncoder(
    int c, std::unique_ptr<Encoder> encoder) {
  if (c < 0 || c >= num_components()) {
    return Status::InvalidArgument("component index out of range");
  }
  if (encoders_[c] != nullptr) {
    return Status::FailedPrecondition(
        "component " + std::to_string(c) + " already has an encoder");
  }
  encoders_[c] = std::move(encoder);
  return Status::OK();
}

Result<std::unique_ptr<Encoder>> DecomposedEncoder::BuildMergedEncoder(
    const std::vector<int>& components) const {
  for (int c : components) {
    if (c < 0 || c >= num_components()) {
      return Status::InvalidArgument("component index out of range");
    }
  }
  EntityFilter filter = decomposition_.FilterFor(components);
  Encoder::Options options = options_;
  options.restrict_to = &filter;
  options.copy_index = &copy_index_;
  if (chase_seed_.has_value()) options.chase_seed = &*chase_seed_;
  return Encoder::Build(*spec_, options);
}

Result<bool> DecomposedEncoder::SolveAll(
    const std::vector<int>& skip, exec::ThreadPool* pool,
    const sat::PortfolioOptions* portfolio) {
  // Smallest encoding first: an UNSAT answer then costs as little as the
  // cheapest refuting component allows.  The weight estimates the number
  // of order variables (Σ m² per node, scaled by data attributes).
  std::vector<char> skipped(num_components(), 0);
  for (int c : skip) {
    if (c >= 0 && c < num_components()) skipped[c] = 1;
  }
  // Chase-routed components first: each is a cheap (cached) polynomial
  // fixpoint, so deciding them before any SAT work makes an UNSAT verdict
  // from a constraint-free component nearly free and keeps their encoders
  // unbuilt on the happy path.
  if (use_chase_routing_) {
    for (int c = 0; c < num_components(); ++c) {
      if (skipped[c] || !decomposition_.chase_eligible(c)) continue;
      ASSIGN_OR_RETURN(const ComponentChase* chase, ComponentChaseFixpoint(c));
      if (!chase->consistent) return false;
    }
  }
  // Dominant components (PortfolioEligible) leave the fan-out: they are
  // raced sequentially below, one ParallelFor region at a time from this
  // thread, because regions must not nest on one pool.  The small
  // components keep the existing one-task-per-component path.
  std::vector<std::pair<int64_t, int>> order;
  std::vector<std::pair<int64_t, int>> dominant;
  order.reserve(num_components());
  for (int c = 0; c < num_components(); ++c) {
    if (skipped[c]) continue;
    if (use_chase_routing_ && decomposition_.chase_eligible(c)) continue;
    int64_t weight = 0;
    for (const EntityNode& node : decomposition_.component(c)) {
      const TemporalInstance& inst = spec_->instance(node.inst);
      auto m = static_cast<int64_t>(
          inst.relation().EntityGroups().at(node.eid).size());
      weight += m * m * inst.schema().num_data_attributes();
    }
    if (PortfolioEligible(c, portfolio, pool)) {
      dominant.emplace_back(weight, c);
    } else {
      order.emplace_back(weight, c);
    }
  }
  std::sort(order.begin(), order.end());
  std::sort(dominant.begin(), dominant.end());
  // One task per component, claimed smallest-first, with cooperative
  // first-UNSAT cancellation.  Each task builds and solves only its own
  // component encoder (thread confinement; see the header), so every
  // component's model is the same one the sequential path would compute.
  // Cancellation only skips components whose results no caller observes:
  // the answer is already false, and ExtractCompletion is reachable only
  // off a satisfiable (uncancelled, fully solved) run.  Without threads
  // ParallelFor degenerates to the plain smallest-first loop with its
  // first-UNSAT early exit — one implementation covers both modes.
  exec::ThreadPool sequential(1);
  if (pool == nullptr) pool = &sequential;
  std::vector<char> unsat(order.size(), 0);
  exec::CancellationToken cancel;
  RETURN_IF_ERROR(pool->ParallelFor(
      static_cast<int>(order.size()),
      [&](int k) -> Status {
        ASSIGN_OR_RETURN(Encoder * encoder, ComponentEncoder(order[k].second));
        if (encoder->solver().Solve() == sat::SolveResult::kUnsat) {
          unsat[k] = 1;
          cancel.Cancel();
        }
        return Status::OK();
      },
      &cancel));
  for (char u : unsat) {
    if (u) return false;
  }
  // Dominant components last (the cheap refuters above already had their
  // short-circuit chance), smallest-first, one verdict race at a time.
  for (const auto& [weight, c] : dominant) {
    ASSIGN_OR_RETURN(sat::Portfolio * race,
                     ComponentPortfolio(c, *portfolio, pool));
    ASSIGN_OR_RETURN(sat::SolveResult verdict, race->Solve());
    if (verdict == sat::SolveResult::kUnsat) return false;
  }
  return true;
}

Result<Completion> DecomposedEncoder::ExtractCompletion() const {
  Completion merged;
  merged.orders.resize(spec_->num_instances());
  for (int i = 0; i < spec_->num_instances(); ++i) {
    const TemporalInstance& inst = spec_->instance(i);
    merged.orders[i].assign(inst.schema().arity(),
                            PartialOrder(inst.relation().size()));
  }
  for (int c = 0; c < num_components(); ++c) {
    if (encoders_[c] == nullptr) {
      return Status::FailedPrecondition(
          "ExtractCompletion requires a preceding satisfiable SolveAll()");
    }
    Completion part = encoders_[c]->ExtractCompletion();
    for (int i = 0; i < spec_->num_instances(); ++i) {
      for (size_t a = 1; a < part.orders[i].size(); ++a) {
        for (auto [u, v] : part.orders[i][a].Pairs()) {
          merged.orders[i][a].TryAdd(u, v);
        }
      }
    }
  }
  return merged;
}

}  // namespace currency::core
