#include "src/core/temporal_instance.h"

namespace currency::core {

Status TemporalInstance::AddOrder(AttrIndex attr, TupleId u, TupleId v) {
  if (attr < 1 || attr >= schema().arity()) {
    return Status::InvalidArgument(
        "currency orders are defined on data attributes only");
  }
  if (u < 0 || u >= relation_.size() || v < 0 || v >= relation_.size()) {
    return Status::InvalidArgument("tuple id out of range");
  }
  if (!(relation_.tuple(u).eid() == relation_.tuple(v).eid())) {
    return Status::InvalidArgument(
        "currency orders only relate tuples of one entity: " +
        relation_.tuple(u).ToString() + " vs " + relation_.tuple(v).ToString());
  }
  return orders_[attr].Add(u, v);
}

Status TemporalInstance::AddOrderByName(const std::string& attr, TupleId u,
                                        TupleId v) {
  ASSIGN_OR_RETURN(AttrIndex a, schema().IndexOf(attr));
  return AddOrder(a, u, v);
}

Result<TupleId> TemporalInstance::AppendTuple(Tuple tuple) {
  ASSIGN_OR_RETURN(TupleId id, relation_.Append(std::move(tuple)));
  for (PartialOrder& po : orders_) {
    RETURN_IF_ERROR(po.Resize(relation_.size()));
  }
  return id;
}

int64_t TemporalInstance::NumEntityPairs() const {
  int64_t total = 0;
  for (const auto& [eid, members] : relation_.EntityGroups()) {
    (void)eid;
    int64_t m = static_cast<int64_t>(members.size());
    total += m * (m - 1) / 2;
  }
  return total;
}

}  // namespace currency::core
