#include "src/core/brute_force.h"

#include <algorithm>

#include "src/core/chase.h"
#include "src/order/linear_extensions.h"

namespace currency::core {

namespace {

/// One (instance, entity group, attribute) slot whose linear extension a
/// completion must choose.
struct Slot {
  int inst;
  AttrIndex attr;
  std::vector<TupleId> members;
  std::vector<std::vector<TupleId>> extensions;  // all linear extensions
};

/// Definitive-violation check on partial orders: a grounded denial
/// constraint is hopeless once its premises are present and its conclusion
/// is absent-forever (pure denial, or the reverse pair already holds).
/// Sound for pruning because partial orders only grow along a branch.
bool DefinitelyViolated(const Specification& spec, int inst,
                        const std::vector<std::vector<PartialOrder>>& orders) {
  const Relation& rel = spec.instance(inst).relation();
  for (const auto& dc : spec.constraints_for(inst)) {
    bool violated = false;
    dc.EnumerateGroundings(rel, [&](const constraints::Grounding& g) {
      if (violated) return;
      for (const auto& p : g.premises) {
        if (!orders[inst][p.attr].Less(p.before, p.after)) return;
      }
      if (!g.conclusion.has_value()) {
        violated = true;
        return;
      }
      if (orders[inst][g.conclusion->attr].Less(g.conclusion->after,
                                                g.conclusion->before)) {
        violated = true;
      }
    });
    if (violated) return true;
  }
  // ≺-compatibility: a source pair whose target pair is reversed (or vice
  // versa) can never be repaired.
  for (const CopyEdge& edge : spec.copy_edges()) {
    const Relation& target = spec.instance(edge.target_instance).relation();
    const Relation& source = spec.instance(edge.source_instance).relation();
    auto attrs = edge.fn.ResolveAttrs(target.schema(), source.schema());
    if (!attrs.ok()) continue;  // validated at AddCopyFunction time
    for (const auto& [t1, s1] : edge.fn.mapping()) {
      for (const auto& [t2, s2] : edge.fn.mapping()) {
        if (t1 == t2 || s1 == s2) continue;
        if (!(target.tuple(t1).eid() == target.tuple(t2).eid())) continue;
        if (!(source.tuple(s1).eid() == source.tuple(s2).eid())) continue;
        for (const auto& [a, b] : *attrs) {
          if (orders[edge.source_instance][b].Less(s1, s2) &&
              orders[edge.target_instance][a].Less(t2, t1)) {
            return true;
          }
        }
      }
    }
  }
  return false;
}

}  // namespace

Result<int64_t> EnumerateConsistentCompletions(
    const Specification& spec,
    const std::function<bool(const Completion&)>& visit,
    const BruteForceOptions& options) {
  // Seed with the certain prefix: every consistent completion contains it,
  // so enumerating extensions of the seed loses nothing and cuts the
  // cross product by orders of magnitude on constrained inputs.
  ASSIGN_OR_RETURN(ChaseResult prefix, CertainOrderPrefix(spec));
  if (!prefix.consistent) return 0;

  // Collect slots and pre-enumerate their linear extensions, grouped
  // entity-major so the pruning check fires as early as possible.
  std::vector<Slot> slots;
  int64_t candidate_estimate = 1;
  for (int i = 0; i < spec.num_instances(); ++i) {
    const TemporalInstance& inst = spec.instance(i);
    for (const auto& [eid, members] : inst.relation().EntityGroups()) {
      (void)eid;
      if (members.size() <= 1) continue;  // single linearization, no choice
      for (AttrIndex a = 1; a < inst.schema().arity(); ++a) {
        Slot slot;
        slot.inst = i;
        slot.attr = a;
        slot.members = members;
        EnumerateLinearExtensions(prefix.certain_orders[i][a], members,
                                  [&](const std::vector<int>& seq) {
                                    slot.extensions.push_back(seq);
                                    return true;
                                  });
        if (slot.extensions.empty()) return 0;  // seed already cyclic
        candidate_estimate *= static_cast<int64_t>(slot.extensions.size());
        if (candidate_estimate > options.max_candidates) {
          return Status::ResourceExhausted(
              "brute-force oracle would enumerate more than " +
              std::to_string(options.max_candidates) + " candidates");
        }
        slots.push_back(std::move(slot));
      }
    }
    candidate_estimate = std::max<int64_t>(candidate_estimate, 1);
  }

  // Base completion: the certain prefix (covers singleton groups).
  Completion base;
  base.orders = prefix.certain_orders;

  int64_t visited = 0;
  bool stop = false;
  std::function<Status(size_t, Completion&)> rec =
      [&](size_t k, Completion& partial) -> Status {
    if (stop) return Status::OK();
    if (k == slots.size()) {
      ASSIGN_OR_RETURN(bool ok, IsConsistentCompletion(spec, partial));
      if (ok) {
        ++visited;
        if (!visit(partial)) stop = true;
      }
      return Status::OK();
    }
    const Slot& slot = slots[k];
    for (const auto& seq : slot.extensions) {
      Completion next = partial;  // copy: undo-free backtracking
      PartialOrder& po = next.orders[slot.inst][slot.attr];
      bool feasible = true;
      for (size_t j = 0; j + 1 < seq.size(); ++j) {
        if (!po.TryAdd(seq[j], seq[j + 1])) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      if (DefinitelyViolated(spec, slot.inst, next.orders)) continue;
      RETURN_IF_ERROR(rec(k + 1, next));
      if (stop) return Status::OK();
    }
    return Status::OK();
  };
  RETURN_IF_ERROR(rec(0, base));
  return visited;
}

Result<bool> BruteForceConsistent(const Specification& spec,
                                  const BruteForceOptions& options) {
  bool found = false;
  ASSIGN_OR_RETURN(int64_t n, EnumerateConsistentCompletions(
                                  spec,
                                  [&](const Completion&) {
                                    found = true;
                                    return false;  // one witness suffices
                                  },
                                  options));
  (void)n;
  return found;
}

Result<bool> BruteForceCertainOrder(const Specification& spec,
                                    const CurrencyOrderQuery& query,
                                    const BruteForceOptions& options) {
  ASSIGN_OR_RETURN(int inst, spec.InstanceIndex(query.relation));
  bool certain = true;
  ASSIGN_OR_RETURN(
      int64_t n,
      EnumerateConsistentCompletions(
          spec,
          [&](const Completion& c) {
            for (const RequiredPair& p : query.pairs) {
              if (!c.orders[inst][p.attr].Less(p.before, p.after)) {
                certain = false;
                return false;
              }
            }
            return true;
          },
          options));
  (void)n;
  return certain;  // vacuously true when no completions exist
}

Result<bool> BruteForceDeterministic(const Specification& spec,
                                     const std::string& relation,
                                     const BruteForceOptions& options) {
  ASSIGN_OR_RETURN(int inst, spec.InstanceIndex(relation));
  bool first = true;
  Relation reference;
  bool deterministic = true;
  Status inner = Status::OK();
  ASSIGN_OR_RETURN(int64_t n,
                   EnumerateConsistentCompletions(
                       spec,
                       [&](const Completion& c) {
                         auto lst = CurrentInstance(spec, c, inst);
                         if (!lst.ok()) {
                           inner = lst.status();
                           return false;
                         }
                         if (first) {
                           reference = std::move(lst).value();
                           first = false;
                           return true;
                         }
                         if (!(lst->tuples() == reference.tuples())) {
                           deterministic = false;
                           return false;
                         }
                         return true;
                       },
                       options));
  (void)n;
  RETURN_IF_ERROR(inner);
  return deterministic;
}

Result<std::set<Tuple>> BruteForceCertainAnswers(
    const Specification& spec, const query::Query& q,
    const BruteForceOptions& options) {
  std::set<Tuple> intersection;
  bool first = true;
  Status inner = Status::OK();
  ASSIGN_OR_RETURN(
      int64_t n,
      EnumerateConsistentCompletions(
          spec,
          [&](const Completion& c) {
            std::vector<Relation> storage;
            auto db = CurrentDatabase(spec, c, &storage);
            if (!db.ok()) {
              inner = db.status();
              return false;
            }
            auto answers = query::EvalQuery(q, *db);
            if (!answers.ok()) {
              inner = answers.status();
              return false;
            }
            if (first) {
              intersection = std::move(answers).value();
              first = false;
            } else {
              std::set<Tuple> merged;
              std::set_intersection(intersection.begin(), intersection.end(),
                                    answers->begin(), answers->end(),
                                    std::inserter(merged, merged.begin()));
              intersection = std::move(merged);
            }
            return true;
          },
          options));
  RETURN_IF_ERROR(inner);
  if (n == 0) {
    return Status::Inconsistent(
        "Mod(S) is empty: every tuple is vacuously a certain answer");
  }
  return intersection;
}

}  // namespace currency::core
