#include "src/core/preservation.h"

#include "src/core/consistency.h"

namespace currency::core {

namespace {

/// Certain answers plus a consistency flag (inconsistent specifications
/// have no finite answer set).
struct CertainAnswersOrInconsistent {
  bool consistent = false;
  std::set<Tuple> answers;
};

Result<CertainAnswersOrInconsistent> CertainOrInconsistent(
    const Specification& spec, const query::Query& q,
    const CcqaOptions& ccqa) {
  CertainAnswersOrInconsistent out;
  auto answers = CertainCurrentAnswers(spec, q, ccqa);
  if (!answers.ok()) {
    if (answers.status().code() == StatusCode::kInconsistent) {
      out.consistent = false;
      return out;
    }
    return answers.status();
  }
  out.consistent = true;
  out.answers = std::move(answers).value();
  return out;
}

}  // namespace

Result<std::vector<ExtensionAtom>> EnumerateExtensionAtoms(
    const Specification& spec, bool skip_duplicates) {
  std::vector<ExtensionAtom> atoms;
  for (size_t e = 0; e < spec.copy_edges().size(); ++e) {
    const CopyEdge& edge = spec.copy_edges()[e];
    const TemporalInstance& target = spec.instance(edge.target_instance);
    const TemporalInstance& source = spec.instance(edge.source_instance);
    // Section 4: only signatures covering all target data attributes are
    // extendable.
    if (!edge.fn.CoversAllTargetAttributes(target.schema())) continue;
    ASSIGN_OR_RETURN(auto attrs, edge.fn.ResolveAttrs(target.schema(),
                                                      source.schema()));
    // Kind (a): map existing unmapped target tuples to value-compatible
    // source tuples.
    for (TupleId t = 0; t < target.relation().size(); ++t) {
      if (edge.fn.SourceOf(t) >= 0) continue;
      for (TupleId s = 0; s < source.relation().size(); ++s) {
        bool compatible = true;
        for (const auto& [a, b] : attrs) {
          if (!(target.relation().tuple(t).at(a) ==
                source.relation().tuple(s).at(b))) {
            compatible = false;
            break;
          }
        }
        if (!compatible) continue;
        ExtensionAtom atom;
        atom.copy_edge = static_cast<int>(e);
        atom.maps_existing = true;
        atom.target_tuple = t;
        atom.source_tuple = s;
        atoms.push_back(std::move(atom));
      }
    }
    // Kind (b): import new tuples for existing target entities.
    std::vector<Value> target_entities = target.relation().Entities();
    for (TupleId s = 0; s < source.relation().size(); ++s) {
      for (const Value& eid : target_entities) {
        // Deduplicate: skip when this edge already imports s into eid.
        bool already = false;
        for (const auto& [t, src] : edge.fn.mapping()) {
          if (src == s && target.relation().tuple(t).eid() == eid) {
            already = true;
            break;
          }
        }
        if (already) continue;
        if (skip_duplicates) {
          // Would the imported tuple duplicate an existing one by value?
          bool duplicate = false;
          for (TupleId t = 0; t < target.relation().size(); ++t) {
            if (!(target.relation().tuple(t).eid() == eid)) continue;
            bool same = true;
            for (const auto& [a, b] : attrs) {
              if (!(target.relation().tuple(t).at(a) ==
                    source.relation().tuple(s).at(b))) {
                same = false;
                break;
              }
            }
            if (same) {
              duplicate = true;
              break;
            }
          }
          if (duplicate) continue;
        }
        ExtensionAtom atom;
        atom.copy_edge = static_cast<int>(e);
        atom.maps_existing = false;
        atom.source_tuple = s;
        atom.target_eid = eid;
        atoms.push_back(std::move(atom));
      }
    }
  }
  return atoms;
}

Result<Specification> ApplyExtension(const Specification& spec,
                                     const std::vector<ExtensionAtom>& atoms) {
  Specification extended = spec;  // deep copy (value semantics)
  for (const ExtensionAtom& atom : atoms) {
    if (atom.copy_edge < 0 ||
        atom.copy_edge >= static_cast<int>(extended.copy_edges().size())) {
      return Status::InvalidArgument("extension atom names no copy edge");
    }
    if (atom.maps_existing) {
      CopyEdge* edge = extended.mutable_copy_edge(atom.copy_edge);
      const TemporalInstance& target =
          extended.instance(edge->target_instance);
      const TemporalInstance& source =
          extended.instance(edge->source_instance);
      ASSIGN_OR_RETURN(auto attrs, edge->fn.ResolveAttrs(target.schema(),
                                                         source.schema()));
      if (atom.target_tuple < 0 ||
          atom.target_tuple >= target.relation().size() ||
          atom.source_tuple < 0 ||
          atom.source_tuple >= source.relation().size()) {
        return Status::InvalidArgument("extension atom tuple out of range");
      }
      for (const auto& [a, b] : attrs) {
        if (!(target.relation().tuple(atom.target_tuple).at(a) ==
              source.relation().tuple(atom.source_tuple).at(b))) {
          return Status::FailedPrecondition(
              "kind-(a) extension atom violates the copying condition");
        }
      }
      RETURN_IF_ERROR(edge->fn.Map(atom.target_tuple, atom.source_tuple));
    } else {
      RETURN_IF_ERROR(extended
                          .AppendCopiedTuple(atom.copy_edge, atom.source_tuple,
                                             atom.target_eid)
                          .status());
    }
  }
  return extended;
}

Result<bool> IsCurrencyPreserving(const Specification& spec,
                                  const query::Query& q,
                                  const PreservationOptions& options) {
  ASSIGN_OR_RETURN(CertainAnswersOrInconsistent base,
                   CertainOrInconsistent(spec, q, options.ccqa));
  if (!base.consistent) return false;  // definition condition (a)

  ASSIGN_OR_RETURN(std::vector<ExtensionAtom> atoms,
                   EnumerateExtensionAtoms(spec, options.skip_duplicate_imports));
  if (static_cast<int>(atoms.size()) > options.max_atoms) {
    return Status::ResourceExhausted(
        "extension space has " + std::to_string(atoms.size()) +
        " atoms; raise PreservationOptions::max_atoms to enumerate the "
        "subset lattice");
  }
  // DFS over the atom lattice.  Inconsistency is monotone under adding
  // imports, so an inconsistent node prunes its whole subtree.
  bool preserving = true;
  std::function<Result<bool>(const Specification&, size_t)> dfs =
      [&](const Specification& current, size_t next) -> Result<bool> {
    // `current` is consistent here (checked by the caller before recursing).
    for (size_t i = next; i < atoms.size() && preserving; ++i) {
      auto child = ApplyExtension(current, {atoms[i]});
      if (!child.ok()) {
        if (child.status().code() == StatusCode::kFailedPrecondition) {
          continue;  // conflicts with chosen atoms: no such extension
        }
        return child.status();
      }
      ASSIGN_OR_RETURN(CertainAnswersOrInconsistent ext,
                       CertainOrInconsistent(*child, q, options.ccqa));
      if (!ext.consistent) continue;  // prune: supersets stay inconsistent
      if (ext.answers != base.answers) {
        preserving = false;
        return false;
      }
      ASSIGN_OR_RETURN(bool sub, dfs(*child, i + 1));
      (void)sub;
    }
    return preserving;
  };
  RETURN_IF_ERROR(dfs(spec, 0).status());
  return preserving;
}

Result<bool> CanExtendToCurrencyPreserving(const Specification& spec,
                                           const query::Query& q) {
  (void)q;  // Proposition 5.2: the answer is independent of the query.
  ASSIGN_OR_RETURN(CpsOutcome cps, DecideConsistency(spec));
  return cps.consistent;
}

Result<std::vector<ExtensionAtom>> MaximalConsistentExtension(
    const Specification& spec, const PreservationOptions& options) {
  (void)options;
  ASSIGN_OR_RETURN(CpsOutcome cps, DecideConsistency(spec));
  if (!cps.consistent) {
    return Status::Inconsistent(
        "an inconsistent specification has no currency-preserving "
        "extension");
  }
  ASSIGN_OR_RETURN(std::vector<ExtensionAtom> atoms,
                   EnumerateExtensionAtoms(spec, options.skip_duplicate_imports));
  // Greedy pass (the constructive argument of Proposition 5.2): keep an
  // atom iff the specification stays consistent.  Consistency is monotone
  // under removing imports, so the greedy result is maximal.
  std::vector<ExtensionAtom> kept;
  Specification current = spec;
  for (const ExtensionAtom& atom : atoms) {
    auto candidate = ApplyExtension(current, {atom});
    if (!candidate.ok()) {
      if (candidate.status().code() == StatusCode::kFailedPrecondition) {
        continue;  // conflicts with a kept atom
      }
      return candidate.status();
    }
    ASSIGN_OR_RETURN(CpsOutcome check, DecideConsistency(*candidate));
    if (check.consistent) {
      kept.push_back(atom);
      current = std::move(candidate).value();
    }
  }
  return kept;
}

Result<bool> HasBoundedCurrencyPreservingExtension(
    const Specification& spec, const query::Query& q, int k,
    const PreservationOptions& options) {
  if (k < 0) return Status::InvalidArgument("k must be non-negative");
  ASSIGN_OR_RETURN(CpsOutcome cps, DecideConsistency(spec));
  if (!cps.consistent) return false;

  ASSIGN_OR_RETURN(std::vector<ExtensionAtom> atoms,
                   EnumerateExtensionAtoms(spec, options.skip_duplicate_imports));
  if (static_cast<int>(atoms.size()) > options.max_atoms) {
    return Status::ResourceExhausted(
        "extension space has " + std::to_string(atoms.size()) +
        " atoms; raise PreservationOptions::max_atoms");
  }
  auto cost_of = [&](const ExtensionAtom& atom) {
    return options.atom_cost ? options.atom_cost(atom) : atom.cost;
  };
  // DFS over candidate extensions of total cost ≤ k, with consistency
  // pruning; each consistent non-empty candidate is tested with CPP.
  bool found = false;
  std::function<Result<bool>(const Specification&, size_t, int, bool)> dfs =
      [&](const Specification& current, size_t next, int budget,
          bool any) -> Result<bool> {
    if (any) {
      ASSIGN_OR_RETURN(bool preserving,
                       IsCurrencyPreserving(current, q, options));
      if (preserving) {
        found = true;
        return true;
      }
    }
    for (size_t i = next; i < atoms.size() && !found; ++i) {
      int c = cost_of(atoms[i]);
      if (c > budget) continue;
      auto child = ApplyExtension(current, {atoms[i]});
      if (!child.ok()) {
        if (child.status().code() == StatusCode::kFailedPrecondition) {
          continue;
        }
        return child.status();
      }
      ASSIGN_OR_RETURN(CpsOutcome check, DecideConsistency(*child));
      if (!check.consistent) continue;  // prune: supersets inconsistent
      ASSIGN_OR_RETURN(bool sub, dfs(*child, i + 1, budget - c, true));
      (void)sub;
    }
    return found;
  };
  RETURN_IF_ERROR(dfs(spec, 0, k, false).status());
  return found;
}

}  // namespace currency::core
