// The PTIME CCQA algorithm for SP queries on specifications without
// denial constraints (Proposition 6.3).
//
// The construction mirrors the proof: compute PO∞ with the chase; for each
// entity e and attribute A collect S(e,A), the A-values of the sinks of
// PO∞ on e's tuples (the possible most-current values); build the relation
// poss(S) whose tuple for e carries the unique possible value, or a fresh
// constant c_{e,A} when several exist; evaluate Q on poss(S) and discard
// result tuples containing fresh constants.

#ifndef CURRENCY_SRC_CORE_SP_CCQA_H_
#define CURRENCY_SRC_CORE_SP_CCQA_H_

#include <set>

#include "src/common/result.h"
#include "src/core/specification.h"
#include "src/query/ast.h"

namespace currency::core {

/// Certain current answers for an SP query without denial constraints.
/// Fails with Unsupported when `q` is not SP or `spec` carries denial
/// constraints; with Inconsistent when Mod(S) = ∅.
Result<std::set<Tuple>> SpCertainCurrentAnswers(const Specification& spec,
                                                const query::Query& q);

/// The Proposition 6.3 pipeline downstream of the chase: builds poss(S)
/// for the (single) relation `q` references from the given PO∞ and
/// evaluates `q` on it, discarding fresh-constant tuples.  The caller
/// supplies `certain_orders` — the whole-spec chase's, or instance orders
/// assembled from per-component chase fixpoints (chase routing) — and
/// must already have established Mod(S) ≠ ∅ and that no denial constraint
/// grounds on the instance's entity groups.  Fails with Unsupported when
/// `q` is not SP over exactly one relation.
Result<std::set<Tuple>> SpAnswersFromCertainOrders(
    const Specification& spec,
    const std::vector<std::vector<PartialOrder>>& certain_orders,
    const query::Query& q);

/// Builds poss(S) for instance `inst` from the chase-certain orders (the
/// c_{e,A} fresh constants are strings with an internal marker prefix).
/// Exposed for tests and the Proposition 6.3 benchmarks.
Result<Relation> BuildPossRelation(
    const Specification& spec,
    const std::vector<std::vector<PartialOrder>>& certain_orders, int inst);

/// True iff `v` is one of the fresh constants minted by BuildPossRelation.
bool IsFreshPossConstant(const Value& v);

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_SP_CCQA_H_
