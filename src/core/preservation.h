// Currency preservation in data copying (Sections 4 and 5): CPP, ECP, BCP.
//
// A collection ρ of copy functions is currency preserving for Q w.r.t. S
// if Mod(S) ≠ ∅ and no extension ρe changes the certain current answers
// to Q.  Following Section 4, an extension may, for any copy function
// whose signature covers every data attribute of its target,
//   (a) map an existing unmapped target tuple to a value-compatible
//       source tuple (inheriting the source's currency orders), or
//   (b) import a new target tuple, copied from a source tuple, for an
//       entity already present in the target.
//
// Extension space.  We materialize the space as *extension atoms*: kind
// (a) is (edge, target tuple, source tuple); kind (b) is (edge, source
// tuple, target entity), deduplicated so a source tuple is imported at
// most once per target entity per edge (re-importing an identical tuple
// can never change a current instance).  Each atom carries a `cost`
// (default 1) so BCP budgets model the paper's bit-size accounting |ρe| ≤
// |ρ| + k: the lower-bound gadgets of Theorem 5.3 price some imports
// above the budget exactly as the paper does with (k+1)-bit constants.
//
// Complexity: CPP is Πp2-complete (data) / Πp3-complete (CQ, combined) /
// PSPACE-complete (FO) — Theorem 5.1.  ECP is O(1) for consistent inputs
// (Proposition 5.2).  BCP is Σp3-complete (data) / Σp4-complete (CQ) /
// PSPACE-complete (FO) — Theorem 5.3.  The solvers realize the upper
// bounds by DFS over the atom lattice with consistency pruning
// (inconsistency is monotone under adding imports) and the CCQA solver as
// the inner oracle; Theorem 6.4's PTIME case (SP queries, no constraints,
// fixed k) is inherited from the CCQA fast path.

#ifndef CURRENCY_SRC_CORE_PRESERVATION_H_
#define CURRENCY_SRC_CORE_PRESERVATION_H_

#include <functional>
#include <vector>

#include "src/common/result.h"
#include "src/core/ccqa.h"
#include "src/core/specification.h"

namespace currency::core {

/// One candidate extension step (see file comment for the two kinds).
struct ExtensionAtom {
  int copy_edge = -1;
  /// Kind (a) when true: map `target_tuple` to `source_tuple`.
  /// Kind (b) when false: import `source_tuple` as a new tuple of entity
  /// `target_eid`.
  bool maps_existing = false;
  TupleId target_tuple = -1;  ///< kind (a) only
  TupleId source_tuple = -1;
  Value target_eid;           ///< kind (b) only
  /// Budget charged by BCP for this import (paper: bits copied).
  int cost = 1;
};

/// Options shared by the preservation solvers.
struct PreservationOptions {
  /// Hard cap on the atom space (the DFS is 2^|atoms| in the worst case).
  int max_atoms = 24;
  /// Drop kind-(b) atoms whose imported tuple duplicates (by value) a
  /// tuple already present for that entity.  The paper's lower-bound
  /// gadgets exclude such imports with fixed "two tuples per entity"
  /// denial constraints; this option applies the same exclusion directly
  /// and keeps the gadget atom spaces enumerable.
  bool skip_duplicate_imports = false;
  /// Optional cost assignment for BCP (defaults to ExtensionAtom::cost).
  std::function<int(const ExtensionAtom&)> atom_cost;
  CcqaOptions ccqa;
};

/// Enumerates the extension-atom space of `spec` (see file comment).
/// `skip_duplicates` mirrors PreservationOptions::skip_duplicate_imports.
Result<std::vector<ExtensionAtom>> EnumerateExtensionAtoms(
    const Specification& spec, bool skip_duplicates = false);

/// Returns S extended by the given atoms (Se in the paper's notation).
/// Fails with FailedPrecondition on conflicting atoms (two mappings for
/// one target tuple) or value-incompatible kind-(a) atoms.
Result<Specification> ApplyExtension(const Specification& spec,
                                     const std::vector<ExtensionAtom>& atoms);

/// CPP: is ρ (the copy functions of `spec`) currency preserving for `q`?
/// False when Mod(S) = ∅ (condition (a) of the definition).
Result<bool> IsCurrencyPreserving(const Specification& spec,
                                  const query::Query& q,
                                  const PreservationOptions& options =
                                      PreservationOptions());

/// ECP: can ρ be extended to a currency-preserving collection for `q`?
/// Decidable in O(1) given consistency (Proposition 5.2): the answer is
/// exactly "Mod(S) ≠ ∅".
Result<bool> CanExtendToCurrencyPreserving(const Specification& spec,
                                           const query::Query& q);

/// Constructive companion to ECP: greedily builds a maximal consistent
/// extension, which Proposition 5.2 shows is currency preserving for
/// every query.  Returns the chosen atoms.
Result<std::vector<ExtensionAtom>> MaximalConsistentExtension(
    const Specification& spec,
    const PreservationOptions& options = PreservationOptions());

/// BCP: does some extension of total cost at most `k` make ρ currency
/// preserving for `q`?
Result<bool> HasBoundedCurrencyPreservingExtension(
    const Specification& spec, const query::Query& q, int k,
    const PreservationOptions& options = PreservationOptions());

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_PRESERVATION_H_
