#include "src/core/completion.h"

namespace currency::core {

Result<bool> IsConsistentCompletion(const Specification& spec,
                                    const Completion& completion) {
  if (static_cast<int>(completion.orders.size()) != spec.num_instances()) {
    return Status::InvalidArgument("completion has wrong instance count");
  }
  for (int i = 0; i < spec.num_instances(); ++i) {
    const TemporalInstance& inst = spec.instance(i);
    const Relation& rel = inst.relation();
    const auto& orders = completion.orders[i];
    if (static_cast<int>(orders.size()) != inst.schema().arity()) {
      return Status::InvalidArgument("completion has wrong attribute count");
    }
    auto groups = rel.EntityGroups();
    for (AttrIndex a = 1; a < inst.schema().arity(); ++a) {
      if (orders[a].size() != rel.size()) {
        return Status::InvalidArgument("completion order has wrong carrier");
      }
      // (1) extends the initial order.
      if (!inst.order(a).ContainedIn(orders[a])) return false;
      // (2) total exactly on entity groups.
      for (const auto& [eid, members] : groups) {
        (void)eid;
        if (!orders[a].TotalOn(members)) return false;
      }
      for (TupleId u = 0; u < rel.size(); ++u) {
        for (TupleId v = 0; v < rel.size(); ++v) {
          if (orders[a].Less(u, v) &&
              !(rel.tuple(u).eid() == rel.tuple(v).eid())) {
            return false;  // comparable across entities
          }
        }
      }
    }
    // (2') satisfies the denial constraints.
    for (const auto& dc : spec.constraints_for(i)) {
      if (!dc.SatisfiedBy(rel, orders)) return false;
    }
  }
  // (3) copy functions are ≺-compatible.
  for (const CopyEdge& edge : spec.copy_edges()) {
    ASSIGN_OR_RETURN(
        bool compatible,
        edge.fn.IsOrderCompatible(
            spec.instance(edge.target_instance).relation(),
            completion.orders[edge.target_instance],
            spec.instance(edge.source_instance).relation(),
            completion.orders[edge.source_instance]));
    if (!compatible) return false;
  }
  return true;
}

Result<Relation> CurrentInstance(const Specification& spec,
                                 const Completion& completion, int i) {
  if (i < 0 || i >= spec.num_instances()) {
    return Status::InvalidArgument("instance index out of range");
  }
  const TemporalInstance& inst = spec.instance(i);
  const Relation& rel = inst.relation();
  Relation out(inst.schema());
  for (const auto& [eid, members] : rel.EntityGroups()) {
    std::vector<Value> values(inst.schema().arity());
    values[0] = eid;
    for (AttrIndex a = 1; a < inst.schema().arity(); ++a) {
      int last = completion.orders[i][a].MaxOf(members);
      if (last < 0) {
        return Status::FailedPrecondition(
            "completion is not total on entity " + eid.ToString() +
            " for attribute " + inst.schema().attribute_name(a));
      }
      values[a] = rel.tuple(last).at(a);
    }
    RETURN_IF_ERROR(out.Append(Tuple(std::move(values))).status());
  }
  return out;
}

Result<query::Database> CurrentDatabase(const Specification& spec,
                                        const Completion& completion,
                                        std::vector<Relation>* storage) {
  storage->clear();
  storage->reserve(spec.num_instances());
  for (int i = 0; i < spec.num_instances(); ++i) {
    ASSIGN_OR_RETURN(Relation lst, CurrentInstance(spec, completion, i));
    storage->push_back(std::move(lst));
  }
  query::Database db;
  for (int i = 0; i < spec.num_instances(); ++i) {
    db[spec.instance(i).name()] = &(*storage)[i];
  }
  return db;
}

}  // namespace currency::core
