#include "src/core/sp_ccqa.h"

#include <set>

#include "src/core/chase.h"
#include "src/query/classify.h"
#include "src/query/eval.h"

namespace currency::core {

namespace {

/// Marker prefix for the fresh constants c_{e,A}.  \x01 cannot appear in
/// identifier-like data and keeps the constants distinct from every value
/// of the active domain.
constexpr char kFreshPrefix[] = "\x01poss#";

}  // namespace

bool IsFreshPossConstant(const Value& v) {
  if (v.kind() != ValueKind::kString) return false;
  const std::string& s = v.AsString();
  return s.rfind(kFreshPrefix, 0) == 0;
}

Result<Relation> BuildPossRelation(
    const Specification& spec,
    const std::vector<std::vector<PartialOrder>>& certain_orders, int inst) {
  const TemporalInstance& instance = spec.instance(inst);
  const Relation& rel = instance.relation();
  Relation poss(instance.schema());
  int64_t fresh_counter = 0;
  for (const auto& [eid, members] : rel.EntityGroups()) {
    std::vector<Value> values(instance.schema().arity());
    values[0] = eid;
    for (AttrIndex a = 1; a < instance.schema().arity(); ++a) {
      const PartialOrder& po = certain_orders[inst][a];
      std::vector<int> sinks = po.SinksWithin(members);
      std::set<Value> possible;
      for (int s : sinks) possible.insert(rel.tuple(s).at(a));
      if (possible.size() == 1) {
        values[a] = *possible.begin();
      } else {
        values[a] =
            Value(std::string(kFreshPrefix) + std::to_string(fresh_counter++));
      }
    }
    RETURN_IF_ERROR(poss.Append(Tuple(std::move(values))).status());
  }
  return poss;
}

Result<std::set<Tuple>> SpAnswersFromCertainOrders(
    const Specification& spec,
    const std::vector<std::vector<PartialOrder>>& certain_orders,
    const query::Query& q) {
  if (!query::IsSpQuery(q)) {
    return Status::Unsupported("Proposition 6.3 applies only to SP queries");
  }
  std::vector<std::string> rels = q.body->Relations();
  if (rels.size() != 1) {
    return Status::Unsupported("SP query must reference exactly one relation");
  }
  ASSIGN_OR_RETURN(int inst, spec.InstanceIndex(rels[0]));
  ASSIGN_OR_RETURN(Relation poss,
                   BuildPossRelation(spec, certain_orders, inst));
  query::Database db{{rels[0], &poss}};
  ASSIGN_OR_RETURN(std::set<Tuple> raw, query::EvalQuery(q, db));
  // Discard tuples carrying fresh constants (Step 4 of the proof).
  std::set<Tuple> out;
  for (const Tuple& t : raw) {
    bool fresh = false;
    for (const Value& v : t.values()) {
      if (IsFreshPossConstant(v)) {
        fresh = true;
        break;
      }
    }
    if (!fresh) out.insert(t);
  }
  return out;
}

Result<std::set<Tuple>> SpCertainCurrentAnswers(const Specification& spec,
                                                const query::Query& q) {
  if (spec.HasDenialConstraints()) {
    return Status::Unsupported(
        "Proposition 6.3 applies only without denial constraints");
  }
  // Validate before chasing so malformed queries fail the same way on
  // inconsistent specifications.
  if (!query::IsSpQuery(q)) {
    return Status::Unsupported("Proposition 6.3 applies only to SP queries");
  }
  if (q.body->Relations().size() != 1) {
    return Status::Unsupported("SP query must reference exactly one relation");
  }
  ASSIGN_OR_RETURN(ChaseResult chase, ChaseCopyOrders(spec));
  if (!chase.consistent) {
    return Status::Inconsistent(
        "Mod(S) is empty: every tuple is vacuously a certain answer");
  }
  return SpAnswersFromCertainOrders(spec, chase.certain_orders, q);
}

}  // namespace currency::core
