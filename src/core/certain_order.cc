#include "src/core/certain_order.h"

#include "src/core/chase.h"
#include "src/core/consistency.h"
#include "src/core/decompose.h"

namespace currency::core {

Result<bool> IsCertainOrder(const Specification& spec,
                            const CurrencyOrderQuery& query,
                            const CopOptions& options) {
  ASSIGN_OR_RETURN(int inst, spec.InstanceIndex(query.relation));
  const TemporalInstance& instance = spec.instance(inst);
  const Relation& rel = instance.relation();
  for (const RequiredPair& p : query.pairs) {
    if (p.attr < 1 || p.attr >= instance.schema().arity()) {
      return Status::InvalidArgument("required pair attribute out of range");
    }
    if (p.before < 0 || p.before >= rel.size() || p.after < 0 ||
        p.after >= rel.size()) {
      return Status::InvalidArgument("required pair tuple out of range");
    }
  }

  // PTIME path (Theorem 6.1(2) / Lemma 6.2): Ot is certain iff it is
  // contained in PO∞.
  if (options.use_ptime_path_without_constraints &&
      !spec.HasDenialConstraints()) {
    ASSIGN_OR_RETURN(ChaseResult chase, ChaseCopyOrders(spec));
    if (!chase.consistent) return true;  // vacuous
    for (const RequiredPair& p : query.pairs) {
      if (!chase.certain_orders[inst][p.attr].Less(p.before, p.after)) {
        return false;
      }
    }
    return true;
  }

  // General path: Ot pair (u, v) is certain iff the encoding plus the
  // assumption "v ≺ u or incomparable" is unsatisfiable; with totality
  // baked in, that assumption is just ¬ord(u, v).
  if (options.use_decomposition) {
    ASSIGN_OR_RETURN(auto decomposed,
                     DecomposedEncoder::Build(spec, options.encoder));
    ASSIGN_OR_RETURN(bool consistent, decomposed->SolveAll());
    if (!consistent) return true;  // Mod(S) = ∅: vacuously certain
    for (const RequiredPair& p : query.pairs) {
      if (p.before == p.after) return false;  // irreflexivity
      int component = decomposed->decomposition().ComponentOf(
          inst, rel.tuple(p.before).eid());
      ASSIGN_OR_RETURN(Encoder * encoder,
                       decomposed->ComponentEncoder(component));
      if (!encoder->HasPairVar(inst, p.before, p.after)) {
        return false;  // cross-entity pairs are never comparable
      }
      sat::Lit lit = encoder->OrdLit(inst, p.attr, p.before, p.after);
      if (encoder->solver().SolveWithAssumptions({sat::Negate(lit)}) ==
          sat::SolveResult::kSat) {
        return false;  // a completion orders them the other way
      }
    }
    return true;
  }
  ASSIGN_OR_RETURN(auto encoder, Encoder::Build(spec, options.encoder));
  if (encoder->solver().Solve() == sat::SolveResult::kUnsat) {
    return true;  // Mod(S) = ∅: vacuously certain
  }
  for (const RequiredPair& p : query.pairs) {
    if (p.before == p.after) return false;  // irreflexivity
    if (!encoder->HasPairVar(inst, p.before, p.after)) {
      return false;  // cross-entity pairs are never comparable
    }
    sat::Lit lit = encoder->OrdLit(inst, p.attr, p.before, p.after);
    if (encoder->solver().SolveWithAssumptions({sat::Negate(lit)}) ==
        sat::SolveResult::kSat) {
      return false;  // a completion orders them the other way
    }
  }
  return true;
}

}  // namespace currency::core
