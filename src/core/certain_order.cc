#include "src/core/certain_order.h"

#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/chase.h"
#include "src/core/consistency.h"
#include "src/core/decompose.h"
#include "src/exec/thread_pool.h"

namespace currency::core {

Result<bool> IsCertainOrder(const Specification& spec,
                            const CurrencyOrderQuery& query,
                            const CopOptions& options) {
  ASSIGN_OR_RETURN(int inst, spec.InstanceIndex(query.relation));
  const TemporalInstance& instance = spec.instance(inst);
  const Relation& rel = instance.relation();
  for (const RequiredPair& p : query.pairs) {
    if (p.attr < 1 || p.attr >= instance.schema().arity()) {
      return Status::InvalidArgument("required pair attribute out of range");
    }
    if (p.before < 0 || p.before >= rel.size() || p.after < 0 ||
        p.after >= rel.size()) {
      return Status::InvalidArgument("required pair tuple out of range");
    }
  }

  // PTIME path (Theorem 6.1(2) / Lemma 6.2): Ot is certain iff it is
  // contained in PO∞.
  if (options.use_ptime_path_without_constraints &&
      !spec.HasDenialConstraints()) {
    ASSIGN_OR_RETURN(ChaseResult chase, ChaseCopyOrders(spec));
    if (!chase.consistent) return true;  // vacuous
    for (const RequiredPair& p : query.pairs) {
      if (!chase.certain_orders[inst][p.attr].Less(p.before, p.after)) {
        return false;
      }
    }
    return true;
  }

  // General path: Ot pair (u, v) is certain iff the encoding plus the
  // assumption "v ≺ u or incomparable" is unsatisfiable; with totality
  // baked in, that assumption is just ¬ord(u, v).
  if (options.use_decomposition) {
    ASSIGN_OR_RETURN(auto decomposed,
                     DecomposedEncoder::Build(spec, options.encoder,
                                              options.use_chase_routing));
    std::optional<exec::ThreadPool> local_pool;
    exec::ThreadPool* pool =
        exec::ResolvePool(options.pool, options.num_threads, local_pool);
    ASSIGN_OR_RETURN(bool consistent,
                     decomposed->SolveAll({}, pool, &options.portfolio));
    if (!consistent) return true;  // Mod(S) = ∅: vacuously certain
    // A reflexive pair is refuted structurally — no solver involved, so
    // answer first (the SAT probes below could only also answer false).
    for (const RequiredPair& p : query.pairs) {
      if (p.before == p.after) return false;  // irreflexivity
    }
    // Group the pairs by owning component, preserving query order within
    // each group: pairs of one component probe one solver sequentially
    // (its call sequence — and thus its learnt-clause state — is the same
    // for every thread count), while distinct components are refuted in
    // parallel.  SolveAll above built and solved every component, so
    // ComponentEncoder below is a cached read.
    std::map<int, std::vector<const RequiredPair*>> by_component;
    for (const RequiredPair& p : query.pairs) {
      int component = decomposed->decomposition().ComponentOf(
          inst, rel.tuple(p.before).eid());
      by_component[component].push_back(&p);
    }
    // Dominant components (PortfolioEligible, never chase-routed) leave
    // the ParallelFor: their probes race diversified solvers through the
    // component portfolio, which owns the pool, so they run sequentially
    // after the regular groups (ParallelFor regions must not nest).
    std::vector<std::pair<int, const std::vector<const RequiredPair*>*>>
        groups;
    std::vector<std::pair<int, const std::vector<const RequiredPair*>*>>
        dominant;
    groups.reserve(by_component.size());
    for (const auto& [component, pairs] : by_component) {
      if (decomposed->PortfolioEligible(component, &options.portfolio,
                                        pool)) {
        dominant.emplace_back(component, &pairs);
      } else {
        groups.emplace_back(component, &pairs);
      }
    }
    std::vector<char> refuted(groups.size(), 0);
    exec::CancellationToken cancel;
    RETURN_IF_ERROR(pool->ParallelFor(
        static_cast<int>(groups.size()),
        [&](int k) -> Status {
          if (decomposed->chase_routed(groups[k].first)) {
            // Lemma 6.2 on S|_c: a pair is certain iff it is in the
            // component's PO∞ (CertainLess also refutes cross-entity
            // pairs — the `after` tuple lies outside the group).  The
            // fixpoint was cached by SolveAll above.
            ASSIGN_OR_RETURN(
                const ComponentChase* chase,
                decomposed->ComponentChaseFixpoint(groups[k].first));
            for (const RequiredPair* p : *groups[k].second) {
              if (!chase->CertainLess(inst, rel.tuple(p->before).eid(),
                                      p->attr, p->before, p->after)) {
                refuted[k] = 1;
                cancel.Cancel();
                return Status::OK();
              }
            }
            return Status::OK();
          }
          ASSIGN_OR_RETURN(Encoder * encoder,
                           decomposed->ComponentEncoder(groups[k].first));
          for (const RequiredPair* p : *groups[k].second) {
            if (!encoder->HasPairVar(inst, p->before, p->after)) {
              // Cross-entity pairs are never comparable.
              refuted[k] = 1;
              cancel.Cancel();
              return Status::OK();
            }
            sat::Lit lit = encoder->OrdLit(inst, p->attr, p->before, p->after);
            if (encoder->solver().SolveWithAssumptions({sat::Negate(lit)}) ==
                sat::SolveResult::kSat) {
              // A completion orders them the other way.
              refuted[k] = 1;
              cancel.Cancel();
              return Status::OK();
            }
          }
          return Status::OK();
        },
        &cancel));
    for (char r : refuted) {
      if (r) return false;
    }
    // Dominant-component probes: same pair order, same verdicts — only
    // the time to each verdict changes, so the COP answer is identical
    // to the single-solver path.
    for (const auto& [component, pairs] : dominant) {
      ASSIGN_OR_RETURN(Encoder * encoder,
                       decomposed->ComponentEncoder(component));
      ASSIGN_OR_RETURN(
          sat::Portfolio * race,
          decomposed->ComponentPortfolio(component, options.portfolio, pool));
      for (const RequiredPair* p : *pairs) {
        if (!encoder->HasPairVar(inst, p->before, p->after)) {
          return false;  // cross-entity pairs are never comparable
        }
        sat::Lit lit = encoder->OrdLit(inst, p->attr, p->before, p->after);
        ASSIGN_OR_RETURN(sat::SolveResult verdict,
                         race->Solve({sat::Negate(lit)}));
        if (verdict == sat::SolveResult::kSat) {
          return false;  // a completion orders them the other way
        }
      }
    }
    return true;
  }
  ASSIGN_OR_RETURN(auto encoder, Encoder::Build(spec, options.encoder));
  if (encoder->solver().Solve() == sat::SolveResult::kUnsat) {
    return true;  // Mod(S) = ∅: vacuously certain
  }
  for (const RequiredPair& p : query.pairs) {
    if (p.before == p.after) return false;  // irreflexivity
    if (!encoder->HasPairVar(inst, p.before, p.after)) {
      return false;  // cross-entity pairs are never comparable
    }
    sat::Lit lit = encoder->OrdLit(inst, p.attr, p.before, p.after);
    if (encoder->solver().SolveWithAssumptions({sat::Negate(lit)}) ==
        sat::SolveResult::kSat) {
      return false;  // a completion orders them the other way
    }
  }
  return true;
}

}  // namespace currency::core
