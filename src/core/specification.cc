#include "src/core/specification.h"

#include <utility>

#include "src/constraints/parser.h"

namespace currency::core {

Status Specification::AddInstance(TemporalInstance instance) {
  const std::string& name = instance.name();
  auto [it, inserted] = index_.emplace(name, num_instances());
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("duplicate relation '" + name +
                                   "' in specification");
  }
  instances_.push_back(std::move(instance));
  constraints_.emplace_back();
  return Status::OK();
}

Status Specification::AddConstraint(constraints::DenialConstraint constraint) {
  ASSIGN_OR_RETURN(int i, InstanceIndex(constraint.relation_name()));
  constraints_[i].push_back(std::move(constraint));
  return Status::OK();
}

Status Specification::AddConstraintText(const std::string& text) {
  // The constraint names its relation after IN; try each schema until the
  // parser accepts (the parser validates the relation name).
  Status last = Status::InvalidArgument("no instances in specification");
  for (const TemporalInstance& inst : instances_) {
    auto parsed = constraints::ParseConstraint(inst.schema(), text);
    if (parsed.ok()) return AddConstraint(std::move(parsed).value());
    last = parsed.status();
  }
  return last;
}

Status Specification::AddCopyFunction(copy::CopyFunction fn) {
  ASSIGN_OR_RETURN(int target,
                   InstanceIndex(fn.signature().target_relation));
  ASSIGN_OR_RETURN(int source,
                   InstanceIndex(fn.signature().source_relation));
  RETURN_IF_ERROR(
      fn.Validate(instances_[target].relation(), instances_[source].relation()));
  CopyEdge edge;
  edge.source_instance = source;
  edge.target_instance = target;
  edge.fn = std::move(fn);
  copy_edges_.push_back(std::move(edge));
  return Status::OK();
}

Result<int> Specification::InstanceIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("relation '" + name + "' not in specification");
  }
  return it->second;
}

bool Specification::HasDenialConstraints() const {
  for (const auto& cs : constraints_) {
    if (!cs.empty()) return true;
  }
  return false;
}

Result<TupleId> Specification::AppendCopiedTuple(int copy_edge_index,
                                                 TupleId source_tuple,
                                                 const Value& target_eid) {
  if (copy_edge_index < 0 ||
      copy_edge_index >= static_cast<int>(copy_edges_.size())) {
    return Status::InvalidArgument("copy edge index out of range");
  }
  CopyEdge& edge = copy_edges_[copy_edge_index];
  TemporalInstance& target = instances_[edge.target_instance];
  const TemporalInstance& source = instances_[edge.source_instance];
  if (!edge.fn.CoversAllTargetAttributes(target.schema())) {
    return Status::FailedPrecondition(
        "only copy functions covering all target attributes can be "
        "extended: " +
        edge.fn.signature().ToString());
  }
  if (source_tuple < 0 || source_tuple >= source.relation().size()) {
    return Status::InvalidArgument("source tuple out of range");
  }
  ASSIGN_OR_RETURN(auto attrs,
                   edge.fn.ResolveAttrs(target.schema(), source.schema()));
  std::vector<Value> values(target.schema().arity());
  values[0] = target_eid;
  for (const auto& [a, b] : attrs) {
    values[a] = source.relation().tuple(source_tuple).at(b);
  }
  ASSIGN_OR_RETURN(TupleId id, target.AppendTuple(Tuple(std::move(values))));
  RETURN_IF_ERROR(edge.fn.Map(id, source_tuple));
  return id;
}

Status Specification::ApplyTupleEdits(const std::vector<TupleEdit>& edits) {
  // Phase 1 — read-only validation of ranges and the same-entity order
  // invariant, so most failures reject before anything is written.
  for (const TupleEdit& e : edits) {
    if (e.instance < 0 || e.instance >= num_instances()) {
      return Status::InvalidArgument("tuple edit references instance " +
                                     std::to_string(e.instance) +
                                     " which does not exist");
    }
    const TemporalInstance& inst = instances_[e.instance];
    const Relation& rel = inst.relation();
    if (e.tuple < 0 || e.tuple >= rel.size()) {
      return Status::InvalidArgument("tuple edit references tuple " +
                                     std::to_string(e.tuple) +
                                     " out of range for " + inst.name());
    }
    if (e.attr < 0 || e.attr >= inst.schema().arity()) {
      return Status::InvalidArgument("tuple edit references attribute " +
                                     std::to_string(e.attr) +
                                     " out of range for " + inst.name());
    }
    if (e.attr == 0 && !(rel.tuple(e.tuple).eid() == e.new_value)) {
      // Moving a tuple to another entity would strand any initial order
      // pair it participates in (orders relate same-entity tuples only).
      // The check reads the pre-batch orders, which edits never change;
      // order partners all share the tuple's current entity (the AddOrder
      // invariant — and EID-edited tuples provably have no pairs), so
      // only the tuple's own group needs probing.
      for (AttrIndex a = 1; a < inst.schema().arity(); ++a) {
        const PartialOrder& po = inst.order(a);
        for (TupleId v : rel.EntityGroups().at(rel.tuple(e.tuple).eid())) {
          if (po.Less(e.tuple, v) || po.Less(v, e.tuple)) {
            return Status::FailedPrecondition(
                "EID edit on tuple " + std::to_string(e.tuple) + " of " +
                inst.name() +
                " would strand an initial currency-order pair");
          }
        }
      }
    }
  }
  // Phase 2 — apply, remembering prior values so phase 3 can roll back.
  std::vector<Value> previous;
  previous.reserve(edits.size());
  for (const TupleEdit& e : edits) {
    previous.push_back(instances_[e.instance].relation().tuple(e.tuple).at(e.attr));
    RETURN_IF_ERROR(
        instances_[e.instance].UpdateValue(e.tuple, e.attr, e.new_value));
  }
  // Phase 3 — the copying condition of every copy function touching an
  // edited instance must still hold (AddCopyFunction established it; a
  // fresh specification over the edited data would re-check it).  On
  // failure, undo in reverse order so duplicate edits of one cell unwind
  // correctly.
  std::vector<char> touched(num_instances(), 0);
  for (const TupleEdit& e : edits) touched[e.instance] = 1;
  Status violated = Status::OK();
  for (const CopyEdge& edge : copy_edges_) {
    if (!touched[edge.target_instance] && !touched[edge.source_instance]) {
      continue;
    }
    violated = edge.fn.Validate(instances_[edge.target_instance].relation(),
                                instances_[edge.source_instance].relation());
    if (!violated.ok()) break;
  }
  if (!violated.ok()) {
    for (size_t k = edits.size(); k-- > 0;) {
      const TupleEdit& e = edits[k];
      Status undo = instances_[e.instance].UpdateValue(e.tuple, e.attr,
                                                       std::move(previous[k]));
      if (!undo.ok()) return undo;  // cannot happen: ranges validated above
    }
    // Re-warm the entity-group caches UpdateValue reset: a caller whose
    // batch was rejected keeps using the specification as-is (the serving
    // layer skips its epoch rebuild — the usual cache warmer — and its
    // parallel batches require EntityGroups() to be pre-built, per the
    // thread-confinement contract in src/core/decompose.h).
    for (int i = 0; i < num_instances(); ++i) {
      if (touched[i]) (void)instances_[i].relation().EntityGroups();
    }
    return violated;
  }
  return Status::OK();
}

query::Database Specification::EmbeddedDatabase() const {
  query::Database db;
  for (const TemporalInstance& inst : instances_) {
    db[inst.name()] = &inst.relation();
  }
  return db;
}

int64_t Specification::TotalTuples() const {
  int64_t total = 0;
  for (const TemporalInstance& inst : instances_) {
    total += inst.relation().size();
  }
  return total;
}

}  // namespace currency::core
