#include "src/core/specification.h"

#include "src/constraints/parser.h"

namespace currency::core {

Status Specification::AddInstance(TemporalInstance instance) {
  const std::string& name = instance.name();
  auto [it, inserted] = index_.emplace(name, num_instances());
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("duplicate relation '" + name +
                                   "' in specification");
  }
  instances_.push_back(std::move(instance));
  constraints_.emplace_back();
  return Status::OK();
}

Status Specification::AddConstraint(constraints::DenialConstraint constraint) {
  ASSIGN_OR_RETURN(int i, InstanceIndex(constraint.relation_name()));
  constraints_[i].push_back(std::move(constraint));
  return Status::OK();
}

Status Specification::AddConstraintText(const std::string& text) {
  // The constraint names its relation after IN; try each schema until the
  // parser accepts (the parser validates the relation name).
  Status last = Status::InvalidArgument("no instances in specification");
  for (const TemporalInstance& inst : instances_) {
    auto parsed = constraints::ParseConstraint(inst.schema(), text);
    if (parsed.ok()) return AddConstraint(std::move(parsed).value());
    last = parsed.status();
  }
  return last;
}

Status Specification::AddCopyFunction(copy::CopyFunction fn) {
  ASSIGN_OR_RETURN(int target,
                   InstanceIndex(fn.signature().target_relation));
  ASSIGN_OR_RETURN(int source,
                   InstanceIndex(fn.signature().source_relation));
  RETURN_IF_ERROR(
      fn.Validate(instances_[target].relation(), instances_[source].relation()));
  CopyEdge edge;
  edge.source_instance = source;
  edge.target_instance = target;
  edge.fn = std::move(fn);
  copy_edges_.push_back(std::move(edge));
  return Status::OK();
}

Result<int> Specification::InstanceIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound("relation '" + name + "' not in specification");
  }
  return it->second;
}

bool Specification::HasDenialConstraints() const {
  for (const auto& cs : constraints_) {
    if (!cs.empty()) return true;
  }
  return false;
}

Result<TupleId> Specification::AppendCopiedTuple(int copy_edge_index,
                                                 TupleId source_tuple,
                                                 const Value& target_eid) {
  if (copy_edge_index < 0 ||
      copy_edge_index >= static_cast<int>(copy_edges_.size())) {
    return Status::InvalidArgument("copy edge index out of range");
  }
  CopyEdge& edge = copy_edges_[copy_edge_index];
  TemporalInstance& target = instances_[edge.target_instance];
  const TemporalInstance& source = instances_[edge.source_instance];
  if (!edge.fn.CoversAllTargetAttributes(target.schema())) {
    return Status::FailedPrecondition(
        "only copy functions covering all target attributes can be "
        "extended: " +
        edge.fn.signature().ToString());
  }
  if (source_tuple < 0 || source_tuple >= source.relation().size()) {
    return Status::InvalidArgument("source tuple out of range");
  }
  ASSIGN_OR_RETURN(auto attrs,
                   edge.fn.ResolveAttrs(target.schema(), source.schema()));
  std::vector<Value> values(target.schema().arity());
  values[0] = target_eid;
  for (const auto& [a, b] : attrs) {
    values[a] = source.relation().tuple(source_tuple).at(b);
  }
  ASSIGN_OR_RETURN(TupleId id, target.AppendTuple(Tuple(std::move(values))));
  RETURN_IF_ERROR(edge.fn.Map(id, source_tuple));
  return id;
}

query::Database Specification::EmbeddedDatabase() const {
  query::Database db;
  for (const TemporalInstance& inst : instances_) {
    db[inst.name()] = &inst.relation();
  }
  return db;
}

int64_t Specification::TotalTuples() const {
  int64_t total = 0;
  for (const TemporalInstance& inst : instances_) {
    total += inst.relation().size();
  }
  return total;
}

}  // namespace currency::core
