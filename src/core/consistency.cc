#include "src/core/consistency.h"

#include <optional>
#include <utility>

#include "src/core/chase.h"
#include "src/core/decompose.h"
#include "src/exec/thread_pool.h"

namespace currency::core {

Result<CpsOutcome> DecideConsistency(const Specification& spec,
                                     const CpsOptions& options) {
  CpsOutcome outcome;
  if (options.use_ptime_path_without_constraints &&
      !spec.HasDenialConstraints() && !options.want_witness) {
    // Theorem 6.1: without denial constraints the chase is sound and
    // complete for CPS.
    ASSIGN_OR_RETURN(ChaseResult chase, ChaseCopyOrders(spec));
    outcome.consistent = chase.consistent;
    outcome.used_ptime_path = true;
    return outcome;
  }
  if (options.use_decomposition) {
    // Mod(S) factors over coupling components, so S is consistent iff
    // every component is; SolveAll short-circuits on the first UNSAT one
    // (and, with num_threads > 1, solves components concurrently).
    ASSIGN_OR_RETURN(
        auto decomposed,
        DecomposedEncoder::Build(
            spec, options.encoder,
            options.use_chase_routing && !options.want_witness));
    outcome.components = decomposed->num_components();
    std::optional<exec::ThreadPool> local_pool;
    exec::ThreadPool* pool =
        exec::ResolvePool(options.pool, options.num_threads, local_pool);
    // Portfolio racing is verdict-only: a raced primary can report kSat
    // without holding a model, so witness extraction keeps every
    // component on the single-solver path.
    ASSIGN_OR_RETURN(
        outcome.consistent,
        decomposed->SolveAll(
            {}, pool, options.want_witness ? nullptr : &options.portfolio));
    if (outcome.consistent && options.want_witness) {
      ASSIGN_OR_RETURN(Completion witness, decomposed->ExtractCompletion());
      outcome.witness = std::move(witness);
    }
    return outcome;
  }
  ASSIGN_OR_RETURN(auto encoder, Encoder::Build(spec, options.encoder));
  outcome.consistent = encoder->solver().Solve() == sat::SolveResult::kSat;
  if (outcome.consistent && options.want_witness) {
    outcome.witness = encoder->ExtractCompletion();
  }
  return outcome;
}

}  // namespace currency::core
