#include "src/core/consistency.h"

#include "src/core/chase.h"

namespace currency::core {

Result<CpsOutcome> DecideConsistency(const Specification& spec,
                                     const CpsOptions& options) {
  CpsOutcome outcome;
  if (options.use_ptime_path_without_constraints &&
      !spec.HasDenialConstraints() && !options.want_witness) {
    // Theorem 6.1: without denial constraints the chase is sound and
    // complete for CPS.
    ASSIGN_OR_RETURN(ChaseResult chase, ChaseCopyOrders(spec));
    outcome.consistent = chase.consistent;
    outcome.used_ptime_path = true;
    return outcome;
  }
  ASSIGN_OR_RETURN(auto encoder, Encoder::Build(spec, options.encoder));
  outcome.consistent = encoder->solver().Solve() == sat::SolveResult::kSat;
  if (outcome.consistent && options.want_witness) {
    outcome.witness = encoder->ExtractCompletion();
  }
  return outcome;
}

}  // namespace currency::core
