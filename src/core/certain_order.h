// COP — the certain ordering problem (Section 3): given S, a relation R
// in S, and a currency order Ot for R's temporal instance, does Ot hold
// in every consistent completion of S?
//
// Complexity (Theorem 3.4): coNP-complete (data), Πp2-complete (combined);
// PTIME without denial constraints via PO∞ (Theorem 6.1, Lemma 6.2).
// Vacuously true when Mod(S) = ∅.

#ifndef CURRENCY_SRC_CORE_CERTAIN_ORDER_H_
#define CURRENCY_SRC_CORE_CERTAIN_ORDER_H_

#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/core/encoder.h"
#include "src/core/specification.h"
#include "src/sat/portfolio.h"

namespace currency::exec {
class ThreadPool;
}  // namespace currency::exec

namespace currency::core {

/// One required pair of a currency order Ot: before ≺_attr after.
struct RequiredPair {
  AttrIndex attr = -1;
  TupleId before = -1;
  TupleId after = -1;
};

/// A currency order Ot for one relation of the specification.
struct CurrencyOrderQuery {
  std::string relation;
  std::vector<RequiredPair> pairs;
};

/// Options for IsCertainOrder.
struct CopOptions {
  /// Use the PTIME PO∞ check when no denial constraints are present.
  bool use_ptime_path_without_constraints = true;
  /// Split the SAT path along the coupling graph: the Mod(S) = ∅ vacuity
  /// check solves each small component once, and every queried pair is
  /// refuted inside the single component owning its entity group.
  bool use_decomposition = true;
  /// On the decomposed path, answer pairs owned by chase-eligible
  /// components from the component chase fixpoint (pair certain iff it is
  /// in the component's PO∞ — Lemma 6.2 applied to S|_c) instead of SAT
  /// probes; SAT remains the fallback for constrained components.
  bool use_chase_routing = true;
  /// Threads for the decomposed path: the vacuity check solves components
  /// concurrently, then the queried pairs are refuted in parallel per
  /// owning component (pairs sharing a component stay in query order on
  /// that component's solver).  1 (the default) runs sequentially; the
  /// answer is bit-identical for every value.
  int num_threads = 1;
  /// Optional caller-owned pool reused across calls (overrides
  /// `num_threads`; not owned).  See CpsOptions::pool.
  exec::ThreadPool* pool = nullptr;
  /// Verdict-deterministic portfolio racing for dominant components (off
  /// by default): the vacuity base solves and the refutation probes of
  /// components with at least `portfolio.min_component_size` entity
  /// groups race diversified solvers, first verdict wins.  Probe answers
  /// are SAT/UNSAT verdicts, so the COP answer is unchanged for every
  /// thread count and seed set.
  sat::PortfolioOptions portfolio;
  Encoder::Options encoder;
};

/// Decides whether every pair of `query` holds in every consistent
/// completion of `spec`.  Pairs relating distinct entities or a tuple to
/// itself can hold in no completion (so the answer is false unless
/// Mod(S) = ∅, which makes COP vacuously true).
Result<bool> IsCertainOrder(const Specification& spec,
                            const CurrencyOrderQuery& query,
                            const CopOptions& options = {});

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_CERTAIN_ORDER_H_
