// The copy-order chase: the PTIME fixpoint algorithm of Theorem 6.1.
//
// Starting from the initial partial currency orders, order information is
// propagated along copy functions in both directions (source → target by
// ≺-compatibility; target → source by its contrapositive under totality)
// until fixpoint.  A derived cycle proves inconsistency.  In the absence
// of denial constraints the result PO∞ equals the intersection of the
// completed orders over all consistent completions (Lemma 6.2), which
// makes CPS, COP and DCIP PTIME-decidable (Theorem 6.1); with denial
// constraints it is still a sound pre-propagation (every derived pair is
// certain), used to seed the SAT encoder (ablation option).

#ifndef CURRENCY_SRC_CORE_CHASE_H_
#define CURRENCY_SRC_CORE_CHASE_H_

#include <vector>

#include "src/common/result.h"
#include "src/core/specification.h"

namespace currency::core {

struct CopyBucketIndex;  // src/core/encoder.h

/// Result of the copy-order chase.
struct ChaseResult {
  /// False iff a cyclic order requirement was derived (Mod(S) = ∅
  /// regardless of denial constraints).
  bool consistent = true;
  /// certain_orders[i][a]: PO∞ for instance i, attribute a.  Meaningful
  /// only when `consistent`; equals ∩_{Dc ∈ Mod(S)} ≺c when S has no
  /// denial constraints (Lemma 6.2).
  std::vector<std::vector<PartialOrder>> certain_orders;
  /// Number of propagation passes until fixpoint (for the benchmarks).
  int passes = 0;
};

/// Runs the chase.  Fails (error Status) only on malformed specifications
/// (unresolvable copy signatures); an inconsistent-but-well-formed
/// specification yields consistent == false.
///
/// `copy_index` optionally supplies a prebuilt CopyBucketIndex for the
/// specification (the same one the encoder shares); when null the chase
/// buckets the copy mappings itself.  Read during set-up only, not
/// retained.
Result<ChaseResult> ChaseCopyOrders(const Specification& spec,
                                    const CopyBucketIndex* copy_index =
                                        nullptr);

/// Chase + denial-constraint Horn closure: additionally fires every
/// grounded denial constraint whose order premises are already certain,
/// adding its conclusion (or detecting inconsistency for pure denials).
/// Every derived pair holds in EVERY consistent completion (sound); the
/// closure is not complete in general — with denial constraints, deciding
/// certainty is coNP-hard (Theorem 3.4) — but it shrinks search spaces
/// dramatically (used to seed the SAT encoder and the brute-force oracle).
/// Without denial constraints it coincides with ChaseCopyOrders.
Result<ChaseResult> CertainOrderPrefix(const Specification& spec,
                                       const CopyBucketIndex* copy_index =
                                           nullptr);

}  // namespace currency::core

#endif  // CURRENCY_SRC_CORE_CHASE_H_
